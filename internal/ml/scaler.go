package ml

import "math"

// Scaler standardizes feature vectors to zero mean and unit variance.
// Constant features keep a standard deviation of 1 so they map to zero.
type Scaler struct {
	Mean, Std []float64
}

// FitScaler computes per-feature statistics over X.
func FitScaler(X [][]float64) *Scaler {
	if len(X) == 0 {
		return &Scaler{}
	}
	dim := len(X[0])
	s := &Scaler{Mean: make([]float64, dim), Std: make([]float64, dim)}
	for _, row := range X {
		for j, v := range row {
			s.Mean[j] += v
		}
	}
	n := float64(len(X))
	for j := range s.Mean {
		s.Mean[j] /= n
	}
	for _, row := range X {
		for j, v := range row {
			d := v - s.Mean[j]
			s.Std[j] += d * d
		}
	}
	for j := range s.Std {
		s.Std[j] = math.Sqrt(s.Std[j] / n)
		if s.Std[j] < 1e-12 {
			s.Std[j] = 1
		}
	}
	return s
}

// Transform returns a standardized copy of x.
func (s *Scaler) Transform(x []float64) []float64 {
	out := make([]float64, len(x))
	s.TransformTo(out, x)
	return out
}

// TransformTo standardizes x into dst (for allocation-free hot paths).
func (s *Scaler) TransformTo(dst, x []float64) {
	for j, v := range x {
		dst[j] = (v - s.Mean[j]) / s.Std[j]
	}
}

// TransformAll standardizes every row of X into a new matrix.
func (s *Scaler) TransformAll(X [][]float64) [][]float64 {
	out := make([][]float64, len(X))
	for i, row := range X {
		out[i] = s.Transform(row)
	}
	return out
}

// targetScaler standardizes the regression target.
type targetScaler struct {
	mean, std float64
}

func fitTargetScaler(y []float64) targetScaler {
	var m float64
	for _, v := range y {
		m += v
	}
	if len(y) > 0 {
		m /= float64(len(y))
	}
	var ss float64
	for _, v := range y {
		d := v - m
		ss += d * d
	}
	std := 1.0
	if len(y) > 0 {
		std = math.Sqrt(ss / float64(len(y)))
	}
	if std < 1e-12 {
		std = 1
	}
	return targetScaler{mean: m, std: std}
}

func (t targetScaler) scale(y float64) float64   { return (y - t.mean) / t.std }
func (t targetScaler) unscale(y float64) float64 { return y*t.std + t.mean }
