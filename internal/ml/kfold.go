package ml

import (
	"fmt"
	"math/rand"
)

// KFold partitions sample indices [0, n) into k shuffled folds whose sizes
// differ by at most one.
func KFold(n, k int, rng *rand.Rand) [][]int {
	if k < 2 || k > n {
		panic(fmt.Sprintf("ml: KFold k=%d out of [2, n=%d]", k, n))
	}
	idx := rng.Perm(n)
	folds := make([][]int, k)
	for i, v := range idx {
		folds[i%k] = append(folds[i%k], v)
	}
	return folds
}

// CrossValidate runs k-fold cross validation: for each fold it trains a
// fresh model (obtained from newModel) on the remaining folds and evaluates
// errFn(predictions, truths) on the held-out fold, returning the per-fold
// errors. This implements the paper's MLP cross-validation bar in Figure 10.
func CrossValidate(ds Dataset, k int, rng *rand.Rand,
	newModel func() Regressor,
	errFn func(pred, actual []float64) float64) ([]float64, error) {

	folds := KFold(ds.Len(), k, rng)
	errs := make([]float64, 0, k)
	for fi, fold := range folds {
		var trainIdx []int
		for fj, other := range folds {
			if fj != fi {
				trainIdx = append(trainIdx, other...)
			}
		}
		model := newModel()
		if err := model.Fit(ds.Subset(trainIdx)); err != nil {
			return nil, fmt.Errorf("ml: fold %d: %w", fi, err)
		}
		test := ds.Subset(fold)
		errs = append(errs, errFn(PredictAll(model, test.X), test.Y))
	}
	return errs, nil
}
