package ml

import (
	"fmt"
	"math/rand"

	"abacus/internal/runner"
)

// KFold partitions sample indices [0, n) into k shuffled folds whose sizes
// differ by at most one.
func KFold(n, k int, rng *rand.Rand) [][]int {
	if k < 2 || k > n {
		panic(fmt.Sprintf("ml: KFold k=%d out of [2, n=%d]", k, n))
	}
	idx := rng.Perm(n)
	folds := make([][]int, k)
	for i, v := range idx {
		folds[i%k] = append(folds[i%k], v)
	}
	return folds
}

// CrossValidate runs k-fold cross validation: for each fold it trains a
// fresh model (obtained from newModel) on the remaining folds and evaluates
// errFn(predictions, truths) on the held-out fold, returning the per-fold
// errors. This implements the paper's MLP cross-validation bar in Figure 10.
//
// Folds are drawn from rng up front and then trained concurrently (each
// fold owns a fresh model), so the per-fold errors are identical at any
// parallelism.
func CrossValidate(ds Dataset, k int, rng *rand.Rand,
	newModel func() Regressor,
	errFn func(pred, actual []float64) float64) ([]float64, error) {

	folds := KFold(ds.Len(), k, rng)
	errs, err := runner.MapErr(len(folds), 0, func(fi int) (float64, error) {
		var trainIdx []int
		for fj, other := range folds {
			if fj != fi {
				trainIdx = append(trainIdx, other...)
			}
		}
		model := newModel()
		if err := model.Fit(ds.Subset(trainIdx)); err != nil {
			return 0, fmt.Errorf("ml: fold %d: %w", fi, err)
		}
		test := ds.Subset(folds[fi])
		return errFn(PredictAll(model, test.X), test.Y), nil
	})
	if err != nil {
		return nil, err
	}
	return errs, nil
}
