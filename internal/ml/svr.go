package ml

import (
	"errors"
	"math/rand"
)

// SVR is a linear support vector regressor trained by stochastic
// subgradient descent on the ε-insensitive loss with L2 regularization —
// the paper's second baseline duration model (§5.5, "SVM").
type SVR struct {
	// C is the slack weight (default 1).
	C float64
	// Epsilon is the insensitive-tube half width in standardized target
	// units (default 0.05).
	Epsilon float64
	// Epochs is the number of passes over the data (default 200).
	Epochs int
	// LearningRate is the initial step size (default 0.05), decayed as 1/√t.
	LearningRate float64
	// Seed drives the shuffling; fits are deterministic given Seed.
	Seed int64

	scaler  *Scaler
	targets targetScaler
	w       []float64
	bias    float64
}

func (m *SVR) defaults() (c, eps, lr float64, epochs int) {
	c, eps, lr, epochs = m.C, m.Epsilon, m.LearningRate, m.Epochs
	if c <= 0 {
		c = 1
	}
	if eps <= 0 {
		eps = 0.05
	}
	if lr <= 0 {
		lr = 0.05
	}
	if epochs <= 0 {
		epochs = 200
	}
	return c, eps, lr, epochs
}

// Fit trains the regressor. Features and targets are standardized
// internally.
func (m *SVR) Fit(ds Dataset) error {
	if err := ds.Validate(); err != nil {
		return err
	}
	if ds.Len() == 0 {
		return errors.New("ml: empty dataset")
	}
	c, eps, lr0, epochs := m.defaults()

	m.scaler = FitScaler(ds.X)
	X := m.scaler.TransformAll(ds.X)
	m.targets = fitTargetScaler(ds.Y)
	Y := make([]float64, len(ds.Y))
	for i, y := range ds.Y {
		Y[i] = m.targets.scale(y)
	}

	d := ds.Dim()
	m.w = make([]float64, d)
	m.bias = 0
	rng := rand.New(rand.NewSource(m.Seed))
	order := make([]int, len(X))
	for i := range order {
		order[i] = i
	}

	lambda := 1 / (c * float64(len(X)))
	step := 0
	for epoch := 0; epoch < epochs; epoch++ {
		rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		for _, idx := range order {
			step++
			lr := lr0 / (1 + lr0*lambda*float64(step))
			x, y := X[idx], Y[idx]
			pred := m.bias
			for j, v := range x {
				pred += m.w[j] * v
			}
			resid := pred - y
			// Subgradient of ε-insensitive loss.
			var g float64
			switch {
			case resid > eps:
				g = 1
			case resid < -eps:
				g = -1
			}
			for j := range m.w {
				m.w[j] -= lr * (lambda*m.w[j] + g*x[j])
			}
			m.bias -= lr * g
		}
	}
	return nil
}

// Predict evaluates the fitted regressor at a raw feature vector.
func (m *SVR) Predict(x []float64) float64 {
	if m.w == nil {
		panic("ml: SVR.Predict before Fit")
	}
	out := m.bias
	for j, v := range x {
		out += m.w[j] * (v - m.scaler.Mean[j]) / m.scaler.Std[j]
	}
	return m.targets.unscale(out)
}
