package ml

import (
	"encoding/json"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"abacus/internal/stats"
)

// synthLinear builds y = 3·x0 − 2·x1 + 0.5·x2 + 7 with optional noise.
func synthLinear(n int, noise float64, seed int64) Dataset {
	rng := rand.New(rand.NewSource(seed))
	var ds Dataset
	for i := 0; i < n; i++ {
		x := []float64{rng.Float64() * 10, rng.Float64() * 5, rng.Float64() * 20}
		y := 3*x[0] - 2*x[1] + 0.5*x[2] + 7 + rng.NormFloat64()*noise
		ds.Append(x, y)
	}
	return ds
}

// synthNonlinear builds y = x0·x1 + sin(x2) + 5 — not learnable by the
// linear baselines, learnable by the MLP.
func synthNonlinear(n int, seed int64) Dataset {
	rng := rand.New(rand.NewSource(seed))
	var ds Dataset
	for i := 0; i < n; i++ {
		x := []float64{rng.Float64() * 4, rng.Float64() * 4, rng.Float64() * 6}
		y := x[0]*x[1] + math.Sin(x[2]) + 5
		ds.Append(x, y)
	}
	return ds
}

func TestDatasetBasics(t *testing.T) {
	var ds Dataset
	if ds.Len() != 0 || ds.Dim() != 0 {
		t.Error("empty dataset should have zero len/dim")
	}
	ds.Append([]float64{1, 2}, 3)
	ds.Append([]float64{4, 5}, 6)
	if ds.Len() != 2 || ds.Dim() != 2 {
		t.Errorf("len=%d dim=%d, want 2, 2", ds.Len(), ds.Dim())
	}
	if err := ds.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestDatasetAppendMismatchPanics(t *testing.T) {
	var ds Dataset
	ds.Append([]float64{1, 2}, 3)
	defer func() {
		if recover() == nil {
			t.Error("did not panic")
		}
	}()
	ds.Append([]float64{1}, 2)
}

func TestDatasetValidateCatchesRagged(t *testing.T) {
	ds := Dataset{X: [][]float64{{1, 2}, {3}}, Y: []float64{1, 2}}
	if ds.Validate() == nil {
		t.Error("ragged X not caught")
	}
	ds2 := Dataset{X: [][]float64{{1}}, Y: []float64{1, 2}}
	if ds2.Validate() == nil {
		t.Error("length mismatch not caught")
	}
}

func TestDatasetSplit(t *testing.T) {
	ds := synthLinear(100, 0, 1)
	rng := rand.New(rand.NewSource(2))
	train, test := ds.Split(0.8, rng)
	if train.Len() != 80 || test.Len() != 20 {
		t.Errorf("split sizes %d/%d, want 80/20", train.Len(), test.Len())
	}
	// Original untouched (same first sample as a fresh build).
	ref := synthLinear(100, 0, 1)
	for i := range ds.Y {
		if ds.Y[i] != ref.Y[i] {
			t.Fatal("Split mutated the source dataset")
		}
	}
}

func TestDatasetSplitBadFracPanics(t *testing.T) {
	ds := synthLinear(10, 0, 1)
	for _, f := range []float64{0, 1, -0.5, 2} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Split(%v) did not panic", f)
				}
			}()
			ds.Split(f, rand.New(rand.NewSource(1)))
		}()
	}
}

func TestDatasetSubset(t *testing.T) {
	ds := synthLinear(10, 0, 3)
	sub := ds.Subset([]int{0, 5, 9})
	if sub.Len() != 3 || sub.Y[1] != ds.Y[5] {
		t.Errorf("Subset wrong: %v", sub.Y)
	}
}

func TestScalerStandardizes(t *testing.T) {
	X := [][]float64{{1, 10}, {3, 10}, {5, 10}}
	s := FitScaler(X)
	if !almost(s.Mean[0], 3) || !almost(s.Mean[1], 10) {
		t.Errorf("Mean = %v", s.Mean)
	}
	// Constant feature keeps std 1 → transforms to 0.
	tr := s.Transform([]float64{3, 10})
	if !almost(tr[0], 0) || !almost(tr[1], 0) {
		t.Errorf("Transform(mean) = %v, want zeros", tr)
	}
	all := s.TransformAll(X)
	var m0, v0 float64
	for _, r := range all {
		m0 += r[0]
	}
	m0 /= 3
	for _, r := range all {
		v0 += (r[0] - m0) * (r[0] - m0)
	}
	if !almost(m0, 0) || !almost(math.Sqrt(v0/3), 1) {
		t.Errorf("standardized feature mean %v std %v", m0, math.Sqrt(v0/3))
	}
}

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestLinearRegressionRecoversExactModel(t *testing.T) {
	ds := synthLinear(200, 0, 4)
	var lr LinearRegression
	if err := lr.Fit(ds); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < ds.Len(); i++ {
		if got := lr.Predict(ds.X[i]); math.Abs(got-ds.Y[i]) > 1e-6 {
			t.Fatalf("sample %d: predict %v, want %v", i, got, ds.Y[i])
		}
	}
}

func TestLinearRegressionWithNoise(t *testing.T) {
	ds := synthLinear(500, 0.5, 5)
	var lr LinearRegression
	if err := lr.Fit(ds); err != nil {
		t.Fatal(err)
	}
	test := synthLinear(100, 0, 6)
	mape := stats.MAPE(PredictAll(&lr, test.X), test.Y)
	if mape > 0.05 {
		t.Errorf("noisy linear fit MAPE = %.3f, want < 5%%", mape)
	}
}

func TestLinearRegressionErrors(t *testing.T) {
	var lr LinearRegression
	if err := lr.Fit(Dataset{}); err == nil {
		t.Error("empty dataset should error")
	}
	if err := lr.Fit(Dataset{X: [][]float64{{1}}, Y: []float64{1, 2}}); err == nil {
		t.Error("invalid dataset should error")
	}
}

func TestPredictBeforeFitPanics(t *testing.T) {
	models := map[string]Regressor{
		"lr":  &LinearRegression{},
		"svr": &SVR{},
		"mlp": &MLP{},
	}
	for name, m := range models {
		t.Run(name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Error("did not panic")
				}
			}()
			m.Predict([]float64{1})
		})
	}
}

func TestSVRFitsLinearData(t *testing.T) {
	ds := synthLinear(400, 0.1, 7)
	svr := SVR{Seed: 1}
	if err := svr.Fit(ds); err != nil {
		t.Fatal(err)
	}
	test := synthLinear(100, 0, 8)
	mape := stats.MAPE(PredictAll(&svr, test.X), test.Y)
	if mape > 0.08 {
		t.Errorf("SVR linear fit MAPE = %.3f, want < 8%%", mape)
	}
}

func TestSVRDeterministicGivenSeed(t *testing.T) {
	ds := synthLinear(100, 0.2, 9)
	a := SVR{Seed: 42}
	b := SVR{Seed: 42}
	if err := a.Fit(ds); err != nil {
		t.Fatal(err)
	}
	if err := b.Fit(ds); err != nil {
		t.Fatal(err)
	}
	x := []float64{1, 2, 3}
	if a.Predict(x) != b.Predict(x) {
		t.Error("same seed produced different SVR models")
	}
}

func TestMLPFitsNonlinearData(t *testing.T) {
	ds := synthNonlinear(1500, 10)
	mlp := MLP{Epochs: 200, Seed: 1}
	if err := mlp.Fit(ds); err != nil {
		t.Fatal(err)
	}
	test := synthNonlinear(200, 11)
	mape := stats.MAPE(PredictAll(&mlp, test.X), test.Y)
	if mape > 0.08 {
		t.Errorf("MLP nonlinear fit MAPE = %.3f, want < 8%%", mape)
	}
}

func TestMLPBeatsLinearBaselinesOnNonlinearData(t *testing.T) {
	// The §5.5 ranking: MLP ≪ LR/SVM on the nonlinear duration surface.
	train := synthNonlinear(1500, 12)
	test := synthNonlinear(300, 13)

	mlp := MLP{Epochs: 150, Seed: 2}
	if err := mlp.Fit(train); err != nil {
		t.Fatal(err)
	}
	var lr LinearRegression
	if err := lr.Fit(train); err != nil {
		t.Fatal(err)
	}
	svr := SVR{Seed: 2}
	if err := svr.Fit(train); err != nil {
		t.Fatal(err)
	}

	mlpErr := stats.MAPE(PredictAll(&mlp, test.X), test.Y)
	lrErr := stats.MAPE(PredictAll(&lr, test.X), test.Y)
	svrErr := stats.MAPE(PredictAll(&svr, test.X), test.Y)
	t.Logf("MAPE: mlp=%.3f lr=%.3f svr=%.3f", mlpErr, lrErr, svrErr)
	if mlpErr >= lrErr || mlpErr >= svrErr {
		t.Errorf("MLP (%.3f) should beat LR (%.3f) and SVR (%.3f) on nonlinear data", mlpErr, lrErr, svrErr)
	}
}

func TestMLPDeterministicGivenSeed(t *testing.T) {
	ds := synthNonlinear(200, 14)
	a := MLP{Epochs: 30, Seed: 5}
	b := MLP{Epochs: 30, Seed: 5}
	if err := a.Fit(ds); err != nil {
		t.Fatal(err)
	}
	if err := b.Fit(ds); err != nil {
		t.Fatal(err)
	}
	x := ds.X[0]
	if a.Predict(x) != b.Predict(x) {
		t.Error("same seed produced different MLPs")
	}
	c := MLP{Epochs: 30, Seed: 6}
	if err := c.Fit(ds); err != nil {
		t.Fatal(err)
	}
	if a.Predict(x) == c.Predict(x) {
		t.Error("different seeds produced identical MLPs (suspicious)")
	}
}

func TestMLPPredictBatchMatchesPredict(t *testing.T) {
	ds := synthNonlinear(300, 15)
	mlp := MLP{Epochs: 30, Seed: 1}
	if err := mlp.Fit(ds); err != nil {
		t.Fatal(err)
	}
	batch := mlp.PredictBatch(ds.X[:50])
	for i, x := range ds.X[:50] {
		if batch[i] != mlp.Predict(x) {
			t.Fatalf("batch[%d] = %v != Predict %v", i, batch[i], mlp.Predict(x))
		}
	}
}

func TestMLPWrongWidthPanics(t *testing.T) {
	ds := synthLinear(50, 0, 16)
	mlp := MLP{Epochs: 5, Seed: 1}
	if err := mlp.Fit(ds); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Error("did not panic")
		}
	}()
	mlp.Predict([]float64{1})
}

func TestMLPParamCount(t *testing.T) {
	ds := synthLinear(50, 0, 17)
	mlp := MLP{Hidden: []int{32, 32, 32}, Epochs: 1, Seed: 1}
	if err := mlp.Fit(ds); err != nil {
		t.Fatal(err)
	}
	// 3→32, 32→32, 32→32, 32→1 with biases.
	want := (3*32 + 32) + 2*(32*32+32) + (32 + 1)
	if got := mlp.ParamCount(); got != want {
		t.Errorf("ParamCount = %d, want %d", got, want)
	}
	// ≈ paper's "approximately 14kB" predictor footprint at float32.
	if kb := float64(mlp.ParamCount()) * 4 / 1024; kb < 5 || kb > 30 {
		t.Errorf("predictor footprint %.1f kB outside the paper's order of magnitude", kb)
	}
}

func TestKFoldPartition(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	folds := KFold(10, 3, rng)
	if len(folds) != 3 {
		t.Fatalf("got %d folds", len(folds))
	}
	seen := map[int]bool{}
	for _, f := range folds {
		if len(f) < 3 || len(f) > 4 {
			t.Errorf("fold size %d, want 3 or 4", len(f))
		}
		for _, i := range f {
			if seen[i] {
				t.Errorf("index %d in two folds", i)
			}
			seen[i] = true
		}
	}
	if len(seen) != 10 {
		t.Errorf("%d unique indices, want 10", len(seen))
	}
}

func TestKFoldInvalidPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, k := range []int{1, 11} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("KFold(10, %d) did not panic", k)
				}
			}()
			KFold(10, k, rng)
		}()
	}
}

func TestCrossValidate(t *testing.T) {
	ds := synthLinear(100, 0.1, 18)
	rng := rand.New(rand.NewSource(3))
	errs, err := CrossValidate(ds, 5, rng,
		func() Regressor { return &LinearRegression{} },
		stats.MAPE)
	if err != nil {
		t.Fatal(err)
	}
	if len(errs) != 5 {
		t.Fatalf("got %d fold errors", len(errs))
	}
	for i, e := range errs {
		if e > 0.05 {
			t.Errorf("fold %d error %.3f too high for near-noiseless linear data", i, e)
		}
	}
}

func TestSolveLinearSystem(t *testing.T) {
	A := [][]float64{{2, 1}, {1, 3}}
	b := []float64{5, 10}
	x, err := solveLinearSystem(A, b)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(x[0], 1) || !almost(x[1], 3) {
		t.Errorf("solution %v, want [1 3]", x)
	}
}

func TestSolveLinearSystemSingular(t *testing.T) {
	A := [][]float64{{1, 2}, {2, 4}}
	b := []float64{1, 2}
	if _, err := solveLinearSystem(A, b); err == nil {
		t.Error("singular system should error")
	}
}

// Property: solveLinearSystem inverts well-conditioned diagonally dominant
// systems.
func TestSolveLinearSystemProperty(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw%6) + 2
		rng := rand.New(rand.NewSource(seed))
		A := make([][]float64, n)
		xTrue := make([]float64, n)
		for i := range A {
			A[i] = make([]float64, n)
			for j := range A[i] {
				A[i][j] = rng.NormFloat64()
			}
			A[i][i] += float64(n) + 1 // diagonal dominance
			xTrue[i] = rng.NormFloat64() * 5
		}
		b := make([]float64, n)
		for i := range b {
			for j := range xTrue {
				b[i] += A[i][j] * xTrue[j]
			}
		}
		// Copy since the solver overwrites.
		Ac := make([][]float64, n)
		for i := range A {
			Ac[i] = append([]float64(nil), A[i]...)
		}
		got, err := solveLinearSystem(Ac, append([]float64(nil), b...))
		if err != nil {
			return false
		}
		for i := range got {
			if math.Abs(got[i]-xTrue[i]) > 1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: LR predictions are invariant to feature scaling of the training
// data (the scaler absorbs affine transforms).
func TestLinearRegressionScaleInvariance(t *testing.T) {
	ds := synthLinear(100, 0, 19)
	scaled := Dataset{Y: ds.Y}
	for _, row := range ds.X {
		scaled.X = append(scaled.X, []float64{row[0] * 1000, row[1] * 0.001, row[2] + 500})
	}
	var a, b LinearRegression
	if err := a.Fit(ds); err != nil {
		t.Fatal(err)
	}
	if err := b.Fit(scaled); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		pa := a.Predict(ds.X[i])
		pb := b.Predict(scaled.X[i])
		if math.Abs(pa-pb) > 1e-6 {
			t.Fatalf("sample %d: %v vs %v", i, pa, pb)
		}
	}
}

func TestMLPJSONRoundTrip(t *testing.T) {
	ds := synthNonlinear(300, 20)
	orig := MLP{Epochs: 40, Seed: 3}
	if err := orig.Fit(ds); err != nil {
		t.Fatal(err)
	}
	raw, err := json.Marshal(&orig)
	if err != nil {
		t.Fatal(err)
	}
	var restored MLP
	if err := json.Unmarshal(raw, &restored); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		if got, want := restored.Predict(ds.X[i]), orig.Predict(ds.X[i]); got != want {
			t.Fatalf("sample %d: restored %v != original %v", i, got, want)
		}
	}
}

func TestMLPMarshalUnfitErrors(t *testing.T) {
	var m MLP
	if _, err := json.Marshal(&m); err == nil {
		t.Error("marshaling an unfit MLP should error")
	}
}

func TestMLPUnmarshalCorrupt(t *testing.T) {
	cases := []string{
		`{"dims":[2]}`,
		`{"dims":[2,1],"weights":[[1,2]],"biases":[[0]],"feat_mean":[0],"feat_std":[1],"target_std":1}`,
		`{"dims":[2,1],"weights":[[1,2]],"biases":[[0]],"feat_mean":[0,0],"feat_std":[1,1],"target_std":0}`,
		`{"dims":[2,1],"weights":[[1]],"biases":[[0]],"feat_mean":[0,0],"feat_std":[1,1],"target_std":1}`,
	}
	for i, c := range cases {
		var m MLP
		if err := json.Unmarshal([]byte(c), &m); err == nil {
			t.Errorf("case %d: corrupt MLP state accepted", i)
		}
	}
}
