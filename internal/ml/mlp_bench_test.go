package ml

import (
	"fmt"
	"math/rand"
	"testing"
)

// benchMLP fits a paper-topology MLP (3×32 hidden) over a synthetic
// feature space shaped like the predictor codec's vectors (bitmap + slot
// fields), so the benchmark exercises the exact layer dimensions the
// duration model runs with.
func benchMLP(b *testing.B, features int) *MLP {
	b.Helper()
	rng := rand.New(rand.NewSource(7))
	var ds Dataset
	for i := 0; i < 256; i++ {
		x := make([]float64, features)
		for j := range x {
			x[j] = rng.Float64() * 100
		}
		y := 0.0
		for j, v := range x {
			y += v * float64(j%5)
		}
		ds.Append(x, y+rng.NormFloat64())
	}
	m := &MLP{Epochs: 30, Seed: 1}
	if err := m.Fit(ds); err != nil {
		b.Fatal(err)
	}
	return m
}

// BenchmarkMLPPredictBatch measures the batched forward pass at the batch
// sizes the multi-way search issues: B=1 (the admission solo prediction),
// B=8 (a deep probe round), and B=64 (a full sweep round).
func BenchmarkMLPPredictBatch(b *testing.B) {
	const features = 28 // codec width for a 12-model zoo: 12 + 4·4
	m := benchMLP(b, features)
	rng := rand.New(rand.NewSource(9))
	for _, batch := range []int{1, 8, 64} {
		X := make([][]float64, batch)
		for i := range X {
			X[i] = make([]float64, features)
			for j := range X[i] {
				X[i][j] = rng.Float64() * 100
			}
		}
		b.Run(fmt.Sprintf("B=%d", batch), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				m.PredictBatch(X)
			}
		})
	}
}
