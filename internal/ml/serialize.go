package ml

import (
	"encoding/json"
	"errors"
	"fmt"
)

// mlpState is the serialized form of a trained MLP (weights and scalers;
// optimizer state is not persisted — a loaded model predicts, it does not
// resume training).
type mlpState struct {
	Dims       []int       `json:"dims"` // layer widths, input..output
	Weights    [][]float64 `json:"weights"`
	Biases     [][]float64 `json:"biases"`
	FeatMean   []float64   `json:"feat_mean"`
	FeatStd    []float64   `json:"feat_std"`
	TargetMean float64     `json:"target_mean"`
	TargetStd  float64     `json:"target_std"`
}

// MarshalJSON serializes a trained MLP. It errors if the model is unfit.
func (m *MLP) MarshalJSON() ([]byte, error) {
	if m.layers == nil {
		return nil, errors.New("ml: marshaling an unfit MLP")
	}
	st := mlpState{
		Dims:       []int{m.layers[0].in},
		FeatMean:   m.scaler.Mean,
		FeatStd:    m.scaler.Std,
		TargetMean: m.targets.mean,
		TargetStd:  m.targets.std,
	}
	for _, l := range m.layers {
		st.Dims = append(st.Dims, l.out)
		st.Weights = append(st.Weights, l.W)
		st.Biases = append(st.Biases, l.B)
	}
	return json.Marshal(st)
}

// UnmarshalJSON restores a trained MLP written by MarshalJSON.
func (m *MLP) UnmarshalJSON(data []byte) error {
	var st mlpState
	if err := json.Unmarshal(data, &st); err != nil {
		return err
	}
	if len(st.Dims) < 2 {
		return fmt.Errorf("ml: MLP state has %d dims", len(st.Dims))
	}
	if len(st.Weights) != len(st.Dims)-1 || len(st.Biases) != len(st.Dims)-1 {
		return fmt.Errorf("ml: MLP state layer count mismatch")
	}
	layers := make([]denseLayer, len(st.Dims)-1)
	for l := range layers {
		in, out := st.Dims[l], st.Dims[l+1]
		if len(st.Weights[l]) != in*out || len(st.Biases[l]) != out {
			return fmt.Errorf("ml: MLP state layer %d has wrong shapes", l)
		}
		layers[l] = denseLayer{in: in, out: out, W: st.Weights[l], B: st.Biases[l]}
	}
	if len(st.FeatMean) != st.Dims[0] || len(st.FeatStd) != st.Dims[0] {
		return fmt.Errorf("ml: MLP state scaler width mismatch")
	}
	if st.TargetStd <= 0 {
		return fmt.Errorf("ml: MLP state target std %v", st.TargetStd)
	}
	m.layers = layers
	m.scaler = &Scaler{Mean: st.FeatMean, Std: st.FeatStd}
	m.targets = targetScaler{mean: st.TargetMean, std: st.TargetStd}
	m.initScratch()
	return nil
}
