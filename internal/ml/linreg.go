package ml

import (
	"errors"
	"fmt"
	"math"
)

// LinearRegression is ordinary least squares with optional ridge
// regularization, solved by the normal equations. It is the weakest of the
// paper's three candidate duration models (§5.5) and serves as the Figure 10
// baseline.
type LinearRegression struct {
	// Ridge is the L2 penalty λ; zero requests plain OLS (a tiny λ is still
	// applied for numerical stability).
	Ridge float64

	scaler *Scaler
	w      []float64 // weights over standardized features
	bias   float64
}

// Fit solves (XᵀX + λI)w = XᵀY over standardized features.
func (m *LinearRegression) Fit(ds Dataset) error {
	if err := ds.Validate(); err != nil {
		return err
	}
	if ds.Len() == 0 {
		return errors.New("ml: empty dataset")
	}
	d := ds.Dim()
	m.scaler = FitScaler(ds.X)
	X := m.scaler.TransformAll(ds.X)

	lambda := m.Ridge
	if lambda <= 0 {
		lambda = 1e-8
	}

	// Augment with a bias column; build the (d+1)² normal matrix.
	n := d + 1
	A := make([][]float64, n)
	for i := range A {
		A[i] = make([]float64, n)
	}
	b := make([]float64, n)
	for r, row := range X {
		y := ds.Y[r]
		for i := 0; i < d; i++ {
			xi := row[i]
			for j := i; j < d; j++ {
				A[i][j] += xi * row[j]
			}
			A[i][d] += xi
			b[i] += xi * y
		}
		A[d][d]++
		b[d] += y
	}
	for i := 0; i < n; i++ {
		for j := 0; j < i; j++ {
			A[i][j] = A[j][i]
		}
	}
	for i := 0; i < d; i++ {
		A[i][i] += lambda
	}

	sol, err := solveLinearSystem(A, b)
	if err != nil {
		return fmt.Errorf("ml: linear regression: %w", err)
	}
	m.w = sol[:d]
	m.bias = sol[d]
	return nil
}

// Predict evaluates the fitted hyperplane at a raw feature vector.
func (m *LinearRegression) Predict(x []float64) float64 {
	if m.w == nil {
		panic("ml: LinearRegression.Predict before Fit")
	}
	out := m.bias
	for j, v := range x {
		out += m.w[j] * (v - m.scaler.Mean[j]) / m.scaler.Std[j]
	}
	return out
}

// solveLinearSystem solves A·x = b by Gaussian elimination with partial
// pivoting. A and b are overwritten.
func solveLinearSystem(A [][]float64, b []float64) ([]float64, error) {
	n := len(A)
	for col := 0; col < n; col++ {
		// Pivot.
		pivot := col
		for r := col + 1; r < n; r++ {
			if math.Abs(A[r][col]) > math.Abs(A[pivot][col]) {
				pivot = r
			}
		}
		if math.Abs(A[pivot][col]) < 1e-12 {
			return nil, errors.New("singular system")
		}
		A[col], A[pivot] = A[pivot], A[col]
		b[col], b[pivot] = b[pivot], b[col]
		// Eliminate.
		inv := 1 / A[col][col]
		for r := col + 1; r < n; r++ {
			f := A[r][col] * inv
			if f == 0 {
				continue
			}
			for c := col; c < n; c++ {
				A[r][c] -= f * A[col][c]
			}
			b[r] -= f * b[col]
		}
	}
	// Back-substitute.
	x := make([]float64, n)
	for r := n - 1; r >= 0; r-- {
		s := b[r]
		for c := r + 1; c < n; c++ {
			s -= A[r][c] * x[c]
		}
		x[r] = s / A[r][r]
	}
	return x, nil
}
