package ml

import (
	"math/rand"
	"testing"
)

// fitSmallMLP trains a paper-topology MLP over a synthetic nonlinear
// surface for the forward-pass equivalence tests.
func fitSmallMLP(t *testing.T, features int) *MLP {
	t.Helper()
	rng := rand.New(rand.NewSource(3))
	var ds Dataset
	for i := 0; i < 200; i++ {
		x := make([]float64, features)
		for j := range x {
			x[j] = rng.Float64() * 50
		}
		y := x[0]*2 + x[1]*x[1]*0.01
		for j := 2; j < len(x); j++ {
			y += x[j] * float64(j%3)
		}
		ds.Append(x, y)
	}
	m := &MLP{Epochs: 20, Seed: 5}
	if err := m.Fit(ds); err != nil {
		t.Fatal(err)
	}
	return m
}

// scalarPredict is the pre-GEMM reference path: per-sample forward over
// freshly allocated activation buffers.
func scalarPredict(m *MLP, x []float64) float64 {
	acts := make([][]float64, len(m.layers)+1)
	acts[0] = make([]float64, m.layers[0].in)
	for l := range m.layers {
		acts[l+1] = make([]float64, m.layers[l].out)
	}
	m.scaler.TransformTo(acts[0], x)
	m.forward(acts[0], acts)
	return m.targets.unscale(acts[len(acts)-1][0])
}

// TestPredictBatchMatchesPredict pins the hard invariant of the GEMM
// forward: the blocked batch path, the B=1 path, and the scalar reference
// forward produce bit-identical outputs at every batch size, including the
// sizes that exercise both the 4-wide blocks and the scalar tail.
func TestPredictBatchMatchesPredict(t *testing.T) {
	const features = 28
	m := fitSmallMLP(t, features)
	rng := rand.New(rand.NewSource(17))
	for _, B := range []int{1, 2, 3, 4, 5, 7, 8, 13, 16, 64, 65} {
		X := make([][]float64, B)
		for i := range X {
			X[i] = make([]float64, features)
			for j := range X[i] {
				X[i][j] = rng.Float64() * 50
			}
		}
		batch := m.PredictBatch(X)
		if len(batch) != B {
			t.Fatalf("B=%d: PredictBatch returned %d values", B, len(batch))
		}
		dst := make([]float64, B)
		m.PredictBatchTo(dst, X)
		for i, x := range X {
			one := m.Predict(x)
			ref := scalarPredict(m, x)
			if batch[i] != one || batch[i] != ref || dst[i] != ref {
				t.Fatalf("B=%d row %d: batch %v, predict %v, scalar %v, to %v — paths diverge",
					B, i, batch[i], one, ref, dst[i])
			}
		}
	}
}

func TestPredictBatchToEdgeCases(t *testing.T) {
	m := fitSmallMLP(t, 6)
	m.PredictBatchTo(nil, nil) // empty batch is a no-op
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	mustPanic("dst length mismatch", func() {
		m.PredictBatchTo(make([]float64, 1), [][]float64{make([]float64, 6), make([]float64, 6)})
	})
	mustPanic("input width mismatch", func() {
		m.PredictBatchTo(make([]float64, 1), [][]float64{make([]float64, 5)})
	})
	mustPanic("unfitted model", func() {
		var un MLP
		un.PredictBatch([][]float64{make([]float64, 3)})
	})
}
