package ml

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sync"
)

// MLP is a fully connected feed-forward regression network trained with
// mini-batch Adam on mean squared error. The paper's duration model (§5.5)
// is an MLP with three hidden layers of dimension 32; that is this type's
// default topology.
type MLP struct {
	// Hidden lists the hidden layer widths (default {32, 32, 32}).
	Hidden []int
	// Epochs is the number of passes over the data (default 300).
	Epochs int
	// BatchSize is the mini-batch size (default 32).
	BatchSize int
	// LearningRate is Adam's step size (default 1e-3).
	LearningRate float64
	// Seed drives initialization and shuffling; training is deterministic
	// given Seed.
	Seed int64

	scaler  *Scaler
	targets targetScaler
	layers  []denseLayer

	// scratch pools per-prediction activation buffers. A fitted MLP is
	// read-only, and pooling (instead of one shared buffer set) keeps
	// Predict safe for the concurrent sweeps that share one trained model.
	scratch *sync.Pool
}

// denseLayer is one affine layer: out = W·in + b, W stored row-major
// (out × in).
type denseLayer struct {
	in, out int
	W, B    []float64
	// Adam state.
	mW, vW, mB, vB []float64
}

func (m *MLP) defaults() (hidden []int, epochs, batch int, lr float64) {
	hidden = m.Hidden
	if len(hidden) == 0 {
		hidden = []int{32, 32, 32}
	}
	epochs = m.Epochs
	if epochs <= 0 {
		epochs = 300
	}
	batch = m.BatchSize
	if batch <= 0 {
		batch = 32
	}
	lr = m.LearningRate
	if lr <= 0 {
		lr = 1e-3
	}
	return hidden, epochs, batch, lr
}

// Fit trains the network, replacing any previous weights. Features and
// targets are standardized internally.
func (m *MLP) Fit(ds Dataset) error {
	if err := ds.Validate(); err != nil {
		return err
	}
	if ds.Len() == 0 {
		return errors.New("ml: empty dataset")
	}
	hidden, epochs, batchSize, lr := m.defaults()

	m.scaler = FitScaler(ds.X)
	X := m.scaler.TransformAll(ds.X)
	m.targets = fitTargetScaler(ds.Y)
	Y := make([]float64, len(ds.Y))
	for i, y := range ds.Y {
		Y[i] = m.targets.scale(y)
	}

	rng := rand.New(rand.NewSource(m.Seed))
	dims := append([]int{ds.Dim()}, hidden...)
	dims = append(dims, 1)
	m.layers = make([]denseLayer, len(dims)-1)
	for l := range m.layers {
		m.layers[l] = newDenseLayer(dims[l], dims[l+1], rng)
	}
	m.initScratch()

	// Per-layer activation and delta buffers.
	acts := make([][]float64, len(dims))
	for i, d := range dims {
		acts[i] = make([]float64, d)
	}
	deltas := make([][]float64, len(m.layers))
	for l := range m.layers {
		deltas[l] = make([]float64, m.layers[l].out)
	}
	grads := make([]denseGrads, len(m.layers))
	for l := range m.layers {
		grads[l] = newDenseGrads(m.layers[l])
	}

	order := make([]int, len(X))
	for i := range order {
		order[i] = i
	}

	const beta1, beta2, adamEps = 0.9, 0.999, 1e-8
	step := 0
	for epoch := 0; epoch < epochs; epoch++ {
		rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		for at := 0; at < len(order); at += batchSize {
			end := at + batchSize
			if end > len(order) {
				end = len(order)
			}
			for l := range grads {
				grads[l].zero()
			}
			for _, idx := range order[at:end] {
				m.forward(X[idx], acts)
				// Output delta: d(MSE)/d(out) = 2·(out − y), constant folded.
				deltas[len(m.layers)-1][0] = acts[len(acts)-1][0] - Y[idx]
				m.backward(acts, deltas, grads)
			}
			step++
			scale := 1 / float64(end-at)
			for l := range m.layers {
				m.layers[l].adamStep(grads[l], scale, lr, beta1, beta2, adamEps, step)
			}
		}
	}
	return nil
}

func newDenseLayer(in, out int, rng *rand.Rand) denseLayer {
	l := denseLayer{
		in: in, out: out,
		W:  make([]float64, in*out),
		B:  make([]float64, out),
		mW: make([]float64, in*out),
		vW: make([]float64, in*out),
		mB: make([]float64, out),
		vB: make([]float64, out),
	}
	// He initialization for ReLU networks.
	std := math.Sqrt(2 / float64(in))
	for i := range l.W {
		l.W[i] = rng.NormFloat64() * std
	}
	return l
}

type denseGrads struct {
	W, B []float64
}

func newDenseGrads(l denseLayer) denseGrads {
	return denseGrads{W: make([]float64, len(l.W)), B: make([]float64, len(l.B))}
}

func (g *denseGrads) zero() {
	for i := range g.W {
		g.W[i] = 0
	}
	for i := range g.B {
		g.B[i] = 0
	}
}

// forward computes all layer activations for one standardized input. acts[0]
// receives the input; hidden layers apply ReLU; the final layer is linear.
func (m *MLP) forward(x []float64, acts [][]float64) {
	copy(acts[0], x)
	for l := range m.layers {
		lay := &m.layers[l]
		in, out := acts[l], acts[l+1]
		last := l == len(m.layers)-1
		for o := 0; o < lay.out; o++ {
			s := lay.B[o]
			row := lay.W[o*lay.in : (o+1)*lay.in]
			for i, v := range in {
				s += row[i] * v
			}
			if !last && s < 0 {
				s = 0
			}
			out[o] = s
		}
	}
}

// backward accumulates gradients given filled activations and the output
// delta already stored in deltas[last].
func (m *MLP) backward(acts, deltas [][]float64, grads []denseGrads) {
	for l := len(m.layers) - 1; l >= 0; l-- {
		lay := &m.layers[l]
		in := acts[l]
		delta := deltas[l]
		g := &grads[l]
		for o := 0; o < lay.out; o++ {
			d := delta[o]
			if d == 0 {
				continue
			}
			g.B[o] += d
			row := g.W[o*lay.in : (o+1)*lay.in]
			for i, v := range in {
				row[i] += d * v
			}
		}
		if l == 0 {
			continue
		}
		// Propagate delta through W and the previous ReLU.
		prev := deltas[l-1]
		for i := range prev {
			prev[i] = 0
		}
		for o := 0; o < lay.out; o++ {
			d := delta[o]
			if d == 0 {
				continue
			}
			row := lay.W[o*lay.in : (o+1)*lay.in]
			for i := range prev {
				prev[i] += d * row[i]
			}
		}
		for i := range prev {
			if acts[l][i] <= 0 { // ReLU derivative
				prev[i] = 0
			}
		}
	}
}

func (l *denseLayer) adamStep(g denseGrads, scale, lr, beta1, beta2, eps float64, step int) {
	bc1 := 1 - math.Pow(beta1, float64(step))
	bc2 := 1 - math.Pow(beta2, float64(step))
	for i := range l.W {
		grad := g.W[i] * scale
		l.mW[i] = beta1*l.mW[i] + (1-beta1)*grad
		l.vW[i] = beta2*l.vW[i] + (1-beta2)*grad*grad
		l.W[i] -= lr * (l.mW[i] / bc1) / (math.Sqrt(l.vW[i]/bc2) + eps)
	}
	for i := range l.B {
		grad := g.B[i] * scale
		l.mB[i] = beta1*l.mB[i] + (1-beta1)*grad
		l.vB[i] = beta2*l.vB[i] + (1-beta2)*grad*grad
		l.B[i] -= lr * (l.mB[i] / bc1) / (math.Sqrt(l.vB[i]/bc2) + eps)
	}
}

func (m *MLP) initScratch() {
	dims := make([]int, len(m.layers)+1)
	dims[0] = m.layers[0].in
	for l := range m.layers {
		dims[l+1] = m.layers[l].out
	}
	m.scratch = &sync.Pool{New: func() any {
		bufs := make([][]float64, len(dims))
		for i, d := range dims {
			bufs[i] = make([]float64, d)
		}
		return &bufs
	}}
}

// Predict evaluates the network at one raw feature vector.
func (m *MLP) Predict(x []float64) float64 {
	if m.layers == nil {
		panic("ml: MLP.Predict before Fit")
	}
	if len(x) != m.layers[0].in {
		panic(fmt.Sprintf("ml: MLP input width %d, want %d", len(x), m.layers[0].in))
	}
	bufs := m.scratch.Get().(*[][]float64)
	acts := *bufs
	m.scaler.TransformTo(acts[0], x)
	m.forward(acts[0], acts)
	y := m.targets.unscale(acts[len(acts)-1][0])
	m.scratch.Put(bufs)
	return y
}

// PredictBatch evaluates the network over a batch of raw feature vectors —
// the batched evaluation the paper's multi-way search feeds the duration
// model (§6.3).
func (m *MLP) PredictBatch(X [][]float64) []float64 {
	out := make([]float64, len(X))
	for i, x := range X {
		out[i] = m.Predict(x)
	}
	return out
}

// ParamCount returns the number of trainable parameters (the paper's §7.8
// predictor-footprint accounting: weights ≈ 14 kB).
func (m *MLP) ParamCount() int {
	n := 0
	for _, l := range m.layers {
		n += len(l.W) + len(l.B)
	}
	return n
}
