package ml

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sync"
)

// MLP is a fully connected feed-forward regression network trained with
// mini-batch Adam on mean squared error. The paper's duration model (§5.5)
// is an MLP with three hidden layers of dimension 32; that is this type's
// default topology.
type MLP struct {
	// Hidden lists the hidden layer widths (default {32, 32, 32}).
	Hidden []int
	// Epochs is the number of passes over the data (default 300).
	Epochs int
	// BatchSize is the mini-batch size (default 32).
	BatchSize int
	// LearningRate is Adam's step size (default 1e-3).
	LearningRate float64
	// Seed drives initialization and shuffling; training is deterministic
	// given Seed.
	Seed int64

	scaler  *Scaler
	targets targetScaler
	layers  []denseLayer

	// scratch pools batch-sized activation matrices. A fitted MLP is
	// read-only, and pooling (instead of one shared buffer set) keeps
	// Predict and PredictBatch safe for the concurrent sweeps that share
	// one trained model.
	scratch *sync.Pool
	// maxDim is the widest layer dimension (input included): one B×maxDim
	// matrix can hold any layer's batch activations.
	maxDim int
}

// batchScratch is one pooled pair of ping-pong activation matrices for the
// batched forward pass, grown on demand to the largest batch seen.
type batchScratch struct {
	a, b []float64
}

func (s *batchScratch) ensure(n int) {
	if cap(s.a) < n {
		s.a = make([]float64, n)
	}
	if cap(s.b) < n {
		s.b = make([]float64, n)
	}
}

// denseLayer is one affine layer: out = W·in + b, W stored row-major
// (out × in).
type denseLayer struct {
	in, out int
	W, B    []float64
	// Adam state.
	mW, vW, mB, vB []float64
}

func (m *MLP) defaults() (hidden []int, epochs, batch int, lr float64) {
	hidden = m.Hidden
	if len(hidden) == 0 {
		hidden = []int{32, 32, 32}
	}
	epochs = m.Epochs
	if epochs <= 0 {
		epochs = 300
	}
	batch = m.BatchSize
	if batch <= 0 {
		batch = 32
	}
	lr = m.LearningRate
	if lr <= 0 {
		lr = 1e-3
	}
	return hidden, epochs, batch, lr
}

// Fit trains the network, replacing any previous weights. Features and
// targets are standardized internally.
func (m *MLP) Fit(ds Dataset) error {
	if err := ds.Validate(); err != nil {
		return err
	}
	if ds.Len() == 0 {
		return errors.New("ml: empty dataset")
	}
	hidden, epochs, batchSize, lr := m.defaults()

	m.scaler = FitScaler(ds.X)
	X := m.scaler.TransformAll(ds.X)
	m.targets = fitTargetScaler(ds.Y)
	Y := make([]float64, len(ds.Y))
	for i, y := range ds.Y {
		Y[i] = m.targets.scale(y)
	}

	rng := rand.New(rand.NewSource(m.Seed))
	dims := append([]int{ds.Dim()}, hidden...)
	dims = append(dims, 1)
	m.layers = make([]denseLayer, len(dims)-1)
	for l := range m.layers {
		m.layers[l] = newDenseLayer(dims[l], dims[l+1], rng)
	}
	m.initScratch()

	// Per-layer activation and delta buffers.
	acts := make([][]float64, len(dims))
	for i, d := range dims {
		acts[i] = make([]float64, d)
	}
	deltas := make([][]float64, len(m.layers))
	for l := range m.layers {
		deltas[l] = make([]float64, m.layers[l].out)
	}
	grads := make([]denseGrads, len(m.layers))
	for l := range m.layers {
		grads[l] = newDenseGrads(m.layers[l])
	}

	order := make([]int, len(X))
	for i := range order {
		order[i] = i
	}

	const beta1, beta2, adamEps = 0.9, 0.999, 1e-8
	step := 0
	for epoch := 0; epoch < epochs; epoch++ {
		rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		for at := 0; at < len(order); at += batchSize {
			end := at + batchSize
			if end > len(order) {
				end = len(order)
			}
			for l := range grads {
				grads[l].zero()
			}
			for _, idx := range order[at:end] {
				m.forward(X[idx], acts)
				// Output delta: d(MSE)/d(out) = 2·(out − y), constant folded.
				deltas[len(m.layers)-1][0] = acts[len(acts)-1][0] - Y[idx]
				m.backward(acts, deltas, grads)
			}
			step++
			scale := 1 / float64(end-at)
			for l := range m.layers {
				m.layers[l].adamStep(grads[l], scale, lr, beta1, beta2, adamEps, step)
			}
		}
	}
	return nil
}

func newDenseLayer(in, out int, rng *rand.Rand) denseLayer {
	l := denseLayer{
		in: in, out: out,
		W:  make([]float64, in*out),
		B:  make([]float64, out),
		mW: make([]float64, in*out),
		vW: make([]float64, in*out),
		mB: make([]float64, out),
		vB: make([]float64, out),
	}
	// He initialization for ReLU networks.
	std := math.Sqrt(2 / float64(in))
	for i := range l.W {
		l.W[i] = rng.NormFloat64() * std
	}
	return l
}

type denseGrads struct {
	W, B []float64
}

func newDenseGrads(l denseLayer) denseGrads {
	return denseGrads{W: make([]float64, len(l.W)), B: make([]float64, len(l.B))}
}

func (g *denseGrads) zero() {
	for i := range g.W {
		g.W[i] = 0
	}
	for i := range g.B {
		g.B[i] = 0
	}
}

// forward computes all layer activations for one standardized input. acts[0]
// receives the input; hidden layers apply ReLU; the final layer is linear.
func (m *MLP) forward(x []float64, acts [][]float64) {
	copy(acts[0], x)
	for l := range m.layers {
		lay := &m.layers[l]
		in, out := acts[l], acts[l+1]
		last := l == len(m.layers)-1
		for o := 0; o < lay.out; o++ {
			s := lay.B[o]
			row := lay.W[o*lay.in : (o+1)*lay.in]
			for i, v := range in {
				s += row[i] * v
			}
			if !last && s < 0 {
				s = 0
			}
			out[o] = s
		}
	}
}

// backward accumulates gradients given filled activations and the output
// delta already stored in deltas[last].
func (m *MLP) backward(acts, deltas [][]float64, grads []denseGrads) {
	for l := len(m.layers) - 1; l >= 0; l-- {
		lay := &m.layers[l]
		in := acts[l]
		delta := deltas[l]
		g := &grads[l]
		for o := 0; o < lay.out; o++ {
			d := delta[o]
			if d == 0 {
				continue
			}
			g.B[o] += d
			row := g.W[o*lay.in : (o+1)*lay.in]
			for i, v := range in {
				row[i] += d * v
			}
		}
		if l == 0 {
			continue
		}
		// Propagate delta through W and the previous ReLU.
		prev := deltas[l-1]
		for i := range prev {
			prev[i] = 0
		}
		for o := 0; o < lay.out; o++ {
			d := delta[o]
			if d == 0 {
				continue
			}
			row := lay.W[o*lay.in : (o+1)*lay.in]
			for i := range prev {
				prev[i] += d * row[i]
			}
		}
		for i := range prev {
			if acts[l][i] <= 0 { // ReLU derivative
				prev[i] = 0
			}
		}
	}
}

func (l *denseLayer) adamStep(g denseGrads, scale, lr, beta1, beta2, eps float64, step int) {
	bc1 := 1 - math.Pow(beta1, float64(step))
	bc2 := 1 - math.Pow(beta2, float64(step))
	for i := range l.W {
		grad := g.W[i] * scale
		l.mW[i] = beta1*l.mW[i] + (1-beta1)*grad
		l.vW[i] = beta2*l.vW[i] + (1-beta2)*grad*grad
		l.W[i] -= lr * (l.mW[i] / bc1) / (math.Sqrt(l.vW[i]/bc2) + eps)
	}
	for i := range l.B {
		grad := g.B[i] * scale
		l.mB[i] = beta1*l.mB[i] + (1-beta1)*grad
		l.vB[i] = beta2*l.vB[i] + (1-beta2)*grad*grad
		l.B[i] -= lr * (l.mB[i] / bc1) / (math.Sqrt(l.vB[i]/bc2) + eps)
	}
}

func (m *MLP) initScratch() {
	m.maxDim = m.layers[0].in
	for l := range m.layers {
		if m.layers[l].out > m.maxDim {
			m.maxDim = m.layers[l].out
		}
	}
	m.scratch = &sync.Pool{New: func() any { return &batchScratch{} }}
}

// forwardLayerBatch applies one dense layer to a B×in row-major activation
// matrix, writing a B×out matrix. Samples are blocked four wide so each
// weight-row load feeds four independent accumulator chains; every
// accumulator still starts at the bias and adds terms in ascending input
// order, the exact float sequence of the scalar path, so blocked and
// per-sample evaluation are bit-identical.
func forwardLayerBatch(lay *denseLayer, in, out []float64, B int, relu bool) {
	ind, outd := lay.in, lay.out
	b := 0
	for ; b+4 <= B; b += 4 {
		x0 := in[(b+0)*ind : (b+1)*ind]
		x1 := in[(b+1)*ind : (b+2)*ind]
		x2 := in[(b+2)*ind : (b+3)*ind]
		x3 := in[(b+3)*ind : (b+4)*ind]
		for o := 0; o < outd; o++ {
			row := lay.W[o*ind : (o+1)*ind]
			s0, s1, s2, s3 := lay.B[o], lay.B[o], lay.B[o], lay.B[o]
			for i, w := range row {
				s0 += w * x0[i]
				s1 += w * x1[i]
				s2 += w * x2[i]
				s3 += w * x3[i]
			}
			if relu {
				if s0 < 0 {
					s0 = 0
				}
				if s1 < 0 {
					s1 = 0
				}
				if s2 < 0 {
					s2 = 0
				}
				if s3 < 0 {
					s3 = 0
				}
			}
			out[(b+0)*outd+o] = s0
			out[(b+1)*outd+o] = s1
			out[(b+2)*outd+o] = s2
			out[(b+3)*outd+o] = s3
		}
	}
	for ; b < B; b++ {
		x := in[b*ind : (b+1)*ind]
		for o := 0; o < outd; o++ {
			row := lay.W[o*ind : (o+1)*ind]
			s := lay.B[o]
			for i, w := range row {
				s += w * x[i]
			}
			if relu && s < 0 {
				s = 0
			}
			out[b*outd+o] = s
		}
	}
}

// forwardPooled runs the layer stack over the already-standardized B×in
// matrix in s.a and returns the B×1 output column (a view into the
// scratch, valid until s is reused).
func (m *MLP) forwardPooled(s *batchScratch, B int) []float64 {
	ping, pong := s.a, s.b
	cur := ping[:B*m.layers[0].in]
	for l := range m.layers {
		out := pong[:B*m.layers[l].out]
		forwardLayerBatch(&m.layers[l], cur, out, B, l != len(m.layers)-1)
		cur = out
		ping, pong = pong, ping
	}
	return cur
}

// Predict evaluates the network at one raw feature vector — the B=1 case
// of the batched forward.
func (m *MLP) Predict(x []float64) float64 {
	if m.layers == nil {
		panic("ml: MLP.Predict before Fit")
	}
	if len(x) != m.layers[0].in {
		panic(fmt.Sprintf("ml: MLP input width %d, want %d", len(x), m.layers[0].in))
	}
	s := m.scratch.Get().(*batchScratch)
	s.ensure(m.maxDim)
	m.scaler.TransformTo(s.a[:len(x)], x)
	y := m.targets.unscale(m.forwardPooled(s, 1)[0])
	m.scratch.Put(s)
	return y
}

// PredictBatch evaluates the network over a batch of raw feature vectors —
// the batched evaluation the paper's multi-way search feeds the duration
// model (§6.3). One blocked matrix-multiply per layer over pooled scratch;
// outputs are bit-identical to calling Predict per row.
func (m *MLP) PredictBatch(X [][]float64) []float64 {
	out := make([]float64, len(X))
	m.PredictBatchTo(out, X)
	return out
}

// PredictBatchTo is PredictBatch into a caller-owned destination
// (len(dst) == len(X)): beyond the pooled scratch it does not allocate,
// which keeps the scheduler's span search off the garbage collector.
func (m *MLP) PredictBatchTo(dst []float64, X [][]float64) {
	if m.layers == nil {
		panic("ml: MLP.PredictBatch before Fit")
	}
	if len(dst) != len(X) {
		panic(fmt.Sprintf("ml: PredictBatchTo dst length %d, want %d", len(dst), len(X)))
	}
	B := len(X)
	if B == 0 {
		return
	}
	ind := m.layers[0].in
	s := m.scratch.Get().(*batchScratch)
	s.ensure(B * m.maxDim)
	for i, x := range X {
		if len(x) != ind {
			m.scratch.Put(s)
			panic(fmt.Sprintf("ml: MLP input width %d, want %d", len(x), ind))
		}
		m.scaler.TransformTo(s.a[i*ind:(i+1)*ind], x)
	}
	out := m.forwardPooled(s, B)
	for i := range dst {
		dst[i] = m.targets.unscale(out[i])
	}
	m.scratch.Put(s)
}

// ParamCount returns the number of trainable parameters (the paper's §7.8
// predictor-footprint accounting: weights ≈ 14 kB).
func (m *MLP) ParamCount() int {
	n := 0
	for _, l := range m.layers {
		n += len(l.W) + len(l.B)
	}
	return n
}
