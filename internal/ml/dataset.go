// Package ml is a small, dependency-free machine-learning library built for
// the Abacus latency predictor (§5.5 of the paper): a multilayer perceptron
// trained with Adam, plus the two baselines the paper compares against —
// linear (ridge) regression and a linear ε-insensitive SVR — together with
// feature standardization and k-fold cross-validation.
//
// All models are deterministic given their seed and scale features (and,
// where it matters, targets) internally, so callers pass raw feature
// vectors.
package ml

import (
	"fmt"
	"math/rand"
)

// Dataset is a supervised regression dataset. X rows all share one width.
type Dataset struct {
	X [][]float64
	Y []float64
}

// Len returns the number of samples.
func (d *Dataset) Len() int { return len(d.X) }

// Dim returns the feature width, or 0 for an empty dataset.
func (d *Dataset) Dim() int {
	if len(d.X) == 0 {
		return 0
	}
	return len(d.X[0])
}

// Append adds one sample. It panics on a width mismatch.
func (d *Dataset) Append(x []float64, y float64) {
	if len(d.X) > 0 && len(x) != len(d.X[0]) {
		panic(fmt.Sprintf("ml: appending width %d to dataset of width %d", len(x), len(d.X[0])))
	}
	d.X = append(d.X, x)
	d.Y = append(d.Y, y)
}

// Validate checks the invariants (matching lengths, rectangular X).
func (d *Dataset) Validate() error {
	if len(d.X) != len(d.Y) {
		return fmt.Errorf("ml: |X|=%d but |Y|=%d", len(d.X), len(d.Y))
	}
	for i, row := range d.X {
		if len(row) != d.Dim() {
			return fmt.Errorf("ml: row %d has width %d, want %d", i, len(row), d.Dim())
		}
	}
	return nil
}

// Shuffle permutes the samples in place using the given source.
func (d *Dataset) Shuffle(rng *rand.Rand) {
	rng.Shuffle(d.Len(), func(i, j int) {
		d.X[i], d.X[j] = d.X[j], d.X[i]
		d.Y[i], d.Y[j] = d.Y[j], d.Y[i]
	})
}

// Split shuffles a copy of the dataset and splits it into trainFrac /
// (1-trainFrac) partitions (the paper's 80/20 split, §5.5).
func (d *Dataset) Split(trainFrac float64, rng *rand.Rand) (train, test Dataset) {
	if trainFrac <= 0 || trainFrac >= 1 {
		panic(fmt.Sprintf("ml: trainFrac %v out of (0,1)", trainFrac))
	}
	c := Dataset{X: append([][]float64(nil), d.X...), Y: append([]float64(nil), d.Y...)}
	c.Shuffle(rng)
	n := int(float64(c.Len()) * trainFrac)
	train = Dataset{X: c.X[:n], Y: c.Y[:n]}
	test = Dataset{X: c.X[n:], Y: c.Y[n:]}
	return train, test
}

// Subset returns the dataset restricted to the given sample indices.
func (d *Dataset) Subset(idx []int) Dataset {
	out := Dataset{X: make([][]float64, 0, len(idx)), Y: make([]float64, 0, len(idx))}
	for _, i := range idx {
		out.X = append(out.X, d.X[i])
		out.Y = append(out.Y, d.Y[i])
	}
	return out
}

// Regressor is a trainable scalar-output regression model.
type Regressor interface {
	// Fit trains on the dataset, replacing any previous state.
	Fit(ds Dataset) error
	// Predict returns the model output for one raw feature vector.
	Predict(x []float64) float64
}

// PredictAll evaluates the model over every row of X.
func PredictAll(m Regressor, X [][]float64) []float64 {
	out := make([]float64, len(X))
	for i, x := range X {
		out[i] = m.Predict(x)
	}
	return out
}
