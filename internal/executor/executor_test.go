package executor

import (
	"testing"

	"abacus/internal/dnn"
	"abacus/internal/gpusim"
	"abacus/internal/predictor"
	"abacus/internal/sim"
)

func newExec(t *testing.T, syncCost float64) (*Executor, *sim.Engine) {
	t.Helper()
	eng := sim.NewEngine()
	dev := gpusim.New(eng, gpusim.A100Profile())
	return New(dev, syncCost), eng
}

func fullSpan(id dnn.ModelID, batch, seq int) predictor.Entry {
	return predictor.Entry{Model: id, OpStart: 0, OpEnd: dnn.Get(id).NumOps(), Batch: batch, SeqLen: seq}
}

func TestExecuteSingleQuery(t *testing.T) {
	exec, eng := newExec(t, 0)
	var finish sim.Time
	exec.Execute(predictor.Group{fullSpan(dnn.ResNet50, 8, 0)}, func() { finish = eng.Now() })
	if !exec.Busy() {
		t.Fatal("executor should be busy after Execute")
	}
	eng.Run()
	if exec.Busy() {
		t.Fatal("executor still busy after completion")
	}
	want := dnn.SoloLatency(dnn.Get(dnn.ResNet50), dnn.Input{Batch: 8}, gpusim.A100Profile())
	if diff := finish - want; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("group latency %v, want solo latency %v", finish, want)
	}
	if exec.Groups() != 1 {
		t.Errorf("Groups = %d, want 1", exec.Groups())
	}
}

func TestExecuteChargesSyncCost(t *testing.T) {
	const sync = 0.5
	exec, eng := newExec(t, sync)
	var finish sim.Time
	exec.Execute(predictor.Group{fullSpan(dnn.ResNet50, 8, 0)}, func() { finish = eng.Now() })
	eng.Run()
	want := dnn.SoloLatency(dnn.Get(dnn.ResNet50), dnn.Input{Batch: 8}, gpusim.A100Profile()) + sync
	if diff := finish - want; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("latency %v, want %v (incl. sync)", finish, want)
	}
}

func TestExecuteGroupMatchesMeasure(t *testing.T) {
	// The executor and the training-time Measure must agree: the predictor
	// is only valid if both run the identical code path.
	p := gpusim.A100Profile()
	g := predictor.Group{
		{Model: dnn.ResNet50, OpStart: 10, OpEnd: 120, Batch: 16},
		{Model: dnn.Bert, OpStart: 0, OpEnd: 80, Batch: 8, SeqLen: 32},
	}
	want := predictor.Measure(g, p, 0, 0)

	exec, eng := newExec(t, 0)
	var finish sim.Time
	exec.Execute(g, func() { finish = eng.Now() })
	eng.Run()
	if diff := finish - want; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("executor latency %v != Measure %v", finish, want)
	}
}

func TestExecuteWhileBusyPanics(t *testing.T) {
	exec, _ := newExec(t, 0)
	exec.Execute(predictor.Group{fullSpan(dnn.ResNet50, 4, 0)}, func() {})
	defer func() {
		if recover() == nil {
			t.Error("did not panic")
		}
	}()
	exec.Execute(predictor.Group{fullSpan(dnn.VGG16, 4, 0)}, func() {})
}

func TestExecuteInvalidGroupPanics(t *testing.T) {
	exec, _ := newExec(t, 0)
	defer func() {
		if recover() == nil {
			t.Error("did not panic")
		}
	}()
	exec.Execute(predictor.Group{{Model: dnn.ResNet50, OpStart: 5, OpEnd: 2, Batch: 4}}, func() {})
}

func TestExecuteEmptyGroupCompletes(t *testing.T) {
	exec, eng := newExec(t, 0)
	done := false
	exec.Execute(predictor.Group{}, func() { done = true })
	eng.Run()
	if !done || exec.Busy() {
		t.Errorf("empty group: done=%v busy=%v", done, exec.Busy())
	}
}

func TestNegativeSyncCostPanics(t *testing.T) {
	eng := sim.NewEngine()
	dev := gpusim.New(eng, gpusim.A100Profile())
	defer func() {
		if recover() == nil {
			t.Error("did not panic")
		}
	}()
	New(dev, -1)
}

func TestCheckpointAccounting(t *testing.T) {
	exec, eng := newExec(t, 0)
	m := dnn.Get(dnn.ResNet152)
	// Partial span: checkpoint = activation after op 99.
	g := predictor.Group{{Model: dnn.ResNet152, OpStart: 0, OpEnd: 100, Batch: 32}}
	exec.Execute(g, func() {})
	wantBytes := m.Ops[99].OutElems.Eval(dnn.Input{Batch: 32}) * 4
	if got := exec.CheckpointedBytes(); got != wantBytes {
		t.Errorf("CheckpointedBytes = %v, want %v", got, wantBytes)
	}
	eng.Run()

	// Completing the model frees the checkpoint.
	exec.Execute(predictor.Group{{Model: dnn.ResNet152, OpStart: 100, OpEnd: m.NumOps(), Batch: 32}}, func() {})
	if got := exec.CheckpointedBytes(); got != 0 {
		t.Errorf("CheckpointedBytes after completion = %v, want 0", got)
	}
	eng.Run()
	if exec.PeakCheckpointedBytes() != wantBytes {
		t.Errorf("Peak = %v, want %v", exec.PeakCheckpointedBytes(), wantBytes)
	}
	// §7.8: intermediates are tens of MB, small next to model weights.
	if mb := wantBytes / (1 << 20); mb > 64 {
		t.Errorf("checkpoint %v MB implausibly large", mb)
	}
}

func TestExclusiveLatencyMatchesSoloChain(t *testing.T) {
	p := gpusim.A100Profile()
	for _, id := range []dnn.ModelID{dnn.ResNet50, dnn.VGG19, dnn.Bert} {
		in := dnn.Get(id).MaxInput()
		want := dnn.SoloLatency(dnn.Get(id), in, p)
		got := ExclusiveLatency(id, in, p)
		if diff := got - want; diff > 1e-6 || diff < -1e-6 {
			t.Errorf("%v: ExclusiveLatency %v != solo chain %v", id, got, want)
		}
	}
}

func TestBackToBackGroups(t *testing.T) {
	exec, eng := newExec(t, 0)
	count := 0
	var run func()
	run = func() {
		if count == 3 {
			return
		}
		count++
		exec.Execute(predictor.Group{fullSpan(dnn.ResNet50, 4, 0)}, run)
	}
	run()
	eng.Run()
	if count != 3 || exec.Groups() != 3 {
		t.Errorf("ran %d groups, executor says %d, want 3", count, exec.Groups())
	}
}

func TestGroupExecutionOverlapsAndSequentialDoesNot(t *testing.T) {
	// Trace-level proof of the mechanism: a two-query operator group
	// overlaps kernels on the device, while issuing the same spans
	// back-to-back leaves zero overlap.
	g := predictor.Group{
		{Model: dnn.ResNet50, OpStart: 0, OpEnd: 120, Batch: 16},
		{Model: dnn.InceptionV3, OpStart: 0, OpEnd: 120, Batch: 16},
	}
	overlapped := func() float64 {
		exec, eng := newExec(t, 0)
		events := exec.Device().CollectTrace()
		exec.Execute(g, func() {})
		eng.Run()
		return gpusim.OverlapTime(*events, 2)
	}()
	sequential := func() float64 {
		exec, eng := newExec(t, 0)
		events := exec.Device().CollectTrace()
		exec.Execute(g[:1], func() {
			exec.Execute(g[1:], func() {})
		})
		eng.Run()
		return gpusim.OverlapTime(*events, 2)
	}()
	if sequential != 0 {
		t.Errorf("sequential issue produced %v ms of overlap", sequential)
	}
	if overlapped <= 1 {
		t.Errorf("group execution produced only %v ms of overlap", overlapped)
	}
}

func TestIdenticalGroupsProduceIdenticalTimelines(t *testing.T) {
	// §5.2 determinism at the kernel-timeline level: not just the same
	// makespan, the exact same schedule.
	g := predictor.Group{
		{Model: dnn.ResNet152, OpStart: 50, OpEnd: 250, Batch: 8},
		{Model: dnn.Bert, OpStart: 0, OpEnd: 100, Batch: 16, SeqLen: 32},
	}
	run := func() []gpusim.KernelEvent {
		exec, eng := newExec(t, 0)
		events := exec.Device().CollectTrace()
		exec.Execute(g, func() {})
		eng.Run()
		return *events
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("timelines differ in length: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("event %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestGroupRunPoolReuse(t *testing.T) {
	exec, eng := newExec(t, 0.05)
	g := predictor.Group{
		{Model: dnn.ResNet50, OpStart: 0, OpEnd: 20, Batch: 8},
		{Model: dnn.VGG16, OpStart: 0, OpEnd: 10, Batch: 4},
	}
	cycle := func() {
		exec.Execute(g, func() {})
		eng.Run()
	}
	cycle()
	if len(exec.freeRuns) != 1 {
		t.Fatalf("pool holds %d group runs after a group drained, want 1", len(exec.freeRuns))
	}
	if len(exec.freeSpecs) != 2 {
		t.Fatalf("pool holds %d spec buffers after a 2-span group, want 2", len(exec.freeSpecs))
	}
	events := eng.AllocatedEvents()
	cycle()
	if got := eng.AllocatedEvents(); got != events {
		t.Errorf("repeat group allocated %d new events, want 0", got-events)
	}
	if len(exec.freeRuns) != 1 || len(exec.freeSpecs) != 2 {
		t.Errorf("repeat group grew pools to %d runs / %d spec buffers, want 1 / 2",
			len(exec.freeRuns), len(exec.freeSpecs))
	}
}

// TestExecuteSteadyStateAllocs pins the end-to-end win at the executor
// layer: once pools are warm, issuing and draining a contended group is
// nearly allocation-free. The only remaining allocations are the caller's
// done-closure and dnn model/profile lookups, bounded well below one per
// operator (a ResNet-50 + VGG-16 group runs ~30 kernels here).
func TestExecuteSteadyStateAllocs(t *testing.T) {
	exec, eng := newExec(t, 0.05)
	g := predictor.Group{
		{Model: dnn.ResNet50, OpStart: 0, OpEnd: 20, Batch: 8},
		{Model: dnn.VGG16, OpStart: 0, OpEnd: 10, Batch: 4},
	}
	done := func() {}
	cycle := func() {
		exec.Execute(g, done)
		eng.Run()
	}
	for i := 0; i < 3; i++ {
		cycle()
	}
	if allocs := testing.AllocsPerRun(50, cycle); allocs > 2 {
		t.Errorf("steady-state group execution allocated %v times per run, want <= 2", allocs)
	}
}
