// Package executor implements the paper's flexible segmental model executor
// (§6.1). It executes one deterministic operator group at a time on a
// (simulated) GPU: the spans of all member queries are issued together, run
// concurrently under contention, and a synchronization point marks the group
// complete. Partially processed queries have their intermediate activations
// checkpointed so the next group can resume them.
//
// The paper runs each DNN service in its own OS process for fault isolation;
// in the simulation the processes' only architecturally visible effect — one
// span per service per group, independent kernel chains — is preserved.
package executor

import (
	"fmt"

	"abacus/internal/dnn"
	"abacus/internal/gpusim"
	"abacus/internal/predictor"
)

// Executor drives one device, exclusively: a new group may only be issued
// once the previous group's synchronization completed, which is exactly how
// Abacus guarantees that the operator overlap is the one the predictor was
// consulted about (§4 step 3).
type Executor struct {
	dev  *gpusim.Device
	busy bool

	syncCost float64 // host-side synchronization cost charged per group, ms

	groups        int64
	checkpointed  float64 // bytes of intermediate results currently saved
	peakCheckpoin float64

	// Pools: group-run records and kernel-spec buffers are recycled across
	// groups so the issue → overlap → sync cycle allocates nothing in
	// steady state (see DESIGN.md "Simulation hot path").
	freeRuns  []*groupRun
	freeSpecs [][]gpusim.KernelSpec
}

// groupRun tracks one in-flight group: the countdown of unfinished spans,
// the caller's completion callback, and the pooled spec buffers to release
// once the group synchronizes. It rides through the device's callback
// machinery as a (func(any), arg) pair, so no closures are allocated.
type groupRun struct {
	ex        *Executor
	remaining int
	done      func()
	specs     [][]gpusim.KernelSpec
}

// New returns an executor over the device. syncCost is the per-group
// synchronization overhead charged on the virtual clock (≥ 0).
func New(dev *gpusim.Device, syncCost float64) *Executor {
	if syncCost < 0 {
		panic("executor: negative sync cost")
	}
	return &Executor{dev: dev, syncCost: syncCost}
}

// Device returns the underlying device.
func (e *Executor) Device() *gpusim.Device { return e.dev }

// Busy reports whether a group is in flight.
func (e *Executor) Busy() bool { return e.busy }

// Groups returns the number of groups executed so far.
func (e *Executor) Groups() int64 { return e.groups }

// CheckpointedBytes returns the bytes of intermediate results currently
// saved for partially processed queries (§7.8 reports ~20 MB).
func (e *Executor) CheckpointedBytes() float64 { return e.checkpointed }

// PeakCheckpointedBytes returns the high-water mark of checkpoint memory.
func (e *Executor) PeakCheckpointedBytes() float64 { return e.peakCheckpoin }

// Execute issues the group. Every span runs as a dependent kernel chain;
// chains from different queries overlap on the device. done fires after all
// spans complete and the synchronization cost elapsed. Execute panics if a
// group is already in flight or the group is invalid — the query controller
// guarantees both.
func (e *Executor) Execute(g predictor.Group, done func()) {
	if e.busy {
		panic("executor: Execute while a group is in flight")
	}
	if err := g.Validate(); err != nil {
		panic(fmt.Errorf("executor: %w", err))
	}
	e.busy = true
	e.groups++
	e.accountCheckpoints(g)

	gr := e.getRun()
	gr.remaining = len(g)
	gr.done = done
	if gr.remaining == 0 {
		e.dev.Engine().ScheduleArg(e.syncCost, groupSync, gr)
		return
	}
	for _, entry := range g {
		m := dnn.Get(entry.Model)
		specs := dnn.AppendKernels(e.getSpecs(), m, entry.Input(), e.dev.Profile(), entry.OpStart, entry.OpEnd)
		gr.specs = append(gr.specs, specs)
		e.dev.RunChainArg(specs, groupSpanDone, gr)
	}
}

// groupSpanDone fires when one span's kernel chain completes; the last span
// arms the group's synchronization point.
func groupSpanDone(a any) {
	gr := a.(*groupRun)
	gr.remaining--
	if gr.remaining == 0 {
		gr.ex.dev.Engine().ScheduleArg(gr.ex.syncCost, groupSync, gr)
	}
}

// groupSync fires after the synchronization cost elapses: the run record and
// its spec buffers return to the pool before the caller's callback runs, so
// a callback that immediately issues the next group reuses them.
func groupSync(a any) {
	gr := a.(*groupRun)
	ex, done := gr.ex, gr.done
	ex.putRun(gr)
	ex.busy = false
	done()
}

func (e *Executor) getRun() *groupRun {
	if n := len(e.freeRuns); n > 0 {
		gr := e.freeRuns[n-1]
		e.freeRuns[n-1] = nil
		e.freeRuns = e.freeRuns[:n-1]
		gr.ex = e
		return gr
	}
	return &groupRun{ex: e}
}

func (e *Executor) putRun(gr *groupRun) {
	for i, s := range gr.specs {
		e.freeSpecs = append(e.freeSpecs, s[:0])
		gr.specs[i] = nil
	}
	specs := gr.specs[:0]
	*gr = groupRun{specs: specs}
	e.freeRuns = append(e.freeRuns, gr)
}

func (e *Executor) getSpecs() []gpusim.KernelSpec {
	if n := len(e.freeSpecs); n > 0 {
		s := e.freeSpecs[n-1]
		e.freeSpecs[n-1] = nil
		e.freeSpecs = e.freeSpecs[:n-1]
		return s
	}
	return nil
}

// accountCheckpoints updates the intermediate-result memory gauge: an entry
// that stops before its model's end checkpoints the activation at the span
// boundary; an entry that completes its model frees its checkpoint.
func (e *Executor) accountCheckpoints(g predictor.Group) {
	var saved float64
	for _, entry := range g {
		m := dnn.Get(entry.Model)
		if entry.OpEnd < m.NumOps() {
			// Output activation of the last executed operator, fp32.
			saved += m.Ops[entry.OpEnd-1].OutElems.Eval(entry.Input()) * 4
		}
	}
	e.checkpointed = saved
	if saved > e.peakCheckpoin {
		e.peakCheckpoin = saved
	}
}

// ExclusiveLatency is a convenience: the exclusive-device latency of a whole
// query (all operators, no co-runners) — what the sequential baselines pay
// per query, and the basis of the paper's 2×-solo QoS targets.
func ExclusiveLatency(id dnn.ModelID, in dnn.Input, p gpusim.Profile) float64 {
	m := dnn.Get(id)
	return dnn.SpanWork(m, in, p, 0, m.NumOps())
}
