// Package core assembles the Abacus runtime system of Figure 5: the
// overlap-aware latency predictor, the headroom-based query controller, and
// the segmental model executor, wired onto one (simulated) GPU. It is the
// paper's primary contribution as a reusable component: callers submit
// queries as they arrive and receive per-query outcomes, while the runtime
// forms and issues deterministic operator groups underneath.
//
// internal/serving wraps this runtime for batch experiments; cmd/ and
// examples/ use it directly for streaming workloads.
package core

import (
	"fmt"

	"abacus/internal/dnn"
	"abacus/internal/executor"
	"abacus/internal/gpusim"
	"abacus/internal/predictor"
	"abacus/internal/sched"
	"abacus/internal/sim"
)

// Config assembles a runtime.
type Config struct {
	// Models are the co-located services.
	Models []dnn.ModelID
	// QoSFactor scales QoS targets over max-input solo latency (default 2).
	QoSFactor float64
	// Model is the duration model; nil selects the exact oracle.
	Model predictor.LatencyModel
	// Sched carries controller knobs; zero value = sched.DefaultConfig.
	Sched sched.Config
	// SyncCost is the per-group synchronization cost (default 0.02 ms).
	SyncCost float64
	// Profile is the device model; zero value = A100.
	Profile gpusim.Profile
	// Device, when non-nil, overrides Profile and runs the runtime on the
	// given (possibly MIG-partitioned) device.
	Device *gpusim.Device
	// OnResult receives every finished or dropped query exactly once.
	OnResult func(*sched.Query)
}

// Runtime is one node-level Abacus instance.
type Runtime struct {
	eng      *sim.Engine
	dev      *gpusim.Device
	exec     *executor.Executor
	ctrl     *sched.Abacus
	services []*sched.Service
	nextID   int64
}

// New builds the runtime.
func New(cfg Config) (*Runtime, error) {
	if len(cfg.Models) == 0 {
		return nil, fmt.Errorf("core: no models")
	}
	seen := map[dnn.ModelID]bool{}
	for _, m := range cfg.Models {
		if seen[m] {
			return nil, fmt.Errorf("core: model %v deployed twice (one service per model per GPU)", m)
		}
		seen[m] = true
	}
	if cfg.QoSFactor == 0 {
		cfg.QoSFactor = 2
	}
	profile := cfg.Profile
	if profile.NumSMs == 0 {
		profile = gpusim.A100Profile()
	}
	dev := cfg.Device
	var eng *sim.Engine
	if dev == nil {
		eng = sim.NewEngine()
		dev = gpusim.New(eng, profile)
	} else {
		eng = dev.Engine()
		profile = dev.Profile()
	}
	syncCost := cfg.SyncCost
	if syncCost == 0 {
		syncCost = 0.02
	}
	model := cfg.Model
	if model == nil {
		model = predictor.Oracle{Profile: profile}
	}
	schedCfg := cfg.Sched
	if schedCfg == (sched.Config{}) {
		schedCfg = sched.DefaultConfig()
	}
	sink := cfg.OnResult
	if sink == nil {
		sink = func(*sched.Query) {}
	}
	exec := executor.New(dev, syncCost)
	rt := &Runtime{
		eng:      eng,
		dev:      dev,
		exec:     exec,
		services: sched.Services(cfg.Models, cfg.QoSFactor, profile),
	}
	rt.ctrl = sched.NewAbacus(eng, exec, model, schedCfg, sink)
	return rt, nil
}

// Engine returns the virtual clock driving the runtime.
func (r *Runtime) Engine() *sim.Engine { return r.eng }

// Device returns the underlying device.
func (r *Runtime) Device() *gpusim.Device { return r.dev }

// Executor returns the segmental model executor (for overhead inspection).
func (r *Runtime) Executor() *executor.Executor { return r.exec }

// Controller returns the headroom-based query controller.
func (r *Runtime) Controller() *sched.Abacus { return r.ctrl }

// Services returns the deployed services with their QoS targets.
func (r *Runtime) Services() []*sched.Service { return r.services }

// Submit schedules a query of the given service (index into Config.Models)
// to arrive at virtual time `at`; its input transfer is charged before the
// controller sees it. Submit panics on an unknown service index.
func (r *Runtime) Submit(service int, in dnn.Input, at sim.Time) *sched.Query {
	return r.SubmitSLO(service, in, at, 0)
}

// SubmitSLO is Submit with a per-query deadline override: when sloMS > 0 the
// query's deadline is at+sloMS instead of the service-wide QoS target. The
// online gateway uses it to honor request-supplied deadlines.
func (r *Runtime) SubmitSLO(service int, in dnn.Input, at sim.Time, sloMS float64) *sched.Query {
	if service < 0 || service >= len(r.services) {
		panic(fmt.Sprintf("core: service %d out of range", service))
	}
	svc := r.services[service]
	r.nextID++
	q := &sched.Query{ID: r.nextID, Service: svc, Input: in, Arrival: at, SLO: sloMS}
	transfer := dnn.TransferTime(dnn.Get(svc.Model), in, r.dev.Profile())
	r.eng.ScheduleAt(at+transfer, func() { r.ctrl.Enqueue(q) })
	return q
}

// RunUntil advances the virtual clock, processing submissions and groups.
func (r *Runtime) RunUntil(t sim.Time) { r.eng.RunUntil(t) }

// Drain runs the engine until no work remains.
func (r *Runtime) Drain() { r.eng.Run() }
