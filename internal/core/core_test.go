package core

import (
	"testing"

	"abacus/internal/dnn"
	"abacus/internal/gpusim"
	"abacus/internal/sched"
	"abacus/internal/sim"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("empty config accepted")
	}
	rt, err := New(Config{Models: []dnn.ModelID{dnn.ResNet50}})
	if err != nil {
		t.Fatal(err)
	}
	if rt.Engine() == nil || rt.Device() == nil || rt.Executor() == nil || rt.Controller() == nil {
		t.Error("runtime components missing")
	}
	if len(rt.Services()) != 1 {
		t.Errorf("services = %d, want 1", len(rt.Services()))
	}
}

func TestSubmitAndDrain(t *testing.T) {
	var results []*sched.Query
	rt, err := New(Config{
		Models:   []dnn.ModelID{dnn.ResNet50, dnn.Bert},
		OnResult: func(q *sched.Query) { results = append(results, q) },
	})
	if err != nil {
		t.Fatal(err)
	}
	q1 := rt.Submit(0, dnn.Input{Batch: 8}, 0)
	q2 := rt.Submit(1, dnn.Input{Batch: 8, SeqLen: 32}, 1)
	rt.Drain()
	if len(results) != 2 {
		t.Fatalf("got %d results", len(results))
	}
	for _, q := range []*sched.Query{q1, q2} {
		if q.Dropped {
			t.Errorf("query %d dropped on an idle device", q.ID)
		}
		if q.Finish <= q.Arrival {
			t.Errorf("query %d finish %v <= arrival %v", q.ID, q.Finish, q.Arrival)
		}
	}
}

func TestSubmitUnknownServicePanics(t *testing.T) {
	rt, err := New(Config{Models: []dnn.ModelID{dnn.ResNet50}})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Error("did not panic")
		}
	}()
	rt.Submit(3, dnn.Input{Batch: 8}, 0)
}

func TestRuntimeOnPartitionedDevice(t *testing.T) {
	eng := sim.NewEngine()
	full := gpusim.New(eng, gpusim.A100Profile())
	part := full.Partition(0.5, 0.5)
	var done int
	rt, err := New(Config{
		Models:   []dnn.ModelID{dnn.ResNet50},
		Device:   part,
		OnResult: func(q *sched.Query) { done++ },
	})
	if err != nil {
		t.Fatal(err)
	}
	if rt.Engine() != eng {
		t.Error("runtime did not adopt the partition's engine")
	}
	rt.Submit(0, dnn.Input{Batch: 16}, 0)
	rt.Drain()
	if done != 1 {
		t.Errorf("done = %d", done)
	}
}

func TestRunUntilAdvancesIncrementally(t *testing.T) {
	var results int
	rt, err := New(Config{
		Models:   []dnn.ModelID{dnn.ResNet50},
		OnResult: func(*sched.Query) { results++ },
	})
	if err != nil {
		t.Fatal(err)
	}
	rt.Submit(0, dnn.Input{Batch: 4}, 0)
	rt.Submit(0, dnn.Input{Batch: 4}, 100)
	rt.RunUntil(50)
	if results != 1 {
		t.Errorf("results at t=50: %d, want 1", results)
	}
	rt.RunUntil(300)
	if results != 2 {
		t.Errorf("results at t=300: %d, want 2", results)
	}
}

func TestNewRejectsDuplicateModels(t *testing.T) {
	if _, err := New(Config{Models: []dnn.ModelID{dnn.Bert, dnn.Bert}}); err == nil {
		t.Error("duplicate model deployment accepted")
	}
}

func TestSubmitSLOOverridesDeadline(t *testing.T) {
	rt, err := New(Config{Models: []dnn.ModelID{dnn.ResNet50}})
	if err != nil {
		t.Fatal(err)
	}
	svcQoS := rt.Services()[0].QoS
	q := rt.SubmitSLO(0, dnn.Input{Batch: 4}, 10, 3*svcQoS)
	if got, want := q.Deadline(), 10+3*svcQoS; got != want {
		t.Errorf("SLO deadline = %v, want %v", got, want)
	}
	plain := rt.Submit(0, dnn.Input{Batch: 4}, 10)
	if got, want := plain.Deadline(), 10+svcQoS; got != want {
		t.Errorf("default deadline = %v, want %v", got, want)
	}
	rt.Drain()
	if q.Dropped || plain.Dropped {
		t.Error("idle-device queries dropped")
	}
}
