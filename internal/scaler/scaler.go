// Package scaler turns autoscale.Planner recommendations into live cluster
// actions. It is the deliberately host-agnostic half of the elastic
// autoscaler: a Controller owns the planner, the node lifecycle book-keeping
// (Warming → Active → Draining → Retired), and the node-time accounting,
// while the host — the chaos harness in virtual time, the HTTP gateway in
// wall time — executes the advice (actually provisioning per-GPU nodes,
// rebuilding route tables, draining in-flight work) and reports lifecycle
// transitions back.
//
// The control loop is a fixed-interval tick: the host measures offered QPS
// over the interval from its per-service stat shards, calls Tick, and acts
// on the returned Advice. A freshly added node pays a modeled
// model-activation warm-up window during which the router sends it only a
// probe trickle; the Controller promotes it to Active on the first tick at
// or past its warm-up deadline. Drains pick the newest nodes first, so the
// long-lived founders keep their calibration state and the probationary
// capacity is released first.
package scaler

import (
	"fmt"

	"abacus/internal/autoscale"
)

// Config tunes the live scaling loop.
type Config struct {
	// MinNodes floors the fleet; it is also the initial size (default 1).
	MinNodes int
	// MaxNodes caps the fleet (default 8).
	MaxNodes int
	// CapacityQPS is the per-node sustainable goodput the planner sizes
	// against (required; see autoscale.BuildPlan for estimating it).
	CapacityQPS float64
	// Headroom is the target utilization ceiling (default 0.7).
	Headroom float64
	// Alpha is the EWMA smoothing factor for the forecast (default 0.3).
	Alpha float64
	// ScaleInSlack is the hysteresis band: the fleet must be this much
	// oversized before shrinking (default 1.3).
	ScaleInSlack float64
	// ScaleInCooldown suppresses scale-in for this many ticks after any
	// scale action (default 5).
	ScaleInCooldown int
	// IntervalMS is the control-loop tick period in virtual milliseconds
	// (default 1000).
	IntervalMS float64
	// WarmupMS is the modeled model-activation window a new node pays
	// before it takes full traffic (default 1500). Promotion happens on
	// the first tick at or past the deadline, so the effective warm-up
	// rounds up to the tick interval.
	WarmupMS float64
}

func (c Config) withDefaults() Config {
	if c.MinNodes <= 0 {
		c.MinNodes = 1
	}
	if c.MaxNodes == 0 {
		c.MaxNodes = 8
	}
	if c.Headroom == 0 {
		c.Headroom = 0.7
	}
	if c.Alpha == 0 {
		c.Alpha = 0.3
	}
	if c.ScaleInSlack == 0 {
		c.ScaleInSlack = 1.3
	}
	if c.ScaleInCooldown == 0 {
		c.ScaleInCooldown = 5
	}
	if c.IntervalMS == 0 {
		c.IntervalMS = 1000
	}
	if c.WarmupMS == 0 {
		c.WarmupMS = 1500
	}
	return c
}

// Phase is a node's position in the elastic lifecycle.
type Phase int

// The lifecycle: a node warms up, serves, drains, and is retired.
const (
	Warming Phase = iota
	Active
	Draining
	Retired
)

// String names the phase.
func (p Phase) String() string {
	switch p {
	case Warming:
		return "warming"
	case Active:
		return "active"
	case Draining:
		return "draining"
	case Retired:
		return "retired"
	default:
		return fmt.Sprintf("Phase(%d)", int(p))
	}
}

// Node is the lifecycle record for one provisioned node. Times are in the
// host's clock domain (virtual ms in simulation, ms since the gateway epoch
// online).
type Node struct {
	ID           int
	Phase        Phase
	AddedMS      float64 // provisioned: node-time starts accruing
	ActiveMS     float64 // promoted out of warm-up
	DrainStartMS float64
	RetiredMS    float64
}

// Advice is the set of actions one tick asks the host to execute. IDs in
// Add are freshly allocated: the host must provision a node per ID and
// route it only a probe trickle until it appears in Promote. IDs in Drain
// must be made unroutable and retired (via Controller.Retire) once their
// in-flight work completes.
type Advice struct {
	Decision autoscale.Decision
	Reason   string
	Target   int
	Promote  []int
	Add      []int
	Drain    []int
}

// Controller drives the planner and tracks the fleet lifecycle. It is not
// goroutine-safe: the chaos harness calls it from the engine goroutine, the
// gateway serializes access behind its scale mutex.
type Controller struct {
	cfg           Config
	planner       *autoscale.Planner
	nodes         []*Node // append-only, indexed by ID
	retiredNodeMS float64 // accumulated lifetime of retired nodes
	peakLive      int
	ticks         int64
	scaleOuts     int64 // node-add actions
	scaleIns      int64 // node-drain actions
}

// New builds a controller with MinNodes already Active at time zero.
func New(cfg Config) (*Controller, error) {
	cfg = cfg.withDefaults()
	if cfg.CapacityQPS <= 0 {
		return nil, fmt.Errorf("scaler: capacity %v must be positive", cfg.CapacityQPS)
	}
	if cfg.IntervalMS <= 0 {
		return nil, fmt.Errorf("scaler: interval %v must be positive", cfg.IntervalMS)
	}
	if cfg.WarmupMS < 0 {
		return nil, fmt.Errorf("scaler: warmup %v must be >= 0", cfg.WarmupMS)
	}
	planner, err := autoscale.NewPlanner(autoscale.PlannerConfig{
		Plan:            autoscale.Plan{CapacityQPS: cfg.CapacityQPS},
		Headroom:        cfg.Headroom,
		Alpha:           cfg.Alpha,
		MinNodes:        cfg.MinNodes,
		MaxNodes:        cfg.MaxNodes,
		ScaleInSlack:    cfg.ScaleInSlack,
		ScaleInCooldown: cfg.ScaleInCooldown,
	})
	if err != nil {
		return nil, err
	}
	c := &Controller{cfg: cfg, planner: planner, peakLive: cfg.MinNodes}
	for i := 0; i < cfg.MinNodes; i++ {
		c.nodes = append(c.nodes, &Node{ID: i, Phase: Active})
	}
	return c, nil
}

// Config returns the controller's resolved configuration.
func (c *Controller) Config() Config { return c.cfg }

// Tick feeds one interval's offered load, promotes warmed-up nodes, and
// returns the actions the host must execute. nowMS must be monotonically
// non-decreasing across calls.
func (c *Controller) Tick(nowMS, offeredQPS float64) Advice {
	c.ticks++
	adv := Advice{}
	// Promote first: a node that finished warming counts as serving
	// capacity before this tick's add/drain decisions.
	for _, n := range c.nodes {
		if n.Phase == Warming && nowMS >= n.AddedMS+c.cfg.WarmupMS {
			n.Phase = Active
			n.ActiveMS = nowMS
			adv.Promote = append(adv.Promote, n.ID)
		}
	}
	dec, target := c.planner.Observe(offeredQPS)
	adv.Decision = dec
	adv.Reason = c.planner.Last().Reason
	adv.Target = target
	live := c.live()
	for live < target {
		n := &Node{ID: len(c.nodes), Phase: Warming, AddedMS: nowMS}
		c.nodes = append(c.nodes, n)
		adv.Add = append(adv.Add, n.ID)
		c.scaleOuts++
		live++
	}
	// Drain newest-first: warming probationers go before seasoned actives,
	// and the founders (with their learned calibration) go last.
	for live > target {
		d := c.newestLive()
		if d == nil {
			break
		}
		d.Phase = Draining
		d.DrainStartMS = nowMS
		adv.Drain = append(adv.Drain, d.ID)
		c.scaleIns++
		live--
	}
	if live > c.peakLive {
		c.peakLive = live
	}
	return adv
}

// Retire marks a draining node fully stopped (in-flight work done, bridge
// retired) and closes its node-time window.
func (c *Controller) Retire(id int, nowMS float64) {
	n := c.node(id)
	if n == nil || n.Phase == Retired {
		return
	}
	n.Phase = Retired
	n.RetiredMS = nowMS
	c.retiredNodeMS += nowMS - n.AddedMS
}

// Phase reports a node's lifecycle phase; ok is false for unknown IDs.
func (c *Controller) Phase(id int) (Phase, bool) {
	n := c.node(id)
	if n == nil {
		return 0, false
	}
	return n.Phase, true
}

// NodeMS returns total accumulated node-time in milliseconds: retired
// lifetimes plus the open windows of still-live nodes measured at nowMS.
// This is the numerator of the node-hours-saved figure.
func (c *Controller) NodeMS(nowMS float64) float64 {
	total := c.retiredNodeMS
	for _, n := range c.nodes {
		if n.Phase != Retired {
			total += nowMS - n.AddedMS
		}
	}
	return total
}

// Nodes returns copies of every lifecycle record (including retired nodes),
// ordered by ID.
func (c *Controller) Nodes() []Node {
	out := make([]Node, len(c.nodes))
	for i, n := range c.nodes {
		out[i] = *n
	}
	return out
}

// Snapshot is a point-in-time view of the controller for /statz and
// reports.
type Snapshot struct {
	Target   int
	Live     int
	Warming  int
	Active   int
	Draining int
	Retired  int
	Peak     int
	Ticks    int64
	// ScaleOuts and ScaleIns count node-level actions (one planner
	// decision shrinking 3 → 1 is two ScaleIns).
	ScaleOuts int64
	ScaleIns  int64
	NodeMS    float64
	Forecast  float64
	Last      autoscale.LastDecision
	Counters  autoscale.Counters
}

// Snapshot captures the controller state with node-time measured at nowMS.
func (c *Controller) Snapshot(nowMS float64) Snapshot {
	s := Snapshot{
		Target:    c.planner.Nodes(),
		Peak:      c.peakLive,
		Ticks:     c.ticks,
		ScaleOuts: c.scaleOuts,
		ScaleIns:  c.scaleIns,
		NodeMS:    c.NodeMS(nowMS),
		Forecast:  c.planner.Forecast(),
		Last:      c.planner.Last(),
		Counters:  c.planner.Counters(),
	}
	for _, n := range c.nodes {
		switch n.Phase {
		case Warming:
			s.Warming++
		case Active:
			s.Active++
		case Draining:
			s.Draining++
		case Retired:
			s.Retired++
		}
	}
	s.Live = s.Warming + s.Active
	return s
}

// live counts nodes that are serving capacity (warming counts: it will be
// by the time demand needs it).
func (c *Controller) live() int {
	live := 0
	for _, n := range c.nodes {
		if n.Phase == Warming || n.Phase == Active {
			live++
		}
	}
	return live
}

// newestLive returns the live node with the highest ID, or nil.
func (c *Controller) newestLive() *Node {
	for i := len(c.nodes) - 1; i >= 0; i-- {
		if n := c.nodes[i]; n.Phase == Warming || n.Phase == Active {
			return n
		}
	}
	return nil
}

// node looks up a lifecycle record by ID (IDs are assigned densely in
// creation order, so the ID is the index).
func (c *Controller) node(id int) *Node {
	if id < 0 || id >= len(c.nodes) {
		return nil
	}
	return c.nodes[id]
}
