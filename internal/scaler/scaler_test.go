package scaler

import (
	"testing"

	"abacus/internal/autoscale"
)

func newController(t *testing.T, cfg Config) *Controller {
	t.Helper()
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestLifecycleAddPromoteDrainRetire(t *testing.T) {
	c := newController(t, Config{
		MinNodes: 1, MaxNodes: 4, CapacityQPS: 10,
		IntervalMS: 1000, WarmupMS: 1500, ScaleInCooldown: 1, Alpha: 1,
	})

	// 30 QPS against 7 usable per node → need 5, clamped to 4: add 3.
	adv := c.Tick(1000, 30)
	if adv.Decision != autoscale.ScaleOut || len(adv.Add) != 3 {
		t.Fatalf("tick 1: got %v add=%v, want scale-out of 3", adv.Decision, adv.Add)
	}
	if adv.Reason != autoscale.ReasonScaleOut {
		t.Errorf("tick 1 reason %q", adv.Reason)
	}
	for _, id := range adv.Add {
		if ph, ok := c.Phase(id); !ok || ph != Warming {
			t.Errorf("added node %d phase %v, want warming", id, ph)
		}
	}

	// Next tick is before the warm-up deadline (1000+1500=2500): no
	// promotion yet.
	adv = c.Tick(2000, 30)
	if len(adv.Promote) != 0 {
		t.Fatalf("tick 2 promoted %v before warm-up deadline", adv.Promote)
	}
	// Past the deadline all three promote.
	adv = c.Tick(3000, 30)
	if len(adv.Promote) != 3 {
		t.Fatalf("tick 3 promoted %v, want 3 nodes", adv.Promote)
	}
	for _, id := range adv.Promote {
		if ph, _ := c.Phase(id); ph != Active {
			t.Errorf("promoted node %d phase %v, want active", id, ph)
		}
	}

	// Load vanishes: hysteresis allows shrink, but cooldown from the last
	// action must pass first (cooldown=1 suppresses the next observation's
	// scale-in... it was set at tick 1, decremented ticks 2; by now it is
	// clear). Demand 0 → need 1 → drain 3 newest.
	adv = c.Tick(4000, 0)
	if adv.Decision != autoscale.ScaleIn || len(adv.Drain) != 3 {
		t.Fatalf("tick 4: got %v drain=%v, want scale-in of 3", adv.Decision, adv.Drain)
	}
	// Newest-first: IDs 3, 2, 1 in that order; founder 0 survives.
	want := []int{3, 2, 1}
	for i, id := range adv.Drain {
		if id != want[i] {
			t.Fatalf("drain order %v, want %v", adv.Drain, want)
		}
	}
	if ph, _ := c.Phase(0); ph != Active {
		t.Errorf("founder phase %v, want active", ph)
	}

	for _, id := range adv.Drain {
		c.Retire(id, 4500)
	}
	s := c.Snapshot(5000)
	if s.Live != 1 || s.Active != 1 || s.Retired != 3 || s.Peak != 4 {
		t.Errorf("snapshot %+v, want live=1 active=1 retired=3 peak=4", s)
	}
	if s.ScaleOuts != 3 || s.ScaleIns != 3 {
		t.Errorf("actions %d/%d, want 3/3", s.ScaleOuts, s.ScaleIns)
	}
}

func TestNodeMSAccounting(t *testing.T) {
	c := newController(t, Config{MinNodes: 1, MaxNodes: 4, CapacityQPS: 10, WarmupMS: 500})

	// Founder runs [0, now]. A node added at t=1000 and retired at t=3000
	// contributes exactly 2000.
	adv := c.Tick(1000, 20) // need ceil(20/7)=3 → add 2
	if len(adv.Add) != 2 {
		t.Fatalf("add=%v, want 2 nodes", adv.Add)
	}
	c.Retire(adv.Add[0], 3000)
	c.Retire(adv.Add[1], 3000)
	// At t=4000: founder 4000 + two retirees 2000 each = 8000.
	if got := c.NodeMS(4000); got != 8000 {
		t.Errorf("NodeMS = %v, want 8000", got)
	}
	// Retire is idempotent.
	c.Retire(adv.Add[0], 9000)
	if got := c.NodeMS(4000); got != 8000 {
		t.Errorf("NodeMS after duplicate retire = %v, want 8000", got)
	}
}

func TestDrainPrefersWarmingNodes(t *testing.T) {
	c := newController(t, Config{MinNodes: 2, MaxNodes: 8, CapacityQPS: 10, WarmupMS: 10_000, ScaleInSlack: 1, ScaleInCooldown: 1, Alpha: 1})

	adv := c.Tick(1000, 30) // need 5 → add 3 warming
	if len(adv.Add) != 3 {
		t.Fatalf("add=%v, want 3", adv.Add)
	}
	// Demand collapses before they warm up: the drains must hit the
	// still-warming newest nodes, never the active founders.
	c.Tick(2000, 0) // cooldown from the scale-out holds this one
	adv = c.Tick(3000, 0)
	if len(adv.Drain) != 3 {
		t.Fatalf("drain=%v, want the 3 warming nodes", adv.Drain)
	}
	for _, id := range adv.Drain {
		if id < 2 {
			t.Errorf("drained founder %d while warming nodes existed", id)
		}
	}
	for id := 0; id < 2; id++ {
		if ph, _ := c.Phase(id); ph != Active {
			t.Errorf("founder %d phase %v, want active", id, ph)
		}
	}
}

func TestSnapshotCountersSurfacePlannerState(t *testing.T) {
	c := newController(t, Config{MinNodes: 1, MaxNodes: 2, CapacityQPS: 10, ScaleInCooldown: 3, Alpha: 1})

	c.Tick(1000, 100) // clamped at MaxNodes: scale-out 1 → 2
	adv := c.Tick(2000, 100)
	if adv.Reason != autoscale.ReasonMaxNodes {
		t.Errorf("reason %q, want max-nodes", adv.Reason)
	}
	adv = c.Tick(3000, 0) // cooldown from tick-1 action still holds
	if adv.Reason != autoscale.ReasonCooldown {
		t.Errorf("reason %q, want cooldown", adv.Reason)
	}
	s := c.Snapshot(3000)
	if s.Counters.HeldMaxNodes != 1 || s.Counters.HeldCooldown != 1 {
		t.Errorf("counters %+v, want held max-nodes=1 cooldown=1", s.Counters)
	}
	if s.Last.Reason != autoscale.ReasonCooldown || s.Ticks != 3 {
		t.Errorf("last=%+v ticks=%d", s.Last, s.Ticks)
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("zero capacity accepted")
	}
	if _, err := New(Config{CapacityQPS: 10, MinNodes: 5, MaxNodes: 2}); err == nil {
		t.Error("max < min accepted")
	}
	if _, err := New(Config{CapacityQPS: 10, WarmupMS: -1}); err == nil {
		t.Error("negative warmup accepted")
	}
}
