// Package predictor implements the paper's overlap-aware latency predictor
// (§5): the operator-group abstraction, the Figure 8 feature encoding, the
// Figure 9 instance-based sampler, ground-truth collection on the simulated
// device, and training/evaluation of the MLP duration model and its LR/SVM
// baselines.
package predictor

import (
	"fmt"
	"sort"

	"abacus/internal/dnn"
	"abacus/internal/gpusim"
	"abacus/internal/sim"
)

// Entry is one query's contribution to an operator group: a contiguous span
// [OpStart, OpEnd) of its model's topologically ordered operators, at the
// query's runtime input.
type Entry struct {
	Model   dnn.ModelID
	OpStart int // inclusive
	OpEnd   int // exclusive
	Batch   int
	SeqLen  int // zero for CV models
}

// Input returns the dnn input of the entry.
func (e Entry) Input() dnn.Input { return dnn.Input{Batch: e.Batch, SeqLen: e.SeqLen} }

// Validate checks the span and input against the model's domains.
func (e Entry) Validate() error {
	m := dnn.Get(e.Model)
	if e.OpStart < 0 || e.OpEnd > m.NumOps() || e.OpStart >= e.OpEnd {
		return fmt.Errorf("predictor: %s span [%d,%d) invalid for %d ops", m.Name, e.OpStart, e.OpEnd, m.NumOps())
	}
	if e.Batch < 1 {
		return fmt.Errorf("predictor: %s batch %d invalid", m.Name, e.Batch)
	}
	if m.IsSequence() && e.SeqLen < 1 {
		return fmt.Errorf("predictor: %s requires a sequence length", m.Name)
	}
	return nil
}

// Group is a deterministic operator schedule group: the spans of all queries
// that will be issued together and executed concurrently until every span
// completes (paper §5.1).
type Group []Entry

// Validate checks every entry and that models are distinct (the executor
// runs one process per service, so one span per service per group).
func (g Group) Validate() error {
	seen := map[dnn.ModelID]bool{}
	for _, e := range g {
		if err := e.Validate(); err != nil {
			return err
		}
		if seen[e.Model] {
			return fmt.Errorf("predictor: duplicate model %s in group", e.Model)
		}
		seen[e.Model] = true
	}
	return nil
}

// sorted returns the group ordered by model id, the canonical slot order of
// the feature encoding.
func (g Group) sorted() Group {
	out := append(Group(nil), g...)
	sort.Slice(out, func(i, j int) bool { return out[i].Model < out[j].Model })
	return out
}

// Measure executes the group on a fresh full device — every span issued at
// time zero, chains advancing concurrently under contention — and returns
// the makespan. With sigma > 0, seeded lognormal noise perturbs each kernel
// launch, emulating the paper's run-to-run measurement jitter (§5.2).
func Measure(g Group, p gpusim.Profile, sigma float64, seed int64) float64 {
	eng := sim.NewEngine()
	dev := gpusim.New(eng, p)
	if sigma > 0 {
		dev.EnableNoise(sigma, seed)
	}
	return MeasureOn(g, dev)
}

// MeasureOn executes the group on the given idle device starting at the
// engine's current time and returns the group latency (makespan). The
// device must have no resident kernels.
func MeasureOn(g Group, dev *gpusim.Device) float64 {
	if err := g.Validate(); err != nil {
		panic(err)
	}
	eng := dev.Engine()
	start := eng.Now()
	var finish sim.Time
	remaining := len(g)
	if remaining == 0 {
		return 0
	}
	for _, e := range g {
		m := dnn.Get(e.Model)
		specs := dnn.Kernels(m, e.Input(), dev.Profile(), e.OpStart, e.OpEnd)
		dev.RunChain(specs, func() {
			remaining--
			if remaining == 0 {
				finish = eng.Now()
			}
		})
	}
	eng.Run()
	return finish - start
}
