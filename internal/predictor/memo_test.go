package predictor

import (
	"math/rand"
	"testing"

	"abacus/internal/dnn"
)

// funcModel is a pure latency model over an arbitrary function, counting
// every individual prediction the inner model is asked to compute.
type funcModel struct {
	f     func(Group) float64
	calls int
}

func (m *funcModel) Predict(g Group) float64 {
	m.calls++
	return m.f(g)
}

func (m *funcModel) PredictBatch(gs []Group) []float64 {
	out := make([]float64, len(gs))
	for i, g := range gs {
		out[i] = m.Predict(g)
	}
	return out
}

// groupValue is an arbitrary deterministic latency surface for the tests.
func groupValue(g Group) float64 {
	v := 1.0
	for _, e := range g {
		v += float64(e.Model)*1000 + float64(e.OpStart)*17 + float64(e.OpEnd)*3 +
			float64(e.Batch)*0.5 + float64(e.SeqLen)*0.25
	}
	return v
}

// randomGroup draws a valid group of 1–3 distinct models from a small
// universe, so interleavings revisit signatures often.
func randomGroup(rng *rand.Rand) Group {
	models := []dnn.ModelID{dnn.ResNet50, dnn.ResNet152, dnn.InceptionV3}
	rng.Shuffle(len(models), func(i, j int) { models[i], models[j] = models[j], models[i] })
	n := 1 + rng.Intn(3)
	g := make(Group, 0, n)
	for _, id := range models[:n] {
		ops := dnn.Get(id).NumOps()
		start := rng.Intn(ops)
		g = append(g, Entry{
			Model:   id,
			OpStart: start,
			OpEnd:   start + 1 + rng.Intn(ops-start),
			Batch:   1 + rng.Intn(4),
		})
	}
	return g
}

// TestMemoizedExtensionalEquality is the issue's property test: under
// random interleavings of Predict, PredictBatch, and InvalidateAll, a
// Memoized wrapper over a pure model returns exactly what the bare model
// returns — with a capacity small enough that eviction churns constantly.
func TestMemoizedExtensionalEquality(t *testing.T) {
	for _, capacity := range []int{1, 3, 64} {
		rng := rand.New(rand.NewSource(int64(11 + capacity)))
		inner := &funcModel{f: groupValue}
		m := NewMemoized(inner, capacity)
		for step := 0; step < 2000; step++ {
			switch rng.Intn(10) {
			case 0:
				if rng.Intn(2) == 0 {
					m.InvalidateAll()
				} else {
					ids := []dnn.ModelID{dnn.ResNet50, dnn.ResNet152, dnn.InceptionV3}
					m.InvalidateModel(ids[rng.Intn(len(ids))])
				}
			case 1, 2, 3:
				g := randomGroup(rng)
				if got, want := m.Predict(g), groupValue(g); got != want {
					t.Fatalf("cap=%d step %d: Predict=%v want %v", capacity, step, got, want)
				}
			default:
				gs := make([]Group, 1+rng.Intn(6))
				for i := range gs {
					if i > 0 && rng.Intn(4) == 0 {
						gs[i] = gs[i-1] // in-batch duplicate
					} else {
						gs[i] = randomGroup(rng)
					}
				}
				got := m.PredictBatch(gs)
				for i, g := range gs {
					if want := groupValue(g); got[i] != want {
						t.Fatalf("cap=%d step %d: PredictBatch[%d]=%v want %v", capacity, step, i, got[i], want)
					}
				}
			}
		}
		st := m.Stats()
		if st.Capacity != capacity || st.Size > capacity {
			t.Fatalf("cap=%d: stats %+v inconsistent with capacity", capacity, st)
		}
		if int(st.Misses) != inner.calls {
			t.Fatalf("cap=%d: %d misses but inner computed %d predictions", capacity, st.Misses, inner.calls)
		}
		if st.Hits == 0 || st.Misses == 0 {
			t.Fatalf("cap=%d: degenerate interleaving: %+v", capacity, st)
		}
		if capacity < 64 && st.Evictions == 0 {
			t.Fatalf("cap=%d: no evictions exercised: %+v", capacity, st)
		}
	}
}

func TestMemoizedCaching(t *testing.T) {
	inner := &funcModel{f: groupValue}
	m := NewMemoized(inner, 8)
	g := Group{{Model: dnn.ResNet50, OpStart: 0, OpEnd: 10, Batch: 2}}
	first := m.Predict(g)
	if m.Predict(g) != first || inner.calls != 1 {
		t.Fatalf("repeat Predict recomputed: calls=%d", inner.calls)
	}
	// Same signature via a differently ordered two-entry group still keys
	// canonically.
	g2 := Group{
		{Model: dnn.ResNet152, OpStart: 5, OpEnd: 9, Batch: 1},
		{Model: dnn.ResNet50, OpStart: 0, OpEnd: 10, Batch: 2},
	}
	g2sorted := Group{g2[1], g2[0]}
	m.Predict(g2)
	calls := inner.calls
	if m.Predict(g2sorted) != groupValue(g2) || inner.calls != calls {
		t.Fatalf("entry order changed the cache key")
	}
	st := m.Stats()
	if st.Hits != 2 || st.Misses != 2 {
		t.Fatalf("stats %+v, want 2 hits / 2 misses", st)
	}
	m.InvalidateAll()
	if s := m.Stats(); s.Size != 0 || s.Invalidations != 1 {
		t.Fatalf("post-invalidate stats %+v", s)
	}
	if m.Predict(g) != first {
		t.Fatalf("post-invalidate value changed")
	}
	if inner.calls != calls+1 {
		t.Fatalf("invalidate did not force recompute: calls=%d", inner.calls)
	}
}

// TestInvalidateModelKeepsUnrelatedEntries pins the per-service cache
// generation: invalidating one model drops exactly the entries whose group
// contains it, so a calibration refit of service S leaves every S-free group
// warm. The existing hit/miss counters witness which entries survived.
func TestInvalidateModelKeepsUnrelatedEntries(t *testing.T) {
	inner := &funcModel{f: groupValue}
	m := NewMemoized(inner, 8)
	gA := Group{{Model: dnn.ResNet50, OpStart: 0, OpEnd: 10, Batch: 2}}
	gB := Group{{Model: dnn.InceptionV3, OpStart: 0, OpEnd: 8, Batch: 1}}
	gAB := Group{
		{Model: dnn.ResNet50, OpStart: 0, OpEnd: 10, Batch: 2},
		{Model: dnn.InceptionV3, OpStart: 0, OpEnd: 8, Batch: 1},
	}
	for _, g := range []Group{gA, gB, gAB} {
		m.Predict(g)
	}
	if inner.calls != 3 {
		t.Fatalf("warmup computed %d predictions, want 3", inner.calls)
	}

	m.InvalidateModel(dnn.ResNet50)
	st := m.Stats()
	if st.Size != 1 {
		t.Fatalf("size after partial invalidation = %d, want 1 (only the ResNet-free group)", st.Size)
	}
	if st.ModelInvalidations != 1 || st.Invalidations != 0 {
		t.Fatalf("invalidation counters %+v, want model_invalidations=1 and no full invalidations", st)
	}

	// The untouched group answers from cache; the two containing ResNet-50
	// recompute.
	hits, misses := st.Hits, st.Misses
	for _, g := range []Group{gA, gB, gAB} {
		if got, want := m.Predict(g), groupValue(g); got != want {
			t.Fatalf("post-invalidate Predict=%v want %v", got, want)
		}
	}
	st = m.Stats()
	if st.Hits != hits+1 || st.Misses != misses+2 {
		t.Fatalf("post-invalidate counters %+v, want +1 hit (unrelated entry kept) and +2 misses", st)
	}
	if inner.calls != 5 {
		t.Fatalf("inner computed %d predictions, want 5", inner.calls)
	}

	// An out-of-mask model falls back to a full invalidation.
	m.InvalidateModel(dnn.ModelID(64))
	if st = m.Stats(); st.Size != 0 || st.Invalidations != 1 {
		t.Fatalf("out-of-mask invalidation stats %+v, want empty cache via full invalidation", st)
	}
}

func TestMemoizedPanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	mustPanic("nil inner", func() { NewMemoized(nil, 4) })
	mustPanic("zero capacity", func() { NewMemoized(&funcModel{f: groupValue}, 0) })
}
