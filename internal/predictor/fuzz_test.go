package predictor

import (
	"testing"

	"abacus/internal/dnn"
)

// FuzzCodecEncode exercises the feature encoder with arbitrary entry
// parameters: invalid groups must be rejected by Validate (and panic in
// Encode), valid groups must round-trip through Decode.
func FuzzCodecEncode(f *testing.F) {
	f.Add(0, 0, 10, 8, 0)
	f.Add(int(dnn.Bert), 5, 100, 32, 64)
	f.Add(int(dnn.VGG19), 0, 42, 4, 0)
	f.Add(-1, 0, 1, 1, 0)
	f.Add(int(dnn.ResNet152), 500, 514, 16, 0)
	codec := NewCodec()
	f.Fuzz(func(t *testing.T, model, start, end, batch, seq int) {
		if model < 0 || model >= int(dnn.NumModels) {
			return
		}
		e := Entry{Model: dnn.ModelID(model), OpStart: start, OpEnd: end, Batch: batch, SeqLen: seq}
		g := Group{e}
		if err := g.Validate(); err != nil {
			// Invalid groups must be refused by Encode via panic.
			defer func() {
				if recover() == nil {
					t.Error("Encode accepted an invalid group")
				}
			}()
			codec.Encode(g)
			return
		}
		x := codec.Encode(g)
		if len(x) != codec.Width() {
			t.Fatalf("width %d != %d", len(x), codec.Width())
		}
		back, err := codec.Decode(x)
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		if len(back) != 1 || back[0] != e {
			t.Fatalf("round trip %+v != %+v", back, e)
		}
	})
}

// FuzzSamplerSeeds verifies that any seed yields structurally valid,
// measurable groups.
func FuzzSamplerSeeds(f *testing.F) {
	f.Add(int64(0))
	f.Add(int64(1))
	f.Add(int64(-7))
	f.Add(int64(1 << 40))
	f.Fuzz(func(t *testing.T, seed int64) {
		cfg := DefaultSamplerConfig()
		cfg.Seed = seed
		cfg.Runs = 1
		s := NewSampler(cfg)
		g := s.SampleGroup([]dnn.ModelID{dnn.ResNet50, dnn.Bert})
		if err := g.Validate(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if lat := s.MeasureSample(g).Latency; lat <= 0 {
			t.Fatalf("seed %d: latency %v", seed, lat)
		}
	})
}
