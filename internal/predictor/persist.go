package predictor

import (
	"encoding/json"
	"fmt"
	"io"

	"abacus/internal/ml"
)

// predictorState serializes a trained Predictor: codec geometry plus the
// MLP weights. Only MLP-backed predictors (optionally log-target wrapped)
// are persistable; the baselines exist for the Figure 10 comparison only.
type predictorState struct {
	NumModels int             `json:"num_models"`
	Slots     int             `json:"slots"`
	LogTarget bool            `json:"log_target"`
	MLP       json.RawMessage `json:"mlp"`
}

// Save writes the predictor as JSON. It errors for non-MLP models.
func (p *Predictor) Save(w io.Writer) error {
	st := predictorState{NumModels: p.codec.NumModels, Slots: p.codec.Slots}
	var mlp *ml.MLP
	switch m := p.model.(type) {
	case *ml.MLP:
		mlp = m
	case *logModel:
		inner, ok := m.inner.(*ml.MLP)
		if !ok {
			return fmt.Errorf("predictor: cannot persist %T", m.inner)
		}
		st.LogTarget = true
		mlp = inner
	default:
		return fmt.Errorf("predictor: cannot persist %T", p.model)
	}
	raw, err := json.Marshal(mlp)
	if err != nil {
		return err
	}
	st.MLP = raw
	enc := json.NewEncoder(w)
	return enc.Encode(st)
}

// Load restores a predictor written by Save.
func Load(r io.Reader) (*Predictor, error) {
	var st predictorState
	if err := json.NewDecoder(r).Decode(&st); err != nil {
		return nil, err
	}
	if st.NumModels <= 0 || st.Slots <= 0 {
		return nil, fmt.Errorf("predictor: corrupt state (models=%d slots=%d)", st.NumModels, st.Slots)
	}
	mlp := &ml.MLP{}
	if err := json.Unmarshal(st.MLP, mlp); err != nil {
		return nil, err
	}
	var model ml.Regressor = mlp
	if st.LogTarget {
		model = &logModel{inner: mlp}
	}
	return &Predictor{
		codec: Codec{NumModels: st.NumModels, Slots: st.Slots},
		model: model,
	}, nil
}
