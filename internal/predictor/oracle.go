package predictor

import (
	"abacus/internal/gpusim"
	"abacus/internal/sim"
)

// LatencyModel predicts the latency of an operator group. The trained
// Predictor implements it; Oracle provides a perfect-prediction variant used
// in tests and in the predictor-quality ablation.
type LatencyModel interface {
	Predict(Group) float64
	PredictBatch([]Group) []float64
}

// Oracle is an exact latency model: it answers queries by simulating the
// group on a private noise-free device. It represents the paper's
// hypothetical perfect predictor and bounds what the MLP can achieve.
// SMCap/MemCap (default 1 = full device) let it model a MIG instance: the
// duration model must reflect the capacity the executor actually runs on.
type Oracle struct {
	Profile gpusim.Profile
	SMCap   float64
	MemCap  float64
}

// ForDevice returns an oracle matched to the device's profile and
// (possibly partitioned) capacity.
func ForDevice(dev *gpusim.Device) Oracle {
	return Oracle{Profile: dev.Profile(), SMCap: dev.SMCapacity(), MemCap: dev.MemCapacity()}
}

// Predict implements LatencyModel.
func (o Oracle) Predict(g Group) float64 {
	eng := sim.NewEngine()
	dev := gpusim.New(eng, o.Profile)
	if (o.SMCap > 0 && o.SMCap < 1) || (o.MemCap > 0 && o.MemCap < 1) {
		sm, mem := o.SMCap, o.MemCap
		if sm <= 0 {
			sm = 1
		}
		if mem <= 0 {
			mem = 1
		}
		dev = dev.Partition(sm, mem)
	}
	return MeasureOn(g, dev)
}

// PredictBatch implements LatencyModel.
func (o Oracle) PredictBatch(gs []Group) []float64 {
	out := make([]float64, len(gs))
	for i, g := range gs {
		out[i] = o.Predict(g)
	}
	return out
}

var _ LatencyModel = (*Predictor)(nil)
var _ LatencyModel = Oracle{}
