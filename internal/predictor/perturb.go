// Perturbed wraps a LatencyModel with deterministic, bounded misprediction:
// a multiplicative bias (a systematically optimistic or pessimistic
// predictor) plus seeded uniform relative noise (a noisy one). The chaos
// experiments use it to ask the question the paper doesn't: what happens to
// Abacus when the prediction it schedules and admits by is wrong by a known,
// controllable amount. Bias comes in two granularities: a global factor over
// every prediction, and per-model factors that wrong only the groups a given
// model appears in — the shape of a predictor mistrained for one service.
package predictor

import (
	"fmt"
	"math"
	"math/rand"

	"abacus/internal/dnn"
)

// Perturbed is a LatencyModel decorator. Bias and noise are mutable so fault
// windows can switch misprediction on and off mid-run; like every model in
// the repro it must only be called from the simulation goroutine, which also
// keeps the seeded noise stream deterministic.
type Perturbed struct {
	inner     LatencyModel
	bias      float64 // multiplicative, > 0; 1 = unbiased
	noise     float64 // relative amplitude in [0, 1): v *= 1 + noise*U(-1,1)
	modelBias map[dnn.ModelID]float64
	rng       *rand.Rand
}

// NewPerturbed wraps inner with the given bias and noise amplitude. bias
// must be positive (0.8 = systematic 20% underprediction); noise must be in
// [0, 1) so perturbed predictions stay positive and bounded.
func NewPerturbed(inner LatencyModel, bias, noise float64, seed int64) *Perturbed {
	if inner == nil {
		panic("predictor: Perturbed requires an inner model")
	}
	p := &Perturbed{inner: inner, rng: rand.New(rand.NewSource(seed))}
	p.SetBias(bias)
	p.SetNoise(noise)
	return p
}

// SetBias updates the multiplicative bias; it panics unless bias > 0 and
// finite.
func (p *Perturbed) SetBias(bias float64) {
	if !(bias > 0) || math.IsInf(bias, 0) {
		panic(fmt.Sprintf("predictor: perturbation bias %v must be positive and finite", bias))
	}
	p.bias = bias
}

// SetNoise updates the relative noise amplitude; it panics unless noise is
// in [0, 1).
func (p *Perturbed) SetNoise(noise float64) {
	if noise < 0 || noise >= 1 || math.IsNaN(noise) {
		panic(fmt.Sprintf("predictor: perturbation noise %v must be in [0, 1)", noise))
	}
	p.noise = noise
}

// SetModelBias updates one model's multiplicative bias, applied on top of
// the global bias to every group the model appears in. Setting 1 clears the
// entry; it panics unless bias > 0 and finite.
func (p *Perturbed) SetModelBias(id dnn.ModelID, bias float64) {
	if !(bias > 0) || math.IsInf(bias, 0) {
		panic(fmt.Sprintf("predictor: model %v perturbation bias %v must be positive and finite", id, bias))
	}
	if bias == 1 {
		delete(p.modelBias, id)
		return
	}
	if p.modelBias == nil {
		p.modelBias = make(map[dnn.ModelID]float64)
	}
	p.modelBias[id] = bias
}

// Bias returns the current multiplicative bias.
func (p *Perturbed) Bias() float64 { return p.bias }

// ModelBias returns one model's multiplicative bias (1 when unset).
func (p *Perturbed) ModelBias(id dnn.ModelID) float64 {
	if b, ok := p.modelBias[id]; ok {
		return b
	}
	return 1
}

// Noise returns the current relative noise amplitude.
func (p *Perturbed) Noise() float64 { return p.noise }

// Healthy reports whether the wrapper currently passes predictions through
// unmodified.
func (p *Perturbed) Healthy() bool {
	return p.bias == 1 && p.noise == 0 && len(p.modelBias) == 0
}

// groupBias is the per-model bias a group experiences: the uniform blend of
// its entries' model biases (exact for the single-model groups admission
// predicts with; proportional blame for co-run groups).
func (p *Perturbed) groupBias(g Group) float64 {
	if len(p.modelBias) == 0 || len(g) == 0 {
		return 1
	}
	sum := 0.0
	for _, e := range g {
		sum += p.ModelBias(e.Model)
	}
	return sum / float64(len(g))
}

func (p *Perturbed) perturb(g Group, v float64) float64 {
	v *= p.bias * p.groupBias(g)
	if p.noise > 0 {
		v *= 1 + p.noise*(2*p.rng.Float64()-1)
	}
	return v
}

// Predict implements LatencyModel.
func (p *Perturbed) Predict(g Group) float64 { return p.perturb(g, p.inner.Predict(g)) }

// PredictBatch implements LatencyModel.
func (p *Perturbed) PredictBatch(gs []Group) []float64 {
	out := p.inner.PredictBatch(gs)
	for i, v := range out {
		out[i] = p.perturb(gs[i], v)
	}
	return out
}

var _ LatencyModel = (*Perturbed)(nil)
