package predictor

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"abacus/internal/dnn"
	"abacus/internal/gpusim"
	"abacus/internal/stats"
)

func pairRes50Res152(batch int) Group {
	m50, m152 := dnn.Get(dnn.ResNet50), dnn.Get(dnn.ResNet152)
	return Group{
		{Model: dnn.ResNet50, OpStart: 0, OpEnd: m50.NumOps(), Batch: batch},
		{Model: dnn.ResNet152, OpStart: 0, OpEnd: m152.NumOps(), Batch: batch},
	}
}

func TestEntryValidate(t *testing.T) {
	n := dnn.Get(dnn.ResNet50).NumOps()
	cases := []struct {
		name string
		e    Entry
		ok   bool
	}{
		{"valid", Entry{Model: dnn.ResNet50, OpStart: 0, OpEnd: n, Batch: 8}, true},
		{"empty-span", Entry{Model: dnn.ResNet50, OpStart: 5, OpEnd: 5, Batch: 8}, false},
		{"reversed", Entry{Model: dnn.ResNet50, OpStart: 9, OpEnd: 3, Batch: 8}, false},
		{"past-end", Entry{Model: dnn.ResNet50, OpStart: 0, OpEnd: n + 1, Batch: 8}, false},
		{"zero-batch", Entry{Model: dnn.ResNet50, OpStart: 0, OpEnd: n, Batch: 0}, false},
		{"bert-no-seq", Entry{Model: dnn.Bert, OpStart: 0, OpEnd: 10, Batch: 8}, false},
		{"bert-ok", Entry{Model: dnn.Bert, OpStart: 0, OpEnd: 10, Batch: 8, SeqLen: 16}, true},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if err := c.e.Validate(); (err == nil) != c.ok {
				t.Errorf("Validate() = %v, want ok=%v", err, c.ok)
			}
		})
	}
}

func TestGroupValidateRejectsDuplicateModels(t *testing.T) {
	g := Group{
		{Model: dnn.ResNet50, OpStart: 0, OpEnd: 5, Batch: 8},
		{Model: dnn.ResNet50, OpStart: 5, OpEnd: 9, Batch: 8},
	}
	if g.Validate() == nil {
		t.Error("duplicate model not rejected")
	}
}

func TestMeasureDeterministicWithoutNoise(t *testing.T) {
	p := gpusim.A100Profile()
	g := pairRes50Res152(16)
	a := Measure(g, p, 0, 0)
	b := Measure(g, p, 0, 99)
	if a != b {
		t.Errorf("noise-free measurements differ: %v vs %v", a, b)
	}
	if a <= 0 {
		t.Errorf("latency %v must be positive", a)
	}
}

func TestMeasureEmptyGroup(t *testing.T) {
	if got := Measure(Group{}, gpusim.A100Profile(), 0, 0); got != 0 {
		t.Errorf("empty group latency %v, want 0", got)
	}
}

func TestMeasureOverlapBeatsSequential(t *testing.T) {
	p := gpusim.A100Profile()
	g := pairRes50Res152(16)
	co := Measure(g, p, 0, 0)
	seq := Measure(g[:1], p, 0, 0) + Measure(g[1:], p, 0, 0)
	if co >= seq {
		t.Errorf("co-run %v not faster than sequential %v", co, seq)
	}
}

// TestGroupLatencyDeterminism reproduces the §5.2 finding on the substrate:
// across noisy repetitions, group latency stddevs stay well below the
// latencies themselves.
func TestGroupLatencyDeterminism(t *testing.T) {
	cfg := DefaultSamplerConfig()
	cfg.Runs = 20
	s := NewSampler(cfg)
	var ratios []float64
	for i := 0; i < 30; i++ {
		g := s.SampleGroup([]dnn.ModelID{dnn.ResNet101, dnn.VGG16})
		sample := s.MeasureSample(g)
		if sample.Latency <= 0 {
			t.Fatalf("group %d latency %v", i, sample.Latency)
		}
		ratios = append(ratios, sample.StdDev/sample.Latency)
	}
	if avg := stats.Mean(ratios); avg > 0.05 {
		t.Errorf("mean stddev/latency = %.3f, want < 5%% (paper: 4.53%%)", avg)
	}
}

func TestCodecWidth(t *testing.T) {
	c := NewCodec()
	if c.Width() != int(dnn.NumModels)+16 {
		t.Errorf("Width = %d, want %d", c.Width(), int(dnn.NumModels)+16)
	}
}

func TestCodecEncodeLayout(t *testing.T) {
	c := NewCodec()
	g := Group{
		// Deliberately unsorted: VGG16 (4) before Res50 (0).
		{Model: dnn.VGG16, OpStart: 3, OpEnd: 9, Batch: 16},
		{Model: dnn.ResNet50, OpStart: 0, OpEnd: 7, Batch: 4},
	}
	x := c.Encode(g)
	if x[int(dnn.ResNet50)] != 1 || x[int(dnn.VGG16)] != 1 {
		t.Error("bitmap bits not set")
	}
	base := c.NumModels
	// Slot 0 must be Res50 (lower id) despite input order.
	if x[base] != 0 || x[base+1] != 7 || x[base+2] != 4 || x[base+3] != 0 {
		t.Errorf("slot 0 = %v, want Res50 [0 7 4 0]", x[base:base+4])
	}
	if x[base+4] != 3 || x[base+5] != 9 || x[base+6] != 16 {
		t.Errorf("slot 1 = %v, want VGG16 [3 9 16 0]", x[base+4:base+8])
	}
	for _, v := range x[base+8:] {
		if v != 0 {
			t.Errorf("unused slots non-zero: %v", x[base+8:])
			break
		}
	}
}

func TestCodecRoundTrip(t *testing.T) {
	c := NewCodec()
	cfg := DefaultSamplerConfig()
	s := NewSampler(cfg)
	combos := Combinations([]dnn.ModelID{dnn.ResNet50, dnn.ResNet152, dnn.VGG19, dnn.Bert}, 2)
	for _, combo := range combos {
		for i := 0; i < 10; i++ {
			g := s.SampleGroup(combo).sorted()
			got, err := c.Decode(c.Encode(g))
			if err != nil {
				t.Fatalf("decode: %v", err)
			}
			if len(got) != len(g) {
				t.Fatalf("round trip size %d != %d", len(got), len(g))
			}
			for j := range g {
				if got[j] != g[j] {
					t.Fatalf("entry %d: %+v != %+v", j, got[j], g[j])
				}
			}
		}
	}
}

func TestCodecEncodePanics(t *testing.T) {
	c := NewCodec()
	tooMany := make(Group, MaxCoLocated+1)
	for i := range tooMany {
		tooMany[i] = Entry{Model: dnn.ModelID(i), OpStart: 0, OpEnd: 1, Batch: 4}
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("oversize group did not panic")
			}
		}()
		c.Encode(tooMany)
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("bad dst width did not panic")
			}
		}()
		c.EncodeTo(make([]float64, 3), Group{})
	}()
}

func TestCombinations(t *testing.T) {
	models := []dnn.ModelID{0, 1, 2, 3}
	c2 := Combinations(models, 2)
	if len(c2) != 6 {
		t.Errorf("C(4,2) = %d, want 6", len(c2))
	}
	c4 := Combinations(models, 4)
	if len(c4) != 1 || len(c4[0]) != 4 {
		t.Errorf("C(4,4) wrong: %v", c4)
	}
	all := Combinations(zooIDs(), 2)
	if len(all) != 21 {
		t.Errorf("C(7,2) = %d, want 21 (the paper's pair count)", len(all))
	}
}

func zooIDs() []dnn.ModelID {
	ids := make([]dnn.ModelID, dnn.NumModels)
	for i := range ids {
		ids[i] = dnn.ModelID(i)
	}
	return ids
}

func TestSamplerProducesValidGroups(t *testing.T) {
	s := NewSampler(DefaultSamplerConfig())
	combos := [][]dnn.ModelID{
		{dnn.ResNet50},
		{dnn.ResNet50, dnn.Bert},
		{dnn.ResNet101, dnn.VGG16, dnn.Bert},
		{dnn.ResNet101, dnn.ResNet152, dnn.VGG19, dnn.Bert},
	}
	for _, combo := range combos {
		for i := 0; i < 50; i++ {
			g := s.SampleGroup(combo)
			if err := g.Validate(); err != nil {
				t.Fatalf("combo %v sample %d: %v", combo, i, err)
			}
			if len(g) != len(combo) {
				t.Fatalf("group size %d, want %d", len(g), len(combo))
			}
			// Instance-based principle 1: at least one member completes.
			completes := false
			for _, e := range g {
				if e.OpEnd == dnn.Get(e.Model).NumOps() {
					completes = true
				}
				// Every member is "completing" or "new".
				if e.OpStart != 0 && e.OpEnd != dnn.Get(e.Model).NumOps() {
					t.Fatalf("entry %+v is neither new nor completing", e)
				}
			}
			if !completes {
				t.Fatal("no member completes in the sampled group")
			}
		}
	}
}

func TestSamplerDeterministic(t *testing.T) {
	cfg := DefaultSamplerConfig()
	a := NewSampler(cfg).SampleGroup([]dnn.ModelID{dnn.ResNet50, dnn.VGG19})
	b := NewSampler(cfg).SampleGroup([]dnn.ModelID{dnn.ResNet50, dnn.VGG19})
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed, different samples: %+v vs %+v", a, b)
		}
	}
}

func TestCollectCounts(t *testing.T) {
	cfg := DefaultSamplerConfig()
	cfg.Runs = 1
	models := []dnn.ModelID{dnn.ResNet50, dnn.InceptionV3, dnn.Bert}
	samples := Collect(models, 2, 4, cfg)
	if len(samples) != 3*4 { // C(3,2) × 4
		t.Errorf("got %d samples, want 12", len(samples))
	}
	for _, s := range samples {
		if s.Latency <= 0 {
			t.Errorf("non-positive latency %v", s.Latency)
		}
	}
}

func TestSaveLoadSamples(t *testing.T) {
	cfg := DefaultSamplerConfig()
	cfg.Runs = 1
	samples := Collect([]dnn.ModelID{dnn.ResNet50, dnn.VGG16}, 2, 5, cfg)
	var buf bytes.Buffer
	if err := SaveSamples(&buf, samples); err != nil {
		t.Fatal(err)
	}
	got, err := LoadSamples(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(samples) {
		t.Fatalf("round trip length %d != %d", len(got), len(samples))
	}
	for i := range samples {
		if got[i].Latency != samples[i].Latency || len(got[i].Group) != len(samples[i].Group) {
			t.Fatalf("sample %d mismatch", i)
		}
	}
}

func TestLoadSamplesRejectsCorrupt(t *testing.T) {
	if _, err := LoadSamples(bytes.NewBufferString("{not json")); err == nil {
		t.Error("corrupt JSON accepted")
	}
	if _, err := LoadSamples(bytes.NewBufferString(`[{"Group":[{"Model":0,"OpStart":5,"OpEnd":2,"Batch":4}],"Latency":1}]`)); err == nil {
		t.Error("invalid span accepted")
	}
}

// TestPredictorAccuracyRanking is the package's key integration check: on
// real collected samples the MLP achieves single-digit MAPE and beats both
// baselines, reproducing the §5.5 ranking.
func TestPredictorAccuracyRanking(t *testing.T) {
	if testing.Short() {
		t.Skip("training is seconds-long; skipped in -short")
	}
	cfg := DefaultSamplerConfig()
	cfg.Runs = 3
	models := []dnn.ModelID{dnn.ResNet50, dnn.ResNet152, dnn.VGG16, dnn.Bert}
	samples := Collect(models, 2, 250, cfg)
	codec := NewCodec()

	_, mlpErr, err := TrainEval(samples, codec, TrainConfig{Technique: TechMLP, Epochs: 300, LogTarget: true, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	_, lrErr, err := TrainEval(samples, codec, TrainConfig{Technique: TechLinearRegression, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	_, svrErr, err := TrainEval(samples, codec, TrainConfig{Technique: TechSVR, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("MAPE: MLP=%.3f LR=%.3f SVR=%.3f", mlpErr, lrErr, svrErr)
	// 250 samples/pair keeps the test fast; at the paper's 2000/pair the
	// MLP reaches ~6% (see the Figure 10 experiment).
	if mlpErr > 0.16 {
		t.Errorf("MLP MAPE %.3f too high (paper regime: ~5.5%% at full sampling)", mlpErr)
	}
	if mlpErr >= lrErr || mlpErr >= svrErr {
		t.Errorf("MLP (%.3f) should beat LR (%.3f) and SVR (%.3f)", mlpErr, lrErr, svrErr)
	}
}

func TestPredictBatchMatchesPredict(t *testing.T) {
	cfg := DefaultSamplerConfig()
	cfg.Runs = 1
	samples := Collect([]dnn.ModelID{dnn.ResNet50, dnn.InceptionV3}, 2, 60, cfg)
	p, err := Train(samples, NewCodec(), TrainConfig{Technique: TechMLP, Epochs: 20, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	groups := make([]Group, 10)
	for i := range groups {
		groups[i] = samples[i].Group
	}
	batch := p.PredictBatch(groups)
	for i, g := range groups {
		if batch[i] != p.Predict(g) {
			t.Fatalf("batch[%d] differs from Predict", i)
		}
	}
}

func TestTrainErrorsOnEmpty(t *testing.T) {
	if _, err := Train(nil, NewCodec(), TrainConfig{Technique: TechMLP}); err == nil {
		t.Error("empty training set accepted")
	}
}

func TestTechniqueString(t *testing.T) {
	if TechMLP.String() != "MLP" || TechSVR.String() != "SVM" || TechLinearRegression.String() != "Linear Regression" {
		t.Error("technique names wrong")
	}
}

// Property: encoding is permutation-invariant — entry order in the group
// does not change the feature vector.
func TestEncodePermutationInvariance(t *testing.T) {
	c := NewCodec()
	s := NewSampler(DefaultSamplerConfig())
	f := func(seed int64) bool {
		g := s.SampleGroup([]dnn.ModelID{dnn.ResNet50, dnn.VGG19, dnn.Bert})
		rng := rand.New(rand.NewSource(seed))
		shuffled := append(Group(nil), g...)
		rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
		a, b := c.Encode(g), c.Encode(shuffled)
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
