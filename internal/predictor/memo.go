package predictor

import (
	"encoding/binary"
	"fmt"

	"abacus/internal/dnn"
)

// Memoized wraps a LatencyModel with a bounded group-signature cache.
// Steady-state scheduling re-predicts the same handful of group signatures
// on every round; the cache answers those repeats without re-running the
// duration model, while staying fully deterministic: the key is the
// canonical sorted-entry signature, eviction is clock (second-chance) over
// a fixed ring, and no wall-clock or randomness is consulted.
//
// The inner model must be a pure function of the group (Oracle, a trained
// Predictor) for the wrapper to be extensionally transparent; wrapping a
// stateful model such as Perturbed would change its noise-stream
// consumption. Callers that refit corrections (calib.Tracker.OnUpdate)
// must invalidate so refits never serve stale values — InvalidateModel for
// a per-service refit, InvalidateAll for anything broader.
//
// Memoized is not safe for concurrent use; like the other latency models
// it is owned by a single scheduler loop.
type Memoized struct {
	inner LatencyModel
	index map[string]int // canonical signature → ring slot
	slots []memoSlot
	hand  int
	stats MemoStats

	keyBuf  []byte // reusable key scratch
	missBuf []Group
	missIdx []int
	seen    map[string]int
}

type memoSlot struct {
	key  string
	lat  float64
	mask uint64 // bitmask of model IDs in the cached group
	ref  bool   // second-chance bit
	used bool
}

// MemoStats is a snapshot of cache effectiveness counters. Hits and Misses
// count individual group predictions (a PredictBatch of n groups
// contributes n); Misses is exactly the number of predictions the inner
// model actually computed — the honest measure of model work saved.
type MemoStats struct {
	Capacity      int    `json:"capacity"`
	Size          int    `json:"size"`
	Hits          uint64 `json:"hits"`
	Misses        uint64 `json:"misses"`
	Evictions     uint64 `json:"evictions"`
	Invalidations uint64 `json:"invalidations"`
	// ModelInvalidations counts InvalidateModel calls; only entries whose
	// group contains the named model are dropped, so unrelated groups keep
	// their cached predictions across a per-service calibration refit.
	ModelInvalidations uint64 `json:"model_invalidations"`
}

// NewMemoized wraps inner with a cache of at most capacity entries.
func NewMemoized(inner LatencyModel, capacity int) *Memoized {
	if inner == nil {
		panic("predictor: Memoized requires an inner model")
	}
	if capacity < 1 {
		panic(fmt.Sprintf("predictor: Memoized capacity %d", capacity))
	}
	return &Memoized{
		inner: inner,
		index: make(map[string]int, capacity),
		slots: make([]memoSlot, capacity),
		stats: MemoStats{Capacity: capacity},
	}
}

// Stats returns a snapshot of the cache counters.
func (m *Memoized) Stats() MemoStats {
	s := m.stats
	s.Size = len(m.index)
	return s
}

// InvalidateAll drops every cached prediction. Call after any change to the
// inner model's behavior — e.g. a calibration refit.
func (m *Memoized) InvalidateAll() {
	for k := range m.index {
		delete(m.index, k)
	}
	for i := range m.slots {
		m.slots[i] = memoSlot{}
	}
	m.hand = 0
	m.stats.Invalidations++
}

// InvalidateModel drops only the cached predictions whose group contains the
// given model — the per-service cache generation used by calibration refits:
// a refit of service S's correction cannot change the latency of a group S
// does not appear in, so those entries stay warm. Models that do not fit the
// slot mask fall back to a full invalidation (conservative, never stale).
func (m *Memoized) InvalidateModel(id dnn.ModelID) {
	if int(id) < 0 || int(id) >= 64 {
		m.InvalidateAll()
		return
	}
	bit := uint64(1) << uint(id)
	for i := range m.slots {
		s := &m.slots[i]
		if s.used && s.mask&bit != 0 {
			delete(m.index, s.key)
			m.slots[i] = memoSlot{}
		}
	}
	m.stats.ModelInvalidations++
}

// groupMask returns the model bitmask of g; groups holding a model outside
// the mask width are tagged all-ones so every InvalidateModel drops them.
func groupMask(g Group) uint64 {
	var mask uint64
	for _, e := range g {
		if int(e.Model) < 0 || int(e.Model) >= 64 {
			return ^uint64(0)
		}
		mask |= 1 << uint(e.Model)
	}
	return mask
}

// appendKey appends the canonical signature of g: its entries in ascending
// model-id order (models in a valid group are distinct), each field
// varint-encoded. Selection by rank avoids sorting scratch; groups hold at
// most MaxCoLocated entries.
func appendKey(dst []byte, g Group) []byte {
	for slot := 0; slot < len(g); slot++ {
		for i := range g {
			rank := 0
			for j := range g {
				if g[j].Model < g[i].Model {
					rank++
				}
			}
			if rank != slot {
				continue
			}
			e := g[i]
			dst = binary.AppendVarint(dst, int64(e.Model))
			dst = binary.AppendVarint(dst, int64(e.OpStart))
			dst = binary.AppendVarint(dst, int64(e.OpEnd))
			dst = binary.AppendVarint(dst, int64(e.Batch))
			dst = binary.AppendVarint(dst, int64(e.SeqLen))
			break
		}
	}
	return dst
}

// lookup returns the cached latency for key, marking the slot recently
// used.
func (m *Memoized) lookup(key []byte) (float64, bool) {
	i, ok := m.index[string(key)] // no alloc: []byte→string map-lookup form
	if !ok {
		return 0, false
	}
	m.slots[i].ref = true
	return m.slots[i].lat, true
}

// insert stores key → lat, evicting by clock second-chance when full.
func (m *Memoized) insert(key []byte, lat float64, mask uint64) {
	for {
		s := &m.slots[m.hand]
		if !s.used {
			break
		}
		if s.ref {
			s.ref = false
			m.hand = (m.hand + 1) % len(m.slots)
			continue
		}
		delete(m.index, s.key)
		m.stats.Evictions++
		break
	}
	m.slots[m.hand] = memoSlot{key: string(key), lat: lat, mask: mask, used: true}
	m.index[m.slots[m.hand].key] = m.hand
	m.hand = (m.hand + 1) % len(m.slots)
}

// Predict implements LatencyModel.
func (m *Memoized) Predict(g Group) float64 {
	m.keyBuf = appendKey(m.keyBuf[:0], g)
	if lat, ok := m.lookup(m.keyBuf); ok {
		m.stats.Hits++
		return lat
	}
	m.stats.Misses++
	lat := m.inner.Predict(g)
	m.insert(m.keyBuf, lat, groupMask(g))
	return lat
}

// PredictBatch implements LatencyModel. Hits are answered from the cache;
// the misses — deduplicated within the batch — go to the inner model in one
// batched call, so the miss count stays the true number of inner
// predictions.
func (m *Memoized) PredictBatch(gs []Group) []float64 {
	out := make([]float64, len(gs))
	m.missBuf = m.missBuf[:0]
	m.missIdx = m.missIdx[:0]
	if m.seen == nil {
		m.seen = make(map[string]int)
	}
	for k := range m.seen {
		delete(m.seen, k)
	}
	var dups [][2]int // (output index, miss index) for in-batch duplicates
	for i, g := range gs {
		m.keyBuf = appendKey(m.keyBuf[:0], g)
		if lat, ok := m.lookup(m.keyBuf); ok {
			m.stats.Hits++
			out[i] = lat
			continue
		}
		if j, dup := m.seen[string(m.keyBuf)]; dup {
			// Answered by the in-flight miss, not by extra inner work.
			m.stats.Hits++
			dups = append(dups, [2]int{i, j})
			continue
		}
		m.stats.Misses++
		m.seen[string(m.keyBuf)] = len(m.missBuf)
		m.missBuf = append(m.missBuf, g)
		m.missIdx = append(m.missIdx, i)
	}
	if len(m.missBuf) > 0 {
		lats := m.inner.PredictBatch(m.missBuf)
		for j, idx := range m.missIdx {
			out[idx] = lats[j]
			m.keyBuf = appendKey(m.keyBuf[:0], m.missBuf[j])
			m.insert(m.keyBuf, lats[j], groupMask(m.missBuf[j]))
		}
		for _, d := range dups {
			out[d[0]] = lats[d[1]]
		}
	}
	return out
}
