package predictor

import (
	"math/rand"
	"testing"
	"testing/quick"

	"abacus/internal/dnn"
	"abacus/internal/gpusim"
)

// TestMeasureBounds checks the physical bounds of group latency over
// randomly sampled groups: a co-run can never beat the slowest member's
// solo span (interference monotonicity) and never exceeds running the spans
// back to back (fair sharing is work-conserving across the group).
func TestMeasureBounds(t *testing.T) {
	p := gpusim.A100Profile()
	s := NewSampler(DefaultSamplerConfig())
	combos := [][]dnn.ModelID{
		{dnn.ResNet50, dnn.VGG19},
		{dnn.ResNet152, dnn.InceptionV3, dnn.Bert},
		{dnn.ResNet101, dnn.ResNet152, dnn.VGG16, dnn.Bert},
	}
	for _, combo := range combos {
		for i := 0; i < 15; i++ {
			g := s.SampleGroup(combo)
			co := Measure(g, p, 0, 0)
			var maxSolo, sumSolo float64
			for _, e := range g {
				solo := Measure(Group{e}, p, 0, 0)
				sumSolo += solo
				if solo > maxSolo {
					maxSolo = solo
				}
			}
			if co < maxSolo-1e-9 {
				t.Fatalf("combo %v: co-run %v faster than slowest member solo %v", combo, co, maxSolo)
			}
			if co > sumSolo+1e-9 {
				t.Fatalf("combo %v: co-run %v slower than sequential %v", combo, co, sumSolo)
			}
		}
	}
}

// TestMeasureMonotoneInSpan verifies that extending one member's span never
// shortens the group latency — the monotonicity the multi-way search
// depends on.
func TestMeasureMonotoneInSpan(t *testing.T) {
	p := gpusim.A100Profile()
	m := dnn.Get(dnn.InceptionV3)
	base := Group{{Model: dnn.ResNet152, OpStart: 0, OpEnd: 200, Batch: 16}}
	f := func(endRaw uint16, extraRaw uint8) bool {
		end := int(endRaw)%(m.NumOps()-1) + 1
		extra := int(extraRaw)%(m.NumOps()-end) + 0
		short := append(append(Group{}, base...), Entry{Model: dnn.InceptionV3, OpStart: 0, OpEnd: end, Batch: 16})
		long := append(append(Group{}, base...), Entry{Model: dnn.InceptionV3, OpStart: 0, OpEnd: end + extra, Batch: 16})
		return Measure(long, p, 0, 0) >= Measure(short, p, 0, 0)-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60, Rand: rand.New(rand.NewSource(21))}); err != nil {
		t.Error(err)
	}
}

// TestMeasureMonotoneInBatch verifies group latency grows with any member's
// batch size.
func TestMeasureMonotoneInBatch(t *testing.T) {
	p := gpusim.A100Profile()
	m50 := dnn.Get(dnn.ResNet50)
	for _, other := range []int{4, 32} {
		prev := 0.0
		for _, batch := range dnn.Batches() {
			g := Group{
				{Model: dnn.ResNet50, OpStart: 0, OpEnd: m50.NumOps(), Batch: batch},
				{Model: dnn.VGG16, OpStart: 0, OpEnd: 20, Batch: other},
			}
			lat := Measure(g, p, 0, 0)
			if lat < prev-1e-9 {
				t.Fatalf("latency decreased with batch (other=%d): %v after %v", other, lat, prev)
			}
			prev = lat
		}
	}
}
