package predictor

import (
	"testing"

	"abacus/internal/dnn"
	"abacus/internal/gpusim"
)

func TestOverlapGainRegimes(t *testing.T) {
	p := gpusim.A100Profile()
	resPair := OverlapGain(dnn.ResNet152, dnn.InceptionV3, 16, p)
	vggPair := OverlapGain(dnn.VGG16, dnn.VGG19, 32, p)
	t.Logf("gain (Res152,IncepV3)=%.3f (VGG16,VGG19)=%.3f", resPair, vggPair)
	if resPair < 1.2 {
		t.Errorf("(Res152,IncepV3) gain %.3f; expected clear overlap benefit", resPair)
	}
	if vggPair > 1.15 {
		t.Errorf("(VGG16,VGG19) gain %.3f; expected near time-sharing", vggPair)
	}
	if resPair <= vggPair {
		t.Errorf("affinity ordering inverted: %.3f <= %.3f", resPair, vggPair)
	}
}

func TestAffinityMatrixSymmetric(t *testing.T) {
	p := gpusim.A100Profile()
	models := []dnn.ModelID{dnn.ResNet50, dnn.VGG16, dnn.Bert}
	m := AffinityMatrix(models, 16, p)
	for i := range m {
		if m[i][i] != 1 {
			t.Errorf("diagonal [%d] = %v", i, m[i][i])
		}
		for j := range m {
			if m[i][j] != m[j][i] {
				t.Errorf("asymmetric at (%d,%d): %v vs %v", i, j, m[i][j], m[j][i])
			}
			if m[i][j] < 0.8 || m[i][j] > 3 {
				t.Errorf("gain (%d,%d) = %v out of plausible range", i, j, m[i][j])
			}
		}
	}
}

func TestPartitionByAffinityGrouping(t *testing.T) {
	models := []dnn.ModelID{0, 1, 2, 3}
	// Models 0,1 love each other; 2,3 love each other; cross pairs are
	// useless. Expect exactly those two groups.
	affinity := [][]float64{
		{1.0, 1.5, 1.0, 1.0},
		{1.5, 1.0, 1.0, 1.0},
		{1.0, 1.0, 1.0, 1.5},
		{1.0, 1.0, 1.5, 1.0},
	}
	groups := partitionByAffinity(models, affinity, 2)
	if len(groups) != 2 {
		t.Fatalf("got %d groups: %v", len(groups), groups)
	}
	pairKey := func(g []dnn.ModelID) [2]dnn.ModelID {
		if g[0] > g[1] {
			g[0], g[1] = g[1], g[0]
		}
		return [2]dnn.ModelID{g[0], g[1]}
	}
	seen := map[[2]dnn.ModelID]bool{}
	for _, g := range groups {
		if len(g) != 2 {
			t.Fatalf("group size %d: %v", len(g), g)
		}
		seen[pairKey(g)] = true
	}
	if !seen[[2]dnn.ModelID{0, 1}] || !seen[[2]dnn.ModelID{2, 3}] {
		t.Errorf("grouping %v ignored affinity structure", groups)
	}
}

func TestPartitionCoversAllModelsOnce(t *testing.T) {
	models := []dnn.ModelID{0, 1, 2, 3, 4, 5, 6}
	affinity := make([][]float64, len(models))
	for i := range affinity {
		affinity[i] = make([]float64, len(models))
		for j := range affinity[i] {
			affinity[i][j] = 1 + 0.01*float64(i+j)
		}
	}
	for _, size := range []int{1, 2, 3, 4} {
		groups := partitionByAffinity(models, affinity, size)
		seen := map[dnn.ModelID]int{}
		for _, g := range groups {
			if len(g) > size {
				t.Errorf("size %d: group %v too large", size, g)
			}
			for _, m := range g {
				seen[m]++
			}
		}
		if len(seen) != len(models) {
			t.Errorf("size %d: covered %d models", size, len(seen))
		}
		for m, n := range seen {
			if n != 1 {
				t.Errorf("size %d: model %v placed %d times", size, m, n)
			}
		}
	}
}

func TestPartitionServicesBadSizePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("did not panic")
		}
	}()
	PartitionServices([]dnn.ModelID{dnn.ResNet50}, 0, 16, gpusim.A100Profile())
}

func TestPartitionServicesSeparatesVGGs(t *testing.T) {
	// The §7.8 criterion: VGG16 and VGG19 gain nothing from co-location and
	// should land in different groups when alternatives exist.
	p := gpusim.A100Profile()
	models := []dnn.ModelID{dnn.ResNet101, dnn.ResNet152, dnn.VGG16, dnn.VGG19}
	groups := PartitionServices(models, 2, 16, p)
	for _, g := range groups {
		if len(g) == 2 && ((g[0] == dnn.VGG16 && g[1] == dnn.VGG19) || (g[0] == dnn.VGG19 && g[1] == dnn.VGG16)) {
			t.Errorf("VGG16 and VGG19 co-grouped despite near-zero overlap gain: %v", groups)
		}
	}
}
