package predictor

import (
	"fmt"
	"sort"

	"abacus/internal/dnn"
	"abacus/internal/gpusim"
)

// This file implements the profiling-scalability analysis of §7.8: given N
// DNNs, Abacus partitions them into service groups of size k so that only
// same-group models are co-deployed, reducing profiling complexity from
// O(N²) to O(N). Pairs whose co-located latency always equals sequential
// execution (e.g. VGG16+VGG19) are avoided, because deterministic overlap
// cannot buy them anything.

// OverlapGain returns the co-location benefit of a model pair at the given
// input scale: (sum of solo latencies) / (co-run makespan) of one full
// query each, measured on a private device. A gain near 1 means the pair
// degenerates to time-sharing.
func OverlapGain(a, b dnn.ModelID, batch int, p gpusim.Profile) float64 {
	ea := fullEntry(a, batch)
	eb := fullEntry(b, batch)
	solo := Measure(Group{ea}, p, 0, 0) + Measure(Group{eb}, p, 0, 0)
	co := Measure(Group{ea, eb}, p, 0, 0)
	if co <= 0 {
		return 1
	}
	return solo / co
}

func fullEntry(id dnn.ModelID, batch int) Entry {
	m := dnn.Get(id)
	e := Entry{Model: id, OpStart: 0, OpEnd: m.NumOps(), Batch: batch}
	if m.IsSequence() {
		e.SeqLen = m.SeqLens[len(m.SeqLens)-1]
	}
	return e
}

// AffinityMatrix returns the symmetric pairwise overlap-gain matrix of the
// models at the given batch size. The diagonal is 1.
func AffinityMatrix(models []dnn.ModelID, batch int, p gpusim.Profile) [][]float64 {
	n := len(models)
	m := make([][]float64, n)
	for i := range m {
		m[i] = make([]float64, n)
		m[i][i] = 1
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			g := OverlapGain(models[i], models[j], batch, p)
			m[i][j] = g
			m[j][i] = g
		}
	}
	return m
}

// PartitionServices divides the models into groups of at most groupSize,
// greedily maximizing intra-group overlap gain: each group is seeded with
// the model that has the least total affinity remaining (hardest to place)
// and filled with its best partners. Only same-group models need pairwise
// profiling, which is the paper's O(N) profiling scheme.
func PartitionServices(models []dnn.ModelID, groupSize int, batch int, p gpusim.Profile) [][]dnn.ModelID {
	if groupSize < 1 {
		panic(fmt.Sprintf("predictor: group size %d", groupSize))
	}
	affinity := AffinityMatrix(models, batch, p)
	return partitionByAffinity(models, affinity, groupSize)
}

// partitionByAffinity is the pure grouping step, split out for testing.
func partitionByAffinity(models []dnn.ModelID, affinity [][]float64, groupSize int) [][]dnn.ModelID {
	n := len(models)
	unassigned := make(map[int]bool, n)
	for i := range models {
		unassigned[i] = true
	}
	var groups [][]dnn.ModelID
	for len(unassigned) > 0 {
		// Seed: the unassigned model with the lowest total remaining
		// affinity (deterministic tie-break on index).
		seed, seedScore := -1, 0.0
		for _, i := range sortedKeys(unassigned) {
			var s float64
			for _, j := range sortedKeys(unassigned) {
				if i != j {
					s += affinity[i][j]
				}
			}
			if seed == -1 || s < seedScore {
				seed, seedScore = i, s
			}
		}
		group := []int{seed}
		delete(unassigned, seed)
		for len(group) < groupSize && len(unassigned) > 0 {
			best, bestScore := -1, 0.0
			for _, cand := range sortedKeys(unassigned) {
				var s float64
				for _, member := range group {
					s += affinity[member][cand]
				}
				if best == -1 || s > bestScore {
					best, bestScore = cand, s
				}
			}
			group = append(group, best)
			delete(unassigned, best)
		}
		ids := make([]dnn.ModelID, len(group))
		for gi, i := range group {
			ids[gi] = models[i]
		}
		groups = append(groups, ids)
	}
	return groups
}

func sortedKeys(m map[int]bool) []int {
	out := make([]int, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}
