package predictor

import (
	"math"
	"math/rand"
	"testing"

	"abacus/internal/dnn"
	"abacus/internal/ml"
	"abacus/internal/stats"
)

// TestTuneMLP sweeps training settings; run manually with
//
//	go test ./internal/predictor -run TestTuneMLP -v -tags tune
//
// It is skipped by default to keep the suite fast.
func TestTuneMLP(t *testing.T) {
	if testing.Short() || true {
		t.Skip("manual tuning harness")
	}
	runTune(t)
}

func runTune(t *testing.T) {
	cfg := DefaultSamplerConfig()
	cfg.Runs = 3
	models := []dnn.ModelID{dnn.ResNet50, dnn.ResNet152, dnn.VGG16, dnn.Bert}
	samples := Collect(models, 2, 400, cfg)
	codec := NewCodec()
	ds := BuildDataset(samples, codec)
	rng := rand.New(rand.NewSource(9))
	train, test := ds.Split(0.8, rng)

	type variant struct {
		name string
		mk   func() *ml.MLP
		log  bool
	}
	variants := []variant{
		{"base-300", func() *ml.MLP { return &ml.MLP{Epochs: 300, Seed: 1} }, false},
		{"600ep", func() *ml.MLP { return &ml.MLP{Epochs: 600, Seed: 1} }, false},
		{"600ep-lr3e3", func() *ml.MLP { return &ml.MLP{Epochs: 600, LearningRate: 3e-3, Seed: 1} }, false},
		{"600ep-b64", func() *ml.MLP { return &ml.MLP{Epochs: 600, BatchSize: 64, Seed: 1} }, false},
		{"log-300", func() *ml.MLP { return &ml.MLP{Epochs: 300, Seed: 1} }, true},
		{"log-600", func() *ml.MLP { return &ml.MLP{Epochs: 600, Seed: 1} }, true},
	}
	for _, v := range variants {
		tr := train
		if v.log {
			tr = ml.Dataset{X: train.X, Y: logAll(train.Y)}
		}
		m := v.mk()
		if err := m.Fit(tr); err != nil {
			t.Fatal(err)
		}
		pred := make([]float64, test.Len())
		for i, x := range test.X {
			p := m.Predict(x)
			if v.log {
				p = math.Exp(p)
			}
			pred[i] = p
		}
		t.Logf("%-14s MAPE=%.4f", v.name, stats.MAPE(pred, test.Y))
	}
}

func logAll(y []float64) []float64 {
	out := make([]float64, len(y))
	for i, v := range y {
		out[i] = math.Log(v)
	}
	return out
}
