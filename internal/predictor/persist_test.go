package predictor

import (
	"bytes"
	"strings"
	"testing"

	"abacus/internal/dnn"
)

func trainedForPersist(t *testing.T, logTarget bool) (*Predictor, []Sample) {
	t.Helper()
	cfg := DefaultSamplerConfig()
	cfg.Runs = 1
	samples := Collect([]dnn.ModelID{dnn.ResNet50, dnn.InceptionV3}, 2, 80, cfg)
	tc := TrainConfig{Technique: TechMLP, Epochs: 40, LogTarget: logTarget, Seed: 1}
	p, err := Train(samples, NewCodec(), tc)
	if err != nil {
		t.Fatal(err)
	}
	return p, samples
}

func TestSaveLoadRoundTrip(t *testing.T) {
	for _, logTarget := range []bool{false, true} {
		p, samples := trainedForPersist(t, logTarget)
		var buf bytes.Buffer
		if err := p.Save(&buf); err != nil {
			t.Fatal(err)
		}
		loaded, err := Load(&buf)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 20; i++ {
			g := samples[i].Group
			if got, want := loaded.Predict(g), p.Predict(g); got != want {
				t.Fatalf("logTarget=%v sample %d: loaded %v != original %v", logTarget, i, got, want)
			}
		}
		// Batched predictions must survive the round trip too.
		groups := []Group{samples[0].Group, samples[1].Group}
		a, b := loaded.PredictBatch(groups), p.PredictBatch(groups)
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("batch[%d] %v != %v", i, a[i], b[i])
			}
		}
	}
}

func TestSaveRejectsNonMLP(t *testing.T) {
	cfg := DefaultSamplerConfig()
	cfg.Runs = 1
	samples := Collect([]dnn.ModelID{dnn.ResNet50, dnn.InceptionV3}, 2, 30, cfg)
	p, err := Train(samples, NewCodec(), TrainConfig{Technique: TechLinearRegression, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Save(&bytes.Buffer{}); err == nil {
		t.Error("persisting a linear model should error")
	}
}

func TestLoadRejectsCorrupt(t *testing.T) {
	cases := []string{
		"{not json",
		`{"num_models":0,"slots":4,"mlp":{}}`,
		`{"num_models":7,"slots":4,"mlp":{"dims":[3],"weights":[],"biases":[]}}`,
		`{"num_models":7,"slots":4,"mlp":{"dims":[3,1],"weights":[[1,2]],"biases":[[0]]}}`,
	}
	for i, c := range cases {
		if _, err := Load(strings.NewReader(c)); err == nil {
			t.Errorf("case %d: corrupt state accepted", i)
		}
	}
}
