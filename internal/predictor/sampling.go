package predictor

import (
	"fmt"
	"math"
	"math/rand"

	"abacus/internal/dnn"
	"abacus/internal/gpusim"
)

// Sample is one training example: an operator group and its measured
// latency (mean over Runs repetitions with measurement noise).
type Sample struct {
	Group   Group
	Latency float64
	// StdDev is the run-to-run standard deviation over the repetitions —
	// the quantity Figure 7 reports to establish determinism.
	StdDev float64
}

// SamplerConfig controls training-set generation.
type SamplerConfig struct {
	Profile gpusim.Profile
	// Runs is how many times each group is measured (paper: 100). The mean
	// is the training target.
	Runs int
	// NoiseSigma is the per-kernel lognormal jitter applied during
	// measurement (0.008 reproduces the paper's sub-millisecond stddevs).
	NoiseSigma float64
	// Seed makes sampling and measurement deterministic.
	Seed int64
}

// DefaultSamplerConfig mirrors the paper's offline profiling setup with a
// reduced repetition count (the mean converges long before 100 runs on the
// simulator).
func DefaultSamplerConfig() SamplerConfig {
	return SamplerConfig{
		Profile:    gpusim.A100Profile(),
		Runs:       5,
		NoiseSigma: 0.008,
		Seed:       1,
	}
}

// Sampler generates operator-group samples by the paper's instance-based
// sampling (§5.4, Figure 9): every sampled group is one that can actually
// occur during Abacus scheduling — at least one query completes in the
// group, newly arrived queries start from operator zero, and the remaining
// boundaries are randomized.
type Sampler struct {
	cfg  SamplerConfig
	rng  *rand.Rand
	seed int64
}

// NewSampler returns a sampler with the given configuration.
func NewSampler(cfg SamplerConfig) *Sampler {
	if cfg.Runs <= 0 {
		cfg.Runs = 1
	}
	return &Sampler{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed)), seed: cfg.Seed}
}

// SampleGroup draws one operator group over the given co-located models.
func (s *Sampler) SampleGroup(models []dnn.ModelID) Group {
	if len(models) == 0 || len(models) > MaxCoLocated {
		panic(fmt.Sprintf("predictor: sampling over %d models, want 1..%d", len(models), MaxCoLocated))
	}
	for {
		g := make(Group, 0, len(models))
		anyCompletes := false
		for _, id := range models {
			m := dnn.Get(id)
			completes := s.rng.Intn(2) == 0
			isNew := s.rng.Intn(2) == 0
			if !completes && !isNew {
				// A member must either finish in this group or have just
				// arrived; re-flip toward one of the legal states.
				if s.rng.Intn(2) == 0 {
					completes = true
				} else {
					isNew = true
				}
			}
			if completes {
				anyCompletes = true
			}
			n := m.NumOps()
			start, end := 0, n
			if !isNew {
				start = s.rng.Intn(n) // completes from a random position
			}
			if !completes {
				end = start + 1 + s.rng.Intn(n-start) // new, stops early
			}
			e := Entry{Model: id, OpStart: start, OpEnd: end, Batch: s.randomBatch(m)}
			if m.IsSequence() {
				e.SeqLen = m.SeqLens[s.rng.Intn(len(m.SeqLens))]
			}
			g = append(g, e)
		}
		if anyCompletes {
			return g
		}
	}
}

func (s *Sampler) randomBatch(m *dnn.Model) int {
	batches := dnn.Batches()
	return batches[s.rng.Intn(len(batches))]
}

// MeasureSample measures a group Runs times with fresh noise seeds and
// returns the sample with mean and stddev.
func (s *Sampler) MeasureSample(g Group) Sample {
	lat := make([]float64, s.cfg.Runs)
	for r := range lat {
		s.seed++
		lat[r] = Measure(g, s.cfg.Profile, s.cfg.NoiseSigma, s.seed)
	}
	var mean float64
	for _, l := range lat {
		mean += l
	}
	mean /= float64(len(lat))
	var ss float64
	for _, l := range lat {
		d := l - mean
		ss += d * d
	}
	std := 0.0
	if len(lat) > 1 {
		std = math.Sqrt(ss / float64(len(lat)))
	}
	return Sample{Group: g, Latency: mean, StdDev: std}
}

// Collect generates and measures perCombo samples for every k-combination
// of the given models — the paper's 2000 × C(7,2) pairwise profiling run
// (§5.4). The same number of groups is sampled for each combination.
func Collect(models []dnn.ModelID, k, perCombo int, cfg SamplerConfig) []Sample {
	s := NewSampler(cfg)
	var out []Sample
	for _, combo := range Combinations(models, k) {
		for i := 0; i < perCombo; i++ {
			g := s.SampleGroup(combo)
			out = append(out, s.MeasureSample(g))
		}
	}
	return out
}

// Combinations returns all k-element combinations of models in
// lexicographic order.
func Combinations(models []dnn.ModelID, k int) [][]dnn.ModelID {
	if k <= 0 || k > len(models) {
		panic(fmt.Sprintf("predictor: combinations k=%d over %d models", k, len(models)))
	}
	var out [][]dnn.ModelID
	combo := make([]dnn.ModelID, k)
	var rec func(start, depth int)
	rec = func(start, depth int) {
		if depth == k {
			out = append(out, append([]dnn.ModelID(nil), combo...))
			return
		}
		for i := start; i <= len(models)-(k-depth); i++ {
			combo[depth] = models[i]
			rec(i+1, depth+1)
		}
	}
	rec(0, 0)
	return out
}
