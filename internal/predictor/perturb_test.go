package predictor

import (
	"math"
	"testing"

	"abacus/internal/dnn"
	"abacus/internal/gpusim"
)

func perturbGroup() Group {
	m := dnn.Get(dnn.ResNet152)
	return Group{{Model: dnn.ResNet152, OpStart: 0, OpEnd: m.NumOps(), Batch: 8}}
}

func TestPerturbedBiasScalesPrediction(t *testing.T) {
	base := Oracle{Profile: gpusim.A100Profile()}
	g := perturbGroup()
	truth := base.Predict(g)
	p := NewPerturbed(base, 0.8, 0, 1)
	if got := p.Predict(g); math.Abs(got-0.8*truth) > 1e-9 {
		t.Errorf("biased prediction %v, want %v", got, 0.8*truth)
	}
	if p.Healthy() {
		t.Error("Healthy() true with bias 0.8")
	}
	p.SetBias(1)
	if !p.Healthy() {
		t.Error("Healthy() false after restoring bias 1, noise 0")
	}
}

func TestPerturbedNoiseBoundedAndSeeded(t *testing.T) {
	base := Oracle{Profile: gpusim.A100Profile()}
	g := perturbGroup()
	truth := base.Predict(g)
	a := NewPerturbed(base, 1, 0.3, 42)
	b := NewPerturbed(base, 1, 0.3, 42)
	for i := 0; i < 50; i++ {
		va, vb := a.Predict(g), b.Predict(g)
		if va != vb {
			t.Fatalf("draw %d: same seed diverged: %v vs %v", i, va, vb)
		}
		if rel := va / truth; rel < 0.7-1e-9 || rel > 1.3+1e-9 {
			t.Fatalf("draw %d: noise escaped bound: ratio %v outside [0.7, 1.3]", i, rel)
		}
	}
	// Batch and scalar paths draw from the same stream discipline: bounds hold.
	for _, v := range a.PredictBatch([]Group{g, g, g}) {
		if rel := v / truth; rel < 0.7-1e-9 || rel > 1.3+1e-9 {
			t.Fatalf("batch noise escaped bound: ratio %v", rel)
		}
	}
}

func TestPerturbedValidation(t *testing.T) {
	base := Oracle{Profile: gpusim.A100Profile()}
	for _, fn := range map[string]func(){
		"zero bias":     func() { NewPerturbed(base, 0, 0, 1) },
		"negative bias": func() { NewPerturbed(base, -1, 0, 1) },
		"noise >= 1":    func() { NewPerturbed(base, 1, 1, 1) },
		"nil inner":     func() { NewPerturbed(nil, 1, 0, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%v", "expected panic")
				}
			}()
			fn()
		}()
	}
}
