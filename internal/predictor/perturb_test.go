package predictor

import (
	"math"
	"testing"

	"abacus/internal/dnn"
	"abacus/internal/gpusim"
)

func perturbGroup() Group {
	m := dnn.Get(dnn.ResNet152)
	return Group{{Model: dnn.ResNet152, OpStart: 0, OpEnd: m.NumOps(), Batch: 8}}
}

func TestPerturbedBiasScalesPrediction(t *testing.T) {
	base := Oracle{Profile: gpusim.A100Profile()}
	g := perturbGroup()
	truth := base.Predict(g)
	p := NewPerturbed(base, 0.8, 0, 1)
	if got := p.Predict(g); math.Abs(got-0.8*truth) > 1e-9 {
		t.Errorf("biased prediction %v, want %v", got, 0.8*truth)
	}
	if p.Healthy() {
		t.Error("Healthy() true with bias 0.8")
	}
	p.SetBias(1)
	if !p.Healthy() {
		t.Error("Healthy() false after restoring bias 1, noise 0")
	}
}

func TestPerturbedNoiseBoundedAndSeeded(t *testing.T) {
	base := Oracle{Profile: gpusim.A100Profile()}
	g := perturbGroup()
	truth := base.Predict(g)
	a := NewPerturbed(base, 1, 0.3, 42)
	b := NewPerturbed(base, 1, 0.3, 42)
	for i := 0; i < 50; i++ {
		va, vb := a.Predict(g), b.Predict(g)
		if va != vb {
			t.Fatalf("draw %d: same seed diverged: %v vs %v", i, va, vb)
		}
		if rel := va / truth; rel < 0.7-1e-9 || rel > 1.3+1e-9 {
			t.Fatalf("draw %d: noise escaped bound: ratio %v outside [0.7, 1.3]", i, rel)
		}
	}
	// Batch and scalar paths draw from the same stream discipline: bounds hold.
	for _, v := range a.PredictBatch([]Group{g, g, g}) {
		if rel := v / truth; rel < 0.7-1e-9 || rel > 1.3+1e-9 {
			t.Fatalf("batch noise escaped bound: ratio %v", rel)
		}
	}
}

func TestPerturbedModelBiasIsSelective(t *testing.T) {
	base := Oracle{Profile: gpusim.A100Profile()}
	res := perturbGroup()
	incep := Group{{Model: dnn.InceptionV3, OpStart: 0, OpEnd: dnn.Get(dnn.InceptionV3).NumOps(), Batch: 8}}
	truthRes, truthIncep := base.Predict(res), base.Predict(incep)

	p := NewPerturbed(base, 1, 0, 1)
	p.SetModelBias(dnn.ResNet152, 0.6)
	if p.Healthy() {
		t.Error("Healthy() true with a model bias set")
	}
	if got := p.ModelBias(dnn.ResNet152); got != 0.6 {
		t.Errorf("ModelBias = %v, want 0.6", got)
	}
	if got := p.Predict(res); math.Abs(got-0.6*truthRes) > 1e-9 {
		t.Errorf("biased model prediction %v, want %v", got, 0.6*truthRes)
	}
	// The co-located model's predictions are untouched.
	if got := p.Predict(incep); got != truthIncep {
		t.Errorf("unbiased model perturbed: %v != %v", got, truthIncep)
	}
	// A mixed group blames the biased model proportionally.
	mixed := Group{res[0], incep[0]}
	truthMixed := base.Predict(mixed)
	if got, want := p.Predict(mixed), 0.8*truthMixed; math.Abs(got-want) > 1e-9 {
		t.Errorf("mixed group bias %v, want blend %v", got, want)
	}
	// Model bias stacks multiplicatively on the global bias.
	p.SetBias(0.5)
	if got, want := p.Predict(res), 0.5*0.6*truthRes; math.Abs(got-want) > 1e-9 {
		t.Errorf("stacked bias %v, want %v", got, want)
	}
	// Setting 1 clears the entry and restores health.
	p.SetBias(1)
	p.SetModelBias(dnn.ResNet152, 1)
	if !p.Healthy() {
		t.Error("Healthy() false after clearing model bias")
	}
	if got := p.Predict(res); got != truthRes {
		t.Errorf("cleared model bias still perturbs: %v != %v", got, truthRes)
	}
}

func TestPerturbedValidation(t *testing.T) {
	base := Oracle{Profile: gpusim.A100Profile()}
	for _, fn := range map[string]func(){
		"zero bias":       func() { NewPerturbed(base, 0, 0, 1) },
		"negative bias":   func() { NewPerturbed(base, -1, 0, 1) },
		"noise >= 1":      func() { NewPerturbed(base, 1, 1, 1) },
		"nil inner":       func() { NewPerturbed(nil, 1, 0, 1) },
		"zero model bias": func() { NewPerturbed(base, 1, 0, 1).SetModelBias(dnn.ResNet152, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%v", "expected panic")
				}
			}()
			fn()
		}()
	}
}
