package predictor

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"math/rand"

	"abacus/internal/ml"
	"abacus/internal/runner"
	"abacus/internal/stats"
)

// Technique selects the duration-model family the paper compares in §5.5.
type Technique int

// The three candidate modeling techniques of Figure 10.
const (
	TechLinearRegression Technique = iota
	TechSVR
	TechMLP
)

// String returns the paper's label for the technique.
func (t Technique) String() string {
	switch t {
	case TechLinearRegression:
		return "Linear Regression"
	case TechSVR:
		return "SVM"
	case TechMLP:
		return "MLP"
	default:
		return fmt.Sprintf("Technique(%d)", int(t))
	}
}

// TrainConfig controls duration-model training.
type TrainConfig struct {
	Technique Technique
	// Epochs for the iterative models (MLP/SVR); zero uses their defaults
	// (600 for the MLP).
	Epochs int
	// LogTarget trains on log-latency and exponentiates predictions. The
	// simulated latency surface spans a wider dynamic range than the
	// paper's testbed, and relative (MAPE) accuracy benefits from the log
	// transform.
	LogTarget bool
	// Seed makes training deterministic.
	Seed int64
}

// DefaultTrainConfig returns the settings used by the experiments: the
// paper's 3×32 MLP trained on log-latency.
func DefaultTrainConfig() TrainConfig {
	return TrainConfig{Technique: TechMLP, LogTarget: true, Seed: 1}
}

// BuildDataset encodes samples into an ml.Dataset with the codec.
func BuildDataset(samples []Sample, codec Codec) ml.Dataset {
	var ds ml.Dataset
	for _, s := range samples {
		ds.Append(codec.Encode(s.Group), s.Latency)
	}
	return ds
}

// newRegressor instantiates the configured technique.
func newRegressor(cfg TrainConfig) ml.Regressor {
	var inner ml.Regressor
	switch cfg.Technique {
	case TechLinearRegression:
		inner = &ml.LinearRegression{Ridge: 1e-6}
	case TechSVR:
		inner = &ml.SVR{Epochs: cfg.Epochs, Seed: cfg.Seed}
	case TechMLP:
		epochs := cfg.Epochs
		if epochs == 0 {
			epochs = 600
		}
		inner = &ml.MLP{Epochs: epochs, LearningRate: 3e-3, Seed: cfg.Seed}
	default:
		panic(fmt.Sprintf("predictor: unknown technique %d", cfg.Technique))
	}
	if cfg.LogTarget {
		return &logModel{inner: inner}
	}
	return inner
}

// logModel trains its inner regressor on log-latency and exponentiates
// predictions, improving relative accuracy over a wide latency range.
type logModel struct {
	inner ml.Regressor
}

// Fit implements ml.Regressor.
func (m *logModel) Fit(ds ml.Dataset) error {
	ly := make([]float64, len(ds.Y))
	for i, y := range ds.Y {
		if y <= 0 {
			return fmt.Errorf("predictor: non-positive latency %v at sample %d", y, i)
		}
		ly[i] = math.Log(y)
	}
	return m.inner.Fit(ml.Dataset{X: ds.X, Y: ly})
}

// Predict implements ml.Regressor.
func (m *logModel) Predict(x []float64) float64 {
	return math.Exp(m.inner.Predict(x))
}

// Predictor is a trained overlap-aware latency predictor: it maps an
// operator group to its predicted co-run latency in milliseconds.
type Predictor struct {
	codec Codec
	model ml.Regressor
}

// Train fits a duration model on the samples and returns the predictor.
func Train(samples []Sample, codec Codec, cfg TrainConfig) (*Predictor, error) {
	if len(samples) == 0 {
		return nil, fmt.Errorf("predictor: no samples")
	}
	ds := BuildDataset(samples, codec)
	model := newRegressor(cfg)
	if err := model.Fit(ds); err != nil {
		return nil, err
	}
	return &Predictor{codec: codec, model: model}, nil
}

// Codec returns the feature codec the predictor was trained with.
func (p *Predictor) Codec() Codec { return p.codec }

// Predict returns the predicted group latency in milliseconds.
func (p *Predictor) Predict(g Group) float64 {
	return p.model.Predict(p.codec.Encode(g))
}

// PredictBatch evaluates many candidate groups at once — the batched
// duration-model invocation behind the multi-way search (§6.3).
func (p *Predictor) PredictBatch(gs []Group) []float64 {
	X := make([][]float64, len(gs))
	for i, g := range gs {
		X[i] = p.codec.Encode(g)
	}
	out := make([]float64, len(gs))
	p.PredictEncoded(X, out)
	return out
}

// EncodedPredictor is the allocation-free fast path of the span search:
// a latency model that can evaluate feature rows already encoded with its
// Codec, skipping the Group materialisation and double encode per probe.
// Only the trained *Predictor implements it — wrapper models (perturbation,
// calibration, memoization) need the Group structure and fall back to
// PredictBatch.
type EncodedPredictor interface {
	LatencyModel
	Codec() Codec
	// PredictEncoded writes one prediction per row into dst. Each row must
	// have length Codec().Width() and dst length len(rows).
	PredictEncoded(rows [][]float64, dst []float64)
}

// PredictEncoded implements EncodedPredictor. The rows are evaluated with
// the exact batched forward PredictBatch uses, so encoded and Group-based
// predictions are bit-identical.
func (p *Predictor) PredictEncoded(rows [][]float64, dst []float64) {
	if len(dst) != len(rows) {
		panic(fmt.Sprintf("predictor: PredictEncoded dst length %d, want %d", len(dst), len(rows)))
	}
	switch m := p.model.(type) {
	case *ml.MLP:
		m.PredictBatchTo(dst, rows)
		return
	case *logModel:
		if mlp, ok := m.inner.(*ml.MLP); ok {
			mlp.PredictBatchTo(dst, rows)
			for i := range dst {
				dst[i] = math.Exp(dst[i])
			}
			return
		}
	}
	for i, r := range rows {
		dst[i] = p.model.Predict(r)
	}
}

// Evaluate returns the MAPE of the predictor over held-out samples
// (Equation 1).
func (p *Predictor) Evaluate(samples []Sample) float64 {
	pred := make([]float64, len(samples))
	actual := make([]float64, len(samples))
	for i, s := range samples {
		pred[i] = p.Predict(s.Group)
		actual[i] = s.Latency
	}
	return stats.MAPE(pred, actual)
}

// TrainEval performs the paper's 80/20 split, trains, and returns the
// predictor plus its held-out MAPE.
func TrainEval(samples []Sample, codec Codec, cfg TrainConfig) (*Predictor, float64, error) {
	ds := BuildDataset(samples, codec)
	rng := rand.New(rand.NewSource(cfg.Seed + 1))
	train, test := ds.Split(0.8, rng)
	model := newRegressor(cfg)
	if err := model.Fit(train); err != nil {
		return nil, 0, err
	}
	p := &Predictor{codec: codec, model: model}
	err := stats.MAPE(ml.PredictAll(model, test.X), test.Y)
	return p, err, nil
}

// TrainEvalEach runs TrainEval over several sample sets concurrently —
// the per-pair duration-model sweep of Figure 10. Every set trains a
// fresh model from the same config, so the per-set predictors and MAPEs
// (returned in set order) are identical at any parallelism.
func TrainEvalEach(sets [][]Sample, codec Codec, cfg TrainConfig, parallel int) ([]*Predictor, []float64, error) {
	type fit struct {
		p    *Predictor
		mape float64
	}
	fits, err := runner.MapErr(len(sets), parallel, func(i int) (fit, error) {
		p, mape, err := TrainEval(sets[i], codec, cfg)
		return fit{p, mape}, err
	})
	if err != nil {
		return nil, nil, err
	}
	ps := make([]*Predictor, len(fits))
	mapes := make([]float64, len(fits))
	for i, f := range fits {
		ps[i], mapes[i] = f.p, f.mape
	}
	return ps, mapes, nil
}

// CrossValidate runs k-fold cross validation of the configured technique
// over the samples and returns per-fold MAPEs (Figure 10's
// "Cross Validation" bars).
func CrossValidate(samples []Sample, codec Codec, cfg TrainConfig, k int) ([]float64, error) {
	ds := BuildDataset(samples, codec)
	rng := rand.New(rand.NewSource(cfg.Seed + 2))
	return ml.CrossValidate(ds, k, rng,
		func() ml.Regressor { return newRegressor(cfg) },
		stats.MAPE)
}

// SaveSamples writes samples as JSON, the offline-profiling artifact the
// training CLI persists.
func SaveSamples(w io.Writer, samples []Sample) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(samples)
}

// LoadSamples reads samples written by SaveSamples.
func LoadSamples(r io.Reader) ([]Sample, error) {
	var samples []Sample
	if err := json.NewDecoder(r).Decode(&samples); err != nil {
		return nil, err
	}
	for i, s := range samples {
		if err := s.Group.Validate(); err != nil {
			return nil, fmt.Errorf("predictor: sample %d: %w", i, err)
		}
	}
	return samples, nil
}
