package predictor

import (
	"fmt"

	"abacus/internal/dnn"
)

// MaxCoLocated is the largest co-location degree the feature encoding
// supports; the paper evaluates up to quadruplet-wise deployment (§7.4).
const MaxCoLocated = 4

// Codec encodes operator groups into the fixed-width feature vectors of
// Figure 8: an N-bit multi-hot model bitmap followed by MaxCoLocated slots
// of (opStart, opEnd, batch, seqlen), slots filled in ascending model-id
// order. One codec (and one trained model) covers every combination — the
// paper's unified-model conclusion (§5.5).
type Codec struct {
	NumModels int
	Slots     int
}

// NewCodec returns the default codec over the full zoo.
func NewCodec() Codec {
	return Codec{NumModels: int(dnn.NumModels), Slots: MaxCoLocated}
}

// Width returns the feature vector length.
func (c Codec) Width() int { return c.NumModels + 4*c.Slots }

// Encode builds the feature vector for a group. It panics if the group is
// invalid or exceeds the slot count: groups are produced by the controller
// and sampler, so that is a programming error.
func (c Codec) Encode(g Group) []float64 {
	out := make([]float64, c.Width())
	c.EncodeTo(out, g)
	return out
}

// EncodeTo encodes into dst, which must have length Width(). Useful for
// allocation-free batched search.
func (c Codec) EncodeTo(dst []float64, g Group) {
	if len(dst) != c.Width() {
		panic(fmt.Sprintf("predictor: EncodeTo dst width %d, want %d", len(dst), c.Width()))
	}
	if len(g) > c.Slots {
		panic(fmt.Sprintf("predictor: group size %d exceeds %d slots", len(g), c.Slots))
	}
	if err := g.Validate(); err != nil {
		panic(err)
	}
	for i := range dst {
		dst[i] = 0
	}
	for i := range g {
		e := g[i]
		if int(e.Model) >= c.NumModels {
			panic(fmt.Sprintf("predictor: model id %d outside codec's %d models", e.Model, c.NumModels))
		}
		// Slot rank without materialising g.sorted(): models are distinct
		// (Validate above), so the count of smaller ids is the canonical
		// ascending-model slot. Groups hold at most MaxCoLocated entries,
		// so the quadratic rank scan is a handful of comparisons.
		slot := 0
		for j := range g {
			if g[j].Model < e.Model {
				slot++
			}
		}
		dst[e.Model] = 1
		base := c.NumModels + 4*slot
		dst[base+0] = float64(e.OpStart)
		dst[base+1] = float64(e.OpEnd)
		dst[base+2] = float64(e.Batch)
		dst[base+3] = float64(e.SeqLen)
	}
}

// Decode reverses Encode for testing and diagnostics. Slot order carries no
// model identity beyond the bitmap, so Decode relies on the canonical
// ascending-model slot order that Encode produces.
func (c Codec) Decode(x []float64) (Group, error) {
	if len(x) != c.Width() {
		return nil, fmt.Errorf("predictor: decode width %d, want %d", len(x), c.Width())
	}
	var models []dnn.ModelID
	for id := 0; id < c.NumModels; id++ {
		if x[id] != 0 {
			models = append(models, dnn.ModelID(id))
		}
	}
	var g Group
	for slot, id := range models {
		base := c.NumModels + 4*slot
		g = append(g, Entry{
			Model:   id,
			OpStart: int(x[base+0]),
			OpEnd:   int(x[base+1]),
			Batch:   int(x[base+2]),
			SeqLen:  int(x[base+3]),
		})
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return g, nil
}
