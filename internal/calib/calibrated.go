// Calibrated is the predictor.LatencyModel decorator that publishes the
// tracker's corrections: wrap the serving model once and both the admission
// controller and the scheduler's group sizing consume feedback-corrected
// predictions without knowing calibration exists.
package calib

import "abacus/internal/predictor"

// Calibrated wraps a LatencyModel with the tracker's per-service affine
// corrections. Like every model in the repro it must only be called from
// the loop goroutine that owns the runtime (and the tracker).
type Calibrated struct {
	inner predictor.LatencyModel
	tr    *Tracker
}

// NewCalibrated wraps inner with tracker-driven correction.
func NewCalibrated(inner predictor.LatencyModel, tr *Tracker) *Calibrated {
	if inner == nil {
		panic("calib: Calibrated requires an inner model")
	}
	if tr == nil {
		panic("calib: Calibrated requires a tracker")
	}
	return &Calibrated{inner: inner, tr: tr}
}

// Tracker returns the tracker backing the wrapper.
func (c *Calibrated) Tracker() *Tracker { return c.tr }

// Predict implements LatencyModel.
func (c *Calibrated) Predict(g predictor.Group) float64 {
	return c.tr.CorrectGroup(g, c.inner.Predict(g))
}

// PredictBatch implements LatencyModel.
func (c *Calibrated) PredictBatch(gs []predictor.Group) []float64 {
	out := c.inner.PredictBatch(gs)
	for i, g := range gs {
		out[i] = c.tr.CorrectGroup(g, out[i])
	}
	return out
}

var _ predictor.LatencyModel = (*Calibrated)(nil)
