// Seeded bounded reservoir of feedback pairs (Vitter's Algorithm R with a
// splitmix64 coin): every offered sample has the same cap/n probability of
// residing in the window, and eviction choices depend only on (seed,
// service, offer index), never on goroutine scheduling.
package calib

type reservoir struct {
	cap    int
	seed   uint64
	salt   uint64
	n      uint64 // samples offered so far
	xs, ys []float64
}

func newReservoir(capacity int, seed, salt uint64) *reservoir {
	return &reservoir{cap: capacity, seed: seed, salt: salt}
}

func (r *reservoir) add(x, y float64) {
	r.n++
	if len(r.xs) < r.cap {
		r.xs = append(r.xs, x)
		r.ys = append(r.ys, y)
		return
	}
	// Keep the n-th sample with probability cap/n, at a uniform slot.
	j := splitmix(r.seed, r.salt, r.n) % r.n
	if j < uint64(r.cap) {
		r.xs[j] = x
		r.ys[j] = y
	}
}

func (r *reservoir) len() int { return len(r.xs) }

// residuals returns the signed observed−predicted residuals of the window.
func (r *reservoir) residuals() []float64 {
	if len(r.xs) == 0 {
		return nil
	}
	out := make([]float64, len(r.xs))
	for i := range r.xs {
		out[i] = r.ys[i] - r.xs[i]
	}
	return out
}

// splitmix is the splitmix64 finalizer over a keyed mix — the same
// construction the chaos harness uses for fault coins.
func splitmix(seed, salt, i uint64) uint64 {
	x := seed*0x9e3779b97f4a7c15 + salt*0xbf58476d1ce4e5b9 + i*0x94d049bb133111eb
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}
