// Package calib closes the loop the offline-trained predictor leaves open:
// the serving stack predicts every admitted query's completion latency, then
// watches what actually happened, and this package folds the difference back
// into future predictions. Clockwork (OSDI '20) argues that production
// predictability comes from continuously reconciling observed against
// predicted latency; here that reconciliation is a per-service affine
// correction fit online from (predicted, observed) feedback pairs.
//
// Mechanics: every completed query contributes one sample to its service —
// the prediction admission used and the latency the query actually saw. The
// Tracker accumulates closed-form least-squares moments over small batches
// and, every UpdateEvery samples, fits the residual map observed ≈ a·x + b
// and composes it (damped) into the service's running correction. Because
// samples are taken against already-corrected predictions, the fit is a
// feedback step: once the correction converges the residual map is the
// identity and the state stops moving. A bounded, seeded reservoir keeps a
// representative sample window per service for residual quantiles and the
// optional periodic mini-refit through internal/ml's ridge regression.
//
// Everything is single-goroutine state owned by whichever loop drives the
// runtime (the chaos engine goroutine, the gateway bridge loop), and every
// random choice is a seeded splitmix64 draw, so calibration reports are
// byte-identical across runs and worker-pool widths.
package calib

import (
	"fmt"
	"math"

	"abacus/internal/dnn"
	"abacus/internal/predictor"
	"abacus/internal/stats"
)

// Config tunes the online calibration subsystem. The zero value enables
// calibration with the defaults below; set Disabled to pass predictions
// through untouched and ignore feedback.
type Config struct {
	// Disabled pins every correction at the identity and drops observations.
	Disabled bool `json:"disabled,omitempty"`
	// Seed drives the per-service reservoir eviction coins.
	Seed int64 `json:"seed,omitempty"`
	// ReservoirSize bounds the per-service feedback sample window kept for
	// residual quantiles and mini-refits (default 256).
	ReservoirSize int `json:"reservoir_size,omitempty"`
	// MinSamples is how many feedback samples a service must contribute
	// before its correction leaves the identity (default 16).
	MinSamples int `json:"min_samples,omitempty"`
	// UpdateEvery is the closed-form refit cadence: every this many samples
	// per service, the batch residual map is fit and folded in (default 8).
	UpdateEvery int `json:"update_every,omitempty"`
	// Damping is the fraction of the fitted residual map folded into the
	// running correction per update, in (0, 1] (default 0.5). Lower damping
	// rides out noise; 1 jumps straight to the fit.
	Damping float64 `json:"damping,omitempty"`
	// MinSlope/MaxSlope clamp the total correction slope (defaults 0.2, 5),
	// bounding how far feedback may bend the model.
	MinSlope float64 `json:"min_slope,omitempty"`
	MaxSlope float64 `json:"max_slope,omitempty"`
	// MaxInterceptMS clamps the correction intercept's magnitude in virtual
	// ms (default 50).
	MaxInterceptMS float64 `json:"max_intercept_ms,omitempty"`
	// RefitEvery, when positive, additionally refits the residual map over
	// the whole reservoir every this many samples per service using
	// internal/ml's ridge regression (a mini-refit; 0 disables).
	RefitEvery int `json:"refit_every,omitempty"`
	// MaxBacklogFrac gates ObserveAdmission: a completion only becomes a
	// feedback sample when the backlog ahead of it at admission was at most
	// this fraction of its own predicted work (default 0.1). Uncontended
	// samples isolate model error from queueing and overlap slack — a
	// contended completion reflects the whole backlog's fate, not the
	// model's accuracy on this query.
	MaxBacklogFrac float64 `json:"max_backlog_frac,omitempty"`
	// OnUpdate, when non-nil, runs after a service's correction changes —
	// the admitter invalidates its memoized solo predictions here. It runs
	// on the goroutine that called Observe.
	OnUpdate func(service int) `json:"-"`
}

func (c Config) withDefaults() Config {
	if c.ReservoirSize == 0 {
		c.ReservoirSize = 256
	}
	if c.MinSamples == 0 {
		c.MinSamples = 16
	}
	if c.UpdateEvery == 0 {
		c.UpdateEvery = 8
	}
	if c.Damping == 0 {
		c.Damping = 0.5
	}
	if c.MinSlope == 0 {
		c.MinSlope = 0.2
	}
	if c.MaxSlope == 0 {
		c.MaxSlope = 5
	}
	if c.MaxInterceptMS == 0 {
		c.MaxInterceptMS = 50
	}
	if c.MaxBacklogFrac == 0 {
		c.MaxBacklogFrac = 0.1
	}
	return c
}

func (c Config) validate() error {
	switch {
	case c.ReservoirSize < 2:
		return fmt.Errorf("calib: reservoir size %d must be >= 2", c.ReservoirSize)
	case c.MinSamples < 1:
		return fmt.Errorf("calib: min samples %d must be >= 1", c.MinSamples)
	case c.UpdateEvery < 1:
		return fmt.Errorf("calib: update cadence %d must be >= 1", c.UpdateEvery)
	case c.Damping <= 0 || c.Damping > 1:
		return fmt.Errorf("calib: damping %v outside (0, 1]", c.Damping)
	case c.MinSlope <= 0 || c.MinSlope > 1:
		return fmt.Errorf("calib: min slope %v outside (0, 1]", c.MinSlope)
	case c.MaxSlope < 1:
		return fmt.Errorf("calib: max slope %v must be >= 1", c.MaxSlope)
	case c.MaxInterceptMS < 0:
		return fmt.Errorf("calib: max intercept %v must be >= 0 ms", c.MaxInterceptMS)
	case c.RefitEvery < 0:
		return fmt.Errorf("calib: refit cadence %d must be >= 0", c.RefitEvery)
	case c.MaxBacklogFrac < 0:
		return fmt.Errorf("calib: max backlog fraction %v must be >= 0", c.MaxBacklogFrac)
	}
	return nil
}

// svcState is one service's calibration state.
type svcState struct {
	slope     float64 // running correction: corrected = slope·raw + intercept
	intercept float64

	// Batch least-squares moments since the last closed-form update, over
	// (x = corrected prediction admission used, y = observed latency).
	n                int
	sx, sy, sxx, sxy float64
	samples          int64 // lifetime feedback samples
	updates          int64 // closed-form corrections applied
	refits           int64 // reservoir mini-refits applied
	res              *reservoir
}

// Tracker is the per-service online calibration state. Like the admission
// controller it is single-goroutine state: the loop that owns the runtime
// owns the tracker.
type Tracker struct {
	cfg     Config
	models  []dnn.ModelID
	byModel map[dnn.ModelID]int
	svcs    []*svcState
}

// NewTracker builds a tracker over the deployment (one correction per
// service, keyed by model). It panics on an invalid configuration.
func NewTracker(cfg Config, models []dnn.ModelID) *Tracker {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		panic(err)
	}
	if len(models) == 0 {
		panic("calib: no models")
	}
	t := &Tracker{
		cfg:     cfg,
		models:  append([]dnn.ModelID(nil), models...),
		byModel: make(map[dnn.ModelID]int, len(models)),
	}
	for i, m := range models {
		t.byModel[m] = i
		t.svcs = append(t.svcs, &svcState{
			slope: 1,
			res:   newReservoir(cfg.ReservoirSize, uint64(cfg.Seed), uint64(i)),
		})
	}
	return t
}

// Enabled reports whether the tracker acts on feedback.
func (t *Tracker) Enabled() bool { return !t.cfg.Disabled }

// Observe feeds one completed query's feedback pair: the (corrected)
// completion latency admission predicted and the latency the query actually
// saw. Non-positive predictions and negative observations are ignored.
func (t *Tracker) Observe(service int, predictedMS, observedMS float64) {
	if t.cfg.Disabled || predictedMS <= 0 || observedMS < 0 ||
		math.IsNaN(observedMS) || math.IsInf(observedMS, 0) {
		return
	}
	s := t.svcs[service]
	s.samples++
	s.n++
	s.sx += predictedMS
	s.sy += observedMS
	s.sxx += predictedMS * predictedMS
	s.sxy += predictedMS * observedMS
	s.res.add(predictedMS, observedMS)

	if s.n >= t.cfg.UpdateEvery && s.samples >= int64(t.cfg.MinSamples) {
		a, b, ok := batchFit(s)
		s.n, s.sx, s.sy, s.sxx, s.sxy = 0, 0, 0, 0, 0
		if ok && t.compose(service, a, b) {
			s.updates++
			t.noteUpdate(service)
		}
	}
	if t.cfg.RefitEvery > 0 && s.samples%int64(t.cfg.RefitEvery) == 0 {
		if t.refit(service) {
			s.refits++
			t.noteUpdate(service)
		}
	}
}

// ObserveAdmission is the admission-path feedback entry point: soloMS is
// the (corrected) prediction for the query's own work, backlogMS the
// predicted work already queued ahead of it at admission, and observedMS
// the completion latency it actually saw. Only uncontended completions —
// backlog at most MaxBacklogFrac of the query's own work — become samples:
// a query that waited behind a deep backlog tells us about the backlog, not
// about the model's accuracy on this query, and fitting those pairs would
// fold queueing and overlap slack into the correction.
func (t *Tracker) ObserveAdmission(service int, soloMS, backlogMS, observedMS float64) {
	if soloMS <= 0 || backlogMS > t.cfg.MaxBacklogFrac*soloMS {
		return
	}
	t.Observe(service, soloMS, observedMS)
}

// batchFit solves the one-feature least squares observed ≈ a·x + b over the
// batch moments. When the batch has no usable spread in x (one input served
// in steady state), it degrades to the pure multiplicative fit a = Σy/Σx,
// b = 0, which is the quantity drift detection also watches.
func batchFit(s *svcState) (a, b float64, ok bool) {
	n := float64(s.n)
	if n < 2 || s.sx <= 0 {
		return 0, 0, false
	}
	det := n*s.sxx - s.sx*s.sx
	if det <= 1e-9*math.Max(1, n*s.sxx) {
		return s.sy / s.sx, 0, true
	}
	a = (n*s.sxy - s.sx*s.sy) / det
	b = (s.sy - a*s.sx) / n
	if a <= 0 || math.IsNaN(a) || math.IsInf(a, 0) || math.IsNaN(b) || math.IsInf(b, 0) {
		// A non-positive or degenerate slope means the batch carries no
		// usable signal; fall back to the ratio fit.
		return s.sy / s.sx, 0, true
	}
	return a, b, true
}

// compose folds the residual map (a, b) — fit against already-corrected
// predictions — into the running correction with damping, then clamps.
// It reports whether the correction actually moved.
func (t *Tracker) compose(service int, a, b float64) bool {
	s := t.svcs[service]
	// Ideal new correction: apply the residual map after the old correction.
	slope := a * s.slope
	intercept := a*s.intercept + b
	// Damped step from the old state toward the ideal.
	slope = s.slope + t.cfg.Damping*(slope-s.slope)
	intercept = s.intercept + t.cfg.Damping*(intercept-s.intercept)
	slope = math.Min(math.Max(slope, t.cfg.MinSlope), t.cfg.MaxSlope)
	intercept = math.Min(math.Max(intercept, -t.cfg.MaxInterceptMS), t.cfg.MaxInterceptMS)
	if slope == s.slope && intercept == s.intercept {
		return false
	}
	s.slope, s.intercept = slope, intercept
	return true
}

func (t *Tracker) noteUpdate(service int) {
	if t.cfg.OnUpdate != nil {
		t.cfg.OnUpdate(service)
	}
}

// Correct applies one service's running correction to a raw prediction.
// Before MinSamples of feedback the correction is the identity. The result
// is floored at a small fraction of the input so a negative intercept can
// never drive a prediction to zero or below.
func (t *Tracker) Correct(service int, v float64) float64 {
	s := t.svcs[service]
	if t.cfg.Disabled || s.samples < int64(t.cfg.MinSamples) || v <= 0 {
		return v
	}
	out := s.slope*v + s.intercept
	if floor := t.cfg.MinSlope * v; out < floor {
		out = floor
	}
	return out
}

// CorrectGroup corrects a group-level prediction. A group spans one or more
// services; their affine maps may disagree, so the corrected value is the
// uniform blend of each present service's correction (exact for the
// single-service groups admission predicts with; a neutral compromise for
// the scheduler's co-run groups). Models outside the deployment contribute
// the identity.
func (t *Tracker) CorrectGroup(g predictor.Group, v float64) float64 {
	if t.cfg.Disabled || len(g) == 0 || v <= 0 {
		return v
	}
	sum := 0.0
	for _, e := range g {
		if idx, ok := t.byModel[e.Model]; ok {
			sum += t.Correct(idx, v)
		} else {
			sum += v
		}
	}
	return sum / float64(len(g))
}

// Slope returns one service's current correction slope (1 before feedback).
func (t *Tracker) Slope(service int) float64 { return t.svcs[service].slope }

// Intercept returns one service's current correction intercept in ms.
func (t *Tracker) Intercept(service int) float64 { return t.svcs[service].intercept }

// Samples returns one service's lifetime feedback-sample count.
func (t *Tracker) Samples(service int) int64 { return t.svcs[service].samples }

// ServiceStatus is one service's calibration state for /statz, metrics, and
// chaos reports.
type ServiceStatus struct {
	Service   int     `json:"service"`
	Model     string  `json:"model"`
	Slope     float64 `json:"slope"`
	Intercept float64 `json:"intercept_ms"`
	Samples   int64   `json:"samples"`
	Updates   int64   `json:"updates"`
	Refits    int64   `json:"refits"`
	Reservoir int     `json:"reservoir"`
	// ResidualP50MS/ResidualP99MS are quantiles of the signed residual
	// (observed − corrected prediction) over the reservoir window; zero when
	// the reservoir is empty.
	ResidualP50MS float64 `json:"residual_p50_ms"`
	ResidualP99MS float64 `json:"residual_p99_ms"`
}

// Status is the tracker's point-in-time snapshot.
type Status struct {
	Enabled  bool            `json:"enabled"`
	Services []ServiceStatus `json:"services"`
}

// Snapshot returns the tracker's current state in service order.
func (t *Tracker) Snapshot() Status {
	st := Status{Enabled: !t.cfg.Disabled}
	for i, s := range t.svcs {
		e := ServiceStatus{
			Service:   i,
			Model:     t.models[i].String(),
			Slope:     s.slope,
			Intercept: s.intercept,
			Samples:   s.samples,
			Updates:   s.updates,
			Refits:    s.refits,
			Reservoir: s.res.len(),
		}
		if resid := s.res.residuals(); len(resid) > 0 {
			ps := stats.Percentiles(resid, 50, 99)
			e.ResidualP50MS, e.ResidualP99MS = ps[0], ps[1]
		}
		st.Services = append(st.Services, e)
	}
	return st
}
