package calib

import (
	"encoding/json"
	"math"
	"testing"

	"abacus/internal/dnn"
	"abacus/internal/gpusim"
	"abacus/internal/predictor"
)

var twoModels = []dnn.ModelID{dnn.ResNet50, dnn.VGG16}

// feed drives one service through n feedback rounds against a ground truth
// latency truth(raw), always observing against the tracker's own corrected
// prediction — the same closed loop the runtime runs.
func feed(t *Tracker, service, n int, raw float64, truth func(float64) float64) {
	for i := 0; i < n; i++ {
		// A little deterministic spread in the raw predictions so the batch
		// fit sees variance in x.
		x := raw * (1 + 0.05*float64(i%5))
		corrected := t.Correct(service, x)
		t.Observe(service, corrected, truth(x))
	}
}

func TestTrackerConvergesOnMultiplicativeBias(t *testing.T) {
	tr := NewTracker(Config{Seed: 7}, twoModels)
	// Service 0's true latency is 1.6x what the model predicts.
	feed(tr, 0, 400, 10, func(x float64) float64 { return 1.6 * x })

	for _, x := range []float64{8, 10, 14} {
		got := tr.Correct(0, x)
		want := 1.6 * x
		if math.Abs(got-want) > 0.05*want {
			t.Fatalf("Correct(0, %v) = %v, want ~%v", x, got, want)
		}
	}
	// Service 1 never observed anything: identity.
	if got := tr.Correct(1, 10); got != 10 {
		t.Fatalf("untouched service corrected 10 -> %v, want identity", got)
	}
}

func TestTrackerConvergesOnAffineDrift(t *testing.T) {
	tr := NewTracker(Config{Seed: 3}, twoModels)
	feed(tr, 0, 600, 20, func(x float64) float64 { return 0.7*x + 5 })

	for _, x := range []float64{15, 20, 30} {
		got := tr.Correct(0, x)
		want := 0.7*x + 5
		if math.Abs(got-want) > 0.08*want {
			t.Fatalf("Correct(0, %v) = %v, want ~%v", x, got, want)
		}
	}
}

func TestTrackerStableWhenAlreadyAccurate(t *testing.T) {
	tr := NewTracker(Config{Seed: 1}, twoModels)
	feed(tr, 0, 300, 12, func(x float64) float64 { return x })

	if got := tr.Correct(0, 12); math.Abs(got-12) > 0.3 {
		t.Fatalf("accurate service drifted: corrected 12 -> %v", got)
	}
	if tr.Slope(0) < 0.95 || tr.Slope(0) > 1.05 {
		t.Fatalf("slope %v strayed from 1 on accurate feedback", tr.Slope(0))
	}
}

func TestIdentityBeforeMinSamples(t *testing.T) {
	tr := NewTracker(Config{Seed: 1, MinSamples: 50}, twoModels)
	feed(tr, 0, 49, 10, func(x float64) float64 { return 3 * x })
	if got := tr.Correct(0, 10); got != 10 {
		t.Fatalf("corrected 10 -> %v before MinSamples, want identity", got)
	}
	feed(tr, 0, 100, 10, func(x float64) float64 { return 3 * x })
	if got := tr.Correct(0, 10); got <= 10 {
		t.Fatalf("corrected 10 -> %v after MinSamples, want > 10", got)
	}
}

func TestDisabledTrackerIsInert(t *testing.T) {
	tr := NewTracker(Config{Disabled: true}, twoModels)
	feed(tr, 0, 200, 10, func(x float64) float64 { return 2 * x })
	if got := tr.Correct(0, 10); got != 10 {
		t.Fatalf("disabled tracker corrected 10 -> %v", got)
	}
	if tr.Samples(0) != 0 {
		t.Fatalf("disabled tracker recorded %d samples", tr.Samples(0))
	}
	if tr.Enabled() {
		t.Fatal("Enabled() = true on disabled tracker")
	}
}

func TestCorrectionFloorAndClamps(t *testing.T) {
	tr := NewTracker(Config{Seed: 2, MaxInterceptMS: 50}, twoModels)
	// Truth is a tiny fraction of the prediction; the slope clamp (MinSlope
	// 0.2) must floor the correction well above zero.
	feed(tr, 0, 400, 10, func(x float64) float64 { return 0.01 * x })
	for _, x := range []float64{1, 5, 10} {
		got := tr.Correct(0, x)
		if got <= 0 {
			t.Fatalf("Correct(0, %v) = %v, must stay positive", x, got)
		}
		if got < 0.2*x-1e-9 {
			t.Fatalf("Correct(0, %v) = %v below MinSlope floor %v", x, got, 0.2*x)
		}
	}
	if s := tr.Slope(0); s < 0.2-1e-9 {
		t.Fatalf("slope %v below MinSlope clamp", s)
	}
}

func TestObserveIgnoresGarbage(t *testing.T) {
	tr := NewTracker(Config{Seed: 1}, twoModels)
	tr.Observe(0, 0, 10)
	tr.Observe(0, -5, 10)
	tr.Observe(0, 10, -1)
	tr.Observe(0, 10, math.NaN())
	tr.Observe(0, 10, math.Inf(1))
	if tr.Samples(0) != 0 {
		t.Fatalf("garbage observations recorded: samples=%d", tr.Samples(0))
	}
}

func TestCorrectGroupBlendsServices(t *testing.T) {
	tr := NewTracker(Config{Seed: 9, MinSamples: 8, UpdateEvery: 4, Damping: 1}, twoModels)
	feed(tr, 0, 200, 10, func(x float64) float64 { return 2 * x })
	// Service 1 stays identity (no feedback).
	g := predictor.Group{
		{Model: dnn.ResNet50, OpEnd: 1, Batch: 1},
		{Model: dnn.VGG16, OpEnd: 1, Batch: 1},
	}
	v := 10.0
	got := tr.CorrectGroup(g, v)
	want := (tr.Correct(0, v) + v) / 2
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("CorrectGroup = %v, want blend %v", got, want)
	}
	// A model outside the deployment contributes the identity.
	foreign := predictor.Group{{Model: dnn.Bert, OpEnd: 1, Batch: 1}}
	if got := tr.CorrectGroup(foreign, v); got != v {
		t.Fatalf("foreign-model group corrected %v -> %v, want identity", v, got)
	}
}

func TestMiniRefitRunsAndConverges(t *testing.T) {
	tr := NewTracker(Config{Seed: 5, RefitEvery: 32}, twoModels)
	feed(tr, 0, 400, 10, func(x float64) float64 { return 1.4 * x })

	st := tr.Snapshot()
	if st.Services[0].Refits == 0 {
		t.Fatal("RefitEvery set but no mini-refits ran")
	}
	got, want := tr.Correct(0, 10), 14.0
	if math.Abs(got-want) > 0.05*want {
		t.Fatalf("with mini-refit Correct(0, 10) = %v, want ~%v", got, want)
	}
}

func TestTrackerDeterminism(t *testing.T) {
	run := func() string {
		tr := NewTracker(Config{Seed: 42, RefitEvery: 64}, twoModels)
		feed(tr, 0, 500, 10, func(x float64) float64 { return 1.3*x + 2 })
		feed(tr, 1, 300, 25, func(x float64) float64 { return 0.8 * x })
		b, err := json.Marshal(tr.Snapshot())
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("snapshots differ across identical runs:\n%s\n%s", a, b)
	}
}

func TestSnapshotResidualQuantiles(t *testing.T) {
	tr := NewTracker(Config{Seed: 11, Disabled: false}, twoModels)
	feed(tr, 0, 100, 10, func(x float64) float64 { return x + 1 })
	st := tr.Snapshot()
	if !st.Enabled {
		t.Fatal("snapshot not enabled")
	}
	s0 := st.Services[0]
	if s0.Model != dnn.ResNet50.String() {
		t.Fatalf("service 0 model = %q", s0.Model)
	}
	if s0.Samples != 100 || s0.Reservoir == 0 {
		t.Fatalf("samples=%d reservoir=%d", s0.Samples, s0.Reservoir)
	}
	// Early pairs were recorded before the correction converged, so residuals
	// only need to be finite and ordered.
	if s0.ResidualP99MS < s0.ResidualP50MS {
		t.Fatalf("p99 %v < p50 %v", s0.ResidualP99MS, s0.ResidualP50MS)
	}
}

func TestReservoirBoundedAndSeeded(t *testing.T) {
	fill := func(seed uint64) ([]float64, uint64) {
		r := newReservoir(8, seed, 1)
		for i := 0; i < 1000; i++ {
			r.add(float64(i), float64(2*i))
		}
		return append([]float64(nil), r.xs...), r.n
	}
	a, n := fill(7)
	if len(a) != 8 || n != 1000 {
		t.Fatalf("len=%d offered=%d, want 8 and 1000", len(a), n)
	}
	b, _ := fill(7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at slot %d: %v vs %v", i, a[i], b[i])
		}
	}
	c, _ := fill(8)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical reservoirs")
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{ReservoirSize: 1},
		{MinSamples: -1},
		{UpdateEvery: -2},
		{Damping: 1.5},
		{MinSlope: 2},
		{MaxSlope: 0.5},
		{MaxInterceptMS: -1},
		{RefitEvery: -1},
	}
	for i, cfg := range bad {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("config %d: NewTracker accepted invalid config %+v", i, cfg)
				}
			}()
			NewTracker(cfg, twoModels)
		}()
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("NewTracker accepted empty model list")
			}
		}()
		NewTracker(Config{}, nil)
	}()
}

func TestOnUpdateFires(t *testing.T) {
	var fired []int
	tr := NewTracker(Config{
		Seed:     1,
		OnUpdate: func(svc int) { fired = append(fired, svc) },
	}, twoModels)
	feed(tr, 0, 100, 10, func(x float64) float64 { return 2 * x })
	if len(fired) == 0 {
		t.Fatal("OnUpdate never fired despite corrections moving")
	}
	for _, svc := range fired {
		if svc != 0 {
			t.Fatalf("OnUpdate fired for service %d, only 0 had feedback", svc)
		}
	}
}

func TestCalibratedWrapper(t *testing.T) {
	oracle := predictor.Oracle{Profile: gpusim.A100Profile()}
	tr := NewTracker(Config{Seed: 4}, twoModels)
	cal := NewCalibrated(oracle, tr)

	g := predictor.Group{{Model: dnn.ResNet50, OpEnd: 10, Batch: 1, SeqLen: 1}}
	raw := oracle.Predict(g)
	if got := cal.Predict(g); got != raw {
		t.Fatalf("uncalibrated wrapper changed prediction: %v != %v", got, raw)
	}

	feed(tr, 0, 300, raw, func(x float64) float64 { return 2 * x })
	got := cal.Predict(g)
	if math.Abs(got-2*raw) > 0.1*2*raw {
		t.Fatalf("calibrated Predict = %v, want ~%v", got, 2*raw)
	}
	batch := cal.PredictBatch([]predictor.Group{g, g})
	if len(batch) != 2 || batch[0] != got || batch[1] != got {
		t.Fatalf("PredictBatch %v inconsistent with Predict %v", batch, got)
	}
	if cal.Tracker() != tr {
		t.Fatal("Tracker() accessor lost the tracker")
	}
}
