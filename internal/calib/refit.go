// Optional periodic mini-refit: every RefitEvery samples a service's whole
// reservoir window is refit through internal/ml's ridge regression instead
// of the last small batch. The reservoir spans a longer horizon than one
// batch, so the refit smooths over bursty residuals; because its pairs were
// recorded against the corrections in force at their admission, the fit is
// treated as one more damped residual step, which is exact once calibration
// has converged and conservative while it is still moving.
package calib

import "abacus/internal/ml"

// refitMinWindow is the smallest reservoir a mini-refit will trust.
const refitMinWindow = 8

// refit fits observed ≈ a·x + b over the service's reservoir with ridge
// regression and composes the result like a closed-form batch update. It
// reports whether the correction moved.
func (t *Tracker) refit(service int) bool {
	s := t.svcs[service]
	if s.res.len() < refitMinWindow {
		return false
	}
	ds := ml.Dataset{
		X: make([][]float64, s.res.len()),
		Y: append([]float64(nil), s.res.ys...),
	}
	for i, x := range s.res.xs {
		ds.X[i] = []float64{x}
	}
	lr := ml.LinearRegression{Ridge: 1e-6}
	if err := lr.Fit(ds); err != nil {
		return false
	}
	// Recover the affine map from two evaluations (the regression is linear
	// in its single feature).
	b := lr.Predict([]float64{0})
	a := lr.Predict([]float64{1}) - b
	if a <= 0 {
		return false
	}
	return t.compose(service, a, b)
}
