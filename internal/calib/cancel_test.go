package calib

import (
	"encoding/json"
	"math"
	"testing"

	"abacus/internal/dnn"
	"abacus/internal/gpusim"
	"abacus/internal/predictor"
)

// Satellite coverage: predictor.Perturbed composed with calib.Calibrated —
// the exact chain the chaos harness runs under a predictor_bias fault.
// A constant injected per-model bias must be cancelled by calibration to
// within tolerance, and the whole closed loop must be deterministic.
func TestCalibrationCancelsInjectedBias(t *testing.T) {
	oracle := predictor.Oracle{Profile: gpusim.A100Profile()}
	m := dnn.Get(dnn.ResNet50)
	groups := []predictor.Group{
		{{Model: dnn.ResNet50, OpEnd: m.NumOps(), Batch: 4, SeqLen: 1}},
		{{Model: dnn.ResNet50, OpEnd: m.NumOps(), Batch: 8, SeqLen: 1}},
		{{Model: dnn.ResNet50, OpEnd: m.NumOps(), Batch: 16, SeqLen: 1}},
	}

	run := func() (*Calibrated, string) {
		perturbed := predictor.NewPerturbed(oracle, 1, 0, 99)
		perturbed.SetModelBias(dnn.ResNet50, 0.6) // systematic 40% underprediction
		tr := NewTracker(Config{Seed: 17}, []dnn.ModelID{dnn.ResNet50, dnn.VGG16})
		cal := NewCalibrated(perturbed, tr)

		// Closed loop: admission predicts through the calibrated chain, the
		// query then actually takes the oracle's (true) latency, and that
		// feedback pair flows back into the tracker.
		for i := 0; i < 200; i++ {
			g := groups[i%len(groups)]
			predicted := cal.Predict(g)
			observed := oracle.Predict(g)
			tr.Observe(0, predicted, observed)
		}
		b, err := json.Marshal(tr.Snapshot())
		if err != nil {
			t.Fatal(err)
		}
		return cal, string(b)
	}

	cal, snapA := run()
	for _, g := range groups {
		truth := oracle.Predict(g)
		got := cal.Predict(g)
		if rel := math.Abs(got-truth) / truth; rel > 0.05 {
			t.Errorf("batch %d: calibrated prediction %v vs truth %v (%.1f%% off), bias not cancelled",
				g[0].Batch, got, truth, 100*rel)
		}
	}
	// The learned slope is the inverse of the injected bias.
	if s := cal.Tracker().Slope(0); math.Abs(s-1/0.6) > 0.1 {
		t.Errorf("slope %v, want ~%v (inverse of injected bias)", s, 1/0.6)
	}
	// The co-located unbiased service's correction never left the identity.
	if s := cal.Tracker().Slope(1); s != 1 {
		t.Errorf("unbiased service slope drifted to %v", s)
	}

	_, snapB := run()
	if snapA != snapB {
		t.Fatalf("closed calibration loop not deterministic:\n%s\n%s", snapA, snapB)
	}
}
