package serving

import (
	"reflect"
	"testing"

	"abacus/internal/dnn"
)

// capacityBase is a fast search bracket shared by the capacity tests.
func capacityBase() CapacityConfig {
	return CapacityConfig{
		Policy:       PolicyFCFS,
		Models:       []dnn.ModelID{dnn.ResNet50, dnn.InceptionV3},
		DurationMS:   1500,
		LoQPS:        5,
		HiQPS:        120,
		ToleranceQPS: 10,
		Seed:         3,
	}
}

// TestPeakQPSParallelDeterminism asserts the capacity search's probe
// sequence is fixed by seed and bracket — worker width must not change the
// answer or the measured run.
func TestPeakQPSParallelDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("capacity probes are slow; skipped in -short")
	}
	cfg := capacityBase()
	cfg.Parallel = 1
	qps1, res1 := PeakQPS(cfg)
	cfg.Parallel = 8
	qps8, res8 := PeakQPS(cfg)
	if qps1 != qps8 {
		t.Fatalf("capacity differs by worker width: %v vs %v", qps1, qps8)
	}
	if !reflect.DeepEqual(res1.Records, res8.Records) {
		t.Fatal("measured run differs by worker width")
	}
}

// TestPeakQPSMultiProbe sanity-checks the generalized bracket search:
// more interior probes per round must still land within tolerance of the
// single-probe (bisection) answer, and stay deterministic across widths.
func TestPeakQPSMultiProbe(t *testing.T) {
	if testing.Short() {
		t.Skip("capacity probes are slow; skipped in -short")
	}
	cfg := capacityBase()
	bisect, _ := PeakQPS(cfg)
	cfg.Probes = 3
	cfg.Parallel = 4
	multi, _ := PeakQPS(cfg)
	cfg.Parallel = 1
	multiSerial, _ := PeakQPS(cfg)
	if multi != multiSerial {
		t.Fatalf("multi-probe capacity differs by worker width: %v vs %v", multi, multiSerial)
	}
	// Both searches maintain the invariant lo sustains / hi violates, so
	// they agree up to the coarser tolerance.
	if diff := multi - bisect; diff > cfg.ToleranceQPS || diff < -cfg.ToleranceQPS {
		t.Errorf("Probes=3 capacity %v too far from bisection %v", multi, bisect)
	}
}
