// Package serving wires the Abacus reproduction into a single-GPU serving
// system: it replays an arrival trace against a scheduler (Abacus or one of
// the sequential baselines) on a simulated device and produces the QoS and
// throughput metrics reported across the paper's Figures 14–21.
package serving

import (
	"fmt"
	"sort"

	"abacus/internal/dnn"
	"abacus/internal/executor"
	"abacus/internal/gpusim"
	"abacus/internal/predictor"
	"abacus/internal/sched"
	"abacus/internal/sim"
	"abacus/internal/stats"
	"abacus/internal/trace"
)

// PolicyKind selects the scheduler under test.
type PolicyKind int

// The four evaluated per-GPU policies, plus the unmanaged MPS-style
// free-overlap baseline from the motivation section.
const (
	PolicyFCFS PolicyKind = iota
	PolicySJF
	PolicyEDF
	PolicyAbacus
	PolicyMPS
	PolicyKernelLevel
)

// String returns the paper's label for the policy.
func (p PolicyKind) String() string {
	switch p {
	case PolicyFCFS:
		return "FCFS"
	case PolicySJF:
		return "SJF"
	case PolicyEDF:
		return "EDF"
	case PolicyAbacus:
		return "Abacus"
	case PolicyMPS:
		return "MPS"
	case PolicyKernelLevel:
		return "KernelLevel"
	default:
		return fmt.Sprintf("PolicyKind(%d)", int(p))
	}
}

// AllPolicies lists the evaluation's policies in the paper's order.
func AllPolicies() []PolicyKind {
	return []PolicyKind{PolicyFCFS, PolicySJF, PolicyEDF, PolicyAbacus}
}

// RunConfig describes one single-GPU serving experiment.
type RunConfig struct {
	Policy   PolicyKind
	Models   []dnn.ModelID
	Arrivals []trace.Arrival
	// Services overrides the default QoS derivation (2× max-input solo)
	// when non-nil — e.g. the small-DNN experiment.
	Services []*sched.Service
	// Profile is the device model; zero value selects A100Profile.
	Profile gpusim.Profile
	// Device, when non-nil, runs on the given (possibly MIG-partitioned)
	// device instead of a fresh full one. Its engine is used for the run.
	Device *gpusim.Device
	// Model is the latency model for Abacus; nil selects the exact Oracle
	// (tests and quick runs) — pass a trained predictor for fidelity runs.
	Model predictor.LatencyModel
	// Sched carries scheduler knobs; zero value means sched.DefaultConfig.
	Sched sched.Config
	// SyncCost is the per-group synchronization overhead (default 0.02 ms).
	SyncCost float64
	// DrainMS bounds how long after the last arrival the run may continue
	// (default: 10 × the longest QoS target).
	DrainMS float64
}

// Record is the outcome of one query.
type Record struct {
	Service  int
	Model    dnn.ModelID
	Input    dnn.Input
	Arrival  sim.Time
	Finish   sim.Time
	Dropped  bool
	Violated bool
	Latency  float64 // valid when not dropped
	QoS      float64
	// Node is the GPU/node index that served (or dropped) the query.
	// Single-GPU runs leave it 0; cluster runs tag the routed node, and a
	// controller-level drop that never reached a GPU carries -1.
	Node int
}

// Result aggregates a run.
type Result struct {
	Policy   PolicyKind
	Services []*sched.Service
	Records  []Record
	// DurationMS is the span from time zero to the last emission.
	DurationMS float64
	// Utilization is the device's mean SM utilization.
	Utilization float64
	// Groups is the number of operator groups executed.
	Groups int64
}

// Run executes the experiment and returns its result.
func Run(cfg RunConfig) Result {
	if len(cfg.Models) == 0 {
		panic("serving: no models")
	}
	profile := cfg.Profile
	if profile.NumSMs == 0 {
		profile = gpusim.A100Profile()
	}
	var eng *sim.Engine
	dev := cfg.Device
	if dev == nil {
		eng = sim.NewEngine()
		dev = gpusim.New(eng, profile)
	} else {
		eng = dev.Engine()
		profile = dev.Profile()
	}
	syncCost := cfg.SyncCost
	if syncCost == 0 {
		syncCost = 0.02
	}
	exec := executor.New(dev, syncCost)

	services := cfg.Services
	if services == nil {
		services = sched.Services(cfg.Models, 2, profile)
	}
	if len(services) != len(cfg.Models) {
		panic("serving: services/models length mismatch")
	}

	var records []Record
	var lastEmit sim.Time
	sink := func(q *sched.Query) {
		rec := Record{
			Service: q.Service.ID,
			Model:   q.Service.Model,
			Input:   q.Input,
			Arrival: q.Arrival,
			Finish:  q.Finish,
			Dropped: q.Dropped,
			QoS:     q.Service.QoS,
		}
		if !q.Dropped {
			rec.Latency = q.Latency()
		}
		rec.Violated = q.Violated()
		records = append(records, rec)
		if q.Finish > lastEmit {
			lastEmit = q.Finish
		}
	}

	var scheduler sched.Scheduler
	schedCfg := cfg.Sched
	if schedCfg == (sched.Config{}) {
		schedCfg = sched.DefaultConfig()
	}
	switch cfg.Policy {
	case PolicyFCFS:
		scheduler = sched.NewSequential(sched.FCFS, eng, exec, schedCfg, sink)
	case PolicySJF:
		scheduler = sched.NewSequential(sched.SJF, eng, exec, schedCfg, sink)
	case PolicyEDF:
		scheduler = sched.NewSequential(sched.EDF, eng, exec, schedCfg, sink)
	case PolicyAbacus:
		model := cfg.Model
		if model == nil {
			model = predictor.Oracle{Profile: profile}
		}
		scheduler = sched.NewAbacus(eng, exec, model, schedCfg, sink)
	case PolicyMPS:
		scheduler = sched.NewFreeOverlap(eng, dev, sink)
	case PolicyKernelLevel:
		scheduler = sched.NewKernelLevel(eng, exec, schedCfg, sink)
	default:
		panic(fmt.Sprintf("serving: unknown policy %d", cfg.Policy))
	}

	// Schedule arrivals: the query is submitted at Arrival.Time; its input
	// transfer (T_comms, Eq. 2) delays when the scheduler sees it.
	var id int64
	var lastArrival float64
	for _, a := range cfg.Arrivals {
		a := a
		if a.Service < 0 || a.Service >= len(services) {
			panic(fmt.Sprintf("serving: arrival service %d out of range", a.Service))
		}
		svc := services[a.Service]
		id++
		q := &sched.Query{
			ID:      id,
			Service: svc,
			Input:   a.Input,
			Arrival: a.Time,
		}
		transfer := dnn.TransferTime(dnn.Get(svc.Model), a.Input, profile)
		eng.ScheduleAt(a.Time+transfer, func() { scheduler.Enqueue(q) })
		if a.Time > lastArrival {
			lastArrival = a.Time
		}
	}

	drain := cfg.DrainMS
	if drain <= 0 {
		var maxQoS float64
		for _, s := range services {
			if s.QoS > maxQoS {
				maxQoS = s.QoS
			}
		}
		drain = 10 * maxQoS
	}
	eng.RunUntil(lastArrival + drain)

	return Result{
		Policy:      cfg.Policy,
		Services:    services,
		Records:     records,
		DurationMS:  lastEmit,
		Utilization: dev.Utilization(),
		Groups:      exec.Groups(),
	}
}

// Latencies returns the end-to-end latencies of completed (non-dropped)
// queries, optionally filtered to one service (-1 for all).
func (r *Result) Latencies(service int) []float64 {
	var out []float64
	for _, rec := range r.Records {
		if rec.Dropped || (service >= 0 && rec.Service != service) {
			continue
		}
		out = append(out, rec.Latency)
	}
	return out
}

// TailLatency returns the p-th percentile latency over completed queries of
// the given service (-1 for all). It returns 0 when nothing completed.
func (r *Result) TailLatency(service int, p float64) float64 {
	lats := r.Latencies(service)
	if len(lats) == 0 {
		return 0
	}
	return stats.Percentile(lats, p)
}

// NormalizedTail returns the 99%-ile latency normalized to the QoS target,
// the y-axis of Figures 14, 16, 18, and 20. With multiple services it
// returns the worst (max) normalized tail.
func (r *Result) NormalizedTail() float64 {
	worst := 0.0
	for _, svc := range r.Services {
		lats := r.Latencies(svc.ID)
		if len(lats) == 0 {
			continue
		}
		if v := stats.Percentile(lats, 99) / svc.QoS; v > worst {
			worst = v
		}
	}
	return worst
}

// ViolationRatio returns the fraction of all queries that violated QoS;
// dropped queries count as violations (Figure 15's accounting).
func (r *Result) ViolationRatio() float64 {
	if len(r.Records) == 0 {
		return 0
	}
	bad := 0
	for _, rec := range r.Records {
		if rec.Violated {
			bad++
		}
	}
	return float64(bad) / float64(len(r.Records))
}

// Goodput returns successfully processed queries per second: completed
// within their QoS target, over the active duration (Figure 17's metric).
func (r *Result) Goodput() float64 {
	if r.DurationMS <= 0 {
		return 0
	}
	good := 0
	for _, rec := range r.Records {
		if !rec.Dropped && !rec.Violated {
			good++
		}
	}
	return float64(good) / (r.DurationMS / 1000)
}

// ServiceSummary aggregates one service's outcomes within a Result — the
// per-service shape shared by the online gateway's /statz endpoint and the
// load generator's offline comparison.
type ServiceSummary struct {
	Service   int
	Model     dnn.ModelID
	QoS       float64 // target, ms
	Queries   int
	Completed int
	Dropped   int
	Violated  int     // dropped or finished late (Figure 15 accounting)
	P50       float64 // over completed queries, ms
	P99       float64
	Goodput   float64 // queries completed within QoS per second
}

// PerService returns one summary per deployed service, in service order.
func (r *Result) PerService() []ServiceSummary {
	out := make([]ServiceSummary, len(r.Services))
	for i, svc := range r.Services {
		out[i] = ServiceSummary{Service: svc.ID, Model: svc.Model, QoS: svc.QoS}
	}
	good := make([]int, len(r.Services))
	for _, rec := range r.Records {
		s := &out[rec.Service]
		s.Queries++
		if rec.Dropped {
			s.Dropped++
		} else {
			s.Completed++
			if !rec.Violated {
				good[rec.Service]++
			}
		}
		if rec.Violated {
			s.Violated++
		}
	}
	for i := range out {
		lats := r.Latencies(out[i].Service)
		if len(lats) > 0 {
			ps := stats.Percentiles(lats, 50, 99)
			out[i].P50, out[i].P99 = ps[0], ps[1]
		}
		if r.DurationMS > 0 {
			out[i].Goodput = float64(good[i]) / (r.DurationMS / 1000)
		}
	}
	return out
}

// NodeSummary aggregates one node's (GPU's) outcomes — the per-node shape
// shared by the cluster simulation's result and the sharded gateway's
// reporting. Node -1 collects controller-level drops that never reached a
// GPU (the Clockwork baseline's admission drops).
type NodeSummary struct {
	Node      int
	Queries   int
	Completed int
	Dropped   int
	Violated  int     // dropped or finished late
	P50       float64 // over completed queries, ms
	P99       float64
	Goodput   float64 // queries completed within QoS per second
}

// SummarizeNodes groups records by Node and returns one summary per node
// present, ordered by node index. durationMS scales the goodput column; pass
// a non-positive value to leave goodput zero.
func SummarizeNodes(records []Record, durationMS float64) []NodeSummary {
	byNode := map[int]*NodeSummary{}
	lats := map[int][]float64{}
	good := map[int]int{}
	for _, rec := range records {
		s := byNode[rec.Node]
		if s == nil {
			s = &NodeSummary{Node: rec.Node}
			byNode[rec.Node] = s
		}
		s.Queries++
		if rec.Dropped {
			s.Dropped++
		} else {
			s.Completed++
			lats[rec.Node] = append(lats[rec.Node], rec.Latency)
			if !rec.Violated {
				good[rec.Node]++
			}
		}
		if rec.Violated {
			s.Violated++
		}
	}
	nodes := make([]int, 0, len(byNode))
	for n := range byNode {
		nodes = append(nodes, n)
	}
	sort.Ints(nodes)
	out := make([]NodeSummary, 0, len(nodes))
	for _, n := range nodes {
		s := byNode[n]
		if l := lats[n]; len(l) > 0 {
			ps := stats.Percentiles(l, 50, 99)
			s.P50, s.P99 = ps[0], ps[1]
		}
		if durationMS > 0 {
			s.Goodput = float64(good[n]) / (durationMS / 1000)
		}
		out = append(out, *s)
	}
	return out
}

// Completed returns the number of non-dropped queries.
func (r *Result) Completed() int {
	n := 0
	for _, rec := range r.Records {
		if !rec.Dropped {
			n++
		}
	}
	return n
}

// DropRatio returns the fraction of queries dropped.
func (r *Result) DropRatio() float64 {
	if len(r.Records) == 0 {
		return 0
	}
	n := 0
	for _, rec := range r.Records {
		if rec.Dropped {
			n++
		}
	}
	return float64(n) / float64(len(r.Records))
}
