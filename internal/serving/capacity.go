package serving

import (
	"fmt"

	"abacus/internal/dnn"
	"abacus/internal/predictor"
	"abacus/internal/trace"
)

// CapacityConfig controls the peak-QPS search.
type CapacityConfig struct {
	Policy PolicyKind
	Models []dnn.ModelID
	// Model is Abacus's duration model (nil → oracle).
	Model predictor.LatencyModel
	// MaxViolation is the QoS violation ratio a load must stay under to
	// count as "supported" (default 0.05).
	MaxViolation float64
	// DurationMS is the probe length per load point (default 6000).
	DurationMS float64
	// LoQPS/HiQPS bracket the search (defaults 5 and 400).
	LoQPS, HiQPS float64
	// ToleranceQPS stops the bisection (default 4).
	ToleranceQPS float64
	// Seed drives the workload.
	Seed int64
}

// PeakQPS finds, by bisection, the highest offered load (queries/s) the
// deployment sustains under the policy while keeping the QoS violation
// ratio below the threshold — the paper's notion of peak throughput with a
// QoS constraint (§7.3), measured directly instead of at one fixed offered
// load. It returns the supported load and the result measured at it.
func PeakQPS(cfg CapacityConfig) (float64, Result) {
	if len(cfg.Models) == 0 {
		panic("serving: no models")
	}
	if cfg.MaxViolation == 0 {
		cfg.MaxViolation = 0.05
	}
	if cfg.DurationMS == 0 {
		cfg.DurationMS = 6000
	}
	if cfg.LoQPS == 0 {
		cfg.LoQPS = 5
	}
	if cfg.HiQPS == 0 {
		cfg.HiQPS = 400
	}
	if cfg.ToleranceQPS == 0 {
		cfg.ToleranceQPS = 4
	}
	if cfg.HiQPS <= cfg.LoQPS {
		panic(fmt.Sprintf("serving: bad QPS bracket [%v, %v]", cfg.LoQPS, cfg.HiQPS))
	}

	probe := func(qps float64) (bool, Result) {
		gen := trace.NewGenerator(cfg.Models, cfg.Seed)
		res := Run(RunConfig{
			Policy:   cfg.Policy,
			Models:   cfg.Models,
			Arrivals: gen.Poisson(qps, cfg.DurationMS),
			Model:    cfg.Model,
		})
		return res.ViolationRatio() <= cfg.MaxViolation, res
	}

	lo, hi := cfg.LoQPS, cfg.HiQPS
	okLo, resLo := probe(lo)
	if !okLo {
		// Even the bracket floor violates; report it as the (non-)capacity.
		return lo, resLo
	}
	if okHi, resHi := probe(hi); okHi {
		return hi, resHi // bracket ceiling sustained; capacity ≥ hi
	}
	best := resLo
	for hi-lo > cfg.ToleranceQPS {
		mid := (lo + hi) / 2
		if ok, res := probe(mid); ok {
			lo, best = mid, res
		} else {
			hi = mid
		}
	}
	return lo, best
}
