package serving

import (
	"fmt"

	"abacus/internal/dnn"
	"abacus/internal/predictor"
	"abacus/internal/runner"
	"abacus/internal/trace"
)

// CapacityConfig controls the peak-QPS search.
type CapacityConfig struct {
	Policy PolicyKind
	Models []dnn.ModelID
	// Model is Abacus's duration model (nil → oracle).
	Model predictor.LatencyModel
	// MaxViolation is the QoS violation ratio a load must stay under to
	// count as "supported" (default 0.05).
	MaxViolation float64
	// DurationMS is the probe length per load point (default 6000).
	DurationMS float64
	// LoQPS/HiQPS bracket the search (defaults 5 and 400).
	LoQPS, HiQPS float64
	// ToleranceQPS stops the search (default 4).
	ToleranceQPS float64
	// Probes is the number of evenly spaced interior load points simulated
	// per search round (default 1 = classic bisection). The probe sequence
	// depends only on Probes, never on worker parallelism, so results are
	// identical at any Parallel; raising Probes narrows the bracket faster
	// per round at the cost of more simulations, which then run
	// concurrently.
	Probes int
	// Parallel bounds concurrent probe simulations per round (<= 0 uses
	// the runner default).
	Parallel int
	// Seed drives the workload.
	Seed int64
}

// PeakQPS finds the highest offered load (queries/s) the deployment
// sustains under the policy while keeping the QoS violation ratio below
// the threshold — the paper's notion of peak throughput with a QoS
// constraint (§7.3), measured directly instead of at one fixed offered
// load. Each round simulates cfg.Probes interior load points of the
// current bracket concurrently and keeps the bracket between the highest
// sustained point and the first violating one; with one probe per round
// this is exactly bisection. It returns the supported load and the result
// measured at it.
func PeakQPS(cfg CapacityConfig) (float64, Result) {
	if len(cfg.Models) == 0 {
		panic("serving: no models")
	}
	if cfg.MaxViolation == 0 {
		cfg.MaxViolation = 0.05
	}
	if cfg.DurationMS == 0 {
		cfg.DurationMS = 6000
	}
	if cfg.LoQPS == 0 {
		cfg.LoQPS = 5
	}
	if cfg.HiQPS == 0 {
		cfg.HiQPS = 400
	}
	if cfg.ToleranceQPS == 0 {
		cfg.ToleranceQPS = 4
	}
	if cfg.Probes <= 0 {
		cfg.Probes = 1
	}
	if cfg.HiQPS <= cfg.LoQPS {
		panic(fmt.Sprintf("serving: bad QPS bracket [%v, %v]", cfg.LoQPS, cfg.HiQPS))
	}

	type outcome struct {
		ok  bool
		res Result
	}
	probe := func(qps float64) outcome {
		gen := trace.NewGenerator(cfg.Models, cfg.Seed)
		res := Run(RunConfig{
			Policy:   cfg.Policy,
			Models:   cfg.Models,
			Arrivals: gen.Poisson(qps, cfg.DurationMS),
			Model:    cfg.Model,
		})
		return outcome{res.ViolationRatio() <= cfg.MaxViolation, res}
	}

	lo, hi := cfg.LoQPS, cfg.HiQPS
	ends := runner.Map(2, cfg.Parallel, func(i int) outcome {
		return probe([]float64{lo, hi}[i])
	})
	if !ends[0].ok {
		// Even the bracket floor violates; report it as the (non-)capacity.
		return lo, ends[0].res
	}
	if ends[1].ok {
		return hi, ends[1].res // bracket ceiling sustained; capacity ≥ hi
	}
	best := ends[0].res
	for hi-lo > cfg.ToleranceQPS {
		pts := make([]float64, cfg.Probes)
		for j := range pts {
			pts[j] = lo + (hi-lo)*float64(j+1)/float64(cfg.Probes+1)
		}
		outcomes := runner.Map(len(pts), cfg.Parallel, func(j int) outcome {
			return probe(pts[j])
		})
		// The bracket closes on the highest sustained point below the first
		// violating one, matching bisection's monotonicity assumption.
		firstFail := len(pts)
		for j, o := range outcomes {
			if !o.ok {
				firstFail = j
				break
			}
		}
		if firstFail > 0 {
			lo, best = pts[firstFail-1], outcomes[firstFail-1].res
		}
		if firstFail < len(pts) {
			hi = pts[firstFail]
		}
	}
	return lo, best
}
