package serving

import (
	"encoding/csv"
	"fmt"
	"io"
)

// WriteCSV emits one row per query (the raw data behind the paper's
// latency CDFs and violation counts) for external plotting.
func (r *Result) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	header := []string{"service", "model", "batch", "seqlen", "arrival_ms",
		"finish_ms", "latency_ms", "qos_ms", "dropped", "violated"}
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, rec := range r.Records {
		row := []string{
			fmt.Sprintf("%d", rec.Service),
			rec.Model.String(),
			fmt.Sprintf("%d", rec.Input.Batch),
			fmt.Sprintf("%d", rec.Input.SeqLen),
			fmt.Sprintf("%.4f", rec.Arrival),
			fmt.Sprintf("%.4f", rec.Finish),
			fmt.Sprintf("%.4f", rec.Latency),
			fmt.Sprintf("%.4f", rec.QoS),
			fmt.Sprintf("%t", rec.Dropped),
			fmt.Sprintf("%t", rec.Violated),
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
