package serving

import (
	"bytes"
	"strings"
	"testing"

	"abacus/internal/dnn"
	"abacus/internal/sched"
	"abacus/internal/stats"
	"abacus/internal/trace"
)

// runPair executes a short serving run for a model pair under the policy.
func runPair(t *testing.T, policy PolicyKind, models []dnn.ModelID, qps, durationMS float64, seed int64) Result {
	t.Helper()
	gen := trace.NewGenerator(models, seed)
	return Run(RunConfig{
		Policy:   policy,
		Models:   models,
		Arrivals: gen.Poisson(qps, durationMS),
	})
}

func TestRunEmitsEveryQuery(t *testing.T) {
	models := []dnn.ModelID{dnn.ResNet50, dnn.InceptionV3}
	gen := trace.NewGenerator(models, 1)
	arrivals := gen.Poisson(40, 3000)
	for _, policy := range AllPolicies() {
		res := Run(RunConfig{Policy: policy, Models: models, Arrivals: arrivals})
		if len(res.Records) != len(arrivals) {
			t.Errorf("%v: emitted %d records for %d arrivals", policy, len(res.Records), len(arrivals))
		}
	}
}

func TestRunDeterministic(t *testing.T) {
	models := []dnn.ModelID{dnn.ResNet50, dnn.Bert}
	a := runPair(t, PolicyAbacus, models, 40, 2000, 7)
	b := runPair(t, PolicyAbacus, models, 40, 2000, 7)
	if len(a.Records) != len(b.Records) {
		t.Fatalf("record counts differ: %d vs %d", len(a.Records), len(b.Records))
	}
	for i := range a.Records {
		if a.Records[i] != b.Records[i] {
			t.Fatalf("record %d differs: %+v vs %+v", i, a.Records[i], b.Records[i])
		}
	}
}

func TestSoloServiceMeetsQoSUnderLightLoad(t *testing.T) {
	models := []dnn.ModelID{dnn.ResNet50}
	for _, policy := range AllPolicies() {
		res := runPair(t, policy, models, 20, 3000, 2)
		if v := res.ViolationRatio(); v > 0.01 {
			t.Errorf("%v: violation ratio %.3f under light solo load", policy, v)
		}
	}
}

// TestAbacusBeatsBaselinesOnOverlapFriendlyPair is the headline end-to-end
// check (Figures 14/15): on (Res152, IncepV3) — the pair where sequential
// scheduling wastes the most GPU — Abacus must cut tail latency and QoS
// violations.
func TestAbacusBeatsBaselinesOnOverlapFriendlyPair(t *testing.T) {
	models := []dnn.ModelID{dnn.ResNet152, dnn.InceptionV3}
	const qps, dur = 50, 4000
	abacus := runPair(t, PolicyAbacus, models, qps, dur, 3)
	for _, base := range []PolicyKind{PolicyFCFS, PolicySJF, PolicyEDF} {
		b := runPair(t, base, models, qps, dur, 3)
		t.Logf("%-6v p99/QoS=%.3f viol=%.3f goodput=%.1f | Abacus p99/QoS=%.3f viol=%.3f goodput=%.1f",
			base, b.NormalizedTail(), b.ViolationRatio(), b.Goodput(),
			abacus.NormalizedTail(), abacus.ViolationRatio(), abacus.Goodput())
		if abacus.ViolationRatio() > b.ViolationRatio()+0.01 {
			t.Errorf("Abacus violation ratio %.3f worse than %v %.3f",
				abacus.ViolationRatio(), base, b.ViolationRatio())
		}
		if abacus.Goodput() < b.Goodput()*0.98 {
			t.Errorf("Abacus goodput %.1f below %v %.1f", abacus.Goodput(), base, b.Goodput())
		}
	}
	// The paper reports near-zero violations for Abacus; the residual here
	// comes from head-of-line arrivals whose headroom is consumed by an
	// in-flight group — single-digit percent is the right regime at this
	// load.
	if abacus.ViolationRatio() > 0.08 {
		t.Errorf("Abacus violation ratio %.3f; want single-digit percent", abacus.ViolationRatio())
	}
}

// TestAbacusThroughputGainAtSaturation reproduces the Figure 17 shape: at an
// offered load that saturates sequential execution, Abacus completes more
// queries within QoS.
func TestAbacusThroughputGainAtSaturation(t *testing.T) {
	models := []dnn.ModelID{dnn.ResNet50, dnn.ResNet152}
	const qps, dur = 100, 4000
	abacus := runPair(t, PolicyAbacus, models, qps, dur, 4)
	fcfs := runPair(t, PolicyFCFS, models, qps, dur, 4)
	t.Logf("goodput: Abacus=%.1f FCFS=%.1f", abacus.Goodput(), fcfs.Goodput())
	if abacus.Goodput() < fcfs.Goodput()*1.1 {
		t.Errorf("Abacus goodput %.1f not >=1.1x FCFS %.1f at saturation", abacus.Goodput(), fcfs.Goodput())
	}
}

func TestVGGPairNoCollapse(t *testing.T) {
	// On (VGG16, VGG19) there is no overlap headroom; Abacus may not win
	// but must not collapse (paper: "slightly degraded").
	models := []dnn.ModelID{dnn.VGG16, dnn.VGG19}
	abacus := runPair(t, PolicyAbacus, models, 50, 4000, 5)
	fcfs := runPair(t, PolicyFCFS, models, 50, 4000, 5)
	t.Logf("VGG pair goodput: Abacus=%.1f FCFS=%.1f", abacus.Goodput(), fcfs.Goodput())
	if abacus.Goodput() < fcfs.Goodput()*0.9 {
		t.Errorf("Abacus goodput %.1f collapsed vs FCFS %.1f on VGG pair", abacus.Goodput(), fcfs.Goodput())
	}
}

func TestQuadrupletDeployment(t *testing.T) {
	models := []dnn.ModelID{dnn.ResNet101, dnn.ResNet152, dnn.VGG19, dnn.Bert}
	res := runPair(t, PolicyAbacus, models, 40, 3000, 6)
	if len(res.Records) == 0 {
		t.Fatal("no records")
	}
	if v := res.ViolationRatio(); v > 0.15 {
		t.Errorf("quad deployment violation ratio %.3f too high", v)
	}
}

func TestDropAccounting(t *testing.T) {
	// Saturate hard so baselines must drop; dropped queries count as
	// violations but not as completions.
	models := []dnn.ModelID{dnn.VGG16, dnn.VGG19}
	res := runPair(t, PolicyFCFS, models, 200, 2000, 8)
	drops := 0
	for _, rec := range res.Records {
		if rec.Dropped {
			drops++
			if !rec.Violated {
				t.Fatal("dropped query not counted as violation")
			}
			if rec.Latency != 0 {
				t.Fatal("dropped query has a latency")
			}
		}
	}
	if drops == 0 {
		t.Error("expected drops under 4x overload")
	}
	if res.Completed()+drops != len(res.Records) {
		t.Error("completed + dropped != total")
	}
}

func TestMetricsHelpers(t *testing.T) {
	res := Result{
		Services: []*sched.Service{{ID: 0, QoS: 10}},
		Records: []Record{
			{Service: 0, Latency: 5, QoS: 10},
			{Service: 0, Latency: 12, QoS: 10, Violated: true},
			{Service: 0, Dropped: true, Violated: true, QoS: 10},
		},
		DurationMS: 1000,
	}
	if got := res.ViolationRatio(); got != 2.0/3 {
		t.Errorf("ViolationRatio = %v, want 2/3", got)
	}
	if got := res.Goodput(); got != 1 {
		t.Errorf("Goodput = %v, want 1", got)
	}
	if got := res.DropRatio(); got != 1.0/3 {
		t.Errorf("DropRatio = %v, want 1/3", got)
	}
	if got := res.Completed(); got != 2 {
		t.Errorf("Completed = %v, want 2", got)
	}
	if got := len(res.Latencies(0)); got != 2 {
		t.Errorf("Latencies count = %d, want 2", got)
	}
	if got := res.TailLatency(-1, 100); got != 12 {
		t.Errorf("TailLatency max = %v, want 12", got)
	}
}

func TestPolicyString(t *testing.T) {
	want := []string{"FCFS", "SJF", "EDF", "Abacus"}
	for i, p := range AllPolicies() {
		if p.String() != want[i] {
			t.Errorf("policy %d = %q, want %q", i, p.String(), want[i])
		}
	}
}

func TestMPSPolicyRunsUnmanaged(t *testing.T) {
	models := []dnn.ModelID{dnn.ResNet152, dnn.VGG16}
	res := runPair(t, PolicyMPS, models, 60, 3000, 12)
	if res.Groups != 0 {
		t.Errorf("MPS executed %d groups; the unmanaged baseline bypasses the executor", res.Groups)
	}
	if res.DropRatio() != 0 {
		t.Errorf("MPS dropped %.3f of queries; it has no drop mechanism", res.DropRatio())
	}
	if res.Completed() != len(res.Records) {
		t.Error("MPS must complete every query")
	}
}

func TestMPSLatencySpreadExceedsAbacus(t *testing.T) {
	// The motivation (Figure 3): free overlap produces a wider latency
	// distribution than deterministic operator groups under the same load.
	models := []dnn.ModelID{dnn.ResNet152, dnn.InceptionV3}
	gen := trace.NewGenerator(models, 13)
	arrivals := gen.Poisson(60, 4000)
	mps := Run(RunConfig{Policy: PolicyMPS, Models: models, Arrivals: arrivals})
	abacus := Run(RunConfig{Policy: PolicyAbacus, Models: models, Arrivals: arrivals})
	spread := func(r Result) float64 {
		lats := r.Latencies(0) // Res152 queries
		if len(lats) < 10 {
			t.Fatal("too few completions")
		}
		return stats.Percentile(lats, 99) / stats.Percentile(lats, 50)
	}
	ms, as := spread(mps), spread(abacus)
	t.Logf("p99/p50 spread: MPS=%.2f Abacus=%.2f", ms, as)
	if ms <= as {
		t.Errorf("MPS spread %.2f should exceed Abacus %.2f", ms, as)
	}
}

func TestWriteCSV(t *testing.T) {
	res := runPair(t, PolicyFCFS, []dnn.ModelID{dnn.ResNet50, dnn.Bert}, 30, 2000, 14)
	var buf bytes.Buffer
	if err := res.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != len(res.Records)+1 {
		t.Fatalf("CSV has %d lines for %d records", len(lines), len(res.Records))
	}
	if !strings.HasPrefix(lines[0], "service,model,batch") {
		t.Errorf("header = %q", lines[0])
	}
	for _, line := range lines[1:] {
		if got := strings.Count(line, ","); got != 9 {
			t.Fatalf("row %q has %d commas, want 9", line, got)
		}
	}
}

func TestCustomServicesOverride(t *testing.T) {
	models := []dnn.ModelID{dnn.ResNet50}
	services := []*sched.Service{{ID: 0, Model: dnn.ResNet50, QoS: 9999}}
	gen := trace.NewGenerator(models, 15)
	res := Run(RunConfig{
		Policy:   PolicyFCFS,
		Models:   models,
		Arrivals: gen.Poisson(30, 2000),
		Services: services,
	})
	for _, rec := range res.Records {
		if rec.QoS != 9999 {
			t.Fatalf("record QoS %v, want the override 9999", rec.QoS)
		}
		if rec.Violated {
			t.Fatal("nothing can violate a 10-second QoS here")
		}
	}
}

func TestSJFPaysPredictionOverhead(t *testing.T) {
	// §7.2: SJF must order by predicted durations before dispatch and
	// cannot hide that cost. With an exaggerated PredictCost, its
	// latencies visibly exceed FCFS's on a single-service queue (identical
	// ordering otherwise).
	models := []dnn.ModelID{dnn.ResNet50}
	gen := trace.NewGenerator(models, 16)
	arrivals := gen.Poisson(40, 3000)
	cfg := sched.DefaultConfig()
	cfg.PredictCost = 2.0
	sjf := Run(RunConfig{Policy: PolicySJF, Models: models, Arrivals: arrivals, Sched: cfg})
	fcfs := Run(RunConfig{Policy: PolicyFCFS, Models: models, Arrivals: arrivals, Sched: cfg})
	ms, mf := stats.Mean(sjf.Latencies(-1)), stats.Mean(fcfs.Latencies(-1))
	if ms <= mf {
		t.Errorf("SJF mean latency %.2f <= FCFS %.2f despite 2 ms prediction cost", ms, mf)
	}
}

func TestKernelLevelPolicyCompletesButSlowly(t *testing.T) {
	// §5.1: kernel-granularity scheduling with a prediction per operator
	// forfeits overlap and pays heavy scheduling overhead. It must still
	// complete work correctly — just with far lower goodput than Abacus.
	models := []dnn.ModelID{dnn.ResNet152, dnn.InceptionV3}
	gen := trace.NewGenerator(models, 17)
	arrivals := gen.Poisson(50, 3000)
	kl := Run(RunConfig{Policy: PolicyKernelLevel, Models: models, Arrivals: arrivals})
	ab := Run(RunConfig{Policy: PolicyAbacus, Models: models, Arrivals: arrivals})
	if len(kl.Records) != len(arrivals) {
		t.Fatalf("kernel-level emitted %d of %d", len(kl.Records), len(arrivals))
	}
	for _, rec := range kl.Records {
		if !rec.Dropped && rec.Latency <= 0 {
			t.Fatal("completed query without latency")
		}
	}
	t.Logf("goodput: kernel-level=%.1f abacus=%.1f", kl.Goodput(), ab.Goodput())
	if kl.Goodput() >= ab.Goodput() {
		t.Errorf("kernel-level goodput %.1f should trail Abacus %.1f", kl.Goodput(), ab.Goodput())
	}
	// Per-operator prediction cost dominates: groups = operators executed.
	if kl.Groups <= ab.Groups {
		t.Errorf("kernel-level executed %d groups, Abacus %d; expected far more single-op groups", kl.Groups, ab.Groups)
	}
}

func TestPeakQPSAbacusExceedsFCFS(t *testing.T) {
	if testing.Short() {
		t.Skip("bisection runs several serving probes")
	}
	models := []dnn.ModelID{dnn.ResNet50, dnn.ResNet152}
	search := func(p PolicyKind) float64 {
		qps, res := PeakQPS(CapacityConfig{
			Policy: p, Models: models, DurationMS: 3000, Seed: 21,
			LoQPS: 10, HiQPS: 300, ToleranceQPS: 8,
		})
		if res.ViolationRatio() > 0.05 {
			t.Fatalf("%v: returned load %v violates (%.3f)", p, qps, res.ViolationRatio())
		}
		return qps
	}
	fcfs, abacus := search(PolicyFCFS), search(PolicyAbacus)
	t.Logf("capacity: FCFS=%.1f Abacus=%.1f", fcfs, abacus)
	if abacus < fcfs*1.1 {
		t.Errorf("Abacus capacity %.1f not >=1.1x FCFS %.1f", abacus, fcfs)
	}
}

func TestPeakQPSBracketFloor(t *testing.T) {
	// A bracket whose floor already violates must return the floor rather
	// than search below it.
	models := []dnn.ModelID{dnn.VGG19}
	qps, res := PeakQPS(CapacityConfig{
		Policy: PolicyFCFS, Models: models, DurationMS: 2000, Seed: 22,
		LoQPS: 350, HiQPS: 400, ToleranceQPS: 10,
	})
	if qps != 350 {
		t.Errorf("floor-violating bracket returned %v, want the floor 350", qps)
	}
	if res.ViolationRatio() <= 0.05 {
		t.Errorf("expected the floor to violate, got %.3f", res.ViolationRatio())
	}
}

func TestPerServiceSummaries(t *testing.T) {
	models := []dnn.ModelID{dnn.ResNet50, dnn.InceptionV3}
	res := runPair(t, PolicyAbacus, models, 60, 3000, 7)
	sums := res.PerService()
	if len(sums) != len(models) {
		t.Fatalf("got %d summaries, want %d", len(sums), len(models))
	}
	totalQ, totalDone := 0, 0
	for i, s := range sums {
		if s.Service != i || s.Model != models[i] {
			t.Errorf("summary %d identifies (%d, %v)", i, s.Service, s.Model)
		}
		if s.QoS <= 0 {
			t.Errorf("service %d QoS = %v", i, s.QoS)
		}
		if s.Completed+s.Dropped != s.Queries {
			t.Errorf("service %d: completed %d + dropped %d != queries %d",
				i, s.Completed, s.Dropped, s.Queries)
		}
		if s.Completed > 0 {
			if s.P50 <= 0 || s.P99 < s.P50 {
				t.Errorf("service %d percentiles p50=%v p99=%v", i, s.P50, s.P99)
			}
			if got, want := s.P99, res.TailLatency(i, 99); got != want {
				t.Errorf("service %d p99 = %v, want %v", i, got, want)
			}
		}
		totalQ += s.Queries
		totalDone += s.Completed
	}
	if totalQ != len(res.Records) {
		t.Errorf("summaries cover %d queries, records hold %d", totalQ, len(res.Records))
	}
	if totalDone != res.Completed() {
		t.Errorf("summaries count %d completed, result reports %d", totalDone, res.Completed())
	}
}
