package serving

import (
	"testing"

	"abacus/internal/dnn"
	"abacus/internal/stats"
	"abacus/internal/trace"
)

// TestDiagnosticsPairLoad prints a per-service breakdown for the hot pair;
// run with -v while calibrating. It asserts nothing beyond completion.
func TestDiagnosticsPairLoad(t *testing.T) {
	models := []dnn.ModelID{dnn.ResNet152, dnn.InceptionV3}
	gen := trace.NewGenerator(models, 3)
	arrivals := gen.Poisson(50, 4000)
	for _, policy := range AllPolicies() {
		res := Run(RunConfig{Policy: policy, Models: models, Arrivals: arrivals})
		t.Logf("== %v: util=%.2f groups=%d drop=%.3f viol=%.3f", policy, res.Utilization, res.Groups, res.DropRatio(), res.ViolationRatio())
		for _, svc := range res.Services {
			lats := res.Latencies(svc.ID)
			var viol, drop, tot int
			for _, rec := range res.Records {
				if rec.Service != svc.ID {
					continue
				}
				tot++
				if rec.Dropped {
					drop++
				}
				if rec.Violated {
					viol++
				}
			}
			if len(lats) == 0 {
				t.Logf("  %-8s QoS=%.1f no completions", svc.Model, svc.QoS)
				continue
			}
			t.Logf("  %-8s QoS=%5.1f n=%3d mean=%6.2f p99=%6.2f viol=%d/%d drop=%d",
				svc.Model, svc.QoS, tot, stats.Mean(lats), stats.Percentile(lats, 99), viol, tot, drop)
		}
	}
}
