// Package runner is the deterministic worker-pool harness behind every
// sweep in the repro: experiment tables fan their independent simulation
// runs out over it, the capacity search probes load points through it, and
// predictor training parallelizes sampling and cross-validation folds with
// it.
//
// The contract that keeps parallel runs bit-identical to serial ones:
//
//   - Jobs are independent. Each job owns its engine, device, RNG, and
//     scratch state; the only sharing allowed is read-only inputs and
//     goroutine-safe models (see DESIGN.md, "Run harness").
//   - Results land at the job's index. Output order is the submission
//     order, never the completion order, so goroutine interleaving is
//     invisible to callers.
//   - Seeds are derived from the job index, not from shared RNG state, so
//     the i-th job sees the same seed at any parallelism.
//   - Failures are deterministic too: when several jobs panic or error,
//     the lowest-indexed one wins, exactly as a serial loop would have
//     surfaced it.
package runner

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
)

// defaultParallel is the process-wide worker cap used when a call passes
// parallel <= 0. Zero means runtime.GOMAXPROCS(0). Commands set it from
// their -parallel flag.
var defaultParallel atomic.Int64

// SetDefaultParallel sets the process-wide default worker count. n <= 0
// restores the GOMAXPROCS default.
func SetDefaultParallel(n int) {
	if n < 0 {
		n = 0
	}
	defaultParallel.Store(int64(n))
}

// DefaultParallel returns the worker count used when parallel <= 0 is
// passed to Map/ForEach/Plan.Run.
func DefaultParallel() int {
	if n := int(defaultParallel.Load()); n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// PanicError attributes a worker panic to the job that raised it. The
// original panic value and stack are preserved.
type PanicError struct {
	Job   string
	Value any
	Stack []byte
}

// Error implements error.
func (e *PanicError) Error() string {
	return fmt.Sprintf("runner: job %s panicked: %v\n%s", e.Job, e.Value, e.Stack)
}

// Unwrap exposes a wrapped error panic value to errors.Is/As.
func (e *PanicError) Unwrap() error {
	if err, ok := e.Value.(error); ok {
		return err
	}
	return nil
}

// Seeds returns n per-job seeds derived from base: base, base+1, ... —
// the seed discipline every sweep in the repro already follows. Deriving
// seeds from the job index (never from shared RNG state) is what keeps
// parallel runs identical to serial ones.
func Seeds(base int64, n int) []int64 {
	out := make([]int64, n)
	for i := range out {
		out[i] = base + int64(i)
	}
	return out
}

// Map runs fn(i) for every i in [0, n) on at most parallel workers and
// returns the results in index order. parallel <= 0 uses DefaultParallel;
// parallel == 1 runs inline on the calling goroutine. A panicking job
// aborts Map with a *PanicError naming the job; when several jobs panic,
// the lowest index wins deterministically.
func Map[T any](n, parallel int, fn func(i int) T) []T {
	out := make([]T, n)
	ForEach(n, parallel, func(i int) { out[i] = fn(i) })
	return out
}

// MapErr is Map for fallible jobs: it returns the results in index order
// and the error of the lowest-indexed failing job, if any. Jobs after a
// failure still run (their slots are already deterministic); the caller
// sees one stable error regardless of interleaving.
func MapErr[T any](n, parallel int, fn func(i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	errs := make([]error, n)
	ForEach(n, parallel, func(i int) { out[i], errs[i] = fn(i) })
	for _, err := range errs {
		if err != nil {
			return out, err
		}
	}
	return out, nil
}

// ForEach runs fn(i) for every i in [0, n) on at most parallel workers.
// It is the primitive under Map/MapErr/Plan.Run and follows the same
// panic discipline.
func ForEach(n, parallel int, fn func(i int)) {
	forEachNamed(n, parallel, nil, fn)
}

// forEachNamed is the pool core. names, when non-nil, labels panics;
// otherwise jobs are labeled by index.
func forEachNamed(n, parallel int, names []string, fn func(i int)) {
	if n <= 0 {
		return
	}
	if parallel <= 0 {
		parallel = DefaultParallel()
	}
	if parallel > n {
		parallel = n
	}

	jobName := func(i int) string {
		if names != nil && names[i] != "" {
			return names[i]
		}
		return fmt.Sprintf("#%d", i)
	}
	panics := make([]*PanicError, n)
	invoke := func(i int) {
		defer func() {
			if v := recover(); v != nil {
				panics[i] = &PanicError{Job: jobName(i), Value: v, Stack: debug.Stack()}
			}
		}()
		fn(i)
	}

	if parallel == 1 {
		// Inline serial mode: same goroutine, same cache behaviour, and —
		// by the ordering contract — the same results as any other width.
		for i := 0; i < n; i++ {
			invoke(i)
			if panics[i] != nil {
				panic(panics[i])
			}
		}
		return
	}

	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < parallel; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				invoke(i)
			}
		}()
	}
	wg.Wait()
	for _, pe := range panics {
		if pe != nil {
			panic(pe)
		}
	}
}

// Plan is a batch of named jobs run with bounded concurrency. Names make
// panic attribution readable ("fig14/(Res50,Res152)" instead of "#3") and
// results come back in Add order.
type Plan[T any] struct {
	names []string
	jobs  []func() T
}

// Add appends a named job.
func (p *Plan[T]) Add(name string, fn func() T) {
	p.names = append(p.names, name)
	p.jobs = append(p.jobs, fn)
}

// Len returns the number of jobs added.
func (p *Plan[T]) Len() int { return len(p.jobs) }

// Run executes the plan on at most parallel workers (<= 0 uses
// DefaultParallel) and returns results in Add order.
func (p *Plan[T]) Run(parallel int) []T {
	out := make([]T, len(p.jobs))
	forEachNamed(len(p.jobs), parallel, p.names, func(i int) { out[i] = p.jobs[i]() })
	return out
}
