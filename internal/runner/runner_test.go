package runner

import (
	"errors"
	"fmt"
	"reflect"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
)

func TestMapOrderIndependentOfParallelism(t *testing.T) {
	n := 100
	want := make([]int, n)
	for i := range want {
		want[i] = i * i
	}
	for _, parallel := range []int{1, 2, 4, 16, 100} {
		got := Map(n, parallel, func(i int) int { return i * i })
		if !reflect.DeepEqual(got, want) {
			t.Errorf("parallel=%d: Map order broken: %v", parallel, got[:8])
		}
	}
}

func TestMapBoundedConcurrency(t *testing.T) {
	const limit = 3
	var inFlight, peak atomic.Int64
	var mu sync.Mutex
	Map(64, limit, func(i int) int {
		cur := inFlight.Add(1)
		mu.Lock()
		if cur > peak.Load() {
			peak.Store(cur)
		}
		mu.Unlock()
		for j := 0; j < 1000; j++ {
			_ = j * j // hold the slot briefly
		}
		inFlight.Add(-1)
		return i
	})
	if p := peak.Load(); p > limit {
		t.Errorf("observed %d in-flight jobs, limit %d", p, limit)
	}
}

func TestMapPanicAttribution(t *testing.T) {
	defer func() {
		v := recover()
		if v == nil {
			t.Fatal("panic not propagated")
		}
		pe, ok := v.(*PanicError)
		if !ok {
			t.Fatalf("panic value %T, want *PanicError", v)
		}
		if pe.Job != "#7" {
			t.Errorf("attributed to %q, want #7", pe.Job)
		}
		if !strings.Contains(pe.Error(), "boom 7") {
			t.Errorf("message lost the panic value: %s", pe.Error())
		}
	}()
	Map(16, 4, func(i int) int {
		if i == 7 {
			panic(fmt.Sprintf("boom %d", i))
		}
		return i
	})
}

func TestMapLowestIndexPanicWins(t *testing.T) {
	// With every job panicking, the reported job must be #0 at any width —
	// the same failure a serial loop surfaces.
	for _, parallel := range []int{1, 8} {
		func() {
			defer func() {
				pe, ok := recover().(*PanicError)
				if !ok || pe.Job != "#0" {
					t.Errorf("parallel=%d: got %v, want job #0", parallel, pe)
				}
			}()
			Map(32, parallel, func(i int) int { panic(i) })
		}()
	}
}

func TestMapErrLowestIndexErrorWins(t *testing.T) {
	sentinel := errors.New("job 3 failed")
	for _, parallel := range []int{1, 8} {
		_, err := MapErr(32, parallel, func(i int) (int, error) {
			if i >= 3 {
				return 0, fmt.Errorf("job %d failed", i)
			}
			return i, nil
		})
		if err == nil || err.Error() != sentinel.Error() {
			t.Errorf("parallel=%d: err = %v, want %v", parallel, err, sentinel)
		}
	}
}

func TestPanicErrorUnwrap(t *testing.T) {
	sentinel := errors.New("inner")
	defer func() {
		pe := recover().(*PanicError)
		if !errors.Is(pe, sentinel) {
			t.Errorf("Unwrap lost the wrapped error: %v", pe.Value)
		}
	}()
	Map(1, 1, func(i int) int { panic(sentinel) })
}

func TestPlanNamesAndOrder(t *testing.T) {
	var p Plan[string]
	for _, name := range []string{"alpha", "beta", "gamma"} {
		name := name
		p.Add(name, func() string { return "ran " + name })
	}
	if p.Len() != 3 {
		t.Fatalf("Len = %d", p.Len())
	}
	got := p.Run(2)
	want := []string{"ran alpha", "ran beta", "ran gamma"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Plan results %v, want %v", got, want)
	}
}

func TestPlanPanicUsesJobName(t *testing.T) {
	var p Plan[int]
	p.Add("fine", func() int { return 1 })
	p.Add("fig14/(Res50,Res152)", func() int { panic("bad pair") })
	defer func() {
		pe := recover().(*PanicError)
		if pe.Job != "fig14/(Res50,Res152)" {
			t.Errorf("attributed to %q", pe.Job)
		}
	}()
	p.Run(4)
}

func TestSeeds(t *testing.T) {
	got := Seeds(10, 4)
	if !reflect.DeepEqual(got, []int64{10, 11, 12, 13}) {
		t.Errorf("Seeds = %v", got)
	}
	if len(Seeds(1, 0)) != 0 {
		t.Error("Seeds(_, 0) not empty")
	}
}

func TestDefaultParallelKnob(t *testing.T) {
	old := DefaultParallel()
	defer SetDefaultParallel(0)
	SetDefaultParallel(5)
	if DefaultParallel() != 5 {
		t.Errorf("DefaultParallel = %d, want 5", DefaultParallel())
	}
	SetDefaultParallel(0)
	if DefaultParallel() < 1 {
		t.Errorf("GOMAXPROCS default %d < 1", DefaultParallel())
	}
	_ = old
}

func TestZeroJobs(t *testing.T) {
	if got := Map(0, 4, func(i int) int { return i }); len(got) != 0 {
		t.Errorf("Map(0) = %v", got)
	}
	ForEach(0, 4, func(i int) { t.Error("job ran") })
}
