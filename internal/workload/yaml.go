// A minimal YAML-subset reader for workload specs. The container ships no
// YAML dependency, and specs only need a small, regular slice of the
// language, so this hand-rolled parser accepts exactly that subset:
//
//   - mappings: `key: value` and `key:` with a nested block indented deeper
//   - sequences: `- value` and `- key: value` opening an inline mapping whose
//     further keys align under the first (dash counts as indentation)
//   - scalars: numbers, true/false, null, double-/single-quoted and bare
//     strings
//   - `#` comments (full-line or trailing) and blank lines
//
// Anything outside the subset — anchors, flow style, multi-line scalars,
// tabs — is rejected with a line number, not misread. The parsed tree is
// plain map[string]any / []any / float64 / bool / string, which Parse then
// re-marshals through encoding/json so both syntaxes share the same struct
// tags and unknown-field checking.
package workload

import (
	"fmt"
	"strconv"
	"strings"
)

type yamlLine struct {
	num    int // 1-based source line
	indent int
	text   string // content with indentation stripped
}

// parseYAML parses the subset into a JSON-shaped tree.
func parseYAML(src string) (any, error) {
	var lines []yamlLine
	for i, raw := range strings.Split(src, "\n") {
		if strings.Contains(raw, "\t") {
			return nil, fmt.Errorf("line %d: tabs are not allowed, indent with spaces", i+1)
		}
		text := stripComment(raw)
		trimmed := strings.TrimLeft(text, " ")
		if strings.TrimSpace(trimmed) == "" {
			continue
		}
		lines = append(lines, yamlLine{
			num:    i + 1,
			indent: len(text) - len(trimmed),
			text:   strings.TrimRight(trimmed, " "),
		})
	}
	if len(lines) == 0 {
		return nil, fmt.Errorf("no content")
	}
	v, next, err := parseBlock(lines, 0, lines[0].indent)
	if err != nil {
		return nil, err
	}
	if next != len(lines) {
		return nil, fmt.Errorf("line %d: unexpected de-indentation", lines[next].num)
	}
	return v, nil
}

// stripComment removes a trailing comment, respecting quoted strings.
func stripComment(s string) string {
	inSingle, inDouble := false, false
	for i, r := range s {
		switch r {
		case '\'':
			if !inDouble {
				inSingle = !inSingle
			}
		case '"':
			if !inSingle {
				inDouble = !inDouble
			}
		case '#':
			if !inSingle && !inDouble {
				return s[:i]
			}
		}
	}
	return s
}

// parseBlock parses the mapping or sequence starting at lines[i], whose
// items sit at exactly the given indent. It returns the value and the index
// of the first line past the block.
func parseBlock(lines []yamlLine, i, indent int) (any, int, error) {
	if strings.HasPrefix(lines[i].text, "- ") || lines[i].text == "-" {
		return parseSequence(lines, i, indent)
	}
	return parseMapping(lines, i, indent)
}

func parseMapping(lines []yamlLine, i, indent int) (any, int, error) {
	m := map[string]any{}
	for i < len(lines) {
		ln := lines[i]
		if ln.indent < indent {
			break
		}
		if ln.indent > indent {
			return nil, 0, fmt.Errorf("line %d: unexpected indentation", ln.num)
		}
		if strings.HasPrefix(ln.text, "- ") || ln.text == "-" {
			return nil, 0, fmt.Errorf("line %d: sequence item inside a mapping", ln.num)
		}
		key, rest, err := splitKey(ln)
		if err != nil {
			return nil, 0, err
		}
		if _, dup := m[key]; dup {
			return nil, 0, fmt.Errorf("line %d: duplicate key %q", ln.num, key)
		}
		if rest != "" {
			m[key] = parseScalar(rest)
			i++
			continue
		}
		// A key with no inline value introduces a nested block.
		i++
		if i >= len(lines) || lines[i].indent <= indent {
			m[key] = nil
			continue
		}
		v, next, err := parseBlock(lines, i, lines[i].indent)
		if err != nil {
			return nil, 0, err
		}
		m[key] = v
		i = next
	}
	return m, i, nil
}

func parseSequence(lines []yamlLine, i, indent int) (any, int, error) {
	var seq []any
	for i < len(lines) {
		ln := lines[i]
		if ln.indent < indent {
			break
		}
		if ln.indent > indent {
			return nil, 0, fmt.Errorf("line %d: unexpected indentation", ln.num)
		}
		if !strings.HasPrefix(ln.text, "- ") && ln.text != "-" {
			return nil, 0, fmt.Errorf("line %d: mapping key inside a sequence", ln.num)
		}
		rest := strings.TrimPrefix(strings.TrimPrefix(ln.text, "-"), " ")
		if rest == "" {
			// `-` alone: the item is the nested block on the following lines.
			i++
			if i >= len(lines) || lines[i].indent <= indent {
				return nil, 0, fmt.Errorf("line %d: empty sequence item", ln.num)
			}
			v, next, err := parseBlock(lines, i, lines[i].indent)
			if err != nil {
				return nil, 0, err
			}
			seq = append(seq, v)
			i = next
			continue
		}
		if key, val, err := splitKey(yamlLine{num: ln.num, text: rest}); err == nil {
			// `- key: ...` opens an inline mapping; its remaining keys align
			// under the first key (indent + 2, past the dash).
			item := map[string]any{}
			if val != "" {
				item[key] = parseScalar(val)
				i++
			} else {
				i++
				if i < len(lines) && lines[i].indent > indent+2 {
					v, next, perr := parseBlock(lines, i, lines[i].indent)
					if perr != nil {
						return nil, 0, perr
					}
					item[key] = v
					i = next
				} else {
					item[key] = nil
				}
			}
			if i < len(lines) && lines[i].indent == indent+2 {
				more, next, err := parseMapping(lines, i, indent+2)
				if err != nil {
					return nil, 0, err
				}
				for k, v := range more.(map[string]any) {
					if _, dup := item[k]; dup {
						return nil, 0, fmt.Errorf("line %d: duplicate key %q", ln.num, k)
					}
					item[k] = v
				}
				i = next
			}
			seq = append(seq, item)
			continue
		}
		seq = append(seq, parseScalar(rest))
		i++
	}
	return seq, i, nil
}

// splitKey splits "key: value" (or "key:") at the first unquoted colon
// followed by a space or end of line.
func splitKey(ln yamlLine) (key, rest string, err error) {
	inSingle, inDouble := false, false
	for i := 0; i < len(ln.text); i++ {
		switch ln.text[i] {
		case '\'':
			if !inDouble {
				inSingle = !inSingle
			}
		case '"':
			if !inSingle {
				inDouble = !inDouble
			}
		case ':':
			if inSingle || inDouble {
				continue
			}
			if i+1 == len(ln.text) {
				return unquote(ln.text[:i]), "", nil
			}
			if ln.text[i+1] == ' ' {
				return unquote(ln.text[:i]), strings.TrimSpace(ln.text[i+1:]), nil
			}
		}
	}
	return "", "", fmt.Errorf("line %d: expected `key: value`, got %q", ln.num, ln.text)
}

func unquote(s string) string {
	s = strings.TrimSpace(s)
	if len(s) >= 2 {
		if (s[0] == '"' && s[len(s)-1] == '"') || (s[0] == '\'' && s[len(s)-1] == '\'') {
			if s[0] == '"' {
				if u, err := strconv.Unquote(s); err == nil {
					return u
				}
			}
			return s[1 : len(s)-1]
		}
	}
	return s
}

func parseScalar(s string) any {
	switch s {
	case "true":
		return true
	case "false":
		return false
	case "null", "~":
		return nil
	}
	if len(s) >= 2 && (s[0] == '"' || s[0] == '\'') {
		return unquote(s)
	}
	if f, err := strconv.ParseFloat(s, 64); err == nil {
		return f
	}
	return s
}
