// tracev2 is the replayable arrival-trace file format. Unlike the bare CSV
// in internal/trace, tracev2 carries a version line, provenance metadata
// (workload name, seed, duration, service count) and a trailing FNV-64a
// checksum over everything before it, so a replay can refuse corrupted or
// truncated files and a round trip (generate → write → read → write) is
// byte-identical. The body stays the same CSV schema as WriteCSV so rows are
// greppable and hand-editable (at the cost of re-deriving the checksum with
// abacus-workload).
//
// Layout:
//
//	#tracev2 v1
//	#meta name=<urlencoded> seed=<int> duration_ms=<float> services=<int>
//	time_ms,service,batch,seqlen
//	12.5,0,8,0
//	...
//	#fnv64a=<16 hex digits>
package workload

import (
	"bufio"
	"fmt"
	"hash/fnv"
	"io"
	"net/url"
	"sort"
	"strconv"
	"strings"

	"abacus/internal/dnn"
	"abacus/internal/trace"
)

const (
	tracev2Magic = "#tracev2 v1"
	tracev2Sum   = "#fnv64a="
)

// Meta is a trace file's provenance header.
type Meta struct {
	// Name labels the generating workload (or capture session).
	Name string
	// Seed is the generating seed (0 for live captures).
	Seed int64
	// DurationMS is the trace horizon; arrival times must fall inside it.
	DurationMS float64
	// Services is the deployment's service count; every row's service index
	// must fall inside it.
	Services int
}

// IsTraceV2 sniffs whether data starts with the tracev2 magic (for CLIs that
// accept both tracev2 and legacy CSV).
func IsTraceV2(data []byte) bool {
	return strings.HasPrefix(strings.TrimPrefix(string(data), "\ufeff"), tracev2Magic)
}

// WriteTrace writes arrivals as a tracev2 file. Times are formatted
// canonically (shortest round-trip float), which is what makes
// write→read→write reproduce the file byte for byte.
func WriteTrace(w io.Writer, meta Meta, arrivals []trace.Arrival) error {
	if meta.Services <= 0 {
		return fmt.Errorf("workload: tracev2 meta needs services > 0, got %d", meta.Services)
	}
	if !(meta.DurationMS > 0) {
		return fmt.Errorf("workload: tracev2 meta needs duration_ms > 0, got %v", meta.DurationMS)
	}
	h := fnv.New64a()
	bw := bufio.NewWriter(io.MultiWriter(w, h))
	fmt.Fprintf(bw, "%s\n", tracev2Magic)
	fmt.Fprintf(bw, "#meta name=%s seed=%d duration_ms=%s services=%d\n",
		url.QueryEscape(meta.Name), meta.Seed,
		strconv.FormatFloat(meta.DurationMS, 'f', -1, 64), meta.Services)
	fmt.Fprintln(bw, "time_ms,service,batch,seqlen")
	prev := 0.0
	for i, a := range arrivals {
		if a.Time < prev {
			return fmt.Errorf("workload: tracev2 arrival %d goes back in time (%v after %v)", i, a.Time, prev)
		}
		if a.Time >= meta.DurationMS {
			return fmt.Errorf("workload: tracev2 arrival %d at %v past duration %v", i, a.Time, meta.DurationMS)
		}
		if a.Service < 0 || a.Service >= meta.Services {
			return fmt.Errorf("workload: tracev2 arrival %d service %d outside [0, %d)", i, a.Service, meta.Services)
		}
		prev = a.Time
		fmt.Fprintf(bw, "%s,%d,%d,%d\n",
			strconv.FormatFloat(a.Time, 'f', -1, 64), a.Service, a.Input.Batch, a.Input.SeqLen)
	}
	if err := bw.Flush(); err != nil {
		return err
	}
	// The checksum line covers every byte written above it (itself excluded).
	_, err := fmt.Fprintf(w, "%s%016x\n", tracev2Sum, h.Sum64())
	return err
}

// ReadTrace parses and verifies a tracev2 file: magic, metadata, checksum,
// row sanity (sorted times inside the horizon, valid service indices).
func ReadTrace(r io.Reader) (Meta, []trace.Arrival, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return Meta{}, nil, err
	}
	src := string(data)
	if !strings.HasPrefix(src, tracev2Magic+"\n") {
		return Meta{}, nil, fmt.Errorf("workload: not a tracev2 file (missing %q line)", tracev2Magic)
	}
	sumAt := strings.LastIndex(src, tracev2Sum)
	if sumAt < 0 {
		return Meta{}, nil, fmt.Errorf("workload: tracev2 file has no %s checksum line (truncated?)", strings.TrimSuffix(tracev2Sum, "="))
	}
	sumLine := strings.TrimSpace(src[sumAt+len(tracev2Sum):])
	want, err := strconv.ParseUint(sumLine, 16, 64)
	if err != nil {
		return Meta{}, nil, fmt.Errorf("workload: tracev2 checksum line malformed: %q", sumLine)
	}
	h := fnv.New64a()
	h.Write([]byte(src[:sumAt]))
	if got := h.Sum64(); got != want {
		return Meta{}, nil, fmt.Errorf("workload: tracev2 checksum mismatch: file says %016x, content hashes to %016x", want, got)
	}

	lines := strings.Split(strings.TrimRight(src[:sumAt], "\n"), "\n")
	// lines[0] is the magic; next comes #meta, then the CSV header.
	if len(lines) < 3 {
		return Meta{}, nil, fmt.Errorf("workload: tracev2 file too short")
	}
	meta, err := parseMeta(lines[1])
	if err != nil {
		return Meta{}, nil, err
	}
	if lines[2] != "time_ms,service,batch,seqlen" {
		return Meta{}, nil, fmt.Errorf("workload: tracev2 unexpected column header %q", lines[2])
	}
	arrivals := make([]trace.Arrival, 0, len(lines)-3)
	prev := 0.0
	for i, ln := range lines[3:] {
		f := strings.Split(ln, ",")
		if len(f) != 4 {
			return Meta{}, nil, fmt.Errorf("workload: tracev2 row %d malformed: %q", i+1, ln)
		}
		t, err1 := strconv.ParseFloat(f[0], 64)
		svc, err2 := strconv.Atoi(f[1])
		batch, err3 := strconv.Atoi(f[2])
		seq, err4 := strconv.Atoi(f[3])
		if err1 != nil || err2 != nil || err3 != nil || err4 != nil {
			return Meta{}, nil, fmt.Errorf("workload: tracev2 row %d malformed: %q", i+1, ln)
		}
		if t < prev {
			return Meta{}, nil, fmt.Errorf("workload: tracev2 row %d goes back in time (%v after %v)", i+1, t, prev)
		}
		if t >= meta.DurationMS {
			return Meta{}, nil, fmt.Errorf("workload: tracev2 row %d time %v past duration %v", i+1, t, meta.DurationMS)
		}
		if svc < 0 || svc >= meta.Services {
			return Meta{}, nil, fmt.Errorf("workload: tracev2 row %d service %d outside [0, %d)", i+1, svc, meta.Services)
		}
		if batch < 1 {
			return Meta{}, nil, fmt.Errorf("workload: tracev2 row %d batch %d invalid", i+1, batch)
		}
		prev = t
		arrivals = append(arrivals, trace.Arrival{
			Time: t, Service: svc, Input: dnn.Input{Batch: batch, SeqLen: seq},
		})
	}
	return meta, arrivals, nil
}

func parseMeta(line string) (Meta, error) {
	if !strings.HasPrefix(line, "#meta ") {
		return Meta{}, fmt.Errorf("workload: tracev2 missing #meta line, got %q", line)
	}
	m := Meta{}
	seen := map[string]bool{}
	for _, kv := range strings.Fields(line[len("#meta "):]) {
		k, v, ok := strings.Cut(kv, "=")
		if !ok {
			return Meta{}, fmt.Errorf("workload: tracev2 meta field %q is not key=value", kv)
		}
		if seen[k] {
			return Meta{}, fmt.Errorf("workload: tracev2 meta repeats %q", k)
		}
		seen[k] = true
		var err error
		switch k {
		case "name":
			m.Name, err = url.QueryUnescape(v)
		case "seed":
			m.Seed, err = strconv.ParseInt(v, 10, 64)
		case "duration_ms":
			m.DurationMS, err = strconv.ParseFloat(v, 64)
		case "services":
			m.Services, err = strconv.Atoi(v)
		default:
			return Meta{}, fmt.Errorf("workload: tracev2 meta has unknown field %q", k)
		}
		if err != nil {
			return Meta{}, fmt.Errorf("workload: tracev2 meta field %s: %w", k, err)
		}
	}
	for _, k := range []string{"name", "seed", "duration_ms", "services"} {
		if !seen[k] {
			return Meta{}, fmt.Errorf("workload: tracev2 meta missing %q", k)
		}
	}
	if m.Services <= 0 || !(m.DurationMS > 0) {
		return Meta{}, fmt.Errorf("workload: tracev2 meta out of range (services=%d duration_ms=%v)", m.Services, m.DurationMS)
	}
	return m, nil
}

// CaptureMeta builds the Meta for persisting a live capture: duration is
// rounded up past the last arrival so replays accept every row.
func CaptureMeta(name string, services int, arrivals []trace.Arrival) Meta {
	dur := 1.0
	if n := len(arrivals); n > 0 {
		last := arrivals[n-1].Time
		if !sort.SliceIsSorted(arrivals, func(i, j int) bool { return arrivals[i].Time < arrivals[j].Time }) {
			for _, a := range arrivals {
				if a.Time > last {
					last = a.Time
				}
			}
		}
		dur = last + 1
	}
	return Meta{Name: name, DurationMS: dur, Services: services}
}
