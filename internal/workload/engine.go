// Compiling a Spec into a deterministic arrival source. Each service's rate
// envelope r(t) is the sum of its phases; arrivals are drawn by the
// time-rescaling theorem — a unit-mean renewal gap G is consumed by
// advancing t until ∫ r(u) du = G — which makes every process kind exact for
// time-varying rates (Poisson gaps recover the inhomogeneous Poisson
// process; Gamma/Pareto gaps give inhomogeneous renewal processes; the
// on/off modulator multiplies r(t) by a seeded two-state Markov chain, the
// textbook MMPP). The integral is walked over short piecewise-constant bins,
// cut at modulator edges, so the inversion is deterministic and cheap.
//
// Determinism contract: every stream (service, modulator, cohort client)
// owns a PRNG derived from the spec seed by pure mixing (SubSeed), so no
// stream's draws depend on how far any other stream has been consumed. A
// Source and a Materialize built from the same spec and deployment yield
// byte-identical arrivals, which the prefix-law property test pins for every
// phase × process combination.
package workload

import (
	"container/heap"
	"fmt"
	"math"

	"abacus/internal/dnn"
	"abacus/internal/trace"
)

// Seed-derivation salts: one namespace per stream family.
const (
	saltService = 0x5e
	saltMod     = 0x6d
	saltCohort  = 0xc0
)

// rateBinMS is the piecewise-constant integration step for the cumulative
// intensity. 5 ms resolves every phase shape the spec grammar can express
// (the fastest edge is a flash ramp, typically ≥ 100 ms).
const rateBinMS = 5.0

// Compiled is a spec bound to a deployment: service indices validated,
// pinned models and inputs checked against the model zoo, and the effective
// seed resolved. Compiled is immutable; every Source() call builds fresh
// generator state.
type Compiled struct {
	Spec   *Spec
	Models []dnn.ModelID
	Seed   int64
}

// Bind validates the spec against a deployment's service list and resolves
// the seed: the spec's own Seed wins, defaultSeed fills in when the spec
// leaves it 0 (so embedding scenarios can supply theirs).
func (s *Spec) Bind(models []dnn.ModelID, defaultSeed int64) (*Compiled, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	if len(models) == 0 {
		return nil, fmt.Errorf("workload: binding %s: no deployment models", s.Name)
	}
	check := func(what string, svc int, pinned string, in *InputSpec) error {
		if svc >= len(models) {
			return fmt.Errorf("workload: %s %s targets service %d, deployment has %d", s.Name, what, svc, len(models))
		}
		m := dnn.Get(models[svc])
		if pinned != "" && pinned != models[svc].String() {
			return fmt.Errorf("workload: %s %s pins model %q, deployment serves %s at service %d",
				s.Name, what, pinned, models[svc], svc)
		}
		if in != nil {
			if in.Batch < m.MinBatch || in.Batch > m.MaxBatch {
				return fmt.Errorf("workload: %s %s input batch %d outside %s's served range [%d, %d]",
					s.Name, what, in.Batch, models[svc], m.MinBatch, m.MaxBatch)
			}
			if m.IsSequence() {
				ok := false
				for _, sl := range m.SeqLens {
					if in.SeqLen == sl {
						ok = true
						break
					}
				}
				if !ok {
					return fmt.Errorf("workload: %s %s input seqlen %d not served by %s (allowed %v)",
						s.Name, what, in.SeqLen, models[svc], m.SeqLens)
				}
			} else if in.SeqLen != 0 {
				return fmt.Errorf("workload: %s %s pins seqlen %d on non-sequence model %s",
					s.Name, what, in.SeqLen, models[svc])
			}
		}
		return nil
	}
	for i := range s.Services {
		sv := &s.Services[i]
		if err := check(fmt.Sprintf("service %d", i), sv.Service, sv.Model, sv.Input); err != nil {
			return nil, err
		}
	}
	for i := range s.Cohorts {
		c := &s.Cohorts[i]
		if err := check(fmt.Sprintf("cohort %d", i), c.Service, c.Model, c.Input); err != nil {
			return nil, err
		}
	}
	seed := s.Seed
	if seed == 0 {
		seed = defaultSeed
	}
	return &Compiled{Spec: s, Models: models, Seed: seed}, nil
}

// inputDraw compiles an input source for one service: a pinned input, or the
// paper's Table 1 draw (batch uniform over the served set, seqlen uniform
// over the model's lengths for sequence models).
func inputDraw(model dnn.ModelID, pin *InputSpec) func(*PRNG) dnn.Input {
	if pin != nil {
		in := dnn.Input{Batch: pin.Batch, SeqLen: pin.SeqLen}
		return func(*PRNG) dnn.Input { return in }
	}
	m := dnn.Get(model)
	batches := dnn.Batches()
	if m.IsSequence() {
		seqs := m.SeqLens
		return func(r *PRNG) dnn.Input {
			return dnn.Input{Batch: batches[r.Intn(len(batches))], SeqLen: seqs[r.Intn(len(seqs))]}
		}
	}
	return func(r *PRNG) dnn.Input { return dnn.Input{Batch: batches[r.Intn(len(batches))]} }
}

// gapDraw compiles a process into a unit-mean renewal gap source. The on/off
// kind draws exponential gaps (MMPP = rate-modulated Poisson); its
// modulation lives in onoffMod.
func gapDraw(p ProcessSpec) func(*PRNG) float64 {
	switch p.Kind {
	case ProcGamma:
		shape := p.Shape
		return func(r *PRNG) float64 { return r.Gamma(shape) / shape }
	case ProcPareto:
		alpha := p.Alpha
		return func(r *PRNG) float64 { return r.Pareto(alpha) }
	default: // poisson, onoff, ""
		return func(r *PRNG) float64 { return r.Exp() }
	}
}

// phaseRate evaluates one phase's rate contribution at absolute time t.
// endMS is the phase's resolved end.
func phaseRate(p *PhaseSpec, endMS, t float64) float64 {
	if t < p.StartMS || t >= endMS {
		return 0
	}
	switch p.Kind {
	case PhaseConstant:
		return p.QPS
	case PhaseRamp:
		frac := (t - p.StartMS) / (endMS - p.StartMS)
		return p.QPS + (p.ToQPS-p.QPS)*frac
	case PhaseSine:
		period := p.PeriodMS
		if period == 0 {
			period = endMS - p.StartMS
		}
		return p.QPS * (1 + p.Amplitude*math.Sin(2*math.Pi*(t-p.StartMS)/period))
	case PhaseStep:
		at := p.AtMS
		if at == 0 {
			at = (p.StartMS + endMS) / 2
		}
		if t < at {
			return p.QPS
		}
		return p.ToQPS
	case PhaseFlash:
		switch {
		case t >= p.PeakStartMS && t < p.PeakEndMS:
			return p.PeakQPS
		case p.RampMS > 0 && t >= p.PeakStartMS-p.RampMS && t < p.PeakStartMS:
			frac := (t - (p.PeakStartMS - p.RampMS)) / p.RampMS
			return p.QPS + (p.PeakQPS-p.QPS)*frac
		case p.RampMS > 0 && t >= p.PeakEndMS && t < p.PeakEndMS+p.RampMS:
			frac := (t - p.PeakEndMS) / p.RampMS
			return p.PeakQPS - (p.PeakQPS-p.QPS)*frac
		default:
			return p.QPS
		}
	}
	return 0
}

// onoffMod is the seeded two-state Markov modulator: the rate is multiplied
// by onFactor while bursting and offFactor while quiet, with exponentially
// distributed state durations. onFactor is normalized so the long-run mean
// multiplier is 1 — the phase envelope still sets the offered mean.
type onoffMod struct {
	rng              *PRNG
	onMS, offMS      float64
	onFactor, offFac float64
	on               bool
	until            float64 // current state's end
}

func newOnOffMod(p ProcessSpec, rng *PRNG) *onoffMod {
	m := &onoffMod{rng: rng, onMS: p.OnMS, offMS: p.OffMS, offFac: p.OffFactor}
	// Mean multiplier (on·onF + off·offF)/(on+off) = 1 ⇒ onF as below.
	m.onFactor = ((p.OnMS + p.OffMS) - p.OffMS*p.OffFactor) / p.OnMS
	m.on = true
	m.until = m.onMS * rng.Exp()
	return m
}

// at returns the multiplier covering time t and the edge where it next
// changes. t must be non-decreasing across calls.
func (m *onoffMod) at(t float64) (factor, until float64) {
	for t >= m.until {
		m.on = !m.on
		if m.on {
			m.until += m.onMS * m.rng.Exp()
		} else {
			m.until += m.offMS * m.rng.Exp()
		}
	}
	if m.on {
		return m.onFactor, m.until
	}
	return m.offFac, m.until
}

// svcGen generates one service's open-loop arrivals.
type svcGen struct {
	svc   int
	durMS float64
	rng   *PRNG
	gap   func(*PRNG) float64
	input func(*PRNG) dnn.Input
	// phases with resolved ends, parallel slices.
	phases []PhaseSpec
	ends   []float64
	mod    *onoffMod
	t      float64
	done   bool
}

func newSvcGen(c *Compiled, sv *ServiceSpec) *svcGen {
	g := &svcGen{
		svc:   sv.Service,
		durMS: c.Spec.DurationMS,
		rng:   NewPRNG(SubSeed(c.Seed, saltService, uint64(sv.Service))),
		gap:   gapDraw(sv.Process),
		input: inputDraw(c.Models[sv.Service], sv.Input),
	}
	g.phases = sv.Phases
	g.ends = make([]float64, len(sv.Phases))
	for i := range sv.Phases {
		g.ends[i] = sv.Phases[i].EndMS
		if g.ends[i] == 0 {
			g.ends[i] = c.Spec.DurationMS
		}
	}
	if sv.Process.Kind == ProcOnOff {
		g.mod = newOnOffMod(sv.Process, NewPRNG(SubSeed(c.Seed, saltMod, uint64(sv.Service))))
	}
	return g
}

// rate is the composite envelope at time t (queries per second).
func (g *svcGen) rate(t float64) float64 {
	var r float64
	for i := range g.phases {
		r += phaseRate(&g.phases[i], g.ends[i], t)
	}
	return r
}

// next advances the renewal clock by one unit-mean gap under time
// rescaling: walk piecewise-constant bins accumulating ∫ r until the gap is
// spent.
func (g *svcGen) next() (trace.Arrival, bool) {
	if g.done {
		return trace.Arrival{}, false
	}
	need := g.gap(g.rng)
	t := g.t
	for {
		if t >= g.durMS {
			g.done = true
			return trace.Arrival{}, false
		}
		binEnd := math.Min(g.durMS, math.Floor(t/rateBinMS)*rateBinMS+rateBinMS)
		factor := 1.0
		if g.mod != nil {
			var edge float64
			factor, edge = g.mod.at(t)
			if edge < binEnd {
				binEnd = edge
			}
		}
		// Events per ms over this bin, evaluated at its midpoint.
		r := g.rate((t+binEnd)/2) / 1000 * factor
		if r <= 0 {
			t = binEnd
			continue
		}
		if dt := need / r; t+dt < binEnd {
			t += dt
			break
		}
		need -= (binEnd - t) * r
		t = binEnd
	}
	g.t = t
	return trace.Arrival{Time: t, Service: g.svc, Input: g.input(g.rng)}, true
}

// genStream is the common face of service and cohort generators.
type genStream interface {
	next() (trace.Arrival, bool)
}

// mergeSource k-way merges the per-stream arrivals into one time-sorted
// Source. Ties break on stream order (services first, then cohorts, both in
// spec order), so the merge is deterministic.
type mergeSource struct {
	gens  []genStream
	heads []trace.Arrival
	live  []bool
}

func newMergeSource(gens []genStream) *mergeSource {
	m := &mergeSource{gens: gens, heads: make([]trace.Arrival, len(gens)), live: make([]bool, len(gens))}
	for i, g := range gens {
		m.heads[i], m.live[i] = g.next()
	}
	return m
}

// Next implements trace.Source.
func (m *mergeSource) Next() (trace.Arrival, bool) {
	best := -1
	for i := range m.gens {
		if !m.live[i] {
			continue
		}
		if best < 0 || m.heads[i].Time < m.heads[best].Time {
			best = i
		}
	}
	if best < 0 {
		return trace.Arrival{}, false
	}
	a := m.heads[best]
	m.heads[best], m.live[best] = m.gens[best].next()
	return a, true
}

// Source returns a fresh lazy arrival stream for the compiled workload.
// Streams from the same Compiled are independent and identical.
func (c *Compiled) Source() trace.Source {
	gens := make([]genStream, 0, len(c.Spec.Services)+len(c.Spec.Cohorts))
	for i := range c.Spec.Services {
		gens = append(gens, newSvcGen(c, &c.Spec.Services[i]))
	}
	for i := range c.Spec.Cohorts {
		gens = append(gens, newCohortGen(c, i, &c.Spec.Cohorts[i]))
	}
	return newMergeSource(gens)
}

// Materialize drains a fresh Source into a slice — by construction the
// prefix law holds: Materialize()[:k] equals the first k arrivals of
// Source() for any k.
func (c *Compiled) Materialize() []trace.Arrival {
	return trace.Collect(c.Source(), 0)
}

// ServiceSummary is one service's offered-load digest, for preflight
// printing and spec validation tooling.
type ServiceSummary struct {
	Service int     `json:"service"`
	Model   string  `json:"model"`
	MeanQPS float64 `json:"mean_qps"`
	PeakQPS float64 `json:"peak_qps"`
}

// Summary digests the offered load per service: the open-loop envelope is
// scanned over rateBinMS bins; cohorts contribute their steady-state rate
// clients/(mean think + service time). On/off burst modulation is
// mean-preserving, so it does not move these numbers.
func (c *Compiled) Summary() []ServiceSummary {
	mean := make([]float64, len(c.Models))
	peak := make([]float64, len(c.Models))
	dur := c.Spec.DurationMS
	for i := range c.Spec.Services {
		g := newSvcGen(c, &c.Spec.Services[i])
		var sum float64
		bins := 0
		for t := 0.0; t < dur; t += rateBinMS {
			end := math.Min(dur, t+rateBinMS)
			r := g.rate((t + end) / 2)
			sum += r * (end - t)
			if r > peak[g.svc] {
				peak[g.svc] = r
			}
			bins++
		}
		mean[g.svc] += sum / dur
	}
	for i := range c.Spec.Cohorts {
		co := &c.Spec.Cohorts[i]
		end := co.EndMS
		if end == 0 {
			end = dur
		}
		rate := float64(co.Clients) * 1000 / (co.Think.MeanMS + co.ServiceMS)
		mean[co.Service] += rate * (end - co.StartMS) / dur
		if rate > peak[co.Service] {
			peak[co.Service] = rate
		}
	}
	var out []ServiceSummary
	for svc := range c.Models {
		if mean[svc] == 0 && peak[svc] == 0 {
			continue
		}
		out = append(out, ServiceSummary{
			Service: svc,
			Model:   c.Models[svc].String(),
			MeanQPS: mean[svc],
			PeakQPS: peak[svc],
		})
	}
	return out
}

// cohortGen generates one closed-loop cohort's arrivals: Clients seeded
// users cycling think → request → (modeled) service time. Client next-fire
// times live in a binary heap keyed (time, client), so the merge order is
// deterministic at any population size; per-client state is one PRNG word.
type cohortGen struct {
	svc       int
	endMS     float64
	serviceMS float64
	think     func(*PRNG) float64
	input     func(*PRNG) dnn.Input
	rngs      []PRNG
	h         cohortHeap
}

type clientAt struct {
	t      float64
	client int32
}

type cohortHeap []clientAt

func (h cohortHeap) Len() int { return len(h) }
func (h cohortHeap) Less(i, j int) bool {
	if h[i].t != h[j].t {
		return h[i].t < h[j].t
	}
	return h[i].client < h[j].client
}
func (h cohortHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *cohortHeap) Push(x any)   { *h = append(*h, x.(clientAt)) }
func (h *cohortHeap) Pop() any     { old := *h; n := len(old); x := old[n-1]; *h = old[:n-1]; return x }

func newCohortGen(c *Compiled, idx int, co *CohortSpec) *cohortGen {
	g := &cohortGen{
		svc:       co.Service,
		endMS:     co.EndMS,
		serviceMS: co.ServiceMS,
		think:     co.Think.Sampler(),
		input:     inputDraw(c.Models[co.Service], co.Input),
		rngs:      make([]PRNG, co.Clients),
	}
	if g.endMS == 0 {
		g.endMS = c.Spec.DurationMS
	}
	g.h = make(cohortHeap, 0, co.Clients)
	for i := 0; i < co.Clients; i++ {
		g.rngs[i] = PRNG{state: SubSeed(c.Seed, saltCohort, uint64(idx), uint64(i))}
		// The first think draw staggers the population across the window so
		// a cohort does not open with Clients simultaneous arrivals.
		t0 := co.StartMS + g.think(&g.rngs[i])
		if t0 < g.endMS {
			g.h = append(g.h, clientAt{t: t0, client: int32(i)})
		}
	}
	heap.Init(&g.h)
	return g
}

func (g *cohortGen) next() (trace.Arrival, bool) {
	if len(g.h) == 0 {
		return trace.Arrival{}, false
	}
	top := g.h[0]
	rng := &g.rngs[top.client]
	a := trace.Arrival{Time: top.t, Service: g.svc, Input: g.input(rng)}
	// The client's loop closes: modeled response, then think, then again.
	nextT := top.t + g.serviceMS + g.think(rng)
	if nextT < g.endMS {
		g.h[0].t = nextT
		heap.Fix(&g.h, 0)
	} else {
		heap.Pop(&g.h)
	}
	return a, true
}
