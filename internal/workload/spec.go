// Package workload is the declarative workload-spec engine: it compiles a
// JSON (or YAML-subset) spec into a deterministic arrival source. A spec
// composes per-service rate *phases* over a timeline (constant, ramp,
// sinusoid, step, flash crowd) with a pluggable inter-arrival *process*
// (Poisson, Gamma, Pareto heavy-tail, MMPP-style bursty on/off) and optional
// closed-loop *client cohorts* — N distinct seeded clients with think times,
// modeling populations of users instead of one open-loop source. The same
// spec always produces the same arrivals, byte for byte, and any generated
// or live-captured workload can be persisted to a replayable tracev2 file
// (see tracev2.go). The paper's evaluation only needed a single Poisson
// source plus one synthetic MAF trace; this package is how the reproduction
// reaches the bursty, heavy-tailed, multi-period regimes that production
// traces (Clockwork's MAF study, D-STACK's skewed multiplexing loads)
// actually stress.
package workload

import (
	"encoding/json"
	"fmt"
	"strings"
)

// Phase kinds.
const (
	// PhaseConstant holds QPS flat over the window.
	PhaseConstant = "constant"
	// PhaseRamp interpolates linearly from QPS at the window start to ToQPS
	// at the window end.
	PhaseRamp = "ramp"
	// PhaseSine oscillates around mean QPS with relative Amplitude and
	// PeriodMS (default: the window length — one diurnal cycle).
	PhaseSine = "sine"
	// PhaseStep holds QPS until AtMS (default: the window midpoint), then
	// jumps to ToQPS.
	PhaseStep = "step"
	// PhaseFlash holds baseline QPS, then surges to PeakQPS over
	// [PeakStartMS, PeakEndMS), with optional linear RampMS edges — the
	// flash-crowd shape.
	PhaseFlash = "flash"
)

// Process kinds.
const (
	// ProcPoisson draws exponential inter-arrival gaps (memoryless).
	ProcPoisson = "poisson"
	// ProcGamma draws Gamma gaps with the given Shape; Shape < 1 is burstier
	// than Poisson (CV² = 1/Shape), Shape > 1 smoother.
	ProcGamma = "gamma"
	// ProcPareto draws Pareto gaps with tail index Alpha > 1 — heavy-tailed
	// silences between arrival clumps.
	ProcPareto = "pareto"
	// ProcOnOff modulates a Poisson stream with a two-state Markov chain
	// (mean OnMS bursting, mean OffMS quiet at OffFactor of the rate),
	// renormalized so the long-run mean matches the phase envelope — the
	// MMPP bursty shape.
	ProcOnOff = "onoff"
)

// Think-time distributions for cohorts.
const (
	ThinkExp       = "exp"
	ThinkLogNormal = "lognormal"
	ThinkConstant  = "constant"
	ThinkPareto    = "pareto"
)

// Spec is one declarative workload: what arrives, when, and how bursty.
type Spec struct {
	// Name labels the workload in traces and reports.
	Name string `json:"name"`
	// Seed drives every stream; 0 lets the embedding scenario supply one.
	Seed int64 `json:"seed,omitempty"`
	// DurationMS is the timeline length; phases and cohorts are clipped to it.
	DurationMS float64 `json:"duration_ms"`
	// Services are the open-loop per-service load shapes.
	Services []ServiceSpec `json:"services,omitempty"`
	// Cohorts are closed-loop client populations layered on top.
	Cohorts []CohortSpec `json:"cohorts,omitempty"`
}

// ServiceSpec shapes one service's open-loop arrivals: the rate envelope is
// the sum of its phases, and the process sets gap burstiness around it.
type ServiceSpec struct {
	// Service indexes the deployment's service list.
	Service int `json:"service"`
	// Model optionally pins the service's model name (as printed by
	// dnn.ModelID.String); binding fails if the deployment disagrees, which
	// catches specs replayed against the wrong gateway.
	Model string `json:"model,omitempty"`
	// Process sets the inter-arrival law (default Poisson).
	Process ProcessSpec `json:"process,omitempty"`
	// Phases compose the rate envelope; overlapping phases add.
	Phases []PhaseSpec `json:"phases"`
	// Input optionally pins every arrival's input; default draws per the
	// paper's Table 1 (batch uniform over {4,8,16,32}, seqlen over the
	// model's served lengths).
	Input *InputSpec `json:"input,omitempty"`
}

// PhaseSpec is one segment of a service's rate envelope.
type PhaseSpec struct {
	Kind string `json:"kind"`
	// StartMS/EndMS bound the phase; EndMS 0 means the spec duration.
	StartMS float64 `json:"start_ms"`
	EndMS   float64 `json:"end_ms,omitempty"`
	// QPS is the base rate (constant level, ramp start, sine mean, step
	// level, flash baseline).
	QPS float64 `json:"qps"`
	// ToQPS is the ramp end or post-step rate.
	ToQPS float64 `json:"to_qps,omitempty"`
	// AtMS is the step instant (absolute ms; default window midpoint).
	AtMS float64 `json:"at_ms,omitempty"`
	// Amplitude is the sine's relative swing in [0, 1].
	Amplitude float64 `json:"amplitude,omitempty"`
	// PeriodMS is the sine period (default: window length).
	PeriodMS float64 `json:"period_ms,omitempty"`
	// PeakQPS is the flash-crowd surge rate.
	PeakQPS float64 `json:"peak_qps,omitempty"`
	// PeakStartMS/PeakEndMS bound the surge (absolute ms).
	PeakStartMS float64 `json:"peak_start_ms,omitempty"`
	PeakEndMS   float64 `json:"peak_end_ms,omitempty"`
	// RampMS is the flash edge width: the rate climbs over the RampMS before
	// PeakStartMS and falls over the RampMS after PeakEndMS.
	RampMS float64 `json:"ramp_ms,omitempty"`
}

// ProcessSpec selects the inter-arrival law.
type ProcessSpec struct {
	Kind string `json:"kind,omitempty"`
	// Shape is the gamma shape (CV² = 1/Shape); required for ProcGamma.
	Shape float64 `json:"shape,omitempty"`
	// Alpha is the Pareto tail index (> 1); required for ProcPareto.
	Alpha float64 `json:"alpha,omitempty"`
	// OnMS/OffMS are the mean burst and quiet durations for ProcOnOff.
	OnMS  float64 `json:"on_ms,omitempty"`
	OffMS float64 `json:"off_ms,omitempty"`
	// OffFactor is the quiet-state rate multiplier in [0, 1) (default 0:
	// fully silent between bursts).
	OffFactor float64 `json:"off_factor,omitempty"`
}

// InputSpec pins a query input.
type InputSpec struct {
	Batch  int `json:"batch"`
	SeqLen int `json:"seqlen,omitempty"`
}

// CohortSpec is one closed-loop client population: Clients seeded users
// cycling think → request → think against one service. The offline engine
// models the response time as ServiceMS; the live load generator closes the
// loop against real completions (internal/server closed-loop mode).
type CohortSpec struct {
	// Service indexes the deployment's service list.
	Service int `json:"service"`
	// Model optionally pins the model name, like ServiceSpec.Model.
	Model string `json:"model,omitempty"`
	// Clients is the population size (each client gets its own derived
	// 8-byte PRNG, so millions are affordable).
	Clients int `json:"clients"`
	// Think shapes the per-client think time between requests.
	Think ThinkSpec `json:"think"`
	// ServiceMS is the assumed response latency closing each client's loop
	// in the offline model (default 0).
	ServiceMS float64 `json:"service_ms,omitempty"`
	// StartMS/EndMS bound the cohort's activity; EndMS 0 means spec duration.
	StartMS float64 `json:"start_ms,omitempty"`
	EndMS   float64 `json:"end_ms,omitempty"`
	// Input optionally pins every request's input.
	Input *InputSpec `json:"input,omitempty"`
}

// ThinkSpec shapes a think-time distribution. The zero Kind means
// exponential.
type ThinkSpec struct {
	Kind string `json:"kind,omitempty"`
	// MeanMS is the arithmetic mean think time.
	MeanMS float64 `json:"mean_ms"`
	// Sigma is the lognormal log-space spread (default 1).
	Sigma float64 `json:"sigma,omitempty"`
	// Alpha is the Pareto tail index (> 1).
	Alpha float64 `json:"alpha,omitempty"`
}

// maxCohortClients bounds a single cohort's population; beyond it the heap
// merge state (16 bytes a client) stops being a rounding error.
const maxCohortClients = 2_000_000

// Parse decodes a spec from JSON or the YAML subset (sniffed from the first
// non-space byte) and validates it.
func Parse(data []byte) (*Spec, error) {
	trimmed := strings.TrimSpace(string(data))
	if trimmed == "" {
		return nil, fmt.Errorf("workload: empty spec")
	}
	var s Spec
	if trimmed[0] == '{' {
		dec := json.NewDecoder(strings.NewReader(trimmed))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&s); err != nil {
			return nil, fmt.Errorf("workload: parsing JSON spec: %w", err)
		}
	} else {
		v, err := parseYAML(trimmed)
		if err != nil {
			return nil, fmt.Errorf("workload: parsing YAML spec: %w", err)
		}
		// Round-trip through JSON so the YAML subset shares the struct tags
		// (and the unknown-field check) with the JSON path.
		blob, err := json.Marshal(v)
		if err != nil {
			return nil, fmt.Errorf("workload: encoding YAML spec: %w", err)
		}
		dec := json.NewDecoder(strings.NewReader(string(blob)))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&s); err != nil {
			return nil, fmt.Errorf("workload: parsing YAML spec: %w", err)
		}
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// Validate checks the spec's internal consistency (everything that does not
// need the deployment; Bind adds the model checks).
func (s *Spec) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("workload: spec needs a name")
	}
	if !(s.DurationMS > 0) {
		return fmt.Errorf("workload: spec %s: duration_ms %v must be positive", s.Name, s.DurationMS)
	}
	if len(s.Services) == 0 && len(s.Cohorts) == 0 {
		return fmt.Errorf("workload: spec %s has neither services nor cohorts", s.Name)
	}
	for i := range s.Services {
		if err := s.Services[i].validate(s.DurationMS); err != nil {
			return fmt.Errorf("workload: spec %s service %d: %w", s.Name, i, err)
		}
	}
	for i := range s.Cohorts {
		if err := s.Cohorts[i].validate(s.DurationMS); err != nil {
			return fmt.Errorf("workload: spec %s cohort %d: %w", s.Name, i, err)
		}
	}
	return nil
}

func (sv *ServiceSpec) validate(durMS float64) error {
	if sv.Service < 0 {
		return fmt.Errorf("negative service index %d", sv.Service)
	}
	if len(sv.Phases) == 0 {
		return fmt.Errorf("no phases")
	}
	if err := sv.Process.validate(); err != nil {
		return err
	}
	for i := range sv.Phases {
		if err := sv.Phases[i].validate(durMS); err != nil {
			return fmt.Errorf("phase %d: %w", i, err)
		}
	}
	return nil
}

func (p *PhaseSpec) validate(durMS float64) error {
	end := p.EndMS
	if end == 0 {
		end = durMS
	}
	if !(p.StartMS >= 0) || !(end > p.StartMS) {
		return fmt.Errorf("%s window [%v, %v) is not a forward interval", p.Kind, p.StartMS, end)
	}
	if p.QPS < 0 {
		return fmt.Errorf("%s qps %v negative", p.Kind, p.QPS)
	}
	switch p.Kind {
	case PhaseConstant:
		if p.QPS == 0 {
			return fmt.Errorf("constant phase with zero qps does nothing")
		}
	case PhaseRamp:
		if p.ToQPS < 0 {
			return fmt.Errorf("ramp to_qps %v negative", p.ToQPS)
		}
		if p.QPS == 0 && p.ToQPS == 0 {
			return fmt.Errorf("ramp from 0 to 0 does nothing")
		}
	case PhaseSine:
		if p.QPS == 0 {
			return fmt.Errorf("sine phase with zero mean qps")
		}
		if p.Amplitude < 0 || p.Amplitude > 1 {
			return fmt.Errorf("sine amplitude %v outside [0, 1]", p.Amplitude)
		}
		if p.PeriodMS < 0 {
			return fmt.Errorf("sine period_ms %v negative", p.PeriodMS)
		}
	case PhaseStep:
		if p.ToQPS < 0 {
			return fmt.Errorf("step to_qps %v negative", p.ToQPS)
		}
		if p.AtMS != 0 && (p.AtMS <= p.StartMS || p.AtMS >= end) {
			return fmt.Errorf("step at_ms %v outside (%v, %v)", p.AtMS, p.StartMS, end)
		}
	case PhaseFlash:
		if !(p.PeakQPS > 0) {
			return fmt.Errorf("flash peak_qps %v must be positive", p.PeakQPS)
		}
		if p.PeakQPS < p.QPS {
			return fmt.Errorf("flash peak_qps %v below baseline %v", p.PeakQPS, p.QPS)
		}
		if !(p.PeakStartMS >= p.StartMS) || !(p.PeakEndMS > p.PeakStartMS) || !(p.PeakEndMS <= end) {
			return fmt.Errorf("flash peak [%v, %v) outside phase [%v, %v)",
				p.PeakStartMS, p.PeakEndMS, p.StartMS, end)
		}
		if p.RampMS < 0 {
			return fmt.Errorf("flash ramp_ms %v negative", p.RampMS)
		}
	default:
		return fmt.Errorf("unknown phase kind %q", p.Kind)
	}
	return nil
}

func (pr *ProcessSpec) validate() error {
	switch pr.Kind {
	case "", ProcPoisson:
	case ProcGamma:
		if !(pr.Shape > 0) {
			return fmt.Errorf("gamma process needs shape > 0, got %v", pr.Shape)
		}
	case ProcPareto:
		if !(pr.Alpha > 1) {
			return fmt.Errorf("pareto process needs alpha > 1 (finite mean), got %v", pr.Alpha)
		}
	case ProcOnOff:
		if !(pr.OnMS > 0) || !(pr.OffMS > 0) {
			return fmt.Errorf("onoff process needs positive on_ms and off_ms, got %v/%v", pr.OnMS, pr.OffMS)
		}
		if pr.OffFactor < 0 || pr.OffFactor >= 1 {
			return fmt.Errorf("onoff off_factor %v outside [0, 1)", pr.OffFactor)
		}
	default:
		return fmt.Errorf("unknown process kind %q", pr.Kind)
	}
	return nil
}

func (c *CohortSpec) validate(durMS float64) error {
	if c.Service < 0 {
		return fmt.Errorf("negative service index %d", c.Service)
	}
	if c.Clients <= 0 {
		return fmt.Errorf("cohort needs clients > 0, got %d", c.Clients)
	}
	if c.Clients > maxCohortClients {
		return fmt.Errorf("cohort of %d clients exceeds the supported %d", c.Clients, maxCohortClients)
	}
	if c.ServiceMS < 0 {
		return fmt.Errorf("service_ms %v negative", c.ServiceMS)
	}
	end := c.EndMS
	if end == 0 {
		end = durMS
	}
	if !(c.StartMS >= 0) || !(end > c.StartMS) {
		return fmt.Errorf("cohort window [%v, %v) is not a forward interval", c.StartMS, end)
	}
	return c.Think.validate()
}

// Validate checks the think spec standalone — clients building one outside a
// cohort (e.g. the loadgen CLI's closed-loop flags) use it directly.
func (t *ThinkSpec) Validate() error { return t.validate() }

func (t *ThinkSpec) validate() error {
	if !(t.MeanMS > 0) {
		return fmt.Errorf("think mean_ms %v must be positive", t.MeanMS)
	}
	switch t.Kind {
	case "", ThinkExp, ThinkConstant:
	case ThinkLogNormal:
		if t.Sigma < 0 {
			return fmt.Errorf("think sigma %v negative", t.Sigma)
		}
	case ThinkPareto:
		if !(t.Alpha > 1) {
			return fmt.Errorf("think pareto alpha must exceed 1, got %v", t.Alpha)
		}
	default:
		return fmt.Errorf("unknown think kind %q", t.Kind)
	}
	return nil
}

// Sampler compiles the think spec into a draw function over a client's PRNG.
// The spec must have passed validation.
func (t ThinkSpec) Sampler() func(*PRNG) float64 {
	mean := t.MeanMS
	switch t.Kind {
	case ThinkConstant:
		return func(*PRNG) float64 { return mean }
	case ThinkLogNormal:
		sigma := t.Sigma
		if sigma == 0 {
			sigma = 1
		}
		return func(r *PRNG) float64 { return r.LogNormal(mean, sigma) }
	case ThinkPareto:
		alpha := t.Alpha
		return func(r *PRNG) float64 { return mean * r.Pareto(alpha) }
	default: // "" or ThinkExp
		return func(r *PRNG) float64 { return mean * r.Exp() }
	}
}
