package workload

import (
	"bytes"
	"math"
	"reflect"
	"strings"
	"testing"

	"abacus/internal/dnn"
	"abacus/internal/trace"
)

var twoModels = []dnn.ModelID{dnn.ResNet152, dnn.Bert}

func mustBind(t *testing.T, s *Spec) *Compiled {
	t.Helper()
	c, err := s.Bind(twoModels, 42)
	if err != nil {
		t.Fatalf("Bind: %v", err)
	}
	return c
}

// specKinds enumerates one spec per phase kind × process kind plus cohort
// and mixed shapes — the table the prefix law and determinism tests sweep.
func specKinds() map[string]*Spec {
	specs := map[string]*Spec{}
	phases := map[string]PhaseSpec{
		"constant": {Kind: PhaseConstant, QPS: 40},
		"ramp":     {Kind: PhaseRamp, QPS: 10, ToQPS: 70},
		"sine":     {Kind: PhaseSine, QPS: 40, Amplitude: 0.5, PeriodMS: 1500},
		"step":     {Kind: PhaseStep, QPS: 20, ToQPS: 60, AtMS: 2000},
		"flash":    {Kind: PhaseFlash, QPS: 10, PeakQPS: 120, PeakStartMS: 1500, PeakEndMS: 2500, RampMS: 200},
	}
	procs := map[string]ProcessSpec{
		"poisson": {},
		"gamma":   {Kind: ProcGamma, Shape: 0.4},
		"pareto":  {Kind: ProcPareto, Alpha: 1.6},
		"onoff":   {Kind: ProcOnOff, OnMS: 120, OffMS: 300, OffFactor: 0.1},
	}
	for pn, ph := range phases {
		for prn, pr := range procs {
			specs[pn+"/"+prn] = &Spec{
				Name:       pn + "-" + prn,
				Seed:       7,
				DurationMS: 4000,
				Services:   []ServiceSpec{{Service: 0, Process: pr, Phases: []PhaseSpec{ph}}},
			}
		}
	}
	specs["cohort"] = &Spec{
		Name:       "cohort",
		Seed:       7,
		DurationMS: 4000,
		Cohorts: []CohortSpec{{
			Service: 1, Clients: 50,
			Think:     ThinkSpec{Kind: ThinkLogNormal, MeanMS: 400, Sigma: 0.8},
			ServiceMS: 60,
		}},
	}
	specs["mixed"] = &Spec{
		Name:       "mixed",
		Seed:       7,
		DurationMS: 4000,
		Services: []ServiceSpec{
			{Service: 0, Phases: []PhaseSpec{
				{Kind: PhaseSine, QPS: 25, Amplitude: 0.4, PeriodMS: 2000},
				{Kind: PhaseFlash, QPS: 0, PeakQPS: 80, StartMS: 1000, EndMS: 3000,
					PeakStartMS: 1800, PeakEndMS: 2200, RampMS: 150},
			}},
			{Service: 1, Process: ProcessSpec{Kind: ProcGamma, Shape: 2.5},
				Phases: []PhaseSpec{{Kind: PhaseRamp, QPS: 5, ToQPS: 45}}},
		},
		Cohorts: []CohortSpec{{
			Service: 0, Clients: 20, Think: ThinkSpec{MeanMS: 500}, ServiceMS: 40,
		}},
	}
	return specs
}

// TestPrefixLaw is the generic lazy/materialized equivalence law: for every
// spec kind, the Source's first k arrivals are byte-identical to the first k
// entries of Materialize.
func TestPrefixLaw(t *testing.T) {
	for name, spec := range specKinds() {
		t.Run(name, func(t *testing.T) {
			c := mustBind(t, spec)
			all := c.Materialize()
			if len(all) == 0 {
				t.Fatal("spec produced no arrivals")
			}
			for _, k := range []int{1, 7, len(all) / 2, len(all)} {
				got := trace.Collect(c.Source(), k)
				if !reflect.DeepEqual(got, all[:k]) {
					t.Fatalf("first %d of Source differ from Materialize prefix", k)
				}
			}
			// The stream ends exactly where the slice does.
			src := c.Source()
			for range all {
				if _, ok := src.Next(); !ok {
					t.Fatal("source ended early")
				}
			}
			if a, ok := src.Next(); ok {
				t.Fatalf("source yielded extra arrival at %v", a.Time)
			}
		})
	}
}

// TestArrivalInvariants checks every generated arrival is inside the
// horizon, time-sorted, with inputs the bound models actually serve.
func TestArrivalInvariants(t *testing.T) {
	for name, spec := range specKinds() {
		t.Run(name, func(t *testing.T) {
			c := mustBind(t, spec)
			prev := 0.0
			for i, a := range c.Materialize() {
				if a.Time < prev || a.Time >= spec.DurationMS {
					t.Fatalf("arrival %d time %v outside sorted [0, %v)", i, a.Time, spec.DurationMS)
				}
				prev = a.Time
				if a.Service < 0 || a.Service >= len(twoModels) {
					t.Fatalf("arrival %d service %d out of range", i, a.Service)
				}
				m := dnn.Get(twoModels[a.Service])
				if a.Input.Batch < m.MinBatch || a.Input.Batch > m.MaxBatch {
					t.Fatalf("arrival %d batch %d outside [%d, %d]", i, a.Input.Batch, m.MinBatch, m.MaxBatch)
				}
				if m.IsSequence() == (a.Input.SeqLen == 0) {
					t.Fatalf("arrival %d seqlen %d inconsistent with model %s", i, a.Input.SeqLen, m.Name)
				}
			}
		})
	}
}

// TestDeterminism: same spec, same seed → identical arrivals; different
// seed → different arrivals.
func TestDeterminism(t *testing.T) {
	for name, spec := range specKinds() {
		t.Run(name, func(t *testing.T) {
			a := mustBind(t, spec).Materialize()
			b := mustBind(t, spec).Materialize()
			if !reflect.DeepEqual(a, b) {
				t.Fatal("same seed produced different arrivals")
			}
			reseeded := *spec
			reseeded.Seed = spec.Seed + 1
			c := mustBind(t, &reseeded).Materialize()
			if reflect.DeepEqual(a, c) {
				t.Fatal("different seed produced identical arrivals")
			}
		})
	}
}

// TestStreamIndependence is the knob-orthogonality contract: adding a
// service to a spec must not perturb the arrivals of the services already
// there.
func TestStreamIndependence(t *testing.T) {
	one := &Spec{
		Name: "one", Seed: 5, DurationMS: 3000,
		Services: []ServiceSpec{{Service: 0, Phases: []PhaseSpec{{Kind: PhaseConstant, QPS: 30}}}},
	}
	two := &Spec{
		Name: "two", Seed: 5, DurationMS: 3000,
		Services: []ServiceSpec{
			{Service: 0, Phases: []PhaseSpec{{Kind: PhaseConstant, QPS: 30}}},
			{Service: 1, Process: ProcessSpec{Kind: ProcPareto, Alpha: 2},
				Phases: []PhaseSpec{{Kind: PhaseConstant, QPS: 50}}},
		},
	}
	base := mustBind(t, one).Materialize()
	var svc0 []trace.Arrival
	for _, a := range mustBind(t, two).Materialize() {
		if a.Service == 0 {
			svc0 = append(svc0, a)
		}
	}
	if !reflect.DeepEqual(base, svc0) {
		t.Fatal("adding service 1 perturbed service 0's arrivals")
	}
}

// TestMeanRate checks the time-rescaled generator hits the phase envelope's
// mean for every process kind (the renewal gaps are unit-mean, so counts
// must match ∫r dt within sampling noise).
func TestMeanRate(t *testing.T) {
	for _, proc := range []ProcessSpec{
		{},
		{Kind: ProcGamma, Shape: 0.4},
		{Kind: ProcGamma, Shape: 3},
		{Kind: ProcPareto, Alpha: 1.8},
		{Kind: ProcOnOff, OnMS: 150, OffMS: 350, OffFactor: 0.2},
	} {
		name := proc.Kind
		if name == "" {
			name = "poisson"
		}
		t.Run(name, func(t *testing.T) {
			spec := &Spec{
				Name: "rate", Seed: 11, DurationMS: 120_000,
				Services: []ServiceSpec{{Service: 0, Process: proc,
					Phases: []PhaseSpec{{Kind: PhaseConstant, QPS: 50}}}},
			}
			got := float64(len(mustBind(t, spec).Materialize())) / (spec.DurationMS / 1000)
			if math.Abs(got-50) > 5 {
				t.Fatalf("mean rate %.1f qps, want 50±5", got)
			}
		})
	}
}

// TestRampShape checks time-varying envelopes actually vary: a 0→60 ramp
// must put far more arrivals in the last quarter than the first.
func TestRampShape(t *testing.T) {
	spec := &Spec{
		Name: "rampshape", Seed: 3, DurationMS: 20_000,
		Services: []ServiceSpec{{Service: 0,
			Phases: []PhaseSpec{{Kind: PhaseRamp, QPS: 0, ToQPS: 60}}}},
	}
	var first, last int
	for _, a := range mustBind(t, spec).Materialize() {
		switch {
		case a.Time < 5000:
			first++
		case a.Time >= 15_000:
			last++
		}
	}
	if last < 4*first {
		t.Fatalf("ramp not rising: %d arrivals in first quarter, %d in last", first, last)
	}
}

// TestFlashShape checks the flash phase surges: peak-window rate must dwarf
// the baseline.
func TestFlashShape(t *testing.T) {
	spec := &Spec{
		Name: "flashshape", Seed: 3, DurationMS: 10_000,
		Services: []ServiceSpec{{Service: 0, Phases: []PhaseSpec{{
			Kind: PhaseFlash, QPS: 10, PeakQPS: 200,
			PeakStartMS: 4000, PeakEndMS: 6000, RampMS: 300,
		}}}},
	}
	var peak, off int
	for _, a := range mustBind(t, spec).Materialize() {
		if a.Time >= 4000 && a.Time < 6000 {
			peak++
		} else if a.Time < 3000 {
			off++
		}
	}
	peakRate := float64(peak) / 2 // per second
	offRate := float64(off) / 3
	if peakRate < 10*offRate {
		t.Fatalf("flash peak %.0f qps vs baseline %.0f qps: surge missing", peakRate, offRate)
	}
}

// TestOnOffBurstiness: the MMPP modulator must make per-100ms counts far
// more variable than Poisson at the same mean (index of dispersion ≫ 1).
func TestOnOffBurstiness(t *testing.T) {
	dispersion := func(proc ProcessSpec) float64 {
		spec := &Spec{
			Name: "disp", Seed: 9, DurationMS: 60_000,
			Services: []ServiceSpec{{Service: 0, Process: proc,
				Phases: []PhaseSpec{{Kind: PhaseConstant, QPS: 80}}}},
		}
		counts := make([]float64, 600)
		for _, a := range mustBind(t, spec).Materialize() {
			counts[int(a.Time/100)]++
		}
		var mean, varr float64
		for _, c := range counts {
			mean += c
		}
		mean /= float64(len(counts))
		for _, c := range counts {
			varr += (c - mean) * (c - mean)
		}
		varr /= float64(len(counts))
		return varr / mean
	}
	poisson := dispersion(ProcessSpec{})
	bursty := dispersion(ProcessSpec{Kind: ProcOnOff, OnMS: 200, OffMS: 600})
	if poisson > 2 {
		t.Fatalf("poisson dispersion %.2f, want ≈1", poisson)
	}
	if bursty < 3*poisson {
		t.Fatalf("onoff dispersion %.2f not much above poisson %.2f", bursty, poisson)
	}
}

// TestCohortClosedLoop checks cohort load self-limits: a population of C
// clients can never exceed C in-flight cycles, so offered rate tops out at
// C/(think+service) regardless of how small think gets drawn.
func TestCohortClosedLoop(t *testing.T) {
	spec := &Spec{
		Name: "closed", Seed: 13, DurationMS: 30_000,
		Cohorts: []CohortSpec{{
			Service: 0, Clients: 40,
			Think:     ThinkSpec{Kind: ThinkConstant, MeanMS: 100},
			ServiceMS: 100,
		}},
	}
	got := mustBind(t, spec).Materialize()
	// Constant think: each client fires exactly every 200 ms after its
	// offset, so the rate is exactly 200 qps.
	rate := float64(len(got)) / 30
	if math.Abs(rate-200) > 10 {
		t.Fatalf("closed-loop rate %.1f qps, want 200±10", rate)
	}
	// Per-client gap must be exactly think+service.
	for i := 1; i < len(got); i++ {
		if got[i].Time < got[i-1].Time {
			t.Fatalf("cohort arrivals unsorted at %d", i)
		}
	}
}

// TestCohortSeedPerClient: client streams derive from (cohort, client)
// index, so enlarging the population leaves existing clients' schedules
// untouched.
func TestCohortSeedPerClient(t *testing.T) {
	build := func(clients int) []trace.Arrival {
		spec := &Spec{
			Name: "grow", Seed: 21, DurationMS: 5000,
			Cohorts: []CohortSpec{{
				Service: 0, Clients: clients,
				Think: ThinkSpec{MeanMS: 300}, ServiceMS: 50,
			}},
		}
		return mustBind(t, spec).Materialize()
	}
	small, big := build(5), build(6)
	// Every arrival of the 5-client run must appear in the 6-client run
	// (the extra client only adds arrivals).
	idx := 0
	for _, a := range small {
		found := false
		for ; idx < len(big); idx++ {
			if big[idx] == a {
				found = true
				idx++
				break
			}
		}
		if !found {
			t.Fatalf("arrival %+v from 5-client cohort missing after growing to 6", a)
		}
	}
}

// TestSummary sanity-checks the preflight digest against materialized counts.
func TestSummary(t *testing.T) {
	spec := &Spec{
		Name: "sum", Seed: 17, DurationMS: 30_000,
		Services: []ServiceSpec{
			{Service: 0, Phases: []PhaseSpec{{Kind: PhaseConstant, QPS: 40}}},
		},
		Cohorts: []CohortSpec{{
			Service: 1, Clients: 30,
			Think: ThinkSpec{Kind: ThinkConstant, MeanMS: 200}, ServiceMS: 100,
		}},
	}
	c := mustBind(t, spec)
	sum := c.Summary()
	if len(sum) != 2 {
		t.Fatalf("summary has %d services, want 2", len(sum))
	}
	if sum[0].Service != 0 || math.Abs(sum[0].MeanQPS-40) > 0.5 || sum[0].Model != "Res152" {
		t.Fatalf("service 0 summary %+v, want mean 40 qps of Res152", sum[0])
	}
	if sum[1].Service != 1 || math.Abs(sum[1].MeanQPS-100) > 0.5 {
		t.Fatalf("service 1 summary %+v, want cohort mean 100 qps", sum[1])
	}
	counts := map[int]int{}
	for _, a := range c.Materialize() {
		counts[a.Service]++
	}
	for _, s := range sum {
		got := float64(counts[s.Service]) / 30
		if math.Abs(got-s.MeanQPS) > 0.15*s.MeanQPS {
			t.Fatalf("service %d materialized %.1f qps vs summary %.1f", s.Service, got, s.MeanQPS)
		}
	}
}

func TestBindRejects(t *testing.T) {
	cases := map[string]*Spec{
		"service-out-of-range": {Name: "x", DurationMS: 1000,
			Services: []ServiceSpec{{Service: 2, Phases: []PhaseSpec{{Kind: PhaseConstant, QPS: 1}}}}},
		"model-mismatch": {Name: "x", DurationMS: 1000,
			Services: []ServiceSpec{{Service: 0, Model: "VGG16", Phases: []PhaseSpec{{Kind: PhaseConstant, QPS: 1}}}}},
		"batch-out-of-envelope": {Name: "x", DurationMS: 1000,
			Services: []ServiceSpec{{Service: 0, Input: &InputSpec{Batch: 64},
				Phases: []PhaseSpec{{Kind: PhaseConstant, QPS: 1}}}}},
		"seqlen-on-cv-model": {Name: "x", DurationMS: 1000,
			Services: []ServiceSpec{{Service: 0, Input: &InputSpec{Batch: 8, SeqLen: 16},
				Phases: []PhaseSpec{{Kind: PhaseConstant, QPS: 1}}}}},
		"seqlen-not-served": {Name: "x", DurationMS: 1000,
			Services: []ServiceSpec{{Service: 1, Input: &InputSpec{Batch: 8, SeqLen: 7},
				Phases: []PhaseSpec{{Kind: PhaseConstant, QPS: 1}}}}},
		"cohort-service-out-of-range": {Name: "x", DurationMS: 1000,
			Cohorts: []CohortSpec{{Service: 9, Clients: 3, Think: ThinkSpec{MeanMS: 10}}}},
	}
	for name, spec := range cases {
		t.Run(name, func(t *testing.T) {
			if _, err := spec.Bind(twoModels, 1); err == nil {
				t.Fatal("Bind accepted an invalid deployment binding")
			}
		})
	}
}

func TestValidateRejects(t *testing.T) {
	base := func() *Spec {
		return &Spec{Name: "v", DurationMS: 1000,
			Services: []ServiceSpec{{Service: 0, Phases: []PhaseSpec{{Kind: PhaseConstant, QPS: 5}}}}}
	}
	cases := map[string]func(*Spec){
		"no-name":       func(s *Spec) { s.Name = "" },
		"zero-duration": func(s *Spec) { s.DurationMS = 0 },
		"empty":         func(s *Spec) { s.Services = nil },
		"no-phases":     func(s *Spec) { s.Services[0].Phases = nil },
		"bad-kind":      func(s *Spec) { s.Services[0].Phases[0].Kind = "spike" },
		"window-backwards": func(s *Spec) {
			s.Services[0].Phases[0].StartMS = 900
			s.Services[0].Phases[0].EndMS = 100
		},
		"gamma-no-shape": func(s *Spec) { s.Services[0].Process = ProcessSpec{Kind: ProcGamma} },
		"pareto-alpha-1": func(s *Spec) { s.Services[0].Process = ProcessSpec{Kind: ProcPareto, Alpha: 1} },
		"onoff-no-durations": func(s *Spec) {
			s.Services[0].Process = ProcessSpec{Kind: ProcOnOff, OffFactor: 0.5}
		},
		"flash-peak-outside": func(s *Spec) {
			s.Services[0].Phases[0] = PhaseSpec{Kind: PhaseFlash, QPS: 1, PeakQPS: 10,
				PeakStartMS: 800, PeakEndMS: 1200}
		},
		"sine-amplitude": func(s *Spec) {
			s.Services[0].Phases[0] = PhaseSpec{Kind: PhaseSine, QPS: 5, Amplitude: 1.5}
		},
	}
	for name, mutate := range cases {
		t.Run(name, func(t *testing.T) {
			s := base()
			mutate(s)
			if err := s.Validate(); err == nil {
				t.Fatal("Validate accepted a bad spec")
			}
		})
	}
}

func TestParseJSON(t *testing.T) {
	src := `{
		"name": "demo", "seed": 4, "duration_ms": 2000,
		"services": [
			{"service": 0, "process": {"kind": "gamma", "shape": 0.5},
			 "phases": [{"kind": "constant", "qps": 20}]}
		]
	}`
	s, err := Parse([]byte(src))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if s.Name != "demo" || s.Services[0].Process.Shape != 0.5 {
		t.Fatalf("parsed %+v", s)
	}
	if _, err := Parse([]byte(`{"name": "x", "duration_ms": 100, "bogus": 1}`)); err == nil {
		t.Fatal("Parse accepted unknown field")
	}
}

func TestParseYAMLSpec(t *testing.T) {
	src := `
# demo workload
name: demo
seed: 4
duration_ms: 2000
services:
  - service: 0
    process:
      kind: gamma
      shape: 0.5
    phases:
      - kind: constant
        qps: 20
cohorts:
  - service: 1
    clients: 10
    think:
      kind: lognormal
      mean_ms: 250
`
	s, err := Parse([]byte(src))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	js, err := Parse([]byte(`{
		"name": "demo", "seed": 4, "duration_ms": 2000,
		"services": [{"service": 0, "process": {"kind": "gamma", "shape": 0.5},
			"phases": [{"kind": "constant", "qps": 20}]}],
		"cohorts": [{"service": 1, "clients": 10,
			"think": {"kind": "lognormal", "mean_ms": 250}}]
	}`))
	if err != nil {
		t.Fatalf("Parse JSON twin: %v", err)
	}
	if !reflect.DeepEqual(s, js) {
		t.Fatalf("YAML and JSON twins parse differently:\n%+v\n%+v", s, js)
	}
	// Byte-identical arrivals regardless of syntax.
	a, _ := s.Bind(twoModels, 0)
	b, _ := js.Bind(twoModels, 0)
	if !reflect.DeepEqual(a.Materialize(), b.Materialize()) {
		t.Fatal("YAML and JSON twins generate different arrivals")
	}
}

func TestParseYAMLErrors(t *testing.T) {
	cases := map[string]string{
		"tab":         "name: x\n\tseed: 1",
		"flow-style":  "name: x\nservices: [1, 2]",
		"unknown-key": "name: x\nduration_ms: 100\nbogus: 1",
		"bad-indent":  "name: x\n   seed: 1\n seed2: 2",
	}
	for name, src := range cases {
		t.Run(name, func(t *testing.T) {
			if _, err := Parse([]byte(src)); err == nil {
				t.Fatalf("Parse accepted %q", src)
			}
		})
	}
}

func TestTraceV2RoundTrip(t *testing.T) {
	for name, spec := range specKinds() {
		t.Run(name, func(t *testing.T) {
			c := mustBind(t, spec)
			arrivals := c.Materialize()
			meta := Meta{Name: spec.Name, Seed: spec.Seed, DurationMS: spec.DurationMS, Services: len(twoModels)}

			var buf1 bytes.Buffer
			if err := WriteTrace(&buf1, meta, arrivals); err != nil {
				t.Fatalf("WriteTrace: %v", err)
			}
			if !IsTraceV2(buf1.Bytes()) {
				t.Fatal("written trace fails the sniff")
			}
			gotMeta, gotArrivals, err := ReadTrace(bytes.NewReader(buf1.Bytes()))
			if err != nil {
				t.Fatalf("ReadTrace: %v", err)
			}
			if gotMeta != meta {
				t.Fatalf("meta round-trip %+v != %+v", gotMeta, meta)
			}
			if !reflect.DeepEqual(gotArrivals, arrivals) {
				t.Fatal("arrivals not preserved")
			}
			var buf2 bytes.Buffer
			if err := WriteTrace(&buf2, gotMeta, gotArrivals); err != nil {
				t.Fatalf("re-WriteTrace: %v", err)
			}
			if !bytes.Equal(buf1.Bytes(), buf2.Bytes()) {
				t.Fatal("tracev2 round trip is not byte-identical")
			}
		})
	}
}

func TestTraceV2RejectsCorruption(t *testing.T) {
	c := mustBind(t, specKinds()["constant/poisson"])
	meta := Meta{Name: "x", Seed: 7, DurationMS: 4000, Services: 2}
	var buf bytes.Buffer
	if err := WriteTrace(&buf, meta, c.Materialize()); err != nil {
		t.Fatalf("WriteTrace: %v", err)
	}
	good := buf.String()

	mutations := map[string]string{
		"flipped-row":  strings.Replace(good, ",0,", ",1,", 1),
		"truncated":    good[:len(good)-40],
		"no-magic":     strings.TrimPrefix(good, tracev2Magic+"\n"),
		"edited-meta":  strings.Replace(good, "seed=7", "seed=8", 1),
		"bad-checksum": good[:len(good)-17] + "0000000000000000\n",
	}
	for name, bad := range mutations {
		t.Run(name, func(t *testing.T) {
			if _, _, err := ReadTrace(strings.NewReader(bad)); err == nil {
				t.Fatal("ReadTrace accepted a corrupted file")
			}
		})
	}
}

func TestTraceV2NameEscaping(t *testing.T) {
	meta := Meta{Name: "spaces & =signs", Seed: 1, DurationMS: 100, Services: 1}
	arr := []trace.Arrival{{Time: 1.5, Service: 0, Input: dnn.Input{Batch: 8}}}
	var buf bytes.Buffer
	if err := WriteTrace(&buf, meta, arr); err != nil {
		t.Fatalf("WriteTrace: %v", err)
	}
	got, _, err := ReadTrace(&buf)
	if err != nil {
		t.Fatalf("ReadTrace: %v", err)
	}
	if got.Name != meta.Name {
		t.Fatalf("name round-trip %q != %q", got.Name, meta.Name)
	}
}

func TestSubSeedIndependence(t *testing.T) {
	seen := map[uint64]bool{}
	for svc := uint64(0); svc < 100; svc++ {
		for _, salt := range []uint64{saltService, saltMod, saltCohort} {
			s := SubSeed(42, salt, svc)
			if seen[s] {
				t.Fatalf("SubSeed collision at salt %#x svc %d", salt, svc)
			}
			seen[s] = true
		}
	}
}

func TestPRNGDistributions(t *testing.T) {
	const n = 200_000
	mean := func(draw func(*PRNG) float64) float64 {
		r := NewPRNG(99)
		var sum float64
		for i := 0; i < n; i++ {
			sum += draw(r)
		}
		return sum / n
	}
	cases := map[string]func(*PRNG) float64{
		"exp":       func(r *PRNG) float64 { return r.Exp() },
		"gamma0.3":  func(r *PRNG) float64 { return r.Gamma(0.3) / 0.3 },
		"gamma4":    func(r *PRNG) float64 { return r.Gamma(4) / 4 },
		"pareto1.5": func(r *PRNG) float64 { return r.Pareto(1.5) },
		"lognormal": func(r *PRNG) float64 { return r.LogNormal(1, 1) },
	}
	for name, draw := range cases {
		tol := 0.05
		if strings.HasPrefix(name, "pareto") {
			tol = 0.25 // infinite-variance tail converges slowly
		}
		if m := mean(draw); math.Abs(m-1) > tol {
			t.Errorf("%s mean %.3f, want 1±%.2f", name, m, tol)
		}
	}
}
