// Deterministic randomness for the workload engine. Every arrival stream —
// per-service renewal processes, on/off modulators, cohort clients — owns an
// independent PRNG derived from the spec seed by splitmix64 mixing, so
// changing one knob (or one client) never perturbs another stream's draws.
// The state is a single uint64, which is what makes million-client cohorts
// affordable: math/rand's default source carries ~5 KB per instance, PRNG
// carries 8 bytes.
package workload

import "math"

// PRNG is a splitmix64 sequence generator: tiny state, full 64-bit output,
// and statistically solid for workload synthesis. The zero value is a valid
// generator (stream of seed 0); prefer NewPRNG.
type PRNG struct {
	state uint64
}

// NewPRNG returns a generator for the given seed.
func NewPRNG(seed uint64) *PRNG { return &PRNG{state: seed} }

// next advances the splitmix64 sequence.
func (r *PRNG) next() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Uint64 returns the next raw 64-bit draw.
func (r *PRNG) Uint64() uint64 { return r.next() }

// Float64 returns a uniform draw in [0, 1).
func (r *PRNG) Float64() float64 { return float64(r.next()>>11) / (1 << 53) }

// Intn returns a uniform draw in [0, n).
func (r *PRNG) Intn(n int) int {
	if n <= 0 {
		panic("workload: Intn with non-positive n")
	}
	return int(r.next() % uint64(n))
}

// Exp returns an exponential draw with mean 1.
func (r *PRNG) Exp() float64 {
	// 1-Float64 keeps the argument in (0, 1] so the log is finite.
	return -math.Log(1 - r.Float64())
}

// Norm returns a standard normal draw (Box–Muller, cosine branch only, so
// each call consumes exactly two uniforms and the stream is stateless).
func (r *PRNG) Norm() float64 {
	u1 := 1 - r.Float64()
	u2 := r.Float64()
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}

// Gamma returns a draw from Gamma(shape, scale=1) via Marsaglia–Tsang
// squeeze, boosted for shape < 1.
func (r *PRNG) Gamma(shape float64) float64 {
	if shape <= 0 {
		panic("workload: non-positive gamma shape")
	}
	if shape < 1 {
		// Gamma(k) = Gamma(k+1) · U^(1/k).
		u := 1 - r.Float64()
		return r.Gamma(shape+1) * math.Pow(u, 1/shape)
	}
	d := shape - 1.0/3.0
	c := 1 / math.Sqrt(9*d)
	for {
		x := r.Norm()
		v := 1 + c*x
		if v <= 0 {
			continue
		}
		v = v * v * v
		u := 1 - r.Float64()
		if u < 1-0.0331*x*x*x*x {
			return d * v
		}
		if math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return d * v
		}
	}
}

// Pareto returns a draw from a Pareto distribution with tail index alpha > 1
// scaled to mean 1 (xm = (alpha-1)/alpha) — the heavy-tailed gap source.
func (r *PRNG) Pareto(alpha float64) float64 {
	if alpha <= 1 {
		panic("workload: pareto alpha must exceed 1 for a finite mean")
	}
	xm := (alpha - 1) / alpha
	u := 1 - r.Float64()
	return xm / math.Pow(u, 1/alpha)
}

// LogNormal returns a draw with the given mean and log-space sigma
// (mu = ln(mean) − sigma²/2, so the arithmetic mean is exact).
func (r *PRNG) LogNormal(mean, sigma float64) float64 {
	if mean <= 0 {
		panic("workload: non-positive lognormal mean")
	}
	mu := math.Log(mean) - sigma*sigma/2
	return math.Exp(mu + sigma*r.Norm())
}

// mix64 is the splitmix64 finalizer over a single word.
func mix64(x uint64) uint64 {
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// SubSeed derives an independent stream seed from a root seed and a salt
// path (e.g. service index, cohort index, client index). Derivation is pure
// mixing, so streams never depend on the order other streams are consumed —
// the foundation of the engine's determinism contract.
func SubSeed(seed int64, salts ...uint64) uint64 {
	x := mix64(uint64(seed) ^ 0xabcd_ef01_2345_6789)
	for _, s := range salts {
		x = mix64(x ^ (s+0x9e3779b97f4a7c15)*0xbf58476d1ce4e5b9)
	}
	return x
}
