package server

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"abacus/internal/dnn"
)

// newTestServer builds a gateway, serves it from an httptest listener, and
// tears both down at cleanup.
func newTestServer(t *testing.T, cfg Config) (*Server, *Client) {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	s.Start()
	t.Cleanup(func() {
		s.Drain()
		ts.Close()
	})
	return s, NewClient(ts.URL, nil)
}

func TestNewValidatesConfig(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("empty config accepted")
	}
	if _, err := New(Config{Models: []dnn.ModelID{
		dnn.ResNet50, dnn.ResNet101, dnn.ResNet152, dnn.InceptionV3, dnn.VGG16,
	}}); err == nil {
		t.Error("five co-located models accepted")
	}
}

func TestHealthzAndStatz(t *testing.T) {
	_, c := newTestServer(t, Config{Models: []dnn.ModelID{dnn.ResNet50}, Speedup: 1000})
	ctx := context.Background()
	if err := c.Health(ctx); err != nil {
		t.Fatal(err)
	}
	st, err := c.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Services) != 1 {
		t.Fatalf("statz lists %d services, want 1", len(st.Services))
	}
	if st.Services[0].Model != "Res50" || st.Services[0].QoSMS <= 0 {
		t.Errorf("statz service entry = %+v", st.Services[0])
	}
	if st.Draining {
		t.Error("fresh gateway reports draining")
	}
}

func TestInferCompletesUnderLightLoad(t *testing.T) {
	_, c := newTestServer(t, Config{
		Models:  []dnn.ModelID{dnn.ResNet152, dnn.Bert},
		Speedup: 1000,
	})
	ctx := context.Background()
	resp, status, err := c.Infer(ctx, InferRequest{Model: "Res152", Batch: 8})
	if err != nil {
		t.Fatal(err)
	}
	if status != http.StatusOK {
		t.Fatalf("status %d, resp %+v", status, resp)
	}
	if !resp.Accepted || resp.Dropped || resp.Violated {
		t.Errorf("idle-device query outcome %+v", resp)
	}
	if resp.LatencyMS <= 0 || resp.FinishMS <= resp.ArrivalMS {
		t.Errorf("implausible timing %+v", resp)
	}
	if resp.LatencyMS > resp.DeadlineMS {
		t.Errorf("latency %v exceeds deadline %v yet not violated", resp.LatencyMS, resp.DeadlineMS)
	}

	// A sequence model requires its seqlen.
	resp, status, err = c.Infer(ctx, InferRequest{Model: "Bert", Batch: 8, SeqLen: 32})
	if err != nil || status != http.StatusOK {
		t.Fatalf("bert infer: status %d err %v resp %+v", status, err, resp)
	}
}

func TestInferRejectsBadRequests(t *testing.T) {
	_, c := newTestServer(t, Config{Models: []dnn.ModelID{dnn.ResNet50, dnn.Bert}, Speedup: 1000})
	ctx := context.Background()
	cases := []InferRequest{
		{Model: "VGG16", Batch: 8},            // not deployed
		{Model: "Res50", Batch: 0},            // batch out of range
		{Model: "Res50", Batch: 8, SeqLen: 8}, // seqlen on a CV model
		{Model: "Bert", Batch: 8, SeqLen: 7},  // seqlen not served
		{Model: "Res50", Batch: 8, DeadlineMS: -1},
	}
	for _, req := range cases {
		_, status, err := c.Infer(ctx, req)
		if err != nil {
			t.Fatalf("%+v: %v", req, err)
		}
		if status != http.StatusBadRequest {
			t.Errorf("%+v: status %d, want 400", req, status)
		}
	}
}

// TestAdmissionControlUnderSaturation drives a saturating burst with the
// oracle predictor: accepted queries must meet their deadlines (goodput ≈
// accepted count, mirroring the fig15 QoS-violation shape over HTTP) and
// rejections must be immediate 429s with a Retry-After hint.
func TestAdmissionControlUnderSaturation(t *testing.T) {
	// Speedup 1 keeps the burst concurrent in virtual time: at high speedup
	// the clock races ahead between arrivals and drains the backlog the
	// burst is meant to pile up.
	_, c := newTestServer(t, Config{
		Models:  []dnn.ModelID{dnn.ResNet152},
		Speedup: 1,
	})
	ctx := context.Background()

	const burst = 60
	type outcome struct {
		resp   *InferResponse
		status int
		wall   time.Duration
	}
	outcomes := make([]outcome, burst)
	var wg sync.WaitGroup
	for i := 0; i < burst; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			start := time.Now()
			resp, status, err := c.Infer(ctx, InferRequest{Model: "Res152", Batch: 32})
			if err != nil {
				t.Errorf("request %d: %v", i, err)
				return
			}
			outcomes[i] = outcome{resp: resp, status: status, wall: time.Since(start)}
		}(i)
	}
	wg.Wait()

	var accepted, good, violated, dropped, rejected int
	var maxRejectWall time.Duration
	for _, o := range outcomes {
		switch o.status {
		case http.StatusOK:
			accepted++
			if o.resp.Violated {
				violated++
			} else {
				good++
			}
		case http.StatusGatewayTimeout:
			accepted++
			dropped++
		case http.StatusTooManyRequests:
			rejected++
			if o.wall > maxRejectWall {
				maxRejectWall = o.wall
			}
			if o.resp.Reason != reasonDeadline && o.resp.Reason != reasonQueueFull {
				t.Errorf("reject reason %q", o.resp.Reason)
			}
		default:
			t.Errorf("unexpected status %d (%+v)", o.status, o.resp)
		}
	}
	if accepted == 0 {
		t.Fatal("saturating burst admitted nothing")
	}
	if rejected < burst/4 {
		t.Errorf("only %d/%d rejected; burst did not saturate", rejected, burst)
	}
	if violated != 0 {
		t.Errorf("%d admitted queries violated their deadline (oracle predictor)", violated)
	}
	if float64(good) < 0.9*float64(accepted) {
		t.Errorf("goodput %d !≈ accepted %d (dropped %d)", good, accepted, dropped)
	}
	// A rejection must not wait out the backlog: it only costs one admission
	// round trip. The bound is generous for loaded CI hosts.
	if maxRejectWall > 2*time.Second {
		t.Errorf("slowest rejection took %v, want immediate", maxRejectWall)
	}
}

func TestRejectionCarriesRetryAfter(t *testing.T) {
	s, c := newTestServer(t, Config{
		Models:  []dnn.ModelID{dnn.ResNet152},
		Speedup: 100,
	})
	_ = s
	ctx := context.Background()
	// An impossible deadline rejects regardless of load.
	resp, status, err := c.Infer(ctx, InferRequest{Model: "Res152", Batch: 32, DeadlineMS: 0.001})
	if err != nil {
		t.Fatal(err)
	}
	if status != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429 (resp %+v)", status, resp)
	}
	if resp.Reason != reasonDeadline {
		t.Errorf("reason %q, want %q", resp.Reason, reasonDeadline)
	}
	if resp.PredictedMS <= 0.001 {
		t.Errorf("predicted completion %v should exceed the deadline", resp.PredictedMS)
	}

	// The header itself is checked over the raw transport.
	hres, err := http.Post(c.base+"/v1/infer", "application/json",
		strings.NewReader(`{"model":"Res152","batch":32,"deadline_ms":0.001}`))
	if err != nil {
		t.Fatal(err)
	}
	defer hres.Body.Close()
	ra := hres.Header.Get("Retry-After")
	if ra == "" {
		t.Fatal("429 without Retry-After")
	}
	if sec, err := strconv.Atoi(ra); err != nil || sec < 1 {
		t.Errorf("Retry-After %q, want integer seconds >= 1", ra)
	}
}

func TestQueueBoundShedsLoad(t *testing.T) {
	// Speedup 1 with a heavy batch keeps admitted work outstanding long
	// enough for the burst to pile onto the queue bound; a huge deadline
	// keeps the deadline check from firing first.
	_, c := newTestServer(t, Config{
		Models:   []dnn.ModelID{dnn.ResNet152},
		Speedup:  1,
		QueueCap: 2,
	})
	ctx := context.Background()
	const n = 16
	var wg sync.WaitGroup
	var mu sync.Mutex
	var queueFull int
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, status, err := c.Infer(ctx, InferRequest{Model: "Res152", Batch: 32, DeadlineMS: 1e9})
			if err != nil {
				t.Error(err)
				return
			}
			if status == http.StatusTooManyRequests && resp.Reason == reasonQueueFull {
				mu.Lock()
				queueFull++
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	if queueFull == 0 {
		t.Error("no queue_full rejections with QueueCap=2 under a 16-wide burst")
	}
}

func TestMetricsEndpointValidates(t *testing.T) {
	_, c := newTestServer(t, Config{Models: []dnn.ModelID{dnn.ResNet50, dnn.InceptionV3}, Speedup: 1000})
	ctx := context.Background()
	for i := 0; i < 3; i++ {
		if _, _, err := c.Infer(ctx, InferRequest{Model: "Res50", Batch: 8}); err != nil {
			t.Fatal(err)
		}
	}
	body, err := c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidateExposition(body); err != nil {
		t.Errorf("exposition invalid: %v\n%s", err, body)
	}
	for _, want := range []string{
		"abacus_requests_total", "abacus_queries_total", "abacus_queue_depth",
		"abacus_latency_ms", "abacus_goodput_qps", "abacus_virtual_time_ms",
	} {
		if !strings.Contains(string(body), want) {
			t.Errorf("exposition missing %s", want)
		}
	}
}

// TestPredictCacheStats: the default-on memoization cache surfaces its
// counters on /statz and /metrics, records hits once signatures repeat, and
// disappears from both when disabled.
func TestPredictCacheStats(t *testing.T) {
	_, c := newTestServer(t, Config{Models: []dnn.ModelID{dnn.ResNet50}, Speedup: 1000})
	ctx := context.Background()
	for i := 0; i < 3; i++ {
		if _, _, err := c.Infer(ctx, InferRequest{Model: "Res50", Batch: 8}); err != nil {
			t.Fatal(err)
		}
	}
	st, err := c.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.PredictCache == nil {
		t.Fatal("statz missing predict_cache with the default-on cache")
	}
	if st.PredictCache.Capacity != 4096 || st.PredictCache.Misses == 0 {
		t.Errorf("predict_cache stats = %+v", st.PredictCache)
	}
	if st.PredictCache.Hits == 0 {
		t.Errorf("repeated identical queries produced no cache hits: %+v", st.PredictCache)
	}
	body, err := c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidateExposition(body); err != nil {
		t.Errorf("exposition invalid: %v", err)
	}
	for _, want := range []string{
		"abacus_predict_cache_size", "abacus_predict_cache_hits_total",
		"abacus_predict_cache_misses_total", "abacus_predict_cache_evictions_total",
	} {
		if !strings.Contains(string(body), want) {
			t.Errorf("exposition missing %s", want)
		}
	}

	_, off := newTestServer(t, Config{Models: []dnn.ModelID{dnn.ResNet50}, Speedup: 1000, PredictCache: -1})
	st, err = off.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.PredictCache != nil {
		t.Errorf("disabled cache still reports stats: %+v", st.PredictCache)
	}
	body, err = off.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(body), "abacus_predict_cache") {
		t.Error("disabled cache still renders abacus_predict_cache_* metrics")
	}
}

func TestValidateExpositionRejectsGarbage(t *testing.T) {
	cases := []string{
		"no_type_line 1\n",
		"# TYPE x counter\nx{bad-label=\"y\"} 1\n",
		"# TYPE x counter\nx notanumber\n",
		"# TYPE x flavor\nx 1\n",
		"# BOGUS x counter\n",
	}
	for _, c := range cases {
		if err := ValidateExposition([]byte(c)); err == nil {
			t.Errorf("accepted %q", c)
		}
	}
	good := "# HELP y help text\n# TYPE y summary\ny{quantile=\"0.5\"} 1.5\ny_sum 3\ny_count 2\n"
	if err := ValidateExposition([]byte(good)); err != nil {
		t.Errorf("rejected valid exposition: %v", err)
	}
}
