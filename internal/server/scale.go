// Live elastic autoscaling for the gateway: the wall-clock host of
// scaler.Controller. A control-loop goroutine observes offered QPS per
// interval and executes the controller's advice against the running fleet —
// node add (a full engine + bridge stack anchored to the gateway epoch, so
// the newcomer's virtual clock lands in lockstep with its siblings), warm-up
// (probe-trickle-only routing until the controller promotes), and graceful
// drain (unroutable → in-flight finishes → bridge retires → terminal stats
// snapshot kept under /statz retired_nodes).
//
// The router never locks: it reads an immutable elasticFleet snapshot behind
// an atomic pointer, replaced copy-on-write under scaleMu by the control
// loop. With Config.Autoscale nil none of this runs and the gateway is
// byte-identical to the fixed-fleet build.

package server

import (
	"fmt"
	"sort"
	"time"

	"abacus/internal/cluster"
	"abacus/internal/scaler"
)

// drainPoll is how often a draining node is checked for quiescence.
const drainPoll = 5 * time.Millisecond

// elasticFleet is one immutable snapshot of the elastic node set. all is
// id-indexed and append-only across snapshots; the phase slices partition
// the live nodes. Retired nodes appear only in all.
type elasticFleet struct {
	all      []*node
	active   []*node
	warming  []*node
	draining []*node
}

func (f *elasticFleet) clone() *elasticFleet {
	return &elasticFleet{
		all:      append([]*node(nil), f.all...),
		active:   append([]*node(nil), f.active...),
		warming:  append([]*node(nil), f.warming...),
		draining: append([]*node(nil), f.draining...),
	}
}

func remove(set []*node, n *node) []*node {
	out := set[:0]
	for _, m := range set {
		if m != n {
			out = append(out, m)
		}
	}
	return out
}

// nowMS is the gateway's shared virtual clock: wall time since the anchor
// epoch scaled by the pacing factor — the same discipline every node bridge
// derives its clock from.
func (s *Server) nowMS() float64 {
	return s.cfg.Speedup * float64(time.Since(s.epoch)) / float64(time.Millisecond)
}

// scaleLoop is the control loop: every controller interval (in wall terms)
// it swaps out the offered-arrival counter, lets the controller decide, and
// applies the advice. Runs until Drain.
func (s *Server) scaleLoop() {
	defer close(s.scaleDone)
	cfg := s.ctrl.Config()
	interval := time.Duration(cfg.IntervalMS / s.cfg.Speedup * float64(time.Millisecond))
	if interval <= 0 {
		interval = time.Millisecond
	}
	tick := time.NewTicker(interval)
	defer tick.Stop()
	for {
		select {
		case <-s.scaleStop:
			return
		case <-tick.C:
		}
		qps := float64(s.arrivals.Swap(0)) * 1000 / cfg.IntervalMS

		s.scaleMu.Lock()
		adv := s.ctrl.Tick(s.nowMS(), qps)
		fl := s.fleet.Load()
		next := fl.clone()
		for _, id := range adv.Promote {
			n := next.all[id]
			next.warming = remove(next.warming, n)
			next.active = append(next.active, n)
		}
		var added []*node
		for _, id := range adv.Add {
			n := s.buildNode(id)
			added = append(added, n)
			next.all = append(next.all, n)
			next.warming = append(next.warming, n)
		}
		var drains []*node
		for _, id := range adv.Drain {
			n := next.all[id]
			n.unroutable.Store(true)
			next.active = remove(next.active, n)
			next.warming = remove(next.warming, n)
			next.draining = append(next.draining, n)
			drains = append(drains, n)
		}
		s.fleet.Store(next)
		s.scaleMu.Unlock()

		// Bridges start outside the lock: an epoch in the past fast-forwards
		// the newcomer to where its siblings already are, so start order does
		// not matter.
		for _, n := range added {
			n.bridge.StartAnchored(s.epoch)
			go n.admitLoop(s)
		}
		for _, n := range drains {
			go s.completeDrain(n)
		}
	}
}

// buildNode provisions one replicated node mid-flight. The founders were
// built from the same configuration, so a failure here is a gateway bug.
func (s *Server) buildNode(id int) *node {
	global := make([]int, len(s.cfg.Models))
	for i := range global {
		global[i] = i
	}
	n, err := newNode(s.cfg, id, s.cfg.Models, global, s.onResult,
		func(evicted string) { s.routes.Delete(evicted) })
	if err != nil {
		panic(fmt.Sprintf("server: autoscale adding node %d: %v", id, err))
	}
	return n
}

// completeDrain waits for a draining node to go quiescent, then retires it:
// mailbox shut (late stragglers answer as draining and remap on retry), a
// terminal stats snapshot taken while the bridge still runs, the bridge
// flushed and stopped, and the controller told the node's lifetime is over.
// The retired node's idempotency memory dies with it — a retry of a query it
// completed re-executes on a live replica.
func (s *Server) completeDrain(n *node) {
	for {
		idle := false
		if err := n.bridge.Do(func() { idle = len(n.pending) == 0 }); err != nil {
			// A gateway-wide Drain raced us and owns shutdown now.
			return
		}
		if idle && n.mailboxIdle() {
			break
		}
		time.Sleep(drainPoll)
	}
	n.stopMailbox()
	st := s.nodeStatz(n)
	st.Phase = scaler.Retired.String()
	if _, err := n.bridge.Retire(); err != nil {
		return // gateway-wide Drain won the retirement
	}
	s.scaleMu.Lock()
	s.retiredSt = append(s.retiredSt, st)
	fl := s.fleet.Load()
	next := fl.clone()
	next.draining = remove(next.draining, n)
	s.fleet.Store(next)
	s.ctrl.Retire(n.id, s.nowMS())
	s.scaleMu.Unlock()
}

// routeElastic picks the serving node over the mutable fleet. Sticky
// RequestIDs keep landing on their owner until it drains away, at which
// point the stale pin is dropped and the query remaps to a live replica.
// Warming nodes receive only the probe trickle (every probeEvery-th
// decision per service — the same cadence that re-feeds quarantined
// replicas), so a cold node's calibration and drift trackers see real
// traffic without the router betting real load on an unwarmed stack.
func (s *Server) routeElastic(svc int, requestID string) (n *node, local int, migrated bool) {
	fl := s.fleet.Load()
	if requestID != "" {
		if v, ok := s.routes.Load(requestID); ok {
			if id := v.(int); id < len(fl.all) && !fl.all[id].unroutable.Load() {
				return fl.all[id], svc, false
			}
			// The owner drained away: drop the stale pin so this attempt and
			// future retries remap.
			s.routes.Delete(requestID)
		}
	}
	probe := s.probes[svc].Add(1)%probeEvery == 0
	cand := fl.active
	switch {
	case probe:
		// Probe turns skip both filters: warming nodes and degraded
		// replicas get their trickle.
		if len(fl.warming) > 0 {
			merged := make([]*node, 0, len(fl.active)+len(fl.warming))
			merged = append(merged, fl.active...)
			merged = append(merged, fl.warming...)
			cand = merged
		}
	case len(cand) > 1:
		healthy := make([]*node, 0, len(cand))
		for _, m := range cand {
			if !m.degraded[svc].Load() {
				healthy = append(healthy, m)
			}
		}
		// All-degraded falls back to every active replica: shedding is the
		// admitters' job, routing still balances what is left.
		if len(healthy) > 0 {
			migrated = len(healthy) < len(cand)
			cand = healthy
		}
	}
	if len(cand) == 0 {
		// No active replicas (a warming-only instant mid-scale): route to
		// warming nodes rather than nowhere.
		cand = fl.warming
	}
	pick := cluster.Pick(len(cand), func(i int) float64 { return cand[i].load() })
	return cand[pick], svc, migrated
}

// AutoscaleStatz is the /statz autoscale block: the controller's live view
// of the fleet plus its action and suppression counters.
type AutoscaleStatz struct {
	MinNodes       int     `json:"min_nodes"`
	MaxNodes       int     `json:"max_nodes"`
	IntervalMS     float64 `json:"interval_ms"`
	WarmupMS       float64 `json:"warmup_ms"`
	TargetNodes    int     `json:"target_nodes"`
	LiveNodes      int     `json:"live_nodes"`
	WarmingNodes   int     `json:"warming_nodes"`
	ActiveNodes    int     `json:"active_nodes"`
	DrainingNodes  int     `json:"draining_nodes"`
	RetiredNodes   int     `json:"retired_nodes"`
	PeakNodes      int     `json:"peak_nodes"`
	Ticks          int64   `json:"ticks"`
	ScaleOuts      int64   `json:"scale_outs"`
	ScaleIns       int64   `json:"scale_ins"`
	HeldHysteresis int64   `json:"held_hysteresis"`
	HeldCooldown   int64   `json:"held_cooldown"`
	HeldMaxNodes   int64   `json:"held_max_nodes"`
	NodeMS         float64 `json:"node_ms"`
	ForecastQPS    float64 `json:"forecast_qps"`
	LastReason     string  `json:"last_reason,omitempty"`
}

// autoscaleStatz snapshots the controller and the live fleet under scaleMu.
// It returns the live nodes (sorted by id) with their phases, the autoscale
// block, and a copy of the terminal snapshots of retired nodes.
func (s *Server) autoscaleStatz() (live []*node, phases []string, as *AutoscaleStatz, retired []NodeStatz) {
	s.scaleMu.Lock()
	defer s.scaleMu.Unlock()
	fl := s.fleet.Load()
	phase := make(map[*node]string, len(fl.all))
	for _, n := range fl.active {
		phase[n] = scaler.Active.String()
	}
	for _, n := range fl.warming {
		phase[n] = scaler.Warming.String()
	}
	for _, n := range fl.draining {
		phase[n] = scaler.Draining.String()
	}
	for _, n := range fl.all {
		if _, ok := phase[n]; ok {
			live = append(live, n)
		}
	}
	sort.Slice(live, func(i, j int) bool { return live[i].id < live[j].id })
	phases = make([]string, len(live))
	for i, n := range live {
		phases[i] = phase[n]
	}

	snap := s.ctrl.Snapshot(s.nowMS())
	cfg := s.ctrl.Config()
	as = &AutoscaleStatz{
		MinNodes:       cfg.MinNodes,
		MaxNodes:       cfg.MaxNodes,
		IntervalMS:     cfg.IntervalMS,
		WarmupMS:       cfg.WarmupMS,
		TargetNodes:    snap.Target,
		LiveNodes:      snap.Live,
		WarmingNodes:   snap.Warming,
		ActiveNodes:    snap.Active,
		DrainingNodes:  snap.Draining,
		RetiredNodes:   snap.Retired,
		PeakNodes:      snap.Peak,
		Ticks:          snap.Ticks,
		ScaleOuts:      snap.ScaleOuts,
		ScaleIns:       snap.ScaleIns,
		HeldHysteresis: snap.Counters.HeldHysteresis,
		HeldCooldown:   snap.Counters.HeldCooldown,
		HeldMaxNodes:   snap.Counters.HeldMaxNodes,
		NodeMS:         snap.NodeMS,
		ForecastQPS:    snap.Forecast,
		LastReason:     snap.Last.Reason,
	}
	retired = append([]NodeStatz(nil), s.retiredSt...)
	return live, phases, as, retired
}
