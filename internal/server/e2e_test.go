package server

import (
	"context"
	"math"
	"net"
	"testing"
	"time"

	"abacus/internal/dnn"
	"abacus/internal/trace"
)

// startGateway brings up a gateway on a loopback port and returns its client.
func startGateway(t *testing.T, cfg Config) *Client {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = s.ServeListener(ln) }()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = s.Shutdown(ctx)
	})
	c := NewClient("http://"+ln.Addr().String(), nil)
	if err := c.WaitReady(context.Background(), 5*time.Second); err != nil {
		t.Fatal(err)
	}
	return c
}

// TestEndToEndFast replays a seeded Poisson trace through the live gateway at
// high speedup and checks what doesn't need real-time pacing: near-zero
// deadline violations among admitted queries under the oracle predictor, and
// a /metrics body that parses as text exposition 0.0.4. At this speedup the
// simulator lags the compressed wall-clock schedule, so arrivals bunch into
// micro-bursts; an occasional group member with slack headroom can then land
// past its deadline (the fig15 near-zero shape), hence the small tolerance —
// the faithfully paced realtime test below asserts strict zero.
func TestEndToEndFast(t *testing.T) {
	models := []dnn.ModelID{dnn.ResNet152, dnn.InceptionV3}
	const speedup = 200
	arrivals := trace.NewGenerator(models, 7).Poisson(40, 4000)

	c := startGateway(t, Config{Models: models, Speedup: speedup})
	res, err := RunLoad(context.Background(), LoadConfig{
		Client:   c,
		Models:   models,
		Arrivals: arrivals,
		Speedup:  speedup,
	})
	if err != nil {
		t.Fatal(err)
	}
	tot := res.Total
	if tot.Errors > 0 || tot.Unavailable > 0 {
		t.Fatalf("transport trouble: %+v", tot)
	}
	if tot.Completed < len(arrivals)/2 {
		t.Fatalf("only %d/%d completed at a sub-saturation rate", tot.Completed, len(arrivals))
	}
	if limit := 1 + tot.Completed/50; tot.Violated > limit {
		t.Errorf("%d/%d admitted queries violated their deadline with the oracle predictor (limit %d)",
			tot.Violated, tot.Completed, limit)
	}
	if tot.P99MS <= 0 || tot.P50MS > tot.P99MS {
		t.Errorf("implausible percentiles p50=%v p99=%v", tot.P50MS, tot.P99MS)
	}

	body, err := c.Metrics(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidateExposition(body); err != nil {
		t.Errorf("metrics exposition invalid: %v", err)
	}
}

// TestEndToEndRealtimeMatchesOffline is the full acceptance run: the gateway
// paced at speedup=1 serves the same seeded workload the offline simulator
// predicts, and the delivered p99 must land within 15% of the offline value —
// the paper's predictability claim, measured over a real socket. Skipped in
// -short mode (it runs ~4s of wall-clock traffic).
func TestEndToEndRealtimeMatchesOffline(t *testing.T) {
	if testing.Short() {
		t.Skip("realtime pacing run skipped in -short mode")
	}
	if raceEnabled {
		t.Skip("race instrumentation makes simulation slower than real time, breaking speedup=1 pacing")
	}
	models := []dnn.ModelID{dnn.ResNet152, dnn.InceptionV3}
	// 30 QPS is well below the pair's measured Abacus capacity (~82 r/s in
	// the fig17 sweep) and below the admission controller's sequential bound
	// (~77 QPS), so the comparison runs in the stable regime. The relaxed
	// QoS factor keeps the conservative admission bound from clipping
	// Poisson bursts: live and offline then serve the identical query set.
	arrivals := trace.NewGenerator(models, 11).Poisson(30, 4000)

	c := startGateway(t, Config{Models: models, Speedup: 1, QoSFactor: 6})
	res, err := RunLoad(context.Background(), LoadConfig{
		Client:   c,
		Models:   models,
		Arrivals: arrivals,
		Speedup:  1,
	})
	if err != nil {
		t.Fatal(err)
	}
	tot := res.Total
	if tot.Errors > 0 {
		t.Fatalf("transport errors: %+v", tot)
	}
	if tot.Violated != 0 {
		t.Errorf("%d live deadline violations with the oracle predictor", tot.Violated)
	}
	if tot.Completed < len(arrivals)*9/10 {
		t.Fatalf("only %d/%d completed live at a sub-saturation rate", tot.Completed, len(arrivals))
	}

	// Replay at the gateway's own deadlines, discovered over the wire the
	// way the loadgen binary does it.
	st, err := c.Stats(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	qos := make([]float64, len(st.Services))
	for i, s := range st.Services {
		qos[i] = s.QoSMS
	}
	offline := OfflineBaseline(models, qos, arrivals, nil)
	offP99 := offline.TailLatency(-1, 99)
	if offP99 <= 0 {
		t.Fatalf("offline baseline produced p99 %v", offP99)
	}
	rel := math.Abs(tot.P99MS-offP99) / offP99
	t.Logf("live p99 %.2fms vs offline p99 %.2fms (Δ %.1f%%), completed %d/%d",
		tot.P99MS, offP99, rel*100, tot.Completed, len(arrivals))
	if rel > 0.15 {
		t.Errorf("live p99 %.2fms deviates %.1f%% from offline %.2fms (limit 15%%)",
			tot.P99MS, rel*100, offP99)
	}
}
