package server

import (
	"context"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"abacus/internal/dnn"
	"abacus/internal/realtime"
	"abacus/internal/scaler"
)

// autoscaleConfig is a gateway tuned so the lifecycle test can push the
// fleet up and watch it come back down within a few hundred wall ms:
// 10 ms wall control ticks (2000 virtual ms at speedup 200), one-tick
// warm-up, and a per-node capacity small enough that any sustained load
// demands more than the single founder.
func autoscaleConfig() Config {
	return Config{
		Models:  []dnn.ModelID{dnn.ResNet152, dnn.InceptionV3},
		Speedup: 200,
		Autoscale: &scaler.Config{
			MinNodes:    1,
			MaxNodes:    3,
			CapacityQPS: 0.5,
			IntervalMS:  2000,
			WarmupMS:    2000,
		},
	}
}

// TestGatewayAutoscaleLifecycle drives the live elastic gateway end to end:
// sustained load scales the fleet out through a warm-up window, idling
// scales it back in, and the drained node leaves a terminal snapshot behind
// instead of vanishing. Runs under -race in CI, so it doubles as the
// concurrent add/drain-vs-router race check.
func TestGatewayAutoscaleLifecycle(t *testing.T) {
	s, c := newTestServer(t, autoscaleConfig())
	ctx := context.Background()

	// Phase 1: hammer until the controller scales out and promotes.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				model := "Res152"
				if i%2 == 1 {
					model = "IncepV3"
				}
				req := InferRequest{Model: model, Batch: 4}
				if i%8 == 0 {
					req.RequestID = fmt.Sprintf("as-%d-%d", g, i)
				}
				_, _, _ = c.Infer(ctx, req)
			}
		}(g)
	}

	grown := waitForStatz(t, c, 10*time.Second, func(st *Statz) bool {
		return st.Autoscale != nil && st.Autoscale.ActiveNodes >= 2
	})
	close(stop)
	wg.Wait()
	as := grown.Autoscale
	if as.ScaleOuts == 0 || as.PeakNodes < 2 {
		t.Fatalf("scale-out never happened: %+v", as)
	}
	if as.MinNodes != 1 || as.MaxNodes != 3 {
		t.Errorf("autoscale block misreports config: %+v", as)
	}
	for _, n := range grown.Nodes {
		if n.Phase == "" {
			t.Errorf("elastic node %d has no phase", n.Node)
		}
	}

	// Phase 2: go idle; the forecast decays, cooldown expires, and the
	// newest nodes drain, finish, and retire with terminal snapshots.
	shrunk := waitForStatz(t, c, 15*time.Second, func(st *Statz) bool {
		return st.Autoscale.RetiredNodes >= 1 && st.Autoscale.LiveNodes == st.Autoscale.MinNodes
	})
	if len(shrunk.RetiredNodes) == 0 {
		t.Fatal("no terminal snapshot for the retired node")
	}
	for _, n := range shrunk.RetiredNodes {
		if n.Phase != "retired" {
			t.Errorf("retired snapshot phase %q", n.Phase)
		}
		if n.Node == 0 {
			t.Error("founder node 0 was drained; drain must prefer the newest nodes")
		}
	}
	if shrunk.Autoscale.ScaleIns == 0 {
		t.Error("fleet shrank without a recorded scale-in")
	}
	if shrunk.Autoscale.NodeMS <= 0 {
		t.Error("node-time accounting is empty")
	}

	// Retried IDs that were pinned to a retired node must remap and answer,
	// not 5xx: the sticky route dies with the node.
	for g := 0; g < 8; g++ {
		resp, status, err := c.Infer(ctx, InferRequest{
			Model: "Res152", Batch: 4, RequestID: fmt.Sprintf("as-%d-0", g), Attempt: 1,
		})
		if err != nil {
			t.Fatalf("retry after retirement: %v", err)
		}
		if status != http.StatusOK && status != http.StatusTooManyRequests {
			t.Errorf("retry after retirement: status %d, resp %+v", status, resp)
		}
	}

	// The metric families render and the exposition stays well-formed.
	body, err := c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"abacus_autoscale_target_nodes",
		"abacus_autoscale_nodes{phase=\"active\"}",
		"abacus_autoscale_scale_actions_total{direction=\"out\"}",
		"abacus_autoscale_retired_nodes_total",
		"abacus_autoscale_node_ms_total",
	} {
		if !strings.Contains(string(body), want) {
			t.Errorf("metrics missing %s", want)
		}
	}
	if err := ValidateExposition(body); err != nil {
		t.Errorf("exposition invalid: %v", err)
	}

	// Statz keeps working after Drain stops the control loop.
	s.Drain()
	if st, err := c.Stats(ctx); err != nil || st.Autoscale == nil {
		t.Errorf("statz after drain: %v, %+v", err, st)
	}
}

// waitForStatz polls /statz until cond holds or the deadline passes.
func waitForStatz(t *testing.T, c *Client, timeout time.Duration, cond func(*Statz) bool) *Statz {
	t.Helper()
	deadline := time.Now().Add(timeout)
	var last *Statz
	for time.Now().Before(deadline) {
		st, err := c.Stats(context.Background())
		if err == nil && cond(st) {
			return st
		}
		last = st
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("condition never held within %v; last statz autoscale: %+v", timeout, last.Autoscale)
	return nil
}

// TestAutoscaleConfigValidation covers the elastic gateway's input rules.
func TestAutoscaleConfigValidation(t *testing.T) {
	base := autoscaleConfig()

	bad := base
	bad.Placement = [][]dnn.ModelID{{dnn.ResNet152, dnn.InceptionV3}}
	bad.Nodes = 1
	if _, err := New(bad); err == nil {
		t.Error("autoscale with pinned placement accepted")
	}

	bad = base
	bad.Nodes = 2 // MinNodes is 1
	if _, err := New(bad); err == nil {
		t.Error("autoscale with Nodes != MinNodes accepted")
	}

	bad = base
	bad.Speedup = realtime.Unpaced
	if _, err := New(bad); err == nil {
		t.Error("autoscale with Unpaced pacing accepted")
	}

	bad = base
	bad.Autoscale = &scaler.Config{MinNodes: 1, CapacityQPS: -1}
	if _, err := New(bad); err == nil {
		t.Error("negative capacity accepted")
	}

	bad = base
	bad.Models = []dnn.ModelID{dnn.ResNet50, dnn.ResNet101, dnn.ResNet152, dnn.InceptionV3, dnn.VGG16}
	if _, err := New(bad); err == nil {
		t.Error("five replicated models accepted despite the co-location bound")
	}

	// A valid MinNodes > 1 elastic gateway builds its founders replicated.
	ok := base
	ok.Autoscale = &scaler.Config{MinNodes: 2, MaxNodes: 4, CapacityQPS: 10, IntervalMS: 2000}
	s, err := New(ok)
	if err != nil {
		t.Fatal(err)
	}
	if s.NumNodes() != 2 {
		t.Errorf("MinNodes 2 built %d founders", s.NumNodes())
	}
	for _, n := range s.nodes {
		if len(n.models) != len(ok.Models) {
			t.Errorf("founder %d hosts %d models, want the full replicated set", n.id, len(n.models))
		}
	}
}
