// Load generation against a live gateway: an open-loop mode that replays a
// trace.Arrival schedule paced against the wall clock (the MLPerf-style
// Poisson generator of §7.1, or a CSV trace), and a closed-loop mode with a
// fixed number of in-flight requesters. Because trace.Generator is
// deterministic per seed, the same seed drives both the live run and the
// offline simulator, making the paper's core claim — predicted latency ≈
// delivered latency — testable over a socket via OfflineBaseline.
package server

import (
	"context"
	"fmt"
	"math"
	"sync"
	"time"

	"abacus/internal/dnn"
	"abacus/internal/predictor"
	"abacus/internal/sched"
	"abacus/internal/serving"
	"abacus/internal/stats"
	"abacus/internal/trace"
	"abacus/internal/workload"
)

// LoadConfig shapes one load-generation run.
type LoadConfig struct {
	Client *Client
	// Models names the arrivals' Service indices (the gateway deployment).
	Models []dnn.ModelID
	// Arrivals is the open-loop schedule (times in virtual ms). In closed
	// mode it is the pool of inputs, cycled in order.
	Arrivals []trace.Arrival
	// Speedup compresses the schedule: arrival at t fires at t/Speedup wall
	// ms after start (default 1). Match the gateway's own speedup so virtual
	// arrival times line up with the schedule.
	Speedup float64
	// DeadlineMS is an optional per-request SLO override.
	DeadlineMS float64
	// Closed switches to closed-loop mode: Concurrency workers keep
	// Requests total queries in flight back to back, ignoring arrival times.
	Closed      bool
	Concurrency int
	Requests    int
	// Think, when non-nil, makes each closed-loop worker pause between its
	// requests per this distribution (virtual ms, compressed by Speedup like
	// arrival times) — the worker becomes a modeled user, not a saturating
	// hammer. Each worker draws from its own RNG derived from (Seed, worker
	// index), never from a shared stream, so the think sequence every worker
	// sees is a pure function of the config at any goroutine interleaving.
	Think *workload.ThinkSpec
	// Seed derives the per-worker think RNG streams (default 1).
	Seed int64
	// Retry, when non-nil, sends every request through a Retrier under this
	// policy (idempotency keys assigned automatically).
	Retry *RetryPolicy

	// thinkHook observes every think draw (worker, ms) before the sleep; the
	// determinism regression test uses it to pin per-worker sequences.
	thinkHook func(worker int, ms float64)
}

// LoadStats aggregates one slice of outcomes.
type LoadStats struct {
	Sent             int
	Accepted         int
	Completed        int
	Violated         int // completed past the deadline
	Dropped          int // admitted, then dropped by the controller (504)
	RejectedDeadline int // 429, predicted completion past the deadline
	RejectedQueue    int // 429, per-service queue bound
	RejectedDegraded int // 429, shed by the degraded-mode margin
	Unavailable      int // 503, draining or stopped
	Errors           int // transport failures (request or response lost on the wire)
	DecodeErrors     int // responses that arrived but failed to decode (exclusive with Errors)
	Retries          int // extra attempts sent by the retry layer
	Duplicates       int // responses served from the gateway's idempotency cache

	P50MS      float64 // over completed queries, virtual ms
	P99MS      float64
	GoodputQPS float64 // completed-in-deadline per virtual second

	lats        []float64
	firstArrive float64
	lastFinish  float64
}

// LoadResult is a run's outcome.
type LoadResult struct {
	Total       LoadStats
	PerService  []LoadStats
	WallSeconds float64
}

// RunLoad drives the gateway and aggregates outcomes. It returns early on
// ctx cancellation with the results so far.
func RunLoad(ctx context.Context, cfg LoadConfig) (*LoadResult, error) {
	if cfg.Client == nil {
		return nil, fmt.Errorf("loadgen: nil client")
	}
	if len(cfg.Models) == 0 || len(cfg.Arrivals) == 0 {
		return nil, fmt.Errorf("loadgen: need models and arrivals")
	}
	if cfg.Speedup <= 0 {
		cfg.Speedup = 1
	}
	col := newCollector(len(cfg.Models))
	if cfg.Retry != nil {
		col.retrier = NewRetrier(*cfg.Retry)
	}
	wallStart := time.Now()
	if cfg.Closed {
		runClosed(ctx, cfg, col)
	} else {
		runOpen(ctx, cfg, col)
	}
	res := col.result()
	res.WallSeconds = time.Since(wallStart).Seconds()
	return res, nil
}

func runOpen(ctx context.Context, cfg LoadConfig, col *collector) {
	wallStart := time.Now()
	var wg sync.WaitGroup
	defer wg.Wait()
	for _, a := range cfg.Arrivals {
		due := time.Duration(a.Time / cfg.Speedup * float64(time.Millisecond))
		if wait := due - time.Since(wallStart); wait > 0 {
			select {
			case <-ctx.Done():
				return
			case <-time.After(wait):
			}
		}
		if ctx.Err() != nil {
			return
		}
		wg.Add(1)
		go func(a trace.Arrival) {
			defer wg.Done()
			sendOne(ctx, cfg, a, col)
		}(a)
	}
}

func runClosed(ctx context.Context, cfg LoadConfig, col *collector) {
	workers := cfg.Concurrency
	if workers <= 0 {
		workers = 4
	}
	total := cfg.Requests
	if total <= 0 {
		total = len(cfg.Arrivals)
	}
	next := make(chan trace.Arrival)
	go func() {
		defer close(next)
		for i := 0; i < total; i++ {
			select {
			case next <- cfg.Arrivals[i%len(cfg.Arrivals)]:
			case <-ctx.Done():
				return
			}
		}
	}()
	var think func(*workload.PRNG) float64
	if cfg.Think != nil && cfg.Think.MeanMS > 0 {
		think = cfg.Think.Sampler()
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = 1
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		// Each worker's think stream is derived from (seed, worker), not
		// drawn from a generator the workers share: a shared stream would
		// hand out draws in whatever order goroutines happened to reach it,
		// making -concurrency N runs irreproducible.
		rng := workload.NewPRNG(workload.SubSeed(seed, saltThinkWorker, uint64(w)))
		go func(w int, rng *workload.PRNG) {
			defer wg.Done()
			for a := range next {
				sendOne(ctx, cfg, a, col)
				if think == nil {
					continue
				}
				ms := think(rng)
				if cfg.thinkHook != nil {
					cfg.thinkHook(w, ms)
				}
				wait := time.Duration(ms / cfg.Speedup * float64(time.Millisecond))
				select {
				case <-ctx.Done():
					return
				case <-time.After(wait):
				}
			}
		}(w, rng)
	}
	wg.Wait()
}

// saltThinkWorker namespaces the per-worker think-RNG derivation.
const saltThinkWorker = 0x77

func sendOne(ctx context.Context, cfg LoadConfig, a trace.Arrival, col *collector) {
	req := InferRequest{
		Model:      cfg.Models[a.Service].String(),
		Batch:      a.Input.Batch,
		SeqLen:     a.Input.SeqLen,
		DeadlineMS: cfg.DeadlineMS,
	}
	var (
		resp   *InferResponse
		status int
		err    error
		rst    RetryStats
	)
	if col.retrier != nil {
		resp, status, rst, err = col.retrier.InferRetry(ctx, cfg.Client, req)
	} else {
		resp, status, err = cfg.Client.Infer(ctx, req)
	}
	col.record(a.Service, resp, status, err, rst)
}

// collector accumulates outcomes thread-safely.
type collector struct {
	retrier *Retrier
	mu      sync.Mutex
	per     []LoadStats
}

func newCollector(services int) *collector {
	c := &collector{per: make([]LoadStats, services)}
	for i := range c.per {
		c.per[i].firstArrive = math.Inf(1)
	}
	return c
}

func (c *collector) record(service int, resp *InferResponse, status int, err error, rst RetryStats) {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := &c.per[service]
	s.Sent++
	s.Retries += rst.Retries
	if resp != nil && resp.Duplicate {
		s.Duplicates++
	}
	switch {
	case IsDecodeError(err):
		// A response arrived but would not parse: a protocol fault, counted
		// once here and never also as a transport error (with pooled read
		// buffers, a short read is surfaced as the read error before any
		// decode is attempted, so the two classes cannot overlap).
		s.DecodeErrors++
	case err != nil:
		s.Errors++
	case status == 200:
		s.Accepted++
		s.Completed++
		if resp.Violated {
			s.Violated++
		}
		s.lats = append(s.lats, resp.LatencyMS)
		if resp.ArrivalMS < s.firstArrive {
			s.firstArrive = resp.ArrivalMS
		}
		if resp.FinishMS > s.lastFinish {
			s.lastFinish = resp.FinishMS
		}
	case status == 504:
		s.Accepted++
		s.Dropped++
	case status == 429 && resp.Reason == reasonQueueFull:
		s.RejectedQueue++
	case status == 429 && resp.Reason == reasonDegraded:
		s.RejectedDegraded++
	case status == 429:
		s.RejectedDeadline++
	case status == 503:
		s.Unavailable++
	default:
		s.Errors++
	}
}

func (c *collector) result() *LoadResult {
	c.mu.Lock()
	defer c.mu.Unlock()
	res := &LoadResult{PerService: make([]LoadStats, len(c.per))}
	t := &res.Total
	t.firstArrive = math.Inf(1)
	for i := range c.per {
		s := c.per[i]
		t.Sent += s.Sent
		t.Accepted += s.Accepted
		t.Completed += s.Completed
		t.Violated += s.Violated
		t.Dropped += s.Dropped
		t.RejectedDeadline += s.RejectedDeadline
		t.RejectedQueue += s.RejectedQueue
		t.RejectedDegraded += s.RejectedDegraded
		t.Unavailable += s.Unavailable
		t.Errors += s.Errors
		t.DecodeErrors += s.DecodeErrors
		t.Retries += s.Retries
		t.Duplicates += s.Duplicates
		t.lats = append(t.lats, s.lats...)
		if s.firstArrive < t.firstArrive {
			t.firstArrive = s.firstArrive
		}
		if s.lastFinish > t.lastFinish {
			t.lastFinish = s.lastFinish
		}
		s.finalize()
		res.PerService[i] = s
	}
	t.finalize()
	return res
}

// finalize derives percentiles and goodput from the raw latencies.
func (s *LoadStats) finalize() {
	if len(s.lats) > 0 {
		ps := stats.Percentiles(s.lats, 50, 99)
		s.P50MS, s.P99MS = ps[0], ps[1]
	}
	span := s.lastFinish - s.firstArrive
	if span > 0 {
		s.GoodputQPS = float64(s.Completed-s.Violated) / (span / 1000)
	}
}

// Latencies returns the completed-query latencies (virtual ms).
func (s *LoadStats) Latencies() []float64 { return s.lats }

// OfflineBaseline replays the same arrival schedule through the offline
// simulator under the Abacus policy (nil model = exact oracle) — the
// prediction the live gateway is measured against. qosMS, when it matches
// models in length, pins each service's QoS target so the replay uses the
// gateway's actual deadlines (statz reports them as qos_ms); nil selects the
// default 2× max-input solo derivation.
func OfflineBaseline(models []dnn.ModelID, qosMS []float64, arrivals []trace.Arrival, model predictor.LatencyModel) serving.Result {
	var svcs []*sched.Service
	if len(qosMS) == len(models) {
		svcs = make([]*sched.Service, len(models))
		for i, m := range models {
			svcs[i] = &sched.Service{ID: i, Model: m, QoS: qosMS[i]}
		}
	}
	return serving.Run(serving.RunConfig{
		Policy:   serving.PolicyAbacus,
		Models:   models,
		Arrivals: arrivals,
		Services: svcs,
		Model:    model,
	})
}
