package server

import (
	"bytes"
	"context"
	"testing"
	"time"

	"abacus/internal/calib"
	"abacus/internal/dnn"
	"abacus/internal/gpusim"
	"abacus/internal/predictor"
	"abacus/internal/realtime"
	"abacus/internal/trace"
)

// TestGatewayCalibration runs a live unpaced gateway whose predictor reports
// 60% of ResNet-152's true latency and checks that the online calibration
// loop is visible end to end: the tracker learns an inverse slope for the
// biased service while leaving its neighbour near identity, /statz carries
// the calibration and per-service drift state, and /metrics exposes the
// calibration families in valid exposition format.
func TestGatewayCalibration(t *testing.T) {
	models := []dnn.ModelID{dnn.ResNet152, dnn.InceptionV3}
	pert := predictor.NewPerturbed(predictor.Oracle{Profile: gpusim.A100Profile()}, 1, 0, 7)
	pert.SetModelBias(dnn.ResNet152, 0.6)

	c := startGateway(t, Config{
		Models:  models,
		Speedup: realtime.Unpaced,
		Model:   pert,
		Calib:   &calib.Config{Seed: 7, MinSamples: 8, UpdateEvery: 4},
	})
	arrivals := trace.NewGenerator(models, 7).Poisson(40, 4000)
	// Low concurrency keeps most completions uncontended so the tracker's
	// backlog filter accepts them.
	res, err := RunLoad(context.Background(), LoadConfig{
		Client:      c,
		Models:      models,
		Arrivals:    arrivals,
		Closed:      true,
		Concurrency: 2,
		Requests:    len(arrivals),
		Retry:       &RetryPolicy{MaxAttempts: 3, BaseBackoff: time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Total.Completed == 0 {
		t.Fatal("no queries completed")
	}

	st, err := c.Stats(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if st.Calibration == nil || !st.Calibration.Enabled {
		t.Fatalf("calibration state missing from /statz: %+v", st.Calibration)
	}
	if len(st.Calibration.Services) != len(models) {
		t.Fatalf("calibration covers %d services, want %d", len(st.Calibration.Services), len(models))
	}
	biased, healthy := st.Calibration.Services[0], st.Calibration.Services[1]
	if biased.Samples == 0 {
		t.Fatal("biased service collected no feedback samples")
	}
	if biased.Slope < 1.3 {
		t.Errorf("biased service slope %.3f, want > 1.3 (learning 1/0.6)", biased.Slope)
	}
	if healthy.Slope < 0.9 || healthy.Slope > 1.1 {
		t.Errorf("healthy service slope %.3f strayed from identity", healthy.Slope)
	}
	for _, s := range st.Services {
		if s.Margin < 1 {
			t.Errorf("service %d margin %.3f < 1", s.Service, s.Margin)
		}
	}

	body, err := c.Metrics(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidateExposition(body); err != nil {
		t.Errorf("metrics exposition invalid: %v", err)
	}
	for _, family := range []string{
		"abacus_calibration_slope",
		"abacus_calibration_samples_total",
		"abacus_service_admission_margin",
		"abacus_service_divergence_ewma",
	} {
		if !bytes.Contains(body, []byte(family)) {
			t.Errorf("metrics missing family %s", family)
		}
	}
}
