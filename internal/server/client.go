// Client is the gateway's Go client: the load generator and the end-to-end
// tests speak to the HTTP front end through it.
package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"time"
)

// DecodeError marks a response that arrived intact over the network but did
// not decode as an InferResponse: the body was read to EOF first, so this is
// a protocol fault, never a transport one. Keeping the two distinct matters
// with pooled read buffers — a short read surfaces as the read error itself
// and is counted once as a network error, instead of the stale buffer tail
// also failing to parse and double-counting as malformed.
type DecodeError struct {
	Status int   // HTTP status of the undecodable response
	Err    error // the underlying unmarshal failure
}

func (e *DecodeError) Error() string {
	return fmt.Sprintf("decoding /v1/infer response (HTTP %d): %v", e.Status, e.Err)
}

func (e *DecodeError) Unwrap() error { return e.Err }

// IsDecodeError reports whether err (or anything it wraps) is a DecodeError.
func IsDecodeError(err error) bool {
	var de *DecodeError
	return errors.As(err, &de)
}

// respBufPool holds response-body read buffers for inferHeaders; bodies are
// small JSON objects, so one warm buffer per concurrent caller suffices.
var respBufPool = sync.Pool{New: func() any {
	b := make([]byte, 0, 2048)
	return &b
}}

// Client talks to one gateway.
type Client struct {
	base string
	hc   *http.Client
}

// NewClient returns a client for the gateway at base (e.g.
// "http://127.0.0.1:8080"). A nil httpClient uses a dedicated client with no
// timeout — inference calls legitimately wait out their paced latency.
func NewClient(base string, httpClient *http.Client) *Client {
	if httpClient == nil {
		httpClient = &http.Client{}
	}
	return &Client{base: strings.TrimRight(base, "/"), hc: httpClient}
}

// Infer submits one query and waits for its outcome. The returned response
// is non-nil whenever the gateway answered, whatever the status code;
// status conveys the HTTP code (200 completed, 429 rejected, 503 draining,
// 504 dropped).
func (c *Client) Infer(ctx context.Context, req InferRequest) (*InferResponse, int, error) {
	resp, status, _, err := c.inferHeaders(ctx, req)
	return resp, status, err
}

// inferHeaders is Infer plus the response headers, which the retry layer
// reads for Retry-After hints.
func (c *Client) inferHeaders(ctx context.Context, req InferRequest) (*InferResponse, int, http.Header, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, 0, nil, err
	}
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+"/v1/infer", bytes.NewReader(body))
	if err != nil {
		return nil, 0, nil, err
	}
	hreq.Header.Set("Content-Type", "application/json")
	hres, err := c.hc.Do(hreq)
	if err != nil {
		return nil, 0, nil, err
	}
	defer hres.Body.Close()
	// Read the whole body before decoding. A failed or short read is a
	// network error and is returned as such without touching the decoder:
	// the pooled buffer may hold a truncated or stale prefix, and parsing it
	// would misreport a transport fault as a malformed response.
	bp := respBufPool.Get().(*[]byte)
	buf, err := readAll(hres.Body, (*bp)[:0])
	*bp = buf[:0]
	defer respBufPool.Put(bp)
	if err != nil {
		return nil, hres.StatusCode, hres.Header, fmt.Errorf("reading /v1/infer response: %w", err)
	}
	var out InferResponse
	if err := json.Unmarshal(buf, &out); err != nil {
		return nil, hres.StatusCode, hres.Header, &DecodeError{Status: hres.StatusCode, Err: err}
	}
	return &out, hres.StatusCode, hres.Header, nil
}

// Stats fetches /statz.
func (c *Client) Stats(ctx context.Context) (*Statz, error) {
	var out Statz
	if err := c.getJSON(ctx, "/statz", &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Health probes /healthz; a non-200 answer is an error.
func (c *Client) Health(ctx context.Context) error {
	var out map[string]any
	return c.getJSON(ctx, "/healthz", &out)
}

// Metrics fetches the raw /metrics exposition.
func (c *Client) Metrics(ctx context.Context) ([]byte, error) {
	hreq, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/metrics", nil)
	if err != nil {
		return nil, err
	}
	hres, err := c.hc.Do(hreq)
	if err != nil {
		return nil, err
	}
	defer hres.Body.Close()
	if hres.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET /metrics: %s", hres.Status)
	}
	return io.ReadAll(hres.Body)
}

// WaitReady polls /healthz until the gateway answers or the timeout lapses.
func (c *Client) WaitReady(ctx context.Context, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		err := c.Health(ctx)
		if err == nil {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("gateway not ready after %v: %w", timeout, err)
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(10 * time.Millisecond):
		}
	}
}

func (c *Client) getJSON(ctx context.Context, path string, v any) error {
	hreq, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+path, nil)
	if err != nil {
		return err
	}
	hres, err := c.hc.Do(hreq)
	if err != nil {
		return err
	}
	defer hres.Body.Close()
	if hres.StatusCode != http.StatusOK {
		return fmt.Errorf("GET %s: %s", path, hres.Status)
	}
	return json.NewDecoder(hres.Body).Decode(v)
}
