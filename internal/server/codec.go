// Wire codec for the /v1/infer hot path: a hand-rolled validating JSON
// decoder over a caller-owned byte buffer and an appending encoder that
// renders InferResponse byte-identically to encoding/json. Both sides are
// allocation-free in steady state — the decoder returns views into the
// request buffer instead of materialized strings, and the encoder appends
// into a pooled scratch slice — so the gateway's ingest path costs zero
// allocs/op once the scratch pools are warm (asserted by
// TestInferHotPathZeroAllocs and trend-gated via BENCH_http.json).
package server

import (
	"fmt"
	"io"
	"math"
	"strconv"
	"sync"
	"unicode/utf8"
)

// WireRequest is the decoded view of a POST /v1/infer body. Model and
// RequestID alias either the input buffer or the internal unescape scratch:
// they are valid until the next Parse and must be copied (string(...)) to
// outlive it. The zero value is ready to use; reusing one WireRequest across
// requests reuses its unescape scratch.
type WireRequest struct {
	Model      []byte
	Batch      int
	SeqLen     int
	DeadlineMS float64
	RequestID  []byte
	Attempt    int

	esc []byte // unescape scratch, grown once and reused
}

// Parse decodes one /v1/infer JSON object from data. Unknown fields are
// skipped (matching encoding/json), known keys match exactly or
// case-insensitively, and trailing bytes after the top-level object are
// ignored (json.Decoder.Decode semantics). Numeric fields reject fractions
// on integer targets the way encoding/json does.
func (w *WireRequest) Parse(data []byte) error {
	esc := w.esc[:0]
	*w = WireRequest{esc: esc}
	p := jsonParser{b: data}
	p.ws()
	if !p.eat('{') {
		return p.fail("expected object")
	}
	p.ws()
	if p.eat('}') {
		return nil
	}
	for {
		key, err := p.str(&w.esc)
		if err != nil {
			return err
		}
		p.ws()
		if !p.eat(':') {
			return p.fail("expected ':' after object key")
		}
		p.ws()
		if err := w.field(&p, key); err != nil {
			return err
		}
		p.ws()
		if p.eat(',') {
			p.ws()
			continue
		}
		if p.eat('}') {
			return nil
		}
		return p.fail("expected ',' or '}' in object")
	}
}

// field dispatches one key/value pair. Exact tag match first, then the
// case-insensitive fallback encoding/json applies, then a generic skip.
// A null value leaves the target untouched, as encoding/json does.
func (w *WireRequest) field(p *jsonParser, key []byte) error {
	if p.i < len(p.b) && p.b[p.i] == 'n' {
		return p.lit("null")
	}
	var err error
	switch {
	case keyIs(key, "model"):
		w.Model, err = p.str(&w.esc)
	case keyIs(key, "batch"):
		w.Batch, err = p.int("batch")
	case keyIs(key, "seqlen"):
		w.SeqLen, err = p.int("seqlen")
	case keyIs(key, "deadline_ms"):
		w.DeadlineMS, err = p.float("deadline_ms")
	case keyIs(key, "request_id"):
		w.RequestID, err = p.str(&w.esc)
	case keyIs(key, "attempt"):
		w.Attempt, err = p.int("attempt")
	default:
		err = p.skipValue(0)
	}
	return err
}

// keyIs matches a decoded key against a known field tag: exact bytes first,
// then ASCII case folding (encoding/json accepts mis-cased keys).
func keyIs(key []byte, tag string) bool {
	if len(key) != len(tag) {
		return false
	}
	for i := 0; i < len(key); i++ {
		c := key[i]
		if c == tag[i] {
			continue
		}
		if c >= 'A' && c <= 'Z' && c+'a'-'A' == tag[i] {
			continue
		}
		return false
	}
	return true
}

// jsonParser is a cursor over one request body. All methods are
// allocation-free except error construction.
type jsonParser struct {
	b []byte
	i int
}

func (p *jsonParser) fail(msg string) error {
	return fmt.Errorf("offset %d: %s", p.i, msg)
}

func (p *jsonParser) ws() {
	for p.i < len(p.b) {
		switch p.b[p.i] {
		case ' ', '\t', '\n', '\r':
			p.i++
		default:
			return
		}
	}
}

func (p *jsonParser) eat(c byte) bool {
	if p.i < len(p.b) && p.b[p.i] == c {
		p.i++
		return true
	}
	return false
}

// str parses a JSON string. The fast path (no escapes) returns a view into
// the input; escapes divert into the shared scratch, which only grows, so
// earlier views stay valid within one Parse.
func (p *jsonParser) str(esc *[]byte) ([]byte, error) {
	if !p.eat('"') {
		return nil, p.fail("expected string")
	}
	start := p.i
	for p.i < len(p.b) {
		switch c := p.b[p.i]; {
		case c == '"':
			s := p.b[start:p.i]
			p.i++
			return s, nil
		case c == '\\':
			return p.strSlow(esc, start)
		case c < 0x20:
			return nil, p.fail("control character in string")
		default:
			p.i++
		}
	}
	return nil, p.fail("unterminated string")
}

// strSlow finishes a string containing escapes, unescaping into esc.
func (p *jsonParser) strSlow(esc *[]byte, start int) ([]byte, error) {
	from := len(*esc)
	*esc = append(*esc, p.b[start:p.i]...)
	for p.i < len(p.b) {
		c := p.b[p.i]
		switch {
		case c == '"':
			p.i++
			return (*esc)[from:], nil
		case c == '\\':
			p.i++
			if p.i >= len(p.b) {
				return nil, p.fail("truncated escape")
			}
			switch e := p.b[p.i]; e {
			case '"', '\\', '/':
				*esc = append(*esc, e)
				p.i++
			case 'b':
				*esc = append(*esc, '\b')
				p.i++
			case 'f':
				*esc = append(*esc, '\f')
				p.i++
			case 'n':
				*esc = append(*esc, '\n')
				p.i++
			case 'r':
				*esc = append(*esc, '\r')
				p.i++
			case 't':
				*esc = append(*esc, '\t')
				p.i++
			case 'u':
				r, err := p.unicodeEscape()
				if err != nil {
					return nil, err
				}
				*esc = utf8.AppendRune(*esc, r)
			default:
				return nil, p.fail("invalid escape")
			}
		case c < 0x20:
			return nil, p.fail("control character in string")
		default:
			*esc = append(*esc, c)
			p.i++
		}
	}
	return nil, p.fail("unterminated string")
}

// unicodeEscape consumes uXXXX (cursor on the 'u'), handling surrogate
// pairs; lone surrogates decode to U+FFFD like encoding/json.
func (p *jsonParser) unicodeEscape() (rune, error) {
	r, err := p.hex4()
	if err != nil {
		return 0, err
	}
	if r >= 0xD800 && r < 0xDC00 { // high surrogate: try to pair
		if p.i+1 < len(p.b) && p.b[p.i] == '\\' && p.b[p.i+1] == 'u' {
			save := p.i
			p.i++ // the backslash; hex4 wants the cursor on the 'u'
			r2, err := p.hex4()
			if err != nil {
				return 0, err
			}
			if r2 >= 0xDC00 && r2 < 0xE000 {
				return 0x10000 + (r-0xD800)<<10 + (r2 - 0xDC00), nil
			}
			p.i = save
		}
		return utf8.RuneError, nil
	}
	if r >= 0xDC00 && r < 0xE000 { // lone low surrogate
		return utf8.RuneError, nil
	}
	return r, nil
}

// hex4 parses the four hex digits of a \u escape (cursor on the 'u').
func (p *jsonParser) hex4() (rune, error) {
	p.i++ // 'u'
	if p.i+4 > len(p.b) {
		return 0, p.fail("truncated \\u escape")
	}
	var r rune
	for j := 0; j < 4; j++ {
		c := p.b[p.i+j]
		switch {
		case c >= '0' && c <= '9':
			r = r<<4 | rune(c-'0')
		case c >= 'a' && c <= 'f':
			r = r<<4 | rune(c-'a'+10)
		case c >= 'A' && c <= 'F':
			r = r<<4 | rune(c-'A'+10)
		default:
			return 0, p.fail("invalid \\u escape")
		}
	}
	p.i += 4
	return r, nil
}

// numToken scans one JSON number and returns its bytes.
func (p *jsonParser) numToken() ([]byte, error) {
	start := p.i
	p.eat('-')
	digits := 0
	for p.i < len(p.b) && p.b[p.i] >= '0' && p.b[p.i] <= '9' {
		p.i++
		digits++
	}
	if digits == 0 {
		return nil, p.fail("expected number")
	}
	if p.eat('.') {
		frac := 0
		for p.i < len(p.b) && p.b[p.i] >= '0' && p.b[p.i] <= '9' {
			p.i++
			frac++
		}
		if frac == 0 {
			return nil, p.fail("digits required after decimal point")
		}
	}
	if p.i < len(p.b) && (p.b[p.i] == 'e' || p.b[p.i] == 'E') {
		p.i++
		if p.i < len(p.b) && (p.b[p.i] == '+' || p.b[p.i] == '-') {
			p.i++
		}
		exp := 0
		for p.i < len(p.b) && p.b[p.i] >= '0' && p.b[p.i] <= '9' {
			p.i++
			exp++
		}
		if exp == 0 {
			return nil, p.fail("digits required in exponent")
		}
	}
	return p.b[start:p.i], nil
}

// int parses an integer field, rejecting fractions and exponents the way
// encoding/json rejects non-integral numbers for int targets.
func (p *jsonParser) int(field string) (int, error) {
	tok, err := p.numToken()
	if err != nil {
		return 0, err
	}
	neg := false
	i := 0
	if tok[0] == '-' {
		neg = true
		i = 1
	}
	var v int64
	for ; i < len(tok); i++ {
		c := tok[i]
		if c < '0' || c > '9' {
			return 0, fmt.Errorf("field %s: number %s is not an integer", field, tok)
		}
		v = v*10 + int64(c-'0')
		if v > math.MaxInt32 {
			return 0, fmt.Errorf("field %s: integer %s out of range", field, tok)
		}
	}
	if neg {
		v = -v
	}
	return int(v), nil
}

// float parses a float64 field. The string conversion does not escape into
// ParseFloat, so tokens up to 32 bytes convert on the stack — no allocation
// on any realistic number.
func (p *jsonParser) float(field string) (float64, error) {
	tok, err := p.numToken()
	if err != nil {
		return 0, err
	}
	v, err := strconv.ParseFloat(string(tok), 64)
	if err != nil {
		return 0, fmt.Errorf("field %s: invalid number %s", field, tok)
	}
	return v, nil
}

// maxSkipDepth bounds nesting inside skipped unknown fields so a hostile
// body cannot recurse the parser to death.
const maxSkipDepth = 64

// skipValue consumes one JSON value of any type without materializing it.
func (p *jsonParser) skipValue(depth int) error {
	if depth > maxSkipDepth {
		return p.fail("value nested too deeply")
	}
	p.ws()
	if p.i >= len(p.b) {
		return p.fail("expected value")
	}
	switch c := p.b[p.i]; {
	case c == '"':
		return p.skipString()
	case c == '{':
		p.i++
		p.ws()
		if p.eat('}') {
			return nil
		}
		for {
			p.ws()
			if err := p.skipString(); err != nil {
				return err
			}
			p.ws()
			if !p.eat(':') {
				return p.fail("expected ':' after object key")
			}
			if err := p.skipValue(depth + 1); err != nil {
				return err
			}
			p.ws()
			if p.eat(',') {
				continue
			}
			if p.eat('}') {
				return nil
			}
			return p.fail("expected ',' or '}' in object")
		}
	case c == '[':
		p.i++
		p.ws()
		if p.eat(']') {
			return nil
		}
		for {
			if err := p.skipValue(depth + 1); err != nil {
				return err
			}
			p.ws()
			if p.eat(',') {
				continue
			}
			if p.eat(']') {
				return nil
			}
			return p.fail("expected ',' or ']' in array")
		}
	case c == 't':
		return p.lit("true")
	case c == 'f':
		return p.lit("false")
	case c == 'n':
		return p.lit("null")
	default:
		_, err := p.numToken()
		return err
	}
}

// skipString consumes a string without unescaping it.
func (p *jsonParser) skipString() error {
	if !p.eat('"') {
		return p.fail("expected string")
	}
	for p.i < len(p.b) {
		switch p.b[p.i] {
		case '"':
			p.i++
			return nil
		case '\\':
			p.i += 2
		default:
			p.i++
		}
	}
	return p.fail("unterminated string")
}

func (p *jsonParser) lit(s string) error {
	if len(p.b)-p.i < len(s) || string(p.b[p.i:p.i+len(s)]) != s {
		return p.fail("invalid literal")
	}
	p.i += len(s)
	return nil
}

// AppendInferResponse renders r exactly as json.NewEncoder(w).Encode(r)
// would — same field order, omitempty semantics, HTML escaping, float
// format, and trailing newline — appending to dst without allocating beyond
// dst's own growth. Responses stay byte-compatible with the PR-2 gateway
// while costing zero steady-state allocations from a pooled scratch.
func AppendInferResponse(dst []byte, r *InferResponse) []byte {
	dst = append(dst, `{"model":`...)
	dst = appendJSONString(dst, r.Model)
	dst = append(dst, `,"batch":`...)
	dst = strconv.AppendInt(dst, int64(r.Batch), 10)
	if r.SeqLen != 0 {
		dst = append(dst, `,"seqlen":`...)
		dst = strconv.AppendInt(dst, int64(r.SeqLen), 10)
	}
	dst = append(dst, `,"accepted":`...)
	dst = appendJSONBool(dst, r.Accepted)
	if r.Reason != "" {
		dst = append(dst, `,"reason":`...)
		dst = appendJSONString(dst, r.Reason)
	}
	if r.ArrivalMS != 0 {
		dst = append(dst, `,"arrival_ms":`...)
		dst = appendJSONFloat(dst, r.ArrivalMS)
	}
	if r.FinishMS != 0 {
		dst = append(dst, `,"finish_ms":`...)
		dst = appendJSONFloat(dst, r.FinishMS)
	}
	if r.LatencyMS != 0 {
		dst = append(dst, `,"latency_ms":`...)
		dst = appendJSONFloat(dst, r.LatencyMS)
	}
	if r.DeadlineMS != 0 {
		dst = append(dst, `,"deadline_ms":`...)
		dst = appendJSONFloat(dst, r.DeadlineMS)
	}
	if r.PredictedMS != 0 {
		dst = append(dst, `,"predicted_ms":`...)
		dst = appendJSONFloat(dst, r.PredictedMS)
	}
	if r.RetryAfterMS != 0 {
		dst = append(dst, `,"retry_after_ms":`...)
		dst = appendJSONFloat(dst, r.RetryAfterMS)
	}
	if r.Dropped {
		dst = append(dst, `,"dropped":true`...)
	}
	if r.Violated {
		dst = append(dst, `,"violated":true`...)
	}
	if r.Duplicate {
		dst = append(dst, `,"duplicate":true`...)
	}
	if r.Degraded {
		dst = append(dst, `,"degraded":true`...)
	}
	if r.Error != "" {
		dst = append(dst, `,"error":`...)
		dst = appendJSONString(dst, r.Error)
	}
	return append(dst, '}', '\n')
}

func appendJSONBool(dst []byte, v bool) []byte {
	if v {
		return append(dst, `true`...)
	}
	return append(dst, `false`...)
}

// appendJSONFloat matches encoding/json's float encoding: shortest
// representation, 'f' format in the human range, 'e' with a trimmed
// single-digit exponent outside it.
func appendJSONFloat(dst []byte, f float64) []byte {
	abs := math.Abs(f)
	format := byte('f')
	if abs != 0 && (abs < 1e-6 || abs >= 1e21) {
		format = 'e'
	}
	dst = strconv.AppendFloat(dst, f, format, -1, 64)
	if format == 'e' {
		// clean up e-09 to e-9, as encoding/json does
		if n := len(dst); n >= 4 && dst[n-4] == 'e' && dst[n-3] == '-' && dst[n-2] == '0' {
			dst[n-2] = dst[n-1]
			dst = dst[:n-1]
		}
	}
	return dst
}

// jsonSafe marks ASCII bytes that encoding/json emits verbatim inside a
// string (HTML escaping on, its Encoder default).
var jsonSafe = [utf8.RuneSelf]bool{}

func init() {
	for c := 0x20; c < utf8.RuneSelf; c++ {
		jsonSafe[c] = true
	}
	jsonSafe['"'] = false
	jsonSafe['\\'] = false
	jsonSafe['<'] = false
	jsonSafe['>'] = false
	jsonSafe['&'] = false
}

const hexDigits = "0123456789abcdef"

// appendJSONString escapes s exactly as encoding/json's default encoder:
// quotes, backslashes, control characters, the HTML trio, invalid UTF-8 as
// U+FFFD, and U+2028/U+2029.
func appendJSONString(dst []byte, s string) []byte {
	dst = append(dst, '"')
	start := 0
	for i := 0; i < len(s); {
		if b := s[i]; b < utf8.RuneSelf {
			if jsonSafe[b] {
				i++
				continue
			}
			dst = append(dst, s[start:i]...)
			switch b {
			case '\\', '"':
				dst = append(dst, '\\', b)
			case '\n':
				dst = append(dst, '\\', 'n')
			case '\r':
				dst = append(dst, '\\', 'r')
			case '\t':
				dst = append(dst, '\\', 't')
			default:
				dst = append(dst, '\\', 'u', '0', '0', hexDigits[b>>4], hexDigits[b&0xF])
			}
			i++
			start = i
			continue
		}
		c, size := utf8.DecodeRuneInString(s[i:])
		if c == utf8.RuneError && size == 1 {
			dst = append(dst, s[start:i]...)
			dst = append(dst, '\\', 'u', 'f', 'f', 'f', 'd')
			i += size
			start = i
			continue
		}
		if c == '\u2028' || c == '\u2029' {
			dst = append(dst, s[start:i]...)
			dst = append(dst, '\\', 'u', '2', '0', '2', hexDigits[c&0xF])
			i += size
			start = i
			continue
		}
		i += size
	}
	dst = append(dst, s[start:]...)
	return append(dst, '"')
}

// readAll reads r to EOF into buf (append semantics), growing it at most a
// handful of times for first-touch sizes and not at all once a pooled
// buffer has seen the deployment's largest body.
func readAll(r io.Reader, buf []byte) ([]byte, error) {
	for {
		if len(buf) == cap(buf) {
			buf = append(buf, 0)[:len(buf)]
		}
		n, err := r.Read(buf[len(buf):cap(buf)])
		buf = buf[:len(buf)+n]
		if err == io.EOF {
			return buf, nil
		}
		if err != nil {
			return buf, err
		}
	}
}

// inferScratch is the per-request pooled state of the ingest path: the
// request body buffer, the decoded view, and the response encode buffer.
type inferScratch struct {
	body []byte
	out  []byte
	req  WireRequest
}

var scratchPool = sync.Pool{New: func() any {
	return &inferScratch{body: make([]byte, 0, 4096), out: make([]byte, 0, 512)}
}}

func getScratch() *inferScratch   { return scratchPool.Get().(*inferScratch) }
func putScratch(sc *inferScratch) { scratchPool.Put(sc) }
