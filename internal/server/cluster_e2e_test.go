package server

import (
	"context"
	"net/http"
	"strings"
	"testing"

	"abacus/internal/dnn"
	"abacus/internal/realtime"
	"abacus/internal/trace"
)

// TestClusterUnpacedEndToEnd drives a two-node gateway in batch mode with
// both models replicated on both nodes: the router's least-loaded choice is
// live, every outcome is conserved, and the per-node /statz rows account for
// exactly the admissions the cluster made.
func TestClusterUnpacedEndToEnd(t *testing.T) {
	models := []dnn.ModelID{dnn.ResNet152, dnn.InceptionV3}
	arrivals := trace.NewGenerator(models, 23).Poisson(40, 3000)

	c := startGateway(t, Config{
		Models:    models,
		Nodes:     2,
		Placement: [][]dnn.ModelID{{dnn.ResNet152, dnn.InceptionV3}, {dnn.ResNet152, dnn.InceptionV3}},
		Speedup:   realtime.Unpaced,
	})
	res, err := RunLoad(context.Background(), LoadConfig{
		Client:      c,
		Models:      models,
		Arrivals:    arrivals,
		Closed:      true,
		Concurrency: 8,
		Requests:    len(arrivals),
		Retry:       &RetryPolicy{MaxAttempts: 2, BaseBackoff: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	tot := res.Total
	if tot.Sent != len(arrivals) || tot.Errors != 0 {
		t.Fatalf("sent %d (want %d), errors %d", tot.Sent, len(arrivals), tot.Errors)
	}
	accounted := tot.Completed + tot.Dropped + tot.RejectedDeadline +
		tot.RejectedQueue + tot.RejectedDegraded + tot.Unavailable
	if accounted != tot.Sent {
		t.Fatalf("outcomes %d != sent %d (%+v)", accounted, tot.Sent, tot)
	}
	if tot.Completed == 0 {
		t.Fatal("no queries completed")
	}

	st, err := c.Stats(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Nodes) != 2 {
		t.Fatalf("statz reports %d nodes, want 2", len(st.Nodes))
	}
	var acc, routed int64
	for _, s := range st.Services {
		acc += s.Accepted
	}
	for _, n := range st.Nodes {
		routed += n.Routed
		if len(n.Models) != 2 {
			t.Errorf("node %d hosts %v, want both models", n.Node, n.Models)
		}
	}
	if routed != acc {
		t.Errorf("nodes routed %d admissions, gateway accepted %d", routed, acc)
	}
	// Ties favor node 0, but a loaded node 0 must shed onto its replica.
	if st.Nodes[0].Routed == 0 {
		t.Error("node 0 received no traffic")
	}

	body, err := c.Metrics(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidateExposition(body); err != nil {
		t.Errorf("metrics exposition invalid: %v", err)
	}
	for _, fam := range []string{
		"abacus_node_backlog_predicted_ms{node=\"1\"}",
		"abacus_node_queue_depth{node=\"0\"}",
		"abacus_node_routed_total{node=\"1\"}",
		"abacus_node_migrated_in_total{node=\"0\"}",
		"abacus_node_degraded{node=\"1\"}",
	} {
		if !strings.Contains(string(body), fam) {
			t.Errorf("metrics missing per-node sample %s", fam)
		}
	}
}

// TestClusterDuplicateSuppression pins sticky routing: retries of one
// RequestID land on the node that first accepted it, so duplicate
// suppression survives sharding.
func TestClusterDuplicateSuppression(t *testing.T) {
	models := []dnn.ModelID{dnn.ResNet152, dnn.InceptionV3}
	c := startGateway(t, Config{
		Models:    models,
		Nodes:     2,
		Placement: [][]dnn.ModelID{{dnn.ResNet152, dnn.InceptionV3}, {dnn.ResNet152, dnn.InceptionV3}},
		Speedup:   realtime.Unpaced,
	})
	req := InferRequest{Model: "Res152", Batch: 4, RequestID: "cluster-dup-1"}
	first, status, err := c.Infer(context.Background(), req)
	if err != nil || status != http.StatusOK || !first.Accepted {
		t.Fatalf("first request: status %d resp %+v err %v", status, first, err)
	}
	second, status, err := c.Infer(context.Background(), req)
	if err != nil || status != http.StatusOK {
		t.Fatalf("retry: status %d err %v", status, err)
	}
	if !second.Duplicate || second.FinishMS != first.FinishMS {
		t.Fatalf("retry not suppressed by the sticky route: %+v vs %+v", second, first)
	}
	st, err := c.Stats(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if st.Faults.DuplicatesSuppressed != 1 {
		t.Errorf("duplicates_suppressed = %d, want 1", st.Faults.DuplicatesSuppressed)
	}
	var acc int64
	for _, s := range st.Services {
		acc += s.Accepted
	}
	if acc != 1 {
		t.Errorf("cluster accepted %d queries for one RequestID, want 1", acc)
	}
}

// TestClusterConfigValidation exercises the placement checks.
func TestClusterConfigValidation(t *testing.T) {
	models := []dnn.ModelID{dnn.ResNet50, dnn.InceptionV3}
	cases := []struct {
		name string
		cfg  Config
	}{
		{"placement size mismatch", Config{Models: models, Nodes: 3,
			Placement: [][]dnn.ModelID{{dnn.ResNet50}, {dnn.InceptionV3}}}},
		{"unhosted model", Config{Models: models,
			Placement: [][]dnn.ModelID{{dnn.ResNet50}, {dnn.ResNet50}}}},
		{"undeployed model placed", Config{Models: models,
			Placement: [][]dnn.ModelID{{dnn.ResNet50, dnn.VGG16}, {dnn.InceptionV3}}}},
		{"model twice on one node", Config{Models: models,
			Placement: [][]dnn.ModelID{{dnn.ResNet50, dnn.ResNet50}, {dnn.InceptionV3}}}},
		{"empty node", Config{Models: models,
			Placement: [][]dnn.ModelID{{dnn.ResNet50, dnn.InceptionV3}, {}}}},
		{"per-node co-location bound", Config{
			Models: []dnn.ModelID{dnn.ResNet50, dnn.ResNet101, dnn.ResNet152, dnn.InceptionV3, dnn.VGG16},
			Placement: [][]dnn.ModelID{{
				dnn.ResNet50, dnn.ResNet101, dnn.ResNet152, dnn.InceptionV3, dnn.VGG16,
			}}}},
		{"negative nodes", Config{Models: models, Nodes: -1}},
		{"duplicate deployment", Config{Models: []dnn.ModelID{dnn.ResNet50, dnn.ResNet50}}},
	}
	for _, tc := range cases {
		if _, err := New(tc.cfg); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
	// A sharded deployment of five services is fine when no node exceeds the
	// co-location bound — the limit is per GPU, not per gateway.
	ok := Config{
		Models: []dnn.ModelID{dnn.ResNet50, dnn.ResNet101, dnn.ResNet152, dnn.InceptionV3, dnn.VGG16},
		Placement: [][]dnn.ModelID{
			{dnn.ResNet50, dnn.ResNet101, dnn.ResNet152},
			{dnn.InceptionV3, dnn.VGG16},
		},
	}
	if _, err := New(ok); err != nil {
		t.Errorf("valid sharded placement rejected: %v", err)
	}

	// Default multi-node placement derives from the overlap-gain grouping
	// and hosts every model.
	s, err := New(Config{Models: []dnn.ModelID{dnn.ResNet50, dnn.ResNet101, dnn.ResNet152, dnn.InceptionV3}, Nodes: 2})
	if err != nil {
		t.Fatalf("default 2-node placement: %v", err)
	}
	if s.NumNodes() != 2 {
		t.Fatalf("NumNodes = %d, want 2", s.NumNodes())
	}
}
