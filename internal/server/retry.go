// Client-side recovery: retry with exponential backoff, seeded jitter, and
// per-attempt timeouts that honor the remaining SLO budget. Every retried
// request carries an idempotency key (RequestID) so the gateway executes the
// query at most once even when responses are lost or duplicated on the wire,
// plus an Attempt counter so the gateway can account retry pressure.
package server

import (
	"context"
	"fmt"
	"math/rand"
	"net/http"
	"strconv"
	"sync"
	"time"
)

// RetryPolicy shapes the client's recovery behavior.
type RetryPolicy struct {
	// MaxAttempts bounds total tries, first included (default 3).
	MaxAttempts int
	// BaseBackoff seeds the exponential schedule (default 50ms); attempt n
	// sleeps BaseBackoff × Multiplier^n × jitter, capped at MaxBackoff.
	BaseBackoff time.Duration
	// MaxBackoff caps a single sleep (default 2s).
	MaxBackoff time.Duration
	// Multiplier grows the backoff between attempts (default 2).
	Multiplier float64
	// Jitter is the half-width of the multiplicative jitter band (default
	// 0.5: sleeps scale by a seeded uniform draw from [0.5, 1.5)). Zero
	// keeps the default; negative disables jitter.
	Jitter float64
	// JitterSeed seeds the jitter stream so retry schedules replay
	// deterministically (default 1).
	JitterSeed int64
	// SLOBudget bounds the whole operation in wall time, sleeps included;
	// when the budget cannot cover another backoff plus attempt, the last
	// response is returned instead of retrying. Zero means unbounded.
	SLOBudget time.Duration
	// PerAttemptTimeout bounds each individual attempt (default: the
	// remaining budget; unbounded when SLOBudget is zero too).
	PerAttemptTimeout time.Duration
}

func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = 3
	}
	if p.BaseBackoff <= 0 {
		p.BaseBackoff = 50 * time.Millisecond
	}
	if p.MaxBackoff <= 0 {
		p.MaxBackoff = 2 * time.Second
	}
	if p.Multiplier < 1 {
		p.Multiplier = 2
	}
	if p.Jitter == 0 {
		p.Jitter = 0.5
	}
	if p.JitterSeed == 0 {
		p.JitterSeed = 1
	}
	return p
}

// RetryStats reports what one InferRetry call did.
type RetryStats struct {
	// Attempts is the number of requests actually sent.
	Attempts int
	// Retries is Attempts-1 when positive.
	Retries int
	// BackoffTotal is the wall time spent sleeping between attempts.
	BackoffTotal time.Duration
	// BudgetExhausted reports that the SLO budget, not MaxAttempts or
	// success, ended the operation.
	BudgetExhausted bool
	// RetryAfterHonored counts sleeps taken from a 429's Retry-After header
	// instead of the exponential schedule.
	RetryAfterHonored int
	// DecodeErrors counts attempts whose response arrived but failed to
	// decode (server.DecodeError) — protocol faults, distinct from the
	// transport errors that merely lost the response on the wire.
	DecodeErrors int
}

// Retrier executes requests under a RetryPolicy. It is safe for concurrent
// use; the jitter stream is shared (and locked), so per-call schedules are
// deterministic only under serial use — deterministic *aggregate* behavior
// under concurrency is what the chaos harness checks instead.
type Retrier struct {
	policy RetryPolicy

	mu      sync.Mutex
	rng     *rand.Rand
	nextID  int64
	sleepFn func(context.Context, time.Duration) error // test seam
}

// NewRetrier builds a Retrier; zero policy fields take the defaults above.
func NewRetrier(policy RetryPolicy) *Retrier {
	p := policy.withDefaults()
	return &Retrier{
		policy:  p,
		rng:     rand.New(rand.NewSource(p.JitterSeed)),
		sleepFn: sleepCtx,
	}
}

// Policy returns the resolved policy (defaults applied).
func (r *Retrier) Policy() RetryPolicy { return r.policy }

func sleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// requestID mints a process-unique idempotency key.
func (r *Retrier) requestID() string {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.nextID++
	return fmt.Sprintf("rq-%x-%x", r.policy.JitterSeed, r.nextID)
}

// backoff returns the jittered sleep before retry number attempt (1-based).
func (r *Retrier) backoff(attempt int) time.Duration {
	d := float64(r.policy.BaseBackoff)
	for i := 1; i < attempt; i++ {
		d *= r.policy.Multiplier
		if d >= float64(r.policy.MaxBackoff) {
			d = float64(r.policy.MaxBackoff)
			break
		}
	}
	if r.policy.Jitter > 0 {
		r.mu.Lock()
		f := 1 + r.policy.Jitter*(2*r.rng.Float64()-1)
		r.mu.Unlock()
		d *= f
	}
	if d > float64(r.policy.MaxBackoff) {
		d = float64(r.policy.MaxBackoff)
	}
	return time.Duration(d)
}

// retriable reports whether an outcome is worth another attempt: transport
// errors (response possibly lost — the idempotency key makes the resend
// safe), 429 admission rejections (the backlog drains), and 5xx other than
// the gateway's terminal 504 drop verdict.
func retriable(status int, err error) bool {
	if err != nil {
		return true
	}
	switch status {
	case http.StatusTooManyRequests, http.StatusServiceUnavailable:
		return true
	}
	return status >= 500 && status != http.StatusGatewayTimeout
}

// retryAfter extracts a 429/503 Retry-After delay, if present and sane.
func retryAfter(h http.Header) (time.Duration, bool) {
	v := h.Get("Retry-After")
	if v == "" {
		return 0, false
	}
	sec, err := strconv.Atoi(v)
	if err != nil || sec < 0 {
		return 0, false
	}
	return time.Duration(sec) * time.Second, true
}

// InferRetry sends req under the retry policy. It assigns a RequestID when
// the caller did not, stamps the Attempt counter, and sleeps between tries —
// honoring a 429's Retry-After hint when it fits the remaining SLO budget.
// When the budget or MaxAttempts runs out, the last response and status are
// returned (with a nil error if that response was well-formed).
func (r *Retrier) InferRetry(ctx context.Context, c *Client, req InferRequest) (*InferResponse, int, RetryStats, error) {
	if req.RequestID == "" {
		req.RequestID = r.requestID()
	}
	var deadline time.Time
	if r.policy.SLOBudget > 0 {
		deadline = time.Now().Add(r.policy.SLOBudget)
	}
	var (
		st      RetryStats
		resp    *InferResponse
		status  int
		hdr     http.Header
		lastErr error
	)
	for attempt := 0; attempt < r.policy.MaxAttempts; attempt++ {
		req.Attempt = attempt
		attemptCtx, cancel := r.attemptContext(ctx, deadline)
		resp, status, hdr, lastErr = c.inferHeaders(attemptCtx, req)
		cancel()
		st.Attempts++
		if IsDecodeError(lastErr) {
			st.DecodeErrors++
		}
		if lastErr == nil && !retriable(status, nil) {
			st.Retries = st.Attempts - 1
			return resp, status, st, nil
		}
		if ctx.Err() != nil {
			break
		}
		if st.Attempts >= r.policy.MaxAttempts {
			break
		}
		sleep := r.backoff(st.Attempts)
		honored := false
		if lastErr == nil {
			if ra, ok := retryAfter(hdr); ok {
				sleep = ra
				honored = true
			}
		}
		if !deadline.IsZero() && time.Now().Add(sleep).After(deadline) {
			// The wait alone would blow the SLO budget: surface the last
			// verdict now instead of sleeping past the deadline.
			st.BudgetExhausted = true
			break
		}
		if err := r.sleepFn(ctx, sleep); err != nil {
			break
		}
		st.BackoffTotal += sleep
		if honored {
			st.RetryAfterHonored++
		}
	}
	st.Retries = st.Attempts - 1
	if ctx.Err() != nil && lastErr == nil && resp == nil {
		lastErr = ctx.Err()
	}
	return resp, status, st, lastErr
}

// attemptContext derives the per-attempt context from the policy and the
// remaining budget.
func (r *Retrier) attemptContext(ctx context.Context, deadline time.Time) (context.Context, context.CancelFunc) {
	timeout := r.policy.PerAttemptTimeout
	if !deadline.IsZero() {
		remaining := time.Until(deadline)
		if remaining <= 0 {
			remaining = time.Millisecond
		}
		if timeout <= 0 || remaining < timeout {
			timeout = remaining
		}
	}
	if timeout <= 0 {
		return context.WithCancel(ctx)
	}
	return context.WithTimeout(ctx, timeout)
}
