// Wire types of the gateway's HTTP contract. Admission decisions themselves
// live in internal/admit (shared with the chaos harness); this file keeps
// the request/response shapes and the rejection-reason vocabulary the
// clients parse.
package server

import "abacus/internal/admit"

// Rejection reasons reported on the wire (re-exported from internal/admit).
const (
	reasonDeadline  = admit.ReasonDeadline
	reasonQueueFull = admit.ReasonQueueFull
	reasonDraining  = admit.ReasonDraining
	reasonDegraded  = admit.ReasonDegraded
)

// InferRequest is the POST /v1/infer body.
type InferRequest struct {
	Model  string `json:"model"`
	Batch  int    `json:"batch"`
	SeqLen int    `json:"seqlen,omitempty"`
	// DeadlineMS is the per-request latency SLO in virtual ms; 0 selects the
	// service-wide QoS target.
	DeadlineMS float64 `json:"deadline_ms,omitempty"`
	// RequestID is an optional idempotency key: the gateway executes at most
	// one query per distinct ID, so a client retry after a lost response
	// cannot double-execute. The retrying client sets it automatically.
	RequestID string `json:"request_id,omitempty"`
	// Attempt is the zero-based client attempt number; attempts > 0 count
	// toward the gateway's retry metrics.
	Attempt int `json:"attempt,omitempty"`
}

// InferResponse is the /v1/infer reply (success, rejection, and error).
type InferResponse struct {
	Model        string  `json:"model"`
	Batch        int     `json:"batch"`
	SeqLen       int     `json:"seqlen,omitempty"`
	Accepted     bool    `json:"accepted"`
	Reason       string  `json:"reason,omitempty"`
	ArrivalMS    float64 `json:"arrival_ms,omitempty"`
	FinishMS     float64 `json:"finish_ms,omitempty"`
	LatencyMS    float64 `json:"latency_ms,omitempty"`
	DeadlineMS   float64 `json:"deadline_ms,omitempty"`
	PredictedMS  float64 `json:"predicted_ms,omitempty"`
	RetryAfterMS float64 `json:"retry_after_ms,omitempty"`
	Dropped      bool    `json:"dropped,omitempty"`
	Violated     bool    `json:"violated,omitempty"`
	// Duplicate marks an answer served from the idempotency cache or by
	// attaching to an in-flight query with the same RequestID.
	Duplicate bool `json:"duplicate,omitempty"`
	// Degraded marks a verdict rendered while the gateway was in degraded
	// mode (widened admission margin).
	Degraded bool   `json:"degraded,omitempty"`
	Error    string `json:"error,omitempty"`
}
