// Predictor-driven admission control (Clockwork-style): at arrival, the
// gateway predicts when the query would complete if admitted — current
// virtual time, plus its input transfer, plus the predicted work already
// admitted and unfinished, plus its own predicted solo execution — and
// rejects immediately when that misses the deadline. The backlog term is the
// sequential-execution bound; Abacus's deterministic overlap only improves
// on it, so admission errs on the safe side, and the controller's own
// query-drop mechanism remains the backstop for mid-flight infeasibility.
package server

import (
	"abacus/internal/dnn"
	"abacus/internal/gpusim"
	"abacus/internal/predictor"
	"abacus/internal/sched"
	"abacus/internal/sim"
)

// Rejection reasons reported on the wire.
const (
	reasonDeadline  = "deadline_unmeetable"
	reasonQueueFull = "queue_full"
	reasonDraining  = "draining"
)

// InferRequest is the POST /v1/infer body.
type InferRequest struct {
	Model  string `json:"model"`
	Batch  int    `json:"batch"`
	SeqLen int    `json:"seqlen,omitempty"`
	// DeadlineMS is the per-request latency SLO in virtual ms; 0 selects the
	// service-wide QoS target.
	DeadlineMS float64 `json:"deadline_ms,omitempty"`
}

// InferResponse is the /v1/infer reply (success, rejection, and error).
type InferResponse struct {
	Model        string  `json:"model"`
	Batch        int     `json:"batch"`
	SeqLen       int     `json:"seqlen,omitempty"`
	Accepted     bool    `json:"accepted"`
	Reason       string  `json:"reason,omitempty"`
	ArrivalMS    float64 `json:"arrival_ms,omitempty"`
	FinishMS     float64 `json:"finish_ms,omitempty"`
	LatencyMS    float64 `json:"latency_ms,omitempty"`
	DeadlineMS   float64 `json:"deadline_ms,omitempty"`
	PredictedMS  float64 `json:"predicted_ms,omitempty"`
	RetryAfterMS float64 `json:"retry_after_ms,omitempty"`
	Dropped      bool    `json:"dropped,omitempty"`
	Violated     bool    `json:"violated,omitempty"`
	Error        string  `json:"error,omitempty"`
}

// decision is one admission verdict.
type decision struct {
	ok      bool
	reason  string
	predMS  float64 // predicted completion latency (arrival-relative)
	workMS  float64 // this query's own predicted solo work (backlog unit)
	retryMS float64 // virtual-ms backoff hint on rejection
}

// admitter tracks the predicted backlog of admitted work. All fields are
// owned by the bridge loop goroutine.
type admitter struct {
	model    predictor.LatencyModel
	profile  gpusim.Profile
	services []*sched.Service
	queueCap int
	syncCost float64

	outstanding []int   // admitted-but-unfinished per service
	backlogMS   float64 // Σ predicted completion latencies of outstanding work
	soloCache   map[dnn.Input]map[int]float64
}

func newAdmitter(model predictor.LatencyModel, profile gpusim.Profile, services []*sched.Service, queueCap int, syncCost float64) *admitter {
	return &admitter{
		model:       model,
		profile:     profile,
		services:    services,
		queueCap:    queueCap,
		syncCost:    syncCost,
		outstanding: make([]int, len(services)),
		soloCache:   make(map[dnn.Input]map[int]float64),
	}
}

// soloPred returns the predicted exclusive latency (transfer + execution +
// group sync) of a full query, memoized: the served input space is small
// (Table 1), so steady state answers from the cache.
func (a *admitter) soloPred(service int, in dnn.Input) float64 {
	byService, ok := a.soloCache[in]
	if !ok {
		byService = make(map[int]float64)
		a.soloCache[in] = byService
	}
	if v, ok := byService[service]; ok {
		return v
	}
	svc := a.services[service]
	m := dnn.Get(svc.Model)
	g := predictor.Group{{
		Model:   svc.Model,
		OpStart: 0,
		OpEnd:   m.NumOps(),
		Batch:   in.Batch,
		SeqLen:  in.SeqLen,
	}}
	v := dnn.TransferTime(m, in, a.profile) + a.model.Predict(g) + a.syncCost
	byService[service] = v
	return v
}

// decide renders the admission verdict for a query arriving now.
func (a *admitter) decide(now sim.Time, service int, in dnn.Input, sloMS float64) decision {
	if sloMS <= 0 {
		sloMS = a.services[service].QoS
	}
	solo := a.soloPred(service, in)
	predMS := a.backlogMS + solo // arrival-relative predicted completion
	if a.outstanding[service] >= a.queueCap {
		return decision{reason: reasonQueueFull, predMS: predMS, workMS: solo, retryMS: a.backlogMS}
	}
	if predMS > sloMS {
		return decision{reason: reasonDeadline, predMS: predMS, workMS: solo, retryMS: predMS - sloMS}
	}
	return decision{ok: true, predMS: predMS, workMS: solo}
}

// admitted records an accepted query's predicted solo work.
func (a *admitter) admitted(service int, workMS float64) {
	a.outstanding[service]++
	a.backlogMS += workMS
}

// finish releases an admitted query's predicted work once it completes or
// is dropped.
func (a *admitter) finish(service int, workMS float64) {
	a.outstanding[service]--
	a.backlogMS -= workMS
	if a.backlogMS < 1e-9 {
		a.backlogMS = 0
	}
}
