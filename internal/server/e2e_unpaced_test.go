package server

import (
	"context"
	"testing"

	"abacus/internal/dnn"
	"abacus/internal/realtime"
	"abacus/internal/trace"
)

// TestEndToEndUnpaced runs the gateway in batch mode (realtime.Unpaced): the
// virtual clock free-runs, so nothing here depends on wall-clock pacing and
// the test asserts exact count conservation instead of latency percentiles.
// Unlike the paced realtime e2e test, it has no -short or race-detector
// skips — it IS the race-detector coverage for the full HTTP → admission →
// runtime → response path.
func TestEndToEndUnpaced(t *testing.T) {
	models := []dnn.ModelID{dnn.ResNet152, dnn.InceptionV3}
	arrivals := trace.NewGenerator(models, 21).Poisson(40, 3000)

	c := startGateway(t, Config{Models: models, Speedup: realtime.Unpaced})
	res, err := RunLoad(context.Background(), LoadConfig{
		Client:      c,
		Models:      models,
		Arrivals:    arrivals,
		Closed:      true,
		Concurrency: 8,
		Requests:    len(arrivals),
		Retry:       &RetryPolicy{MaxAttempts: 2, BaseBackoff: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	tot := res.Total
	if tot.Sent != len(arrivals) {
		t.Fatalf("sent %d, want %d", tot.Sent, len(arrivals))
	}
	if tot.Errors != 0 {
		t.Fatalf("transport/protocol errors: %d", tot.Errors)
	}
	// Count conservation: every request has exactly one final outcome.
	accounted := tot.Completed + tot.Dropped + tot.RejectedDeadline +
		tot.RejectedQueue + tot.RejectedDegraded + tot.Unavailable
	if accounted != tot.Sent {
		t.Fatalf("outcomes %d != sent %d (%+v)", accounted, tot.Sent, tot)
	}
	// In batch mode each query completes inside its own admission window, so
	// nothing is admitted onto a backlog and nothing can violate.
	if tot.Violated != 0 {
		t.Errorf("violations in unpaced mode: %d", tot.Violated)
	}
	if tot.Completed == 0 {
		t.Fatal("no queries completed")
	}

	// The gateway's own books must agree with the client's.
	st, err := c.Stats(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	var acc, comp, rej int64
	for _, s := range st.Services {
		acc += s.Accepted
		comp += s.Completed + s.Dropped
		rej += s.RejectedDeadline + s.RejectedQueue + s.RejectedDegraded + s.RejectedDraining
	}
	if acc != int64(tot.Accepted) {
		t.Errorf("gateway accepted %d, client saw %d", acc, tot.Accepted)
	}
	if comp != acc {
		t.Errorf("gateway accepted %d but finished %d", acc, comp)
	}
	if rej != int64(tot.Sent-tot.Accepted) {
		t.Errorf("gateway rejected %d, client saw %d", rej, tot.Sent-tot.Accepted)
	}

	body, err := c.Metrics(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidateExposition(body); err != nil {
		t.Errorf("metrics exposition invalid: %v", err)
	}
}
