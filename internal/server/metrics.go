// Prometheus text exposition (version 0.0.4) for the gateway, rendered by
// hand from the same snapshot that backs /statz — no client library, just
// the format: # HELP / # TYPE comments followed by name{labels} value
// samples.
package server

import (
	"bufio"
	"bytes"
	"fmt"
	"regexp"
	"strconv"
	"strings"
)

func renderMetrics(st Statz) []byte {
	var b bytes.Buffer
	emit := func(format string, args ...any) { fmt.Fprintf(&b, format, args...) }
	head := func(name, typ, help string) {
		emit("# HELP %s %s\n", name, help)
		emit("# TYPE %s %s\n", name, typ)
	}

	head("abacus_requests_total", "counter", "Requests by admission outcome.")
	for _, s := range st.Services {
		for _, o := range []struct {
			outcome string
			v       int64
		}{
			{"accepted", s.Accepted},
			{"rejected_deadline", s.RejectedDeadline},
			{"rejected_queue", s.RejectedQueue},
			{"rejected_draining", s.RejectedDraining},
			{"rejected_degraded", s.RejectedDegraded},
		} {
			emit("abacus_requests_total{service=%q,outcome=%q} %d\n", s.Model, o.outcome, o.v)
		}
	}

	head("abacus_queries_total", "counter", "Admitted queries by final result.")
	for _, s := range st.Services {
		good := s.Completed - (s.Violated - s.Dropped)
		emit("abacus_queries_total{service=%q,result=\"ok\"} %d\n", s.Model, good)
		emit("abacus_queries_total{service=%q,result=\"violated\"} %d\n", s.Model, s.Violated-s.Dropped)
		emit("abacus_queries_total{service=%q,result=\"dropped\"} %d\n", s.Model, s.Dropped)
	}

	head("abacus_queue_depth", "gauge", "Admitted-but-unfinished queries per service.")
	for _, s := range st.Services {
		emit("abacus_queue_depth{service=%q} %d\n", s.Model, s.QueueDepth)
	}

	head("abacus_latency_ms", "summary", "Completed-query latency over the recent window, virtual ms.")
	for _, s := range st.Services {
		if s.Completed > 0 {
			emit("abacus_latency_ms{service=%q,quantile=\"0.5\"} %s\n", s.Model, promFloat(s.P50MS))
			emit("abacus_latency_ms{service=%q,quantile=\"0.99\"} %s\n", s.Model, promFloat(s.P99MS))
		}
		emit("abacus_latency_ms_sum{service=%q} %s\n", s.Model, promFloat(s.MeanMS*float64(s.Completed)))
		emit("abacus_latency_ms_count{service=%q} %d\n", s.Model, s.Completed)
	}

	head("abacus_goodput_qps", "gauge", "Queries completed within QoS per virtual second.")
	for _, s := range st.Services {
		emit("abacus_goodput_qps{service=%q} %s\n", s.Model, promFloat(s.GoodputQPS))
	}

	head("abacus_qos_target_ms", "gauge", "Per-service QoS target, virtual ms.")
	for _, s := range st.Services {
		emit("abacus_qos_target_ms{service=%q} %s\n", s.Model, promFloat(s.QoSMS))
	}

	head("abacus_backlog_predicted_ms", "gauge", "Predicted unfinished work admitted to the device, virtual ms.")
	emit("abacus_backlog_predicted_ms %s\n", promFloat(st.BacklogPredMS))

	head("abacus_virtual_time_ms", "gauge", "Gateway virtual clock, ms.")
	emit("abacus_virtual_time_ms %s\n", promFloat(st.NowMS))

	head("abacus_draining", "gauge", "1 while the gateway refuses new work.")
	d := 0
	if st.Draining {
		d = 1
	}
	emit("abacus_draining %d\n", d)

	head("abacus_faults_total", "counter", "Faults absorbed by the gateway, by kind.")
	emit("abacus_faults_total{kind=\"malformed\"} %d\n", st.Faults.Malformed)
	emit("abacus_faults_total{kind=\"duplicate_suppressed\"} %d\n", st.Faults.DuplicatesSuppressed)

	head("abacus_retries_total", "counter", "Client retry attempts seen (requests with attempt > 0).")
	emit("abacus_retries_total %d\n", st.Faults.RetriesSeen)

	head("abacus_degraded", "gauge", "1 while degraded mode widens the admission margin.")
	dg := 0
	if st.Degrade.Active {
		dg = 1
	}
	emit("abacus_degraded %d\n", dg)

	head("abacus_degraded_transitions_total", "counter", "Degraded-mode enter/exit transitions.")
	emit("abacus_degraded_transitions_total %d\n", st.Degrade.Transitions)

	head("abacus_degraded_shed_total", "counter", "Admissions shed only because of the widened margin.")
	emit("abacus_degraded_shed_total %d\n", st.Degrade.Shed)

	head("abacus_divergence_ewma", "gauge", "EWMA of observed/predicted completion-latency ratio.")
	emit("abacus_divergence_ewma %s\n", promFloat(st.Degrade.Divergence))

	head("abacus_admission_margin", "gauge", "Widest per-service admission safety margin (1 while healthy).")
	emit("abacus_admission_margin %s\n", promFloat(st.Degrade.Margin))

	head("abacus_service_degraded", "gauge", "1 while the service's drift detector widens its admission margin.")
	for _, s := range st.Services {
		v := 0
		if s.DriftActive {
			v = 1
		}
		emit("abacus_service_degraded{service=%q} %d\n", s.Model, v)
	}

	head("abacus_service_admission_margin", "gauge", "Per-service admission safety margin (1 while healthy).")
	for _, s := range st.Services {
		emit("abacus_service_admission_margin{service=%q} %s\n", s.Model, promFloat(s.Margin))
	}

	head("abacus_service_divergence_ewma", "gauge", "Per-service EWMA of observed/predicted completion-latency ratio.")
	for _, s := range st.Services {
		emit("abacus_service_divergence_ewma{service=%q} %s\n", s.Model, promFloat(s.Divergence))
	}

	if st.PredictCache != nil {
		pc := st.PredictCache
		head("abacus_predict_cache_size", "gauge", "Group signatures currently memoized.")
		emit("abacus_predict_cache_size %d\n", pc.Size)

		head("abacus_predict_cache_capacity", "gauge", "Memoization cache capacity (signatures).")
		emit("abacus_predict_cache_capacity %d\n", pc.Capacity)

		head("abacus_predict_cache_hits_total", "counter", "Predictions answered from the group-signature cache.")
		emit("abacus_predict_cache_hits_total %d\n", pc.Hits)

		head("abacus_predict_cache_misses_total", "counter", "Predictions the duration model actually computed.")
		emit("abacus_predict_cache_misses_total %d\n", pc.Misses)

		head("abacus_predict_cache_evictions_total", "counter", "Signatures evicted by the clock hand.")
		emit("abacus_predict_cache_evictions_total %d\n", pc.Evictions)

		head("abacus_predict_cache_invalidations_total", "counter", "Whole-cache invalidations (calibration refits).")
		emit("abacus_predict_cache_invalidations_total %d\n", pc.Invalidations)
	}

	if len(st.Nodes) > 0 {
		head("abacus_node_virtual_time_ms", "gauge", "Per-node virtual clock, ms.")
		for _, n := range st.Nodes {
			emit("abacus_node_virtual_time_ms{node=\"%d\"} %s\n", n.Node, promFloat(n.NowMS))
		}

		head("abacus_node_backlog_predicted_ms", "gauge", "Predicted unfinished work admitted per node, virtual ms.")
		for _, n := range st.Nodes {
			emit("abacus_node_backlog_predicted_ms{node=\"%d\"} %s\n", n.Node, promFloat(n.BacklogPredMS))
		}

		head("abacus_node_queue_depth", "gauge", "Admitted-but-unfinished queries per node.")
		for _, n := range st.Nodes {
			emit("abacus_node_queue_depth{node=\"%d\"} %d\n", n.Node, n.QueueDepth)
		}

		head("abacus_node_degraded", "gauge", "1 while any hosted service's drift detector is active on the node.")
		for _, n := range st.Nodes {
			v := 0
			if n.Degrade.Active {
				v = 1
			}
			emit("abacus_node_degraded{node=\"%d\"} %d\n", n.Node, v)
		}

		head("abacus_node_routed_total", "counter", "Queries the cluster router admitted on the node.")
		for _, n := range st.Nodes {
			emit("abacus_node_routed_total{node=\"%d\"} %d\n", n.Node, n.Routed)
		}

		head("abacus_node_migrated_in_total", "counter", "Queries routed to the node away from a degraded replica.")
		for _, n := range st.Nodes {
			emit("abacus_node_migrated_in_total{node=\"%d\"} %d\n", n.Node, n.MigratedIn)
		}

		if anyNodeCache(st.Nodes) {
			head("abacus_node_predict_cache_hits_total", "counter", "Per-node predictions answered from the group-signature cache.")
			for _, n := range st.Nodes {
				if n.PredictCache != nil {
					emit("abacus_node_predict_cache_hits_total{node=\"%d\"} %d\n", n.Node, n.PredictCache.Hits)
				}
			}

			head("abacus_node_predict_cache_misses_total", "counter", "Per-node predictions the duration model actually computed.")
			for _, n := range st.Nodes {
				if n.PredictCache != nil {
					emit("abacus_node_predict_cache_misses_total{node=\"%d\"} %d\n", n.Node, n.PredictCache.Misses)
				}
			}
		}
	}

	if st.Autoscale != nil {
		as := st.Autoscale
		head("abacus_autoscale_target_nodes", "gauge", "Fleet size the controller currently wants.")
		emit("abacus_autoscale_target_nodes %d\n", as.TargetNodes)

		head("abacus_autoscale_nodes", "gauge", "Live nodes by lifecycle phase.")
		emit("abacus_autoscale_nodes{phase=\"warming\"} %d\n", as.WarmingNodes)
		emit("abacus_autoscale_nodes{phase=\"active\"} %d\n", as.ActiveNodes)
		emit("abacus_autoscale_nodes{phase=\"draining\"} %d\n", as.DrainingNodes)

		head("abacus_autoscale_retired_nodes_total", "counter", "Nodes drained and retired over the gateway's life.")
		emit("abacus_autoscale_retired_nodes_total %d\n", as.RetiredNodes)

		head("abacus_autoscale_peak_nodes", "gauge", "Largest live fleet seen so far.")
		emit("abacus_autoscale_peak_nodes %d\n", as.PeakNodes)

		head("abacus_autoscale_scale_actions_total", "counter", "Node-level scale actions by direction.")
		emit("abacus_autoscale_scale_actions_total{direction=\"out\"} %d\n", as.ScaleOuts)
		emit("abacus_autoscale_scale_actions_total{direction=\"in\"} %d\n", as.ScaleIns)

		head("abacus_autoscale_held_total", "counter", "Scale actions suppressed, by guard.")
		emit("abacus_autoscale_held_total{guard=\"hysteresis\"} %d\n", as.HeldHysteresis)
		emit("abacus_autoscale_held_total{guard=\"cooldown\"} %d\n", as.HeldCooldown)
		emit("abacus_autoscale_held_total{guard=\"max_nodes\"} %d\n", as.HeldMaxNodes)

		head("abacus_autoscale_ticks_total", "counter", "Control-loop observations.")
		emit("abacus_autoscale_ticks_total %d\n", as.Ticks)

		head("abacus_autoscale_node_ms_total", "counter", "Cumulative node lifetime, virtual ms.")
		emit("abacus_autoscale_node_ms_total %s\n", promFloat(as.NodeMS))

		head("abacus_autoscale_forecast_qps", "gauge", "EWMA offered-load forecast, virtual QPS.")
		emit("abacus_autoscale_forecast_qps %s\n", promFloat(as.ForecastQPS))
	}

	if st.Calibration != nil {
		cal := 0
		if st.Calibration.Enabled {
			cal = 1
		}
		head("abacus_calibration_enabled", "gauge", "1 while online latency-model calibration acts on feedback.")
		emit("abacus_calibration_enabled %d\n", cal)

		head("abacus_calibration_slope", "gauge", "Per-service affine correction slope (1 = predictions trusted as-is).")
		for _, c := range st.Calibration.Services {
			emit("abacus_calibration_slope{service=%q} %s\n", c.Model, promFloat(c.Slope))
		}

		head("abacus_calibration_intercept_ms", "gauge", "Per-service affine correction intercept, virtual ms.")
		for _, c := range st.Calibration.Services {
			emit("abacus_calibration_intercept_ms{service=%q} %s\n", c.Model, promFloat(c.Intercept))
		}

		head("abacus_calibration_samples_total", "counter", "Accepted uncontended feedback samples per service.")
		for _, c := range st.Calibration.Services {
			emit("abacus_calibration_samples_total{service=%q} %d\n", c.Model, c.Samples)
		}

		head("abacus_calibration_updates_total", "counter", "Applied correction updates per service (mini-refits included).")
		for _, c := range st.Calibration.Services {
			emit("abacus_calibration_updates_total{service=%q} %d\n", c.Model, c.Updates)
		}

		head("abacus_calibration_residual_ms", "gauge", "Signed corrected-prediction residual quantiles over the reservoir, virtual ms.")
		for _, c := range st.Calibration.Services {
			if c.Reservoir > 0 {
				emit("abacus_calibration_residual_ms{service=%q,quantile=\"0.5\"} %s\n", c.Model, promFloat(c.ResidualP50MS))
				emit("abacus_calibration_residual_ms{service=%q,quantile=\"0.99\"} %s\n", c.Model, promFloat(c.ResidualP99MS))
			}
		}
	}

	return b.Bytes()
}

// anyNodeCache reports whether any node runs a predict cache.
func anyNodeCache(nodes []NodeStatz) bool {
	for _, n := range nodes {
		if n.PredictCache != nil {
			return true
		}
	}
	return false
}

// promFloat renders a float in Prometheus sample syntax.
func promFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

var (
	metricNameRe = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	sampleRe     = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{([^}]*)\})?\s+(\S+)(\s+-?\d+)?$`)
	labelRe      = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*"$`)
)

// ValidateExposition checks that body parses as Prometheus text exposition
// format 0.0.4: well-formed HELP/TYPE comments, samples of the form
// name{labels} value, every sample's family declared by a preceding TYPE
// line, and finite or ±Inf/NaN float values. It returns the first offense.
func ValidateExposition(body []byte) error {
	typed := map[string]string{}
	sc := bufio.NewScanner(bytes.NewReader(body))
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if strings.TrimSpace(line) == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.SplitN(line, " ", 4)
			if len(fields) < 3 || (fields[1] != "HELP" && fields[1] != "TYPE") {
				return fmt.Errorf("line %d: malformed comment %q", lineNo, line)
			}
			if !metricNameRe.MatchString(fields[2]) {
				return fmt.Errorf("line %d: invalid metric name %q", lineNo, fields[2])
			}
			if fields[1] == "TYPE" {
				if len(fields) != 4 {
					return fmt.Errorf("line %d: TYPE without a type", lineNo)
				}
				switch fields[3] {
				case "counter", "gauge", "summary", "histogram", "untyped":
				default:
					return fmt.Errorf("line %d: unknown type %q", lineNo, fields[3])
				}
				typed[fields[2]] = fields[3]
			}
			continue
		}
		m := sampleRe.FindStringSubmatch(line)
		if m == nil {
			return fmt.Errorf("line %d: malformed sample %q", lineNo, line)
		}
		name, labels, value := m[1], m[3], m[4]
		if !familyDeclared(typed, name) {
			return fmt.Errorf("line %d: sample %q has no preceding TYPE", lineNo, name)
		}
		if labels != "" {
			for _, lab := range splitLabels(labels) {
				if !labelRe.MatchString(lab) {
					return fmt.Errorf("line %d: malformed label %q", lineNo, lab)
				}
			}
		}
		switch value {
		case "+Inf", "-Inf", "NaN":
		default:
			if _, err := strconv.ParseFloat(value, 64); err != nil {
				return fmt.Errorf("line %d: bad value %q", lineNo, value)
			}
		}
	}
	return sc.Err()
}

// familyDeclared matches a sample name against declared families, allowing
// the summary/histogram suffixes.
func familyDeclared(typed map[string]string, name string) bool {
	if _, ok := typed[name]; ok {
		return true
	}
	for _, suffix := range []string{"_sum", "_count", "_bucket"} {
		if base, ok := strings.CutSuffix(name, suffix); ok {
			if t := typed[base]; t == "summary" || t == "histogram" {
				return true
			}
		}
	}
	return false
}

// splitLabels splits `a="x",b="y"` on commas outside quotes.
func splitLabels(s string) []string {
	var out []string
	depth := false // inside quotes
	start := 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '\\':
			i++
		case '"':
			depth = !depth
		case ',':
			if !depth {
				out = append(out, s[start:i])
				start = i + 1
			}
		}
	}
	if start < len(s) {
		out = append(out, s[start:])
	}
	return out
}
