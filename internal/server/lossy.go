// LossyTransport is the load generator's unreliable network: an
// http.RoundTripper that drops inference requests in transit with a seeded
// probability, half of them before the request reaches the gateway and half
// after the gateway has already answered (the response is lost on the way
// back). The split matters: an after-send drop leaves the query executed but
// unacknowledged, so a correct client must retry under the same idempotency
// key and the gateway must suppress the re-execution — exactly the path
// server.Retrier plus the dedupe cache exist for.
package server

import (
	"fmt"
	"io"
	"net/http"
	"sync/atomic"
)

// LossyTransport drops /v1/infer requests with probability p; every other
// path (health, stats, metrics) passes through untouched so harnesses can
// share one client. Safe for concurrent use.
type LossyTransport struct {
	inner http.RoundTripper
	p     float64
	seed  int64

	attempts      atomic.Int64
	droppedBefore atomic.Int64
	droppedAfter  atomic.Int64
}

// NewLossyTransport wraps inner (nil = http.DefaultTransport) with a drop
// probability in [0, 1] and a seed for the drop coins.
func NewLossyTransport(inner http.RoundTripper, dropProb float64, seed int64) *LossyTransport {
	if inner == nil {
		inner = http.DefaultTransport
	}
	if dropProb < 0 || dropProb > 1 {
		panic(fmt.Sprintf("server: lossy drop probability %v outside [0, 1]", dropProb))
	}
	return &LossyTransport{inner: inner, p: dropProb, seed: seed}
}

// DroppedBeforeSend counts requests lost before reaching the gateway.
func (t *LossyTransport) DroppedBeforeSend() int64 { return t.droppedBefore.Load() }

// DroppedAfterSend counts responses lost after the gateway answered.
func (t *LossyTransport) DroppedAfterSend() int64 { return t.droppedAfter.Load() }

// Drops counts all injected losses.
func (t *LossyTransport) Drops() int64 { return t.droppedBefore.Load() + t.droppedAfter.Load() }

// RoundTrip implements http.RoundTripper.
func (t *LossyTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	if t.p == 0 || req.URL.Path != "/v1/infer" {
		return t.inner.RoundTrip(req)
	}
	n := t.attempts.Add(1) - 1
	coin := lossyCoin(t.seed, n)
	if coin < t.p/2 {
		// Lost on the way out: the gateway never sees the request.
		t.droppedBefore.Add(1)
		return nil, fmt.Errorf("lossy: request %d dropped in transit", n)
	}
	resp, err := t.inner.RoundTrip(req)
	if err != nil {
		return nil, err
	}
	if coin < t.p {
		// Lost on the way back: the gateway already executed the query, but
		// the caller only ever learns via retry.
		t.droppedAfter.Add(1)
		_, _ = io.Copy(io.Discard, resp.Body)
		_ = resp.Body.Close()
		return nil, fmt.Errorf("lossy: response %d dropped in transit", n)
	}
	return resp, nil
}

// lossyCoin is a splitmix64-finalized uniform draw in [0, 1) keyed by (seed,
// attempt) — the same generator the chaos harness flips, so a drop schedule
// replays for a given seed and attempt order.
func lossyCoin(seed, i int64) float64 {
	x := uint64(seed)*0x9e3779b97f4a7c15 + uint64(i)*0xbf58476d1ce4e5b9
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return float64(x>>11) / (1 << 53)
}
