//go:build !race

package server

// raceEnabled reports whether the race detector is compiled in; real-time
// pacing tests skip under it because instrumented simulation runs slower
// than the wall clock it is paced against.
const raceEnabled = false
