package server

import (
	"context"
	"net/http"
	"testing"
	"time"

	"abacus/internal/dnn"
	"abacus/internal/realtime"
	"abacus/internal/trace"
)

// TestLossyClientsConserveCounts drives a live unpaced gateway through a
// transport that drops a quarter of the inference traffic — half before the
// gateway sees the request, half after it has answered — with retries
// recovering the losses. The assertions are conservation laws: every client
// request ends in exactly one outcome, every admitted query finishes, and
// after-send drops surface as suppressed duplicates rather than double
// executions.
func TestLossyClientsConserveCounts(t *testing.T) {
	models := []dnn.ModelID{dnn.ResNet152, dnn.InceptionV3}
	arrivals := trace.NewGenerator(models, 29).Poisson(40, 2500)

	c := startGateway(t, Config{Models: models, Speedup: realtime.Unpaced})
	lossy := NewLossyTransport(nil, 0.25, 29)
	lc := NewClient(c.base, &http.Client{Transport: lossy})

	res, err := RunLoad(context.Background(), LoadConfig{
		Client:      lc,
		Models:      models,
		Arrivals:    arrivals,
		Closed:      true,
		Concurrency: 8,
		Requests:    len(arrivals),
		Retry:       &RetryPolicy{MaxAttempts: 4, BaseBackoff: time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	tot := res.Total
	if tot.Sent != len(arrivals) {
		t.Fatalf("sent %d, want %d", tot.Sent, len(arrivals))
	}
	if lossy.Drops() == 0 {
		t.Fatal("lossy transport dropped nothing — fault path untested")
	}
	if lossy.DroppedBeforeSend() == 0 || lossy.DroppedAfterSend() == 0 {
		t.Errorf("want drops on both legs, got before=%d after=%d",
			lossy.DroppedBeforeSend(), lossy.DroppedAfterSend())
	}
	if tot.Retries == 0 {
		t.Error("no retries despite injected drops")
	}

	// Client-side conservation: every request has exactly one final outcome.
	// Errors are legal here — a request whose every attempt was dropped ends
	// as a transport error — but each still counts exactly once.
	accounted := tot.Completed + tot.Dropped + tot.RejectedDeadline +
		tot.RejectedQueue + tot.RejectedDegraded + tot.Unavailable + tot.Errors
	if accounted != tot.Sent {
		t.Fatalf("outcomes %d != sent %d (%+v)", accounted, tot.Sent, tot)
	}

	// Gateway-side conservation: everything admitted finishes, and the client
	// can never report more completions than the gateway executed.
	st, err := c.Stats(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	var acc, fin int64
	for _, s := range st.Services {
		acc += s.Accepted
		fin += s.Completed + s.Dropped
	}
	if fin != acc {
		t.Errorf("gateway accepted %d but finished %d", acc, fin)
	}
	if int64(tot.Completed) > acc {
		t.Errorf("client completed %d > gateway accepted %d", tot.Completed, acc)
	}

	// After-send drops force a retry of an already-executed query; the
	// idempotency cache must have answered at least one of those instead of
	// re-running it.
	if st.Faults.RetriesSeen == 0 {
		t.Error("gateway saw no retry attempts")
	}
	if st.Faults.DuplicatesSuppressed == 0 {
		t.Error("no duplicates suppressed despite after-send drops")
	}
}
