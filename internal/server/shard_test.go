// Property test for admission/stats sharding: the gateway's observable
// behavior — every /v1/infer response body and status, the final /statz
// document, and the /metrics exposition — must be byte-identical at any
// StatShards count, because sharding only changes lock contention, never
// counter values or admission verdicts. The subtests run under t.Parallel so
// the property holds at any -parallel width, each width driving its own
// gateway through an identical serial request sequence.
package server

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"abacus/internal/dnn"
	"abacus/internal/realtime"
)

// shardTraffic is the request sequence every run replays: accepted queries
// across three services and two nodes, deadline rejections, malformed
// bodies, a validation failure, and duplicate suppression via request IDs.
func shardTraffic() []string {
	seq := []string{
		`{"model":"Res50","batch":4}`,
		`{"model":"IncepV3","batch":2}`,
		`{"model":"Res50","batch":1,"deadline_ms":0.001}`, // predicted completion cannot fit
		`{"model":"Bert","batch":2,"seqlen":64}`,
		`{not json`,
		`{"model":"Res50","batch":4,"request_id":"dup-1"}`,
		`{"model":"Res50","batch":4,"request_id":"dup-1"}`, // answered from the idempotency cache
		`{"model":"nope","batch":1}`,
		`{"model":"Bert","batch":1,"seqlen":128,"attempt":2}`,
	}
	for i := 0; i < 8; i++ {
		seq = append(seq,
			fmt.Sprintf(`{"model":"Res50","batch":%d}`, 1+i%8),
			fmt.Sprintf(`{"model":"IncepV3","batch":%d,"deadline_ms":%d}`, 1+i%4, 200+i),
			fmt.Sprintf(`{"model":"Bert","batch":1,"seqlen":64,"request_id":"rq-%d"}`, i),
		)
	}
	return seq
}

// shardRun drives one gateway through the sequence and returns everything a
// client could observe, concatenated.
func shardRun(t *testing.T, shards int) string {
	t.Helper()
	s, err := New(Config{
		Models:     []dnn.ModelID{dnn.ResNet50, dnn.InceptionV3, dnn.Bert},
		Nodes:      2,
		Placement:  [][]dnn.ModelID{{dnn.ResNet50, dnn.InceptionV3}, {dnn.Bert, dnn.ResNet50}},
		Speedup:    realtime.Unpaced,
		StatShards: shards,
	})
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	defer s.Drain()
	h := s.Handler()
	var out strings.Builder
	for _, body := range shardTraffic() {
		req := httptest.NewRequest(http.MethodPost, "/v1/infer", strings.NewReader(body))
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		fmt.Fprintf(&out, "%d %s", rec.Code, rec.Body.String())
	}
	for _, path := range []string{"/statz", "/metrics"} {
		req := httptest.NewRequest(http.MethodGet, path, nil)
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		fmt.Fprintf(&out, "%d %s", rec.Code, rec.Body.String())
	}
	return out.String()
}

func TestStatShardDeterminism(t *testing.T) {
	want := shardRun(t, 1) // the single-global-lock reference
	for _, shards := range []int{0, 2, 3, 5, 8, 64} {
		shards := shards
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			t.Parallel()
			got := shardRun(t, shards)
			if got != want {
				t.Errorf("output diverges from single-lock reference\n got: %s\nwant: %s",
					firstDiff(got, want), firstDiff(want, got))
			}
		})
	}
}

// firstDiff returns a window around the first byte where a and b diverge.
func firstDiff(a, b string) string {
	i := 0
	for i < len(a) && i < len(b) && a[i] == b[i] {
		i++
	}
	lo := i - 40
	if lo < 0 {
		lo = 0
	}
	hi := i + 80
	if hi > len(a) {
		hi = len(a)
	}
	return fmt.Sprintf("…%s… (offset %d)", a[lo:hi], i)
}
