package server

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"abacus/internal/dnn"
)

// fakeGateway serves canned /v1/infer verdicts for retry-path tests that
// must not depend on real pacing.
func fakeGateway(t *testing.T, handler http.HandlerFunc) *Client {
	t.Helper()
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/infer", handler)
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return NewClient(srv.URL, nil)
}

func writeVerdict(w http.ResponseWriter, code int, resp InferResponse) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(resp)
}

// TestRetryBudgetExhaustedMidSLO: the exponential schedule runs out of SLO
// budget before MaxAttempts, and the retrier surfaces the last verdict
// instead of sleeping past the deadline.
func TestRetryBudgetExhaustedMidSLO(t *testing.T) {
	var hits atomic.Int64
	c := fakeGateway(t, func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		writeVerdict(w, http.StatusServiceUnavailable, InferResponse{Reason: reasonDraining})
	})
	r := NewRetrier(RetryPolicy{
		MaxAttempts: 10,
		BaseBackoff: 40 * time.Millisecond,
		Multiplier:  4,
		Jitter:      -1, // deterministic schedule: 40ms, 160ms, 640ms...
		SLOBudget:   300 * time.Millisecond,
	})
	start := time.Now()
	resp, status, st, err := r.InferRetry(context.Background(), c, InferRequest{Model: "x"})
	elapsed := time.Since(start)
	if err != nil {
		t.Fatal(err)
	}
	if status != http.StatusServiceUnavailable || resp == nil {
		t.Fatalf("want last 503 verdict back, got status %d resp %+v", status, resp)
	}
	if !st.BudgetExhausted {
		t.Errorf("budget not marked exhausted: %+v", st)
	}
	if st.Attempts >= 10 || st.Attempts < 2 {
		t.Errorf("attempts = %d, want a few but fewer than MaxAttempts", st.Attempts)
	}
	if int64(st.Attempts) != hits.Load() {
		t.Errorf("attempts %d != server hits %d", st.Attempts, hits.Load())
	}
	if elapsed > time.Second {
		t.Errorf("retrier slept past its 300ms budget: %v", elapsed)
	}
}

// TestRetryAfterHonoredWithinBudget: a 429's Retry-After hint replaces the
// exponential backoff when the budget can cover it.
func TestRetryAfterHonoredWithinBudget(t *testing.T) {
	var hits atomic.Int64
	c := fakeGateway(t, func(w http.ResponseWriter, r *http.Request) {
		if hits.Add(1) == 1 {
			w.Header().Set("Retry-After", "0")
			writeVerdict(w, http.StatusTooManyRequests, InferResponse{Reason: reasonQueueFull})
			return
		}
		writeVerdict(w, http.StatusOK, InferResponse{Accepted: true, LatencyMS: 1})
	})
	r := NewRetrier(RetryPolicy{MaxAttempts: 3, BaseBackoff: time.Hour}) // backoff must not be used
	start := time.Now()
	resp, status, st, err := r.InferRetry(context.Background(), c, InferRequest{Model: "x"})
	if err != nil {
		t.Fatal(err)
	}
	if status != http.StatusOK || !resp.Accepted {
		t.Fatalf("want success after one retry, got %d %+v", status, resp)
	}
	if st.Attempts != 2 || st.RetryAfterHonored != 1 {
		t.Errorf("stats = %+v, want 2 attempts with 1 honored Retry-After", st)
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Errorf("hour-long base backoff was used despite Retry-After: %v", elapsed)
	}
}

// TestRetryAfterExceedingBudgetReturnsThe429: when the server's Retry-After
// hint alone would blow the SLO budget, the retrier hands the 429 back
// immediately rather than waiting out a hopeless hint.
func TestRetryAfterExceedingBudgetReturnsThe429(t *testing.T) {
	c := fakeGateway(t, func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "30")
		writeVerdict(w, http.StatusTooManyRequests, InferResponse{Reason: reasonDeadline})
	})
	r := NewRetrier(RetryPolicy{MaxAttempts: 5, BaseBackoff: time.Millisecond, SLOBudget: 200 * time.Millisecond})
	start := time.Now()
	resp, status, st, err := r.InferRetry(context.Background(), c, InferRequest{Model: "x"})
	elapsed := time.Since(start)
	if err != nil {
		t.Fatal(err)
	}
	if status != http.StatusTooManyRequests || resp.Reason != reasonDeadline {
		t.Fatalf("want the 429 back, got %d %+v", status, resp)
	}
	if st.Attempts != 1 || !st.BudgetExhausted {
		t.Errorf("stats = %+v, want 1 attempt, budget exhausted", st)
	}
	if elapsed > 5*time.Second {
		t.Errorf("slept toward a 30s Retry-After despite a 200ms budget: %v", elapsed)
	}
}

// TestRetryTransportErrorResends: a dropped connection (response lost) is
// retried — safe because the request carries an idempotency key.
func TestRetryTransportErrorResends(t *testing.T) {
	var hits atomic.Int64
	var gotID atomic.Value
	c := fakeGateway(t, func(w http.ResponseWriter, r *http.Request) {
		var req InferRequest
		_ = json.NewDecoder(r.Body).Decode(&req)
		if hits.Add(1) == 1 {
			// Kill the connection before any response bytes.
			hj, ok := w.(http.Hijacker)
			if !ok {
				t.Error("recorder not hijackable")
				return
			}
			conn, _, _ := hj.Hijack()
			conn.Close()
			return
		}
		gotID.Store(req.RequestID)
		if req.Attempt != 1 {
			t.Errorf("retry attempt = %d, want 1", req.Attempt)
		}
		writeVerdict(w, http.StatusOK, InferResponse{Accepted: true})
	})
	r := NewRetrier(RetryPolicy{MaxAttempts: 3, BaseBackoff: time.Millisecond})
	resp, status, st, err := r.InferRetry(context.Background(), c, InferRequest{Model: "x"})
	if err != nil || status != http.StatusOK || !resp.Accepted {
		t.Fatalf("want success after transport retry, got %d %+v err=%v", status, resp, err)
	}
	if st.Attempts != 2 {
		t.Errorf("attempts = %d, want 2", st.Attempts)
	}
	if id, _ := gotID.Load().(string); id == "" {
		t.Error("retried request carried no idempotency key")
	}
}

// TestDuplicateSuppression: two requests with the same RequestID — racing
// in-flight or arriving after completion — execute exactly one query; the
// second caller gets the same outcome flagged Duplicate.
func TestDuplicateSuppression(t *testing.T) {
	models := []dnn.ModelID{dnn.ResNet152}
	c := startGateway(t, Config{Models: models, Speedup: 1})
	req := InferRequest{Model: models[0].String(), Batch: 16, RequestID: "dup-1"}

	var (
		wg    sync.WaitGroup
		resps [2]*InferResponse
		stats [2]int
		errs  [2]error
	)
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resps[i], stats[i], errs[i] = c.Infer(context.Background(), req)
		}(i)
	}
	wg.Wait()
	for i := 0; i < 2; i++ {
		if errs[i] != nil {
			t.Fatalf("request %d: %v", i, errs[i])
		}
		if stats[i] != http.StatusOK || !resps[i].Accepted {
			t.Fatalf("request %d: status %d resp %+v", i, stats[i], resps[i])
		}
	}
	if resps[0].FinishMS != resps[1].FinishMS {
		t.Errorf("duplicates saw different outcomes: %v vs %v", resps[0].FinishMS, resps[1].FinishMS)
	}
	if resps[0].Duplicate == resps[1].Duplicate {
		t.Errorf("exactly one response must be flagged duplicate: %v / %v",
			resps[0].Duplicate, resps[1].Duplicate)
	}

	// A late retry of the same ID answers from the completed-outcome cache.
	resp3, status3, err := c.Infer(context.Background(), req)
	if err != nil || status3 != http.StatusOK {
		t.Fatalf("late duplicate: status %d err %v", status3, err)
	}
	if !resp3.Duplicate || resp3.FinishMS != resps[0].FinishMS {
		t.Errorf("late duplicate not served from cache: %+v", resp3)
	}

	st, err := c.Stats(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if got := st.Services[0].Accepted; got != 1 {
		t.Errorf("gateway accepted %d queries for one RequestID, want 1", got)
	}
	if got := st.Services[0].Completed; got != 1 {
		t.Errorf("completed = %d, want 1", got)
	}
	if got := st.Faults.DuplicatesSuppressed; got != 2 {
		t.Errorf("duplicates_suppressed = %d, want 2", got)
	}
}

// TestMalformedBodiesCountedAndRejected: junk bodies and oversized payloads
// get 400 and bump the malformed counter; they never reach admission.
func TestMalformedBodiesCountedAndRejected(t *testing.T) {
	models := []dnn.ModelID{dnn.ResNet152}
	c := startGateway(t, Config{Models: models, Speedup: 200, MaxBodyBytes: 256})

	post := func(body string) int {
		t.Helper()
		resp, err := http.Post(c.base+"/v1/infer", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		return resp.StatusCode
	}
	if code := post("{not json"); code != http.StatusBadRequest {
		t.Errorf("junk body: status %d, want 400", code)
	}
	big := make([]byte, 1024)
	for i := range big {
		big[i] = 'a'
	}
	if code := post(`{"model":"` + string(big) + `"}`); code != http.StatusBadRequest {
		t.Errorf("oversized body: status %d, want 400", code)
	}
	st, err := c.Stats(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if st.Faults.Malformed != 2 {
		t.Errorf("malformed = %d, want 2", st.Faults.Malformed)
	}
	if st.Services[0].Accepted != 0 {
		t.Errorf("malformed requests reached admission: %+v", st.Services[0])
	}
}
