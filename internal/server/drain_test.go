package server

import (
	"context"
	"net"
	"net/http"
	"testing"
	"time"

	"abacus/internal/dnn"
)

// TestGracefulDrainCompletesInFlight covers the drain satellite: a query in
// flight when drain starts is fast-forwarded to completion and answered 200
// before the listener closes, while requests arriving after the drain flag
// flips get 503.
func TestGracefulDrainCompletesInFlight(t *testing.T) {
	s, err := New(Config{
		Models: []dnn.ModelID{dnn.ResNet152},
		// Slow pacing (half real time) so the query is genuinely still in
		// flight when Drain fires; the flush then completes it instantly.
		Speedup: 0.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- s.ServeListener(ln) }()
	c := NewClient("http://"+ln.Addr().String(), nil)
	ctx := context.Background()
	if err := c.WaitReady(ctx, 5*time.Second); err != nil {
		t.Fatal(err)
	}

	type result struct {
		resp   *InferResponse
		status int
		err    error
	}
	inflight := make(chan result, 1)
	go func() {
		resp, status, err := c.Infer(ctx, InferRequest{Model: "Res152", Batch: 32})
		inflight <- result{resp, status, err}
	}()

	// Let the query reach the device. At speedup 0.5 a batch-32 Res152 pass
	// (~100 virtual ms) takes ~200 wall ms, so 50ms in it is still running.
	time.Sleep(50 * time.Millisecond)

	shutdownErr := make(chan error, 1)
	go func() {
		sctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		shutdownErr <- s.Shutdown(sctx)
	}()

	select {
	case r := <-inflight:
		if r.err != nil {
			t.Fatalf("in-flight query errored during drain: %v", r.err)
		}
		if r.status != http.StatusOK {
			t.Fatalf("in-flight query got %d during drain, want 200 (resp %+v)", r.status, r.resp)
		}
		if r.resp.Violated || r.resp.Dropped {
			t.Errorf("drained query outcome %+v", r.resp)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("in-flight query never answered during drain")
	}

	if err := <-shutdownErr; err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if err := <-serveErr; err != nil {
		t.Fatalf("serve returned %v after graceful shutdown", err)
	}

	// The listener is closed now: new connections must fail.
	if _, _, err := c.Infer(ctx, InferRequest{Model: "Res152", Batch: 8}); err == nil {
		t.Error("infer succeeded against a shut-down gateway")
	}
}

// TestDrainingRejectsNewWork covers the second half of the satellite: once
// draining starts, not-yet-admitted queries get 503 rather than queueing.
func TestDrainingRejectsNewWork(t *testing.T) {
	s, c := newTestServer(t, Config{Models: []dnn.ModelID{dnn.ResNet50}, Speedup: 1000})
	ctx := context.Background()
	if _, status, err := c.Infer(ctx, InferRequest{Model: "Res50", Batch: 8}); err != nil || status != http.StatusOK {
		t.Fatalf("pre-drain infer: status %d err %v", status, err)
	}

	s.Drain()

	resp, status, err := c.Infer(ctx, InferRequest{Model: "Res50", Batch: 8})
	if err != nil {
		t.Fatal(err)
	}
	if status != http.StatusServiceUnavailable {
		t.Fatalf("post-drain infer got %d, want 503 (resp %+v)", status, resp)
	}
	if resp.Reason != reasonDraining {
		t.Errorf("post-drain reason %q, want %q", resp.Reason, reasonDraining)
	}

	st, err := c.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !st.Draining {
		t.Error("statz does not report draining")
	}
}
