// Package server is the online serving gateway: an HTTP front end over the
// Abacus runtime driven in wall-clock time by internal/realtime. Requests
// arrive on POST /v1/infer, pass Clockwork-style predictor-driven admission
// control (reject now if the predicted completion misses the deadline), and
// wait for their query to complete on the paced virtual clock. The gateway
// also exposes /healthz, /statz (JSON per-service outcomes), and /metrics
// (Prometheus text exposition), and drains gracefully: in-flight queries are
// answered before the server stops admitting work for good.
//
// Robustness features (PR 3): per-request idempotency keys with duplicate
// suppression, a degraded mode that widens the admission margin when
// predicted-vs-observed latency diverges (internal/admit), request-body
// size caps and read timeouts against malformed and slow-loris clients,
// and fault/retry counters on /statz and /metrics.
//
// Sharded serving (PR 6): the gateway fronts N per-GPU nodes, each a full
// engine + bridge + admitter + calibration stack (see node.go). Placement
// seeds from the §7.8 overlap-gain grouping unless pinned explicitly; the
// router sends each query to the least-loaded healthy node hosting its
// model, migrating away from nodes whose per-service drift detector has
// tripped. RequestID routes are sticky so duplicate suppression keeps
// working across retries.
package server

import (
	"context"
	"encoding/json"
	"fmt"
	"math"
	"net"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"abacus/internal/admit"
	"abacus/internal/autoscale"
	"abacus/internal/calib"
	"abacus/internal/cluster"
	"abacus/internal/core"
	"abacus/internal/dnn"
	"abacus/internal/gpusim"
	"abacus/internal/predictor"
	"abacus/internal/realtime"
	"abacus/internal/scaler"
	"abacus/internal/sched"
	"abacus/internal/stats"
	"abacus/internal/trace"
)

// Config assembles a gateway.
type Config struct {
	// Models are the deployed services. With one node they must all co-locate
	// (1..predictor.MaxCoLocated); with several, each node's share is bounded
	// instead.
	Models []dnn.ModelID
	// Nodes is how many per-GPU serving nodes back the gateway (default 1,
	// the single-engine gateway; defaults to len(Placement) when a placement
	// is pinned).
	Nodes int
	// Placement pins each node's hosted models. Nil derives a placement: one
	// node hosts everything; several nodes replicate the §7.8 overlap-gain
	// groups round-robin so every group has migration targets. Every model
	// must be hosted by at least one node.
	Placement [][]dnn.ModelID
	// QoSFactor scales per-service QoS over max-input solo latency
	// (default 2, the paper's setting).
	QoSFactor float64
	// Speedup is the wall-clock pacing factor (virtual ms per wall ms;
	// default 1 = real time; realtime.Unpaced for batch mode).
	Speedup float64
	// QueueCap bounds admitted-but-unfinished queries per service
	// (default 64); beyond it the gateway sheds load with 429.
	QueueCap int
	// Model is the duration model for both the Abacus controller and the
	// admission predictor; nil selects the exact oracle. With several nodes
	// it is shared across their loop goroutines and must be safe for
	// concurrent use (the built-in models are pure).
	Model predictor.LatencyModel
	// Sched carries controller knobs; zero value = sched.DefaultConfig.
	Sched sched.Config
	// SyncCost is the per-group synchronization cost (default 0.02 ms).
	SyncCost float64
	// DrainTimeout bounds Shutdown's graceful drain (default 10s).
	DrainTimeout time.Duration
	// Degrade tunes the degraded-mode controller; the zero value enables it
	// with defaults, Disabled pins the admission margin at 1.
	Degrade admit.DegradeConfig
	// Calib, when non-nil, enables online latency-model calibration: every
	// completed query feeds a per-service feedback tracker and both the
	// scheduler and admission predict through the corrected model. Each node
	// calibrates independently (its GPU, its feedback). Nil leaves
	// calibration off.
	Calib *calib.Config
	// MaxBodyBytes caps the /v1/infer request body (default 1 MiB); larger
	// bodies are rejected 400 and counted as malformed.
	MaxBodyBytes int64
	// ReadHeaderTimeout bounds how long a client may dribble request
	// headers (default 5s) — the slow-loris guard.
	ReadHeaderTimeout time.Duration
	// ReadTimeout bounds reading an entire request including its body
	// (default 30s). Response writing is unaffected, so paced inference
	// waits are not.
	ReadTimeout time.Duration
	// DedupeWindow is how many completed request IDs each node's idempotency
	// cache remembers (default 4096).
	DedupeWindow int
	// PredictCache bounds the per-node group-signature memoization cache
	// wrapped around the duration model (predictor.Memoized): steady-state
	// scheduling rounds re-predict the same group signatures, and the cache
	// answers repeats without re-running the MLP. 0 selects the default
	// (4096 signatures); negative disables caching. A calibration refit of
	// one service invalidates only that service's entries.
	PredictCache int
	// Capture, when non-nil, records every validated, non-duplicate arrival
	// the gateway sees (virtual time, global service index, input) — a live
	// session becomes a replayable schedule that tracev2 can persist
	// byte-identically (see cmd/abacus-gateway -trace). Recording happens on
	// the owning node's loop goroutine at admission time, so captured times
	// are the exact virtual instants admission reasoned about.
	Capture *trace.Capture
	// Autoscale, when non-nil, turns the fixed fleet into a live elastic one:
	// the gateway starts at MinNodes replicated nodes (every node hosts all
	// of Models), a wall-clock control loop observes offered QPS every
	// IntervalMS of virtual time, and nodes are added (warm-up probe trickle
	// first) and drained (gracefully, with a terminal stats snapshot) as
	// demand moves. Requires the derived replicated placement (Placement nil),
	// Nodes zero or equal to MinNodes, and wall pacing (not Unpaced).
	Autoscale *scaler.Config
	// StatShards is how many mutexes guard the per-service outcome counters
	// (service i hashes to shard i mod StatShards). The default (0) gives
	// every service its own shard, so two services' handlers never contend
	// on a stats lock; 1 recovers the single global lock. Counter values are
	// identical at any shard count — only contention changes — which the
	// shard-determinism suite pins byte-for-byte over /statz.
	StatShards int
}

// hostRef locates one replica of a service: the hosting node and the
// service's node-local index there.
type hostRef struct {
	node  int
	local int
}

// probeEvery is the quarantine-probe cadence: every Nth routing decision per
// service considers degraded replicas too (see route).
const probeEvery = 16

// Server is the gateway. Construct with New, then Start before serving its
// Handler; Drain (or Shutdown) ends its life cycle.
type Server struct {
	cfg       Config
	nodes     []*node
	hosts     [][]hostRef    // global service index → hosting nodes
	qos       []float64      // global service index → QoS target (ms)
	probes    []atomic.Int64 // global service index → routing decisions, drives quarantine probes
	byName    map[string]int // model name → global service index
	modelName []string       // global service index → canonical name (response echo without alloc)
	mux       *http.ServeMux
	httpSrv   atomic.Pointer[http.Server]

	// routes pins a RequestID to the node that first accepted it (value:
	// node id), so retries land where the idempotency caches live. Entries
	// die with the node's outcome-cache slot (onEvict) or on rejection.
	routes sync.Map

	draining atomic.Bool

	// Fault counters bumped on handler goroutines before any loop is
	// involved; per-node duplicate counts live on the nodes.
	malformed   atomic.Int64
	retriesSeen atomic.Int64

	// Per-service outcome counters behind sharded locks: service i is
	// guarded by statMu[i%len(statMu)]. With the default one-shard-per-
	// service layout, concurrent handlers for different services never
	// serialize on stats accounting; shard count 1 is the old global lock.
	statMu []sync.Mutex
	svc    []*svcStats

	// Elastic-autoscale state (see scale.go); ctrl is nil when Autoscale is
	// off and none of the rest is touched. The controller itself is not
	// goroutine-safe: every use sits under scaleMu. epoch is written once in
	// Start before any scaling goroutine exists.
	ctrl      *scaler.Controller
	scaleMu   sync.Mutex
	fleet     atomic.Pointer[elasticFleet]
	epoch     time.Time
	arrivals  atomic.Int64 // offered queries since the last control tick
	scaleStop chan struct{}
	scaleDone chan struct{}
	stopScale sync.Once
	retiredSt []NodeStatz // terminal snapshots of retired nodes
}

// statLock returns the mutex shard guarding service svc's counters.
func (s *Server) statLock(svc int) *sync.Mutex {
	return &s.statMu[svc%len(s.statMu)]
}

// pending is one admitted query awaiting completion: done closes after the
// sink's final writes to q, so handlers may read q afterwards. Several
// handlers may wait on the same pending when duplicate requests attach to
// one in-flight query.
type pending struct {
	q      *sched.Query
	id     string  // idempotency key, "" when the client sent none
	predMS float64 // admission-time predicted completion latency (margin-free)
	workMS float64 // backlog unit released when the query finishes
	done   chan struct{}
}

// outcomeCache remembers the most recent completed request IDs so a retry
// that arrives after its original completed is answered from the cache
// instead of re-executing. onEvict (optional) fires when an ID ages out.
type outcomeCache struct {
	cap     int
	order   []string
	next    int
	m       map[string]*pending
	onEvict func(id string)
}

func newOutcomeCache(capacity int, onEvict func(id string)) *outcomeCache {
	return &outcomeCache{cap: capacity, m: make(map[string]*pending, capacity), onEvict: onEvict}
}

func (c *outcomeCache) add(id string, p *pending) {
	if id == "" {
		return
	}
	if len(c.order) < c.cap {
		c.order = append(c.order, id)
	} else {
		old := c.order[c.next]
		delete(c.m, old)
		if c.onEvict != nil {
			c.onEvict(old)
		}
		c.order[c.next] = id
		c.next = (c.next + 1) % c.cap
	}
	c.m[id] = p
}

func (c *outcomeCache) get(id string) (*pending, bool) {
	p, ok := c.m[id]
	return p, ok
}

// svcStats accumulates one service's outcomes (guarded by Server.mu).
type svcStats struct {
	accepted         int64
	rejectedDeadline int64
	rejectedQueue    int64
	rejectedDraining int64
	rejectedDegraded int64
	completed        int64
	dropped          int64
	violated         int64
	good             int64
	latSum           float64
	lats             latWindow
}

// latWindow keeps the most recent completed-query latencies for percentile
// reporting without unbounded growth.
type latWindow struct {
	buf []float64
	n   int
}

const latWindowSize = 8192

func (w *latWindow) add(v float64) {
	if len(w.buf) < latWindowSize {
		w.buf = append(w.buf, v)
	} else {
		w.buf[w.n%latWindowSize] = v
	}
	w.n++
}

func (w *latWindow) snapshot() []float64 {
	out := make([]float64, len(w.buf))
	copy(out, w.buf)
	return out
}

// placement resolves the node → hosted-models assignment. The single-node
// default hosts cfg.Models verbatim, keeping the sharded gateway
// behaviorally identical to the single-engine one. Multi-node defaults seed
// from the §7.8 overlap-gain grouping and replicate groups round-robin, so
// every service has at least one migration target when nodes outnumber
// groups.
func placement(cfg Config, profile gpusim.Profile) [][]dnn.ModelID {
	if cfg.Placement != nil {
		return cfg.Placement
	}
	if cfg.Nodes == 1 {
		return [][]dnn.ModelID{cfg.Models}
	}
	groupSize := (len(cfg.Models) + cfg.Nodes - 1) / cfg.Nodes
	if groupSize > predictor.MaxCoLocated {
		groupSize = predictor.MaxCoLocated
	}
	groups := autoscale.GroupServices(cfg.Models, groupSize, profile)
	out := make([][]dnn.ModelID, cfg.Nodes)
	for i := range out {
		out[i] = groups[i%len(groups)]
	}
	return out
}

// New validates the configuration and builds the gateway (not yet running).
func New(cfg Config) (*Server, error) {
	if len(cfg.Models) == 0 {
		return nil, fmt.Errorf("server: no models configured")
	}
	if cfg.Nodes == 0 {
		if len(cfg.Placement) > 0 {
			cfg.Nodes = len(cfg.Placement)
		} else {
			cfg.Nodes = 1
		}
	}
	if cfg.Nodes < 0 {
		return nil, fmt.Errorf("server: %d nodes", cfg.Nodes)
	}
	var ctrl *scaler.Controller
	if cfg.Autoscale != nil {
		var err error
		if ctrl, err = scaler.New(*cfg.Autoscale); err != nil {
			return nil, err
		}
		min := ctrl.Config().MinNodes
		if cfg.Placement != nil {
			return nil, fmt.Errorf("server: autoscale requires the derived replicated placement, not a pinned one")
		}
		if cfg.Nodes != 1 && cfg.Nodes != min {
			return nil, fmt.Errorf("server: autoscale starts at MinNodes %d, not Nodes %d", min, cfg.Nodes)
		}
		cfg.Nodes = min
		if len(cfg.Models) > predictor.MaxCoLocated {
			return nil, fmt.Errorf("server: autoscale replicates all %d models per node, exceeding the co-location degree %d",
				len(cfg.Models), predictor.MaxCoLocated)
		}
		if cfg.Speedup == realtime.Unpaced || math.IsInf(cfg.Speedup, 1) {
			return nil, fmt.Errorf("server: autoscale needs wall pacing, not Unpaced")
		}
	}
	if cfg.Placement != nil && len(cfg.Placement) != cfg.Nodes {
		return nil, fmt.Errorf("server: placement covers %d nodes, want %d", len(cfg.Placement), cfg.Nodes)
	}
	if cfg.Speedup == 0 {
		cfg.Speedup = 1
	}
	if cfg.QueueCap <= 0 {
		cfg.QueueCap = 64
	}
	if cfg.DrainTimeout <= 0 {
		cfg.DrainTimeout = 10 * time.Second
	}
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = 1 << 20
	}
	if cfg.ReadHeaderTimeout <= 0 {
		cfg.ReadHeaderTimeout = 5 * time.Second
	}
	if cfg.ReadTimeout <= 0 {
		cfg.ReadTimeout = 30 * time.Second
	}
	if cfg.DedupeWindow <= 0 {
		cfg.DedupeWindow = 4096
	}
	if cfg.PredictCache == 0 {
		cfg.PredictCache = 4096
	}
	if cfg.StatShards <= 0 {
		cfg.StatShards = len(cfg.Models)
	}

	s := &Server{cfg: cfg, byName: make(map[string]int)}
	s.statMu = make([]sync.Mutex, cfg.StatShards)
	for i, m := range cfg.Models {
		name := m.String()
		if _, dup := s.byName[name]; dup {
			return nil, fmt.Errorf("server: model %s deployed twice", name)
		}
		s.byName[name] = i
		s.modelName = append(s.modelName, name)
		s.svc = append(s.svc, &svcStats{})
	}

	place := placement(cfg, gpusim.A100Profile())
	if ctrl != nil {
		// Elastic fleets are uniform: every node (founder or added later)
		// hosts every model, so any replica can absorb any query when a
		// sibling drains away.
		place = make([][]dnn.ModelID, cfg.Nodes)
		for i := range place {
			place[i] = cfg.Models
		}
	}
	s.hosts = make([][]hostRef, len(cfg.Models))
	s.qos = make([]float64, len(cfg.Models))
	s.probes = make([]atomic.Int64, len(cfg.Models))
	for id, models := range place {
		if len(models) == 0 {
			return nil, fmt.Errorf("server: node %d hosts no models", id)
		}
		if len(models) > predictor.MaxCoLocated {
			return nil, fmt.Errorf("server: node %d: %d models exceed the supported co-location degree %d",
				id, len(models), predictor.MaxCoLocated)
		}
		global := make([]int, len(models))
		seen := make(map[dnn.ModelID]bool, len(models))
		for local, m := range models {
			g, ok := s.byName[m.String()]
			if !ok {
				return nil, fmt.Errorf("server: node %d hosts %s, which is not in Models", id, m)
			}
			if seen[m] {
				return nil, fmt.Errorf("server: node %d hosts %s twice", id, m)
			}
			seen[m] = true
			global[local] = g
			s.hosts[g] = append(s.hosts[g], hostRef{node: id, local: local})
		}
		n, err := newNode(cfg, id, models, global, s.onResult,
			func(evicted string) { s.routes.Delete(evicted) })
		if err != nil {
			return nil, err
		}
		s.nodes = append(s.nodes, n)
	}
	for g, refs := range s.hosts {
		if len(refs) == 0 {
			return nil, fmt.Errorf("server: model %s hosted by no node", cfg.Models[g])
		}
		r := refs[0]
		s.qos[g] = s.nodes[r.node].rt.Services()[r.local].QoS
	}

	s.ctrl = ctrl
	if ctrl != nil {
		s.scaleStop = make(chan struct{})
		s.scaleDone = make(chan struct{})
	}

	s.mux = http.NewServeMux()
	s.mux.HandleFunc("/v1/infer", s.handleInfer)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/statz", s.handleStatz)
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	return s, nil
}

// Runtime returns node 0's Abacus runtime (tests and diagnostics).
func (s *Server) Runtime() *core.Runtime { return s.nodes[0].rt }

// NumNodes returns how many serving nodes back the gateway.
func (s *Server) NumNodes() int { return len(s.nodes) }

// Handler returns the gateway's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Start launches every node's wall-clock bridge, all anchored to one epoch
// so the per-GPU virtual clocks share a wall origin, plus each node's
// admission combiner. Call once, before serving traffic.
func (s *Server) Start() {
	s.epoch = time.Now()
	for _, n := range s.nodes {
		n.bridge.StartAnchored(s.epoch)
		go n.admitLoop(s)
	}
	if s.ctrl != nil {
		founders := append([]*node(nil), s.nodes...)
		s.fleet.Store(&elasticFleet{all: founders, active: founders})
		go s.scaleLoop()
	}
}

// Draining reports whether the gateway has stopped admitting work.
func (s *Server) Draining() bool { return s.draining.Load() }

// Drain stops admitting new queries (they get 503), fast-forwards every
// node's virtual clock so in-flight queries complete and are answered, and
// stops the bridges. It is idempotent and safe from any goroutine; the HTTP
// listener should be shut down after Drain returns so responses still reach
// their callers.
func (s *Server) Drain() {
	s.draining.Store(true)
	nodes := s.nodes
	if s.ctrl != nil {
		// Stop the control loop first so no node is added or drained while
		// the gateway shuts down; then drain every node ever built (retired
		// bridges answer ErrStopped, which is fine).
		s.stopScale.Do(func() {
			close(s.scaleStop)
			<-s.scaleDone
		})
		nodes = s.fleet.Load().all
	}
	// Flush completes all admitted queries immediately in virtual time; the
	// sinks close their done channels, unblocking every waiting handler.
	// ErrStopped just means a previous Drain already won.
	for _, n := range nodes {
		_ = n.bridge.Flush()
		n.bridge.Stop()
	}
	// With the bridges stopped no admission can succeed; shut the mailboxes
	// so queued and future enqueues answer as draining and admitLoop exits.
	for _, n := range nodes {
		n.stopMailbox()
	}
}

// ListenAndServe serves the gateway on addr until Shutdown (or a listener
// error). It starts the bridges itself.
func (s *Server) ListenAndServe(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.ServeListener(ln)
}

// ServeListener serves the gateway on an existing listener (tests bind
// loopback port 0 and read the address back). Header and body read
// timeouts guard against slow-loris clients; response writing — where paced
// inference waits happen — is unbounded.
func (s *Server) ServeListener(ln net.Listener) error {
	srv := &http.Server{
		Handler:           s.mux,
		ReadHeaderTimeout: s.cfg.ReadHeaderTimeout,
		ReadTimeout:       s.cfg.ReadTimeout,
	}
	s.httpSrv.Store(srv)
	s.Start()
	err := srv.Serve(ln)
	if err == http.ErrServerClosed {
		return nil
	}
	return err
}

// Shutdown gracefully drains and closes the listener: in-flight queries
// complete and are answered before the HTTP server exits.
func (s *Server) Shutdown(ctx context.Context) error {
	s.Drain()
	if srv := s.httpSrv.Load(); srv != nil {
		if _, ok := ctx.Deadline(); !ok {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, s.cfg.DrainTimeout)
			defer cancel()
		}
		return srv.Shutdown(ctx)
	}
	return nil
}

// onResult is a node runtime's sink; it runs on that node's loop goroutine.
func (s *Server) onResult(n *node, q *sched.Query) {
	p, ok := n.pending[q]
	if !ok {
		return
	}
	delete(n.pending, q)
	if p.id != "" {
		delete(n.byID, p.id)
		n.recent.add(p.id, p)
	}
	local := q.Service.ID
	n.adm.Finish(local, p.workMS)
	// Feed the divergence tracker the margin-free prediction against what
	// actually happened; drops observe too (a drop is divergence at its
	// loudest). The calibration tracker sees the same completion split into
	// solo work and backlog, and keeps only near-uncontended samples.
	n.adm.Degrade().Observe(local, p.predMS, q.Latency())
	if n.tracker != nil {
		n.tracker.ObserveAdmission(local, p.workMS, p.predMS-p.workMS, q.Latency())
	}
	n.publish()

	g := n.global[local]
	mu := s.statLock(g)
	mu.Lock()
	st := s.svc[g]
	if q.Dropped {
		st.dropped++
		st.violated++
	} else {
		st.completed++
		lat := q.Latency()
		st.latSum += lat
		st.lats.add(lat)
		if q.Violated() {
			st.violated++
		} else {
			st.good++
		}
	}
	mu.Unlock()

	close(p.done)
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

// contentTypeJSON is the shared Content-Type header value for the ingest
// path: assigning a preallocated slice into the header map costs nothing,
// where Header().Set would allocate the []string box per request.
var contentTypeJSON = []string{"application/json"}

// writeInfer renders resp through the pooled encoder scratch and writes it —
// the allocation-free replacement for writeJSON on the /v1/infer path.
// Output bytes are identical to json.NewEncoder(w).Encode(resp).
func writeInfer(w http.ResponseWriter, sc *inferScratch, code int, resp *InferResponse) {
	sc.out = AppendInferResponse(sc.out[:0], resp)
	w.Header()["Content-Type"] = contentTypeJSON
	w.WriteHeader(code)
	_, _ = w.Write(sc.out)
}

// respondFinished renders a finished (or dropped) pending into resp and
// writes it through the pooled encoder.
func (s *Server) respondFinished(w http.ResponseWriter, sc *inferScratch, resp *InferResponse, p *pending) {
	q := p.q
	resp.Accepted = true
	resp.ArrivalMS = q.Arrival
	resp.FinishMS = q.Finish
	resp.DeadlineMS = q.Deadline() - q.Arrival
	resp.PredictedMS = p.predMS
	if q.Dropped {
		resp.Dropped = true
		resp.Reason = "dropped"
		writeInfer(w, sc, http.StatusGatewayTimeout, resp)
		return
	}
	resp.LatencyMS = q.Latency()
	resp.Violated = q.Violated()
	writeInfer(w, sc, http.StatusOK, resp)
}

// localOn returns the node-local service index of global service svc on
// node id, if that node hosts it.
func (s *Server) localOn(svc, id int) (int, bool) {
	for _, r := range s.hosts[svc] {
		if r.node == id {
			return r.local, true
		}
	}
	return 0, false
}

// route picks the serving node for one query of global service svc:
// the sticky node when the RequestID has been seen, otherwise the
// least-loaded healthy replica. migrated reports that a degraded replica
// was skipped — the fault-driven migration the chaos suite pins.
func (s *Server) route(svc int, requestID string) (n *node, local int, migrated bool) {
	if s.ctrl != nil {
		return s.routeElastic(svc, requestID)
	}
	if requestID != "" {
		if v, ok := s.routes.Load(requestID); ok {
			if l, hosts := s.localOn(svc, v.(int)); hosts {
				return s.nodes[v.(int)], l, false
			}
		}
	}
	refs := s.hosts[svc]
	cand := refs
	// Every probeEvery-th decision per service skips the health filter so a
	// quarantined replica keeps receiving a trickle of traffic: its drift
	// EWMA then tracks reality and a replica that healed (or tripped on a
	// startup transient) decays below the exit ratio and rejoins, instead
	// of staying frozen out because no completions ever update it.
	if len(refs) > 1 && s.probes[svc].Add(1)%probeEvery != 0 {
		healthy := make([]hostRef, 0, len(refs))
		for _, r := range refs {
			if !s.nodes[r.node].degraded[r.local].Load() {
				healthy = append(healthy, r)
			}
		}
		// All-degraded falls back to every replica: shedding is the
		// admitters' job, routing still balances what is left.
		if len(healthy) > 0 {
			migrated = len(healthy) < len(refs)
			cand = healthy
		}
	}
	idx := make([]int, len(cand))
	for i := range cand {
		idx[i] = i
	}
	pick := cluster.LeastLoaded(idx, func(i int) float64 { return s.nodes[cand[i].node].load() })
	r := cand[pick]
	return s.nodes[r.node], r.local, migrated
}

// handleInfer routes, admits, submits, and answers one query. The whole
// path runs on pooled scratch: the body lands in a reused buffer, the
// hand-rolled decoder returns views into it, and the response renders into
// a reused encode buffer — zero steady-state allocations for decode,
// validate, admission verdict, and encode (TestInferHotPathZeroAllocs).
// Admission itself flows through the node's mailbox (node.admitLoop), so
// while one batch is deciding on the loop goroutine, other handlers decode
// and encode concurrently — the decode → admit → encode pipeline.
func (s *Server) handleInfer(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeJSON(w, http.StatusMethodNotAllowed, InferResponse{Error: "POST required"})
		return
	}
	sc := getScratch()
	defer putScratch(sc)
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	var err error
	if sc.body, err = readAll(body, sc.body[:0]); err == nil {
		err = sc.req.Parse(sc.body)
	}
	if err != nil {
		s.malformed.Add(1)
		resp := InferResponse{Error: "bad JSON: " + err.Error()}
		writeInfer(w, sc, http.StatusBadRequest, &resp)
		return
	}
	req := &sc.req
	svcIdx, in, err := s.validate(req)
	if err != nil {
		s.malformed.Add(1)
		resp := InferResponse{
			Model: string(req.Model), Batch: req.Batch, SeqLen: req.SeqLen, Error: err.Error(),
		}
		writeInfer(w, sc, http.StatusBadRequest, &resp)
		return
	}
	if req.Attempt > 0 {
		s.retriesSeen.Add(1)
	}
	// The canonical name equals the client's (validation is an exact match),
	// so echoing it avoids materializing the decoded view. The request ID is
	// copied out once: it outlives the scratch in routes/byID/recent.
	resp := InferResponse{Model: s.modelName[svcIdx], Batch: req.Batch, SeqLen: req.SeqLen}
	requestID := ""
	if len(req.RequestID) > 0 {
		requestID = string(req.RequestID)
	}
	if s.draining.Load() {
		s.countReject(svcIdx, reasonDraining)
		resp.Reason = reasonDraining
		resp.Error = "draining"
		writeInfer(w, sc, http.StatusServiceUnavailable, &resp)
		return
	}
	if s.ctrl != nil {
		// Offered load for the control loop: every valid, non-draining
		// arrival counts, whatever admission later decides.
		s.arrivals.Add(1)
	}

	n, local, migrated := s.route(svcIdx, requestID)
	storedRoute := false
	if requestID != "" {
		// Pin the ID to one node before admission so concurrent duplicates
		// serialize on a single loop, where byID/recent can suppress them.
		if v, loaded := s.routes.LoadOrStore(requestID, n.id); !loaded {
			storedRoute = true
		} else if owner := v.(int); owner != n.id {
			if s.ctrl != nil {
				// A concurrent duplicate pinned the ID elsewhere; follow it
				// while the owner is routable, otherwise re-pin to the
				// replica we picked (best-effort, like the static path).
				if fl := s.fleet.Load(); owner < len(fl.all) && !fl.all[owner].unroutable.Load() {
					n, local, migrated = fl.all[owner], svcIdx, false
				} else {
					s.routes.Store(requestID, n.id)
					storedRoute = true
				}
			} else if l, hosts := s.localOn(svcIdx, owner); hosts {
				n, local, migrated = s.nodes[owner], l, false
			}
		}
	}

	m := getAdmitMsg()
	m.svc, m.global = local, svcIdx
	m.in = in
	m.deadlineMS = req.DeadlineMS
	m.requestID = requestID
	m.migrated = migrated
	if n.enqueue(m) {
		<-m.done
	} else {
		m.draining = true
	}
	d := m.d
	pend, dup, cached, drainingVerdict := m.pend, m.dup, m.cached, m.draining
	putAdmitMsg(m)

	if drainingVerdict {
		if storedRoute {
			s.routes.Delete(requestID)
		}
		s.countReject(svcIdx, reasonDraining)
		resp.Reason = reasonDraining
		resp.Error = "draining"
		writeInfer(w, sc, http.StatusServiceUnavailable, &resp)
		return
	}
	if cached != nil {
		resp.Duplicate = true
		s.respondFinished(w, sc, &resp, cached)
		return
	}
	if dup != nil {
		resp.Duplicate = true
		select {
		case <-dup.done:
		case <-r.Context().Done():
			return
		}
		s.respondFinished(w, sc, &resp, dup)
		return
	}
	if !d.OK {
		// Best-effort: free the route slot so a retry may land on a
		// healthier replica. A duplicate racing this window re-pins.
		if storedRoute {
			s.routes.Delete(requestID)
		}
		s.countReject(svcIdx, d.Reason)
		resp.Reason = d.Reason
		resp.PredictedMS = d.PredMS
		resp.RetryAfterMS = d.RetryMS
		resp.Degraded = d.Degraded
		w.Header().Set("Retry-After", strconv.Itoa(s.retryAfterSeconds(d.RetryMS)))
		writeInfer(w, sc, http.StatusTooManyRequests, &resp)
		return
	}

	mu := s.statLock(svcIdx)
	mu.Lock()
	s.svc[svcIdx].accepted++
	mu.Unlock()

	select {
	case <-pend.done:
	case <-r.Context().Done():
		// Caller went away; the query still completes and is accounted.
		return
	}
	resp.Degraded = d.Degraded
	s.respondFinished(w, sc, &resp, pend)
}

// validate resolves the request onto a deployed service and checks the
// input against the model's served envelope (paper Table 1). The map lookup
// keyed on string(req.Model) does not allocate (the compiler elides the
// conversion for lookups); error paths may.
func (s *Server) validate(req *WireRequest) (int, dnn.Input, error) {
	idx, ok := s.byName[string(req.Model)]
	if !ok {
		return 0, dnn.Input{}, fmt.Errorf("model %q not deployed", req.Model)
	}
	m := dnn.Get(s.cfg.Models[idx])
	if req.Batch < m.MinBatch || req.Batch > m.MaxBatch {
		return 0, dnn.Input{}, fmt.Errorf("batch %d outside served range [%d, %d]",
			req.Batch, m.MinBatch, m.MaxBatch)
	}
	in := dnn.Input{Batch: req.Batch}
	if m.IsSequence() {
		ok := false
		for _, sl := range m.SeqLens {
			if req.SeqLen == sl {
				ok = true
				break
			}
		}
		if !ok {
			return 0, dnn.Input{}, fmt.Errorf("seqlen %d not served (allowed %v)", req.SeqLen, m.SeqLens)
		}
		in.SeqLen = req.SeqLen
	} else if req.SeqLen != 0 {
		return 0, dnn.Input{}, fmt.Errorf("model %q takes no sequence length", req.Model)
	}
	if req.DeadlineMS < 0 {
		return 0, dnn.Input{}, fmt.Errorf("negative deadline %v", req.DeadlineMS)
	}
	if req.Attempt < 0 {
		return 0, dnn.Input{}, fmt.Errorf("negative attempt %d", req.Attempt)
	}
	return idx, in, nil
}

func (s *Server) countReject(svc int, reason string) {
	mu := s.statLock(svc)
	mu.Lock()
	defer mu.Unlock()
	st := s.svc[svc]
	switch reason {
	case reasonDeadline:
		st.rejectedDeadline++
	case reasonQueueFull:
		st.rejectedQueue++
	case reasonDegraded:
		st.rejectedDegraded++
	default:
		st.rejectedDraining++
	}
}

// retryAfterSeconds converts a virtual-ms backoff hint into wall seconds.
func (s *Server) retryAfterSeconds(retryMS float64) int {
	if s.nodes[0].bridge.Unpaced() {
		return 1
	}
	sec := int(math.Ceil(retryMS / s.cfg.Speedup / 1000))
	if sec < 1 {
		sec = 1
	}
	return sec
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"ok": true, "draining": s.draining.Load()})
}

// Statz is the /statz payload. Top-level fields aggregate the whole
// cluster (and pass the single node through verbatim when -nodes is 1, for
// backward compatibility); Nodes carries the per-node detail, each entry
// snapshotted atomically on its own loop goroutine.
type Statz struct {
	NowMS         float64 `json:"now_ms"` // virtual clock (max across nodes)
	Speedup       float64 `json:"speedup"`
	Draining      bool    `json:"draining"`
	BacklogPredMS float64 `json:"backlog_pred_ms"`
	// Degrade reports the divergence tracker aggregate: whether any service
	// on any node currently widens its admission margin, how often the
	// detectors have flipped, and the worst observed/predicted latency EWMA.
	// Per-service detail lives on each ServiceStatz entry.
	Degrade admit.Status `json:"degrade"`
	// Calibration reports the online latency-model calibration state
	// (per-service correction slope/intercept, sample counts, residual
	// quantiles); nil when calibration is off. With several nodes each
	// service reports its best-fed replica (most samples).
	Calibration *calib.Status `json:"calibration,omitempty"`
	// PredictCache reports the group-signature memoization cache counters
	// summed across nodes; nil when the cache is disabled. Misses equal the
	// predictions the duration models actually computed — the honest measure
	// of model work.
	PredictCache *predictor.MemoStats `json:"predict_cache,omitempty"`
	// Faults are gateway-wide fault counters.
	Faults   FaultStatz     `json:"faults"`
	Services []ServiceStatz `json:"services"`
	// Nodes is the per-node detail, one entry per serving node. Under
	// autoscale it covers the live fleet (warming, active, and draining
	// nodes), each tagged with its Phase.
	Nodes []NodeStatz `json:"nodes,omitempty"`
	// Autoscale is the elastic control-loop state; nil for fixed fleets.
	Autoscale *AutoscaleStatz `json:"autoscale,omitempty"`
	// RetiredNodes are the terminal snapshots of nodes the autoscaler
	// drained: their counters stop at retirement instead of diluting the
	// live rows.
	RetiredNodes []NodeStatz `json:"retired_nodes,omitempty"`
}

// FaultStatz counts the faults the gateway has absorbed.
type FaultStatz struct {
	Malformed            int64 `json:"malformed"`
	DuplicatesSuppressed int64 `json:"duplicates_suppressed"`
	RetriesSeen          int64 `json:"retries_seen"`
}

// ServiceStatz is one service's /statz entry, aggregated across its
// hosting nodes.
type ServiceStatz struct {
	Service          int     `json:"service"`
	Model            string  `json:"model"`
	QoSMS            float64 `json:"qos_ms"`
	Accepted         int64   `json:"accepted"`
	RejectedDeadline int64   `json:"rejected_deadline"`
	RejectedQueue    int64   `json:"rejected_queue"`
	RejectedDraining int64   `json:"rejected_draining"`
	RejectedDegraded int64   `json:"rejected_degraded"`
	Completed        int64   `json:"completed"`
	Dropped          int64   `json:"dropped"`
	Violated         int64   `json:"violated"`
	QueueDepth       int     `json:"queue_depth"`
	// Per-service drift state: the widest admission margin any replica's
	// verdicts pay, whether any replica's drift detector is active, and the
	// worst divergence EWMA acted on.
	Margin      float64 `json:"margin"`
	DriftActive bool    `json:"drift_active"`
	Divergence  float64 `json:"divergence_ewma"`
	P50MS       float64 `json:"p50_ms"`
	P99MS       float64 `json:"p99_ms"`
	MeanMS      float64 `json:"mean_ms"`
	GoodputQPS  float64 `json:"goodput_qps"` // virtual-time basis
}

// NodeStatz is one serving node's /statz entry. Everything except NowMS is
// gathered in a single injection on the node's loop goroutine, so the
// snapshot is internally consistent.
type NodeStatz struct {
	Node   int      `json:"node"`
	Models []string `json:"models"`
	// Phase is the node's autoscale lifecycle phase (warming, active,
	// draining, retired); empty on fixed fleets.
	Phase         string  `json:"phase,omitempty"`
	NowMS         float64 `json:"now_ms"`
	BacklogPredMS float64 `json:"backlog_pred_ms"`
	QueueDepth    int     `json:"queue_depth"`
	// Routed counts admissions the router sent here; MigratedIn counts the
	// subset routed here because a degraded sibling was skipped.
	Routed               int64                `json:"routed"`
	MigratedIn           int64                `json:"migrated_in"`
	DuplicatesSuppressed int64                `json:"duplicates_suppressed"`
	Degrade              admit.Status         `json:"degrade"`
	Calibration          *calib.Status        `json:"calibration,omitempty"`
	PredictCache         *predictor.MemoStats `json:"predict_cache,omitempty"`
	Services             []NodeServiceStatz   `json:"services"`
}

// NodeServiceStatz is one hosted service's per-node state. Service is the
// gateway-global index.
type NodeServiceStatz struct {
	Service     int     `json:"service"`
	Model       string  `json:"model"`
	QueueDepth  int     `json:"queue_depth"`
	Margin      float64 `json:"margin"`
	DriftActive bool    `json:"drift_active"`
	Divergence  float64 `json:"divergence_ewma"`
}

// nodeStatz snapshots one node atomically on its loop goroutine. Calibration
// service indices are rewritten to gateway-global. Zero state when the
// bridge has stopped, matching the old single-engine behavior.
func (s *Server) nodeStatz(n *node) NodeStatz {
	st := NodeStatz{Node: n.id}
	for _, m := range n.models {
		st.Models = append(st.Models, m.String())
	}
	depths := make([]int, len(n.models))
	_ = n.bridge.Do(func() {
		n.adm.CopyOutstanding(depths)
		st.BacklogPredMS = n.adm.BacklogMS()
		st.Degrade = n.adm.Degrade().Snapshot()
		drift := n.adm.Degrade().ServiceSnapshots()
		for local, g := range n.global {
			e := NodeServiceStatz{
				Service:    g,
				Model:      n.models[local].String(),
				QueueDepth: depths[local],
			}
			if local < len(drift) {
				e.Margin = drift[local].Margin
				e.DriftActive = drift[local].Active
				e.Divergence = drift[local].Divergence
			}
			st.Services = append(st.Services, e)
		}
		if n.tracker != nil {
			cs := n.tracker.Snapshot()
			for i := range cs.Services {
				cs.Services[i].Service = n.global[cs.Services[i].Service]
			}
			st.Calibration = &cs
		}
		if n.memo != nil {
			ms := n.memo.Stats()
			st.PredictCache = &ms
		}
		st.Routed = n.routed
		st.MigratedIn = n.migratedIn
		st.DuplicatesSuppressed = n.duplicates
	})
	st.NowMS = n.bridge.Now()
	for _, e := range st.Services {
		st.QueueDepth += e.QueueDepth
	}
	return st
}

// mergeDegrade folds per-node degrade aggregates into one cluster view:
// any-active, worst divergence and margin, deployment-wide sums.
func mergeDegrade(nodes []NodeStatz) admit.Status {
	var out admit.Status
	for _, n := range nodes {
		out.Active = out.Active || n.Degrade.Active
		out.Transitions += n.Degrade.Transitions
		out.Samples += n.Degrade.Samples
		out.Shed += n.Degrade.Shed
		if n.Degrade.Divergence > out.Divergence {
			out.Divergence = n.Degrade.Divergence
		}
		if n.Degrade.Margin > out.Margin {
			out.Margin = n.Degrade.Margin
		}
	}
	if out.Margin < 1 {
		out.Margin = 1
	}
	return out
}

// mergeCalibration picks, per global service, the replica with the most
// feedback samples (ties → lowest node id, which comes first).
func mergeCalibration(nodes []NodeStatz, numServices int) *calib.Status {
	best := make([]*calib.ServiceStatus, numServices)
	enabled, any := false, false
	for _, n := range nodes {
		if n.Calibration == nil {
			continue
		}
		any = true
		enabled = enabled || n.Calibration.Enabled
		for i := range n.Calibration.Services {
			e := &n.Calibration.Services[i]
			if cur := best[e.Service]; cur == nil || e.Samples > cur.Samples {
				best[e.Service] = e
			}
		}
	}
	if !any {
		return nil
	}
	out := &calib.Status{Enabled: enabled}
	for _, e := range best {
		if e != nil {
			out.Services = append(out.Services, *e)
		}
	}
	return out
}

// mergePredictCache sums cache counters (and capacity) across nodes.
func mergePredictCache(nodes []NodeStatz) *predictor.MemoStats {
	var out predictor.MemoStats
	any := false
	for _, n := range nodes {
		if n.PredictCache == nil {
			continue
		}
		any = true
		out.Capacity += n.PredictCache.Capacity
		out.Size += n.PredictCache.Size
		out.Hits += n.PredictCache.Hits
		out.Misses += n.PredictCache.Misses
		out.Evictions += n.PredictCache.Evictions
		out.Invalidations += n.PredictCache.Invalidations
		out.ModelInvalidations += n.PredictCache.ModelInvalidations
	}
	if !any {
		return nil
	}
	return &out
}

// statz snapshots the gateway. Per-node loop state comes from each node's
// own goroutine (zero after its bridge stops); the single-node case passes
// node 0's state through verbatim so pre-sharding consumers see identical
// numbers.
func (s *Server) statz() Statz {
	nodes := s.nodes
	var phases []string
	var as *AutoscaleStatz
	var retired []NodeStatz
	if s.ctrl != nil {
		nodes, phases, as, retired = s.autoscaleStatz()
	}
	nodeSt := make([]NodeStatz, len(nodes))
	for i, n := range nodes {
		nodeSt[i] = s.nodeStatz(n)
		if phases != nil {
			nodeSt[i].Phase = phases[i]
		}
	}

	out := Statz{
		Speedup:      s.cfg.Speedup,
		Draining:     s.draining.Load(),
		Nodes:        nodeSt,
		Autoscale:    as,
		RetiredNodes: retired,
	}
	var duplicates int64
	for _, n := range nodeSt {
		out.BacklogPredMS += n.BacklogPredMS
		if n.NowMS > out.NowMS {
			out.NowMS = n.NowMS
		}
		duplicates += n.DuplicatesSuppressed
	}
	if len(nodeSt) == 1 {
		out.Degrade = nodeSt[0].Degrade
		out.Calibration = nodeSt[0].Calibration
		out.PredictCache = nodeSt[0].PredictCache
	} else {
		out.Degrade = mergeDegrade(nodeSt)
		out.Calibration = mergeCalibration(nodeSt, len(s.svc))
		out.PredictCache = mergePredictCache(nodeSt)
	}
	out.Faults = FaultStatz{
		Malformed:            s.malformed.Load(),
		DuplicatesSuppressed: duplicates,
		RetriesSeen:          s.retriesSeen.Load(),
	}

	// Per-service loop-owned aggregates across hosting nodes.
	type svcLoop struct {
		depth      int
		margin     float64
		active     bool
		divergence float64
	}
	loop := make([]svcLoop, len(s.svc))
	for _, n := range nodeSt {
		for _, e := range n.Services {
			l := &loop[e.Service]
			l.depth += e.QueueDepth
			l.active = l.active || e.DriftActive
			if e.Margin > l.margin {
				l.margin = e.Margin
			}
			if e.Divergence > l.divergence {
				l.divergence = e.Divergence
			}
		}
	}

	now := out.NowMS
	for i, st := range s.svc {
		mu := s.statLock(i)
		mu.Lock()
		entry := ServiceStatz{
			Service:          i,
			Model:            s.cfg.Models[i].String(),
			QoSMS:            s.qos[i],
			Accepted:         st.accepted,
			RejectedDeadline: st.rejectedDeadline,
			RejectedQueue:    st.rejectedQueue,
			RejectedDraining: st.rejectedDraining,
			RejectedDegraded: st.rejectedDegraded,
			Completed:        st.completed,
			Dropped:          st.dropped,
			Violated:         st.violated,
			QueueDepth:       loop[i].depth,
			Margin:           loop[i].margin,
			DriftActive:      loop[i].active,
			Divergence:       loop[i].divergence,
		}
		if lats := st.lats.snapshot(); len(lats) > 0 {
			ps := stats.Percentiles(lats, 50, 99)
			entry.P50MS, entry.P99MS = ps[0], ps[1]
			entry.MeanMS = st.latSum / float64(st.completed)
		}
		if now > 0 {
			entry.GoodputQPS = float64(st.good) / (now / 1000)
		}
		mu.Unlock()
		out.Services = append(out.Services, entry)
	}
	return out
}

func (s *Server) handleStatz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.statz())
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(renderMetrics(s.statz()))
}
