// Package server is the online serving gateway: an HTTP front end over the
// Abacus runtime driven in wall-clock time by internal/realtime. Requests
// arrive on POST /v1/infer, pass Clockwork-style predictor-driven admission
// control (reject now if the predicted completion misses the deadline), and
// wait for their query to complete on the paced virtual clock. The gateway
// also exposes /healthz, /statz (JSON per-service outcomes), and /metrics
// (Prometheus text exposition), and drains gracefully: in-flight queries are
// answered before the server stops admitting work for good.
//
// Robustness features (PR 3): per-request idempotency keys with duplicate
// suppression, a degraded mode that widens the admission margin when
// predicted-vs-observed latency diverges (internal/admit), request-body
// size caps and read timeouts against malformed and slow-loris clients,
// and fault/retry counters on /statz and /metrics.
package server

import (
	"context"
	"encoding/json"
	"fmt"
	"math"
	"net"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"abacus/internal/admit"
	"abacus/internal/calib"
	"abacus/internal/core"
	"abacus/internal/dnn"
	"abacus/internal/gpusim"
	"abacus/internal/predictor"
	"abacus/internal/realtime"
	"abacus/internal/sched"
	"abacus/internal/stats"
)

// Config assembles a gateway.
type Config struct {
	// Models are the co-located services (1..predictor.MaxCoLocated).
	Models []dnn.ModelID
	// QoSFactor scales per-service QoS over max-input solo latency
	// (default 2, the paper's setting).
	QoSFactor float64
	// Speedup is the wall-clock pacing factor (virtual ms per wall ms;
	// default 1 = real time; realtime.Unpaced for batch mode).
	Speedup float64
	// QueueCap bounds admitted-but-unfinished queries per service
	// (default 64); beyond it the gateway sheds load with 429.
	QueueCap int
	// Model is the duration model for both the Abacus controller and the
	// admission predictor; nil selects the exact oracle.
	Model predictor.LatencyModel
	// Sched carries controller knobs; zero value = sched.DefaultConfig.
	Sched sched.Config
	// SyncCost is the per-group synchronization cost (default 0.02 ms).
	SyncCost float64
	// DrainTimeout bounds Shutdown's graceful drain (default 10s).
	DrainTimeout time.Duration
	// Degrade tunes the degraded-mode controller; the zero value enables it
	// with defaults, Disabled pins the admission margin at 1.
	Degrade admit.DegradeConfig
	// Calib, when non-nil, enables online latency-model calibration: every
	// completed query feeds a per-service feedback tracker and both the
	// scheduler and admission predict through the corrected model. Nil
	// leaves calibration off.
	Calib *calib.Config
	// MaxBodyBytes caps the /v1/infer request body (default 1 MiB); larger
	// bodies are rejected 400 and counted as malformed.
	MaxBodyBytes int64
	// ReadHeaderTimeout bounds how long a client may dribble request
	// headers (default 5s) — the slow-loris guard.
	ReadHeaderTimeout time.Duration
	// ReadTimeout bounds reading an entire request including its body
	// (default 30s). Response writing is unaffected, so paced inference
	// waits are not.
	ReadTimeout time.Duration
	// DedupeWindow is how many completed request IDs the idempotency cache
	// remembers (default 4096).
	DedupeWindow int
	// PredictCache bounds the group-signature memoization cache wrapped
	// around the duration model (predictor.Memoized): steady-state
	// scheduling rounds re-predict the same group signatures, and the cache
	// answers repeats without re-running the MLP. 0 selects the default
	// (4096 signatures); negative disables caching. Calibration refits
	// invalidate the cache, so corrected predictions are never stale.
	PredictCache int
}

// Server is the gateway. Construct with New, then Start before serving its
// Handler; Drain (or Shutdown) ends its life cycle.
type Server struct {
	cfg     Config
	rt      *core.Runtime
	bridge  *realtime.Bridge
	mux     *http.ServeMux
	admit   *admit.Admitter           // loop-goroutine state
	memo    *predictor.Memoized       // loop-goroutine state; nil when the predict cache is off
	tracker *calib.Tracker            // loop-goroutine state; nil when calibration is off
	pending map[*sched.Query]*pending // loop-goroutine state
	byID    map[string]*pending       // loop-goroutine state: in-flight idempotency keys
	recent  *outcomeCache             // loop-goroutine state: completed idempotency keys
	byName  map[string]int            // model name → service index
	httpSrv atomic.Pointer[http.Server]

	draining atomic.Bool

	// Fault counters. malformed and retriesSeen are bumped on handler
	// goroutines before the loop is involved, hence atomics; duplicates is
	// loop-owned.
	malformed   atomic.Int64
	retriesSeen atomic.Int64
	duplicates  int64 // loop-goroutine state

	mu  sync.Mutex
	svc []*svcStats
}

// pending is one admitted query awaiting completion: done closes after the
// sink's final writes to q, so handlers may read q afterwards. Several
// handlers may wait on the same pending when duplicate requests attach to
// one in-flight query.
type pending struct {
	q      *sched.Query
	id     string  // idempotency key, "" when the client sent none
	predMS float64 // admission-time predicted completion latency (margin-free)
	workMS float64 // backlog unit released when the query finishes
	done   chan struct{}
}

// outcomeCache remembers the most recent completed request IDs so a retry
// that arrives after its original completed is answered from the cache
// instead of re-executing.
type outcomeCache struct {
	cap   int
	order []string
	next  int
	m     map[string]*pending
}

func newOutcomeCache(capacity int) *outcomeCache {
	return &outcomeCache{cap: capacity, m: make(map[string]*pending, capacity)}
}

func (c *outcomeCache) add(id string, p *pending) {
	if id == "" {
		return
	}
	if len(c.order) < c.cap {
		c.order = append(c.order, id)
	} else {
		delete(c.m, c.order[c.next])
		c.order[c.next] = id
		c.next = (c.next + 1) % c.cap
	}
	c.m[id] = p
}

func (c *outcomeCache) get(id string) (*pending, bool) {
	p, ok := c.m[id]
	return p, ok
}

// svcStats accumulates one service's outcomes (guarded by Server.mu).
type svcStats struct {
	accepted         int64
	rejectedDeadline int64
	rejectedQueue    int64
	rejectedDraining int64
	rejectedDegraded int64
	completed        int64
	dropped          int64
	violated         int64
	good             int64
	latSum           float64
	lats             latWindow
}

// latWindow keeps the most recent completed-query latencies for percentile
// reporting without unbounded growth.
type latWindow struct {
	buf []float64
	n   int
}

const latWindowSize = 8192

func (w *latWindow) add(v float64) {
	if len(w.buf) < latWindowSize {
		w.buf = append(w.buf, v)
	} else {
		w.buf[w.n%latWindowSize] = v
	}
	w.n++
}

func (w *latWindow) snapshot() []float64 {
	out := make([]float64, len(w.buf))
	copy(out, w.buf)
	return out
}

// New validates the configuration and builds the gateway (not yet running).
func New(cfg Config) (*Server, error) {
	if len(cfg.Models) == 0 {
		return nil, fmt.Errorf("server: no models configured")
	}
	if len(cfg.Models) > predictor.MaxCoLocated {
		return nil, fmt.Errorf("server: %d models exceed the supported co-location degree %d",
			len(cfg.Models), predictor.MaxCoLocated)
	}
	if cfg.Speedup == 0 {
		cfg.Speedup = 1
	}
	if cfg.QueueCap <= 0 {
		cfg.QueueCap = 64
	}
	if cfg.DrainTimeout <= 0 {
		cfg.DrainTimeout = 10 * time.Second
	}
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = 1 << 20
	}
	if cfg.ReadHeaderTimeout <= 0 {
		cfg.ReadHeaderTimeout = 5 * time.Second
	}
	if cfg.ReadTimeout <= 0 {
		cfg.ReadTimeout = 30 * time.Second
	}
	if cfg.DedupeWindow <= 0 {
		cfg.DedupeWindow = 4096
	}
	if cfg.PredictCache == 0 {
		cfg.PredictCache = 4096
	}
	s := &Server{
		cfg:     cfg,
		pending: make(map[*sched.Query]*pending),
		byID:    make(map[string]*pending),
		recent:  newOutcomeCache(cfg.DedupeWindow),
		byName:  make(map[string]int),
	}
	profile := gpusim.A100Profile()
	model := cfg.Model
	if model == nil {
		model = predictor.Oracle{Profile: profile}
	}
	if cfg.Calib != nil {
		cc := *cfg.Calib
		// Correction updates move both the admitter's memoized solo
		// predictions and the group-signature cache; drop them so the next
		// verdict sees the corrected model. s.admit and s.memo are assigned
		// below, before the bridge starts delivering feedback.
		cc.OnUpdate = func(int) {
			s.admit.InvalidateCache()
			if s.memo != nil {
				s.memo.InvalidateAll()
			}
		}
		s.tracker = calib.NewTracker(cc, cfg.Models)
		model = calib.NewCalibrated(model, s.tracker)
	}
	if cfg.PredictCache > 0 {
		// The memo sits above calibration so cached values are corrected
		// predictions; calibration refits invalidate it via OnUpdate above.
		s.memo = predictor.NewMemoized(model, cfg.PredictCache)
		model = s.memo
	}
	rt, err := core.New(core.Config{
		Models:    cfg.Models,
		QoSFactor: cfg.QoSFactor,
		Model:     model,
		Profile:   profile,
		Sched:     cfg.Sched,
		SyncCost:  cfg.SyncCost,
		OnResult:  s.onResult,
	})
	if err != nil {
		return nil, err
	}
	s.rt = rt
	s.bridge = realtime.New(rt.Engine(), cfg.Speedup)
	syncCost := cfg.SyncCost
	if syncCost == 0 {
		syncCost = 0.02
	}
	s.admit = admit.New(model, rt.Device().Profile(), rt.Services(), cfg.QueueCap, syncCost,
		admit.NewDegrade(cfg.Degrade, len(cfg.Models)))
	for i, m := range cfg.Models {
		s.byName[m.String()] = i
		s.svc = append(s.svc, &svcStats{})
	}
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("/v1/infer", s.handleInfer)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/statz", s.handleStatz)
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	return s, nil
}

// Runtime returns the underlying Abacus runtime (tests and diagnostics).
func (s *Server) Runtime() *core.Runtime { return s.rt }

// Handler returns the gateway's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Start launches the wall-clock bridge. Call once, before serving traffic.
func (s *Server) Start() { s.bridge.Start() }

// Draining reports whether the gateway has stopped admitting work.
func (s *Server) Draining() bool { return s.draining.Load() }

// Drain stops admitting new queries (they get 503), fast-forwards the
// virtual clock so every in-flight query completes and is answered, and
// stops the bridge. It is idempotent and safe from any goroutine; the HTTP
// listener should be shut down after Drain returns so responses still reach
// their callers.
func (s *Server) Drain() {
	s.draining.Store(true)
	// Flush completes all admitted queries immediately in virtual time; the
	// sinks close their done channels, unblocking every waiting handler.
	// ErrStopped just means a previous Drain already won.
	_ = s.bridge.Flush()
	s.bridge.Stop()
}

// ListenAndServe serves the gateway on addr until Shutdown (or a listener
// error). It starts the bridge itself.
func (s *Server) ListenAndServe(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.ServeListener(ln)
}

// ServeListener serves the gateway on an existing listener (tests bind
// loopback port 0 and read the address back). Header and body read
// timeouts guard against slow-loris clients; response writing — where paced
// inference waits happen — is unbounded.
func (s *Server) ServeListener(ln net.Listener) error {
	srv := &http.Server{
		Handler:           s.mux,
		ReadHeaderTimeout: s.cfg.ReadHeaderTimeout,
		ReadTimeout:       s.cfg.ReadTimeout,
	}
	s.httpSrv.Store(srv)
	s.Start()
	err := srv.Serve(ln)
	if err == http.ErrServerClosed {
		return nil
	}
	return err
}

// Shutdown gracefully drains and closes the listener: in-flight queries
// complete and are answered before the HTTP server exits.
func (s *Server) Shutdown(ctx context.Context) error {
	s.Drain()
	if srv := s.httpSrv.Load(); srv != nil {
		if _, ok := ctx.Deadline(); !ok {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, s.cfg.DrainTimeout)
			defer cancel()
		}
		return srv.Shutdown(ctx)
	}
	return nil
}

// onResult is the runtime sink; it runs on the bridge loop goroutine.
func (s *Server) onResult(q *sched.Query) {
	p, ok := s.pending[q]
	if !ok {
		return
	}
	delete(s.pending, q)
	if p.id != "" {
		delete(s.byID, p.id)
		s.recent.add(p.id, p)
	}
	s.admit.Finish(q.Service.ID, p.workMS)
	// Feed the divergence tracker the margin-free prediction against what
	// actually happened; drops observe too (a drop is divergence at its
	// loudest). The calibration tracker sees the same completion split into
	// solo work and backlog, and keeps only near-uncontended samples.
	s.admit.Degrade().Observe(q.Service.ID, p.predMS, q.Latency())
	if s.tracker != nil {
		s.tracker.ObserveAdmission(q.Service.ID, p.workMS, p.predMS-p.workMS, q.Latency())
	}

	s.mu.Lock()
	st := s.svc[q.Service.ID]
	if q.Dropped {
		st.dropped++
		st.violated++
	} else {
		st.completed++
		lat := q.Latency()
		st.latSum += lat
		st.lats.add(lat)
		if q.Violated() {
			st.violated++
		} else {
			st.good++
		}
	}
	s.mu.Unlock()

	close(p.done)
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

// respondFinished renders a finished (or dropped) pending into resp and
// writes it.
func (s *Server) respondFinished(w http.ResponseWriter, resp InferResponse, p *pending) {
	q := p.q
	resp.Accepted = true
	resp.ArrivalMS = q.Arrival
	resp.FinishMS = q.Finish
	resp.DeadlineMS = q.Deadline() - q.Arrival
	resp.PredictedMS = p.predMS
	if q.Dropped {
		resp.Dropped = true
		resp.Reason = "dropped"
		writeJSON(w, http.StatusGatewayTimeout, resp)
		return
	}
	resp.LatencyMS = q.Latency()
	resp.Violated = q.Violated()
	writeJSON(w, http.StatusOK, resp)
}

// handleInfer admits, submits, and answers one query.
func (s *Server) handleInfer(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeJSON(w, http.StatusMethodNotAllowed, InferResponse{Error: "POST required"})
		return
	}
	var req InferRequest
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		s.malformed.Add(1)
		writeJSON(w, http.StatusBadRequest, InferResponse{Error: "bad JSON: " + err.Error()})
		return
	}
	svcIdx, in, err := s.validate(&req)
	if err != nil {
		s.malformed.Add(1)
		writeJSON(w, http.StatusBadRequest, InferResponse{
			Model: req.Model, Batch: req.Batch, SeqLen: req.SeqLen, Error: err.Error(),
		})
		return
	}
	if req.Attempt > 0 {
		s.retriesSeen.Add(1)
	}
	resp := InferResponse{Model: req.Model, Batch: req.Batch, SeqLen: req.SeqLen}
	if s.draining.Load() {
		s.countReject(svcIdx, reasonDraining)
		resp.Reason = reasonDraining
		resp.Error = "draining"
		writeJSON(w, http.StatusServiceUnavailable, resp)
		return
	}

	var d admit.Decision
	var pend, dup, cached *pending
	err = s.bridge.Do(func() {
		if s.draining.Load() {
			d = admit.Decision{Reason: reasonDraining}
			return
		}
		if req.RequestID != "" {
			if p, ok := s.byID[req.RequestID]; ok {
				dup = p
				s.duplicates++
				return
			}
			if p, ok := s.recent.get(req.RequestID); ok {
				cached = p
				s.duplicates++
				return
			}
		}
		now := s.rt.Engine().Now()
		d = s.admit.Decide(now, svcIdx, in, req.DeadlineMS)
		if !d.OK {
			return
		}
		q := s.rt.SubmitSLO(svcIdx, in, now, req.DeadlineMS)
		pend = &pending{
			q:      q,
			id:     req.RequestID,
			predMS: d.PredMS,
			workMS: d.WorkMS,
			done:   make(chan struct{}),
		}
		s.pending[q] = pend
		if req.RequestID != "" {
			s.byID[req.RequestID] = pend
		}
		s.admit.Admitted(svcIdx, d.WorkMS)
	})
	if err != nil || d.Reason == reasonDraining {
		s.countReject(svcIdx, reasonDraining)
		resp.Reason = reasonDraining
		resp.Error = "draining"
		writeJSON(w, http.StatusServiceUnavailable, resp)
		return
	}
	if cached != nil {
		resp.Duplicate = true
		s.respondFinished(w, resp, cached)
		return
	}
	if dup != nil {
		resp.Duplicate = true
		select {
		case <-dup.done:
		case <-r.Context().Done():
			return
		}
		s.respondFinished(w, resp, dup)
		return
	}
	if !d.OK {
		s.countReject(svcIdx, d.Reason)
		resp.Reason = d.Reason
		resp.PredictedMS = d.PredMS
		resp.RetryAfterMS = d.RetryMS
		resp.Degraded = d.Degraded
		w.Header().Set("Retry-After", fmt.Sprintf("%d", s.retryAfterSeconds(d.RetryMS)))
		writeJSON(w, http.StatusTooManyRequests, resp)
		return
	}

	s.mu.Lock()
	s.svc[svcIdx].accepted++
	s.mu.Unlock()

	select {
	case <-pend.done:
	case <-r.Context().Done():
		// Caller went away; the query still completes and is accounted.
		return
	}
	resp.Degraded = d.Degraded
	s.respondFinished(w, resp, pend)
}

// validate resolves the request onto a deployed service and checks the
// input against the model's served envelope (paper Table 1).
func (s *Server) validate(req *InferRequest) (int, dnn.Input, error) {
	idx, ok := s.byName[req.Model]
	if !ok {
		return 0, dnn.Input{}, fmt.Errorf("model %q not deployed", req.Model)
	}
	m := dnn.Get(s.cfg.Models[idx])
	if req.Batch < m.MinBatch || req.Batch > m.MaxBatch {
		return 0, dnn.Input{}, fmt.Errorf("batch %d outside served range [%d, %d]",
			req.Batch, m.MinBatch, m.MaxBatch)
	}
	in := dnn.Input{Batch: req.Batch}
	if m.IsSequence() {
		ok := false
		for _, sl := range m.SeqLens {
			if req.SeqLen == sl {
				ok = true
				break
			}
		}
		if !ok {
			return 0, dnn.Input{}, fmt.Errorf("seqlen %d not served (allowed %v)", req.SeqLen, m.SeqLens)
		}
		in.SeqLen = req.SeqLen
	} else if req.SeqLen != 0 {
		return 0, dnn.Input{}, fmt.Errorf("model %q takes no sequence length", req.Model)
	}
	if req.DeadlineMS < 0 {
		return 0, dnn.Input{}, fmt.Errorf("negative deadline %v", req.DeadlineMS)
	}
	if req.Attempt < 0 {
		return 0, dnn.Input{}, fmt.Errorf("negative attempt %d", req.Attempt)
	}
	return idx, in, nil
}

func (s *Server) countReject(svc int, reason string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.svc[svc]
	switch reason {
	case reasonDeadline:
		st.rejectedDeadline++
	case reasonQueueFull:
		st.rejectedQueue++
	case reasonDegraded:
		st.rejectedDegraded++
	default:
		st.rejectedDraining++
	}
}

// retryAfterSeconds converts a virtual-ms backoff hint into wall seconds.
func (s *Server) retryAfterSeconds(retryMS float64) int {
	if s.bridge.Unpaced() {
		return 1
	}
	sec := int(math.Ceil(retryMS / s.cfg.Speedup / 1000))
	if sec < 1 {
		sec = 1
	}
	return sec
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"ok": true, "draining": s.draining.Load()})
}

// Statz is the /statz payload.
type Statz struct {
	NowMS         float64 `json:"now_ms"` // virtual clock
	Speedup       float64 `json:"speedup"`
	Draining      bool    `json:"draining"`
	BacklogPredMS float64 `json:"backlog_pred_ms"`
	// Degrade reports the divergence tracker aggregate: whether any service
	// currently widens its admission margin, how often the detectors have
	// flipped, and the worst observed/predicted latency EWMA. Per-service
	// detail lives on each ServiceStatz entry.
	Degrade admit.Status `json:"degrade"`
	// Calibration reports the online latency-model calibration state
	// (per-service correction slope/intercept, sample counts, residual
	// quantiles); nil when calibration is off.
	Calibration *calib.Status `json:"calibration,omitempty"`
	// PredictCache reports the group-signature memoization cache counters;
	// nil when the cache is disabled. Misses equal the predictions the
	// duration model actually computed — the honest measure of model work.
	PredictCache *predictor.MemoStats `json:"predict_cache,omitempty"`
	// Faults are gateway-wide fault counters.
	Faults   FaultStatz     `json:"faults"`
	Services []ServiceStatz `json:"services"`
}

// FaultStatz counts the faults the gateway has absorbed.
type FaultStatz struct {
	Malformed            int64 `json:"malformed"`
	DuplicatesSuppressed int64 `json:"duplicates_suppressed"`
	RetriesSeen          int64 `json:"retries_seen"`
}

// ServiceStatz is one service's /statz entry.
type ServiceStatz struct {
	Service          int     `json:"service"`
	Model            string  `json:"model"`
	QoSMS            float64 `json:"qos_ms"`
	Accepted         int64   `json:"accepted"`
	RejectedDeadline int64   `json:"rejected_deadline"`
	RejectedQueue    int64   `json:"rejected_queue"`
	RejectedDraining int64   `json:"rejected_draining"`
	RejectedDegraded int64   `json:"rejected_degraded"`
	Completed        int64   `json:"completed"`
	Dropped          int64   `json:"dropped"`
	Violated         int64   `json:"violated"`
	QueueDepth       int     `json:"queue_depth"`
	// Per-service drift state: the admission margin this service's verdicts
	// pay, whether its drift detector is active, and the divergence EWMA it
	// acts on.
	Margin      float64 `json:"margin"`
	DriftActive bool    `json:"drift_active"`
	Divergence  float64 `json:"divergence_ewma"`
	P50MS       float64 `json:"p50_ms"`
	P99MS       float64 `json:"p99_ms"`
	MeanMS      float64 `json:"mean_ms"`
	GoodputQPS  float64 `json:"goodput_qps"` // virtual-time basis
}

// statz snapshots the gateway state. Queue depths, predicted backlog, and
// degrade state come from the loop goroutine when the bridge still runs,
// zero afterwards.
func (s *Server) statz() Statz {
	depths := make([]int, len(s.svc))
	backlog := 0.0
	var degrade admit.Status
	var drift []admit.ServiceStatus
	var calSt *calib.Status
	var memoSt *predictor.MemoStats
	var duplicates int64
	_ = s.bridge.Do(func() {
		s.admit.CopyOutstanding(depths)
		backlog = s.admit.BacklogMS()
		degrade = s.admit.Degrade().Snapshot()
		drift = s.admit.Degrade().ServiceSnapshots()
		if s.tracker != nil {
			cs := s.tracker.Snapshot()
			calSt = &cs
		}
		if s.memo != nil {
			ms := s.memo.Stats()
			memoSt = &ms
		}
		duplicates = s.duplicates
	})
	now := s.bridge.Now()

	out := Statz{
		NowMS:         now,
		Speedup:       s.cfg.Speedup,
		Draining:      s.draining.Load(),
		BacklogPredMS: backlog,
		Degrade:       degrade,
		Calibration:   calSt,
		PredictCache:  memoSt,
		Faults: FaultStatz{
			Malformed:            s.malformed.Load(),
			DuplicatesSuppressed: duplicates,
			RetriesSeen:          s.retriesSeen.Load(),
		},
	}
	services := s.rt.Services()
	s.mu.Lock()
	defer s.mu.Unlock()
	for i, st := range s.svc {
		entry := ServiceStatz{
			Service:          i,
			Model:            s.cfg.Models[i].String(),
			QoSMS:            services[i].QoS,
			Accepted:         st.accepted,
			RejectedDeadline: st.rejectedDeadline,
			RejectedQueue:    st.rejectedQueue,
			RejectedDraining: st.rejectedDraining,
			RejectedDegraded: st.rejectedDegraded,
			Completed:        st.completed,
			Dropped:          st.dropped,
			Violated:         st.violated,
			QueueDepth:       depths[i],
		}
		if i < len(drift) {
			entry.Margin = drift[i].Margin
			entry.DriftActive = drift[i].Active
			entry.Divergence = drift[i].Divergence
		}
		if lats := st.lats.snapshot(); len(lats) > 0 {
			ps := stats.Percentiles(lats, 50, 99)
			entry.P50MS, entry.P99MS = ps[0], ps[1]
			entry.MeanMS = st.latSum / float64(st.completed)
		}
		if now > 0 {
			entry.GoodputQPS = float64(st.good) / (now / 1000)
		}
		out.Services = append(out.Services, entry)
	}
	return out
}

func (s *Server) handleStatz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.statz())
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(renderMetrics(s.statz()))
}
