package server

import (
	"math"
	"sync/atomic"

	"abacus/internal/admit"
	"abacus/internal/calib"
	"abacus/internal/core"
	"abacus/internal/dnn"
	"abacus/internal/gpusim"
	"abacus/internal/predictor"
	"abacus/internal/realtime"
	"abacus/internal/sched"
)

// node is one per-GPU serving engine behind the gateway: its own simulated
// device and Abacus runtime, realtime bridge, admission controller, predict
// cache, and calibration tracker. Every non-atomic field is owned by the
// node's bridge loop goroutine; the router on handler goroutines reads only
// the published mirrors (load, degraded).
type node struct {
	id     int
	models []dnn.ModelID // hosted models, in node-local service order
	global []int         // local service index → gateway service index

	rt      *core.Runtime
	bridge  *realtime.Bridge
	adm     *admit.Admitter
	memo    *predictor.Memoized // nil when the predict cache is off
	tracker *calib.Tracker      // nil when calibration is off

	pending    map[*sched.Query]*pending
	byID       map[string]*pending
	recent     *outcomeCache
	duplicates int64
	routed     int64 // queries the router sent here
	migratedIn int64 // routed here while a degraded sibling also hosted the service

	// Router-visible mirrors, published from the loop goroutine after every
	// admission-state change.
	loadMS   atomic.Uint64 // predicted backlog, float64 bits
	degraded []atomic.Bool // per-local-service drift detector state
}

// newNode builds one node hosting the given model subset. global maps the
// node-local service order onto gateway service indices; onResult receives
// every finished query on the node's loop; onEvict fires when a completed
// request ID ages out of the node's idempotency cache.
func newNode(cfg Config, id int, models []dnn.ModelID, global []int,
	onResult func(*node, *sched.Query), onEvict func(string)) (*node, error) {
	n := &node{
		id:       id,
		models:   models,
		global:   global,
		pending:  make(map[*sched.Query]*pending),
		byID:     make(map[string]*pending),
		recent:   newOutcomeCache(cfg.DedupeWindow, onEvict),
		degraded: make([]atomic.Bool, len(models)),
	}
	profile := gpusim.A100Profile()
	model := cfg.Model
	if model == nil {
		model = predictor.Oracle{Profile: profile}
	}
	if cfg.Calib != nil {
		cc := *cfg.Calib
		// A refit moves exactly one service's correction, so only that
		// service's memoized solo predictions and the group signatures its
		// model appears in go stale — the per-service cache generation.
		// n.adm and n.memo are assigned below, before the bridge starts
		// delivering feedback.
		cc.OnUpdate = func(local int) {
			n.adm.InvalidateService(local)
			if n.memo != nil {
				n.memo.InvalidateModel(n.models[local])
			}
		}
		n.tracker = calib.NewTracker(cc, models)
		model = calib.NewCalibrated(model, n.tracker)
	}
	if cfg.PredictCache > 0 {
		// The memo sits above calibration so cached values are corrected
		// predictions; refits invalidate per model via OnUpdate above.
		n.memo = predictor.NewMemoized(model, cfg.PredictCache)
		model = n.memo
	}
	rt, err := core.New(core.Config{
		Models:    models,
		QoSFactor: cfg.QoSFactor,
		Model:     model,
		Profile:   profile,
		Sched:     cfg.Sched,
		SyncCost:  cfg.SyncCost,
		OnResult:  func(q *sched.Query) { onResult(n, q) },
	})
	if err != nil {
		return nil, err
	}
	n.rt = rt
	n.bridge = realtime.New(rt.Engine(), cfg.Speedup)
	syncCost := cfg.SyncCost
	if syncCost == 0 {
		syncCost = 0.02
	}
	n.adm = admit.New(model, rt.Device().Profile(), rt.Services(), cfg.QueueCap, syncCost,
		admit.NewDegrade(cfg.Degrade, len(models)))
	return n, nil
}

// publish refreshes the router-visible mirrors. Call from the loop goroutine
// after any change to admission state.
func (n *node) publish() {
	n.loadMS.Store(math.Float64bits(n.adm.BacklogMS()))
	for i := range n.degraded {
		n.degraded[i].Store(n.adm.Degrade().Active(i))
	}
}

// load returns the last published predicted backlog (any goroutine).
func (n *node) load() float64 { return math.Float64frombits(n.loadMS.Load()) }
