package server

import (
	"math"
	"sync"
	"sync/atomic"

	"abacus/internal/admit"
	"abacus/internal/calib"
	"abacus/internal/core"
	"abacus/internal/dnn"
	"abacus/internal/gpusim"
	"abacus/internal/predictor"
	"abacus/internal/realtime"
	"abacus/internal/sched"
	"abacus/internal/trace"
)

// node is one per-GPU serving engine behind the gateway: its own simulated
// device and Abacus runtime, realtime bridge, admission controller, predict
// cache, and calibration tracker. Every non-atomic field is owned by the
// node's bridge loop goroutine; the router on handler goroutines reads only
// the published mirrors (load, degraded).
type node struct {
	id     int
	models []dnn.ModelID // hosted models, in node-local service order
	global []int         // local service index → gateway service index

	rt      *core.Runtime
	bridge  *realtime.Bridge
	adm     *admit.Admitter
	memo    *predictor.Memoized // nil when the predict cache is off
	tracker *calib.Tracker      // nil when calibration is off

	pending    map[*sched.Query]*pending
	byID       map[string]*pending
	recent     *outcomeCache
	duplicates int64
	routed     int64 // queries the router sent here
	migratedIn int64 // routed here while a degraded sibling also hosted the service

	// Router-visible mirrors, published from the loop goroutine after every
	// admission-state change.
	loadMS   atomic.Uint64 // predicted backlog, float64 bits
	degraded []atomic.Bool // per-local-service drift detector state

	// unroutable flips once the autoscaler starts draining the node: the
	// router stops picking it and sticky RequestIDs remap to live replicas.
	// Never set on fixed fleets.
	unroutable atomic.Bool

	// Admission mailbox: handler goroutines enqueue admitMsgs here and a
	// per-node combiner goroutine (admitLoop, started by Server.Start) flows
	// whole batches through one bridge injection — one loop round trip per
	// burst instead of one per query. FIFO order is preserved, and in unpaced
	// mode the engine drains between batch entries, so admit/reject verdicts
	// stay byte-identical to the one-injection-per-query gateway.
	mboxMu   sync.Mutex
	mbox     []*admitMsg
	mboxFree []*admitMsg   // loop-owned spare backing array, ping-ponged with mbox
	mboxWake chan struct{} // cap 1: "the mailbox is non-empty"
	mboxStop bool
}

// admitMsg is one admission request in flight through a node's mailbox.
// The handler owns it before enqueue and after done fires; the node's
// combiner owns it in between. Pooled: done is a reusable 1-buffered
// channel, so the steady-state enqueue path allocates nothing.
type admitMsg struct {
	svc        int // node-local service index
	global     int // gateway-global service index
	in         dnn.Input
	deadlineMS float64
	requestID  string
	migrated   bool

	// Results, valid once done has fired.
	d        admit.Decision
	pend     *pending
	dup      *pending
	cached   *pending
	draining bool

	done chan struct{}
}

var admitMsgPool = sync.Pool{New: func() any {
	return &admitMsg{done: make(chan struct{}, 1)}
}}

func getAdmitMsg() *admitMsg { return admitMsgPool.Get().(*admitMsg) }

func putAdmitMsg(m *admitMsg) {
	done := m.done
	*m = admitMsg{done: done}
	admitMsgPool.Put(m)
}

// newNode builds one node hosting the given model subset. global maps the
// node-local service order onto gateway service indices; onResult receives
// every finished query on the node's loop; onEvict fires when a completed
// request ID ages out of the node's idempotency cache.
func newNode(cfg Config, id int, models []dnn.ModelID, global []int,
	onResult func(*node, *sched.Query), onEvict func(string)) (*node, error) {
	n := &node{
		id:       id,
		models:   models,
		global:   global,
		pending:  make(map[*sched.Query]*pending),
		byID:     make(map[string]*pending),
		recent:   newOutcomeCache(cfg.DedupeWindow, onEvict),
		degraded: make([]atomic.Bool, len(models)),
		mboxWake: make(chan struct{}, 1),
	}
	profile := gpusim.A100Profile()
	model := cfg.Model
	if model == nil {
		model = predictor.Oracle{Profile: profile}
	}
	if cfg.Calib != nil {
		cc := *cfg.Calib
		// A refit moves exactly one service's correction, so only that
		// service's memoized solo predictions and the group signatures its
		// model appears in go stale — the per-service cache generation.
		// n.adm and n.memo are assigned below, before the bridge starts
		// delivering feedback.
		cc.OnUpdate = func(local int) {
			n.adm.InvalidateService(local)
			if n.memo != nil {
				n.memo.InvalidateModel(n.models[local])
			}
		}
		n.tracker = calib.NewTracker(cc, models)
		model = calib.NewCalibrated(model, n.tracker)
	}
	if cfg.PredictCache > 0 {
		// The memo sits above calibration so cached values are corrected
		// predictions; refits invalidate per model via OnUpdate above.
		n.memo = predictor.NewMemoized(model, cfg.PredictCache)
		model = n.memo
	}
	rt, err := core.New(core.Config{
		Models:    models,
		QoSFactor: cfg.QoSFactor,
		Model:     model,
		Profile:   profile,
		Sched:     cfg.Sched,
		SyncCost:  cfg.SyncCost,
		OnResult:  func(q *sched.Query) { onResult(n, q) },
	})
	if err != nil {
		return nil, err
	}
	n.rt = rt
	n.bridge = realtime.New(rt.Engine(), cfg.Speedup)
	syncCost := cfg.SyncCost
	if syncCost == 0 {
		syncCost = 0.02
	}
	n.adm = admit.New(model, rt.Device().Profile(), rt.Services(), cfg.QueueCap, syncCost,
		admit.NewDegrade(cfg.Degrade, len(models)))
	return n, nil
}

// enqueue hands one admission request to the node's combiner. It reports
// false when the mailbox has already shut down (the gateway is draining);
// otherwise the caller must wait on m.done before reading results.
func (n *node) enqueue(m *admitMsg) bool {
	n.mboxMu.Lock()
	if n.mboxStop {
		n.mboxMu.Unlock()
		return false
	}
	n.mbox = append(n.mbox, m)
	select {
	case n.mboxWake <- struct{}{}:
	default:
	}
	n.mboxMu.Unlock()
	return true
}

// mailboxIdle reports whether no admission request is queued. Used by the
// autoscaler's drain to decide the node has gone quiescent.
func (n *node) mailboxIdle() bool {
	n.mboxMu.Lock()
	defer n.mboxMu.Unlock()
	return len(n.mbox) == 0
}

// stopMailbox shuts the mailbox down: queued messages are answered as
// draining and admitLoop exits once the wake channel drains. Idempotent;
// call after the bridge has stopped so no admission can slip past Drain.
func (n *node) stopMailbox() {
	n.mboxMu.Lock()
	if n.mboxStop {
		n.mboxMu.Unlock()
		return
	}
	n.mboxStop = true
	rest := n.mbox
	n.mbox = nil
	close(n.mboxWake)
	n.mboxMu.Unlock()
	for _, m := range rest {
		m.draining = true
		m.done <- struct{}{}
	}
}

// admitLoop is the node's combiner goroutine: it swaps the mailbox empty,
// runs the whole batch through a single bridge injection, and repeats. While
// the loop goroutine is deciding one batch, handler goroutines decode and
// enqueue the next and earlier handlers encode their responses — the
// decode → admit/submit → encode pipeline overlaps across requests.
func (n *node) admitLoop(s *Server) {
	for range n.mboxWake {
		for {
			n.mboxMu.Lock()
			if len(n.mbox) == 0 {
				n.mboxMu.Unlock()
				break
			}
			batch := n.mbox
			n.mbox = n.mboxFree[:0]
			n.mboxMu.Unlock()

			err := n.bridge.Do(func() {
				for i, m := range batch {
					if i > 0 {
						// Catch the engine up between entries so each verdict
						// sees exactly the state a one-injection-per-query
						// gateway would have seen: in unpaced mode the engine
						// drains fully (byte-identical decisions), in paced
						// mode completions due by now fire before the next
						// backlog estimate.
						n.bridge.CatchUp()
					}
					n.admitOne(s, m)
					m.done <- struct{}{}
				}
			})
			if err != nil {
				// Bridge stopped mid-flight: every queued handler gets the
				// draining verdict.
				for _, m := range batch {
					m.draining = true
					m.done <- struct{}{}
				}
			}
			clear(batch)
			n.mboxFree = batch[:0]
		}
	}
}

// admitOne renders one admission verdict on the loop goroutine: duplicate
// suppression, capture, decide, submit. Mirrors the PR-3 per-query Do body.
func (n *node) admitOne(s *Server, m *admitMsg) {
	if s.draining.Load() {
		m.draining = true
		return
	}
	if m.requestID != "" {
		if p, ok := n.byID[m.requestID]; ok {
			m.dup = p
			n.duplicates++
			return
		}
		if p, ok := n.recent.get(m.requestID); ok {
			m.cached = p
			n.duplicates++
			return
		}
	}
	now := n.rt.Engine().Now()
	if s.cfg.Capture != nil {
		s.cfg.Capture.Record(trace.Arrival{Time: float64(now), Service: m.global, Input: m.in})
	}
	m.d = n.adm.Decide(now, m.svc, m.in, m.deadlineMS)
	if !m.d.OK {
		return
	}
	q := n.rt.SubmitSLO(m.svc, m.in, now, m.deadlineMS)
	p := &pending{
		q:      q,
		id:     m.requestID,
		predMS: m.d.PredMS,
		workMS: m.d.WorkMS,
		done:   make(chan struct{}),
	}
	n.pending[q] = p
	if m.requestID != "" {
		n.byID[m.requestID] = p
	}
	n.adm.Admitted(m.svc, m.d.WorkMS)
	n.routed++
	if m.migrated {
		n.migratedIn++
	}
	n.publish()
	m.pend = p
}

// publish refreshes the router-visible mirrors. Call from the loop goroutine
// after any change to admission state.
func (n *node) publish() {
	n.loadMS.Store(math.Float64bits(n.adm.BacklogMS()))
	for i := range n.degraded {
		n.degraded[i].Store(n.adm.Degrade().Active(i))
	}
}

// load returns the last published predicted backlog (any goroutine).
func (n *node) load() float64 { return math.Float64frombits(n.loadMS.Load()) }
