// Pins the hand-rolled /v1/infer wire codec to encoding/json: the decoder
// must accept and reject the same bodies with the same resulting fields, the
// encoder must produce byte-identical output, and the combined decode →
// validate → decide → encode path must not allocate — the property the
// ingest hot path's throughput rests on (trend-gated via BENCH_http.json).
package server

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"testing"

	"abacus/internal/dnn"
	"abacus/internal/realtime"
)

// parseReference decodes body the way the pre-codec gateway did
// (json.Decoder semantics: trailing data after the object is ignored).
func parseReference(body []byte) (InferRequest, error) {
	var req InferRequest
	err := json.NewDecoder(bytes.NewReader(body)).Decode(&req)
	return req, err
}

func TestWireRequestParseMatchesEncodingJSON(t *testing.T) {
	bodies := []string{
		`{}`,
		`{"model":"Res50","batch":4}`,
		`{"model":"Res50","batch":4,"seqlen":64,"deadline_ms":12.5,"request_id":"rq-1","attempt":2}`,
		"\t {\n\"model\" : \"Res50\" ,\n \"batch\": 1 }\r\n",
		`{"MODEL":"Res50","Batch":2,"SeqLen":8,"Deadline_MS":3,"REQUEST_ID":"x","ATTEMPT":1}`,
		`{"model":"a\"b\\c\/d\nx\tz\u0041\u00e9"}`,
		`{"request_id":"\ud83d\ude00 pair \ud800 lone \udc00 low"}`,
		`{"model":"Res50","extra":{"nested":[1,2,{"k":"v"}],"b":true,"n":null},"batch":4}`,
		`{"model":null,"batch":4,"request_id":null}`,
		`{"batch":-3,"deadline_ms":-1.5}`,
		`{"deadline_ms":1e3,"batch":12}`,
		`{"deadline_ms":2.5e-2}`,
		`{"deadline_ms":0.125,"attempt":0}`,
		`{"model":"Res50","batch":4}   trailing garbage ignored by Decode`,
		`{"unknown":"only"}`,
		`{"unknown":12.5e+7}`,
		// Malformed: both decoders must reject.
		`{not json`,
		``,
		`   `,
		`[1,2,3]`,
		`"just a string"`,
		`{"model":}`,
		`{"model":"unterminated`,
		`{"model":"bad escape \q"}`,
		`{"model":"trunc \u12"}`,
		`{"batch":}`,
		`{"batch":1.5}`,
		`{"batch":"4"}`,
		`{"batch":1e2}`,
		`{"batch":99999999999999999999}`,
		`{"deadline_ms":.5}`,
		`{"deadline_ms":1.}`,
		`{"deadline_ms":1e}`,
		`{"model":"Res50" "batch":1}`,
		`{"model":"Res50",}`,
		`{"model" "Res50"}`,
		`{"batch":nul}`,
		`{"batch":truex}`,
	}
	var w WireRequest
	for _, body := range bodies {
		ref, refErr := parseReference([]byte(body))
		gotErr := w.Parse([]byte(body))
		if (refErr == nil) != (gotErr == nil) {
			t.Errorf("%q: encoding/json err=%v, codec err=%v", body, refErr, gotErr)
			continue
		}
		if refErr != nil {
			continue
		}
		got := InferRequest{
			Model:      string(w.Model),
			Batch:      w.Batch,
			SeqLen:     w.SeqLen,
			DeadlineMS: w.DeadlineMS,
			RequestID:  string(w.RequestID),
			Attempt:    w.Attempt,
		}
		if got != ref {
			t.Errorf("%q:\n codec %+v\n  json %+v", body, got, ref)
		}
	}
}

// TestWireRequestParseDeepNesting pins the skip-depth bound: unknown fields
// may nest, but a hostile body cannot recurse the parser to death.
func TestWireRequestParseDeepNesting(t *testing.T) {
	var w WireRequest
	ok := `{"x":` + strings.Repeat(`[`, 60) + strings.Repeat(`]`, 60) + `,"batch":2}`
	if err := w.Parse([]byte(ok)); err != nil || w.Batch != 2 {
		t.Fatalf("60-deep unknown value: err=%v batch=%d", err, w.Batch)
	}
	deep := `{"x":` + strings.Repeat(`[`, 500) + strings.Repeat(`]`, 500) + `}`
	if err := w.Parse([]byte(deep)); err == nil {
		t.Fatal("500-deep unknown value parsed; want depth error")
	}
}

func TestAppendInferResponseMatchesEncodingJSON(t *testing.T) {
	cases := []InferResponse{
		{},
		{Model: "Res50", Batch: 4, Accepted: true, ArrivalMS: 12.25, FinishMS: 31.5,
			LatencyMS: 19.25, DeadlineMS: 40, PredictedMS: 18.728515625},
		{Model: "Bert", Batch: 2, SeqLen: 64, Accepted: true, Violated: true, Degraded: true,
			LatencyMS: 104.9999999999},
		{Model: "Res50", Batch: 1, Reason: "queue_full", RetryAfterMS: 1234.5, Error: "shed"},
		{Model: "x", Accepted: true, Dropped: true, Duplicate: true, Reason: "dropped"},
		{Error: "bad JSON: offset 0: expected object"},
		{Model: `quotes " backslash \ html <>&`, Error: "control \x01\x1f tab\tnewline\n"},
		{Model: "unicode é 語 \u2028 \u2029 emoji 😀", Error: string([]byte{'b', 0xff, 'c'})},
		{ArrivalMS: 1e-9, FinishMS: 1e21, LatencyMS: -1e-9, DeadlineMS: -1e21,
			PredictedMS: 3.5e-7, RetryAfterMS: 0.0000011},
		{ArrivalMS: 1e20, FinishMS: 1e-6, LatencyMS: math.MaxFloat64,
			PredictedMS: 5e-324, DeadlineMS: -0.25},
		{Batch: -7, SeqLen: 128},
	}
	for _, r := range cases {
		want, err := json.Marshal(&r)
		if err != nil {
			t.Fatal(err)
		}
		want = append(want, '\n')
		got := AppendInferResponse(nil, &r)
		if !bytes.Equal(got, want) {
			t.Errorf("%+v:\n codec %q\n  json %q", r, got, want)
		}
	}
}

// TestInferHotPathZeroAllocs asserts the steady-state ingest path — decode,
// validate, admission verdict, encode — costs zero allocations per request
// once the scratch is warm. This is the property BENCH_http.json trend-gates.
func TestInferHotPathZeroAllocs(t *testing.T) {
	s, err := New(Config{Models: []dnn.ModelID{dnn.ResNet50, dnn.Bert}, Speedup: realtime.Unpaced})
	if err != nil {
		t.Fatal(err)
	}
	n := s.nodes[0]
	body := []byte(`{"model":"Res50","batch":4,"deadline_ms":500}`)
	sc := getScratch()
	defer putScratch(sc)
	var resp InferResponse
	allocs := testing.AllocsPerRun(1000, func() {
		if err := sc.req.Parse(body); err != nil {
			panic(err)
		}
		svc, in, err := s.validate(&sc.req)
		if err != nil {
			panic(err)
		}
		d := n.adm.Decide(n.rt.Engine().Now(), 0, in, sc.req.DeadlineMS)
		resp = InferResponse{Model: s.modelName[svc], Batch: sc.req.Batch, SeqLen: sc.req.SeqLen}
		resp.Accepted = d.OK
		resp.PredictedMS = d.PredMS
		sc.out = AppendInferResponse(sc.out[:0], &resp)
	})
	if allocs != 0 {
		t.Fatalf("hot path allocates %.1f/op; want 0", allocs)
	}
	if !resp.Accepted {
		t.Fatalf("probe request unexpectedly rejected: %+v", resp)
	}
}

func BenchmarkInferDecode(b *testing.B) {
	body := []byte(`{"model":"Res50","batch":4,"seqlen":0,"deadline_ms":100,"attempt":0}`)
	var w WireRequest
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := w.Parse(body); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkInferEncode(b *testing.B) {
	resp := InferResponse{Model: "Res50", Batch: 4, Accepted: true, ArrivalMS: 12.25,
		FinishMS: 31.5, LatencyMS: 19.25, DeadlineMS: 40, PredictedMS: 18.7}
	var out []byte
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		out = AppendInferResponse(out[:0], &resp)
	}
}

// BenchmarkInferHotPath is the full per-request ingest cost minus the HTTP
// transport: decode, validate, admission verdict, encode.
func BenchmarkInferHotPath(b *testing.B) {
	s, err := New(Config{Models: []dnn.ModelID{dnn.ResNet50}, Speedup: realtime.Unpaced})
	if err != nil {
		b.Fatal(err)
	}
	n := s.nodes[0]
	body := []byte(`{"model":"Res50","batch":4,"deadline_ms":500}`)
	sc := getScratch()
	defer putScratch(sc)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := sc.req.Parse(body); err != nil {
			b.Fatal(err)
		}
		svc, in, err := s.validate(&sc.req)
		if err != nil {
			b.Fatal(err)
		}
		d := n.adm.Decide(n.rt.Engine().Now(), 0, in, sc.req.DeadlineMS)
		resp := InferResponse{Model: s.modelName[svc], Batch: sc.req.Batch, SeqLen: sc.req.SeqLen}
		resp.Accepted = d.OK
		resp.PredictedMS = d.PredMS
		sc.out = AppendInferResponse(sc.out[:0], &resp)
	}
}
