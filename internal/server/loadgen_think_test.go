package server

import (
	"bytes"
	"context"
	"sync"
	"testing"

	"abacus/internal/dnn"
	"abacus/internal/trace"
	"abacus/internal/workload"
)

// TestClosedLoopThinkPerWorkerStreams pins the S3 determinism contract: every
// closed-loop worker's think sequence is a pure function of (Seed, worker
// index). Workers race for requests on a shared channel, so how MANY thinks
// each one draws varies with goroutine scheduling — but the sequence each
// worker does draw must always be a prefix of the stream derived from its own
// (seed, worker) sub-seed, never perturbed by what the other workers consumed.
func TestClosedLoopThinkPerWorkerStreams(t *testing.T) {
	models := []dnn.ModelID{dnn.ResNet152}
	_, client := newTestServer(t, Config{Models: models, Speedup: 5000})

	think := &workload.ThinkSpec{Kind: workload.ThinkExp, MeanMS: 2}
	const seed, workers = 9, 4
	arrivals := trace.NewGenerator(models, 3).Poisson(50, 1000)

	run := func() [][]float64 {
		per := make([][]float64, workers)
		var mu sync.Mutex
		cfg := LoadConfig{
			Client:      client,
			Models:      models,
			Arrivals:    arrivals,
			Speedup:     5000,
			Closed:      true,
			Concurrency: workers,
			Requests:    48,
			Think:       think,
			Seed:        seed,
			thinkHook: func(w int, ms float64) {
				mu.Lock()
				per[w] = append(per[w], ms)
				mu.Unlock()
			},
		}
		if _, err := RunLoad(context.Background(), cfg); err != nil {
			t.Fatal(err)
		}
		return per
	}

	sampler := think.Sampler()
	for trial := 0; trial < 2; trial++ {
		per := run()
		total := 0
		for w, seq := range per {
			total += len(seq)
			rng := workload.NewPRNG(workload.SubSeed(seed, 0x77, uint64(w)))
			for i, got := range seq {
				if want := sampler(rng); got != want {
					t.Fatalf("trial %d worker %d draw %d = %v, want %v (stream not a pure function of seed+worker)", trial, w, i, got, want)
				}
			}
		}
		if total != 48 {
			t.Fatalf("trial %d recorded %d thinks, want one per request (48)", trial, total)
		}
	}
}

// TestGatewayCaptureRoundTrips drives the gateway with Config.Capture set and
// checks the recorded arrivals mirror what was sent — and that the capture
// persists through tracev2 byte-identically, closing the record/replay loop.
func TestGatewayCaptureRoundTrips(t *testing.T) {
	models := []dnn.ModelID{dnn.ResNet152, dnn.InceptionV3}
	cap := trace.NewCapture()
	_, client := newTestServer(t, Config{Models: models, Speedup: 5000, Capture: cap})

	arrivals := trace.NewGenerator(models, 5).Poisson(60, 1500)
	if _, err := RunLoad(context.Background(), LoadConfig{
		Client: client, Models: models, Arrivals: arrivals, Speedup: 5000,
	}); err != nil {
		t.Fatal(err)
	}
	got := cap.Snapshot()
	if len(got) != len(arrivals) {
		t.Fatalf("captured %d arrivals, sent %d", len(got), len(arrivals))
	}
	counts := make([]int, len(models))
	for i, a := range got {
		if a.Service < 0 || a.Service >= len(models) {
			t.Fatalf("captured arrival %d has service %d outside deployment", i, a.Service)
		}
		counts[a.Service]++
		if i > 0 && got[i].Time < got[i-1].Time {
			t.Fatalf("snapshot not time-sorted at %d", i)
		}
	}
	want := make([]int, len(models))
	for _, a := range arrivals {
		want[a.Service]++
	}
	for s := range counts {
		if counts[s] != want[s] {
			t.Errorf("service %d: captured %d, sent %d", s, counts[s], want[s])
		}
	}

	meta := workload.CaptureMeta("capture-test", len(models), got)
	var first bytes.Buffer
	if err := workload.WriteTrace(&first, meta, got); err != nil {
		t.Fatal(err)
	}
	meta2, got2, err := workload.ReadTrace(bytes.NewReader(first.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	var second bytes.Buffer
	if err := workload.WriteTrace(&second, meta2, got2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first.Bytes(), second.Bytes()) {
		t.Error("captured session does not round-trip byte-identically through tracev2")
	}
}
