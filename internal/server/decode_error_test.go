// Pins the decode-error/network-error split introduced with the pooled
// client read buffers: a response that arrives intact but fails to parse is
// a DecodeError (counted once, as a protocol fault), while a short read of a
// reused buffer is surfaced as the read error itself and never also counted
// as malformed — the double-count the pooled path must not reintroduce.
package server

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strconv"
	"testing"

	"abacus/internal/dnn"
	"abacus/internal/trace"
)

// faultyGateway answers every /v1/infer with mode "garbage" (complete but
// undecodable body) or "short" (Content-Length promises more bytes than are
// sent, so the client's read fails partway).
func faultyGateway(t *testing.T, mode string) *httptest.Server {
	t.Helper()
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch mode {
		case "garbage":
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusOK)
			_, _ = w.Write([]byte(`{"model": <<not json>>`))
		case "short":
			w.Header().Set("Content-Length", strconv.Itoa(400))
			w.WriteHeader(http.StatusOK)
			_, _ = w.Write([]byte(`{"model":"Res50","ba`))
			if f, ok := w.(http.Flusher); ok {
				f.Flush()
			}
			// Returning with 380 promised bytes unsent makes net/http sever
			// the connection; the client sees an unexpected EOF mid-body.
		default:
			t.Fatalf("unknown mode %q", mode)
		}
	}))
	t.Cleanup(srv.Close)
	return srv
}

func TestClientDecodeErrorDistinctFromShortRead(t *testing.T) {
	garbage := NewClient(faultyGateway(t, "garbage").URL, nil)
	_, status, err := garbage.Infer(context.Background(), InferRequest{Model: "Res50", Batch: 1})
	if !IsDecodeError(err) {
		t.Fatalf("garbage body: want DecodeError, got %v", err)
	}
	if status != http.StatusOK {
		t.Fatalf("garbage body: DecodeError should carry the HTTP status, got %d", status)
	}

	short := NewClient(faultyGateway(t, "short").URL, nil)
	_, _, err = short.Infer(context.Background(), InferRequest{Model: "Res50", Batch: 1})
	if err == nil {
		t.Fatal("short read: want an error")
	}
	if IsDecodeError(err) {
		t.Fatalf("short read misclassified as DecodeError (double-count risk): %v", err)
	}
}

func TestRetrierCountsDecodeErrorsPerAttempt(t *testing.T) {
	c := NewClient(faultyGateway(t, "garbage").URL, nil)
	r := NewRetrier(RetryPolicy{MaxAttempts: 3, BaseBackoff: 1, MaxBackoff: 1})
	_, _, st, err := r.InferRetry(context.Background(), c, InferRequest{Model: "Res50", Batch: 1})
	if !IsDecodeError(err) {
		t.Fatalf("want DecodeError after exhausted retries, got %v", err)
	}
	if st.Attempts != 3 || st.DecodeErrors != 3 {
		t.Fatalf("want 3 attempts / 3 decode errors, got %+v", st)
	}
}

func TestLoadgenClassifiesDecodeAndNetworkErrorsSeparately(t *testing.T) {
	arrivals := []trace.Arrival{{Time: 0, Service: 0, Input: dnn.Input{Batch: 1}}}
	for _, tc := range []struct {
		mode                string
		wantDecode, wantNet int
	}{
		{"garbage", 1, 0},
		{"short", 0, 1},
	} {
		c := NewClient(faultyGateway(t, tc.mode).URL, nil)
		res, err := RunLoad(context.Background(), LoadConfig{
			Client:   c,
			Models:   []dnn.ModelID{dnn.ResNet50},
			Arrivals: arrivals,
		})
		if err != nil {
			t.Fatal(err)
		}
		tot := res.Total
		if tot.DecodeErrors != tc.wantDecode || tot.Errors != tc.wantNet {
			t.Errorf("%s: decode=%d net=%d, want decode=%d net=%d (no double-count)",
				tc.mode, tot.DecodeErrors, tot.Errors, tc.wantDecode, tc.wantNet)
		}
		if tot.Sent != 1 {
			t.Errorf("%s: sent %d, want 1", tc.mode, tot.Sent)
		}
	}
}
