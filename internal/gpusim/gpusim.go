// Package gpusim models a GPU as a deterministic discrete-event device.
//
// The Abacus paper's central premise (§5.2) is that the latency of a fixed
// set of overlapped DNN operators is deterministic and predictable, while
// freely overlapping kernels from independently arriving queries is not.
// This package provides a device with exactly those properties as the
// substitute for a physical A100 (see DESIGN.md):
//
//   - A kernel is (Work, SMFrac, MemFrac): milliseconds of solo execution,
//     the fraction of the device's SMs it can occupy, and the fraction of
//     DRAM bandwidth it demands at full rate.
//   - Concurrently resident kernels share SMs and memory bandwidth by
//     max-min fair allocation, so low-occupancy kernels overlap almost for
//     free while saturating kernels time-share — the contention regime the
//     paper reports for ResNet/Inception versus VGG.
//   - Progress rates are piecewise constant between events; remaining work
//     integrates exactly, so latency is a deterministic function of the
//     overlap set.
//   - Optional seeded lognormal noise perturbs each launch to reproduce the
//     small run-to-run jitter measured in §5.2.
//
// MIG instances (§7.5) are devices with fractional SM/bandwidth capacity.
package gpusim

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"abacus/internal/sim"
)

// KernelSpec describes one GPU kernel launch.
type KernelSpec struct {
	Name    string  // diagnostic label, e.g. "conv3_4/conv"
	Work    float64 // solo execution time at full allocation, ms (> 0)
	SMFrac  float64 // fraction of device SMs occupied when running alone, (0, 1]
	MemFrac float64 // fraction of device DRAM bandwidth demanded at full rate, [0, 1]
}

// Validate reports whether the spec's parameters are in range.
func (s KernelSpec) Validate() error {
	switch {
	case !(s.Work > 0) || math.IsInf(s.Work, 0):
		return fmt.Errorf("gpusim: kernel %q: Work %v must be positive and finite", s.Name, s.Work)
	case !(s.SMFrac > 0) || s.SMFrac > 1:
		return fmt.Errorf("gpusim: kernel %q: SMFrac %v must be in (0,1]", s.Name, s.SMFrac)
	case s.MemFrac < 0 || s.MemFrac > 1 || math.IsNaN(s.MemFrac):
		return fmt.Errorf("gpusim: kernel %q: MemFrac %v must be in [0,1]", s.Name, s.MemFrac)
	}
	return nil
}

// Profile holds the hardware constants of a device model. The defaults in
// A100Profile are calibrated so the model zoo's solo latencies land in the
// paper's regime (tens of milliseconds at batch 32).
type Profile struct {
	Name           string
	NumSMs         int     // streaming multiprocessors (A100: 128 in the paper)
	FLOPsPerMS     float64 // sustained FLOPs per millisecond at full device
	BytesPerMS     float64 // sustained DRAM bytes per millisecond at full device
	LaunchGap      float64 // host-side gap between dependent kernel launches, ms
	BlocksPerSM    int     // resident thread blocks per SM used for occupancy
	FullWaves      int     // block waves needed to reach full throughput (tail effect)
	TransferPerMB  float64 // PCIe/NVLink transfer time per MB of query input, ms
	ModelSwapPerMB float64 // time to activate (swap in) 1 MB of model weights, ms
}

// A100Profile returns the default device profile used across the
// reproduction. Throughput constants are "sustained" rather than peak; the
// per-operator efficiency factors live in the DNN cost model.
func A100Profile() Profile {
	return Profile{
		Name:           "A100",
		NumSMs:         128,
		FLOPsPerMS:     1.6e11, // effective tensor-core roof
		BytesPerMS:     1.9e9,  // HBM2e with L2 reuse folded in
		LaunchGap:      0.004,  // 4 µs per dependent launch
		BlocksPerSM:    2,
		FullWaves:      4,      // small grids are latency-bound until ~4 waves
		TransferPerMB:  0.045,  // ~22 GB/s effective PCIe 4.0
		ModelSwapPerMB: 0.0625, // 16 GB/s weight activation path
	}
}

// kernel is a resident kernel's bookkeeping.
type kernel struct {
	spec      KernelSpec
	seq       int64    // launch order, for deterministic callback ordering
	start     sim.Time // launch instant, for tracing
	remaining float64  // work left, ms at full rate
	rate      float64  // current progress rate in (0, 1]
	done      func()
}

// Device is a (possibly partitioned) GPU executing kernels under contention.
// All methods must be called from the simulation goroutine; Device is not
// safe for concurrent use, matching the single-threaded engine.
type Device struct {
	eng     *sim.Engine
	profile Profile
	smCap   float64 // capacity in units of "fraction of a full device"
	memCap  float64

	running    map[*kernel]struct{}
	lastUpdate sim.Time
	completion *sim.Event

	// Fault-injection state (internal/chaos): degradation scales the
	// effective capacity seen by computeRates without touching the nominal
	// smCap/memCap that Partition and the predictors reason about —
	// throttling is precisely the regime where the duration model and the
	// device disagree.
	smDegrade   float64 // effective-SM scale, (0, 1]; 1 = healthy
	memDegrade  float64 // effective-bandwidth scale, (0, 1]; 1 = healthy
	launchStall float64 // extra delay before each Launch takes effect, ms

	noise      *rand.Rand
	noiseSigma float64
	tracer     Tracer

	busyTime sim.Time // integral of time with >= 1 resident kernel
	smTime   float64  // integral of Σ rate·SMFrac dt (SM-milliseconds used)
	launched int64
}

// New returns a full-capacity device attached to the engine.
func New(eng *sim.Engine, profile Profile) *Device {
	return newDevice(eng, profile, 1, 1)
}

func newDevice(eng *sim.Engine, profile Profile, smCap, memCap float64) *Device {
	if eng == nil {
		panic("gpusim: nil engine")
	}
	if smCap <= 0 || smCap > 1 || memCap <= 0 || memCap > 1 {
		panic(fmt.Sprintf("gpusim: capacity (%v, %v) out of (0,1]", smCap, memCap))
	}
	return &Device{
		eng:        eng,
		profile:    profile,
		smCap:      smCap,
		memCap:     memCap,
		smDegrade:  1,
		memDegrade: 1,
		running:    make(map[*kernel]struct{}),
		lastUpdate: eng.Now(),
	}
}

// Partition returns a MIG-style instance with the given fraction of the
// parent's SM and memory-bandwidth capacity. Instances are fully isolated
// from each other and from the parent; per MIG semantics the parent must not
// be used for kernel execution while its partitions are.
func (d *Device) Partition(smFrac, memFrac float64) *Device {
	return newDevice(d.eng, d.profile, d.smCap*smFrac, d.memCap*memFrac)
}

// Engine returns the simulation engine driving this device.
func (d *Device) Engine() *sim.Engine { return d.eng }

// Profile returns the device's hardware profile.
func (d *Device) Profile() Profile { return d.profile }

// SMCapacity returns the device's SM capacity as a fraction of a full GPU.
func (d *Device) SMCapacity() float64 { return d.smCap }

// MemCapacity returns the device's bandwidth capacity as a fraction of a
// full GPU.
func (d *Device) MemCapacity() float64 { return d.memCap }

// EnableNoise turns on seeded lognormal work perturbation: each launch's
// work is multiplied by exp(sigma·N(0,1)). sigma = 0 disables noise.
func (d *Device) EnableNoise(sigma float64, seed int64) {
	if sigma < 0 {
		panic("gpusim: negative noise sigma")
	}
	if sigma == 0 {
		d.noise = nil
		d.noiseSigma = 0
		return
	}
	d.noise = rand.New(rand.NewSource(seed))
	d.noiseSigma = sigma
}

// SetDegradation injects a transient substrate fault: smScale is a clock
// cut that multiplies every resident kernel's progress rate (thermal/power
// throttling slows all work proportionally), while memScale shrinks the
// device's memory-bandwidth capacity (hurting only bandwidth-constrained
// kernels, like a misbehaving HBM stack or ECC scrubbing storm). Both are
// in (0, 1]; (1, 1) restores the healthy device. Resident kernels are
// re-rated immediately: progress already made is preserved exactly, and
// the change is deterministic on the virtual clock. Nominal capacity
// (SMCapacity, MemCapacity, Partition) is unaffected, so latency
// predictors keep seeing the healthy device — which is exactly what makes
// throttling a prediction fault worth injecting.
func (d *Device) SetDegradation(smScale, memScale float64) {
	if !(smScale > 0) || smScale > 1 || !(memScale > 0) || memScale > 1 {
		panic(fmt.Sprintf("gpusim: degradation (%v, %v) out of (0,1]", smScale, memScale))
	}
	d.advance()
	d.smDegrade = smScale
	d.memDegrade = memScale
	d.reschedule()
}

// Degradation returns the current (SM, bandwidth) degradation factors;
// (1, 1) means the device is healthy.
func (d *Device) Degradation() (smScale, memScale float64) {
	return d.smDegrade, d.memDegrade
}

// SetLaunchStall injects a fixed host-side stall before every subsequent
// Launch takes effect, modeling driver/runtime hiccups in the kernel-launch
// path. Zero restores immediate launches; negative stalls panic.
func (d *Device) SetLaunchStall(ms float64) {
	if ms < 0 || math.IsNaN(ms) {
		panic(fmt.Sprintf("gpusim: launch stall %v must be >= 0", ms))
	}
	d.launchStall = ms
}

// LaunchStall returns the current injected per-launch stall in ms.
func (d *Device) LaunchStall() float64 { return d.launchStall }

// Resident reports the number of kernels currently executing.
func (d *Device) Resident() int { return len(d.running) }

// Launched reports the total number of kernels launched so far.
func (d *Device) Launched() int64 { return d.launched }

// BusyTime returns the total virtual time during which at least one kernel
// was resident.
func (d *Device) BusyTime() sim.Time { d.advance(); return d.busyTime }

// SMTime returns the integral of SM utilization over time, in
// "full-device milliseconds" (e.g. 2 kernels at 0.5 SMFrac for 1 ms = 1.0).
func (d *Device) SMTime() float64 { d.advance(); return d.smTime }

// Utilization returns mean SM utilization over [0, now], in [0, 1].
func (d *Device) Utilization() float64 {
	d.advance()
	if d.eng.Now() == 0 {
		return 0
	}
	return d.smTime / d.eng.Now()
}

// Launch begins executing spec. done, if non-nil, runs when the kernel
// completes. Launch panics on an invalid spec: specs are produced by the
// cost model, so an invalid one is a programming error.
func (d *Device) Launch(spec KernelSpec, done func()) {
	if err := spec.Validate(); err != nil {
		panic(err)
	}
	if d.launchStall > 0 {
		// The stall defers the launch on the virtual clock; the stall in
		// force at Launch time is the one paid, even if cleared meanwhile.
		d.eng.Schedule(d.launchStall, func() { d.launchNow(spec, done) })
		return
	}
	d.launchNow(spec, done)
}

func (d *Device) launchNow(spec KernelSpec, done func()) {
	d.advance()
	w := spec.Work
	if d.noise != nil {
		w *= math.Exp(d.noiseSigma * d.noise.NormFloat64())
	}
	k := &kernel{spec: spec, seq: d.launched, start: d.eng.Now(), remaining: w, done: done}
	d.running[k] = struct{}{}
	d.launched++
	d.reschedule()
}

// RunChain executes specs as a dependent chain: each kernel launches
// LaunchGap after its predecessor completes (the first after an initial
// gap). done, if non-nil, runs when the last kernel finishes. An empty chain
// completes immediately. RunChain returns without blocking; execution
// proceeds on the virtual clock.
func (d *Device) RunChain(specs []KernelSpec, done func()) {
	i := 0
	var next func()
	next = func() {
		if i == len(specs) {
			if done != nil {
				done()
			}
			return
		}
		spec := specs[i]
		i++
		d.eng.Schedule(d.profile.LaunchGap, func() {
			d.Launch(spec, next)
		})
	}
	next()
}

// advance integrates kernel progress from lastUpdate to now at the current
// (piecewise-constant) rates.
func (d *Device) advance() {
	now := d.eng.Now()
	dt := now - d.lastUpdate
	if dt <= 0 {
		d.lastUpdate = now
		return
	}
	if len(d.running) > 0 {
		d.busyTime += dt
		for k := range d.running {
			k.remaining -= k.rate * dt
			if k.remaining < 0 {
				k.remaining = 0
			}
			d.smTime += k.rate * k.spec.SMFrac * dt
		}
	}
	d.lastUpdate = now
}

// completionEps absorbs floating-point residue when deciding whether a
// kernel has finished at its completion event.
const completionEps = 1e-9

// reschedule recomputes rates for the resident set and re-arms the next
// completion event.
func (d *Device) reschedule() {
	if d.completion != nil {
		d.eng.Cancel(d.completion)
		d.completion = nil
	}
	if len(d.running) == 0 {
		return
	}
	d.computeRates()
	eta := math.Inf(1)
	for k := range d.running {
		t := k.remaining / k.rate
		if t < eta {
			eta = t
		}
	}
	if eta < 0 {
		eta = 0
	}
	d.completion = d.eng.Schedule(eta, d.onCompletion)
}

// onCompletion retires every kernel whose work is exhausted, then recomputes
// rates for the survivors. Completion callbacks run after the device state
// is consistent so they may immediately launch new kernels.
func (d *Device) onCompletion() {
	d.completion = nil
	d.advance()
	var finished []*kernel
	for k := range d.running {
		if k.remaining <= completionEps {
			finished = append(finished, k)
		}
	}
	for _, k := range finished {
		delete(d.running, k)
	}
	d.reschedule()
	// Callbacks run in launch order so simultaneous completions resolve
	// deterministically regardless of map iteration order.
	sort.Slice(finished, func(i, j int) bool { return finished[i].seq < finished[j].seq })
	if d.tracer != nil {
		now := d.eng.Now()
		for _, k := range finished {
			d.tracer(KernelEvent{
				Name:    k.spec.Name,
				Start:   k.start,
				Finish:  now,
				SMFrac:  k.spec.SMFrac,
				MemFrac: k.spec.MemFrac,
			})
		}
	}
	for _, k := range finished {
		if k.done != nil {
			k.done()
		}
	}
}

// computeRates assigns each resident kernel its progress rate using max-min
// fair sharing of SM capacity and of memory bandwidth:
//
//	rate_k = min(smAlloc_k/SMFrac_k, memAlloc_k/MemFrac_k)
//
// A kernel whose demand is below the fair share receives its full demand
// (low-occupancy kernels overlap for free); oversubscribed kernels split the
// residual capacity equally.
func (d *Device) computeRates() {
	n := len(d.running)
	kernels := make([]*kernel, 0, n)
	for k := range d.running {
		kernels = append(kernels, k)
	}
	smDemand := make([]float64, n)
	memDemand := make([]float64, n)
	for i, k := range kernels {
		smDemand[i] = k.spec.SMFrac
		memDemand[i] = k.spec.MemFrac
	}
	smAlloc := maxMinShares(smDemand, d.smCap)
	memAlloc := maxMinShares(memDemand, d.memCap*d.memDegrade)
	for i, k := range kernels {
		r := smAlloc[i] / k.spec.SMFrac
		if k.spec.MemFrac > 0 {
			if mr := memAlloc[i] / k.spec.MemFrac; mr < r {
				r = mr
			}
		}
		if r <= 0 {
			// Cannot happen: capacity > 0 and demands > 0 imply a positive
			// share, but guard against pathological float underflow.
			r = 1e-12
		}
		if r > 1 {
			r = 1
		}
		// An SM throttle is a clock cut: every resident kernel's progress
		// scales by the degradation factor, on top of contention.
		k.rate = r * d.smDegrade
	}
}

// maxMinShares allocates capacity to demands by progressive filling
// (water-filling): demands below the running fair share are fully granted;
// the rest split the remainder equally. Zero demands receive zero.
func maxMinShares(demands []float64, capacity float64) []float64 {
	n := len(demands)
	alloc := make([]float64, n)
	order := make([]int, 0, n)
	var total float64
	for i, dm := range demands {
		if dm > 0 {
			order = append(order, i)
			total += dm
		}
	}
	if total <= capacity {
		copy(alloc, demands)
		return alloc
	}
	sort.Slice(order, func(a, b int) bool {
		if demands[order[a]] != demands[order[b]] {
			return demands[order[a]] < demands[order[b]]
		}
		return order[a] < order[b]
	})
	remaining := capacity
	for pos, idx := range order {
		left := len(order) - pos
		fair := remaining / float64(left)
		if demands[idx] <= fair {
			alloc[idx] = demands[idx]
			remaining -= demands[idx]
		} else {
			alloc[idx] = fair
			remaining -= fair
		}
	}
	return alloc
}

// EnergyModel converts device activity into energy, exploiting the paper's
// §7.6 observation (via Kube-knots) that GPU power is highly linear in
// utilization: P = idle + utilization·dynamic.
type EnergyModel struct {
	IdleWatts    float64 // power drawn while powered on
	DynamicWatts float64 // additional power at 100% SM utilization
}

// A100Energy returns a representative 400 W TDP envelope.
func A100Energy() EnergyModel {
	return EnergyModel{IdleWatts: 80, DynamicWatts: 320}
}

// Energy returns the joules consumed by the device from time zero to now
// under the model (virtual milliseconds × watts).
func (d *Device) Energy(m EnergyModel) float64 {
	d.advance()
	elapsedS := d.eng.Now() / 1000
	smS := d.smTime / 1000
	return m.IdleWatts*elapsedS + m.DynamicWatts*smS
}

// V100Profile returns the profile used by the cluster experiment: the
// paper's §7.6 testbed nodes carry V100s, roughly half an A100's compute
// and bandwidth with fewer SMs.
func V100Profile() Profile {
	return Profile{
		Name:           "V100",
		NumSMs:         80,
		FLOPsPerMS:     8.0e10,
		BytesPerMS:     8.0e8,
		LaunchGap:      0.005,
		BlocksPerSM:    2,
		FullWaves:      4,
		TransferPerMB:  0.0625, // PCIe 3.0
		ModelSwapPerMB: 0.0833, // 12 GB/s weight activation path
	}
}
