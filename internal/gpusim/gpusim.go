// Package gpusim models a GPU as a deterministic discrete-event device.
//
// The Abacus paper's central premise (§5.2) is that the latency of a fixed
// set of overlapped DNN operators is deterministic and predictable, while
// freely overlapping kernels from independently arriving queries is not.
// This package provides a device with exactly those properties as the
// substitute for a physical A100 (see DESIGN.md):
//
//   - A kernel is (Work, SMFrac, MemFrac): milliseconds of solo execution,
//     the fraction of the device's SMs it can occupy, and the fraction of
//     DRAM bandwidth it demands at full rate.
//   - Concurrently resident kernels share SMs and memory bandwidth by
//     max-min fair allocation, so low-occupancy kernels overlap almost for
//     free while saturating kernels time-share — the contention regime the
//     paper reports for ResNet/Inception versus VGG.
//   - Progress rates are piecewise constant between events; remaining work
//     integrates exactly, so latency is a deterministic function of the
//     overlap set.
//   - Optional seeded lognormal noise perturbs each launch to reproduce the
//     small run-to-run jitter measured in §5.2.
//
// The hot path is allocation-free in steady state: kernels, chain cursors,
// and stall records are pooled per device, the resident set is an ordered
// slice (launch-sequence order, which also pins the float accumulation
// order of the utilization integrals), and the rate computation runs on
// reusable scratch buffers. Pool state is invisible to the virtual clock.
//
// MIG instances (§7.5) are devices with fractional SM/bandwidth capacity.
package gpusim

import (
	"fmt"
	"math"
	"math/rand"
	"slices"

	"abacus/internal/sim"
)

// KernelSpec describes one GPU kernel launch.
type KernelSpec struct {
	Name    string  // diagnostic label, e.g. "conv3_4/conv"
	Work    float64 // solo execution time at full allocation, ms (> 0)
	SMFrac  float64 // fraction of device SMs occupied when running alone, (0, 1]
	MemFrac float64 // fraction of device DRAM bandwidth demanded at full rate, [0, 1]
}

// Validate reports whether the spec's parameters are in range.
func (s KernelSpec) Validate() error {
	switch {
	case !(s.Work > 0) || math.IsInf(s.Work, 0):
		return fmt.Errorf("gpusim: kernel %q: Work %v must be positive and finite", s.Name, s.Work)
	case !(s.SMFrac > 0) || s.SMFrac > 1:
		return fmt.Errorf("gpusim: kernel %q: SMFrac %v must be in (0,1]", s.Name, s.SMFrac)
	case s.MemFrac < 0 || s.MemFrac > 1 || math.IsNaN(s.MemFrac):
		return fmt.Errorf("gpusim: kernel %q: MemFrac %v must be in [0,1]", s.Name, s.MemFrac)
	}
	return nil
}

// Profile holds the hardware constants of a device model. The defaults in
// A100Profile are calibrated so the model zoo's solo latencies land in the
// paper's regime (tens of milliseconds at batch 32).
type Profile struct {
	Name           string
	NumSMs         int     // streaming multiprocessors (A100: 128 in the paper)
	FLOPsPerMS     float64 // sustained FLOPs per millisecond at full device
	BytesPerMS     float64 // sustained DRAM bytes per millisecond at full device
	LaunchGap      float64 // host-side gap between dependent kernel launches, ms
	BlocksPerSM    int     // resident thread blocks per SM used for occupancy
	FullWaves      int     // block waves needed to reach full throughput (tail effect)
	TransferPerMB  float64 // PCIe/NVLink transfer time per MB of query input, ms
	ModelSwapPerMB float64 // time to activate (swap in) 1 MB of model weights, ms
}

// A100Profile returns the default device profile used across the
// reproduction. Throughput constants are "sustained" rather than peak; the
// per-operator efficiency factors live in the DNN cost model.
func A100Profile() Profile {
	return Profile{
		Name:           "A100",
		NumSMs:         128,
		FLOPsPerMS:     1.6e11, // effective tensor-core roof
		BytesPerMS:     1.9e9,  // HBM2e with L2 reuse folded in
		LaunchGap:      0.004,  // 4 µs per dependent launch
		BlocksPerSM:    2,
		FullWaves:      4,      // small grids are latency-bound until ~4 waves
		TransferPerMB:  0.045,  // ~22 GB/s effective PCIe 4.0
		ModelSwapPerMB: 0.0625, // 16 GB/s weight activation path
	}
}

// kernel is a resident kernel's bookkeeping. Kernel objects are pooled per
// device; the done callback is stored as a (func(any), arg) pair so kernel
// completion never requires a closure allocation.
type kernel struct {
	spec      KernelSpec
	seq       int64    // launch order, for deterministic callback ordering
	start     sim.Time // launch instant, for tracing
	remaining float64  // work left, ms at full rate
	rate      float64  // current progress rate in (0, 1]
	doneFn    func(any)
	doneArg   any
}

// chain is a pooled cursor over a dependent kernel chain (RunChain): one
// object per in-flight chain instead of one closure per step.
type chain struct {
	dev     *Device
	specs   []KernelSpec
	i       int
	doneFn  func(any)
	doneArg any
}

// stalledLaunch carries a deferred launch through an injected launch stall
// without allocating a closure.
type stalledLaunch struct {
	dev  *Device
	spec KernelSpec
	fn   func(any)
	arg  any
}

// Device is a (possibly partitioned) GPU executing kernels under contention.
// All methods must be called from the simulation goroutine; Device is not
// safe for concurrent use, matching the single-threaded engine.
type Device struct {
	eng     *sim.Engine
	profile Profile
	smCap   float64 // capacity in units of "fraction of a full device"
	memCap  float64

	// running is the resident set in ascending launch-sequence order. The
	// fixed order makes the float accumulation in advance and computeRates
	// deterministic (a map here would sum in random iteration order, making
	// SMTime/Energy differ in the low bits across runs).
	running    []*kernel
	lastUpdate sim.Time
	completion sim.Handle

	// Pools and scratch: recycled across launches so the steady-state
	// launch/complete cycle allocates nothing.
	freeKernels []*kernel
	freeChains  []*chain
	freeStalls  []*stalledLaunch
	finished    []*kernel // onCompletion scratch
	smDemand    []float64 // computeRates scratch
	memDemand   []float64
	smAlloc     []float64
	memAlloc    []float64
	shareOrder  []int // maxMinSharesInto scratch

	// Fault-injection state (internal/chaos): degradation scales the
	// effective capacity seen by computeRates without touching the nominal
	// smCap/memCap that Partition and the predictors reason about —
	// throttling is precisely the regime where the duration model and the
	// device disagree.
	smDegrade   float64 // effective-SM scale, (0, 1]; 1 = healthy
	memDegrade  float64 // effective-bandwidth scale, (0, 1]; 1 = healthy
	launchStall float64 // extra delay before each Launch takes effect, ms

	noise      *rand.Rand
	noiseSigma float64
	tracer     Tracer

	busyTime sim.Time // integral of time with >= 1 resident kernel
	smTime   float64  // integral of Σ rate·SMFrac dt (SM-milliseconds used)
	launched int64
}

// New returns a full-capacity device attached to the engine.
func New(eng *sim.Engine, profile Profile) *Device {
	return newDevice(eng, profile, 1, 1)
}

func newDevice(eng *sim.Engine, profile Profile, smCap, memCap float64) *Device {
	if eng == nil {
		panic("gpusim: nil engine")
	}
	if smCap <= 0 || smCap > 1 || memCap <= 0 || memCap > 1 {
		panic(fmt.Sprintf("gpusim: capacity (%v, %v) out of (0,1]", smCap, memCap))
	}
	return &Device{
		eng:        eng,
		profile:    profile,
		smCap:      smCap,
		memCap:     memCap,
		smDegrade:  1,
		memDegrade: 1,
		lastUpdate: eng.Now(),
	}
}

// Partition returns a MIG-style instance with the given fraction of the
// parent's SM and memory-bandwidth capacity. Instances are fully isolated
// from each other and from the parent; per MIG semantics the parent must not
// be used for kernel execution while its partitions are.
func (d *Device) Partition(smFrac, memFrac float64) *Device {
	return newDevice(d.eng, d.profile, d.smCap*smFrac, d.memCap*memFrac)
}

// Engine returns the simulation engine driving this device.
func (d *Device) Engine() *sim.Engine { return d.eng }

// Profile returns the device's hardware profile.
func (d *Device) Profile() Profile { return d.profile }

// SMCapacity returns the device's SM capacity as a fraction of a full GPU.
func (d *Device) SMCapacity() float64 { return d.smCap }

// MemCapacity returns the device's bandwidth capacity as a fraction of a
// full GPU.
func (d *Device) MemCapacity() float64 { return d.memCap }

// Prewarm stocks the device's kernel and chain pools so even the first
// launches allocate nothing. Pool state never affects the virtual clock;
// tests use Prewarm to pin that transparency.
func (d *Device) Prewarm(kernels, chains int) {
	for i := 0; i < kernels; i++ {
		d.freeKernels = append(d.freeKernels, &kernel{})
	}
	for i := 0; i < chains; i++ {
		d.freeChains = append(d.freeChains, &chain{})
	}
}

// PooledKernels reports the number of recycled kernel objects waiting in
// the device pool (diagnostics for pool-behavior tests).
func (d *Device) PooledKernels() int { return len(d.freeKernels) }

// EnableNoise turns on seeded lognormal work perturbation: each launch's
// work is multiplied by exp(sigma·N(0,1)). sigma = 0 disables noise.
func (d *Device) EnableNoise(sigma float64, seed int64) {
	if sigma < 0 {
		panic("gpusim: negative noise sigma")
	}
	if sigma == 0 {
		d.noise = nil
		d.noiseSigma = 0
		return
	}
	d.noise = rand.New(rand.NewSource(seed))
	d.noiseSigma = sigma
}

// SetDegradation injects a transient substrate fault: smScale is a clock
// cut that multiplies every resident kernel's progress rate (thermal/power
// throttling slows all work proportionally), while memScale shrinks the
// device's memory-bandwidth capacity (hurting only bandwidth-constrained
// kernels, like a misbehaving HBM stack or ECC scrubbing storm). Both are
// in (0, 1]; (1, 1) restores the healthy device. Resident kernels are
// re-rated immediately: progress already made is preserved exactly, and
// the change is deterministic on the virtual clock. Nominal capacity
// (SMCapacity, MemCapacity, Partition) is unaffected, so latency
// predictors keep seeing the healthy device — which is exactly what makes
// throttling a prediction fault worth injecting.
func (d *Device) SetDegradation(smScale, memScale float64) {
	if !(smScale > 0) || smScale > 1 || !(memScale > 0) || memScale > 1 {
		panic(fmt.Sprintf("gpusim: degradation (%v, %v) out of (0,1]", smScale, memScale))
	}
	d.advance()
	d.smDegrade = smScale
	d.memDegrade = memScale
	d.reschedule()
}

// Degradation returns the current (SM, bandwidth) degradation factors;
// (1, 1) means the device is healthy.
func (d *Device) Degradation() (smScale, memScale float64) {
	return d.smDegrade, d.memDegrade
}

// SetLaunchStall injects a fixed host-side stall before every subsequent
// Launch takes effect, modeling driver/runtime hiccups in the kernel-launch
// path. Zero restores immediate launches; negative stalls panic.
func (d *Device) SetLaunchStall(ms float64) {
	if ms < 0 || math.IsNaN(ms) {
		panic(fmt.Sprintf("gpusim: launch stall %v must be >= 0", ms))
	}
	d.launchStall = ms
}

// LaunchStall returns the current injected per-launch stall in ms.
func (d *Device) LaunchStall() float64 { return d.launchStall }

// Resident reports the number of kernels currently executing.
func (d *Device) Resident() int { return len(d.running) }

// Launched reports the total number of kernels launched so far.
func (d *Device) Launched() int64 { return d.launched }

// BusyTime returns the total virtual time during which at least one kernel
// was resident.
func (d *Device) BusyTime() sim.Time { d.advance(); return d.busyTime }

// SMTime returns the integral of SM utilization over time, in
// "full-device milliseconds" (e.g. 2 kernels at 0.5 SMFrac for 1 ms = 1.0).
func (d *Device) SMTime() float64 { d.advance(); return d.smTime }

// Utilization returns mean SM utilization over [0, now], in [0, 1].
func (d *Device) Utilization() float64 {
	d.advance()
	if d.eng.Now() == 0 {
		return 0
	}
	return d.smTime / d.eng.Now()
}

// --- pools ---

func (d *Device) getKernel() *kernel {
	if n := len(d.freeKernels); n > 0 {
		k := d.freeKernels[n-1]
		d.freeKernels[n-1] = nil
		d.freeKernels = d.freeKernels[:n-1]
		return k
	}
	return &kernel{}
}

func (d *Device) putKernel(k *kernel) {
	*k = kernel{}
	d.freeKernels = append(d.freeKernels, k)
}

func (d *Device) getChain() *chain {
	if n := len(d.freeChains); n > 0 {
		c := d.freeChains[n-1]
		d.freeChains[n-1] = nil
		d.freeChains = d.freeChains[:n-1]
		c.dev = d
		return c
	}
	return &chain{dev: d}
}

func (d *Device) putChain(c *chain) {
	*c = chain{}
	d.freeChains = append(d.freeChains, c)
}

func (d *Device) getStall() *stalledLaunch {
	if n := len(d.freeStalls); n > 0 {
		s := d.freeStalls[n-1]
		d.freeStalls[n-1] = nil
		d.freeStalls = d.freeStalls[:n-1]
		s.dev = d
		return s
	}
	return &stalledLaunch{dev: d}
}

func (d *Device) putStall(s *stalledLaunch) {
	*s = stalledLaunch{}
	d.freeStalls = append(d.freeStalls, s)
}

// callFunc0 adapts a plain func() callback to a (fn, arg) pair; func values
// are pointer-shaped, so the boxing does not allocate.
func callFunc0(a any) { a.(func())() }

// Launch begins executing spec. done, if non-nil, runs when the kernel
// completes. Launch panics on an invalid spec: specs are produced by the
// cost model, so an invalid one is a programming error.
func (d *Device) Launch(spec KernelSpec, done func()) {
	if done == nil {
		d.launchArg(spec, nil, nil)
		return
	}
	d.launchArg(spec, callFunc0, done)
}

// launchArg is the allocation-free launch primitive: fn(arg) runs when the
// kernel completes.
func (d *Device) launchArg(spec KernelSpec, fn func(any), arg any) {
	if err := spec.Validate(); err != nil {
		panic(err)
	}
	if d.launchStall > 0 {
		// The stall defers the launch on the virtual clock; the stall in
		// force at Launch time is the one paid, even if cleared meanwhile.
		s := d.getStall()
		s.spec = spec
		s.fn = fn
		s.arg = arg
		d.eng.ScheduleArg(d.launchStall, fireStalledLaunch, s)
		return
	}
	d.launchNow(spec, fn, arg)
}

func fireStalledLaunch(a any) {
	s := a.(*stalledLaunch)
	d, spec, fn, arg := s.dev, s.spec, s.fn, s.arg
	d.putStall(s)
	d.launchNow(spec, fn, arg)
}

func (d *Device) launchNow(spec KernelSpec, fn func(any), arg any) {
	d.advance()
	w := spec.Work
	if d.noise != nil {
		w *= math.Exp(d.noiseSigma * d.noise.NormFloat64())
	}
	k := d.getKernel()
	k.spec = spec
	k.seq = d.launched
	k.start = d.eng.Now()
	k.remaining = w
	k.doneFn = fn
	k.doneArg = arg
	d.running = append(d.running, k) // ascending seq: launched is monotonic
	d.launched++
	d.reschedule()
}

// RunChain executes specs as a dependent chain: each kernel launches
// LaunchGap after its predecessor completes (the first after an initial
// gap). done, if non-nil, runs when the last kernel finishes. An empty chain
// completes immediately. RunChain returns without blocking; execution
// proceeds on the virtual clock.
func (d *Device) RunChain(specs []KernelSpec, done func()) {
	if done == nil {
		d.RunChainArg(specs, nil, nil)
		return
	}
	d.RunChainArg(specs, callFunc0, done)
}

// RunChainArg is the allocation-free variant of RunChain: the chain is
// driven by a pooled cursor, and fn(arg) runs when the last kernel
// finishes. The specs slice must stay unmodified until then.
func (d *Device) RunChainArg(specs []KernelSpec, fn func(any), arg any) {
	if len(specs) == 0 {
		if fn != nil {
			fn(arg)
		}
		return
	}
	c := d.getChain()
	c.specs = specs
	c.i = 0
	c.doneFn = fn
	c.doneArg = arg
	d.eng.ScheduleArg(d.profile.LaunchGap, advanceChainLaunch, c)
}

// advanceChainLaunch fires after a launch gap: it launches the chain's
// current kernel with the cursor itself as the completion callback.
func advanceChainLaunch(a any) {
	c := a.(*chain)
	c.dev.launchArg(c.specs[c.i], advanceChainStep, c)
}

// advanceChainStep fires when a chain kernel completes: it either schedules
// the next launch gap or retires the cursor and runs the chain's callback.
func advanceChainStep(a any) {
	c := a.(*chain)
	c.i++
	if c.i == len(c.specs) {
		d, fn, arg := c.dev, c.doneFn, c.doneArg
		d.putChain(c)
		if fn != nil {
			fn(arg)
		}
		return
	}
	c.dev.eng.ScheduleArg(c.dev.profile.LaunchGap, advanceChainLaunch, c)
}

// advance integrates kernel progress from lastUpdate to now at the current
// (piecewise-constant) rates. The resident slice is in launch order, so the
// float accumulation into smTime is order-deterministic.
func (d *Device) advance() {
	now := d.eng.Now()
	dt := now - d.lastUpdate
	if dt <= 0 {
		d.lastUpdate = now
		return
	}
	if len(d.running) > 0 {
		d.busyTime += dt
		for _, k := range d.running {
			k.remaining -= k.rate * dt
			if k.remaining < 0 {
				k.remaining = 0
			}
			d.smTime += k.rate * k.spec.SMFrac * dt
		}
	}
	d.lastUpdate = now
}

// completionEps absorbs floating-point residue when deciding whether a
// kernel has finished at its completion event.
const completionEps = 1e-9

// fireCompletion dispatches the pooled completion event to its device.
func fireCompletion(a any) { a.(*Device).onCompletion() }

// reschedule recomputes rates for the resident set and re-arms the next
// completion event.
func (d *Device) reschedule() {
	d.eng.Cancel(d.completion)
	d.completion = sim.Handle{}
	if len(d.running) == 0 {
		return
	}
	d.computeRates()
	eta := math.Inf(1)
	for _, k := range d.running {
		t := k.remaining / k.rate
		if t < eta {
			eta = t
		}
	}
	if eta < 0 {
		eta = 0
	}
	d.completion = d.eng.ScheduleArg(eta, fireCompletion, d)
}

// onCompletion retires every kernel whose work is exhausted, then recomputes
// rates for the survivors. Completion callbacks run after the device state
// is consistent so they may immediately launch new kernels; retired kernel
// objects return to the pool one by one as their callbacks run, so a
// callback that launches immediately reuses a just-retired kernel.
func (d *Device) onCompletion() {
	d.completion = sim.Handle{}
	d.advance()
	resident := d.running
	keep := resident[:0]
	finished := d.finished[:0]
	for _, k := range resident {
		if k.remaining <= completionEps {
			finished = append(finished, k)
		} else {
			keep = append(keep, k)
		}
	}
	for i := len(keep); i < len(resident); i++ {
		resident[i] = nil
	}
	d.running = keep
	d.finished = finished
	d.reschedule()
	// Callbacks run in launch order so simultaneous completions resolve
	// deterministically. The resident slice is kept in launch order, so
	// finished inherits it; the sort is a structural guard (O(n) on sorted
	// input, allocation-free).
	slices.SortFunc(finished, func(a, b *kernel) int {
		switch {
		case a.seq < b.seq:
			return -1
		case a.seq > b.seq:
			return 1
		default:
			return 0
		}
	})
	if d.tracer != nil {
		now := d.eng.Now()
		for _, k := range finished {
			d.tracer(KernelEvent{
				Name:    k.spec.Name,
				Start:   k.start,
				Finish:  now,
				SMFrac:  k.spec.SMFrac,
				MemFrac: k.spec.MemFrac,
			})
		}
	}
	for i, k := range finished {
		fn, arg := k.doneFn, k.doneArg
		finished[i] = nil
		d.putKernel(k)
		if fn != nil {
			fn(arg)
		}
	}
	d.finished = finished[:0]
}

// computeRates assigns each resident kernel its progress rate using max-min
// fair sharing of SM capacity and of memory bandwidth:
//
//	rate_k = min(smAlloc_k/SMFrac_k, memAlloc_k/MemFrac_k)
//
// A kernel whose demand is below the fair share receives its full demand
// (low-occupancy kernels overlap for free); oversubscribed kernels split the
// residual capacity equally. All intermediate state lives on the device's
// reusable scratch buffers.
func (d *Device) computeRates() {
	n := len(d.running)
	d.smDemand = resizeFloats(d.smDemand, n)
	d.memDemand = resizeFloats(d.memDemand, n)
	d.smAlloc = resizeFloats(d.smAlloc, n)
	d.memAlloc = resizeFloats(d.memAlloc, n)
	for i, k := range d.running {
		d.smDemand[i] = k.spec.SMFrac
		d.memDemand[i] = k.spec.MemFrac
	}
	d.shareOrder = maxMinSharesInto(d.smAlloc, d.smDemand, d.smCap, d.shareOrder)
	d.shareOrder = maxMinSharesInto(d.memAlloc, d.memDemand, d.memCap*d.memDegrade, d.shareOrder)
	for i, k := range d.running {
		r := d.smAlloc[i] / k.spec.SMFrac
		if k.spec.MemFrac > 0 {
			if mr := d.memAlloc[i] / k.spec.MemFrac; mr < r {
				r = mr
			}
		}
		if r <= 0 {
			// Cannot happen: capacity > 0 and demands > 0 imply a positive
			// share, but guard against pathological float underflow.
			r = 1e-12
		}
		if r > 1 {
			r = 1
		}
		// An SM throttle is a clock cut: every resident kernel's progress
		// scales by the degradation factor, on top of contention.
		k.rate = r * d.smDegrade
	}
}

// resizeFloats returns s resized to n, reusing the backing array when it is
// large enough.
func resizeFloats(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	return s[:n]
}

// maxMinShares allocates capacity to demands by progressive filling
// (water-filling): demands below the running fair share are fully granted;
// the rest split the remainder equally. Zero demands receive zero. It is
// the allocating convenience over maxMinSharesInto, used by tests.
func maxMinShares(demands []float64, capacity float64) []float64 {
	alloc := make([]float64, len(demands))
	maxMinSharesInto(alloc, demands, capacity, nil)
	return alloc
}

// maxMinSharesInto computes max-min shares into alloc (len(alloc) ==
// len(demands)) using order as index scratch, and returns the (possibly
// regrown) scratch for reuse. No allocation happens when the scratch has
// capacity. The fill order is demand-ascending with index tiebreak, sorted
// by an in-place insertion sort — deterministic and allocation-free (the
// resident sets here are small).
func maxMinSharesInto(alloc, demands []float64, capacity float64, order []int) []int {
	order = order[:0]
	var total float64
	for i, dm := range demands {
		alloc[i] = 0
		if dm > 0 {
			order = append(order, i)
			total += dm
		}
	}
	if total <= capacity {
		copy(alloc, demands)
		return order
	}
	for i := 1; i < len(order); i++ {
		for j := i; j > 0; j-- {
			a, b := order[j-1], order[j]
			if demands[a] < demands[b] || (demands[a] == demands[b] && a < b) {
				break
			}
			order[j-1], order[j] = order[j], order[j-1]
		}
	}
	remaining := capacity
	for pos, idx := range order {
		left := len(order) - pos
		fair := remaining / float64(left)
		if demands[idx] <= fair {
			alloc[idx] = demands[idx]
			remaining -= demands[idx]
		} else {
			alloc[idx] = fair
			remaining -= fair
		}
	}
	return order
}

// EnergyModel converts device activity into energy, exploiting the paper's
// §7.6 observation (via Kube-knots) that GPU power is highly linear in
// utilization: P = idle + utilization·dynamic.
type EnergyModel struct {
	IdleWatts    float64 // power drawn while powered on
	DynamicWatts float64 // additional power at 100% SM utilization
}

// A100Energy returns a representative 400 W TDP envelope.
func A100Energy() EnergyModel {
	return EnergyModel{IdleWatts: 80, DynamicWatts: 320}
}

// Energy returns the joules consumed by the device from time zero to now
// under the model (virtual milliseconds × watts).
func (d *Device) Energy(m EnergyModel) float64 {
	d.advance()
	elapsedS := d.eng.Now() / 1000
	smS := d.smTime / 1000
	return m.IdleWatts*elapsedS + m.DynamicWatts*smS
}

// V100Profile returns the profile used by the cluster experiment: the
// paper's §7.6 testbed nodes carry V100s, roughly half an A100's compute
// and bandwidth with fewer SMs.
func V100Profile() Profile {
	return Profile{
		Name:           "V100",
		NumSMs:         80,
		FLOPsPerMS:     8.0e10,
		BytesPerMS:     8.0e8,
		LaunchGap:      0.005,
		BlocksPerSM:    2,
		FullWaves:      4,
		TransferPerMB:  0.0625, // PCIe 3.0
		ModelSwapPerMB: 0.0833, // 12 GB/s weight activation path
	}
}
