package gpusim

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"abacus/internal/sim"
)

func testProfile() Profile {
	p := A100Profile()
	p.LaunchGap = 0.01
	return p
}

func almostEqual(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestSoloKernelRunsAtFullRate(t *testing.T) {
	eng := sim.NewEngine()
	d := New(eng, testProfile())
	var finish sim.Time
	d.Launch(KernelSpec{Name: "k", Work: 5, SMFrac: 0.5, MemFrac: 0.5}, func() { finish = eng.Now() })
	eng.Run()
	if !almostEqual(finish, 5, 1e-9) {
		t.Errorf("solo kernel finished at %v, want 5 (Work is the solo duration regardless of SMFrac)", finish)
	}
}

func TestTwoSmallKernelsOverlapFreely(t *testing.T) {
	eng := sim.NewEngine()
	d := New(eng, testProfile())
	var f1, f2 sim.Time
	d.Launch(KernelSpec{Name: "a", Work: 4, SMFrac: 0.3, MemFrac: 0.2}, func() { f1 = eng.Now() })
	d.Launch(KernelSpec{Name: "b", Work: 4, SMFrac: 0.3, MemFrac: 0.2}, func() { f2 = eng.Now() })
	eng.Run()
	if !almostEqual(f1, 4, 1e-9) || !almostEqual(f2, 4, 1e-9) {
		t.Errorf("under-subscribed kernels finished at %v, %v; want both at 4", f1, f2)
	}
}

func TestTwoSaturatingKernelsTimeShare(t *testing.T) {
	eng := sim.NewEngine()
	d := New(eng, testProfile())
	var f1, f2 sim.Time
	d.Launch(KernelSpec{Name: "a", Work: 4, SMFrac: 1, MemFrac: 0}, func() { f1 = eng.Now() })
	d.Launch(KernelSpec{Name: "b", Work: 4, SMFrac: 1, MemFrac: 0}, func() { f2 = eng.Now() })
	eng.Run()
	if !almostEqual(f1, 8, 1e-9) || !almostEqual(f2, 8, 1e-9) {
		t.Errorf("saturating kernels finished at %v, %v; want both at 8 (fair halving)", f1, f2)
	}
}

func TestAsymmetricContention(t *testing.T) {
	// Small kernel (0.2) + big kernel (1.0): max-min gives small its full
	// demand; big gets 0.8 → runs at 0.8 rate.
	eng := sim.NewEngine()
	d := New(eng, testProfile())
	var fSmall, fBig sim.Time
	d.Launch(KernelSpec{Name: "small", Work: 2, SMFrac: 0.2}, func() { fSmall = eng.Now() })
	d.Launch(KernelSpec{Name: "big", Work: 4, SMFrac: 1.0}, func() { fBig = eng.Now() })
	eng.Run()
	if !almostEqual(fSmall, 2, 1e-9) {
		t.Errorf("small kernel finished at %v, want 2 (unaffected)", fSmall)
	}
	// Big: 2 ms at rate 0.8 (progress 1.6), then alone at rate 1 for 2.4 ms.
	if !almostEqual(fBig, 4.4, 1e-9) {
		t.Errorf("big kernel finished at %v, want 4.4", fBig)
	}
}

func TestMemoryBandwidthContention(t *testing.T) {
	// Two kernels that fit on SMs but jointly oversubscribe bandwidth.
	eng := sim.NewEngine()
	d := New(eng, testProfile())
	var f1 sim.Time
	d.Launch(KernelSpec{Name: "a", Work: 3, SMFrac: 0.3, MemFrac: 0.8}, func() { f1 = eng.Now() })
	d.Launch(KernelSpec{Name: "b", Work: 3, SMFrac: 0.3, MemFrac: 0.8}, nil)
	eng.Run()
	// Each gets 0.5 bandwidth → rate 0.5/0.8 = 0.625 → finish at 4.8.
	if !almostEqual(f1, 4.8, 1e-9) {
		t.Errorf("bandwidth-contended kernel finished at %v, want 4.8", f1)
	}
}

func TestStaggeredLaunchIntegratesProgress(t *testing.T) {
	eng := sim.NewEngine()
	d := New(eng, testProfile())
	var fa, fb sim.Time
	d.Launch(KernelSpec{Name: "a", Work: 4, SMFrac: 1}, func() { fa = eng.Now() })
	eng.Schedule(2, func() {
		d.Launch(KernelSpec{Name: "b", Work: 4, SMFrac: 1}, func() { fb = eng.Now() })
	})
	eng.Run()
	// a: 2 ms solo (progress 2), then shares: 2 ms remaining at 0.5 → +4 → 6.
	if !almostEqual(fa, 6, 1e-9) {
		t.Errorf("a finished at %v, want 6", fa)
	}
	// b: progress 2 by t=6 (rate .5 over [2,6]), then solo for its last 2 → 8.
	if !almostEqual(fb, 8, 1e-9) {
		t.Errorf("b finished at %v, want 8", fb)
	}
}

func TestRunChainSequential(t *testing.T) {
	p := testProfile()
	eng := sim.NewEngine()
	d := New(eng, p)
	var finish sim.Time
	specs := []KernelSpec{
		{Name: "k0", Work: 1, SMFrac: 0.5},
		{Name: "k1", Work: 2, SMFrac: 0.5},
		{Name: "k2", Work: 3, SMFrac: 0.5},
	}
	d.RunChain(specs, func() { finish = eng.Now() })
	eng.Run()
	want := 1 + 2 + 3 + 3*p.LaunchGap
	if !almostEqual(finish, want, 1e-9) {
		t.Errorf("chain finished at %v, want %v", finish, want)
	}
}

func TestRunChainEmptyCompletesImmediately(t *testing.T) {
	eng := sim.NewEngine()
	d := New(eng, testProfile())
	done := false
	d.RunChain(nil, func() { done = true })
	if !done {
		t.Error("empty chain should complete synchronously")
	}
}

func TestRunChainNilDone(t *testing.T) {
	eng := sim.NewEngine()
	d := New(eng, testProfile())
	d.RunChain([]KernelSpec{{Name: "k", Work: 1, SMFrac: 1}}, nil)
	eng.Run() // must not panic
}

func TestLaunchGapLeavesDeviceIdleForCoRunner(t *testing.T) {
	// A chain of tiny kernels has launch-gap bubbles; a concurrent chain
	// fills them, so the pair's makespan is far below the sequential sum.
	p := testProfile()
	p.LaunchGap = 0.5 // exaggerate
	mk := func(n int) []KernelSpec {
		specs := make([]KernelSpec, n)
		for i := range specs {
			specs[i] = KernelSpec{Name: "t", Work: 0.5, SMFrac: 1}
		}
		return specs
	}
	solo := func() float64 {
		eng := sim.NewEngine()
		d := New(eng, p)
		var f sim.Time
		d.RunChain(mk(10), func() { f = eng.Now() })
		eng.Run()
		return f
	}()
	pairMakespan := func() float64 {
		eng := sim.NewEngine()
		d := New(eng, p)
		var last sim.Time
		n := 2
		done := func() {
			n--
			if n == 0 {
				last = eng.Now()
			}
		}
		d.RunChain(mk(10), done)
		d.RunChain(mk(10), done)
		eng.Run()
		return last
	}()
	if !almostEqual(solo, 10, 1e-9) { // 10 × (0.5 work + 0.5 gap)
		t.Fatalf("solo chain = %v, want 10", solo)
	}
	if pairMakespan >= 2*solo-1 {
		t.Errorf("pair makespan %v shows no gap-filling benefit vs sequential %v", pairMakespan, 2*solo)
	}
}

func TestInvalidSpecPanics(t *testing.T) {
	bad := []KernelSpec{
		{Name: "zero-work", Work: 0, SMFrac: 0.5},
		{Name: "neg-work", Work: -1, SMFrac: 0.5},
		{Name: "nan-work", Work: math.NaN(), SMFrac: 0.5},
		{Name: "inf-work", Work: math.Inf(1), SMFrac: 0.5},
		{Name: "zero-sm", Work: 1, SMFrac: 0},
		{Name: "big-sm", Work: 1, SMFrac: 1.5},
		{Name: "neg-mem", Work: 1, SMFrac: 0.5, MemFrac: -0.1},
		{Name: "big-mem", Work: 1, SMFrac: 0.5, MemFrac: 1.5},
	}
	for _, spec := range bad {
		t.Run(spec.Name, func(t *testing.T) {
			if err := spec.Validate(); err == nil {
				t.Error("Validate() = nil, want error")
			}
			eng := sim.NewEngine()
			d := New(eng, testProfile())
			defer func() {
				if recover() == nil {
					t.Error("Launch did not panic")
				}
			}()
			d.Launch(spec, nil)
		})
	}
}

func TestPartitionCapacities(t *testing.T) {
	eng := sim.NewEngine()
	d := New(eng, testProfile())
	half := d.Partition(0.5, 0.5)
	if half.SMCapacity() != 0.5 || half.MemCapacity() != 0.5 {
		t.Errorf("partition capacity = (%v, %v), want (0.5, 0.5)", half.SMCapacity(), half.MemCapacity())
	}
	quarter := half.Partition(0.5, 0.5)
	if quarter.SMCapacity() != 0.25 {
		t.Errorf("nested partition SM capacity = %v, want 0.25", quarter.SMCapacity())
	}
}

func TestPartitionSlowsSaturatingKernel(t *testing.T) {
	eng := sim.NewEngine()
	d := New(eng, testProfile()).Partition(0.5, 0.5)
	var f sim.Time
	d.Launch(KernelSpec{Name: "k", Work: 2, SMFrac: 1, MemFrac: 0}, func() { f = eng.Now() })
	eng.Run()
	if !almostEqual(f, 4, 1e-9) {
		t.Errorf("saturating kernel on half device finished at %v, want 4", f)
	}
}

func TestPartitionDoesNotSlowTinyKernel(t *testing.T) {
	eng := sim.NewEngine()
	d := New(eng, testProfile()).Partition(0.5, 0.5)
	var f sim.Time
	d.Launch(KernelSpec{Name: "k", Work: 2, SMFrac: 0.25, MemFrac: 0.1}, func() { f = eng.Now() })
	eng.Run()
	if !almostEqual(f, 2, 1e-9) {
		t.Errorf("small kernel on half device finished at %v, want 2", f)
	}
}

func TestPartitionsAreIsolated(t *testing.T) {
	eng := sim.NewEngine()
	parent := New(eng, testProfile())
	a := parent.Partition(0.5, 0.5)
	b := parent.Partition(0.5, 0.5)
	var fa, fb sim.Time
	a.Launch(KernelSpec{Name: "a", Work: 2, SMFrac: 1}, func() { fa = eng.Now() })
	b.Launch(KernelSpec{Name: "b", Work: 2, SMFrac: 1}, func() { fb = eng.Now() })
	eng.Run()
	// Each saturates its own half (rate 0.5) with no cross-interference.
	if !almostEqual(fa, 4, 1e-9) || !almostEqual(fb, 4, 1e-9) {
		t.Errorf("isolated partitions finished at %v, %v; want 4, 4", fa, fb)
	}
}

func TestInvalidPartitionPanics(t *testing.T) {
	eng := sim.NewEngine()
	d := New(eng, testProfile())
	for _, frac := range []float64{0, -0.5, 1.5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Partition(%v) did not panic", frac)
				}
			}()
			d.Partition(frac, 0.5)
		}()
	}
}

func TestNoiseReproducibleAndBounded(t *testing.T) {
	run := func(seed int64) float64 {
		eng := sim.NewEngine()
		d := New(eng, testProfile())
		d.EnableNoise(0.01, seed)
		var f sim.Time
		d.RunChain([]KernelSpec{{Name: "a", Work: 5, SMFrac: 1}, {Name: "b", Work: 5, SMFrac: 1}}, func() { f = eng.Now() })
		eng.Run()
		return f
	}
	if run(7) != run(7) {
		t.Error("same seed produced different latencies")
	}
	if run(7) == run(8) {
		t.Error("different seeds produced identical noise (suspicious)")
	}
	base := 10 + 2*testProfile().LaunchGap
	if got := run(7); math.Abs(got-base)/base > 0.1 {
		t.Errorf("noisy latency %v deviates more than 10%% from base %v", got, base)
	}
}

func TestEnableNoiseZeroDisables(t *testing.T) {
	eng := sim.NewEngine()
	d := New(eng, testProfile())
	d.EnableNoise(0.05, 1)
	d.EnableNoise(0, 0)
	var f sim.Time
	d.Launch(KernelSpec{Name: "k", Work: 3, SMFrac: 1}, func() { f = eng.Now() })
	eng.Run()
	if !almostEqual(f, 3, 1e-12) {
		t.Errorf("noise not disabled: finish %v, want 3", f)
	}
}

func TestNegativeNoisePanics(t *testing.T) {
	eng := sim.NewEngine()
	d := New(eng, testProfile())
	defer func() {
		if recover() == nil {
			t.Error("did not panic")
		}
	}()
	d.EnableNoise(-0.1, 0)
}

func TestAccountingCounters(t *testing.T) {
	eng := sim.NewEngine()
	d := New(eng, testProfile())
	d.Launch(KernelSpec{Name: "a", Work: 2, SMFrac: 0.5}, nil)
	d.Launch(KernelSpec{Name: "b", Work: 2, SMFrac: 0.5}, nil)
	eng.Run()
	if d.Launched() != 2 {
		t.Errorf("Launched = %d, want 2", d.Launched())
	}
	if d.Resident() != 0 {
		t.Errorf("Resident = %d, want 0 after completion", d.Resident())
	}
	if !almostEqual(d.BusyTime(), 2, 1e-9) {
		t.Errorf("BusyTime = %v, want 2", d.BusyTime())
	}
	// Two kernels at SMFrac .5, rate 1, for 2 ms → 2.0 SM-ms.
	if !almostEqual(d.SMTime(), 2, 1e-9) {
		t.Errorf("SMTime = %v, want 2", d.SMTime())
	}
	if !almostEqual(d.Utilization(), 1, 1e-9) {
		t.Errorf("Utilization = %v, want 1", d.Utilization())
	}
}

func TestMaxMinShares(t *testing.T) {
	cases := []struct {
		name     string
		demands  []float64
		capacity float64
		want     []float64
	}{
		{"undersubscribed", []float64{0.2, 0.3}, 1, []float64{0.2, 0.3}},
		{"exact", []float64{0.5, 0.5}, 1, []float64{0.5, 0.5}},
		{"equal-split", []float64{1, 1}, 1, []float64{0.5, 0.5}},
		{"small-protected", []float64{0.2, 1}, 1, []float64{0.2, 0.8}},
		{"three-way", []float64{0.1, 0.5, 1}, 1, []float64{0.1, 0.45, 0.45}},
		{"zero-demand", []float64{0, 1, 1}, 1, []float64{0, 0.5, 0.5}},
		{"empty", nil, 1, nil},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			got := maxMinShares(c.demands, c.capacity)
			if len(got) != len(c.want) {
				t.Fatalf("len = %d, want %d", len(got), len(c.want))
			}
			for i := range c.want {
				if !almostEqual(got[i], c.want[i], 1e-12) {
					t.Errorf("share[%d] = %v, want %v (all: %v)", i, got[i], c.want[i], got)
				}
			}
		})
	}
}

// Property: max-min shares never exceed demand, never exceed capacity in
// total, and are work-conserving when oversubscribed.
func TestMaxMinSharesProperties(t *testing.T) {
	f := func(raw []uint8, capRaw uint8) bool {
		demands := make([]float64, len(raw))
		var total float64
		for i, r := range raw {
			demands[i] = float64(r) / 255
			total += demands[i]
		}
		capacity := float64(capRaw)/255 + 0.01
		alloc := maxMinShares(demands, capacity)
		var sum float64
		for i := range alloc {
			if alloc[i] > demands[i]+1e-12 || alloc[i] < 0 {
				return false
			}
			sum += alloc[i]
		}
		if sum > capacity+1e-9 {
			return false
		}
		if total > capacity && !almostEqual(sum, capacity, 1e-9) {
			return false // oversubscribed must be work-conserving
		}
		if total <= capacity && !almostEqual(sum, total, 1e-9) {
			return false // undersubscribed grants all demands
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: total completed work is conserved — the sum of kernel Works
// equals the integral of progress regardless of overlap pattern, i.e. every
// kernel eventually finishes and the device drains.
func TestWorkConservationProperty(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		eng := sim.NewEngine()
		d := New(eng, testProfile())
		count := int(n%20) + 1
		finished := 0
		for i := 0; i < count; i++ {
			spec := KernelSpec{
				Name:    "k",
				Work:    rng.Float64()*5 + 0.01,
				SMFrac:  rng.Float64()*0.99 + 0.01,
				MemFrac: rng.Float64(),
			}
			delay := rng.Float64() * 3
			eng.Schedule(delay, func() { d.Launch(spec, func() { finished++ }) })
		}
		eng.Run()
		return finished == count && d.Resident() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: adding a co-running kernel never makes another kernel finish
// earlier (interference monotonicity).
func TestInterferenceMonotonicityProperty(t *testing.T) {
	f := func(w1, s1, m1, w2, s2, m2 uint8) bool {
		mk := func(w, s, m uint8) KernelSpec {
			return KernelSpec{
				Name:    "k",
				Work:    float64(w)/32 + 0.1,
				SMFrac:  float64(s)/260 + 0.01,
				MemFrac: float64(m) / 260,
			}
		}
		a, b := mk(w1, s1, m1), mk(w2, s2, m2)
		solo := func() float64 {
			eng := sim.NewEngine()
			d := New(eng, testProfile())
			var f sim.Time
			d.Launch(a, func() { f = eng.Now() })
			eng.Run()
			return f
		}()
		withB := func() float64 {
			eng := sim.NewEngine()
			d := New(eng, testProfile())
			var f sim.Time
			d.Launch(a, func() { f = eng.Now() })
			d.Launch(b, nil)
			eng.Run()
			return f
		}()
		return withB >= solo-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestEnergyAccounting(t *testing.T) {
	eng := sim.NewEngine()
	d := New(eng, testProfile())
	d.Launch(KernelSpec{Name: "k", Work: 1000, SMFrac: 0.5}, nil) // 1 simulated second
	eng.Run()
	em := EnergyModel{IdleWatts: 100, DynamicWatts: 200}
	// 1 s idle floor + 0.5 SM-seconds dynamic → 100 + 100 = 200 J.
	if got := d.Energy(em); !almostEqual(got, 200, 1e-6) {
		t.Errorf("Energy = %v, want 200", got)
	}
}

func TestEnergyIdleOnly(t *testing.T) {
	eng := sim.NewEngine()
	d := New(eng, testProfile())
	eng.RunUntil(2000)
	em := A100Energy()
	if got, want := d.Energy(em), em.IdleWatts*2; !almostEqual(got, want, 1e-6) {
		t.Errorf("idle energy = %v, want %v", got, want)
	}
}

func TestV100ProfileShape(t *testing.T) {
	v, a := V100Profile(), A100Profile()
	if v.FLOPsPerMS >= a.FLOPsPerMS || v.BytesPerMS >= a.BytesPerMS || v.NumSMs >= a.NumSMs {
		t.Errorf("V100 %+v should be strictly weaker than A100 %+v", v, a)
	}
}

func TestTracerRecordsLifecycles(t *testing.T) {
	eng := sim.NewEngine()
	d := New(eng, testProfile())
	events := d.CollectTrace()
	d.Launch(KernelSpec{Name: "a", Work: 2, SMFrac: 1}, nil)
	eng.Schedule(1, func() { d.Launch(KernelSpec{Name: "b", Work: 1, SMFrac: 1}, nil) })
	eng.Run()
	if len(*events) != 2 {
		t.Fatalf("traced %d events, want 2", len(*events))
	}
	for _, e := range *events {
		if e.Finish <= e.Start {
			t.Fatalf("event %+v has non-positive duration", e)
		}
	}
	// a: starts 0; b: starts 1; both share from t=1.
	overlap := OverlapTime(*events, 2)
	if !almostEqual(overlap, (*events)[0].Finish-1, 1e-9) && !almostEqual(overlap, (*events)[1].Finish-1, 1e-9) {
		// The earlier finisher bounds the overlap window.
		first := (*events)[0].Finish
		if (*events)[1].Finish < first {
			first = (*events)[1].Finish
		}
		if !almostEqual(overlap, first-1, 1e-9) {
			t.Errorf("overlap %v, want %v", overlap, first-1)
		}
	}
}

func TestOverlapTimeSequentialIsZero(t *testing.T) {
	events := []KernelEvent{
		{Name: "a", Start: 0, Finish: 2},
		{Name: "b", Start: 2, Finish: 5},
	}
	if got := OverlapTime(events, 2); got != 0 {
		t.Errorf("sequential overlap = %v, want 0", got)
	}
}

func TestOverlapTimeNested(t *testing.T) {
	events := []KernelEvent{
		{Name: "a", Start: 0, Finish: 10},
		{Name: "b", Start: 2, Finish: 6},
		{Name: "c", Start: 3, Finish: 5},
	}
	if got := OverlapTime(events, 2); !almostEqual(got, 4, 1e-12) {
		t.Errorf("2-deep overlap = %v, want 4", got)
	}
	if got := OverlapTime(events, 3); !almostEqual(got, 2, 1e-12) {
		t.Errorf("3-deep overlap = %v, want 2", got)
	}
}

func TestDegradationThrottlesAllKernels(t *testing.T) {
	// A 50% clock cut halves every resident kernel's rate, including ones
	// far below the SM capacity, and restoring mid-flight preserves the
	// progress already made.
	eng := sim.NewEngine()
	d := New(eng, testProfile())
	var finish sim.Time
	d.Launch(KernelSpec{Name: "k", Work: 4, SMFrac: 0.2, MemFrac: 0.1}, func() { finish = eng.Now() })
	d.SetDegradation(0.5, 1)
	eng.Schedule(4, func() { d.SetDegradation(1, 1) }) // 2 ms of work done by then
	eng.Run()
	// 4 ms at rate 0.5 (2 ms progress), then 2 ms at full rate.
	if !almostEqual(finish, 6, 1e-9) {
		t.Errorf("throttled kernel finished at %v, want 6", finish)
	}
	if sm, mem := d.Degradation(); sm != 1 || mem != 1 {
		t.Errorf("degradation not restored: (%v, %v)", sm, mem)
	}
}

func TestMemDegradationOnlyHurtsBandwidthBoundKernels(t *testing.T) {
	eng := sim.NewEngine()
	d := New(eng, testProfile())
	d.SetDegradation(1, 0.5)
	var fCompute, fMem sim.Time
	d.Launch(KernelSpec{Name: "compute", Work: 3, SMFrac: 0.3, MemFrac: 0.1}, func() { fCompute = eng.Now() })
	d.Launch(KernelSpec{Name: "mem", Work: 3, SMFrac: 0.3, MemFrac: 0.8}, func() { fMem = eng.Now() })
	eng.Run()
	if !almostEqual(fCompute, 3, 1e-9) {
		t.Errorf("compute-bound kernel finished at %v under mem degrade, want 3 (unaffected)", fCompute)
	}
	// mem kernel: demand 0.8 against residual capacity 0.5-0.1=0.4 → rate
	// 0.5 while sharing (1.5 done by t=3), then alone at 0.5/0.8 = 0.625
	// (remaining 1.5 takes 2.4 ms) → finish 5.4.
	if !almostEqual(fMem, 5.4, 1e-9) {
		t.Errorf("bandwidth-bound kernel finished at %v under 0.5 mem degrade, want 5.4", fMem)
	}
}

func TestLaunchStallDefersExecution(t *testing.T) {
	eng := sim.NewEngine()
	d := New(eng, testProfile())
	d.SetLaunchStall(1.5)
	var finish sim.Time
	d.Launch(KernelSpec{Name: "k", Work: 2, SMFrac: 0.5}, func() { finish = eng.Now() })
	d.SetLaunchStall(0) // the stall in force at Launch time is still paid
	eng.Run()
	if !almostEqual(finish, 3.5, 1e-9) {
		t.Errorf("stalled kernel finished at %v, want 3.5 (1.5 stall + 2 work)", finish)
	}
	if d.LaunchStall() != 0 {
		t.Errorf("LaunchStall = %v after reset, want 0", d.LaunchStall())
	}
}

func TestDegradationValidation(t *testing.T) {
	eng := sim.NewEngine()
	d := New(eng, testProfile())
	for _, bad := range [][2]float64{{0, 1}, {1, 0}, {1.5, 1}, {1, -0.2}, {math.NaN(), 1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("SetDegradation(%v, %v) did not panic", bad[0], bad[1])
				}
			}()
			d.SetDegradation(bad[0], bad[1])
		}()
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("SetLaunchStall(-1) did not panic")
			}
		}()
		d.SetLaunchStall(-1)
	}()
}
