package gpusim

import (
	"testing"

	"abacus/internal/sim"
)

// contendedRun drives a fixed, contention-heavy workload on the device —
// two interleaved chains plus a staggered solo launch — and returns every
// completion instant in callback order. Used by the determinism and
// transparency tests, which compare the result bit-for-bit.
func contendedRun(eng *sim.Engine, d *Device) []sim.Time {
	var finishes []sim.Time
	record := func() { finishes = append(finishes, eng.Now()) }
	chainA := []KernelSpec{
		{Name: "a0", Work: 3, SMFrac: 0.9, MemFrac: 0.5},
		{Name: "a1", Work: 2, SMFrac: 0.6, MemFrac: 0.2},
		{Name: "a2", Work: 4, SMFrac: 0.8, MemFrac: 0.7},
	}
	chainB := []KernelSpec{
		{Name: "b0", Work: 1.5, SMFrac: 0.7, MemFrac: 0.9},
		{Name: "b1", Work: 2.5, SMFrac: 0.4, MemFrac: 0.1},
	}
	d.RunChain(chainA, record)
	eng.Schedule(0.7, func() { d.RunChain(chainB, record) })
	eng.Schedule(1.3, func() {
		d.Launch(KernelSpec{Name: "solo", Work: 2, SMFrac: 0.5, MemFrac: 0.6}, record)
	})
	eng.Run()
	return finishes
}

// TestAdvanceAccumulationDeterministic pins the fix for the latent
// float-order nondeterminism: advance and computeRates used to iterate a
// map, so the busyTime/smTime sums (and hence Utilization/Energy) depended
// on map iteration order. With the ordered resident slice every repetition
// must be byte-identical — exact float equality, no epsilon.
func TestAdvanceAccumulationDeterministic(t *testing.T) {
	type outcome struct {
		finishes []sim.Time
		smTime   float64
		busy     sim.Time
		util     float64
		energy   float64
	}
	var base outcome
	for run := 0; run < 5; run++ {
		eng := sim.NewEngine()
		d := New(eng, testProfile())
		got := outcome{finishes: contendedRun(eng, d)}
		got.smTime = d.SMTime()
		got.busy = d.BusyTime()
		got.util = d.Utilization()
		got.energy = d.Energy(A100Energy())
		if run == 0 {
			base = got
			continue
		}
		if len(got.finishes) != len(base.finishes) {
			t.Fatalf("run %d: %d completions, want %d", run, len(got.finishes), len(base.finishes))
		}
		for i := range got.finishes {
			if got.finishes[i] != base.finishes[i] {
				t.Errorf("run %d: completion %d at %v, want exactly %v", run, i, got.finishes[i], base.finishes[i])
			}
		}
		if got.smTime != base.smTime || got.busy != base.busy || got.util != base.util || got.energy != base.energy {
			t.Errorf("run %d: accounting (smTime=%v busy=%v util=%v energy=%v) differs from run 0 (%v %v %v %v)",
				run, got.smTime, got.busy, got.util, got.energy, base.smTime, base.busy, base.util, base.energy)
		}
	}
}

// TestDevicePoolTransparency is the device-level analogue of the engine's
// TestPoolTransparency: pool state must be invisible to the virtual clock.
// Three devices — cold pools, prewarmed pools, and pools churned by a prior
// workload — replay the same workload from the same start time and must
// agree bit-for-bit on every completion instant and accounting delta.
func TestDevicePoolTransparency(t *testing.T) {
	churnEng := sim.NewEngine()
	churned := New(churnEng, testProfile())
	contendedRun(churnEng, churned) // stock the pools with recycled objects
	if churned.PooledKernels() == 0 {
		t.Fatal("churn workload left no kernels in the pool")
	}
	start := churnEng.Now()
	churnSM, churnBusy := churned.SMTime(), churned.BusyTime()

	coldEng := sim.NewEngine()
	cold := New(coldEng, testProfile())
	warmEng := sim.NewEngine()
	warm := New(warmEng, testProfile())
	warmEng.Prewarm(256)
	warm.Prewarm(32, 8)
	// Advance the cold and prewarmed clocks to the churned device's exact
	// start time so all three replay from an identical float base.
	coldEng.Schedule(start, func() {})
	coldEng.Run()
	warmEng.Schedule(start, func() {})
	warmEng.Run()

	ref := contendedRun(coldEng, cold)
	for name, run := range map[string][]sim.Time{
		"prewarmed": contendedRun(warmEng, warm),
		"churned":   contendedRun(churnEng, churned),
	} {
		if len(run) != len(ref) {
			t.Fatalf("%s device: %d completions, want %d", name, len(run), len(ref))
		}
		for i := range run {
			if run[i] != ref[i] {
				t.Errorf("%s device diverged at completion %d: %v vs cold %v", name, i, run[i], ref[i])
			}
		}
	}
	// Accounting deltas are compared with a tiny epsilon: the churned
	// device's integrals resume from a nonzero base, so the sums differ in
	// the last ulp even though every increment is identical.
	if got, want := churned.SMTime()-churnSM, cold.SMTime(); !almostEqual(got, want, 1e-9) {
		t.Errorf("churned device accumulated %v SM-ms, cold accumulated %v", got, want)
	}
	if got, want := churned.BusyTime()-churnBusy, cold.BusyTime(); !almostEqual(got, want, 1e-9) {
		t.Errorf("churned device accumulated %v busy ms, cold accumulated %v", got, want)
	}
}

// TestDeviceReusesPooledObjects verifies the pools actually cycle: after a
// workload drains, its kernels sit in the free pool — only as many objects
// as the peak resident set, not one per completion — and a repeat workload
// allocates no new kernels or engine events.
func TestDeviceReusesPooledObjects(t *testing.T) {
	eng := sim.NewEngine()
	d := New(eng, testProfile())
	contendedRun(eng, d)
	pooled := d.PooledKernels()
	if pooled == 0 {
		t.Fatal("pool empty after workload drained")
	}
	if pooled >= 6 {
		t.Errorf("pool holds %d kernels for 6 completions; recycling should cap it at peak residency", pooled)
	}
	events := eng.AllocatedEvents()
	contendedRun(eng, d)
	if got := eng.AllocatedEvents(); got != events {
		t.Errorf("repeat workload allocated %d new events, want 0", got-events)
	}
	if got := d.PooledKernels(); got != pooled {
		t.Errorf("pool holds %d kernels after repeat, want %d (no new kernel allocations)", got, pooled)
	}
}

// TestDeviceSteadyStateZeroAllocs asserts the tentpole: once pools and
// scratch are warm, a full launch → contend → complete cycle (two
// concurrent chains) performs zero heap allocations.
func TestDeviceSteadyStateZeroAllocs(t *testing.T) {
	eng := sim.NewEngine()
	d := New(eng, testProfile())
	chainA := []KernelSpec{
		{Name: "a0", Work: 1.0, SMFrac: 0.8, MemFrac: 0.5},
		{Name: "a1", Work: 0.5, SMFrac: 0.5, MemFrac: 0.2},
	}
	chainB := []KernelSpec{
		{Name: "b0", Work: 0.7, SMFrac: 0.9, MemFrac: 0.8},
	}
	completions := 0
	countDone := func(any) { completions++ }
	cycle := func() {
		d.RunChainArg(chainA, countDone, nil)
		d.RunChainArg(chainB, countDone, nil)
		eng.Run()
	}
	for i := 0; i < 3; i++ {
		cycle() // warm pools and scratch
	}
	if allocs := testing.AllocsPerRun(100, cycle); allocs != 0 {
		t.Errorf("steady-state chain cycle allocated %v times per run, want 0", allocs)
	}
	if completions == 0 {
		t.Fatal("no chain completions observed")
	}
}

// TestRunChainArgEmptyCompletesSynchronously mirrors the RunChain empty-chain
// contract for the allocation-free variant.
func TestRunChainArgEmptyCompletesSynchronously(t *testing.T) {
	eng := sim.NewEngine()
	d := New(eng, testProfile())
	ran := false
	d.RunChainArg(nil, func(a any) { ran = a.(string) == "tag" }, "tag")
	if !ran {
		t.Error("empty RunChainArg did not invoke its callback synchronously")
	}
	if eng.Pending() != 0 {
		t.Errorf("empty RunChainArg left %d pending events", eng.Pending())
	}
}

// TestLaunchStallPoolsStallRecords ensures the injected-stall path also
// recycles its carrier objects instead of allocating per launch.
func TestLaunchStallPoolsStallRecords(t *testing.T) {
	eng := sim.NewEngine()
	d := New(eng, testProfile())
	d.SetLaunchStall(0.5)
	spec := KernelSpec{Name: "k", Work: 1, SMFrac: 0.5, MemFrac: 0.3}
	var finish sim.Time
	done := func() { finish = eng.Now() }
	d.Launch(spec, done)
	eng.Run()
	if want := 0.5 + 1.0; !almostEqual(finish, want, 1e-9) {
		t.Fatalf("stalled launch finished at %v, want %v", finish, want)
	}
	cycle := func() {
		d.Launch(spec, done)
		eng.Run()
	}
	cycle()
	if allocs := testing.AllocsPerRun(50, cycle); allocs != 0 {
		t.Errorf("stalled launch cycle allocated %v times per run, want 0", allocs)
	}
}
