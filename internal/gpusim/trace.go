package gpusim

import "abacus/internal/sim"

// KernelEvent records one kernel lifecycle transition on the device — the
// simulated analogue of an nvprof/Nsight timeline, used by tests to verify
// overlap structure and by tooling to visualize schedules.
type KernelEvent struct {
	Name   string
	Start  sim.Time
	Finish sim.Time
	// SMFrac/MemFrac echo the kernel's resource footprint.
	SMFrac, MemFrac float64
}

// Tracer receives completed-kernel events when tracing is enabled.
type Tracer func(KernelEvent)

// SetTracer installs (or, with nil, removes) a tracer. The tracer fires at
// each kernel's completion with its full lifecycle.
func (d *Device) SetTracer(t Tracer) { d.tracer = t }

// CollectTrace is a convenience tracer target: events append to the
// returned slice's backing store until the device is garbage collected.
func (d *Device) CollectTrace() *[]KernelEvent {
	events := &[]KernelEvent{}
	d.SetTracer(func(e KernelEvent) { *events = append(*events, e) })
	return events
}

// OverlapTime computes, from a collected trace, the total time during which
// at least `minConcurrent` kernels were resident — the quantity that
// distinguishes deterministic overlap from sequential execution.
func OverlapTime(events []KernelEvent, minConcurrent int) float64 {
	type edge struct {
		at    sim.Time
		delta int
	}
	var edges []edge
	for _, e := range events {
		edges = append(edges, edge{e.Start, 1}, edge{e.Finish, -1})
	}
	// Sort by time; ends before starts at the same instant so zero-length
	// overlaps do not count.
	for i := 1; i < len(edges); i++ {
		for j := i; j > 0 && (edges[j].at < edges[j-1].at ||
			(edges[j].at == edges[j-1].at && edges[j].delta < edges[j-1].delta)); j-- {
			edges[j], edges[j-1] = edges[j-1], edges[j]
		}
	}
	depth := 0
	var total float64
	var since sim.Time
	for _, e := range edges {
		if depth >= minConcurrent {
			total += e.at - since
		}
		depth += e.delta
		since = e.at
	}
	return total
}
