package sim

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestNewEngineStartsAtZero(t *testing.T) {
	e := NewEngine()
	if e.Now() != 0 {
		t.Errorf("Now() = %v, want 0", e.Now())
	}
	if e.Pending() != 0 {
		t.Errorf("Pending() = %d, want 0", e.Pending())
	}
}

func TestScheduleAndRun(t *testing.T) {
	e := NewEngine()
	var fired []float64
	for _, d := range []float64{5, 1, 3} {
		d := d
		e.Schedule(d, func() { fired = append(fired, d) })
	}
	e.Run()
	want := []float64{1, 3, 5}
	if len(fired) != 3 {
		t.Fatalf("fired %v, want %v", fired, want)
	}
	for i := range want {
		if fired[i] != want[i] {
			t.Errorf("fired[%d] = %v, want %v", i, fired[i], want[i])
		}
	}
	if e.Now() != 5 {
		t.Errorf("Now() = %v, want 5", e.Now())
	}
}

func TestSameTimeEventsFireInScheduleOrder(t *testing.T) {
	e := NewEngine()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(2, func() { order = append(order, i) })
	}
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("order = %v, want ascending", order)
		}
	}
}

func TestNestedScheduling(t *testing.T) {
	e := NewEngine()
	var times []Time
	e.Schedule(1, func() {
		times = append(times, e.Now())
		e.Schedule(2, func() {
			times = append(times, e.Now())
		})
	})
	e.Run()
	if len(times) != 2 || times[0] != 1 || times[1] != 3 {
		t.Errorf("times = %v, want [1 3]", times)
	}
}

func TestScheduleZeroDelay(t *testing.T) {
	e := NewEngine()
	ran := false
	e.Schedule(0, func() { ran = true })
	e.Run()
	if !ran || e.Now() != 0 {
		t.Errorf("zero-delay event: ran=%v now=%v", ran, e.Now())
	}
}

func TestNegativeDelayPanics(t *testing.T) {
	e := NewEngine()
	defer func() {
		if recover() == nil {
			t.Error("did not panic")
		}
	}()
	e.Schedule(-1, func() {})
}

func TestScheduleAtPastPanics(t *testing.T) {
	e := NewEngine()
	e.Schedule(5, func() {})
	e.Run()
	defer func() {
		if recover() == nil {
			t.Error("did not panic")
		}
	}()
	e.ScheduleAt(1, func() {})
}

func TestNilCallbackPanics(t *testing.T) {
	e := NewEngine()
	defer func() {
		if recover() == nil {
			t.Error("did not panic")
		}
	}()
	e.Schedule(1, nil)
}

func TestCancel(t *testing.T) {
	e := NewEngine()
	ran := false
	ev := e.Schedule(1, func() { ran = true })
	if !e.Cancel(ev) {
		t.Error("Cancel returned false for a pending event")
	}
	if e.Cancel(ev) {
		t.Error("second Cancel returned true")
	}
	e.Run()
	if ran {
		t.Error("canceled event still fired")
	}
}

func TestCancelZeroHandleIsNoop(t *testing.T) {
	e := NewEngine()
	if e.Cancel(Handle{}) {
		t.Error("Cancel(Handle{}) returned true")
	}
}

func TestCancelFiredEventReturnsFalse(t *testing.T) {
	e := NewEngine()
	ev := e.Schedule(1, func() {})
	e.Run()
	if e.Cancel(ev) {
		t.Error("Cancel of a fired event returned true")
	}
}

func TestCancelMiddleEventPreservesOrder(t *testing.T) {
	e := NewEngine()
	var fired []float64
	evs := make([]Handle, 0, 5)
	for _, d := range []float64{1, 2, 3, 4, 5} {
		d := d
		evs = append(evs, e.Schedule(d, func() { fired = append(fired, d) }))
	}
	e.Cancel(evs[2]) // remove t=3
	e.Run()
	want := []float64{1, 2, 4, 5}
	if len(fired) != len(want) {
		t.Fatalf("fired = %v, want %v", fired, want)
	}
	for i := range want {
		if fired[i] != want[i] {
			t.Errorf("fired[%d] = %v, want %v", i, fired[i], want[i])
		}
	}
}

func TestRunUntil(t *testing.T) {
	e := NewEngine()
	var fired []float64
	for _, d := range []float64{1, 2, 3, 10} {
		d := d
		e.Schedule(d, func() { fired = append(fired, d) })
	}
	e.RunUntil(5)
	if len(fired) != 3 {
		t.Errorf("fired %v, want events at 1,2,3", fired)
	}
	if e.Now() != 5 {
		t.Errorf("Now() = %v, want 5", e.Now())
	}
	if e.Pending() != 1 {
		t.Errorf("Pending() = %d, want 1", e.Pending())
	}
	e.Run()
	if e.Now() != 10 || len(fired) != 4 {
		t.Errorf("after Run: now=%v fired=%v", e.Now(), fired)
	}
}

func TestRunUntilAdvancesClockWithEmptyQueue(t *testing.T) {
	e := NewEngine()
	e.RunUntil(42)
	if e.Now() != 42 {
		t.Errorf("Now() = %v, want 42", e.Now())
	}
}

func TestRunUntilPastPanics(t *testing.T) {
	e := NewEngine()
	e.RunUntil(10)
	defer func() {
		if recover() == nil {
			t.Error("did not panic")
		}
	}()
	e.RunUntil(5)
}

func TestStepReturnsFalseWhenEmpty(t *testing.T) {
	e := NewEngine()
	if e.Step() {
		t.Error("Step() on empty queue returned true")
	}
}

func TestEventAt(t *testing.T) {
	e := NewEngine()
	ev := e.Schedule(7, func() {})
	if ev.At() != 7 {
		t.Errorf("At() = %v, want 7", ev.At())
	}
}

func TestReentrantRunPanics(t *testing.T) {
	e := NewEngine()
	panicked := false
	e.Schedule(1, func() {
		defer func() {
			if recover() != nil {
				panicked = true
			}
		}()
		e.Run()
	})
	e.Run()
	if !panicked {
		t.Error("re-entrant Run did not panic")
	}
}

// Property: events always fire in non-decreasing time order, and the clock
// never runs backwards, for arbitrary delay sequences including nested
// scheduling.
func TestEventOrderProperty(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		e := NewEngine()
		var fired []Time
		count := int(n%50) + 1
		var schedule func(depth int)
		schedule = func(depth int) {
			d := rng.Float64() * 10
			e.Schedule(d, func() {
				fired = append(fired, e.Now())
				if depth < 3 && rng.Intn(2) == 0 {
					schedule(depth + 1)
				}
			})
		}
		for i := 0; i < count; i++ {
			schedule(0)
		}
		e.Run()
		return sort.Float64sAreSorted(fired)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: with identical seeds, two engines produce identical firing
// sequences (bit determinism).
func TestDeterminismProperty(t *testing.T) {
	run := func(seed int64) []Time {
		rng := rand.New(rand.NewSource(seed))
		e := NewEngine()
		var fired []Time
		for i := 0; i < 100; i++ {
			e.Schedule(rng.Float64()*100, func() { fired = append(fired, e.Now()) })
		}
		e.Run()
		return fired
	}
	f := func(seed int64) bool {
		a, b := run(seed), run(seed)
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestNextAt(t *testing.T) {
	e := NewEngine()
	if _, ok := e.NextAt(); ok {
		t.Error("NextAt reported an event on an empty queue")
	}
	e.Schedule(7, func() {})
	e.Schedule(3, func() {})
	if at, ok := e.NextAt(); !ok || at != 3 {
		t.Errorf("NextAt = (%v, %v), want (3, true)", at, ok)
	}
	e.Run()
	if _, ok := e.NextAt(); ok {
		t.Error("NextAt reported an event after the queue drained")
	}
}

// --- Event-pool recycling ---

func TestEventPoolReusesFiredEvents(t *testing.T) {
	e := NewEngine()
	for i := 0; i < 100; i++ {
		e.Schedule(1, func() {})
		e.Step()
	}
	// One event in flight at a time: after warm-up the pool serves every
	// Schedule, so at most a couple of Event objects are ever allocated.
	if e.AllocatedEvents() > 2 {
		t.Errorf("AllocatedEvents = %d, want <= 2 (pool should recycle)", e.AllocatedEvents())
	}
	if e.FreeEvents() == 0 {
		t.Error("FreeEvents = 0, want recycled events in the pool")
	}
}

func TestCancelAfterFireIsStale(t *testing.T) {
	e := NewEngine()
	h := e.Schedule(1, func() {})
	e.Run()
	if e.Cancel(h) {
		t.Error("Cancel of a fired event's handle returned true")
	}
}

func TestCancelAfterRecycleCannotKillNewIncarnation(t *testing.T) {
	e := NewEngine()
	stale := e.Schedule(1, func() {})
	e.Run() // fires; the Event object returns to the pool
	ran := false
	fresh := e.Schedule(1, func() { ran = true })
	if fresh.ev != stale.ev {
		t.Fatalf("pool did not reuse the fired event object (alloced %d)", e.AllocatedEvents())
	}
	// The stale handle points at the same Event object but an older
	// generation: it must not cancel the new incarnation.
	if e.Cancel(stale) {
		t.Error("stale handle canceled a recycled event")
	}
	e.Run()
	if !ran {
		t.Error("recycled event did not fire")
	}
	if e.Cancel(fresh) {
		t.Error("fresh handle canceled after its event fired")
	}
}

func TestCancelReturnsEventToPool(t *testing.T) {
	e := NewEngine()
	h := e.Schedule(5, func() {})
	free := e.FreeEvents()
	if !e.Cancel(h) {
		t.Fatal("Cancel returned false for a pending event")
	}
	if e.FreeEvents() != free+1 {
		t.Errorf("FreeEvents = %d after Cancel, want %d", e.FreeEvents(), free+1)
	}
	if e.Cancel(h) {
		t.Error("second Cancel returned true")
	}
}

func TestCancelMidHeapRemoval(t *testing.T) {
	// Cancel an event from the middle of a populated heap, then verify the
	// remaining events still fire in time order and the canceled one never
	// does — heap.Remove repair plus pool recycling must not corrupt order.
	e := NewEngine()
	var fired []float64
	handles := make([]Handle, 0, 9)
	for _, d := range []float64{9, 2, 7, 4, 5, 3, 8, 1, 6} {
		d := d
		handles = append(handles, e.Schedule(d, func() { fired = append(fired, d) }))
	}
	if !e.Cancel(handles[3]) { // t=4, interior heap node
		t.Fatal("mid-heap Cancel returned false")
	}
	if !e.Cancel(handles[0]) { // t=9, near the bottom
		t.Fatal("second mid-heap Cancel returned false")
	}
	e.Run()
	want := []float64{1, 2, 3, 5, 6, 7, 8}
	if len(fired) != len(want) {
		t.Fatalf("fired = %v, want %v", fired, want)
	}
	for i := range want {
		if fired[i] != want[i] {
			t.Errorf("fired[%d] = %v, want %v", i, fired[i], want[i])
		}
	}
}

func TestHandleActive(t *testing.T) {
	e := NewEngine()
	h := e.Schedule(1, func() {})
	if !h.Active() {
		t.Error("handle inactive while pending")
	}
	e.Run()
	if h.Active() {
		t.Error("handle active after firing")
	}
	if (Handle{}).Active() {
		t.Error("zero handle reports active")
	}
}

func TestScheduleArgOrdering(t *testing.T) {
	e := NewEngine()
	var got []int
	push := func(a any) { got = append(got, a.(int)) }
	e.ScheduleArg(2, push, 1)
	e.ScheduleArgAt(1, push, 0)
	e.ScheduleArg(2, push, 2) // same instant as the first: scheduling order
	e.Run()
	if len(got) != 3 || got[0] != 0 || got[1] != 1 || got[2] != 2 {
		t.Errorf("got %v, want [0 1 2]", got)
	}
}

func TestScheduleArgNilFnPanics(t *testing.T) {
	e := NewEngine()
	defer func() {
		if recover() == nil {
			t.Error("did not panic")
		}
	}()
	e.ScheduleArg(1, nil, 7)
}

// Steady-state Schedule/fire and Schedule/Cancel must be allocation-free:
// the pool absorbs every event, and func-value arguments box without
// allocating.
func TestSteadyStateZeroAllocs(t *testing.T) {
	e := NewEngine()
	nop := func(any) {}
	// Warm the pool past the peak population used below.
	for i := 0; i < 8; i++ {
		e.ScheduleArg(1, nop, nil)
	}
	e.Run()
	if allocs := testing.AllocsPerRun(100, func() {
		e.ScheduleArg(1, nop, nil)
		e.Step()
	}); allocs != 0 {
		t.Errorf("Schedule/fire = %v allocs/op, want 0", allocs)
	}
	if allocs := testing.AllocsPerRun(100, func() {
		h := e.ScheduleArg(1, nop, nil)
		e.Cancel(h)
	}); allocs != 0 {
		t.Errorf("Schedule/Cancel = %v allocs/op, want 0", allocs)
	}
}

// Pool state must be invisible to the virtual clock: a prewarmed (or
// churned) engine replays an identical workload with identical firing
// times as a cold one.
func TestPoolTransparency(t *testing.T) {
	replay := func(e *Engine) []Time {
		base := e.Now()
		var fired []Time
		rng := rand.New(rand.NewSource(42))
		record := func(any) { fired = append(fired, e.Now()-base) }
		var handles []Handle
		for i := 0; i < 200; i++ {
			handles = append(handles, e.ScheduleArg(rng.Float64()*50, record, nil))
		}
		for i := 0; i < len(handles); i += 3 {
			e.Cancel(handles[i])
		}
		e.Run()
		return fired
	}

	cold := replay(NewEngine())

	warm := NewEngine()
	warm.Prewarm(64)
	prewarmed := replay(warm)

	// Grow and churn the pool organically without advancing the clock, so
	// the replayed times stay exactly comparable to the cold engine's.
	churned := NewEngine()
	for i := 0; i < 500; i++ {
		churned.Schedule(0, func() {})
	}
	churned.Run()
	churnedRun := replay(churned)

	for name, got := range map[string][]Time{"prewarmed": prewarmed, "churned": churnedRun} {
		if len(got) != len(cold) {
			t.Fatalf("%s fired %d events, cold fired %d", name, len(got), len(cold))
		}
		for i := range cold {
			if got[i] != cold[i] {
				t.Fatalf("%s diverged at event %d: %v vs cold %v", name, i, got[i], cold[i])
			}
		}
	}
}
