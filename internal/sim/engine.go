// Package sim implements the deterministic discrete-event simulation engine
// that drives the Abacus reproduction. All simulated time is expressed in
// milliseconds on a virtual clock. Events scheduled for the same instant are
// executed in scheduling order, so a run is bit-for-bit reproducible.
//
// The engine recycles event objects through an intrusive free list: firing
// or canceling an event returns it to the pool, so steady-state scheduling
// is allocation-free. Handles returned by Schedule are generation-counted —
// a handle kept past its event's firing (or cancellation) goes stale and
// can never cancel the recycled event's next incarnation. Pool state is
// invisible to the virtual clock: a warm engine and a cold engine replay
// identical workloads identically.
package sim

import (
	"container/heap"
	"fmt"
)

// Time is a point on (or a span of) the virtual clock, in milliseconds.
type Time = float64

// Event is a pooled scheduled callback. Callers never hold *Event directly;
// Schedule returns a generation-counted Handle instead, so recycled events
// cannot be canceled through stale references.
type Event struct {
	at    Time
	seq   uint64
	index int    // heap index; -1 once popped or canceled
	gen   uint64 // bumped on every recycle; stale handles fail the check
	fn    func(any)
	arg   any
	next  *Event // free-list link while pooled
}

// Handle identifies one scheduled event incarnation. The zero Handle is
// inert: Cancel returns false and At returns 0. A Handle kept after its
// event fired or was canceled is stale — Cancel on it is a no-op even if
// the underlying Event object has been recycled for a new incarnation.
type Handle struct {
	ev  *Event
	gen uint64
	at  Time
}

// At returns the virtual time the event is (or was) scheduled to fire.
func (h Handle) At() Time { return h.at }

// Active reports whether the handle's event incarnation is still pending.
func (h Handle) Active() bool {
	return h.ev != nil && h.ev.gen == h.gen && h.ev.index >= 0
}

// eventHeap orders events by (time, insertion sequence).
type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	e := x.(*Event)
	e.index = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*h = old[:n-1]
	return e
}

// Engine is a single-threaded discrete-event simulator. The zero value is
// not usable; construct with NewEngine.
type Engine struct {
	now     Time
	seq     uint64
	pending eventHeap
	free    *Event // intrusive free list of recycled events
	freeLen int
	alloced int // total Event objects ever allocated (diagnostics)
	running bool
}

// NewEngine returns an engine with the clock at zero.
func NewEngine() *Engine {
	return &Engine{}
}

// Now returns the current virtual time in milliseconds.
func (e *Engine) Now() Time { return e.now }

// Pending reports the number of scheduled, not-yet-fired events.
func (e *Engine) Pending() int { return len(e.pending) }

// FreeEvents reports the number of recycled events waiting in the pool.
func (e *Engine) FreeEvents() int { return e.freeLen }

// AllocatedEvents reports the total number of Event objects this engine has
// ever allocated — in steady state it stops growing: every Schedule is
// served from the free list.
func (e *Engine) AllocatedEvents() int { return e.alloced }

// Prewarm stocks the free list with n events so even the first scheduling
// burst allocates nothing. Pool state never affects the virtual clock;
// tests use Prewarm to pin that transparency.
func (e *Engine) Prewarm(n int) {
	for i := 0; i < n; i++ {
		ev := &Event{index: -1}
		e.alloced++
		ev.next = e.free
		e.free = ev
		e.freeLen++
	}
}

// NextAt returns the timestamp of the earliest pending event, or false when
// the queue is empty. Real-time drivers use it to decide how long to sleep
// before the next event is due.
func (e *Engine) NextAt() (Time, bool) {
	if len(e.pending) == 0 {
		return 0, false
	}
	return e.pending[0].at, true
}

// acquire returns a pooled event, allocating only when the pool is dry.
func (e *Engine) acquire() *Event {
	if ev := e.free; ev != nil {
		e.free = ev.next
		ev.next = nil
		e.freeLen--
		return ev
	}
	e.alloced++
	return &Event{index: -1}
}

// recycle bumps the event's generation (invalidating outstanding handles),
// clears its payload, and returns it to the free list.
func (e *Engine) recycle(ev *Event) {
	ev.gen++
	ev.fn = nil
	ev.arg = nil
	ev.next = e.free
	e.free = ev
	e.freeLen++
}

// callFunc0 adapts a plain func() callback to the engine's (fn, arg) event
// payload. Func values are pointer-shaped, so boxing one into the arg
// interface does not allocate.
func callFunc0(a any) { a.(func())() }

// Schedule registers fn to run after delay milliseconds of virtual time and
// returns a handle that can be passed to Cancel. A negative delay panics:
// scheduling into the past would break causality.
func (e *Engine) Schedule(delay Time, fn func()) Handle {
	if delay < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", delay))
	}
	return e.ScheduleAt(e.now+delay, fn)
}

// ScheduleAt registers fn to run at absolute virtual time t. It panics if t
// is before the current time.
func (e *Engine) ScheduleAt(t Time, fn func()) Handle {
	if fn == nil {
		panic("sim: nil event callback")
	}
	return e.ScheduleArgAt(t, callFunc0, fn)
}

// ScheduleArg registers fn(arg) to run after delay milliseconds. It is the
// allocation-free variant of Schedule: fn is typically a package-level
// function and arg a long-lived pointer, so no closure is created and the
// pooled event is the only storage — 0 allocs/op in steady state.
func (e *Engine) ScheduleArg(delay Time, fn func(any), arg any) Handle {
	if delay < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", delay))
	}
	return e.ScheduleArgAt(e.now+delay, fn, arg)
}

// ScheduleArgAt registers fn(arg) to run at absolute virtual time t. It
// panics if t is before the current time or fn is nil.
func (e *Engine) ScheduleArgAt(t Time, fn func(any), arg any) Handle {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling at %v before now %v", t, e.now))
	}
	if fn == nil {
		panic("sim: nil event callback")
	}
	ev := e.acquire()
	ev.at = t
	ev.seq = e.seq
	ev.fn = fn
	ev.arg = arg
	e.seq++
	heap.Push(&e.pending, ev)
	return Handle{ev: ev, gen: ev.gen, at: t}
}

// Cancel removes a scheduled event. Canceling an event that already fired,
// was already canceled, or whose Event object has since been recycled for a
// newer incarnation is a no-op and returns false.
func (e *Engine) Cancel(h Handle) bool {
	ev := h.ev
	if ev == nil || ev.gen != h.gen || ev.index < 0 {
		return false
	}
	heap.Remove(&e.pending, ev.index)
	e.recycle(ev)
	return true
}

// Step fires the earliest pending event, advancing the clock to its time. It
// returns false when no events are pending. The event is recycled before
// its callback runs, so a callback that immediately reschedules reuses the
// just-fired event object.
func (e *Engine) Step() bool {
	if len(e.pending) == 0 {
		return false
	}
	ev := heap.Pop(&e.pending).(*Event)
	e.now = ev.at
	fn, arg := ev.fn, ev.arg
	e.recycle(ev)
	fn(arg)
	return true
}

// Run executes events until the queue is empty.
func (e *Engine) Run() {
	e.guardReentry()
	defer func() { e.running = false }()
	for e.Step() {
	}
}

// RunUntil executes events with timestamps <= deadline and then advances the
// clock to exactly deadline (even if the queue drained earlier).
func (e *Engine) RunUntil(deadline Time) {
	if deadline < e.now {
		panic(fmt.Sprintf("sim: RunUntil(%v) before now %v", deadline, e.now))
	}
	e.guardReentry()
	defer func() { e.running = false }()
	for len(e.pending) > 0 && e.pending[0].at <= deadline {
		e.Step()
	}
	e.now = deadline
}

func (e *Engine) guardReentry() {
	if e.running {
		panic("sim: engine run loop re-entered")
	}
	e.running = true
}
