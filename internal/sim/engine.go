// Package sim implements the deterministic discrete-event simulation engine
// that drives the Abacus reproduction. All simulated time is expressed in
// milliseconds on a virtual clock. Events scheduled for the same instant are
// executed in scheduling order, so a run is bit-for-bit reproducible.
package sim

import (
	"container/heap"
	"fmt"
)

// Time is a point on (or a span of) the virtual clock, in milliseconds.
type Time = float64

// Event is a scheduled callback. It is returned by Schedule so callers can
// cancel it before it fires.
type Event struct {
	at    Time
	seq   uint64
	index int // heap index; -1 once popped or canceled
	fn    func()
}

// At returns the virtual time the event is (or was) scheduled to fire.
func (e *Event) At() Time { return e.at }

// eventHeap orders events by (time, insertion sequence).
type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	e := x.(*Event)
	e.index = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*h = old[:n-1]
	return e
}

// Engine is a single-threaded discrete-event simulator. The zero value is
// not usable; construct with NewEngine.
type Engine struct {
	now     Time
	seq     uint64
	pending eventHeap
	running bool
}

// NewEngine returns an engine with the clock at zero.
func NewEngine() *Engine {
	return &Engine{}
}

// Now returns the current virtual time in milliseconds.
func (e *Engine) Now() Time { return e.now }

// Pending reports the number of scheduled, not-yet-fired events.
func (e *Engine) Pending() int { return len(e.pending) }

// NextAt returns the timestamp of the earliest pending event, or false when
// the queue is empty. Real-time drivers use it to decide how long to sleep
// before the next event is due.
func (e *Engine) NextAt() (Time, bool) {
	if len(e.pending) == 0 {
		return 0, false
	}
	return e.pending[0].at, true
}

// Schedule registers fn to run after delay milliseconds of virtual time and
// returns a handle that can be passed to Cancel. A negative delay panics:
// scheduling into the past would break causality.
func (e *Engine) Schedule(delay Time, fn func()) *Event {
	if delay < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", delay))
	}
	return e.ScheduleAt(e.now+delay, fn)
}

// ScheduleAt registers fn to run at absolute virtual time t. It panics if t
// is before the current time.
func (e *Engine) ScheduleAt(t Time, fn func()) *Event {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling at %v before now %v", t, e.now))
	}
	if fn == nil {
		panic("sim: nil event callback")
	}
	ev := &Event{at: t, seq: e.seq, fn: fn}
	e.seq++
	heap.Push(&e.pending, ev)
	return ev
}

// Cancel removes a scheduled event. Canceling an event that already fired or
// was already canceled is a no-op and returns false.
func (e *Engine) Cancel(ev *Event) bool {
	if ev == nil || ev.index < 0 {
		return false
	}
	heap.Remove(&e.pending, ev.index)
	ev.index = -1
	ev.fn = nil
	return true
}

// Step fires the earliest pending event, advancing the clock to its time. It
// returns false when no events are pending.
func (e *Engine) Step() bool {
	if len(e.pending) == 0 {
		return false
	}
	ev := heap.Pop(&e.pending).(*Event)
	e.now = ev.at
	fn := ev.fn
	ev.fn = nil
	fn()
	return true
}

// Run executes events until the queue is empty.
func (e *Engine) Run() {
	e.guardReentry()
	defer func() { e.running = false }()
	for e.Step() {
	}
}

// RunUntil executes events with timestamps <= deadline and then advances the
// clock to exactly deadline (even if the queue drained earlier).
func (e *Engine) RunUntil(deadline Time) {
	if deadline < e.now {
		panic(fmt.Sprintf("sim: RunUntil(%v) before now %v", deadline, e.now))
	}
	e.guardReentry()
	defer func() { e.running = false }()
	for len(e.pending) > 0 && e.pending[0].at <= deadline {
		e.Step()
	}
	e.now = deadline
}

func (e *Engine) guardReentry() {
	if e.running {
		panic("sim: engine run loop re-entered")
	}
	e.running = true
}
