package sim

import (
	"math/rand"
	"testing"
)

func BenchmarkScheduleAndFire(b *testing.B) {
	e := NewEngine()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e.Schedule(1, func() {})
		e.Step()
	}
}

func BenchmarkHeapChurn(b *testing.B) {
	// Keep 1024 pending events while scheduling/firing — the steady-state
	// shape of a busy device simulation.
	e := NewEngine()
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 1024; i++ {
		e.Schedule(rng.Float64()*100, func() {})
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e.Schedule(e.Now()+rng.Float64()*100-e.Now(), func() {})
		e.Step()
	}
}

func BenchmarkCancel(b *testing.B) {
	e := NewEngine()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ev := e.Schedule(float64(i)+1, func() {})
		e.Cancel(ev)
	}
}
