package sim

import (
	"math/rand"
	"testing"
)

func BenchmarkScheduleAndFire(b *testing.B) {
	e := NewEngine()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e.Schedule(1, func() {})
		e.Step()
	}
}

func BenchmarkHeapChurn(b *testing.B) {
	// Keep 1024 pending events while scheduling/firing — the steady-state
	// shape of a busy device simulation.
	e := NewEngine()
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 1024; i++ {
		e.Schedule(rng.Float64()*100, func() {})
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e.Schedule(e.Now()+rng.Float64()*100-e.Now(), func() {})
		e.Step()
	}
}

func BenchmarkCancel(b *testing.B) {
	e := NewEngine()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ev := e.Schedule(float64(i)+1, func() {})
		e.Cancel(ev)
	}
}

func BenchmarkScheduleArgAndFire(b *testing.B) {
	e := NewEngine()
	nop := func(any) {}
	e.ScheduleArg(1, nop, nil)
	e.Run()
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e.ScheduleArg(1, nop, nil)
		e.Step()
	}
}

func BenchmarkScheduleArgHeapChurn(b *testing.B) {
	// The 1024-pending steady-state shape of BenchmarkHeapChurn, on the
	// allocation-free ScheduleArg path.
	e := NewEngine()
	nop := func(any) {}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 1024; i++ {
		e.ScheduleArg(rng.Float64()*100, nop, nil)
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e.ScheduleArg(rng.Float64()*100, nop, nil)
		e.Step()
	}
}
