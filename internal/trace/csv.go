package trace

import (
	"encoding/csv"
	"fmt"
	"io"
	"sort"
	"strconv"

	"abacus/internal/dnn"
)

// WriteCSV persists an arrival trace so a run can be replayed elsewhere
// (or a real production trace can be injected in the same format).
func WriteCSV(w io.Writer, arrivals []Arrival) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"time_ms", "service", "batch", "seqlen"}); err != nil {
		return err
	}
	for _, a := range arrivals {
		row := []string{
			strconv.FormatFloat(a.Time, 'f', -1, 64),
			strconv.Itoa(a.Service),
			strconv.Itoa(a.Input.Batch),
			strconv.Itoa(a.Input.SeqLen),
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV loads a trace written by WriteCSV (or hand-authored in the same
// format). numServices bounds the service indices; arrivals are returned
// time-sorted.
func ReadCSV(r io.Reader, numServices int) ([]Arrival, error) {
	cr := csv.NewReader(r)
	rows, err := cr.ReadAll()
	if err != nil {
		return nil, err
	}
	if len(rows) == 0 {
		return nil, fmt.Errorf("trace: empty CSV")
	}
	if len(rows[0]) != 4 || rows[0][0] != "time_ms" {
		return nil, fmt.Errorf("trace: unexpected header %v", rows[0])
	}
	var out []Arrival
	for i, row := range rows[1:] {
		t, err1 := strconv.ParseFloat(row[0], 64)
		svc, err2 := strconv.Atoi(row[1])
		batch, err3 := strconv.Atoi(row[2])
		seq, err4 := strconv.Atoi(row[3])
		if err1 != nil || err2 != nil || err3 != nil || err4 != nil {
			return nil, fmt.Errorf("trace: row %d malformed: %v", i+1, row)
		}
		if t < 0 {
			return nil, fmt.Errorf("trace: row %d has negative time %v", i+1, t)
		}
		if svc < 0 || svc >= numServices {
			return nil, fmt.Errorf("trace: row %d service %d out of [0,%d)", i+1, svc, numServices)
		}
		if batch < 1 {
			return nil, fmt.Errorf("trace: row %d batch %d invalid", i+1, batch)
		}
		out = append(out, Arrival{Time: t, Service: svc, Input: dnn.Input{Batch: batch, SeqLen: seq}})
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Time < out[j].Time })
	return out, nil
}
