package trace

import (
	"sort"
	"sync"
)

// Source is a lazy, finite arrival stream: Next yields arrivals in
// non-decreasing time order and reports ok=false once exhausted. The
// workload engine (internal/workload) compiles declarative specs into
// Sources; the determinism contract is that a Source's first k arrivals are
// byte-identical to the first k entries of the materialized slice built from
// the same inputs.
type Source interface {
	Next() (Arrival, bool)
}

// SliceSource replays a materialized arrival slice as a Source.
type SliceSource struct {
	arrivals []Arrival
	next     int
}

// NewSliceSource wraps arrivals (not copied) in a Source.
func NewSliceSource(arrivals []Arrival) *SliceSource {
	return &SliceSource{arrivals: arrivals}
}

// Next implements Source.
func (s *SliceSource) Next() (Arrival, bool) {
	if s.next >= len(s.arrivals) {
		return Arrival{}, false
	}
	a := s.arrivals[s.next]
	s.next++
	return a, true
}

// Collect drains a Source into a slice; max bounds the result when positive
// (a guard against unexpectedly unbounded sources).
func Collect(s Source, max int) []Arrival {
	var out []Arrival
	for {
		a, ok := s.Next()
		if !ok {
			return out
		}
		out = append(out, a)
		if max > 0 && len(out) >= max {
			return out
		}
	}
}

// StreamSource bounds a Generator.Stream-style lazy generator into a Source
// that ends at durationMS, so open-ended streams compose with Source
// consumers.
func StreamSource(next func() Arrival, durationMS float64) Source {
	return &streamSource{next: next, durMS: durationMS}
}

type streamSource struct {
	next  func() Arrival
	durMS float64
	done  bool
}

func (s *streamSource) Next() (Arrival, bool) {
	if s.done {
		return Arrival{}, false
	}
	a := s.next()
	if a.Time >= s.durMS {
		s.done = true
		return Arrival{}, false
	}
	return a, true
}

// Capture records a live workload — every validated request the gateway
// sees, stamped with its virtual arrival time — so a production session can
// be persisted as a replayable trace. Safe for concurrent use; multi-node
// gateways interleave slightly out of order across per-node clocks, so
// Snapshot sorts (stably) before returning.
type Capture struct {
	mu       sync.Mutex
	arrivals []Arrival
}

// NewCapture returns an empty recorder.
func NewCapture() *Capture { return &Capture{} }

// Record appends one arrival (any goroutine).
func (c *Capture) Record(a Arrival) {
	c.mu.Lock()
	c.arrivals = append(c.arrivals, a)
	c.mu.Unlock()
}

// Len reports how many arrivals have been recorded.
func (c *Capture) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.arrivals)
}

// Snapshot returns the recorded arrivals, time-sorted (stable, so same-time
// arrivals keep their recording order).
func (c *Capture) Snapshot() []Arrival {
	c.mu.Lock()
	out := make([]Arrival, len(c.arrivals))
	copy(out, c.arrivals)
	c.mu.Unlock()
	sort.SliceStable(out, func(i, j int) bool { return out[i].Time < out[j].Time })
	return out
}
