package trace

import (
	"bytes"
	"math"
	"reflect"
	"sort"
	"strings"
	"testing"

	"abacus/internal/dnn"
)

func models() []dnn.ModelID { return []dnn.ModelID{dnn.ResNet50, dnn.Bert} }

func TestPoissonArrivalsSortedAndInRange(t *testing.T) {
	g := NewGenerator(models(), 1)
	arr := g.Poisson(100, 10_000)
	if !sort.SliceIsSorted(arr, func(i, j int) bool { return arr[i].Time < arr[j].Time }) {
		t.Error("arrivals not time-sorted")
	}
	for _, a := range arr {
		if a.Time < 0 || a.Time >= 10_000 {
			t.Fatalf("arrival at %v outside [0, 10000)", a.Time)
		}
		if a.Service < 0 || a.Service >= 2 {
			t.Fatalf("service %d out of range", a.Service)
		}
	}
}

func TestPoissonRateApproximation(t *testing.T) {
	g := NewGenerator(models(), 2)
	const qps, durMS = 200.0, 60_000.0
	arr := g.Poisson(qps, durMS)
	want := qps * durMS / 1000
	got := float64(len(arr))
	if math.Abs(got-want)/want > 0.1 {
		t.Errorf("got %v arrivals, want ≈ %v (±10%%)", got, want)
	}
}

func TestPoissonInterArrivalStats(t *testing.T) {
	g := NewGenerator(models(), 3)
	arr := g.Poisson(500, 120_000)
	var gaps []float64
	for i := 1; i < len(arr); i++ {
		gaps = append(gaps, arr[i].Time-arr[i-1].Time)
	}
	var mean float64
	for _, v := range gaps {
		mean += v
	}
	mean /= float64(len(gaps))
	// Exponential gaps: mean ≈ 2ms, stddev ≈ mean.
	var ss float64
	for _, v := range gaps {
		ss += (v - mean) * (v - mean)
	}
	std := math.Sqrt(ss / float64(len(gaps)))
	if math.Abs(mean-2)/2 > 0.1 {
		t.Errorf("mean gap %v, want ≈ 2ms", mean)
	}
	if math.Abs(std-mean)/mean > 0.15 {
		t.Errorf("gap stddev %v vs mean %v; exponential requires ≈ equal", std, mean)
	}
}

func TestRandomInputsRespectDomains(t *testing.T) {
	g := NewGenerator(models(), 4)
	arr := g.Poisson(500, 20_000)
	validBatch := map[int]bool{4: true, 8: true, 16: true, 32: true}
	validSeq := map[int]bool{8: true, 16: true, 32: true, 64: true}
	sawBert := false
	for _, a := range arr {
		if !validBatch[a.Input.Batch] {
			t.Fatalf("batch %d invalid", a.Input.Batch)
		}
		if a.Service == 1 { // Bert
			sawBert = true
			if !validSeq[a.Input.SeqLen] {
				t.Fatalf("seqlen %d invalid", a.Input.SeqLen)
			}
		} else if a.Input.SeqLen != 0 {
			t.Fatalf("CV model with seqlen %d", a.Input.SeqLen)
		}
	}
	if !sawBert {
		t.Error("no Bert arrivals in 10k samples (suspicious)")
	}
}

func TestGeneratorDeterministic(t *testing.T) {
	a := NewGenerator(models(), 7).Poisson(100, 5000)
	b := NewGenerator(models(), 7).Poisson(100, 5000)
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("arrival %d differs", i)
		}
	}
	c := NewGenerator(models(), 8).Poisson(100, 5000)
	if len(a) == len(c) {
		same := true
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
		if same {
			t.Error("different seeds produced identical traces")
		}
	}
}

func TestFixedInput(t *testing.T) {
	g := NewGenerator(models(), 5)
	arr := g.FixedInput(100, 5000, func(svc int) dnn.Input {
		return dnn.Get(models()[svc]).MinInput()
	})
	for _, a := range arr {
		if a.Input.Batch != 4 {
			t.Fatalf("batch %d, want 4", a.Input.Batch)
		}
	}
}

func TestPoissonPanics(t *testing.T) {
	g := NewGenerator(models(), 1)
	for _, fn := range []func(){
		func() { g.Poisson(0, 100) },
		func() { g.Poisson(10, 0) },
		func() { NewGenerator(nil, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("did not panic")
				}
			}()
			fn()
		}()
	}
}

func TestMAFTraceShape(t *testing.T) {
	g := NewGenerator(models(), 6)
	cfg := DefaultMAFConfig(100, 30*60_000, 6) // 30 minutes
	arr := g.MAF(cfg)
	if len(arr) == 0 {
		t.Fatal("empty MAF trace")
	}
	if !sort.SliceIsSorted(arr, func(i, j int) bool { return arr[i].Time < arr[j].Time }) {
		t.Error("MAF arrivals not sorted")
	}
	// Per-minute rates must vary (diurnal + bursts): compare the busiest
	// and quietest minutes.
	perMin := map[int]int{}
	for _, a := range arr {
		perMin[int(a.Time/60_000)]++
	}
	lo, hi := math.MaxInt32, 0
	for _, n := range perMin {
		if n < lo {
			lo = n
		}
		if n > hi {
			hi = n
		}
	}
	if float64(hi) < 1.2*float64(lo) {
		t.Errorf("MAF trace too flat: min %d, max %d per minute", lo, hi)
	}
	// Mean rate within 25% of base.
	mean := float64(len(arr)) / (cfg.DurationMS / 1000)
	if math.Abs(mean-cfg.BaseQPS)/cfg.BaseQPS > 0.25 {
		t.Errorf("mean rate %v, want ≈ %v", mean, cfg.BaseQPS)
	}
}

func TestMAFPanics(t *testing.T) {
	g := NewGenerator(models(), 1)
	defer func() {
		if recover() == nil {
			t.Error("did not panic")
		}
	}()
	g.MAF(MAFConfig{BaseQPS: 0, DurationMS: 100})
}

func TestCSVRoundTrip(t *testing.T) {
	g := NewGenerator(models(), 9)
	arrivals := g.Poisson(80, 5000)
	var buf bytes.Buffer
	if err := WriteCSV(&buf, arrivals); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(arrivals) {
		t.Fatalf("round trip %d != %d arrivals", len(got), len(arrivals))
	}
	for i := range arrivals {
		if got[i] != arrivals[i] {
			t.Fatalf("arrival %d: %+v != %+v", i, got[i], arrivals[i])
		}
	}
}

func TestReadCSVRejectsCorrupt(t *testing.T) {
	cases := map[string]string{
		"empty":        "",
		"bad-header":   "a,b,c,d\n",
		"bad-number":   "time_ms,service,batch,seqlen\nxx,0,4,0\n",
		"neg-time":     "time_ms,service,batch,seqlen\n-5,0,4,0\n",
		"bad-service":  "time_ms,service,batch,seqlen\n1,9,4,0\n",
		"zero-batch":   "time_ms,service,batch,seqlen\n1,0,0,0\n",
		"short-fields": "time_ms,service,batch,seqlen\n1,0\n",
	}
	for name, body := range cases {
		t.Run(name, func(t *testing.T) {
			if _, err := ReadCSV(strings.NewReader(body), 2); err == nil {
				t.Error("corrupt trace accepted")
			}
		})
	}
}

func TestReadCSVSortsByTime(t *testing.T) {
	body := "time_ms,service,batch,seqlen\n5,0,4,0\n1,0,8,0\n3,1,4,8\n"
	got, err := ReadCSV(strings.NewReader(body), 2)
	if err != nil {
		t.Fatal(err)
	}
	if !sort.SliceIsSorted(got, func(i, j int) bool { return got[i].Time < got[j].Time }) {
		t.Errorf("not sorted: %+v", got)
	}
}

func TestStreamMatchesPoissonPrefix(t *testing.T) {
	batch := NewGenerator(models(), 42).Poisson(80, 5_000)
	next := NewGenerator(models(), 42).Stream(80)
	for i, want := range batch {
		got := next()
		if got != want {
			t.Fatalf("stream arrival %d = %+v, want %+v", i, got, want)
		}
	}
	if a := next(); a.Time < 5_000 {
		t.Errorf("arrival after the batch prefix at %v, want >= 5000", a.Time)
	}
}

// TestMAFBurstKnobOrthogonal pins the stream split: the burst coin draws
// from its own derived stream, so toggling BurstProb must leave every
// non-burst minute's arrivals byte-identical.
func TestMAFBurstKnobOrthogonal(t *testing.T) {
	base := DefaultMAFConfig(100, 20*60_000, 6)
	quiet := base
	quiet.BurstProb = 0
	bursty := NewGenerator(models(), 6).MAF(base)
	calm := NewGenerator(models(), 6).MAF(quiet)

	burstMinutes := map[int]bool{}
	for m := 0; m < 20; m++ {
		if coinAt(base.Seed, m) < base.BurstProb {
			burstMinutes[m] = true
		}
	}
	if len(burstMinutes) == 0 {
		t.Skip("no burst minutes at this seed; pick another")
	}
	perMinute := func(arr []Arrival) map[int][]Arrival {
		out := map[int][]Arrival{}
		for _, a := range arr {
			m := int(a.Time / 60_000)
			out[m] = append(out[m], a)
		}
		return out
	}
	bm, cm := perMinute(bursty), perMinute(calm)
	for m := 0; m < 20; m++ {
		if burstMinutes[m] {
			if len(bm[m]) <= len(cm[m]) {
				t.Errorf("burst minute %d not denser: %d vs %d arrivals", m, len(bm[m]), len(cm[m]))
			}
			continue
		}
		if !reflect.DeepEqual(bm[m], cm[m]) {
			t.Errorf("non-burst minute %d differs when only BurstProb changed", m)
		}
	}
}

// TestMAFPureFunction: the default layout never touches the generator's own
// RNG, so MAF output is independent of what was drawn before it.
func TestMAFPureFunction(t *testing.T) {
	cfg := DefaultMAFConfig(80, 10*60_000, 11)
	fresh := NewGenerator(models(), 11).MAF(cfg)
	warmed := NewGenerator(models(), 11)
	warmed.Poisson(50, 2_000) // consume some of the generator's stream
	if !reflect.DeepEqual(fresh, warmed.MAF(cfg)) {
		t.Fatal("MAF output depends on prior generator draws")
	}
	// And MAF leaves the generator stream untouched for later use.
	a := NewGenerator(models(), 11)
	a.MAF(cfg)
	if !reflect.DeepEqual(a.Poisson(50, 2_000), NewGenerator(models(), 11).Poisson(50, 2_000)) {
		t.Fatal("MAF consumed the generator's own RNG stream")
	}
}

// TestMAFLegacyEntangled documents why Legacy exists: the old single-stream
// layout entangles the burst coin with arrival draws.
func TestMAFLegacyEntangled(t *testing.T) {
	cfg := DefaultMAFConfig(100, 20*60_000, 6)
	cfg.Legacy = true
	quiet := cfg
	quiet.BurstProb = 0
	a := NewGenerator(models(), 6).MAF(cfg)
	b := NewGenerator(models(), 6).MAF(quiet)
	if reflect.DeepEqual(a, b) {
		t.Fatal("legacy traces identical despite different BurstProb; expected entanglement")
	}
	// Legacy stays deterministic.
	if !reflect.DeepEqual(a, NewGenerator(models(), 6).MAF(cfg)) {
		t.Fatal("legacy MAF not deterministic")
	}
}

func TestSliceSourceAndCollect(t *testing.T) {
	arr := NewGenerator(models(), 3).Poisson(50, 2_000)
	got := Collect(NewSliceSource(arr), 0)
	if !reflect.DeepEqual(got, arr) {
		t.Fatal("SliceSource round trip differs")
	}
	if got := Collect(NewSliceSource(arr), 5); len(got) != 5 || !reflect.DeepEqual(got, arr[:5]) {
		t.Fatal("Collect max bound broken")
	}
}

func TestStreamSourceBounds(t *testing.T) {
	g := NewGenerator(models(), 42)
	src := StreamSource(g.Stream(80), 5_000)
	got := Collect(src, 0)
	want := NewGenerator(models(), 42).Poisson(80, 5_000)
	if !reflect.DeepEqual(got, want) {
		t.Fatal("StreamSource-bounded stream differs from Poisson batch")
	}
	if _, ok := src.Next(); ok {
		t.Fatal("source yielded past its duration")
	}
}

func TestCaptureSortsSnapshots(t *testing.T) {
	c := NewCapture()
	c.Record(Arrival{Time: 5, Service: 1})
	c.Record(Arrival{Time: 2, Service: 0})
	c.Record(Arrival{Time: 5, Service: 0}) // same time: recording order kept
	if c.Len() != 3 {
		t.Fatalf("Len = %d, want 3", c.Len())
	}
	snap := c.Snapshot()
	if snap[0].Time != 2 || snap[1] != (Arrival{Time: 5, Service: 1}) || snap[2] != (Arrival{Time: 5, Service: 0}) {
		t.Fatalf("snapshot order wrong: %+v", snap)
	}
}
