// Package trace generates the workloads of the paper's evaluation: Poisson
// query arrivals with randomized inputs (the MLPerf-style load generator of
// §7.1) and a synthetic Microsoft-Azure-Functions-like trace with diurnal
// drift and bursts for the cluster experiment (§7.6).
package trace

import (
	"math"
	"math/rand"

	"abacus/internal/dnn"
)

// Arrival is one generated query arrival.
type Arrival struct {
	Time    float64 // ms since trace start
	Service int     // index into the deployment's service list
	Input   dnn.Input
}

// Generator draws arrivals for a set of co-located services.
type Generator struct {
	rng    *rand.Rand
	models []dnn.ModelID
}

// NewGenerator returns a deterministic generator for the given services.
func NewGenerator(models []dnn.ModelID, seed int64) *Generator {
	if len(models) == 0 {
		panic("trace: no services")
	}
	return &Generator{rng: rand.New(rand.NewSource(seed)), models: models}
}

// randomInput draws a query input per Table 1: batch uniform over
// {4,8,16,32}; sequence length uniform over {8,16,32,64} for sequence
// models.
func (g *Generator) randomInput(service int) dnn.Input {
	m := dnn.Get(g.models[service])
	batches := dnn.Batches()
	in := dnn.Input{Batch: batches[g.rng.Intn(len(batches))]}
	if m.IsSequence() {
		in.SeqLen = m.SeqLens[g.rng.Intn(len(m.SeqLens))]
	}
	return in
}

// FixedInput returns arrivals that all use the given input (used by the
// small-DNN experiment, which pins the minimum input).
func (g *Generator) FixedInput(totalQPS float64, durationMS float64, in func(service int) dnn.Input) []Arrival {
	return g.poisson(totalQPS, durationMS, in)
}

// Poisson generates arrivals over [0, durationMS) at totalQPS queries per
// second aggregated across all services; each arrival picks a uniformly
// random service and a random input. Returned arrivals are time-sorted.
func (g *Generator) Poisson(totalQPS float64, durationMS float64) []Arrival {
	return g.poisson(totalQPS, durationMS, g.randomInput)
}

func (g *Generator) poisson(totalQPS, durationMS float64, input func(int) dnn.Input) []Arrival {
	if totalQPS <= 0 || durationMS <= 0 {
		panic("trace: non-positive rate or duration")
	}
	ratePerMS := totalQPS / 1000
	var out []Arrival
	t := g.exp(ratePerMS)
	for t < durationMS {
		svc := g.rng.Intn(len(g.models))
		out = append(out, Arrival{Time: t, Service: svc, Input: input(svc)})
		t += g.exp(ratePerMS)
	}
	return out
}

// exp draws an exponential inter-arrival gap for the given rate (events per
// ms).
func (g *Generator) exp(ratePerMS float64) float64 {
	return g.rng.ExpFloat64() / ratePerMS
}

// Stream returns a lazy Poisson arrival source at totalQPS aggregated over
// all services: each call yields the next arrival, with times growing
// without bound. The draw order matches Poisson, so for any duration the
// first arrivals of a Stream with the same seed are identical to the
// Poisson slice — the online load generator uses this to replay exactly the
// workload the offline simulator predicts.
func (g *Generator) Stream(totalQPS float64) func() Arrival {
	if totalQPS <= 0 {
		panic("trace: non-positive rate")
	}
	ratePerMS := totalQPS / 1000
	t := 0.0
	return func() Arrival {
		t += g.exp(ratePerMS)
		svc := g.rng.Intn(len(g.models))
		return Arrival{Time: t, Service: svc, Input: g.randomInput(svc)}
	}
}

// MAFConfig shapes the synthetic Azure-Functions-like trace.
type MAFConfig struct {
	// BaseQPS is the mean offered load.
	BaseQPS float64
	// DurationMS is the trace length (the paper replays 2 hours).
	DurationMS float64
	// DiurnalAmplitude is the relative swing of the slow sinusoid (0..1).
	DiurnalAmplitude float64
	// BurstProb is the per-minute probability of a load burst.
	BurstProb float64
	// BurstFactor multiplies the rate during a burst minute.
	BurstFactor float64
	// Seed drives all randomness.
	Seed int64
}

// DefaultMAFConfig returns the shape used by the Figure 22 reproduction.
func DefaultMAFConfig(baseQPS, durationMS float64, seed int64) MAFConfig {
	return MAFConfig{
		BaseQPS:          baseQPS,
		DurationMS:       durationMS,
		DiurnalAmplitude: 0.25,
		BurstProb:        0.08,
		BurstFactor:      1.6,
		Seed:             seed,
	}
}

// MAF synthesizes a Microsoft-Azure-Functions-like arrival trace: per-minute
// rates follow a diurnal sinusoid with random bursts; arrivals within a
// minute are Poisson. The real MAF trace is proprietary production data; see
// DESIGN.md for the substitution rationale.
func (g *Generator) MAF(cfg MAFConfig) []Arrival {
	if cfg.BaseQPS <= 0 || cfg.DurationMS <= 0 {
		panic("trace: non-positive MAF rate or duration")
	}
	const minuteMS = 60_000
	var out []Arrival
	for start := 0.0; start < cfg.DurationMS; start += minuteMS {
		end := start + minuteMS
		if end > cfg.DurationMS {
			end = cfg.DurationMS
		}
		phase := 2 * math.Pi * start / cfg.DurationMS
		rate := cfg.BaseQPS * (1 + cfg.DiurnalAmplitude*math.Sin(phase))
		if g.rng.Float64() < cfg.BurstProb {
			rate *= cfg.BurstFactor
		}
		ratePerMS := rate / 1000
		t := start + g.exp(ratePerMS)
		for t < end {
			svc := g.rng.Intn(len(g.models))
			out = append(out, Arrival{Time: t, Service: svc, Input: g.randomInput(svc)})
			t += g.exp(ratePerMS)
		}
	}
	return out
}
