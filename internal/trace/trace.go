// Package trace generates the workloads of the paper's evaluation: Poisson
// query arrivals with randomized inputs (the MLPerf-style load generator of
// §7.1) and a synthetic Microsoft-Azure-Functions-like trace with diurnal
// drift and bursts for the cluster experiment (§7.6).
package trace

import (
	"math"
	"math/rand"

	"abacus/internal/dnn"
)

// Arrival is one generated query arrival.
type Arrival struct {
	Time    float64 // ms since trace start
	Service int     // index into the deployment's service list
	Input   dnn.Input
}

// Generator draws arrivals for a set of co-located services.
type Generator struct {
	rng    *rand.Rand
	models []dnn.ModelID
}

// NewGenerator returns a deterministic generator for the given services.
func NewGenerator(models []dnn.ModelID, seed int64) *Generator {
	if len(models) == 0 {
		panic("trace: no services")
	}
	return &Generator{rng: rand.New(rand.NewSource(seed)), models: models}
}

// randomInput draws a query input per Table 1: batch uniform over
// {4,8,16,32}; sequence length uniform over {8,16,32,64} for sequence
// models.
func (g *Generator) randomInput(service int) dnn.Input {
	return randomInput(g.rng, g.models, service)
}

func randomInput(rng *rand.Rand, models []dnn.ModelID, service int) dnn.Input {
	m := dnn.Get(models[service])
	batches := dnn.Batches()
	in := dnn.Input{Batch: batches[rng.Intn(len(batches))]}
	if m.IsSequence() {
		in.SeqLen = m.SeqLens[rng.Intn(len(m.SeqLens))]
	}
	return in
}

// FixedInput returns arrivals that all use the given input (used by the
// small-DNN experiment, which pins the minimum input).
func (g *Generator) FixedInput(totalQPS float64, durationMS float64, in func(service int) dnn.Input) []Arrival {
	return g.poisson(totalQPS, durationMS, in)
}

// Poisson generates arrivals over [0, durationMS) at totalQPS queries per
// second aggregated across all services; each arrival picks a uniformly
// random service and a random input. Returned arrivals are time-sorted.
func (g *Generator) Poisson(totalQPS float64, durationMS float64) []Arrival {
	return g.poisson(totalQPS, durationMS, g.randomInput)
}

func (g *Generator) poisson(totalQPS, durationMS float64, input func(int) dnn.Input) []Arrival {
	if totalQPS <= 0 || durationMS <= 0 {
		panic("trace: non-positive rate or duration")
	}
	ratePerMS := totalQPS / 1000
	var out []Arrival
	t := g.exp(ratePerMS)
	for t < durationMS {
		svc := g.rng.Intn(len(g.models))
		out = append(out, Arrival{Time: t, Service: svc, Input: input(svc)})
		t += g.exp(ratePerMS)
	}
	return out
}

// exp draws an exponential inter-arrival gap for the given rate (events per
// ms).
func (g *Generator) exp(ratePerMS float64) float64 {
	return g.rng.ExpFloat64() / ratePerMS
}

// Stream returns a lazy Poisson arrival source at totalQPS aggregated over
// all services: each call yields the next arrival, with times growing
// without bound. The draw order matches Poisson, so for any duration the
// first arrivals of a Stream with the same seed are identical to the
// Poisson slice — the online load generator uses this to replay exactly the
// workload the offline simulator predicts.
func (g *Generator) Stream(totalQPS float64) func() Arrival {
	if totalQPS <= 0 {
		panic("trace: non-positive rate")
	}
	ratePerMS := totalQPS / 1000
	t := 0.0
	return func() Arrival {
		t += g.exp(ratePerMS)
		svc := g.rng.Intn(len(g.models))
		return Arrival{Time: t, Service: svc, Input: g.randomInput(svc)}
	}
}

// MAFConfig shapes the synthetic Azure-Functions-like trace.
type MAFConfig struct {
	// BaseQPS is the mean offered load.
	BaseQPS float64
	// DurationMS is the trace length (the paper replays 2 hours).
	DurationMS float64
	// DiurnalAmplitude is the relative swing of the slow sinusoid (0..1).
	DiurnalAmplitude float64
	// BurstProb is the per-minute probability of a load burst.
	BurstProb float64
	// BurstFactor multiplies the rate during a burst minute.
	BurstFactor float64
	// Seed drives all randomness.
	Seed int64
	// Legacy reproduces the original single-stream layout, where the
	// per-minute burst coin, arrival gaps, and input draws all consumed the
	// generator's one RNG. In that layout the config knobs are entangled:
	// changing BurstProb shifts every later arrival draw, so two traces
	// differing only in burstiness differ everywhere. The default layout
	// derives an independent stream per minute plus a dedicated burst-coin
	// stream, making every knob orthogonal. Keep Legacy only to reproduce
	// trace bytes from before the split.
	Legacy bool
}

// DefaultMAFConfig returns the shape used by the Figure 22 reproduction.
func DefaultMAFConfig(baseQPS, durationMS float64, seed int64) MAFConfig {
	return MAFConfig{
		BaseQPS:          baseQPS,
		DurationMS:       durationMS,
		DiurnalAmplitude: 0.25,
		BurstProb:        0.08,
		BurstFactor:      1.6,
		Seed:             seed,
	}
}

// MAF synthesizes a Microsoft-Azure-Functions-like arrival trace: per-minute
// rates follow a diurnal sinusoid with random bursts; arrivals within a
// minute are Poisson. The real MAF trace is proprietary production data; see
// DESIGN.md for the substitution rationale.
//
// Randomness layout (unless cfg.Legacy): each minute's arrivals come from an
// RNG derived purely from (Seed, minute), and the burst coin for minute m is
// derived from (Seed, burst salt, m) — three independent stream families. So
// toggling BurstProb leaves every non-burst minute byte-identical, and the
// generator's own RNG state is untouched (MAF output is a pure function of
// cfg, whatever was drawn before).
func (g *Generator) MAF(cfg MAFConfig) []Arrival {
	if cfg.BaseQPS <= 0 || cfg.DurationMS <= 0 {
		panic("trace: non-positive MAF rate or duration")
	}
	const minuteMS = 60_000
	var out []Arrival
	minute := 0
	for start := 0.0; start < cfg.DurationMS; start += minuteMS {
		end := start + minuteMS
		if end > cfg.DurationMS {
			end = cfg.DurationMS
		}
		phase := 2 * math.Pi * start / cfg.DurationMS
		rate := cfg.BaseQPS * (1 + cfg.DiurnalAmplitude*math.Sin(phase))
		var coin float64
		var mrng *rand.Rand
		if cfg.Legacy {
			coin = g.rng.Float64()
			mrng = g.rng
		} else {
			coin = coinAt(cfg.Seed, minute)
			mrng = rand.New(rand.NewSource(int64(subStream(cfg.Seed, saltMAFMinute, uint64(minute)))))
		}
		if coin < cfg.BurstProb {
			rate *= cfg.BurstFactor
		}
		ratePerMS := rate / 1000
		t := start + mrng.ExpFloat64()/ratePerMS
		for t < end {
			svc := mrng.Intn(len(g.models))
			out = append(out, Arrival{Time: t, Service: svc, Input: randomInput(mrng, g.models, svc)})
			t += mrng.ExpFloat64() / ratePerMS
		}
		minute++
	}
	return out
}

// Stream-family salts for the MAF derivation.
const (
	saltMAFMinute = 0x4d
	saltMAFBurst  = 0xb5
)

// coinAt is minute m's burst coin: a uniform in [0, 1) from the dedicated
// burst stream.
func coinAt(seed int64, minute int) float64 {
	return float64(subStream(seed, saltMAFBurst, uint64(minute))>>11) / (1 << 53)
}

// subStream derives an independent stream seed from a root seed and a salt
// path by splitmix64 finalizer mixing (same construction as
// workload.SubSeed; duplicated here because workload imports trace).
func subStream(seed int64, salts ...uint64) uint64 {
	x := mix64(uint64(seed) ^ 0xabcd_ef01_2345_6789)
	for _, s := range salts {
		x = mix64(x ^ (s+0x9e3779b97f4a7c15)*0xbf58476d1ce4e5b9)
	}
	return x
}

// mix64 is the splitmix64 finalizer.
func mix64(x uint64) uint64 {
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
