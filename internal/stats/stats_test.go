package stats

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestMean(t *testing.T) {
	cases := []struct {
		name string
		in   []float64
		want float64
	}{
		{"empty", nil, 0},
		{"single", []float64{5}, 5},
		{"pair", []float64{2, 4}, 3},
		{"negatives", []float64{-1, 1, -3, 3}, 0},
		{"fractions", []float64{0.5, 1.5, 2.5}, 1.5},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if got := Mean(c.in); !almostEqual(got, c.want, 1e-12) {
				t.Errorf("Mean(%v) = %v, want %v", c.in, got, c.want)
			}
		})
	}
}

func TestStdDev(t *testing.T) {
	cases := []struct {
		name string
		in   []float64
		want float64
	}{
		{"empty", nil, 0},
		{"single", []float64{3}, 0},
		{"constant", []float64{2, 2, 2, 2}, 0},
		{"simple", []float64{1, 3}, 1},
		{"known", []float64{2, 4, 4, 4, 5, 5, 7, 9}, 2},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if got := StdDev(c.in); !almostEqual(got, c.want, 1e-12) {
				t.Errorf("StdDev(%v) = %v, want %v", c.in, got, c.want)
			}
		})
	}
}

func TestMinMaxSum(t *testing.T) {
	xs := []float64{3, -1, 4, 1.5, 9, -2.6}
	if got := Min(xs); got != -2.6 {
		t.Errorf("Min = %v, want -2.6", got)
	}
	if got := Max(xs); got != 9 {
		t.Errorf("Max = %v, want 9", got)
	}
	if got := Sum(xs); !almostEqual(got, 13.9, 1e-12) {
		t.Errorf("Sum = %v, want 13.9", got)
	}
}

func TestMinMaxPanicOnEmpty(t *testing.T) {
	for name, fn := range map[string]func([]float64) float64{"Min": Min, "Max": Max} {
		t.Run(name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Errorf("%s(nil) did not panic", name)
				}
			}()
			fn(nil)
		})
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{15, 20, 35, 40, 50}
	cases := []struct {
		p    float64
		want float64
	}{
		{0, 15},
		{25, 20},
		{50, 35},
		{75, 40},
		{100, 50},
		{90, 46}, // interpolated: rank 3.6 between 40 and 50
	}
	for _, c := range cases {
		if got := Percentile(xs, c.p); !almostEqual(got, c.want, 1e-9) {
			t.Errorf("Percentile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestPercentileSingleElement(t *testing.T) {
	for _, p := range []float64{0, 50, 99, 100} {
		if got := Percentile([]float64{7}, p); got != 7 {
			t.Errorf("Percentile([7], %v) = %v, want 7", p, got)
		}
	}
}

func TestPercentileDoesNotMutateInput(t *testing.T) {
	xs := []float64{3, 1, 2}
	Percentile(xs, 50)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Errorf("input mutated: %v", xs)
	}
}

func TestPercentilePanics(t *testing.T) {
	cases := []struct {
		name string
		fn   func()
	}{
		{"empty", func() { Percentile(nil, 50) }},
		{"negative-p", func() { Percentile([]float64{1}, -1) }},
		{"over-100", func() { Percentile([]float64{1}, 101) }},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Error("did not panic")
				}
			}()
			c.fn()
		})
	}
}

func TestPercentilesMatchesPercentile(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	xs := make([]float64, 100)
	for i := range xs {
		xs[i] = rng.NormFloat64() * 10
	}
	ps := []float64{0, 10, 50, 90, 99, 100}
	got := Percentiles(xs, ps...)
	for i, p := range ps {
		if want := Percentile(xs, p); got[i] != want {
			t.Errorf("Percentiles[%v] = %v, want %v", p, got[i], want)
		}
	}
}

// Property: percentile is monotone in p and bounded by [min, max].
func TestPercentileProperties(t *testing.T) {
	f := func(raw []float64, p1, p2 uint8) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				v = 0
			}
			xs[i] = v
		}
		a := float64(p1) / 255 * 100
		b := float64(p2) / 255 * 100
		if a > b {
			a, b = b, a
		}
		va, vb := Percentile(xs, a), Percentile(xs, b)
		return va <= vb+1e-9 && va >= Min(xs)-1e-9 && vb <= Max(xs)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestCDF(t *testing.T) {
	got := CDF([]float64{3, 1, 3, 2})
	want := []CDFPoint{{1, 0.25}, {2, 0.5}, {3, 1.0}}
	if len(got) != len(want) {
		t.Fatalf("CDF = %v, want %v", got, want)
	}
	for i := range want {
		if got[i].Value != want[i].Value || !almostEqual(got[i].Frac, want[i].Frac, 1e-12) {
			t.Errorf("CDF[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	if CDF(nil) != nil {
		t.Error("CDF(nil) should be nil")
	}
}

// Property: CDF values strictly increase, fractions strictly increase to 1.
func TestCDFProperties(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				xs = append(xs, v)
			}
		}
		pts := CDF(xs)
		if len(xs) == 0 {
			return pts == nil
		}
		for i := 1; i < len(pts); i++ {
			if pts[i].Value <= pts[i-1].Value || pts[i].Frac <= pts[i-1].Frac {
				return false
			}
		}
		return almostEqual(pts[len(pts)-1].Frac, 1, 1e-12)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestMAPE(t *testing.T) {
	cases := []struct {
		name      string
		pred, act []float64
		want      float64
	}{
		{"perfect", []float64{1, 2, 3}, []float64{1, 2, 3}, 0},
		{"ten-percent", []float64{1.1, 2.2}, []float64{1, 2}, 0.1},
		{"skips-zero-actual", []float64{5, 1.1}, []float64{0, 1}, 0.1},
		{"empty", nil, nil, 0},
		{"all-zero-actual", []float64{1}, []float64{0}, 0},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if got := MAPE(c.pred, c.act); !almostEqual(got, c.want, 1e-9) {
				t.Errorf("MAPE = %v, want %v", got, c.want)
			}
		})
	}
}

func TestMAPELengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("did not panic")
		}
	}()
	MAPE([]float64{1}, []float64{1, 2})
}

func TestMAEAndRMSE(t *testing.T) {
	pred := []float64{1, 2, 3}
	act := []float64{2, 2, 5}
	if got := MAE(pred, act); !almostEqual(got, 1, 1e-12) {
		t.Errorf("MAE = %v, want 1", got)
	}
	if got := RMSE(pred, act); !almostEqual(got, math.Sqrt(5.0/3.0), 1e-12) {
		t.Errorf("RMSE = %v, want sqrt(5/3)", got)
	}
	if MAE(nil, nil) != 0 || RMSE(nil, nil) != 0 {
		t.Error("empty MAE/RMSE should be 0")
	}
}

func TestHistogram(t *testing.T) {
	xs := []float64{0, 0.5, 1, 1.5, 2, 5, -1}
	got := Histogram(xs, 4, 0, 2)
	// buckets: [0,0.5) [0.5,1) [1,1.5) [1.5,2]; 5 and -1 out of range.
	want := []int{1, 1, 1, 2}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("Histogram[%d] = %d, want %d (full: %v)", i, got[i], want[i], got)
		}
	}
}

func TestHistogramInvalidPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("did not panic")
		}
	}()
	Histogram([]float64{1}, 0, 0, 1)
}

// Property: Mean is bounded by [Min, Max] and sorting does not change it.
func TestMeanProperties(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) && math.Abs(v) < 1e12 {
				xs = append(xs, v)
			}
		}
		if len(xs) == 0 {
			return true
		}
		m := Mean(xs)
		sorted := append([]float64(nil), xs...)
		sort.Float64s(sorted)
		return m >= Min(xs)-1e-6 && m <= Max(xs)+1e-6 && almostEqual(m, Mean(sorted), 1e-6)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
