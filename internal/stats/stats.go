// Package stats provides the small statistics toolkit used throughout the
// Abacus reproduction: percentiles, CDFs, dispersion measures, and the
// prediction-error metrics from the paper (mean absolute percentage error,
// Equation 1).
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// StdDev returns the population standard deviation of xs, or 0 when
// len(xs) < 2.
func StdDev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(xs)))
}

// Min returns the smallest element of xs. It panics on an empty slice.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		panic("stats: Min of empty slice")
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the largest element of xs. It panics on an empty slice.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		panic("stats: Max of empty slice")
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Sum returns the sum of xs.
func Sum(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s
}

// Percentile returns the p-th percentile (0 <= p <= 100) of xs using linear
// interpolation between closest ranks. It panics if xs is empty or p is out
// of range. The input is not modified.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		panic("stats: Percentile of empty slice")
	}
	if p < 0 || p > 100 {
		panic(fmt.Sprintf("stats: percentile %v out of range [0,100]", p))
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	return percentileSorted(sorted, p)
}

// percentileSorted computes a percentile over an already-sorted slice.
func percentileSorted(sorted []float64, p float64) float64 {
	if len(sorted) == 1 {
		return sorted[0]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Percentiles returns multiple percentiles of xs with a single sort.
func Percentiles(xs []float64, ps ...float64) []float64 {
	if len(xs) == 0 {
		panic("stats: Percentiles of empty slice")
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	out := make([]float64, len(ps))
	for i, p := range ps {
		if p < 0 || p > 100 {
			panic(fmt.Sprintf("stats: percentile %v out of range [0,100]", p))
		}
		out[i] = percentileSorted(sorted, p)
	}
	return out
}

// CDFPoint is one point of an empirical cumulative distribution function.
type CDFPoint struct {
	Value float64 // sample value
	Frac  float64 // fraction of samples <= Value, in (0, 1]
}

// CDF returns the empirical CDF of xs as (value, fraction) pairs sorted by
// value. Duplicate values are collapsed to their highest fraction.
func CDF(xs []float64) []CDFPoint {
	if len(xs) == 0 {
		return nil
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	n := float64(len(sorted))
	var out []CDFPoint
	for i, v := range sorted {
		f := float64(i+1) / n
		if len(out) > 0 && out[len(out)-1].Value == v {
			out[len(out)-1].Frac = f
			continue
		}
		out = append(out, CDFPoint{Value: v, Frac: f})
	}
	return out
}

// MAPE returns the mean absolute percentage error between predictions and
// ground-truth values (paper Equation 1), expressed as a fraction (0.05 means
// 5% error). Pairs with a zero true value are skipped. It panics if the
// slices differ in length.
func MAPE(predicted, actual []float64) float64 {
	if len(predicted) != len(actual) {
		panic("stats: MAPE length mismatch")
	}
	var s float64
	var n int
	for i := range predicted {
		if actual[i] == 0 {
			continue
		}
		s += math.Abs(predicted[i]-actual[i]) / math.Abs(actual[i])
		n++
	}
	if n == 0 {
		return 0
	}
	return s / float64(n)
}

// MAE returns the mean absolute error between predictions and ground truth.
func MAE(predicted, actual []float64) float64 {
	if len(predicted) != len(actual) {
		panic("stats: MAE length mismatch")
	}
	if len(predicted) == 0 {
		return 0
	}
	var s float64
	for i := range predicted {
		s += math.Abs(predicted[i] - actual[i])
	}
	return s / float64(len(predicted))
}

// RMSE returns the root mean squared error between predictions and ground
// truth.
func RMSE(predicted, actual []float64) float64 {
	if len(predicted) != len(actual) {
		panic("stats: RMSE length mismatch")
	}
	if len(predicted) == 0 {
		return 0
	}
	var s float64
	for i := range predicted {
		d := predicted[i] - actual[i]
		s += d * d
	}
	return math.Sqrt(s / float64(len(predicted)))
}

// Histogram bins xs into n equal-width buckets over [min, max] and returns
// the bucket counts. Values exactly at max land in the last bucket.
func Histogram(xs []float64, n int, min, max float64) []int {
	if n <= 0 || max <= min {
		panic("stats: invalid histogram parameters")
	}
	counts := make([]int, n)
	width := (max - min) / float64(n)
	for _, x := range xs {
		if x < min || x > max {
			continue
		}
		i := int((x - min) / width)
		if i >= n {
			i = n - 1
		}
		counts[i]++
	}
	return counts
}
