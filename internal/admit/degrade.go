// Degraded-mode controller: the recovery half of the chaos story. The
// admission predictor assumes a healthy device and a calibrated model; when
// either assumption breaks (thermal throttling, launch stalls, a mistrained
// predictor), admitted queries start finishing later than predicted long
// before they start missing deadlines. The controller watches exactly that
// early signal — an EWMA of the observed/predicted completion-latency ratio
// — and, when divergence is sustained, enters degraded mode: the admission
// margin widens to the observed ratio (plus headroom), so the gateway sheds
// the load the substrate can no longer carry while the queries it still
// admits keep meeting their deadlines. Hysteresis (enter above one
// threshold, exit below a lower one) keeps the mode from flapping at the
// boundary.
package admit

import "fmt"

// DegradeConfig tunes the degraded-mode controller. The zero value enables
// the controller with the defaults below; set Disabled for a PR-2-style
// gateway that never widens its margin.
type DegradeConfig struct {
	// Disabled pins the margin at 1 and ignores observations.
	Disabled bool
	// Alpha is the EWMA smoothing factor in (0, 1] (default 0.3): higher
	// reacts faster, lower rides out single-query noise.
	Alpha float64
	// EnterRatio is the sustained observed/predicted ratio that triggers
	// degraded mode (default 1.3).
	EnterRatio float64
	// ExitRatio is the ratio below which degraded mode ends (default 1.1);
	// it must not exceed EnterRatio.
	ExitRatio float64
	// MinSamples is the number of completions observed before the
	// controller may act (default 5).
	MinSamples int
	// MarginHeadroom multiplies the observed divergence when deriving the
	// admission margin (default 1.15), buying slack for divergence still
	// growing.
	MarginHeadroom float64
	// MaxMargin caps the admission margin (default 8) so a pathological
	// divergence cannot shed everything forever.
	MaxMargin float64
}

func (c DegradeConfig) withDefaults() DegradeConfig {
	if c.Alpha == 0 {
		c.Alpha = 0.3
	}
	if c.EnterRatio == 0 {
		c.EnterRatio = 1.3
	}
	if c.ExitRatio == 0 {
		c.ExitRatio = 1.1
	}
	if c.MinSamples == 0 {
		c.MinSamples = 5
	}
	if c.MarginHeadroom == 0 {
		c.MarginHeadroom = 1.15
	}
	if c.MaxMargin == 0 {
		c.MaxMargin = 8
	}
	return c
}

func (c DegradeConfig) validate() error {
	switch {
	case c.Alpha <= 0 || c.Alpha > 1:
		return fmt.Errorf("admit: degrade alpha %v outside (0, 1]", c.Alpha)
	case c.EnterRatio <= 1:
		return fmt.Errorf("admit: degrade enter ratio %v must exceed 1", c.EnterRatio)
	case c.ExitRatio <= 0 || c.ExitRatio > c.EnterRatio:
		return fmt.Errorf("admit: degrade exit ratio %v outside (0, enter=%v]", c.ExitRatio, c.EnterRatio)
	case c.MinSamples < 1:
		return fmt.Errorf("admit: degrade min samples %d must be >= 1", c.MinSamples)
	case c.MarginHeadroom < 1:
		return fmt.Errorf("admit: degrade margin headroom %v must be >= 1", c.MarginHeadroom)
	case c.MaxMargin < 1:
		return fmt.Errorf("admit: degrade max margin %v must be >= 1", c.MaxMargin)
	}
	return nil
}

// Degrade tracks predicted-vs-observed divergence. Like the Admitter it is
// single-goroutine state; snapshot it from the owning loop.
type Degrade struct {
	cfg         DegradeConfig
	ewma        float64 // observed/predicted completion-latency ratio
	samples     int64
	active      bool
	transitions int64
	shed        int64 // degraded-mode admission rejections (see Decide)
}

// NewDegrade builds the controller; it panics on an invalid configuration
// (configs come from code or validated flags, so an invalid one is a
// programming error).
func NewDegrade(cfg DegradeConfig) *Degrade {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		panic(err)
	}
	return &Degrade{cfg: cfg}
}

// Observe feeds one finished query's predicted and observed completion
// latency (both arrival-relative, margin-free). Non-positive predictions
// are ignored.
func (d *Degrade) Observe(predictedMS, observedMS float64) {
	if d.cfg.Disabled || predictedMS <= 0 || observedMS < 0 {
		return
	}
	ratio := observedMS / predictedMS
	if d.samples == 0 {
		d.ewma = ratio
	} else {
		d.ewma = d.cfg.Alpha*ratio + (1-d.cfg.Alpha)*d.ewma
	}
	d.samples++
	if d.samples < int64(d.cfg.MinSamples) {
		return
	}
	switch {
	case !d.active && d.ewma >= d.cfg.EnterRatio:
		d.active = true
		d.transitions++
	case d.active && d.ewma <= d.cfg.ExitRatio:
		d.active = false
		d.transitions++
	}
}

// Margin returns the admission safety margin: 1 while healthy, the smoothed
// divergence ratio times the configured headroom (capped) while degraded.
func (d *Degrade) Margin() float64 {
	if !d.active {
		return 1
	}
	m := d.ewma * d.cfg.MarginHeadroom
	if m > d.cfg.MaxMargin {
		m = d.cfg.MaxMargin
	}
	if m < 1 {
		m = 1
	}
	return m
}

// Active reports whether degraded mode is currently engaged.
func (d *Degrade) Active() bool { return d.active }

// Status is a point-in-time snapshot of the controller for /statz, metrics,
// and chaos reports.
type Status struct {
	Active      bool    `json:"active"`
	Transitions int64   `json:"transitions"`
	Divergence  float64 `json:"divergence_ewma"`
	Margin      float64 `json:"margin"`
	Samples     int64   `json:"samples"`
	Shed        int64   `json:"shed"`
}

// Snapshot returns the controller's current state.
func (d *Degrade) Snapshot() Status {
	return Status{
		Active:      d.active,
		Transitions: d.transitions,
		Divergence:  d.ewma,
		Margin:      d.Margin(),
		Samples:     d.samples,
		Shed:        d.shed,
	}
}
