// Degraded-mode controller: the recovery half of the chaos story. The
// admission predictor assumes a healthy device and a calibrated model; when
// either assumption breaks (thermal throttling, launch stalls, a mistrained
// predictor), admitted queries start finishing later than predicted long
// before they start missing deadlines. The controller watches exactly that
// early signal — an EWMA of the observed/predicted completion-latency ratio
// — and, when divergence is sustained, enters degraded mode: the admission
// margin widens to the observed ratio (plus headroom), so the gateway sheds
// the load the substrate can no longer carry while the queries it still
// admits keep meeting their deadlines. Hysteresis (enter at or above one
// threshold, exit strictly below a lower one) keeps the mode from flapping
// at the boundary.
//
// Divergence is tracked per service: a mistrained predictor usually wrongs
// one model, not the deployment, and a single global EWMA would let one
// drifting service widen the margin for — and shed load from — its healthy
// co-located neighbours. Each service carries its own EWMA, hysteresis
// state, and margin; the aggregate Snapshot remains for dashboards that
// want one number.
package admit

import "fmt"

// DegradeConfig tunes the degraded-mode controller. The zero value enables
// the controller with the defaults below; set Disabled for a PR-2-style
// gateway that never widens its margin.
type DegradeConfig struct {
	// Disabled pins every margin at 1 and ignores observations.
	Disabled bool
	// Alpha is the EWMA smoothing factor in (0, 1] (default 0.3): higher
	// reacts faster, lower rides out single-query noise.
	Alpha float64
	// EnterRatio is the sustained observed/predicted ratio that triggers
	// degraded mode (default 1.3).
	EnterRatio float64
	// ExitRatio is the ratio strictly below which degraded mode ends
	// (default 1.1); it must not exceed EnterRatio. The exit comparison is
	// strict so that a divergence pinned exactly at EnterRatio==ExitRatio
	// cannot oscillate between states on alternating samples.
	ExitRatio float64
	// MinSamples is the number of completions a service must report before
	// its controller may act (default 5).
	MinSamples int
	// MarginHeadroom multiplies the observed divergence when deriving the
	// admission margin (default 1.15), buying slack for divergence still
	// growing.
	MarginHeadroom float64
	// MaxMargin caps the admission margin (default 8) so a pathological
	// divergence cannot shed everything forever.
	MaxMargin float64
}

func (c DegradeConfig) withDefaults() DegradeConfig {
	if c.Alpha == 0 {
		c.Alpha = 0.3
	}
	if c.EnterRatio == 0 {
		c.EnterRatio = 1.3
	}
	if c.ExitRatio == 0 {
		c.ExitRatio = 1.1
	}
	if c.MinSamples == 0 {
		c.MinSamples = 5
	}
	if c.MarginHeadroom == 0 {
		c.MarginHeadroom = 1.15
	}
	if c.MaxMargin == 0 {
		c.MaxMargin = 8
	}
	return c
}

func (c DegradeConfig) validate() error {
	switch {
	case c.Alpha <= 0 || c.Alpha > 1:
		return fmt.Errorf("admit: degrade alpha %v outside (0, 1]", c.Alpha)
	case c.EnterRatio <= 1:
		return fmt.Errorf("admit: degrade enter ratio %v must exceed 1", c.EnterRatio)
	case c.ExitRatio <= 0 || c.ExitRatio > c.EnterRatio:
		return fmt.Errorf("admit: degrade exit ratio %v outside (0, enter=%v]", c.ExitRatio, c.EnterRatio)
	case c.MinSamples < 1:
		return fmt.Errorf("admit: degrade min samples %d must be >= 1", c.MinSamples)
	case c.MarginHeadroom < 1:
		return fmt.Errorf("admit: degrade margin headroom %v must be >= 1", c.MarginHeadroom)
	case c.MaxMargin < 1:
		return fmt.Errorf("admit: degrade max margin %v must be >= 1", c.MaxMargin)
	}
	return nil
}

// svcDivergence is one service's divergence-tracking state.
type svcDivergence struct {
	ewma        float64 // observed/predicted completion-latency ratio
	samples     int64
	active      bool
	transitions int64
	shed        int64 // degraded-mode admission rejections (see Decide)
}

// Degrade tracks predicted-vs-observed divergence per service. Like the
// Admitter it is single-goroutine state; snapshot it from the owning loop.
type Degrade struct {
	cfg  DegradeConfig
	svcs []*svcDivergence
}

// NewDegrade builds a controller over numServices services; it panics on an
// invalid configuration or a non-positive service count (both come from
// code or validated flags, so either is a programming error).
func NewDegrade(cfg DegradeConfig, numServices int) *Degrade {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		panic(err)
	}
	if numServices < 1 {
		panic(fmt.Sprintf("admit: degrade over %d services", numServices))
	}
	d := &Degrade{cfg: cfg, svcs: make([]*svcDivergence, numServices)}
	for i := range d.svcs {
		d.svcs[i] = &svcDivergence{}
	}
	return d
}

// NumServices returns how many services the controller tracks.
func (d *Degrade) NumServices() int { return len(d.svcs) }

// Observe feeds one finished query's predicted and observed completion
// latency (both arrival-relative, margin-free) for its service.
// Non-positive predictions are ignored.
func (d *Degrade) Observe(service int, predictedMS, observedMS float64) {
	if d.cfg.Disabled || predictedMS <= 0 || observedMS < 0 {
		return
	}
	s := d.svcs[service]
	ratio := observedMS / predictedMS
	if s.samples == 0 {
		s.ewma = ratio
	} else {
		s.ewma = d.cfg.Alpha*ratio + (1-d.cfg.Alpha)*s.ewma
	}
	s.samples++
	if s.samples < int64(d.cfg.MinSamples) {
		return
	}
	switch {
	case !s.active && s.ewma >= d.cfg.EnterRatio:
		s.active = true
		s.transitions++
	case s.active && s.ewma < d.cfg.ExitRatio:
		s.active = false
		s.transitions++
	}
}

// Margin returns one service's admission safety margin: 1 while healthy,
// the smoothed divergence ratio times the configured headroom (capped)
// while degraded.
func (d *Degrade) Margin(service int) float64 {
	s := d.svcs[service]
	if !s.active {
		return 1
	}
	m := s.ewma * d.cfg.MarginHeadroom
	if m > d.cfg.MaxMargin {
		m = d.cfg.MaxMargin
	}
	if m < 1 {
		m = 1
	}
	return m
}

// Active reports whether one service is currently in degraded mode.
func (d *Degrade) Active(service int) bool { return d.svcs[service].active }

// AnyActive reports whether any service is currently in degraded mode.
func (d *Degrade) AnyActive() bool {
	for _, s := range d.svcs {
		if s.active {
			return true
		}
	}
	return false
}

// noteShed records one degraded-mode rejection against a service.
func (d *Degrade) noteShed(service int) { d.svcs[service].shed++ }

// Status is an aggregate point-in-time snapshot of the controller for
// /statz, metrics, and chaos reports: any-active, the widest margin and
// divergence in force, and deployment-wide sums.
type Status struct {
	Active      bool    `json:"active"`
	Transitions int64   `json:"transitions"`
	Divergence  float64 `json:"divergence_ewma"`
	Margin      float64 `json:"margin"`
	Samples     int64   `json:"samples"`
	Shed        int64   `json:"shed"`
}

// ServiceStatus is one service's divergence state.
type ServiceStatus struct {
	Service     int     `json:"service"`
	Active      bool    `json:"active"`
	Transitions int64   `json:"transitions"`
	Divergence  float64 `json:"divergence_ewma"`
	Margin      float64 `json:"margin"`
	Samples     int64   `json:"samples"`
	Shed        int64   `json:"shed"`
}

// Snapshot returns the aggregate controller state across services.
func (d *Degrade) Snapshot() Status {
	var st Status
	for i, s := range d.svcs {
		st.Active = st.Active || s.active
		st.Transitions += s.transitions
		st.Samples += s.samples
		st.Shed += s.shed
		if s.ewma > st.Divergence {
			st.Divergence = s.ewma
		}
		if m := d.Margin(i); m > st.Margin {
			st.Margin = m
		}
	}
	if len(d.svcs) > 0 && st.Margin < 1 {
		st.Margin = 1
	}
	return st
}

// ServiceSnapshots returns every service's divergence state in service
// order.
func (d *Degrade) ServiceSnapshots() []ServiceStatus {
	out := make([]ServiceStatus, len(d.svcs))
	for i, s := range d.svcs {
		out[i] = ServiceStatus{
			Service:     i,
			Active:      s.active,
			Transitions: s.transitions,
			Divergence:  s.ewma,
			Margin:      d.Margin(i),
			Samples:     s.samples,
			Shed:        s.shed,
		}
	}
	return out
}
