// Package admit is the predictor-driven admission controller shared by the
// online HTTP gateway (internal/server) and the chaos scenario harness
// (internal/chaos). At arrival it predicts when a query would complete if
// admitted — the predicted work already admitted and unfinished, plus the
// query's own predicted solo latency — and rejects immediately when that
// misses the deadline (Clockwork-style early rejection). The backlog term
// is the sequential-execution bound; Abacus's deterministic overlap only
// improves on it, so admission errs on the safe side.
//
// On top of the PR-2 admitter this package adds the degraded-mode
// controller: an EWMA over predicted-vs-observed latency divergence that,
// when the substrate stops matching the model (GPU throttling, a mistrained
// predictor), widens the admission safety margin so load is shed *before*
// deadlines start missing instead of after.
package admit

import (
	"fmt"

	"abacus/internal/dnn"
	"abacus/internal/gpusim"
	"abacus/internal/predictor"
	"abacus/internal/sched"
	"abacus/internal/sim"
)

// Rejection reasons reported on the wire and in chaos reports.
const (
	ReasonDeadline  = "deadline_unmeetable"
	ReasonQueueFull = "queue_full"
	ReasonDraining  = "draining"
	ReasonDegraded  = "degraded_shed"
)

// Decision is one admission verdict.
type Decision struct {
	OK     bool
	Reason string // rejection reason, empty when OK
	// PredMS is the raw (margin-free) predicted completion latency relative
	// to arrival; the divergence tracker compares completions against it.
	PredMS float64
	// AdjustedMS is PredMS widened by the degraded-mode safety margin; the
	// verdict is rendered against it.
	AdjustedMS float64
	// WorkMS is the query's own predicted solo work, the backlog unit to
	// release via Finish when the query completes or is dropped.
	WorkMS float64
	// RetryMS is a virtual-ms backoff hint on rejection.
	RetryMS float64
	// Degraded reports that the verdict was rendered with a widened margin.
	Degraded bool
}

// Admitter tracks the predicted backlog of admitted work. It is not safe
// for concurrent use: the gateway owns it on the bridge loop goroutine, the
// chaos harness on the simulation goroutine.
type Admitter struct {
	model    predictor.LatencyModel
	profile  gpusim.Profile
	services []*sched.Service
	queueCap int
	syncCost float64
	degrade  *Degrade

	outstanding []int   // admitted-but-unfinished per service
	backlogMS   float64 // Σ predicted solo latencies of outstanding work
	soloCache   map[soloKey]float64
}

// soloKey identifies a memoized solo prediction: one flat map lookup per
// verdict instead of the two-level input→service chain.
type soloKey struct {
	service int
	in      dnn.Input
}

// New builds an admitter over the deployment. queueCap bounds
// admitted-but-unfinished queries per service; degrade may be nil for a
// gateway without the degraded-mode controller.
func New(model predictor.LatencyModel, profile gpusim.Profile, services []*sched.Service, queueCap int, syncCost float64, degrade *Degrade) *Admitter {
	if model == nil {
		panic("admit: nil latency model")
	}
	if queueCap <= 0 {
		panic(fmt.Sprintf("admit: queue cap %d must be positive", queueCap))
	}
	if degrade == nil {
		degrade = NewDegrade(DegradeConfig{Disabled: true}, len(services))
	}
	if degrade.NumServices() != len(services) {
		panic(fmt.Sprintf("admit: degrade tracks %d services, deployment has %d",
			degrade.NumServices(), len(services)))
	}
	return &Admitter{
		model:       model,
		profile:     profile,
		services:    services,
		queueCap:    queueCap,
		syncCost:    syncCost,
		degrade:     degrade,
		outstanding: make([]int, len(services)),
		soloCache:   make(map[soloKey]float64),
	}
}

// Degrade returns the degraded-mode controller (never nil).
func (a *Admitter) Degrade() *Degrade { return a.degrade }

// BacklogMS returns the predicted unfinished work currently admitted.
func (a *Admitter) BacklogMS() float64 { return a.backlogMS }

// Outstanding returns the admitted-but-unfinished count for one service.
func (a *Admitter) Outstanding(service int) int { return a.outstanding[service] }

// CopyOutstanding copies per-service outstanding counts into dst.
func (a *Admitter) CopyOutstanding(dst []int) { copy(dst, a.outstanding) }

// SoloPred returns the predicted exclusive latency (transfer + execution +
// group sync) of a full query, memoized: the served input space is small
// (Table 1), so steady state answers from the cache.
func (a *Admitter) SoloPred(service int, in dnn.Input) float64 {
	key := soloKey{service: service, in: in}
	if v, ok := a.soloCache[key]; ok {
		return v
	}
	svc := a.services[service]
	m := dnn.Get(svc.Model)
	g := predictor.Group{{
		Model:   svc.Model,
		OpStart: 0,
		OpEnd:   m.NumOps(),
		Batch:   in.Batch,
		SeqLen:  in.SeqLen,
	}}
	v := dnn.TransferTime(m, in, a.profile) + a.model.Predict(g) + a.syncCost
	a.soloCache[key] = v
	return v
}

// InvalidateCache drops memoized solo predictions. Chaos runs call it when
// a predictor-fault window opens or closes so the admitter's view tracks
// the (now mis-)calibrated model instead of a stale healthy one.
func (a *Admitter) InvalidateCache() {
	for k := range a.soloCache {
		delete(a.soloCache, k)
	}
}

// InvalidateService drops only the memoized solo predictions of one service —
// the per-service generation matching a calibration refit, which cannot
// change any other service's solo latency.
func (a *Admitter) InvalidateService(service int) {
	for k := range a.soloCache {
		if k.service == service {
			delete(a.soloCache, k)
		}
	}
}

// Decide renders the admission verdict for a query of the given service
// arriving now. sloMS <= 0 selects the service-wide QoS target.
func (a *Admitter) Decide(now sim.Time, service int, in dnn.Input, sloMS float64) Decision {
	if sloMS <= 0 {
		sloMS = a.services[service].QoS
	}
	solo := a.SoloPred(service, in)
	predMS := a.backlogMS + solo // arrival-relative predicted completion
	margin := a.degrade.Margin(service)
	adjMS := predMS * margin
	d := Decision{PredMS: predMS, AdjustedMS: adjMS, WorkMS: solo, Degraded: margin > 1}
	if a.outstanding[service] >= a.queueCap {
		d.Reason = ReasonQueueFull
		d.RetryMS = a.backlogMS
		return d
	}
	if adjMS > sloMS {
		if predMS <= sloMS {
			// Only the widened margin rejects it: this is degraded-mode
			// load shedding, not a hopeless deadline.
			d.Reason = ReasonDegraded
			a.degrade.noteShed(service)
		} else {
			d.Reason = ReasonDeadline
		}
		d.RetryMS = adjMS - sloMS
		return d
	}
	d.OK = true
	return d
}

// Admitted records an accepted query's predicted solo work.
func (a *Admitter) Admitted(service int, workMS float64) {
	a.outstanding[service]++
	a.backlogMS += workMS
}

// Finish releases an admitted query's predicted work once it completes or
// is dropped.
func (a *Admitter) Finish(service int, workMS float64) {
	a.outstanding[service]--
	a.backlogMS -= workMS
	if a.backlogMS < 1e-9 {
		a.backlogMS = 0
	}
}
