package admit

import (
	"testing"

	"abacus/internal/dnn"
	"abacus/internal/gpusim"
	"abacus/internal/predictor"
	"abacus/internal/sched"
)

func testAdmitter(t *testing.T, queueCap int, degrade *Degrade) (*Admitter, []*sched.Service) {
	t.Helper()
	profile := gpusim.A100Profile()
	models := []dnn.ModelID{dnn.ResNet152, dnn.InceptionV3}
	services := sched.Services(models, 2, profile)
	model := predictor.Oracle{Profile: profile}
	return New(model, profile, services, queueCap, 0.02, degrade), services
}

// countingModel counts inner predictions so cache generations are visible.
type countingModel struct {
	inner predictor.LatencyModel
	calls int
}

func (m *countingModel) Predict(g predictor.Group) float64 {
	m.calls++
	return m.inner.Predict(g)
}

func (m *countingModel) PredictBatch(gs []predictor.Group) []float64 {
	out := make([]float64, len(gs))
	for i, g := range gs {
		out[i] = m.Predict(g)
	}
	return out
}

// TestInvalidateServiceKeepsOtherServices pins the per-service solo-cache
// generation: a calibration refit for one service must not evict the
// memoized solo predictions of its neighbours.
func TestInvalidateServiceKeepsOtherServices(t *testing.T) {
	profile := gpusim.A100Profile()
	models := []dnn.ModelID{dnn.ResNet152, dnn.InceptionV3}
	services := sched.Services(models, 2, profile)
	cm := &countingModel{inner: predictor.Oracle{Profile: profile}}
	a := New(cm, profile, services, 4, 0.02, nil)

	in := dnn.Input{Batch: 8}
	v0, v1 := a.SoloPred(0, in), a.SoloPred(1, in)
	if a.SoloPred(0, in) != v0 || a.SoloPred(1, in) != v1 || cm.calls != 2 {
		t.Fatalf("warmup not cached: %d calls", cm.calls)
	}

	a.InvalidateService(1)
	if a.SoloPred(0, in) != v0 || cm.calls != 2 {
		t.Fatalf("invalidating service 1 evicted service 0: %d calls", cm.calls)
	}
	if a.SoloPred(1, in) != v1 || cm.calls != 3 {
		t.Fatalf("service 1 not recomputed after its invalidation: %d calls", cm.calls)
	}

	a.InvalidateCache()
	a.SoloPred(0, in)
	a.SoloPred(1, in)
	if cm.calls != 5 {
		t.Fatalf("full invalidation left stale entries: %d calls", cm.calls)
	}
}

func TestDecideAdmitsWithinSLO(t *testing.T) {
	a, svcs := testAdmitter(t, 4, nil)
	in := dnn.Input{Batch: 8}
	d := a.Decide(0, 0, in, 0)
	if !d.OK {
		t.Fatalf("empty-backlog query rejected: %+v", d)
	}
	if d.PredMS != d.AdjustedMS {
		t.Errorf("healthy margin must not adjust: pred %v adj %v", d.PredMS, d.AdjustedMS)
	}
	if d.PredMS <= 0 || d.PredMS > svcs[0].QoS {
		t.Errorf("pred %v outside (0, qos=%v]", d.PredMS, svcs[0].QoS)
	}
}

func TestDecideRejectsOnBacklogAndQueueCap(t *testing.T) {
	a, svcs := testAdmitter(t, 3, nil)
	in := dnn.Input{Batch: 32}
	solo := a.SoloPred(0, in)
	// Pile up predicted work until the sequential bound exceeds QoS.
	admitted := 0
	for {
		d := a.Decide(0, 0, in, 0)
		if !d.OK {
			switch d.Reason {
			case ReasonDeadline:
				if a.BacklogMS()+solo <= svcs[0].QoS {
					t.Fatalf("deadline rejection with feasible backlog: %+v", d)
				}
			case ReasonQueueFull:
				if a.Outstanding(0) < 3 {
					t.Fatalf("queue_full below cap: outstanding %d", a.Outstanding(0))
				}
			default:
				t.Fatalf("unexpected reason %q", d.Reason)
			}
			if d.RetryMS <= 0 {
				t.Errorf("rejection carries no retry hint: %+v", d)
			}
			break
		}
		a.Admitted(0, d.WorkMS)
		admitted++
		if admitted > 100 {
			t.Fatal("never rejected")
		}
	}
	// Releasing the backlog restores admission.
	for i := 0; i < admitted; i++ {
		a.Finish(0, solo)
	}
	if d := a.Decide(0, 0, in, 0); !d.OK {
		t.Fatalf("rejected after full release: %+v", d)
	}
}

func TestDegradeEntersWidensAndExitsWithHysteresis(t *testing.T) {
	g := NewDegrade(DegradeConfig{Alpha: 0.5, EnterRatio: 1.3, ExitRatio: 1.1, MinSamples: 3}, 2)
	for i := 0; i < 3; i++ {
		g.Observe(0, 10, 20) // sustained 2× divergence
	}
	if !g.Active(0) {
		t.Fatalf("not degraded after sustained 2× divergence: %+v", g.Snapshot())
	}
	if m := g.Margin(0); m <= 1.5 {
		t.Errorf("margin %v too narrow for 2× divergence", m)
	}
	// Ratios inside the hysteresis band must not exit.
	g.Observe(0, 10, 12)
	st := g.Snapshot()
	if !st.Active && st.Divergence > 1.1 {
		t.Errorf("exited inside hysteresis band: %+v", st)
	}
	// Healthy observations drive it out.
	for i := 0; i < 10; i++ {
		g.Observe(0, 10, 9)
	}
	if g.Active(0) {
		t.Fatalf("still degraded after sustained recovery: %+v", g.Snapshot())
	}
	if n := g.Snapshot().Transitions; n != 2 {
		t.Errorf("transitions = %d, want 2 (enter + exit)", n)
	}
	if m := g.Margin(0); m != 1 {
		t.Errorf("healthy margin = %v, want 1", m)
	}
}

func TestDegradeIsolatesServices(t *testing.T) {
	g := NewDegrade(DegradeConfig{Alpha: 1, EnterRatio: 1.3, ExitRatio: 1.1, MinSamples: 1}, 3)
	// Only service 1 diverges; its neighbours report healthy completions.
	for i := 0; i < 10; i++ {
		g.Observe(0, 10, 10)
		g.Observe(1, 10, 25)
		g.Observe(2, 10, 9)
	}
	if g.Active(0) || g.Active(2) {
		t.Fatalf("healthy services degraded: %+v", g.ServiceSnapshots())
	}
	if !g.Active(1) {
		t.Fatalf("drifting service not degraded: %+v", g.ServiceSnapshots())
	}
	if m := g.Margin(0); m != 1 {
		t.Errorf("healthy service margin = %v, want 1", m)
	}
	if m := g.Margin(1); m <= 1 {
		t.Errorf("drifting service margin = %v, want > 1", m)
	}
	if !g.AnyActive() {
		t.Error("AnyActive() = false with service 1 degraded")
	}
	svcs := g.ServiceSnapshots()
	if len(svcs) != 3 {
		t.Fatalf("ServiceSnapshots len = %d, want 3", len(svcs))
	}
	for i, s := range svcs {
		if s.Service != i {
			t.Errorf("snapshot %d carries service %d", i, s.Service)
		}
		if s.Samples != 10 {
			t.Errorf("service %d samples = %d, want 10", i, s.Samples)
		}
	}
	// The aggregate reports the widest margin and divergence in force.
	agg := g.Snapshot()
	if !agg.Active || agg.Margin != g.Margin(1) || agg.Divergence != svcs[1].Divergence {
		t.Errorf("aggregate does not track the drifting service: %+v", agg)
	}
	if agg.Samples != 30 {
		t.Errorf("aggregate samples = %d, want 30", agg.Samples)
	}
}

// Satellite: a divergence pinned exactly at the enter/exit thresholds must
// not oscillate between states on alternating samples. With Alpha 1 the
// EWMA is the last ratio, so feeding the threshold ratio repeatedly holds
// the EWMA exactly at the boundary — the regression this guards against
// entered on every odd sample and exited on every even one.
func TestDegradeHysteresisEdgeDoesNotOscillate(t *testing.T) {
	// Degenerate band: enter and exit collapse to the same threshold, which
	// validation allows (ExitRatio == EnterRatio).
	g := NewDegrade(DegradeConfig{Alpha: 1, EnterRatio: 1.3, ExitRatio: 1.3, MinSamples: 1}, 1)
	for i := 0; i < 20; i++ {
		g.Observe(0, 10, 13) // ratio exactly at the threshold
	}
	st := g.Snapshot()
	if !st.Active {
		t.Fatalf("ratio at EnterRatio must engage degraded mode: %+v", st)
	}
	if st.Transitions != 1 {
		t.Fatalf("transitions = %d on a pinned boundary ratio, want 1 (no oscillation)", st.Transitions)
	}

	// A proper band behaves the same when the EWMA sits exactly on the exit
	// threshold: strictly below is required to leave.
	g2 := NewDegrade(DegradeConfig{Alpha: 1, EnterRatio: 1.3, ExitRatio: 1.1, MinSamples: 1}, 1)
	g2.Observe(0, 10, 13)
	for i := 0; i < 20; i++ {
		g2.Observe(0, 10, 11) // ratio exactly at ExitRatio
	}
	st2 := g2.Snapshot()
	if !st2.Active || st2.Transitions != 1 {
		t.Fatalf("ratio at ExitRatio must hold degraded mode: %+v", st2)
	}
	g2.Observe(0, 10, 10.9) // strictly below: now it exits
	if g2.Active(0) || g2.Snapshot().Transitions != 2 {
		t.Fatalf("ratio below ExitRatio must exit: %+v", g2.Snapshot())
	}
}

func TestDegradedShedReasonDistinctFromDeadline(t *testing.T) {
	g := NewDegrade(DegradeConfig{Alpha: 1, EnterRatio: 1.2, ExitRatio: 1.05, MinSamples: 1}, 2)
	a, svcs := testAdmitter(t, 64, g)
	in := dnn.Input{Batch: 32}
	solo := a.SoloPred(0, in)

	// Force degraded mode with a divergence big enough that solo*margin
	// overshoots the QoS target.
	ratio := 1.5 * svcs[0].QoS / solo
	g.Observe(0, solo, ratio*solo)
	if !g.Active(0) {
		t.Fatal("controller not degraded")
	}
	d := a.Decide(0, 0, in, 0)
	if d.OK || d.Reason != ReasonDegraded {
		t.Fatalf("want degraded_shed rejection, got %+v", d)
	}
	if !d.Degraded || d.AdjustedMS <= d.PredMS {
		t.Errorf("decision not margin-widened: %+v", d)
	}
	if g.Snapshot().Shed != 1 {
		t.Errorf("shed counter = %d, want 1", g.Snapshot().Shed)
	}
	if g.ServiceSnapshots()[0].Shed != 1 {
		t.Errorf("per-service shed = %d, want 1", g.ServiceSnapshots()[0].Shed)
	}

	// The co-located service's margin stays 1: its admission is untouched.
	if d := a.Decide(0, 1, dnn.Input{Batch: 8}, 0); !d.OK || d.Degraded {
		t.Errorf("healthy co-located service affected by neighbour's drift: %+v", d)
	}

	// A query that could never meet its deadline stays deadline_unmeetable
	// even while degraded.
	if d := a.Decide(0, 0, in, solo/2); d.Reason != ReasonDeadline {
		t.Errorf("want deadline_unmeetable for impossible SLO, got %+v", d)
	}
}

func TestDisabledDegradeIgnoresObservations(t *testing.T) {
	g := NewDegrade(DegradeConfig{Disabled: true}, 1)
	for i := 0; i < 50; i++ {
		g.Observe(0, 1, 100)
	}
	if g.Active(0) || g.Margin(0) != 1 || g.Snapshot().Transitions != 0 {
		t.Errorf("disabled controller acted: %+v", g.Snapshot())
	}
}

func TestDegradeConfigValidation(t *testing.T) {
	for name, cfg := range map[string]DegradeConfig{
		"alpha>1":          {Alpha: 1.5},
		"enter<=1":         {EnterRatio: 0.9},
		"exit>enter":       {EnterRatio: 1.2, ExitRatio: 1.4},
		"headroom<1":       {MarginHeadroom: 0.5},
		"negative samples": {MinSamples: -1},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: NewDegrade did not panic", name)
				}
			}()
			NewDegrade(cfg, 1)
		}()
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("NewDegrade accepted zero services")
			}
		}()
		NewDegrade(DegradeConfig{}, 0)
	}()
}
