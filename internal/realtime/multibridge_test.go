package realtime

import (
	"sync"
	"testing"
	"time"

	"abacus/internal/dnn"
	"abacus/internal/sched"
	"abacus/internal/sim"
)

// TestFlushDoesNotAdvanceSibling pins the drain-ordering contract for a
// sharded gateway: each node owns its own bridge, and Flush on one must drain
// only that node's engine. Bridge A carries a long event chain; bridge B
// holds a single far-future sentinel that only an erroneous cross-bridge
// drain could fire.
func TestFlushDoesNotAdvanceSibling(t *testing.T) {
	engA, engB := sim.NewEngine(), sim.NewEngine()
	a, b := New(engA, Unpaced), New(engB, 1)
	a.Start()
	b.Start()
	defer a.Stop()
	defer b.Stop()

	var chained int
	var sentinelFired bool
	if err := a.Do(func() {
		var step func()
		step = func() {
			chained++
			if chained < 1000 {
				engA.Schedule(1, step)
			}
		}
		engA.Schedule(1, step)
	}); err != nil {
		t.Fatal(err)
	}
	if err := b.Do(func() {
		engB.Schedule(1e9, func() { sentinelFired = true })
	}); err != nil {
		t.Fatal(err)
	}

	if err := a.Flush(); err != nil {
		t.Fatal(err)
	}

	var aNow, bNow sim.Time
	if err := a.Do(func() { aNow = engA.Now() }); err != nil {
		t.Fatal(err)
	}
	if err := b.Do(func() { bNow = engB.Now() }); err != nil {
		t.Fatal(err)
	}
	if chained != 1000 || aNow < 1000 {
		t.Errorf("Flush did not drain its own bridge: chained=%d now=%v", chained, aNow)
	}
	if sentinelFired || bNow >= 1e9 {
		t.Errorf("Flush on one bridge advanced its sibling: sentinel=%v now=%v", sentinelFired, bNow)
	}
}

// TestTwoBridgeFlushIsolationUnderLoad floods one bridge with submit+Flush
// cycles while a sibling serves its own injections: no sibling Do may be
// starved or lost, and both runtimes must emit every query. Run with -race
// this also pins that two loop goroutines share no engine state.
func TestTwoBridgeFlushIsolationUnderLoad(t *testing.T) {
	var resA, resB []*sched.Query
	rtA := newRuntime(t, &resA)
	rtB := newRuntime(t, &resB)
	a := New(rtA.Engine(), Unpaced)
	b := New(rtB.Engine(), Unpaced)
	a.Start()
	b.Start()

	const n = 50
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < n; i++ {
			if err := a.Do(func() {
				rtA.Submit(0, dnn.Input{Batch: 8}, rtA.Engine().Now())
			}); err != nil {
				t.Error(err)
			}
			if err := a.Flush(); err != nil {
				t.Error(err)
			}
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < n; i++ {
			if err := b.Do(func() {
				rtB.Submit(i%2, dnn.Input{Batch: 4}, rtB.Engine().Now())
			}); err != nil {
				t.Error(err)
			}
		}
	}()
	wg.Wait()
	if err := b.Flush(); err != nil {
		t.Fatal(err)
	}
	a.Stop()
	b.Stop()
	if len(resA) != n || len(resB) != n {
		t.Errorf("emitted %d/%d queries on A, %d/%d on B", len(resA), n, len(resB), n)
	}
}

// TestAnchoredBridgesShareWallOrigin checks the shared clock discipline: two
// bridges anchored to one epoch derive virtual time from the same wall
// origin, so a bridge started later fast-forwards to where its sibling
// already is instead of beginning at zero.
func TestAnchoredBridgesShareWallOrigin(t *testing.T) {
	epoch := time.Now().Add(-100 * time.Millisecond)
	engA, engB := sim.NewEngine(), sim.NewEngine()
	a, b := New(engA, 1000), New(engB, 1000)
	a.StartAnchored(epoch)
	b.StartAnchored(epoch)
	defer a.Stop()
	defer b.Stop()

	var aNow, bNow sim.Time
	if err := a.Do(func() { aNow = engA.Now() }); err != nil {
		t.Fatal(err)
	}
	if err := b.Do(func() { bNow = engB.Now() }); err != nil {
		t.Fatal(err)
	}
	// The epoch sits 100 wall ms in the past: at speedup 1000 both clocks
	// must open at >= 100 000 virtual ms, where unanchored bridges would
	// read near zero.
	if aNow < 100_000 || bNow < 100_000 {
		t.Errorf("anchored clocks opened at %v / %v, want >= 100000", aNow, bNow)
	}
	// Reads happen in program order against one shared origin, so the second
	// bridge can never be behind the first.
	if bNow < aNow {
		t.Errorf("sibling clocks diverged: second read %v behind first %v", bNow, aNow)
	}
}

func TestStartAnchoredRejectsZeroEpoch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("zero epoch accepted")
		}
	}()
	New(sim.NewEngine(), 1).StartAnchored(time.Time{})
}
