package realtime

import (
	"sync"
	"testing"
	"time"

	"abacus/internal/core"
	"abacus/internal/dnn"
	"abacus/internal/sched"
	"abacus/internal/sim"
)

// newRuntime builds a small Abacus runtime whose sink appends to the
// returned slice (loop-goroutine only; read after Stop).
func newRuntime(t *testing.T, results *[]*sched.Query) *core.Runtime {
	t.Helper()
	rt, err := core.New(core.Config{
		Models:   []dnn.ModelID{dnn.ResNet50, dnn.InceptionV3},
		OnResult: func(q *sched.Query) { *results = append(*results, q) },
	})
	if err != nil {
		t.Fatal(err)
	}
	return rt
}

func TestUnpacedMatchesOfflineDrain(t *testing.T) {
	submit := func(rt *core.Runtime) {
		rt.Submit(0, dnn.Input{Batch: 8}, 0)
		rt.Submit(1, dnn.Input{Batch: 16}, 1)
		rt.Submit(0, dnn.Input{Batch: 32}, 2)
		rt.Submit(1, dnn.Input{Batch: 4}, 40)
	}

	var offline []*sched.Query
	rtOff := newRuntime(t, &offline)
	submit(rtOff)
	rtOff.Drain()

	var live []*sched.Query
	rtLive := newRuntime(t, &live)
	b := New(rtLive.Engine(), Unpaced)
	b.Start()
	defer b.Stop()
	if err := b.Do(func() { submit(rtLive) }); err != nil {
		t.Fatal(err)
	}
	if err := b.Flush(); err != nil {
		t.Fatal(err)
	}
	b.Stop()

	if len(live) != len(offline) {
		t.Fatalf("bridge emitted %d queries, offline %d", len(live), len(offline))
	}
	for i := range live {
		l, o := live[i], offline[i]
		if l.ID != o.ID || l.Finish != o.Finish || l.Dropped != o.Dropped {
			t.Errorf("query %d: bridge (id=%d finish=%v dropped=%v), offline (id=%d finish=%v dropped=%v)",
				i, l.ID, l.Finish, l.Dropped, o.ID, o.Finish, o.Dropped)
		}
	}
}

func TestPacingDelaysEvents(t *testing.T) {
	eng := sim.NewEngine()
	b := New(eng, 100) // 100 virtual ms per wall ms
	b.Start()
	defer b.Stop()

	fired := make(chan sim.Time, 1)
	start := time.Now()
	if err := b.Do(func() {
		eng.Schedule(500, func() { fired <- eng.Now() })
	}); err != nil {
		t.Fatal(err)
	}
	at := <-fired
	elapsed := time.Since(start)
	// 500 virtual ms at speedup 100 is 5 ms of wall time; the event must not
	// fire early. The upper bound is loose to tolerate a loaded host.
	if elapsed < 4*time.Millisecond {
		t.Errorf("event fired after %v of wall time, want >= ~5ms", elapsed)
	}
	if elapsed > 10*time.Second {
		t.Errorf("event fired after %v, pacing stalled", elapsed)
	}
	if at < 500 {
		t.Errorf("event fired at virtual %v, want >= 500", at)
	}
	if now := b.Now(); now < 500 {
		t.Errorf("published Now() = %v, want >= 500", now)
	}
}

func TestWallSpacedInjectionsGetIncreasingVirtualTimes(t *testing.T) {
	eng := sim.NewEngine()
	b := New(eng, 1000)
	b.Start()
	defer b.Stop()

	var first, second sim.Time
	if err := b.Do(func() { first = eng.Now() }); err != nil {
		t.Fatal(err)
	}
	time.Sleep(5 * time.Millisecond)
	if err := b.Do(func() { second = eng.Now() }); err != nil {
		t.Fatal(err)
	}
	// 5 wall ms at speedup 1000 is 5000 virtual ms.
	if second <= first {
		t.Errorf("virtual time did not advance across injections: %v then %v", first, second)
	}
	if second-first < 1000 {
		t.Errorf("virtual gap %v too small for a 5ms wall gap at speedup 1000", second-first)
	}
}

func TestDoAfterStopReturnsErrStopped(t *testing.T) {
	b := New(sim.NewEngine(), Unpaced)
	b.Start()
	b.Stop()
	b.Stop() // idempotent
	if err := b.Do(func() {}); err != ErrStopped {
		t.Errorf("Do after Stop = %v, want ErrStopped", err)
	}
	if err := b.Flush(); err != ErrStopped {
		t.Errorf("Flush after Stop = %v, want ErrStopped", err)
	}
}

func TestConcurrentInjection(t *testing.T) {
	for _, speedup := range []float64{Unpaced, 20_000} {
		var results []*sched.Query
		rt := newRuntime(t, &results)
		b := New(rt.Engine(), speedup)
		b.Start()

		const n = 24
		var wg sync.WaitGroup
		for i := 0; i < n; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				err := b.Do(func() {
					rt.Submit(i%2, dnn.Input{Batch: 4}, rt.Engine().Now())
				})
				if err != nil {
					t.Error(err)
				}
			}(i)
		}
		wg.Wait()
		if err := b.Flush(); err != nil {
			t.Fatal(err)
		}
		b.Stop()
		if len(results) != n {
			t.Errorf("speedup %v: %d results, want %d", speedup, len(results), n)
		}
		for _, q := range results {
			if !q.Dropped && q.Finish < q.Arrival {
				t.Errorf("query %d finished at %v before arrival %v", q.ID, q.Finish, q.Arrival)
			}
		}
	}
}

func TestNewValidation(t *testing.T) {
	for _, bad := range []float64{0, -1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("speedup %v accepted", bad)
				}
			}()
			New(sim.NewEngine(), bad)
		}()
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("nil engine accepted")
			}
		}()
		New(nil, 1)
	}()
}
