package realtime

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"abacus/internal/sim"
)

// TestRetireFlushesPendingWork pins the retirement contract: every event
// already scheduled on the engine fires before the bridge stops, and the
// returned instant is the terminal clock reading after that drain.
func TestRetireFlushesPendingWork(t *testing.T) {
	eng := sim.NewEngine()
	b := New(eng, 1) // paced at real time: only Flush can finish this fast
	b.Start()

	var chained int
	if err := b.Do(func() {
		var step func()
		step = func() {
			chained++
			if chained < 500 {
				eng.Schedule(10, step)
			}
		}
		eng.Schedule(10, step)
	}); err != nil {
		t.Fatal(err)
	}

	final, err := b.Retire()
	if err != nil {
		t.Fatalf("Retire: %v", err)
	}
	if chained != 500 {
		t.Errorf("retired with %d/500 events fired", chained)
	}
	if final < 5000 {
		t.Errorf("terminal clock %v, want >= 5000 (500 chained 10ms events)", final)
	}
	if err := b.Do(func() {}); err != ErrStopped {
		t.Errorf("Do after Retire = %v, want ErrStopped", err)
	}
	// Idempotent: a second retirement reports the stop without hanging.
	if _, err := b.Retire(); err != ErrStopped {
		t.Errorf("second Retire = %v, want ErrStopped", err)
	}
}

// TestStopDrainOrder pins the drain-order contract when a bridge stops with
// commands queued behind a busy loop: commands execute in submission order
// with no gaps — if a later command ran, every earlier one from the same
// submitter ran first — and a command reported ErrStopped never runs.
func TestStopDrainOrder(t *testing.T) {
	eng := sim.NewEngine()
	b := New(eng, Unpaced)
	b.Start()

	gate := make(chan struct{})
	busy := make(chan struct{})
	go func() {
		_ = b.Do(func() { close(busy); <-gate })
	}()
	<-busy // the loop is now wedged; subsequent commands queue

	const n = 3
	var mu sync.Mutex
	var ran []int
	errs := make([]error, n)
	orderDone := make(chan struct{})
	go func() {
		defer close(orderDone)
		for i := 0; i < n; i++ {
			i := i
			errs[i] = b.Do(func() {
				mu.Lock()
				ran = append(ran, i)
				mu.Unlock()
			})
			if errs[i] != nil {
				// Once stopped, every later submission fails too.
				for j := i + 1; j < n; j++ {
					errs[j] = ErrStopped
				}
				return
			}
		}
	}()

	stopDone := make(chan struct{})
	go func() { defer close(stopDone); b.Stop() }()
	// Let the stop signal and the first queued command race, then release
	// the loop: the drain must still honor the contract either way.
	time.Sleep(10 * time.Millisecond)
	close(gate)
	<-stopDone
	<-orderDone

	mu.Lock()
	defer mu.Unlock()
	for i, id := range ran {
		if id != i {
			t.Fatalf("execution order %v, want prefix of 0..%d in order", ran, n-1)
		}
	}
	for i := 0; i < n; i++ {
		executed := i < len(ran)
		if executed && errs[i] != nil {
			t.Errorf("command %d ran but Do returned %v", i, errs[i])
		}
		if !executed && errs[i] == nil {
			t.Errorf("command %d reported success but never ran", i)
		}
	}
}

// TestStopCommandConservation hammers a stopping bridge from many goroutines:
// across every submitter, commands executed must exactly equal Do calls that
// returned nil — no lost commands, no ghost executions, no stranded caller.
func TestStopCommandConservation(t *testing.T) {
	eng := sim.NewEngine()
	b := New(eng, Unpaced)
	b.Start()

	const workers = 16
	var executed, acked atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if err := b.Do(func() { executed.Add(1) }); err != nil {
					return
				}
				acked.Add(1)
			}
		}()
	}
	time.Sleep(5 * time.Millisecond)
	if _, err := b.Retire(); err != nil {
		t.Fatalf("Retire under load: %v", err)
	}
	wg.Wait()
	if executed.Load() != acked.Load() {
		t.Errorf("conservation broken: %d commands executed, %d acked", executed.Load(), acked.Load())
	}
	if acked.Load() == 0 {
		t.Error("no commands completed before retirement; test proved nothing")
	}
}
