// Package realtime bridges the deterministic discrete-event engine to the
// wall clock, turning the batch simulator into a live runtime. A Bridge owns
// a sim.Engine on a single loop goroutine: virtual time is paced against
// time.Now with a configurable speedup factor, external work is injected as
// it occurs via Do, and event callbacks (group completions, query sinks)
// fire on the loop at their paced instants. Speedup 1 runs the runtime in
// real time; large speedups compress wall time for tests; Unpaced recovers
// the offline batch mode, where the engine drains as fast as the host
// allows.
//
// Everything scheduled on the engine still executes single-threaded and in
// deterministic order for a given injection sequence — the bridge adds no
// concurrency inside the simulation, only at its boundary.
package realtime

import (
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"abacus/internal/sim"
)

// Unpaced disables pacing: the engine drains as fast as the host allows,
// recovering the offline batch mode.
const Unpaced = math.MaxFloat64

// ErrStopped is returned by Do and Flush once the bridge has stopped.
var ErrStopped = errors.New("realtime: bridge stopped")

// maxWait bounds one sleep of the loop; pacing re-derives the remaining wait
// on wake, so the cap only costs a spurious wakeup per hour.
const maxWait = time.Hour

// Bridge drives a sim.Engine as a live event loop.
type Bridge struct {
	eng     *sim.Engine
	speedup float64
	unpaced bool

	cmds     chan func()
	stop     chan struct{}
	stopped  chan struct{}
	stopOnce sync.Once

	// epoch pins the loop's wall-clock origin when set (StartAnchored);
	// zero means the loop stamps time.Now when it starts.
	epoch time.Time

	// wallStart/virtStart anchor the pacing computation. Written once when
	// the loop starts, then read only on the loop goroutine (CatchUp).
	wallStart time.Time
	virtStart sim.Time

	// now mirrors the engine clock for cheap cross-goroutine reads.
	now atomic.Uint64
}

// New wraps the engine with a wall-clock pacer. speedup is virtual
// milliseconds per wall-clock millisecond: 1 is real time, 60 compresses a
// minute into a second, Unpaced (or +Inf) disables pacing entirely. The
// engine must only be touched through the bridge once Start is called.
func New(eng *sim.Engine, speedup float64) *Bridge {
	if eng == nil {
		panic("realtime: nil engine")
	}
	if math.IsNaN(speedup) || speedup <= 0 {
		panic(fmt.Sprintf("realtime: speedup %v must be positive (use Unpaced for batch mode)", speedup))
	}
	b := &Bridge{
		eng:     eng,
		speedup: speedup,
		unpaced: speedup == Unpaced || math.IsInf(speedup, 1),
		cmds:    make(chan func()),
		stop:    make(chan struct{}),
		stopped: make(chan struct{}),
	}
	b.now.Store(math.Float64bits(eng.Now()))
	return b
}

// Speedup returns the configured pacing factor.
func (b *Bridge) Speedup() float64 { return b.speedup }

// Unpaced reports whether the bridge runs in batch mode.
func (b *Bridge) Unpaced() bool { return b.unpaced }

// Now returns the loop's last published virtual time. It is safe from any
// goroutine; for an exact read, query the engine inside Do.
func (b *Bridge) Now() sim.Time { return math.Float64frombits(b.now.Load()) }

// Start launches the loop goroutine. It must be called exactly once.
func (b *Bridge) Start() { go b.loop() }

// StartAnchored launches the loop goroutine with its wall-clock origin pinned
// to epoch instead of the instant the loop happens to start. Sibling bridges
// anchored to the same epoch share one clock discipline: each derives its
// virtual clock from the identical wall origin, so N per-node engines advance
// in lockstep regardless of goroutine start order. Like Start, it must be
// called exactly once; an epoch slightly in the past simply fast-forwards the
// bridge to where its siblings already are.
func (b *Bridge) StartAnchored(epoch time.Time) {
	if epoch.IsZero() {
		panic("realtime: zero anchor epoch")
	}
	b.epoch = epoch
	go b.loop()
}

// Stop halts the loop and waits for it to exit. Commands already queued are
// executed first so no Do caller is stranded; events still pending on the
// engine do not fire. Stop is idempotent.
func (b *Bridge) Stop() {
	b.stopOnce.Do(func() { close(b.stop) })
	<-b.stopped
}

// Do runs fn on the loop goroutine, after all virtual events due by the
// current wall instant have fired, and waits for it to return. fn may
// inspect and schedule against the engine freely; this is the only safe way
// to touch the engine while the bridge runs.
func (b *Bridge) Do(fn func()) error {
	done := make(chan struct{})
	wrapped := func() { defer close(done); fn() }
	select {
	case b.cmds <- wrapped:
	case <-b.stopped:
		return ErrStopped
	}
	select {
	case <-done:
		return nil
	case <-b.stopped:
		// The loop drains queued commands before closing stopped, so a
		// command accepted above either ran or never will.
		select {
		case <-done:
			return nil
		default:
			return ErrStopped
		}
	}
}

// CatchUp advances the engine to the wall-derived pacing target (everything
// due by this instant fires), or drains it entirely when unpaced. It must
// only be called from inside a Do callback — it touches the engine. Batch
// consumers call it between entries so each decision observes the virtual
// time it would have seen had it been injected alone, keeping batched
// admission equivalent to one injection per query.
func (b *Bridge) CatchUp() {
	if b.unpaced {
		b.eng.Run()
	} else if t := b.target(); t > b.eng.Now() {
		b.eng.RunUntil(t)
	}
	b.now.Store(math.Float64bits(b.eng.Now()))
}

// target is the pacing target: the virtual instant corresponding to now on
// the wall clock. Loop goroutine only.
func (b *Bridge) target() sim.Time {
	return b.virtStart + b.speedup*float64(time.Since(b.wallStart))/float64(time.Millisecond)
}

// Flush fast-forwards the engine until its event queue is empty, ignoring
// pacing — in-flight work completes immediately in virtual time. It is the
// graceful-drain primitive: pending queries are answered without waiting
// out their paced schedule.
func (b *Bridge) Flush() error {
	return b.Do(func() { b.eng.Run() })
}

// Retire gracefully ends the bridge's life: in-flight virtual work completes
// immediately (Flush), then the loop is stopped. It returns the final virtual
// instant — the node's terminal clock reading, closing its lifetime window
// for node-time accounting. This is the node-retirement primitive for the
// elastic autoscaler: after Retire the engine is quiescent and owned by the
// caller again, with every query answered and no events pending.
//
// If the bridge was already stopped (for example a gateway-wide Drain raced
// the retirement), the flush reports ErrStopped and the engine may still
// hold unfired events; the returned time is the last published clock either
// way. Retire is idempotent.
func (b *Bridge) Retire() (sim.Time, error) {
	err := b.Flush()
	b.Stop()
	return b.Now(), err
}

// loop is the bridge's event loop: fire everything due by the wall-derived
// virtual target, then sleep until the next event is due or work is
// injected.
func (b *Bridge) loop() {
	defer close(b.stopped)
	b.wallStart = b.epoch
	if b.wallStart.IsZero() {
		b.wallStart = time.Now()
	}
	b.virtStart = b.eng.Now()
	for {
		b.CatchUp()

		var timer *time.Timer
		var timerC <-chan time.Time
		if !b.unpaced {
			if next, ok := b.eng.NextAt(); ok {
				wait := time.Duration((next - b.eng.Now()) / b.speedup * float64(time.Millisecond))
				if wait < 0 {
					wait = 0
				}
				if wait > maxWait {
					wait = maxWait
				}
				timer = time.NewTimer(wait)
				timerC = timer.C
			}
		}
		select {
		case fn := <-b.cmds:
			// Catch the clock up to the injection's wall instant so fn sees
			// the virtual time at which the external work actually occurred.
			b.CatchUp()
			fn()
			// Greedily serve commands already queued behind this one before
			// recomputing pacing timers: under a burst of injections one loop
			// wakeup handles the whole burst, and each command still gets the
			// same advance-then-run treatment it would have gotten alone.
		drain:
			for {
				select {
				case fn := <-b.cmds:
					b.CatchUp()
					fn()
				default:
					break drain
				}
			}
		case <-timerC:
		case <-b.stop:
			if timer != nil {
				timer.Stop()
			}
			b.drainCommands()
			return
		}
		if timer != nil {
			timer.Stop()
		}
	}
}

// drainCommands runs commands that were queued before the stop signal won
// the race, so their Do callers unblock.
func (b *Bridge) drainCommands() {
	for {
		select {
		case fn := <-b.cmds:
			fn()
		default:
			return
		}
	}
}
