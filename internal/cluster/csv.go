package cluster

import (
	"encoding/csv"
	"fmt"
	"io"
)

// WriteTimelineCSV emits the per-bucket Figure 22 series for external
// plotting.
func (r *Result) WriteTimelineCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"start_ms", "offered_qps", "throughput_qps", "p99_ms", "avg_ms"}); err != nil {
		return err
	}
	for _, pt := range r.Timeline {
		row := []string{
			fmt.Sprintf("%.0f", pt.StartMS),
			fmt.Sprintf("%.3f", pt.OfferedQPS),
			fmt.Sprintf("%.3f", pt.Throughput),
			fmt.Sprintf("%.3f", pt.P99),
			fmt.Sprintf("%.3f", pt.AvgLat),
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
