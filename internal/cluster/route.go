package cluster

// LeastLoaded returns the element of candidates whose load is smallest,
// breaking ties toward the earliest candidate — the KubeAbacus routing rule
// (§7.6, "least outstanding work, ties by index"). It is factored out of the
// offline simulation so the online gateway's cluster router shares the exact
// policy. candidates must be non-empty.
func LeastLoaded(candidates []int, load func(int) float64) int {
	best := candidates[0]
	bestLoad := load(best)
	for _, c := range candidates[1:] {
		if l := load(c); l < bestLoad {
			best, bestLoad = c, l
		}
	}
	return best
}

// Pick is the allocation-free form of LeastLoaded for callers that already
// hold a dense candidate slice: it returns the index i in [0, n) minimizing
// load(i), ties toward the smallest index. With an elastic fleet the
// routable set changes at runtime, so routers filter into a scratch slice
// and pick over positions instead of materializing an index permutation.
// n must be positive.
func Pick(n int, load func(int) float64) int {
	best := 0
	bestLoad := load(0)
	for i := 1; i < n; i++ {
		if l := load(i); l < bestLoad {
			best, bestLoad = i, l
		}
	}
	return best
}
