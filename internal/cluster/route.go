package cluster

// LeastLoaded returns the element of candidates whose load is smallest,
// breaking ties toward the earliest candidate — the KubeAbacus routing rule
// (§7.6, "least outstanding work, ties by index"). It is factored out of the
// offline simulation so the online gateway's cluster router shares the exact
// policy. candidates must be non-empty.
func LeastLoaded(candidates []int, load func(int) float64) int {
	best := candidates[0]
	bestLoad := load(best)
	for _, c := range candidates[1:] {
		if l := load(c); l < bestLoad {
			best, bestLoad = c, l
		}
	}
	return best
}
