package cluster

import (
	"abacus/internal/dnn"
	"abacus/internal/executor"
	"abacus/internal/gpusim"
	"abacus/internal/predictor"
	"abacus/internal/sched"
	"abacus/internal/sim"
)

// clockworkController models Clockwork's architecture (§7.6): a central
// controller holds all pending queries, dispatches in earliest-deadline
// order to idle GPUs, and never starts a query it predicts will miss its
// deadline (such queries are dropped — Clockwork's "won't schedule until it
// would miss the QoS deadline" behaviour). Each GPU executes exclusively;
// only one model instance is active per GPU at a time, and activating a
// different model pays a weight-swap delay.
type clockworkController struct {
	eng     *sim.Engine
	profile gpusim.Profile
	// dropSink records controller-level admission drops, which never reach a
	// GPU (tagged node -1 by the caller).
	dropSink sched.Sink

	pending []*sched.Query
	gpus    []*clockworkGPU
}

type clockworkGPU struct {
	exec   *executor.Executor
	sink   sched.Sink // completion sink tagged with this GPU's node index
	active dnn.ModelID
	loaded bool
	busy   bool
}

func newClockworkController(eng *sim.Engine, profile gpusim.Profile, numGPUs int, sinkFor func(node int) sched.Sink) *clockworkController {
	c := &clockworkController{eng: eng, profile: profile, dropSink: sinkFor(-1)}
	for i := 0; i < numGPUs; i++ {
		dev := gpusim.New(eng, profile)
		c.gpus = append(c.gpus, &clockworkGPU{exec: executor.New(dev, 0.02), sink: sinkFor(i)})
	}
	return c
}

// submit accepts a query into the central queue.
func (c *clockworkController) submit(q *sched.Query) {
	c.pending = append(c.pending, q)
	c.dispatch()
}

// dispatch assigns EDF-ordered queries to idle GPUs, preferring a GPU that
// already has the query's model active.
func (c *clockworkController) dispatch() {
	for {
		if len(c.pending) == 0 {
			return
		}
		// Earliest deadline first; ties by arrival then ID (determinism).
		best := 0
		for i := 1; i < len(c.pending); i++ {
			a, b := c.pending[i], c.pending[best]
			if a.Deadline() < b.Deadline() ||
				(a.Deadline() == b.Deadline() && (a.Arrival < b.Arrival ||
					(a.Arrival == b.Arrival && a.ID < b.ID))) {
				best = i
			}
		}
		q := c.pending[best]

		gpu := c.pickGPU(q)
		if gpu == nil {
			return // all GPUs busy; retried on completion
		}

		c.pending = append(c.pending[:best], c.pending[best+1:]...)

		now := c.eng.Now()
		swap := 0.0
		if !gpu.loaded || gpu.active != q.Service.Model {
			swap = dnn.SwapTime(dnn.Get(q.Service.Model), c.profile)
		}
		exec := executor.ExclusiveLatency(q.Service.Model, q.Input, c.profile)
		if now+swap+exec > q.Deadline() {
			// Admission control: the query cannot meet its deadline.
			q.Dropped = true
			q.Finish = now
			c.dropSink(q)
			continue
		}
		c.run(gpu, q, swap)
	}
}

// pickGPU returns an idle GPU, preferring one with the model already
// active.
func (c *clockworkController) pickGPU(q *sched.Query) *clockworkGPU {
	var fallback *clockworkGPU
	for _, g := range c.gpus {
		if g.busy {
			continue
		}
		if g.loaded && g.active == q.Service.Model {
			return g
		}
		if fallback == nil {
			fallback = g
		}
	}
	return fallback
}

func (c *clockworkController) run(gpu *clockworkGPU, q *sched.Query, swap float64) {
	gpu.busy = true
	start := func() {
		m := dnn.Get(q.Service.Model)
		gpu.active = q.Service.Model
		gpu.loaded = true
		gpu.exec.Execute(predictor.Group{{
			Model:   q.Service.Model,
			OpStart: q.NextOp,
			OpEnd:   m.NumOps(),
			Batch:   q.Input.Batch,
			SeqLen:  q.Input.SeqLen,
		}}, func() {
			q.NextOp = m.NumOps()
			q.Finish = c.eng.Now()
			gpu.sink(q)
			gpu.busy = false
			c.dispatch()
		})
	}
	if swap > 0 {
		c.eng.Schedule(swap, start)
	} else {
		start()
	}
}
