package cluster

import "testing"

func TestLeastLoadedPicksSmallest(t *testing.T) {
	loads := []float64{3, 1, 2}
	got := LeastLoaded([]int{0, 1, 2}, func(i int) float64 { return loads[i] })
	if got != 1 {
		t.Errorf("LeastLoaded = %d, want 1", got)
	}
}

func TestLeastLoadedTiesGoEarliest(t *testing.T) {
	loads := []float64{2, 2, 2}
	if got := LeastLoaded([]int{0, 1, 2}, func(i int) float64 { return loads[i] }); got != 0 {
		t.Errorf("full tie picked %d, want 0", got)
	}
	// Candidate order, not index order, decides the tie-break: a router
	// restricted to healthy nodes passes a subset.
	if got := LeastLoaded([]int{2, 1}, func(i int) float64 { return loads[i] }); got != 2 {
		t.Errorf("subset tie picked %d, want 2 (first candidate)", got)
	}
}

func TestPickMatchesLeastLoaded(t *testing.T) {
	loads := []float64{3, 1, 2, 1}
	if got := Pick(len(loads), func(i int) float64 { return loads[i] }); got != 1 {
		t.Errorf("Pick = %d, want 1 (smallest load, earliest tie)", got)
	}
	// Pick over a dense slice must agree with LeastLoaded over the
	// identity candidate set — the two routers share one policy.
	idx := []int{0, 1, 2, 3}
	want := LeastLoaded(idx, func(i int) float64 { return loads[i] })
	if got := Pick(len(loads), func(i int) float64 { return loads[i] }); got != want {
		t.Errorf("Pick = %d, LeastLoaded = %d; policies diverged", got, want)
	}
	if got := Pick(1, func(int) float64 { return 9 }); got != 0 {
		t.Errorf("single candidate picked %d, want 0", got)
	}
}

func TestClusterPerNodeSummaries(t *testing.T) {
	for _, p := range []Policy{KubeAbacus, Clockwork} {
		res := smallCluster(t, p, 60, 8)
		if len(res.Nodes) == 0 {
			t.Fatalf("%v: no per-node summaries", p)
		}
		total, completed, dropped := 0, 0, 0
		servedNodes := 0
		for _, n := range res.Nodes {
			total += n.Queries
			completed += n.Completed
			dropped += n.Dropped
			if n.Node >= 0 && n.Completed > 0 {
				servedNodes++
				if n.P99 <= 0 || n.P50 > n.P99 {
					t.Errorf("%v node %d: implausible percentiles p50=%v p99=%v", p, n.Node, n.P50, n.P99)
				}
				if n.Goodput <= 0 {
					t.Errorf("%v node %d: goodput %v", p, n.Node, n.Goodput)
				}
			}
			if n.Node < 0 && n.Completed > 0 {
				t.Errorf("%v: controller-drop pseudo-node completed %d queries", p, n.Completed)
			}
		}
		if total != res.Total || completed != res.Completed || dropped != res.Dropped {
			t.Errorf("%v: node summaries (%d/%d/%d) disagree with totals (%d/%d/%d)",
				p, total, completed, dropped, res.Total, res.Completed, res.Dropped)
		}
		// Least-loaded routing over a 2-GPU fleet at 60 QPS must use both.
		if servedNodes < 2 {
			t.Errorf("%v: only %d nodes served traffic", p, servedNodes)
		}
	}
}
