package cluster

import (
	"bytes"
	"strings"
	"testing"

	"abacus/internal/dnn"
	"abacus/internal/gpusim"
	"abacus/internal/sched"
	"abacus/internal/sim"
	"abacus/internal/trace"
)

func quadModels() []dnn.ModelID {
	return []dnn.ModelID{dnn.ResNet101, dnn.ResNet152, dnn.VGG19, dnn.Bert}
}

func smallCluster(t *testing.T, policy Policy, qps float64, seed int64) Result {
	t.Helper()
	gen := trace.NewGenerator(quadModels(), seed)
	arrivals := gen.Poisson(qps, 5000)
	return Run(Config{
		Policy:      policy,
		Nodes:       2,
		GPUsPerNode: 1,
		Models:      quadModels(),
		QoS:         100,
		Arrivals:    arrivals,
		BucketMS:    1000,
	})
}

func TestClusterEmitsEveryQuery(t *testing.T) {
	for _, p := range []Policy{KubeAbacus, Clockwork} {
		res := smallCluster(t, p, 60, 1)
		if res.Total != res.Completed+res.Dropped {
			t.Errorf("%v: total %d != completed %d + dropped %d", p, res.Total, res.Completed, res.Dropped)
		}
		if res.Total == 0 {
			t.Errorf("%v: no queries processed", p)
		}
	}
}

func TestClusterDeterministic(t *testing.T) {
	a := smallCluster(t, KubeAbacus, 60, 2)
	b := smallCluster(t, KubeAbacus, 60, 2)
	if a.Completed != b.Completed || a.AvgLatency != b.AvgLatency || a.P99Latency != b.P99Latency {
		t.Errorf("non-deterministic cluster run: %+v vs %+v", a, b)
	}
}

// TestAbacusClusterBeatsClockwork reproduces the Figure 22 relationship: at
// a load that pressures Clockwork's sequential GPUs, node-level Abacus
// completes more queries (higher throughput), both keep p99 under QoS-ish,
// and Abacus trades a slightly higher average latency for throughput.
func TestAbacusClusterBeatsClockwork(t *testing.T) {
	const qps = 150
	abacus := smallCluster(t, KubeAbacus, qps, 3)
	clock := smallCluster(t, Clockwork, qps, 3)
	t.Logf("Abacus:    completed=%d dropped=%d avg=%.1f p99=%.1f", abacus.Completed, abacus.Dropped, abacus.AvgLatency, abacus.P99Latency)
	t.Logf("Clockwork: completed=%d dropped=%d avg=%.1f p99=%.1f", clock.Completed, clock.Dropped, clock.AvgLatency, clock.P99Latency)
	if abacus.Completed <= clock.Completed {
		t.Errorf("Abacus completed %d <= Clockwork %d", abacus.Completed, clock.Completed)
	}
	if abacus.Dropped >= clock.Dropped && clock.Dropped > 0 {
		t.Errorf("Abacus dropped %d >= Clockwork %d; paper: Abacus drops far fewer", abacus.Dropped, clock.Dropped)
	}
	if abacus.P99Latency > 150 {
		t.Errorf("Abacus p99 %.1f way past the 100ms QoS", abacus.P99Latency)
	}
}

func TestClockworkPaysSwapCost(t *testing.T) {
	// A single GPU alternating between two models must be slower under
	// Clockwork than repeating one model, because of weight swaps.
	gen := trace.NewGenerator([]dnn.ModelID{dnn.ResNet101, dnn.VGG19}, 4)
	alternating := gen.Poisson(40, 3000)
	resAlt := Run(Config{
		Policy: Clockwork, Nodes: 1, GPUsPerNode: 1,
		Models: []dnn.ModelID{dnn.ResNet101, dnn.VGG19},
		QoS:    100, Arrivals: alternating, BucketMS: 1000,
	})
	// Same arrival times, all to service 0.
	single := make([]trace.Arrival, len(alternating))
	copy(single, alternating)
	for i := range single {
		single[i].Service = 0
		single[i].Input.SeqLen = 0
	}
	resSingle := Run(Config{
		Policy: Clockwork, Nodes: 1, GPUsPerNode: 1,
		Models: []dnn.ModelID{dnn.ResNet101, dnn.VGG19},
		QoS:    100, Arrivals: single, BucketMS: 1000,
	})
	if resAlt.AvgLatency <= resSingle.AvgLatency {
		t.Errorf("alternating avg %.2f <= single-model avg %.2f; swap cost missing",
			resAlt.AvgLatency, resSingle.AvgLatency)
	}
}

func TestTimelineBuckets(t *testing.T) {
	res := smallCluster(t, KubeAbacus, 60, 5)
	if len(res.Timeline) < 5 {
		t.Fatalf("timeline has %d buckets, want >= 5 for a 5s trace at 1s buckets", len(res.Timeline))
	}
	var offered, tput float64
	for _, pt := range res.Timeline {
		offered += pt.OfferedQPS
		tput += pt.Throughput
	}
	if offered <= 0 || tput <= 0 {
		t.Errorf("empty timeline: offered=%v tput=%v", offered, tput)
	}
}

func TestMAFTraceDrives(t *testing.T) {
	gen := trace.NewGenerator(quadModels(), 6)
	arrivals := gen.MAF(trace.DefaultMAFConfig(80, 3*60_000, 6))
	res := Run(Config{
		Policy: KubeAbacus, Nodes: 2, GPUsPerNode: 2,
		Models: quadModels(), QoS: 100, Arrivals: arrivals,
	})
	if res.Completed == 0 {
		t.Fatal("MAF trace produced no completions")
	}
	if ratio := float64(res.Violations) / float64(res.Total); ratio > 0.1 {
		t.Errorf("violation ratio %.3f on a 4-GPU cluster at moderate load", ratio)
	}
}

func TestRunPanics(t *testing.T) {
	for name, cfg := range map[string]Config{
		"no-nodes":  {Policy: KubeAbacus, GPUsPerNode: 1, Models: quadModels(), QoS: 100},
		"no-models": {Policy: KubeAbacus, Nodes: 1, GPUsPerNode: 1, QoS: 100},
		"no-qos":    {Policy: KubeAbacus, Nodes: 1, GPUsPerNode: 1, Models: quadModels()},
	} {
		t.Run(name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Error("did not panic")
				}
			}()
			Run(cfg)
		})
	}
}

func TestPolicyString(t *testing.T) {
	if KubeAbacus.String() != "Abacus" || Clockwork.String() != "Clockwork" {
		t.Error("policy names wrong")
	}
}

func TestEnergyAccountingInResult(t *testing.T) {
	res := smallCluster(t, KubeAbacus, 60, 9)
	if res.EnergyJoules <= 0 {
		t.Fatalf("EnergyJoules = %v", res.EnergyJoules)
	}
	if res.JoulesPerQuery() <= 0 {
		t.Fatalf("JoulesPerQuery = %v", res.JoulesPerQuery())
	}
	// Two idle-floored GPUs for ~5s must consume at least the idle floor.
	if res.EnergyJoules < 2*80*4 {
		t.Errorf("energy %v below a plausible idle floor", res.EnergyJoules)
	}
}

func TestWriteTimelineCSV(t *testing.T) {
	res := smallCluster(t, Clockwork, 60, 10)
	var buf bytes.Buffer
	if err := res.WriteTimelineCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != len(res.Timeline)+1 {
		t.Fatalf("CSV has %d lines for %d buckets", len(lines), len(res.Timeline))
	}
}

func TestClockworkPrefersLoadedModel(t *testing.T) {
	eng := sim.NewEngine()
	var emitted []*sched.Query
	ctrl := newClockworkController(eng, gpusim.A100Profile(), 2, func(node int) sched.Sink {
		return func(q *sched.Query) { emitted = append(emitted, q) }
	})
	svcA := &sched.Service{ID: 0, Model: dnn.ResNet50, QoS: 1000}
	svcB := &sched.Service{ID: 1, Model: dnn.VGG16, QoS: 1000}
	submit := func(id int64, svc *sched.Service, at sim.Time) {
		q := &sched.Query{ID: id, Service: svc, Input: dnn.Input{Batch: 8}, Arrival: at}
		eng.ScheduleAt(at, func() { ctrl.submit(q) })
	}
	submit(1, svcA, 0)
	submit(2, svcB, 0)
	eng.Run()
	// Both GPUs now hold one model each.
	gpuOfA, gpuOfB := -1, -1
	for i, g := range ctrl.gpus {
		if g.loaded && g.active == dnn.ResNet50 {
			gpuOfA = i
		}
		if g.loaded && g.active == dnn.VGG16 {
			gpuOfB = i
		}
	}
	if gpuOfA < 0 || gpuOfB < 0 || gpuOfA == gpuOfB {
		t.Fatalf("models not spread across GPUs: A=%d B=%d", gpuOfA, gpuOfB)
	}
	// A second ResNet query must land on the GPU that already holds it
	// (no swap), leaving VGG16 active on the other.
	submit(3, svcA, eng.Now()+1)
	eng.Run()
	if ctrl.gpus[gpuOfB].active != dnn.VGG16 {
		t.Errorf("controller swapped the VGG GPU instead of reusing the ResNet GPU")
	}
	if len(emitted) != 3 {
		t.Errorf("emitted %d queries, want 3", len(emitted))
	}
}

func TestClockworkDropsUnmeetableDeadline(t *testing.T) {
	eng := sim.NewEngine()
	var emitted []*sched.Query
	ctrl := newClockworkController(eng, gpusim.A100Profile(), 1, func(node int) sched.Sink {
		return func(q *sched.Query) { emitted = append(emitted, q) }
	})
	// QoS far below even the solo execution time → admission control drops.
	svc := &sched.Service{ID: 0, Model: dnn.ResNet152, QoS: 0.5}
	q := &sched.Query{ID: 1, Service: svc, Input: dnn.Input{Batch: 32}, Arrival: 0}
	ctrl.submit(q)
	eng.Run()
	if len(emitted) != 1 || !emitted[0].Dropped {
		t.Fatalf("unmeetable query not dropped: %+v", emitted)
	}
}
