// Package cluster implements the paper's cluster-level evaluation (§7.6): a
// multi-node, multi-GPU serving simulation comparing
//
//   - KubeAbacus: Kubernetes-style interference-unaware routing (least
//     loaded GPU) with Abacus performing node-level scheduling on every GPU
//     (all services co-deployed quad-wise), against
//   - Clockwork: a central earliest-deadline-first controller that runs
//     queries sequentially on each GPU with one active model instance at a
//     time (activating a different model pays a weight-swap delay) and
//     drops queries that cannot meet their deadline.
//
// The workload is a synthetic MAF-like trace (see internal/trace and
// DESIGN.md for the substitution rationale).
package cluster

import (
	"fmt"

	"abacus/internal/dnn"
	"abacus/internal/executor"
	"abacus/internal/gpusim"
	"abacus/internal/predictor"
	"abacus/internal/runner"
	"abacus/internal/sched"
	"abacus/internal/serving"
	"abacus/internal/sim"
	"abacus/internal/stats"
	"abacus/internal/trace"
)

// Policy selects the cluster scheduler.
type Policy int

// The two compared cluster schedulers.
const (
	KubeAbacus Policy = iota
	Clockwork
)

// String returns the policy's display name.
func (p Policy) String() string {
	switch p {
	case KubeAbacus:
		return "Abacus"
	case Clockwork:
		return "Clockwork"
	default:
		return fmt.Sprintf("Policy(%d)", int(p))
	}
}

// Config describes a cluster run.
type Config struct {
	Policy       Policy
	Nodes        int
	GPUsPerNode  int
	Models       []dnn.ModelID // deployed on every GPU
	QoS          float64       // flat QoS target in ms (paper: 100)
	Arrivals     []trace.Arrival
	Profile      gpusim.Profile
	Sched        sched.Config
	Model        predictor.LatencyModel // Abacus duration model; nil → Oracle
	BucketMS     float64                // timeline bucket (default 60 000 = 1 minute)
	DrainMS      float64                // grace period after the last arrival
	ReservedSwap bool                   // charge Clockwork's model swap (default behaviour; exposed for ablation)
}

// TimelinePoint is one bucket of the Figure 22 timeline.
type TimelinePoint struct {
	StartMS    float64
	OfferedQPS float64
	Throughput float64 // completed (non-dropped) queries per second
	P99        float64 // over completions in the bucket
	AvgLat     float64
}

// Result aggregates a cluster run.
type Result struct {
	Policy     Policy
	Timeline   []TimelinePoint
	Total      int
	Completed  int
	Dropped    int
	Violations int
	AvgLatency float64
	P99Latency float64
	// EnergyJoules is the fleet's energy under the linear utilization model
	// (the §7.6 energy-efficiency observation).
	EnergyJoules float64
	// Nodes summarizes each GPU's share of the run (node -1 carries
	// Clockwork's controller-level admission drops).
	Nodes []serving.NodeSummary
}

// JoulesPerQuery returns fleet energy per completed query.
func (r *Result) JoulesPerQuery() float64 {
	if r.Completed == 0 {
		return 0
	}
	return r.EnergyJoules / float64(r.Completed)
}

// Throughput returns mean completed queries per second over the run.
func (r *Result) Throughput(durationMS float64) float64 {
	if durationMS <= 0 {
		return 0
	}
	return float64(r.Completed) / (durationMS / 1000)
}

// RunPolicies executes several cluster configurations concurrently — the
// Figure 22 policy comparison side by side. Each configuration owns its
// engine and fleet; a shared Arrivals slice is only read. Results come
// back in configuration order at any parallelism.
func RunPolicies(cfgs []Config, parallel int) []Result {
	return runner.Map(len(cfgs), parallel, func(i int) Result { return Run(cfgs[i]) })
}

// Run executes the cluster simulation.
func Run(cfg Config) Result {
	if cfg.Nodes <= 0 || cfg.GPUsPerNode <= 0 {
		panic("cluster: need at least one node and GPU")
	}
	if len(cfg.Models) == 0 {
		panic("cluster: no models")
	}
	if cfg.QoS <= 0 {
		panic("cluster: QoS target required")
	}
	profile := cfg.Profile
	if profile.NumSMs == 0 {
		profile = gpusim.A100Profile()
	}
	bucket := cfg.BucketMS
	if bucket <= 0 {
		bucket = 60_000
	}

	eng := sim.NewEngine()
	numGPUs := cfg.Nodes * cfg.GPUsPerNode

	services := make([]*sched.Service, len(cfg.Models))
	for i, id := range cfg.Models {
		services[i] = &sched.Service{ID: i, Model: id, QoS: cfg.QoS}
	}

	var records []serving.Record
	sinkFor := func(node int) sched.Sink {
		return func(q *sched.Query) {
			rec := serving.Record{
				Service:  q.Service.ID,
				Model:    q.Service.Model,
				Input:    q.Input,
				Arrival:  q.Arrival,
				Finish:   q.Finish,
				Dropped:  q.Dropped,
				Violated: q.Violated(),
				QoS:      q.Service.QoS,
				Node:     node,
			}
			if !q.Dropped {
				rec.Latency = q.Latency()
			}
			records = append(records, rec)
		}
	}

	var devices []*gpusim.Device
	var route func(q *sched.Query)
	switch cfg.Policy {
	case KubeAbacus:
		schedulers := make([]sched.Scheduler, numGPUs)
		all := make([]int, numGPUs)
		for i := range schedulers {
			all[i] = i
			dev := gpusim.New(eng, profile)
			devices = append(devices, dev)
			exec := executor.New(dev, 0.02)
			model := cfg.Model
			if model == nil {
				model = predictor.Oracle{Profile: profile}
			}
			schedCfg := cfg.Sched
			if schedCfg == (sched.Config{}) {
				schedCfg = sched.DefaultConfig()
			}
			schedulers[i] = sched.NewAbacus(eng, exec, model, schedCfg, sinkFor(i))
		}
		// Kubernetes-style routing: least outstanding work, ties by index —
		// the same LeastLoaded policy the online gateway's router reuses.
		route = func(q *sched.Query) {
			best := LeastLoaded(all, func(i int) float64 {
				return float64(schedulers[i].QueueLen())
			})
			schedulers[best].Enqueue(q)
		}
	case Clockwork:
		ctrl := newClockworkController(eng, profile, numGPUs, sinkFor)
		for _, g := range ctrl.gpus {
			devices = append(devices, g.exec.Device())
		}
		route = ctrl.submit
	default:
		panic(fmt.Sprintf("cluster: unknown policy %d", cfg.Policy))
	}

	var id int64
	var lastArrival float64
	offered := map[int]int{}
	for _, a := range cfg.Arrivals {
		a := a
		if a.Service < 0 || a.Service >= len(services) {
			panic("cluster: arrival service out of range")
		}
		svc := services[a.Service]
		id++
		q := &sched.Query{ID: id, Service: svc, Input: a.Input, Arrival: a.Time}
		transfer := dnn.TransferTime(dnn.Get(svc.Model), a.Input, profile)
		eng.ScheduleAt(a.Time+transfer, func() { route(q) })
		if a.Time > lastArrival {
			lastArrival = a.Time
		}
		offered[int(a.Time/bucket)]++
	}

	drain := cfg.DrainMS
	if drain <= 0 {
		drain = 10 * cfg.QoS
	}
	eng.RunUntil(lastArrival + drain)

	res := summarize(cfg.Policy, records, offered, bucket)
	em := gpusim.A100Energy()
	for _, dev := range devices {
		res.EnergyJoules += dev.Energy(em)
	}
	return res
}

func summarize(policy Policy, records []serving.Record, offered map[int]int, bucket float64) Result {
	res := Result{Policy: policy, Total: len(records)}
	perBucket := map[int][]float64{}
	var all []float64
	var lastEmit float64
	maxBucket := 0
	for b := range offered {
		if b > maxBucket {
			maxBucket = b
		}
	}
	for _, r := range records {
		if r.Finish > lastEmit {
			lastEmit = r.Finish
		}
		if r.Violated {
			res.Violations++
		}
		if r.Dropped {
			res.Dropped++
			continue
		}
		res.Completed++
		lat := r.Latency
		all = append(all, lat)
		b := int(r.Arrival / bucket)
		perBucket[b] = append(perBucket[b], lat)
		if b > maxBucket {
			maxBucket = b
		}
	}
	res.Nodes = serving.SummarizeNodes(records, lastEmit)
	if len(all) > 0 {
		res.AvgLatency = stats.Mean(all)
		res.P99Latency = stats.Percentile(all, 99)
	}
	for b := 0; b <= maxBucket; b++ {
		pt := TimelinePoint{
			StartMS:    float64(b) * bucket,
			OfferedQPS: float64(offered[b]) / (bucket / 1000),
			Throughput: float64(len(perBucket[b])) / (bucket / 1000),
		}
		if lats := perBucket[b]; len(lats) > 0 {
			pt.P99 = stats.Percentile(lats, 99)
			pt.AvgLat = stats.Mean(lats)
		}
		res.Timeline = append(res.Timeline, pt)
	}
	return res
}
