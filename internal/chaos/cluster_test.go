package chaos

import (
	"strings"
	"testing"
)

// TestClusterMigration is the cluster acceptance pin: under the built-in
// cluster-node-throttle scenario (four replicated nodes, node 2 at half
// speed for 4 s mid-run) the affinity router must migrate traffic off the
// throttled node, the cluster must hold its goodput floor, and the three
// healthy replicas must behave within noise of the fault-free
// cluster-baseline control.
func TestClusterMigration(t *testing.T) {
	base := mustRun(t, "cluster-baseline")
	thr := mustRun(t, "cluster-node-throttle")
	if len(base.Nodes) != 4 || len(thr.Nodes) != 4 {
		t.Fatalf("node reports: baseline %d, throttle %d, want 4", len(base.Nodes), len(thr.Nodes))
	}

	// The fault-free control is clean: no replica is quarantined at the end
	// (a startup transient may trip and recover — transitions even out), and
	// migrations stay a small fraction of admissions.
	for _, n := range base.Nodes {
		for _, s := range n.Services {
			if s.DegradeActive {
				t.Errorf("baseline node %d svc %d ends quarantined", n.Node, s.Service)
			}
		}
	}
	if base.Migrations*10 > base.Admitted {
		t.Errorf("baseline migrated %d of %d admissions; fault-free routing should rarely skip a replica",
			base.Migrations, base.Admitted)
	}

	// The throttled node trips its drift detectors and the router migrates:
	// node 2 serves well under half its fault-free share, the siblings absorb
	// it, and cluster-wide migrations rise well above the baseline's.
	if thr.Nodes[2].DegradeTransitions == 0 {
		t.Error("throttled node never tripped degraded mode")
	}
	if thr.Nodes[2].Routed*2 > base.Nodes[2].Routed {
		t.Errorf("throttled node still served %d (fault-free %d); migration did not bite",
			thr.Nodes[2].Routed, base.Nodes[2].Routed)
	}
	var absorbed int64
	for _, id := range []int{0, 1, 3} {
		absorbed += thr.Nodes[id].MigratedIn
	}
	if absorbed == 0 {
		t.Error("healthy replicas absorbed no migrated traffic")
	}
	if thr.Migrations < 2*base.Migrations {
		t.Errorf("migrations %d under throttle vs %d fault-free; expected a clear rise",
			thr.Migrations, base.Migrations)
	}

	// QoS floor: migration (not shedding) is the recovery mechanism, so the
	// cluster keeps the same goodput floor the single-GPU recovery scenario
	// asserts.
	if thr.Goodput < 0.99 {
		t.Errorf("cluster goodput %v under node throttle, want >= 0.99", thr.Goodput)
	}

	// Healthy-replica isolation: nodes 0, 1, 3 never trip or shed during the
	// fault run, exactly like the fault-free control, and their violation
	// counts stay within noise of it.
	for _, id := range []int{0, 1, 3} {
		n, b := thr.Nodes[id], base.Nodes[id]
		if n.DegradeShed != 0 {
			t.Errorf("healthy node %d shed %d queries", id, n.DegradeShed)
		}
		for _, s := range n.Services {
			if s.DegradeActive {
				t.Errorf("healthy node %d svc %d ends quarantined", id, s.Service)
			}
		}
		if n.Violated > b.Violated+2 {
			t.Errorf("healthy node %d violated %d vs %d fault-free; absorbed load broke its SLOs",
				id, n.Violated, b.Violated)
		}
	}

	// Per-node rows are conserved against the cluster totals.
	for _, rep := range []*Report{base, thr} {
		var adm, comp, routed int64
		for _, n := range rep.Nodes {
			adm += n.Admitted
			comp += n.Completed
			routed += n.Routed
			if n.Admitted != n.Completed+n.Dropped {
				t.Errorf("%s node %d: admitted %d != completed %d + dropped %d",
					rep.Name, n.Node, n.Admitted, n.Completed, n.Dropped)
			}
			if n.Completed != n.Good+n.Violated {
				t.Errorf("%s node %d: completed %d != good %d + violated %d",
					rep.Name, n.Node, n.Completed, n.Good, n.Violated)
			}
			if n.Routed != n.Admitted {
				t.Errorf("%s node %d: routed %d != admitted %d", rep.Name, n.Node, n.Routed, n.Admitted)
			}
		}
		if adm != rep.Admitted || comp != rep.Completed || routed != rep.Admitted {
			t.Errorf("%s: node sums admitted %d completed %d routed %d vs cluster %d/%d",
				rep.Name, adm, comp, routed, rep.Admitted, rep.Completed)
		}
	}

	// The rendered report carries the per-node rows.
	if txt := thr.Text(); !strings.Contains(txt, "node 2:") || !strings.Contains(txt, "migrations ") {
		t.Errorf("cluster report text missing node rows:\n%s", txt)
	}
}

// TestClusterSingleNodeUnchanged pins that the cluster refactor left
// single-node scenarios untouched: no node rows, no migrations, and the
// Nodes default resolves to one.
func TestClusterSingleNodeUnchanged(t *testing.T) {
	rep := mustRun(t, "baseline")
	if len(rep.Nodes) != 0 {
		t.Errorf("single-node report grew %d node rows", len(rep.Nodes))
	}
	if rep.Migrations != 0 {
		t.Errorf("single-node report counted %d migrations", rep.Migrations)
	}
	if strings.Contains(rep.Text(), "node 0:") {
		t.Error("single-node report text renders node rows")
	}
}

// TestClusterWindowValidation covers node-scoped window rules.
func TestClusterWindowValidation(t *testing.T) {
	// Request faults act before routing and cannot be node-scoped.
	s := Script{Windows: []Window{{Kind: KindDrop, Start: 0, End: 100, Magnitude: 0.1, Node: 1}}}
	if err := s.Validate(); err == nil {
		t.Error("node-scoped drop window accepted")
	}
	// Negative nodes are rejected.
	s = Script{Windows: []Window{{Kind: KindGPUThrottle, Start: 0, End: 100, Magnitude: 0.5, Node: -1}}}
	if err := s.Validate(); err == nil {
		t.Error("negative node accepted")
	}
	// A window may not target a node the scenario does not have.
	_, err := Run(Scenario{
		Name: "oob", Seed: 1, DurationMS: 100, Nodes: 2,
		Script: Script{Windows: []Window{{Kind: KindGPUThrottle, Start: 0, End: 50, Magnitude: 0.5, Node: 2}}},
	})
	if err == nil {
		t.Error("window targeting node 2 of 2 accepted")
	}
	// Same-kind windows on different nodes may overlap; on the same node
	// they may not.
	s = Script{Windows: []Window{
		{Kind: KindGPUThrottle, Start: 0, End: 100, Magnitude: 0.5, Node: 1},
		{Kind: KindGPUThrottle, Start: 50, End: 150, Magnitude: 0.7, Node: 2},
	}}
	if err := s.Validate(); err != nil {
		t.Errorf("overlapping throttles on distinct nodes rejected: %v", err)
	}
	s = Script{Windows: []Window{
		{Kind: KindGPUThrottle, Start: 0, End: 100, Magnitude: 0.5, Node: 1},
		{Kind: KindGPUThrottle, Start: 50, End: 150, Magnitude: 0.7, Node: 1},
	}}
	if err := s.Validate(); err == nil {
		t.Error("overlapping throttles on one node accepted")
	}
}

func mustRun(t *testing.T, name string) *Report {
	t.Helper()
	sc, ok := Lookup(name)
	if !ok {
		t.Fatalf("scenario %s not found", name)
	}
	rep, err := Run(sc)
	if err != nil {
		t.Fatalf("running %s: %v", name, err)
	}
	return rep
}
