// Simulation hot-path benchmark artifact (BENCH_sim.json) and its trend
// rules: cmd/abacus-simbench runs the engine and device microbenchmarks
// (event schedule/fire, heap churn, overlapped kernel chains) via
// testing.Benchmark. These are the substrate under every serving decision —
// PR 10 made them allocation-free, and the trend gate holds the floor:
// allocs/op is deterministic and gated tightly (10% + 2 absolute slack, so
// a 0-alloc baseline flags on +3), ns/op generously (collapse-only, since
// wall time on shared CI runners is noisy).
package chaos

import (
	"encoding/json"
	"fmt"
)

// SimBench is one simulation hot-path microbenchmark result, in
// testing.Benchmark units.
type SimBench struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
}

// SimArtifact is the BENCH_sim.json shape, uploaded by the bench lane next
// to BENCH_http.json and diffed by abacus-trend.
type SimArtifact struct {
	// WallSeconds is wall-clock and ignored by trend comparison.
	WallSeconds float64    `json:"wall_seconds,omitempty"`
	Benchmarks  []SimBench `json:"benchmarks"`
}

// ParseSimArtifact decodes a simulation benchmark artifact.
func ParseSimArtifact(data []byte) (SimArtifact, error) {
	var a SimArtifact
	if err := json.Unmarshal(data, &a); err != nil {
		return SimArtifact{}, fmt.Errorf("chaos: parsing sim artifact: %w", err)
	}
	if len(a.Benchmarks) == 0 {
		return SimArtifact{}, fmt.Errorf("chaos: sim artifact has no benchmarks")
	}
	return a, nil
}

// SimTrendOptions sets the simulation hot-path regression tolerances. The
// zero value takes the defaults.
type SimTrendOptions struct {
	// MaxAllocsGrowth is the largest tolerated relative allocs/op increase
	// (default 0.10 — allocation counts are deterministic, so this is the
	// tight tripwire).
	MaxAllocsGrowth float64
	// AllocSlack is the absolute allocs/op allowance on top of
	// MaxAllocsGrowth, so the 0-alloc baselines do not flag on +1 jitter
	// from the runtime (default 2).
	AllocSlack float64
	// MaxNsGrowth is the largest tolerated relative ns/op increase
	// (default 1.0 = 100%: collapse-only, shared CI runners are noisy).
	MaxNsGrowth float64
}

func (o SimTrendOptions) withDefaults() SimTrendOptions {
	if o.MaxAllocsGrowth <= 0 {
		o.MaxAllocsGrowth = 0.10
	}
	if o.AllocSlack <= 0 {
		o.AllocSlack = 2
	}
	if o.MaxNsGrowth <= 0 {
		o.MaxNsGrowth = 1.0
	}
	return o
}

// CompareSimTrend diffs two simulation benchmark artifacts: allocs/op
// growth beyond the tight tolerance and ns/op growth beyond the generous
// one, per benchmark, plus benchmarks that disappeared. Issues come back in
// base benchmark order.
func CompareSimTrend(base, head SimArtifact, opts SimTrendOptions) []TrendIssue {
	opts = opts.withDefaults()
	var issues []TrendIssue
	byName := make(map[string]SimBench, len(head.Benchmarks))
	for _, b := range head.Benchmarks {
		byName[b.Name] = b
	}
	for _, b := range base.Benchmarks {
		h, ok := byName[b.Name]
		if !ok {
			issues = append(issues, TrendIssue{Scenario: b.Name, Metric: "missing"})
			continue
		}
		if h.AllocsPerOp > b.AllocsPerOp*(1+opts.MaxAllocsGrowth)+opts.AllocSlack {
			issues = append(issues, TrendIssue{
				Scenario: b.Name, Metric: "allocs_per_op", Base: b.AllocsPerOp, Head: h.AllocsPerOp,
			})
		}
		if b.NsPerOp > 0 && (h.NsPerOp-b.NsPerOp)/b.NsPerOp > opts.MaxNsGrowth {
			issues = append(issues, TrendIssue{
				Scenario: b.Name, Metric: "ns_per_op", Base: b.NsPerOp, Head: h.NsPerOp,
			})
		}
	}
	return issues
}
