package chaos

import (
	"fmt"

	"abacus/internal/admit"
	"abacus/internal/calib"
	"abacus/internal/cluster"
	"abacus/internal/core"
	"abacus/internal/dnn"
	"abacus/internal/gpusim"
	"abacus/internal/predictor"
	"abacus/internal/scaler"
	"abacus/internal/sched"
	"abacus/internal/sim"
	"abacus/internal/stats"
	"abacus/internal/trace"
	"abacus/internal/workload"
)

// RetryConfig shapes the scenario's virtual retrying client. Unlike the
// wall-clock server.RetryPolicy, everything here is virtual ms on the
// simulation clock, so retry schedules replay exactly.
type RetryConfig struct {
	// MaxAttempts bounds total tries, first included (default 3).
	MaxAttempts int `json:"max_attempts"`
	// BaseBackoffMS seeds the exponential schedule (default 10 virtual ms).
	BaseBackoffMS float64 `json:"base_backoff_ms"`
	// Multiplier grows the backoff between attempts (default 2).
	Multiplier float64 `json:"multiplier"`
	// MaxBackoffMS caps a single backoff (default 200).
	MaxBackoffMS float64 `json:"max_backoff_ms"`
	// Jitter is the multiplicative half-width of the seeded jitter band
	// (default 0.2: backoffs scale by [0.8, 1.2)).
	Jitter float64 `json:"jitter"`
}

func (c RetryConfig) withDefaults() RetryConfig {
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 3
	}
	if c.BaseBackoffMS <= 0 {
		c.BaseBackoffMS = 10
	}
	if c.Multiplier < 1 {
		c.Multiplier = 2
	}
	if c.MaxBackoffMS <= 0 {
		c.MaxBackoffMS = 200
	}
	if c.Jitter < 0 || c.Jitter >= 1 {
		c.Jitter = 0.2
	}
	return c
}

// Scenario is one replayable chaos experiment.
type Scenario struct {
	Name string
	// Models are the co-located services (default ResNet-152 + Inception-v3).
	Models []dnn.ModelID
	// Nodes is how many per-GPU nodes serve the deployment (default 1). With
	// several, every node hosts every model (the replicated placement the
	// online gateway defaults to for small deployments), all devices share
	// one virtual clock, and the affinity router sends each query to the
	// least-loaded node whose drift detector for its service is quiet —
	// fault-driven migration included in the determinism guarantee.
	Nodes int
	// QPS is the total Poisson arrival rate (default 30).
	QPS float64
	// DurationMS is the arrival-window length in virtual ms (default 10000).
	DurationMS float64
	// Seed drives arrivals, fault coin flips, predictor noise, and retry
	// jitter; same seed + same script ⇒ identical report.
	Seed int64
	// QoSFactor scales QoS targets (default 2, the paper's setting).
	QoSFactor float64
	// QueueCap bounds admitted-but-unfinished queries per service (default 64).
	QueueCap int
	// Script holds the fault windows.
	Script Script
	// Degrade tunes the degraded-mode controller (zero value = enabled with
	// defaults; Disabled for the no-recovery baseline).
	Degrade admit.DegradeConfig
	// Calib, when non-nil, enables online latency-model calibration: the
	// scheduler and admission predict through a calib.Calibrated chain and
	// every completion feeds the tracker (per node in cluster runs). Nil
	// leaves calibration off, so the pre-calibration scenario floors are
	// untouched.
	Calib *calib.Config
	// Retry, when non-nil, gives the virtual client retry behavior.
	Retry *RetryConfig
	// PredictCache, when positive, memoizes the pure oracle behind the
	// perturbation layer with a predictor.Memoized of that capacity. The
	// cache sits below Perturbed — caching above it would change the noise
	// stream — so reports stay byte-identical cache on or off.
	PredictCache int
	// Workload, when non-nil, replaces the default Poisson arrival source
	// with a declarative workload spec (internal/workload): phases, bursty
	// processes, client cohorts. The spec binds against Models; its duration
	// overrides DurationMS and its seed falls back to Seed when unset. QPS is
	// ignored (the report records the spec's realized rate instead).
	Workload *workload.Spec
	// MAF, when non-nil, replaces the arrival source with the fig22
	// synthetic Azure-Functions-like trace (diurnal sinusoid over per-minute
	// Poisson rates, optional burst minutes). Its duration overrides
	// DurationMS; QPS is ignored (the report records the realized rate).
	// Mutually exclusive with Workload.
	MAF *trace.MAFConfig
	// Autoscale, when non-nil, replaces the fixed Nodes fleet with the live
	// elastic scaler: the run starts at MinNodes replicated nodes, a
	// virtual-time control loop observes offered QPS each interval, and
	// node adds (with a modeled warm-up window served only a probe trickle)
	// and drains (graceful: in-flight queries finish, then the node
	// retires) play out as ordinary engine events — the determinism
	// guarantee is unchanged. Nodes must be zero or equal MinNodes; fault
	// windows may only target the founding nodes.
	Autoscale *scaler.Config
}

// Report is one scenario's outcome. All fields derive from virtual time and
// seeded randomness only, so a report is byte-identical across runs and
// parallelism widths.
type Report struct {
	Name string  `json:"name"`
	Seed int64   `json:"seed"`
	QPS  float64 `json:"qps"`

	Sent     int64 `json:"sent"`     // client requests (arrivals)
	Attempts int64 `json:"attempts"` // send attempts incl. retries
	Retries  int64 `json:"retries"`

	Admitted  int64 `json:"admitted"`
	Completed int64 `json:"completed"`
	Good      int64 `json:"good"` // completed within deadline
	Violated  int64 `json:"violated"`
	Dropped   int64 `json:"dropped"` // admitted, then dropped by the controller

	RejectedDeadline int64 `json:"rejected_deadline"` // verdicts, not requests
	RejectedQueue    int64 `json:"rejected_queue"`
	RejectedDegraded int64 `json:"rejected_degraded"`
	GaveUp           int64 `json:"gave_up"` // requests never admitted within budget

	FaultDrops      int64 `json:"fault_drops"` // requests lost in transit
	FaultDuplicates int64 `json:"fault_duplicates"`
	FaultMalformed  int64 `json:"fault_malformed"`

	DegradeTransitions int64   `json:"degrade_transitions"`
	DegradeShed        int64   `json:"degrade_shed"`
	FinalDivergence    float64 `json:"final_divergence"`

	// Migrations counts admissions routed away from a degraded replica —
	// zero outside cluster runs.
	Migrations int64 `json:"migrations,omitempty"`

	P50MS float64 `json:"p50_ms"`
	P99MS float64 `json:"p99_ms"`
	// Goodput is the deadline-met rate among admitted queries — the QoS
	// floor chaos scenarios assert.
	Goodput float64 `json:"goodput"`

	// Calibrated reports whether online calibration was active for the run.
	Calibrated bool `json:"calibrated"`
	// Services breaks the outcome down per co-located service, in service
	// order: each carries its own admission, drift, and calibration state so
	// scenarios can assert that one service's fault did not bleed into its
	// neighbours. Cluster runs aggregate across nodes (sums for counters,
	// worst-case for margins and divergence).
	Services []ServiceReport `json:"services"`
	// Nodes breaks a cluster run down per node; nil for single-node runs.
	// Elastic runs list every node that ever existed, retired ones
	// included, each with its lifetime Window.
	Nodes []NodeReport `json:"nodes,omitempty"`
	// Autoscale summarizes the elastic control loop; nil for fixed fleets.
	Autoscale *AutoscaleReport `json:"autoscale,omitempty"`
}

// AutoscaleReport is the elastic run's scaling summary: what the control
// loop did and what it cost against static peak provisioning.
type AutoscaleReport struct {
	MinNodes   int     `json:"min_nodes"`
	MaxNodes   int     `json:"max_nodes"`
	IntervalMS float64 `json:"interval_ms"`
	WarmupMS   float64 `json:"warmup_ms"`

	Ticks          int64 `json:"ticks"`
	ScaleOuts      int64 `json:"scale_outs"` // node-add actions
	ScaleIns       int64 `json:"scale_ins"`  // node-drain actions
	HeldHysteresis int64 `json:"held_hysteresis"`
	HeldCooldown   int64 `json:"held_cooldown"`
	HeldMaxNodes   int64 `json:"held_max_nodes"`

	PeakNodes  int     `json:"peak_nodes"`
	FinalNodes int     `json:"final_nodes"` // live when the run ended
	EndMS      float64 `json:"end_ms"`      // final virtual instant, drain included

	// NodeMS is accumulated node-time; StaticPeakNodeMS is what a fixed
	// fleet of PeakNodes would have burned over the same span. SavedFrac is
	// the node-hours-saved figure the trend gate holds.
	NodeMS           float64 `json:"node_ms"`
	StaticPeakNodeMS float64 `json:"static_peak_node_ms"`
	SavedFrac        float64 `json:"node_ms_saved_frac"`

	ForecastQPS float64 `json:"forecast_qps"` // EWMA at end of run
}

// ServiceReport is one service's slice of a chaos report.
type ServiceReport struct {
	Service int    `json:"service"`
	Model   string `json:"model"`

	Admitted  int64 `json:"admitted"`
	Completed int64 `json:"completed"`
	Good      int64 `json:"good"`
	Violated  int64 `json:"violated"`
	Dropped   int64 `json:"dropped"`

	RejectedDegraded   int64   `json:"rejected_degraded"`
	DegradeActive      bool    `json:"degrade_active"`
	DegradeTransitions int64   `json:"degrade_transitions"`
	Divergence         float64 `json:"divergence_ewma"`
	Margin             float64 `json:"margin"`

	CalibSlope       float64 `json:"calib_slope"`
	CalibInterceptMS float64 `json:"calib_intercept_ms"`
	CalibSamples     int64   `json:"calib_samples"`
}

// NodeReport is one node's slice of a cluster chaos report.
type NodeReport struct {
	Node int `json:"node"`

	// Routed counts admissions the router placed here; MigratedIn the
	// subset placed here because a degraded sibling was skipped.
	Routed     int64 `json:"routed"`
	MigratedIn int64 `json:"migrated_in"`

	Admitted  int64 `json:"admitted"`
	Completed int64 `json:"completed"`
	Good      int64 `json:"good"`
	Violated  int64 `json:"violated"`
	Dropped   int64 `json:"dropped"`

	DegradeTransitions int64   `json:"degrade_transitions"`
	DegradeShed        int64   `json:"degrade_shed"`
	FinalDivergence    float64 `json:"final_divergence"`

	// Services is the per-node, per-service breakdown, in service order.
	Services []ServiceReport `json:"services"`

	// Window is the node's lifetime in elastic runs: provisioned at
	// FirstMS, retired (or run over) at LastMS. Per-node rates must be
	// judged against this window, not the whole run — a node retired in
	// the trough served a fraction of the span, and dividing its counts by
	// the full run would dilute them. Nil for fixed fleets.
	Window *NodeWindow `json:"window,omitempty"`
}

// NodeWindow bounds one elastic node's lifetime in virtual ms.
type NodeWindow struct {
	FirstMS float64 `json:"first_ms"`
	LastMS  float64 `json:"last_ms"`
}

// request is one virtual client's state across attempts.
type request struct {
	idx      int
	svc      int
	in       dnn.Input
	deadline sim.Time
	attempts int
}

// pend is one admitted query awaiting completion.
type pend struct {
	predMS float64
	workMS float64
}

// hNode is one node's serving stack inside the harness: its own device on
// the shared engine, runtime, admitter, perturbation layer, and optional
// calibration tracker. The lifecycle flags only move in elastic runs; a
// fixed fleet leaves all three false (fully routable forever).
type hNode struct {
	id      int
	rt      *core.Runtime
	adm     *admit.Admitter
	perturb *predictor.Perturbed
	memo    *predictor.Memoized // nil when the oracle cache is off
	tracker *calib.Tracker      // nil when calibration is off
	rep     *NodeReport         // nil for single-node runs

	warming  bool // paying warm-up: probe trickle only
	draining bool // unroutable, waiting out in-flight queries
	retired  bool // drained and stopped
	inflight int  // admitted queries not yet resolved
}

// harness wires one scenario run; everything runs on the engine goroutine.
type harness struct {
	sc       Scenario
	retry    RetryConfig
	eng      *sim.Engine
	nodes    []*hNode
	nodeReps []*NodeReport // stable per-node reports (folded into rep.Nodes)
	probes   []int64       // per-service route counter driving quarantine probes
	pending  map[*sched.Query]*pend
	rep      *Report
	lats     []float64

	ctrl        *scaler.Controller // nil for fixed fleets
	tickQueries int64              // offered arrivals since the last scale tick

	// route scratch, reused across calls to keep the hot path allocation
	// free now that the candidate set is dynamic.
	scratchBase    []*hNode
	scratchHealthy []*hNode
}

// probeEvery is the quarantine-probe cadence: every Nth routing decision per
// service ignores the health filter, so a quarantined replica keeps receiving
// a trickle of traffic. Its drift EWMA then tracks reality — a replica that
// healed (or tripped on a startup transient) decays below the exit ratio and
// rejoins, instead of staying frozen out forever because no completions ever
// update it.
const probeEvery = 16

func gpuProfile() gpusim.Profile { return gpusim.A100Profile() }

// newHNode builds one node. All nodes share eng (nil eng lets core build its
// own for the single-node path — behaviorally identical, since a lone device
// on a fresh engine is exactly the pre-cluster harness).
func (h *harness) newHNode(id int, eng *sim.Engine) (*hNode, error) {
	sc := h.sc
	n := &hNode{id: id}
	oracle := predictor.LatencyModel(predictor.Oracle{Profile: gpuProfile()})
	if sc.PredictCache > 0 {
		n.memo = predictor.NewMemoized(oracle, sc.PredictCache)
		oracle = n.memo
	}
	// Distinct noise streams per node; node 0 keeps the scenario seed so
	// single-node reports are unchanged by the cluster refactor.
	n.perturb = predictor.NewPerturbed(oracle, 1, 0, sc.Seed+int64(id))
	var model predictor.LatencyModel = n.perturb
	if sc.Calib != nil {
		cc := *sc.Calib
		// Correction updates move the admitter's memoized solo predictions;
		// drop them so the next verdict sees the corrected model. n.adm is
		// assigned below, before any feedback can arrive.
		cc.OnUpdate = func(int) { n.adm.InvalidateCache() }
		n.tracker = calib.NewTracker(cc, sc.Models)
		model = calib.NewCalibrated(n.perturb, n.tracker)
	}
	var dev *gpusim.Device
	if eng != nil {
		dev = gpusim.New(eng, gpuProfile())
	}
	rt, err := core.New(core.Config{
		Models:    sc.Models,
		QoSFactor: sc.QoSFactor,
		Model:     model,
		Profile:   gpuProfile(),
		Device:    dev,
		OnResult:  func(q *sched.Query) { h.onResult(n, q) },
	})
	if err != nil {
		return nil, err
	}
	n.rt = rt
	n.adm = admit.New(model, gpuProfile(), rt.Services(), sc.QueueCap, 0.02,
		admit.NewDegrade(sc.Degrade, len(rt.Services())))
	return n, nil
}

// Run executes one scenario to completion in virtual time.
func Run(sc Scenario) (*Report, error) {
	if sc.Name == "" {
		sc.Name = "unnamed"
	}
	if len(sc.Models) == 0 {
		sc.Models = []dnn.ModelID{dnn.ResNet152, dnn.InceptionV3}
	}
	if sc.Nodes == 0 {
		sc.Nodes = 1
	}
	if sc.Nodes < 1 {
		return nil, fmt.Errorf("chaos: %d nodes", sc.Nodes)
	}
	if sc.QPS <= 0 {
		sc.QPS = 30
	}
	if sc.DurationMS <= 0 {
		sc.DurationMS = 10000
	}
	var compiled *workload.Compiled
	if sc.Workload != nil {
		if sc.MAF != nil {
			return nil, fmt.Errorf("chaos: Workload and MAF are mutually exclusive")
		}
		var err error
		compiled, err = sc.Workload.Bind(sc.Models, sc.Seed)
		if err != nil {
			return nil, err
		}
		sc.DurationMS = sc.Workload.DurationMS
	}
	if sc.MAF != nil {
		sc.DurationMS = sc.MAF.DurationMS
	}
	var ctrl *scaler.Controller
	if sc.Autoscale != nil {
		var err error
		ctrl, err = scaler.New(*sc.Autoscale)
		if err != nil {
			return nil, err
		}
		min := ctrl.Config().MinNodes
		if sc.Nodes != 1 && sc.Nodes != min {
			return nil, fmt.Errorf("chaos: autoscale starts at MinNodes %d, not Nodes %d", min, sc.Nodes)
		}
		sc.Nodes = min
	}
	if sc.QoSFactor == 0 {
		sc.QoSFactor = 2
	}
	if sc.QueueCap <= 0 {
		sc.QueueCap = 64
	}
	if err := sc.Script.Validate(); err != nil {
		return nil, err
	}
	for _, w := range sc.Script.Windows {
		if w.Node >= sc.Nodes {
			return nil, fmt.Errorf("chaos: %s window targets node %d of %d", w.Kind, w.Node, sc.Nodes)
		}
	}

	h := &harness{
		sc:      sc,
		retry:   RetryConfig{MaxAttempts: 1}, // no retries unless configured
		pending: make(map[*sched.Query]*pend),
		rep:     &Report{Name: sc.Name, Seed: sc.Seed, QPS: sc.QPS},
		ctrl:    ctrl,
	}
	if sc.Retry != nil {
		h.retry = sc.Retry.withDefaults()
	}

	var shared *sim.Engine
	if sc.Nodes > 1 || ctrl != nil {
		// One clock, N devices: every node's runtime shares the engine so
		// per-node fault windows and cross-node routing are one ordered
		// event stream. Elastic runs always share, even when they open at a
		// single node — more can appear.
		shared = sim.NewEngine()
	}
	for id := 0; id < sc.Nodes; id++ {
		n, err := h.newHNode(id, shared)
		if err != nil {
			return nil, err
		}
		if shared != nil {
			nr := h.newNodeReport(n)
			if ctrl != nil {
				nr.Window = &NodeWindow{} // founders open at t=0
			}
			n.rep = nr
		}
		h.nodes = append(h.nodes, n)
	}
	h.probes = make([]int64, len(sc.Models))
	h.eng = h.nodes[0].rt.Engine()
	if sc.Calib != nil {
		h.rep.Calibrated = h.nodes[0].tracker.Enabled()
	}
	h.rep.Services = make([]ServiceReport, len(sc.Models))
	for i, svc := range h.nodes[0].rt.Services() {
		h.rep.Services[i] = ServiceReport{Service: i, Model: svc.Model.String(), CalibSlope: 1}
	}

	// Fault windows first, so a window opening at t applies before any
	// arrival or retry scheduled at the same instant; scale ticks next, so
	// a tick at t sizes the fleet before that instant's arrivals.
	for _, w := range sc.Script.Windows {
		h.scheduleWindow(w)
	}
	if ctrl != nil {
		interval := ctrl.Config().IntervalMS
		for t := interval; t <= sc.DurationMS; t += interval {
			at := sim.Time(t)
			h.eng.ScheduleAt(at, func() { h.scaleTick(at) })
		}
	}
	var arrivals []trace.Arrival
	switch {
	case compiled != nil:
		arrivals = compiled.Materialize()
		// The offered rate is a property of the spec, not a knob; report the
		// realized mean so floors stay meaningful.
		h.rep.QPS = float64(len(arrivals)) / (sc.DurationMS / 1000)
	case sc.MAF != nil:
		arrivals = trace.NewGenerator(sc.Models, sc.Seed).MAF(*sc.MAF)
		h.rep.QPS = float64(len(arrivals)) / (sc.DurationMS / 1000)
	default:
		arrivals = trace.NewGenerator(sc.Models, sc.Seed).Poisson(sc.QPS, sc.DurationMS)
	}
	for i, a := range arrivals {
		r := &request{idx: i, svc: a.Service, in: a.Input}
		r.deadline = sim.Time(a.Time) + sim.Time(h.nodes[0].rt.Services()[a.Service].QoS)
		at := sim.Time(a.Time)
		h.eng.ScheduleAt(at, func() { h.attempt(r, at) })
	}
	h.rep.Sent = int64(len(arrivals))
	h.eng.Run()

	h.finalize()
	if len(h.pending) != 0 {
		return nil, fmt.Errorf("chaos: %d queries still pending after drain", len(h.pending))
	}
	return h.rep, nil
}

// finalize folds drift, calibration, and latency state into the report.
// Cluster runs aggregate per-service state across nodes: counters sum,
// margins and divergences take the worst case.
func (h *harness) finalize() {
	for _, n := range h.nodes {
		st := n.adm.Degrade().Snapshot()
		h.rep.DegradeTransitions += st.Transitions
		h.rep.DegradeShed += st.Shed
		if st.Divergence > h.rep.FinalDivergence {
			h.rep.FinalDivergence = st.Divergence
		}
		if n.rep != nil {
			n.rep.DegradeTransitions = st.Transitions
			n.rep.DegradeShed = st.Shed
			n.rep.FinalDivergence = st.Divergence
		}
		for i, ds := range n.adm.Degrade().ServiceSnapshots() {
			sr := &h.rep.Services[i]
			sr.RejectedDegraded += ds.Shed
			sr.DegradeActive = sr.DegradeActive || ds.Active
			sr.DegradeTransitions += ds.Transitions
			if ds.Divergence > sr.Divergence {
				sr.Divergence = ds.Divergence
			}
			if ds.Margin > sr.Margin {
				sr.Margin = ds.Margin
			}
			if n.rep != nil {
				nsr := &n.rep.Services[i]
				nsr.RejectedDegraded = ds.Shed
				nsr.DegradeActive = ds.Active
				nsr.DegradeTransitions = ds.Transitions
				nsr.Divergence = ds.Divergence
				nsr.Margin = ds.Margin
			}
		}
		if n.tracker != nil {
			for i, cs := range n.tracker.Snapshot().Services {
				sr := &h.rep.Services[i]
				// The cluster-wide view keeps the best-fed replica's fit.
				if n.rep == nil || cs.Samples > sr.CalibSamples {
					sr.CalibSlope = cs.Slope
					sr.CalibInterceptMS = cs.Intercept
					sr.CalibSamples = cs.Samples
				}
				if n.rep != nil {
					nsr := &n.rep.Services[i]
					nsr.CalibSlope = cs.Slope
					nsr.CalibInterceptMS = cs.Intercept
					nsr.CalibSamples = cs.Samples
				}
			}
		}
	}
	if len(h.lats) > 0 {
		ps := stats.Percentiles(h.lats, 50, 99)
		h.rep.P50MS, h.rep.P99MS = ps[0], ps[1]
	}
	if h.rep.Admitted > 0 {
		h.rep.Goodput = float64(h.rep.Good) / float64(h.rep.Admitted)
	}
	if h.ctrl != nil {
		h.finalizeAutoscale()
	}
	if len(h.nodeReps) > 0 {
		h.rep.Nodes = make([]NodeReport, len(h.nodeReps))
		for i, nr := range h.nodeReps {
			h.rep.Nodes[i] = *nr
		}
	}
}

// scheduleWindow arms one fault window's open and close events on its
// target node (node 0 unless the window names one).
func (h *harness) scheduleWindow(w Window) {
	n := h.nodes[w.Node]
	eng := h.eng
	dev := n.rt.Device()
	switch w.Kind {
	case KindGPUThrottle:
		mem := w.Mem
		if mem == 0 {
			mem = w.Magnitude
		}
		eng.ScheduleAt(sim.Time(w.Start), func() { dev.SetDegradation(w.Magnitude, mem) })
		eng.ScheduleAt(sim.Time(w.End), func() { dev.SetDegradation(1, 1) })
	case KindLaunchStall:
		eng.ScheduleAt(sim.Time(w.Start), func() { dev.SetLaunchStall(w.Magnitude) })
		eng.ScheduleAt(sim.Time(w.End), func() { dev.SetLaunchStall(0) })
	case KindPredictorBias:
		if w.Model != "" {
			// Validated by Script.Validate, so the name resolves.
			id, err := dnn.ModelIDByName(w.Model)
			if err != nil {
				panic(err)
			}
			eng.ScheduleAt(sim.Time(w.Start), func() {
				n.perturb.SetModelBias(id, w.Magnitude)
				n.adm.InvalidateCache()
			})
			eng.ScheduleAt(sim.Time(w.End), func() {
				n.perturb.SetModelBias(id, 1)
				n.adm.InvalidateCache()
			})
			break
		}
		eng.ScheduleAt(sim.Time(w.Start), func() {
			n.perturb.SetBias(w.Magnitude)
			n.adm.InvalidateCache()
		})
		eng.ScheduleAt(sim.Time(w.End), func() {
			n.perturb.SetBias(1)
			n.adm.InvalidateCache()
		})
	case KindPredictorNoise:
		eng.ScheduleAt(sim.Time(w.Start), func() {
			n.perturb.SetNoise(w.Magnitude)
			n.adm.InvalidateCache()
		})
		eng.ScheduleAt(sim.Time(w.End), func() {
			n.perturb.SetNoise(0)
			n.adm.InvalidateCache()
		})
	}
	// Request-fault kinds (drop/duplicate/malformed) act per attempt in
	// attempt(), not via scheduled state changes.
}

// route picks the serving node for one query over the mutable routable set:
// the least-loaded eligible node whose drift detector for the service is
// quiet, except on probe turns, which consider every eligible replica.
// Draining and retired nodes never take new work; warming nodes are
// eligible only on probe turns — the warm-up trickle, reusing the same
// cadence that lets quarantined replicas rejoin. migrated reports that a
// degraded replica was skipped. Single-node runs route trivially.
func (h *harness) route(svc int) (n *hNode, migrated bool) {
	if len(h.nodes) == 1 {
		return h.nodes[0], false
	}
	h.probes[svc]++
	probe := h.probes[svc]%probeEvery == 0
	base := h.scratchBase[:0]
	for _, c := range h.nodes {
		if c.draining || c.retired || (c.warming && !probe) {
			continue
		}
		base = append(base, c)
	}
	if len(base) == 0 {
		// Every active node is mid-drain replacement and it is not a probe
		// turn: fall back to the warming ones rather than stranding the
		// query.
		for _, c := range h.nodes {
			if !c.draining && !c.retired {
				base = append(base, c)
			}
		}
	}
	h.scratchBase = base
	cand := base
	if !probe {
		healthy := h.scratchHealthy[:0]
		for _, c := range base {
			if !c.adm.Degrade().Active(svc) {
				healthy = append(healthy, c)
			}
		}
		h.scratchHealthy = healthy
		// All-degraded falls back to every eligible node: shedding is the
		// admitters' job, routing still balances what is left.
		if len(healthy) > 0 {
			migrated = len(healthy) < len(base)
			cand = healthy
		}
	}
	pick := cluster.Pick(len(cand), func(i int) float64 { return cand[i].adm.BacklogMS() })
	return cand[pick], migrated
}

// attempt plays one client send at virtual time now.
func (h *harness) attempt(r *request, now sim.Time) {
	r.attempts++
	h.rep.Attempts++
	// Every attempt is offered pressure the control loop should see,
	// whether or not admission accepts it.
	if h.ctrl != nil {
		h.tickQueries++
	}

	// Transit faults, in a fixed order: a corrupted body reaches the
	// gateway (and is rejected there); a dropped request never does.
	if w, ok := h.sc.Script.active(KindMalformed, float64(now)); ok &&
		h.coin(r.idx, r.attempts, 0) < w.Magnitude {
		h.rep.FaultMalformed++
		// The gateway answers 400; clients do not retry malformed verdicts.
		h.rep.GaveUp++
		return
	}
	if w, ok := h.sc.Script.active(KindDrop, float64(now)); ok &&
		h.coin(r.idx, r.attempts, 1) < w.Magnitude {
		h.rep.FaultDrops++
		// Lost in transit: the client notices via timeout and may retry.
		h.retryOrGiveUp(r, now, 0)
		return
	}

	sloMS := float64(r.deadline - now)
	if sloMS <= 0 {
		h.rep.RejectedDeadline++
		h.rep.GaveUp++
		return
	}
	n, migrated := h.route(r.svc)
	d := n.adm.Decide(now, r.svc, r.in, sloMS)
	if !d.OK {
		switch d.Reason {
		case admit.ReasonQueueFull:
			h.rep.RejectedQueue++
		case admit.ReasonDegraded:
			h.rep.RejectedDegraded++
		default:
			h.rep.RejectedDeadline++
		}
		h.retryOrGiveUp(r, now, d.RetryMS)
		return
	}

	h.rep.Admitted++
	h.rep.Services[r.svc].Admitted++
	if n.rep != nil {
		n.rep.Admitted++
		n.rep.Routed++
		n.rep.Services[r.svc].Admitted++
		if migrated {
			n.rep.MigratedIn++
			h.rep.Migrations++
		}
	}
	n.adm.Admitted(r.svc, d.WorkMS)
	n.inflight++
	q := n.rt.SubmitSLO(r.svc, r.in, now, sloMS)
	h.pending[q] = &pend{predMS: d.PredMS, workMS: d.WorkMS}

	// A duplicated request hits the gateway's idempotency layer and is
	// suppressed without a second execution.
	if w, ok := h.sc.Script.active(KindDuplicate, float64(now)); ok &&
		h.coin(r.idx, r.attempts, 2) < w.Magnitude {
		h.rep.FaultDuplicates++
	}
}

// retryOrGiveUp schedules the next attempt if the retry budget (attempts and
// SLO deadline) allows, else finalizes the request as given up.
func (h *harness) retryOrGiveUp(r *request, now sim.Time, hintMS float64) {
	if r.attempts >= h.retry.MaxAttempts {
		h.rep.GaveUp++
		return
	}
	backoff := h.retry.BaseBackoffMS
	for i := 1; i < r.attempts; i++ {
		backoff *= h.retry.Multiplier
		if backoff >= h.retry.MaxBackoffMS {
			backoff = h.retry.MaxBackoffMS
			break
		}
	}
	if h.retry.Jitter > 0 {
		backoff *= 1 + h.retry.Jitter*(2*h.coin(r.idx, r.attempts, 3)-1)
	}
	if hintMS > backoff {
		backoff = hintMS
	}
	wake := now + sim.Time(backoff)
	if wake >= r.deadline {
		h.rep.GaveUp++
		return
	}
	h.rep.Retries++
	h.eng.ScheduleAt(wake, func() { h.attempt(r, wake) })
}

// onResult is a node runtime's sink (engine goroutine).
func (h *harness) onResult(n *hNode, q *sched.Query) {
	p, ok := h.pending[q]
	if !ok {
		return
	}
	delete(h.pending, q)
	n.inflight--
	if n.draining && !n.retired && n.inflight == 0 {
		// Last in-flight query resolved: graceful drain completes, the node
		// retires at this exact virtual instant.
		h.retireNode(n, h.eng.Now())
	}
	svc := q.Service.ID
	sr := &h.rep.Services[svc]
	n.adm.Finish(svc, p.workMS)
	n.adm.Degrade().Observe(svc, p.predMS, q.Latency())
	if n.tracker != nil {
		n.tracker.ObserveAdmission(svc, p.workMS, p.predMS-p.workMS, q.Latency())
	}
	if q.Dropped {
		h.rep.Dropped++
		sr.Dropped++
		if n.rep != nil {
			n.rep.Dropped++
			n.rep.Services[svc].Dropped++
		}
		return
	}
	h.rep.Completed++
	sr.Completed++
	if n.rep != nil {
		n.rep.Completed++
		n.rep.Services[svc].Completed++
	}
	h.lats = append(h.lats, q.Latency())
	if q.Violated() {
		h.rep.Violated++
		sr.Violated++
		if n.rep != nil {
			n.rep.Violated++
			n.rep.Services[svc].Violated++
		}
	} else {
		h.rep.Good++
		sr.Good++
		if n.rep != nil {
			n.rep.Good++
			n.rep.Services[svc].Good++
		}
	}
}

// coin returns a deterministic uniform draw in [0, 1) keyed by (seed,
// request, attempt, salt) — a splitmix64 finalizer, so fault decisions are
// independent of scheduling or parallelism.
func (h *harness) coin(idx, attempt, salt int) float64 {
	x := uint64(h.sc.Seed)*0x9e3779b97f4a7c15 +
		uint64(idx)*0xbf58476d1ce4e5b9 +
		uint64(attempt)*0x94d049bb133111eb +
		uint64(salt)*0x2545f4914f6cdd1d
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return float64(x>>11) / (1 << 53)
}
