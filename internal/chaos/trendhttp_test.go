package chaos

import (
	"encoding/json"
	"testing"
)

func httpBase() HTTPArtifact {
	return HTTPArtifact{
		GoodputFloor:     0.95,
		PeakQPS:          50000,
		PeakConcurrency:  16,
		P50MS:            0.8,
		P99MS:            2.4,
		AllocsPerRequest: 20,
		Steps: []HTTPStep{
			{Concurrency: 8, QPS: 40000, Goodput: 1},
			{Concurrency: 16, QPS: 50000, Goodput: 0.99},
		},
		Benchmarks: []HTTPBench{
			{Name: "InferDecode", NsPerOp: 300, AllocsPerOp: 0},
			{Name: "InferHotPath", NsPerOp: 1500, AllocsPerOp: 0},
		},
	}
}

func TestCompareHTTPTrendClean(t *testing.T) {
	base := httpBase()
	head := httpBase()
	// Noise-sized wobble must pass: QPS down 30%, ns/op up 40%, +1 alloc.
	head.PeakQPS = 35000
	head.AllocsPerRequest = 21
	head.Benchmarks[0].NsPerOp = 420
	if issues := CompareHTTPTrend(base, head, HTTPTrendOptions{}); len(issues) != 0 {
		t.Fatalf("unexpected issues: %v", issues)
	}
}

func TestCompareHTTPTrendRegressions(t *testing.T) {
	base := httpBase()
	head := httpBase()
	head.PeakQPS = 20000                  // -60%: collapse
	head.AllocsPerRequest = 40            // ×2: alloc regression
	head.Benchmarks[0].AllocsPerOp = 10   // codec allocates again
	head.Benchmarks = head.Benchmarks[:1] // hot-path benchmark dropped
	issues := CompareHTTPTrend(base, head, HTTPTrendOptions{})
	want := map[string]bool{
		"http/peak_qps":             false,
		"http/allocs_per_request":   false,
		"InferDecode/allocs_per_op": false,
		"InferHotPath/missing":      false,
	}
	for _, i := range issues {
		key := i.Scenario + "/" + i.Metric
		if _, ok := want[key]; !ok {
			t.Errorf("unexpected issue %v", i)
			continue
		}
		want[key] = true
	}
	for key, seen := range want {
		if !seen {
			t.Errorf("missing expected issue %s", key)
		}
	}
}

func TestParseHTTPArtifactRoundTrip(t *testing.T) {
	data, err := json.Marshal(httpBase())
	if err != nil {
		t.Fatal(err)
	}
	a, err := ParseHTTPArtifact(data)
	if err != nil {
		t.Fatal(err)
	}
	if a.PeakQPS != 50000 || len(a.Benchmarks) != 2 || len(a.Steps) != 2 {
		t.Fatalf("round trip mangled artifact: %+v", a)
	}
	if _, err := ParseHTTPArtifact([]byte(`{}`)); err == nil {
		t.Fatal("empty artifact should be rejected")
	}
	if _, err := ParseHTTPArtifact([]byte(`not json`)); err == nil {
		t.Fatal("garbage should be rejected")
	}
}
