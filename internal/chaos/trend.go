// Bench-trend comparison: the chaos suite doubles as the gateway benchmark
// (BENCH_gateway.json), and because every report field except wall_seconds is
// deterministic, two artifacts built from the same scenario suite can be
// diffed exactly — CI compares the PR's artifact against the merge base and
// fails on goodput or tail-latency regressions instead of tolerating noise
// bands around wall-clock numbers.
package chaos

import (
	"encoding/json"
	"fmt"
)

// Artifact is the BENCH_gateway.json shape CI uploads and the trend check
// diffs: the suite's reports plus the only wall-clock field.
type Artifact struct {
	// WallSeconds is the only nondeterministic field; trend comparison
	// ignores it.
	WallSeconds float64   `json:"wall_seconds,omitempty"`
	Reports     []*Report `json:"reports"`
}

// ParseArtifact decodes a benchmark artifact.
func ParseArtifact(data []byte) (Artifact, error) {
	var a Artifact
	if err := json.Unmarshal(data, &a); err != nil {
		return Artifact{}, fmt.Errorf("chaos: parsing benchmark artifact: %w", err)
	}
	if len(a.Reports) == 0 {
		return Artifact{}, fmt.Errorf("chaos: benchmark artifact has no reports")
	}
	return a, nil
}

// TrendOptions sets the regression tolerances. Goodput is compared as an
// absolute drop (it is a ratio in [0, 1]); p99 as relative growth. The
// zero value takes the defaults.
type TrendOptions struct {
	// MaxGoodputDrop is the largest tolerated absolute goodput decrease
	// (default 0.005).
	MaxGoodputDrop float64
	// MaxP99Growth is the largest tolerated relative p99 increase
	// (default 0.10 = 10%).
	MaxP99Growth float64
	// MaxShedGrowth is the largest tolerated relative increase in a single
	// service's degraded-shed counter (default 0.10 = 10%, with a small
	// absolute allowance for near-zero baselines). A one-service shed spike
	// is an isolation regression even when aggregate goodput holds.
	MaxShedGrowth float64
	// MaxAdmittedDrop is the largest tolerated relative decrease in a
	// single service's admitted count (default 0.05 = 5%).
	MaxAdmittedDrop float64
	// CountSlack is the absolute per-service count allowance applied on top
	// of the relative shed/admitted tolerances, so tiny baselines do not
	// flag on ±1 query (default 2).
	CountSlack float64
	// MaxNodeGoodputDrop is the largest tolerated absolute per-node goodput
	// decrease in cluster scenarios (default 0.01 — looser than the
	// aggregate gate, since one node's traffic share is smaller). A single
	// replica quietly violating SLOs can hide behind a healthy cluster
	// aggregate when migration routes around it.
	MaxNodeGoodputDrop float64
}

func (o TrendOptions) withDefaults() TrendOptions {
	if o.MaxGoodputDrop <= 0 {
		o.MaxGoodputDrop = 0.005
	}
	if o.MaxP99Growth <= 0 {
		o.MaxP99Growth = 0.10
	}
	if o.MaxShedGrowth <= 0 {
		o.MaxShedGrowth = 0.10
	}
	if o.MaxAdmittedDrop <= 0 {
		o.MaxAdmittedDrop = 0.05
	}
	if o.CountSlack <= 0 {
		o.CountSlack = 2
	}
	if o.MaxNodeGoodputDrop <= 0 {
		o.MaxNodeGoodputDrop = 0.01
	}
	return o
}

// TrendIssue is one detected regression.
type TrendIssue struct {
	Scenario string  `json:"scenario"`
	Metric   string  `json:"metric"`
	Base     float64 `json:"base"`
	Head     float64 `json:"head"`
}

func (i TrendIssue) String() string {
	if i.Metric == "missing" {
		return fmt.Sprintf("%s: scenario present in base but missing from head", i.Scenario)
	}
	return fmt.Sprintf("%s: %s regressed from %.4g to %.4g", i.Scenario, i.Metric, i.Base, i.Head)
}

// CompareTrend diffs two benchmark artifacts scenario by scenario and
// returns the regressions: a scenario dropped from the suite, a goodput
// drop beyond MaxGoodputDrop, or p99 growth beyond MaxP99Growth. Scenarios
// new in head are not regressions — they simply have no baseline yet.
// Issues come back in base-report order, so the list is deterministic.
func CompareTrend(base, head Artifact, opts TrendOptions) []TrendIssue {
	opts = opts.withDefaults()
	byName := make(map[string]*Report, len(head.Reports))
	for _, r := range head.Reports {
		byName[r.Name] = r
	}
	var issues []TrendIssue
	for _, b := range base.Reports {
		h, ok := byName[b.Name]
		if !ok {
			issues = append(issues, TrendIssue{Scenario: b.Name, Metric: "missing"})
			continue
		}
		if b.Goodput-h.Goodput > opts.MaxGoodputDrop {
			issues = append(issues, TrendIssue{
				Scenario: b.Name, Metric: "goodput", Base: b.Goodput, Head: h.Goodput,
			})
		}
		if b.P99MS > 0 && (h.P99MS-b.P99MS)/b.P99MS > opts.MaxP99Growth {
			issues = append(issues, TrendIssue{
				Scenario: b.Name, Metric: "p99_ms", Base: b.P99MS, Head: h.P99MS,
			})
		}
		issues = append(issues, compareServices(b, h, opts)...)
		issues = append(issues, compareNodes(b, h, opts)...)
	}
	return issues
}

// compareServices diffs one scenario's per-service shed and admission
// counters — the isolation check: a regression that starves or sheds one
// co-located service can hide behind a healthy aggregate.
func compareServices(b, h *Report, opts TrendOptions) []TrendIssue {
	var issues []TrendIssue
	for i := range b.Services {
		bs := &b.Services[i]
		var hs *ServiceReport
		for j := range h.Services {
			if h.Services[j].Model == bs.Model && h.Services[j].Service == bs.Service {
				hs = &h.Services[j]
				break
			}
		}
		name := fmt.Sprintf("%s[%d:%s]", b.Name, bs.Service, bs.Model)
		if hs == nil {
			issues = append(issues, TrendIssue{Scenario: name, Metric: "missing"})
			continue
		}
		shedCeil := float64(bs.RejectedDegraded)*(1+opts.MaxShedGrowth) + opts.CountSlack
		if float64(hs.RejectedDegraded) > shedCeil {
			issues = append(issues, TrendIssue{
				Scenario: name, Metric: "rejected_degraded",
				Base: float64(bs.RejectedDegraded), Head: float64(hs.RejectedDegraded),
			})
		}
		admitFloor := float64(bs.Admitted)*(1-opts.MaxAdmittedDrop) - opts.CountSlack
		if float64(hs.Admitted) < admitFloor {
			issues = append(issues, TrendIssue{
				Scenario: name, Metric: "admitted",
				Base: float64(bs.Admitted), Head: float64(hs.Admitted),
			})
		}
	}
	return issues
}

// compareNodes diffs one cluster scenario's per-node goodput — the sharded
// counterpart of the per-service isolation check: migration can hold the
// cluster aggregate while one replica's own admitted queries quietly start
// missing their deadlines.
func compareNodes(b, h *Report, opts TrendOptions) []TrendIssue {
	var issues []TrendIssue
	byNode := make(map[int]*NodeReport, len(h.Nodes))
	for i := range h.Nodes {
		byNode[h.Nodes[i].Node] = &h.Nodes[i]
	}
	for i := range b.Nodes {
		bn := &b.Nodes[i]
		name := fmt.Sprintf("%s[node %d]", b.Name, bn.Node)
		hn, ok := byNode[bn.Node]
		if !ok {
			issues = append(issues, TrendIssue{Scenario: name, Metric: "missing"})
			continue
		}
		bg, hg := nodeGoodput(bn), nodeGoodput(hn)
		if bg-hg > opts.MaxNodeGoodputDrop {
			issues = append(issues, TrendIssue{
				Scenario: name, Metric: "goodput", Base: bg, Head: hg,
			})
		}
	}
	return issues
}

// nodeGoodput is a node's deadline-met rate among its own admissions; an
// idle node counts as perfect.
func nodeGoodput(n *NodeReport) float64 {
	if n.Admitted == 0 {
		return 1
	}
	return float64(n.Good) / float64(n.Admitted)
}

// AutoscaleSummary is one elastic scenario's row inside BENCH_autoscale.json:
// the QoS outcome (goodput through the peak, tail latency) next to the cost
// outcome (node-time spent vs a statically peak-provisioned fleet) and the
// control-loop action counts.
type AutoscaleSummary struct {
	Name             string  `json:"name"`
	Goodput          float64 `json:"goodput"`
	P99MS            float64 `json:"p99_ms"`
	NodeMS           float64 `json:"node_ms"`
	StaticPeakNodeMS float64 `json:"static_peak_node_ms"`
	SavedFrac        float64 `json:"node_ms_saved_frac"`
	ScaleOuts        int64   `json:"scale_outs"`
	ScaleIns         int64   `json:"scale_ins"`
	PeakNodes        int     `json:"peak_nodes"`
}

// AutoscaleArtifact is the BENCH_autoscale.json shape: one summary per
// elastic scenario, uploaded by the bench lane next to BENCH_gateway.json.
type AutoscaleArtifact struct {
	// WallSeconds is wall-clock and ignored by trend comparison.
	WallSeconds float64            `json:"wall_seconds,omitempty"`
	Scenarios   []AutoscaleSummary `json:"scenarios"`
}

// AutoscaleSummaryOf extracts the trend row from an elastic run's report;
// ok is false for fixed-fleet reports.
func AutoscaleSummaryOf(r *Report) (AutoscaleSummary, bool) {
	if r.Autoscale == nil {
		return AutoscaleSummary{}, false
	}
	a := r.Autoscale
	return AutoscaleSummary{
		Name:             r.Name,
		Goodput:          r.Goodput,
		P99MS:            r.P99MS,
		NodeMS:           a.NodeMS,
		StaticPeakNodeMS: a.StaticPeakNodeMS,
		SavedFrac:        a.SavedFrac,
		ScaleOuts:        a.ScaleOuts,
		ScaleIns:         a.ScaleIns,
		PeakNodes:        a.PeakNodes,
	}, true
}

// ParseAutoscaleArtifact decodes an autoscale benchmark artifact.
func ParseAutoscaleArtifact(data []byte) (AutoscaleArtifact, error) {
	var a AutoscaleArtifact
	if err := json.Unmarshal(data, &a); err != nil {
		return AutoscaleArtifact{}, fmt.Errorf("chaos: parsing autoscale artifact: %w", err)
	}
	if len(a.Scenarios) == 0 {
		return AutoscaleArtifact{}, fmt.Errorf("chaos: autoscale artifact has no scenarios")
	}
	return a, nil
}

// AutoscaleTrendOptions sets the elasticity regression tolerances. The
// goodput gate is an absolute floor rather than a base-relative drop: an
// elastic fleet that sheds load through the peak has failed regardless of
// how the baseline behaved. Node-time is base-relative — the controller is
// allowed to spend a little more to hold QoS, but a double-digit cost
// regression means the scaling policy (or the warm-up model) broke.
type AutoscaleTrendOptions struct {
	// GoodputFloor is the absolute goodput every elastic scenario must hold
	// (default 0.98 — the same floor `make chaos` asserts).
	GoodputFloor float64
	// MaxNodeMSGrowth is the largest tolerated relative node-time increase
	// against the base artifact (default 0.10 = 10%).
	MaxNodeMSGrowth float64
}

func (o AutoscaleTrendOptions) withDefaults() AutoscaleTrendOptions {
	if o.GoodputFloor <= 0 {
		o.GoodputFloor = 0.98
	}
	if o.MaxNodeMSGrowth <= 0 {
		o.MaxNodeMSGrowth = 0.10
	}
	return o
}

// CompareAutoscaleTrend diffs two autoscale artifacts scenario by scenario:
// a scenario dropped from the suite, head goodput under the absolute floor,
// or node-time growth beyond the tolerance. Issues come back in base order.
func CompareAutoscaleTrend(base, head AutoscaleArtifact, opts AutoscaleTrendOptions) []TrendIssue {
	opts = opts.withDefaults()
	byName := make(map[string]AutoscaleSummary, len(head.Scenarios))
	for _, s := range head.Scenarios {
		byName[s.Name] = s
	}
	var issues []TrendIssue
	for _, b := range base.Scenarios {
		h, ok := byName[b.Name]
		if !ok {
			issues = append(issues, TrendIssue{Scenario: b.Name, Metric: "missing"})
			continue
		}
		if h.Goodput < opts.GoodputFloor {
			issues = append(issues, TrendIssue{
				Scenario: b.Name, Metric: "goodput_floor", Base: opts.GoodputFloor, Head: h.Goodput,
			})
		}
		if b.NodeMS > 0 && (h.NodeMS-b.NodeMS)/b.NodeMS > opts.MaxNodeMSGrowth {
			issues = append(issues, TrendIssue{
				Scenario: b.Name, Metric: "node_ms", Base: b.NodeMS, Head: h.NodeMS,
			})
		}
	}
	return issues
}

// PredictBench is one Go benchmark result inside BENCH_predict.json — the
// prediction-hot-path microbenchmarks (MLP batched forward, span search,
// gateway round).
type PredictBench struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
}

// PredictArtifact is the BENCH_predict.json shape: hot-path benchmark
// results, uploaded by the bench lane next to BENCH_gateway.json.
type PredictArtifact struct {
	// WallSeconds is wall-clock and ignored by trend comparison.
	WallSeconds float64        `json:"wall_seconds,omitempty"`
	Benchmarks  []PredictBench `json:"benchmarks"`
}

// ParsePredictArtifact decodes a prediction benchmark artifact.
func ParsePredictArtifact(data []byte) (PredictArtifact, error) {
	var a PredictArtifact
	if err := json.Unmarshal(data, &a); err != nil {
		return PredictArtifact{}, fmt.Errorf("chaos: parsing predict artifact: %w", err)
	}
	if len(a.Benchmarks) == 0 {
		return PredictArtifact{}, fmt.Errorf("chaos: predict artifact has no benchmarks")
	}
	return a, nil
}

// PredictTrendOptions sets the hot-path regression tolerances. Allocation
// counts are deterministic, so their tolerance is tight; ns/op is
// wall-clock and shared-runner noisy, so its tolerance is generous — the
// alloc gate is the reliable tripwire.
type PredictTrendOptions struct {
	// MaxNsGrowth is the largest tolerated relative ns/op increase
	// (default 0.50 = 50%, generous because CI runners share hardware).
	MaxNsGrowth float64
	// MaxAllocsGrowth is the largest tolerated relative allocs/op increase
	// (default 0.10).
	MaxAllocsGrowth float64
	// AllocSlack is the absolute allocs/op allowance on top of
	// MaxAllocsGrowth, so near-zero baselines do not flag on +1 (default 2).
	AllocSlack float64
}

func (o PredictTrendOptions) withDefaults() PredictTrendOptions {
	if o.MaxNsGrowth <= 0 {
		o.MaxNsGrowth = 0.50
	}
	if o.MaxAllocsGrowth <= 0 {
		o.MaxAllocsGrowth = 0.10
	}
	if o.AllocSlack <= 0 {
		o.AllocSlack = 2
	}
	return o
}

// ComparePredictTrend diffs two prediction benchmark artifacts by
// benchmark name: a benchmark dropped from the suite, allocs/op growth
// beyond the tolerance, or ns/op growth beyond the (generous) tolerance.
// Issues come back in base order.
func ComparePredictTrend(base, head PredictArtifact, opts PredictTrendOptions) []TrendIssue {
	opts = opts.withDefaults()
	byName := make(map[string]PredictBench, len(head.Benchmarks))
	for _, b := range head.Benchmarks {
		byName[b.Name] = b
	}
	var issues []TrendIssue
	for _, b := range base.Benchmarks {
		h, ok := byName[b.Name]
		if !ok {
			issues = append(issues, TrendIssue{Scenario: b.Name, Metric: "missing"})
			continue
		}
		if h.AllocsPerOp > b.AllocsPerOp*(1+opts.MaxAllocsGrowth)+opts.AllocSlack {
			issues = append(issues, TrendIssue{
				Scenario: b.Name, Metric: "allocs_per_op", Base: b.AllocsPerOp, Head: h.AllocsPerOp,
			})
		}
		if b.NsPerOp > 0 && (h.NsPerOp-b.NsPerOp)/b.NsPerOp > opts.MaxNsGrowth {
			issues = append(issues, TrendIssue{
				Scenario: b.Name, Metric: "ns_per_op", Base: b.NsPerOp, Head: h.NsPerOp,
			})
		}
	}
	return issues
}
