// Bench-trend comparison: the chaos suite doubles as the gateway benchmark
// (BENCH_gateway.json), and because every report field except wall_seconds is
// deterministic, two artifacts built from the same scenario suite can be
// diffed exactly — CI compares the PR's artifact against the merge base and
// fails on goodput or tail-latency regressions instead of tolerating noise
// bands around wall-clock numbers.
package chaos

import (
	"encoding/json"
	"fmt"
)

// Artifact is the BENCH_gateway.json shape CI uploads and the trend check
// diffs: the suite's reports plus the only wall-clock field.
type Artifact struct {
	// WallSeconds is the only nondeterministic field; trend comparison
	// ignores it.
	WallSeconds float64   `json:"wall_seconds,omitempty"`
	Reports     []*Report `json:"reports"`
}

// ParseArtifact decodes a benchmark artifact.
func ParseArtifact(data []byte) (Artifact, error) {
	var a Artifact
	if err := json.Unmarshal(data, &a); err != nil {
		return Artifact{}, fmt.Errorf("chaos: parsing benchmark artifact: %w", err)
	}
	if len(a.Reports) == 0 {
		return Artifact{}, fmt.Errorf("chaos: benchmark artifact has no reports")
	}
	return a, nil
}

// TrendOptions sets the regression tolerances. Goodput is compared as an
// absolute drop (it is a ratio in [0, 1]); p99 as relative growth. The
// zero value takes the defaults.
type TrendOptions struct {
	// MaxGoodputDrop is the largest tolerated absolute goodput decrease
	// (default 0.005).
	MaxGoodputDrop float64
	// MaxP99Growth is the largest tolerated relative p99 increase
	// (default 0.10 = 10%).
	MaxP99Growth float64
}

func (o TrendOptions) withDefaults() TrendOptions {
	if o.MaxGoodputDrop <= 0 {
		o.MaxGoodputDrop = 0.005
	}
	if o.MaxP99Growth <= 0 {
		o.MaxP99Growth = 0.10
	}
	return o
}

// TrendIssue is one detected regression.
type TrendIssue struct {
	Scenario string  `json:"scenario"`
	Metric   string  `json:"metric"`
	Base     float64 `json:"base"`
	Head     float64 `json:"head"`
}

func (i TrendIssue) String() string {
	if i.Metric == "missing" {
		return fmt.Sprintf("%s: scenario present in base but missing from head", i.Scenario)
	}
	return fmt.Sprintf("%s: %s regressed from %.4g to %.4g", i.Scenario, i.Metric, i.Base, i.Head)
}

// CompareTrend diffs two benchmark artifacts scenario by scenario and
// returns the regressions: a scenario dropped from the suite, a goodput
// drop beyond MaxGoodputDrop, or p99 growth beyond MaxP99Growth. Scenarios
// new in head are not regressions — they simply have no baseline yet.
// Issues come back in base-report order, so the list is deterministic.
func CompareTrend(base, head Artifact, opts TrendOptions) []TrendIssue {
	opts = opts.withDefaults()
	byName := make(map[string]*Report, len(head.Reports))
	for _, r := range head.Reports {
		byName[r.Name] = r
	}
	var issues []TrendIssue
	for _, b := range base.Reports {
		h, ok := byName[b.Name]
		if !ok {
			issues = append(issues, TrendIssue{Scenario: b.Name, Metric: "missing"})
			continue
		}
		if b.Goodput-h.Goodput > opts.MaxGoodputDrop {
			issues = append(issues, TrendIssue{
				Scenario: b.Name, Metric: "goodput", Base: b.Goodput, Head: h.Goodput,
			})
		}
		if b.P99MS > 0 && (h.P99MS-b.P99MS)/b.P99MS > opts.MaxP99Growth {
			issues = append(issues, TrendIssue{
				Scenario: b.Name, Metric: "p99_ms", Base: b.P99MS, Head: h.P99MS,
			})
		}
	}
	return issues
}
