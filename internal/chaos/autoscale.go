// Elastic-fleet support for the chaos harness: the virtual-time side of the
// live autoscaler. Scale ticks, node adds, graceful drains, and retirements
// are all ordinary engine events on the single shared clock, so an elastic
// run keeps the harness's determinism guarantee — byte-identical reports at
// any parallelism width.

package chaos

import (
	"fmt"

	"abacus/internal/sim"
)

// newNodeReport allocates a stable per-node report and registers it. Reports
// live on the heap (not in rep.Nodes) because an elastic run appends nodes
// mid-flight; finalize folds them into rep.Nodes in ID order.
func (h *harness) newNodeReport(n *hNode) *NodeReport {
	nr := &NodeReport{Node: n.id, Services: make([]ServiceReport, len(n.rt.Services()))}
	for i, svc := range n.rt.Services() {
		nr.Services[i] = ServiceReport{Service: i, Model: svc.Model.String(), CalibSlope: 1}
	}
	h.nodeReps = append(h.nodeReps, nr)
	return nr
}

// scaleTick is one control-loop interval: measure offered QPS since the last
// tick, let the controller decide, and execute its advice as virtual-time
// actions.
func (h *harness) scaleTick(now sim.Time) {
	cfg := h.ctrl.Config()
	qps := float64(h.tickQueries) * 1000 / cfg.IntervalMS
	h.tickQueries = 0
	adv := h.ctrl.Tick(float64(now), qps)
	for _, id := range adv.Promote {
		h.nodes[id].warming = false
	}
	for _, id := range adv.Add {
		h.addNode(id, now)
	}
	for _, id := range adv.Drain {
		h.drainNode(h.nodes[id], now)
	}
}

// addNode provisions one warming node on the shared engine mid-run.
func (h *harness) addNode(id int, now sim.Time) {
	n, err := h.newHNode(id, h.eng)
	if err != nil {
		// The founders were built from the same config; a failure here is a
		// harness bug, not a scenario input error.
		panic(fmt.Sprintf("chaos: adding node %d: %v", id, err))
	}
	if id != len(h.nodes) {
		panic(fmt.Sprintf("chaos: controller allocated node %d, harness has %d", id, len(h.nodes)))
	}
	n.warming = true
	nr := h.newNodeReport(n)
	nr.Window = &NodeWindow{FirstMS: float64(now)}
	n.rep = nr
	h.nodes = append(h.nodes, n)
}

// drainNode marks a node unroutable; it retires once in-flight queries
// resolve (immediately when idle).
func (h *harness) drainNode(n *hNode, now sim.Time) {
	n.draining = true
	n.warming = false
	if n.inflight == 0 {
		h.retireNode(n, now)
	}
}

// retireNode closes the node's lifetime window. Its stats stay in the
// report; the router never sees it again.
func (h *harness) retireNode(n *hNode, now sim.Time) {
	n.retired = true
	n.rep.Window.LastMS = float64(now)
	h.ctrl.Retire(n.id, float64(now))
}

// finalizeAutoscale closes live nodes' windows at the terminal instant and
// folds the controller state into the report.
func (h *harness) finalizeAutoscale() {
	end := float64(h.eng.Now())
	for _, n := range h.nodes {
		if !n.retired {
			n.rep.Window.LastMS = end
		}
	}
	snap := h.ctrl.Snapshot(end)
	cfg := h.ctrl.Config()
	static := float64(snap.Peak) * end
	saved := 0.0
	if static > 0 {
		saved = 1 - snap.NodeMS/static
	}
	h.rep.Autoscale = &AutoscaleReport{
		MinNodes:         cfg.MinNodes,
		MaxNodes:         cfg.MaxNodes,
		IntervalMS:       cfg.IntervalMS,
		WarmupMS:         cfg.WarmupMS,
		Ticks:            snap.Ticks,
		ScaleOuts:        snap.ScaleOuts,
		ScaleIns:         snap.ScaleIns,
		HeldHysteresis:   snap.Counters.HeldHysteresis,
		HeldCooldown:     snap.Counters.HeldCooldown,
		HeldMaxNodes:     snap.Counters.HeldMaxNodes,
		PeakNodes:        snap.Peak,
		FinalNodes:       snap.Live,
		EndMS:            end,
		NodeMS:           snap.NodeMS,
		StaticPeakNodeMS: static,
		SavedFrac:        saved,
		ForecastQPS:      snap.Forecast,
	}
}
