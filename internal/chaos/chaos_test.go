package chaos

import (
	"reflect"
	"testing"

	"abacus/internal/admit"
)

// TestThrottleAcceptance is the PR's headline claim: a 50% GPU throttle
// window causes SLO violations when the gateway trusts its healthy
// predictor, while degraded mode holds the deadline-met rate among admitted
// queries at >= 99% by shedding the load the slowed device cannot carry.
func TestThrottleAcceptance(t *testing.T) {
	undegraded, ok := Lookup("throttle50")
	if !ok {
		t.Fatal("throttle50 scenario missing")
	}
	degraded, ok := Lookup("throttle50-degraded")
	if !ok {
		t.Fatal("throttle50-degraded scenario missing")
	}

	without, err := Run(undegraded)
	if err != nil {
		t.Fatal(err)
	}
	if without.Violated+without.Dropped == 0 {
		t.Errorf("throttle without degraded mode shows no violations: %s", without.Text())
	}
	if without.Goodput >= 0.99 {
		t.Errorf("throttle without degraded mode kept goodput %.4f >= 0.99 — fault too weak", without.Goodput)
	}

	with, err := Run(degraded)
	if err != nil {
		t.Fatal(err)
	}
	if with.Goodput < 0.99 {
		t.Errorf("degraded mode goodput %.4f < 0.99:\n%s", with.Goodput, with.Text())
	}
	if with.DegradeTransitions == 0 || with.RejectedDegraded == 0 {
		t.Errorf("degraded mode never engaged: %s", with.Text())
	}
	if with.Goodput <= without.Goodput {
		t.Errorf("degraded mode did not improve goodput: %.4f vs %.4f", with.Goodput, without.Goodput)
	}
}

// TestReportConservation checks the request-accounting invariants every
// scenario must satisfy after drain.
func TestReportConservation(t *testing.T) {
	for _, sc := range Scenarios() {
		rep, err := Run(sc)
		if err != nil {
			t.Fatalf("%s: %v", sc.Name, err)
		}
		if rep.Admitted != rep.Completed+rep.Dropped {
			t.Errorf("%s: admitted %d != completed %d + dropped %d",
				sc.Name, rep.Admitted, rep.Completed, rep.Dropped)
		}
		if rep.Completed != rep.Good+rep.Violated {
			t.Errorf("%s: completed %d != good %d + violated %d",
				sc.Name, rep.Completed, rep.Good, rep.Violated)
		}
		if rep.Sent != rep.Admitted+rep.GaveUp {
			t.Errorf("%s: sent %d != admitted %d + gave_up %d",
				sc.Name, rep.Sent, rep.Admitted, rep.GaveUp)
		}
		if rep.Attempts != rep.Sent+rep.Retries {
			t.Errorf("%s: attempts %d != sent %d + retries %d",
				sc.Name, rep.Attempts, rep.Sent, rep.Retries)
		}
	}
}

// TestParallelDeterminism: the full built-in suite produces byte-identical
// reports at any worker-pool width.
func TestParallelDeterminism(t *testing.T) {
	scs := Scenarios()
	serial, err := RunAll(scs, 1)
	if err != nil {
		t.Fatal(err)
	}
	wide, err := RunAll(scs, 8)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, wide) {
		t.Fatal("reports differ between parallel widths 1 and 8")
	}
	for i := range scs {
		again, err := Run(scs[i])
		if err != nil {
			t.Fatal(err)
		}
		if serial[i].Text() != again.Text() {
			t.Errorf("%s: report text not reproducible:\n%s\nvs\n%s",
				scs[i].Name, serial[i].Text(), again.Text())
		}
		j1, err := serial[i].JSON()
		if err != nil {
			t.Fatal(err)
		}
		j2, err := again.JSON()
		if err != nil {
			t.Fatal(err)
		}
		if string(j1) != string(j2) {
			t.Errorf("%s: JSON not byte-identical", scs[i].Name)
		}
	}
}

// TestPredictCacheTransparency is the hard invariant of the memoization
// layer: running a scenario with the oracle cache on yields a report
// byte-identical to the cache-off run, modulo the scenario name. The cache
// sits below the perturbation layer, so it must never change a single
// counter, percentile, or per-service line.
func TestPredictCacheTransparency(t *testing.T) {
	base, ok := Lookup("baseline")
	if !ok {
		t.Fatal("baseline scenario missing")
	}
	cached, ok := Lookup("baseline-cached")
	if !ok {
		t.Fatal("baseline-cached scenario missing")
	}
	if cached.PredictCache <= 0 {
		t.Fatal("baseline-cached does not enable the cache")
	}
	want, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Run(cached)
	if err != nil {
		t.Fatal(err)
	}
	got.Name = want.Name
	j1, err := want.JSON()
	if err != nil {
		t.Fatal(err)
	}
	j2, err := got.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if string(j1) != string(j2) {
		t.Errorf("cache-on report differs from cache-off:\n%s\nvs\n%s", j1, j2)
	}
	// The transparency claim holds under faults and tiny capacities too:
	// eviction churn may cost hits but never changes behavior.
	fault, _ := Lookup("throttle50-degraded")
	want, err = Run(fault)
	if err != nil {
		t.Fatal(err)
	}
	fault.PredictCache = 7
	got, err = Run(fault)
	if err != nil {
		t.Fatal(err)
	}
	if want.Text() != got.Text() {
		t.Errorf("tiny cache changed a faulted report:\n%svs\n%s", want.Text(), got.Text())
	}
}

// TestFlakyClientsRecoverViaRetries: transit faults cost attempts but the
// retry + idempotency path keeps delivered goodput intact.
func TestFlakyClientsRecoverViaRetries(t *testing.T) {
	sc, ok := Lookup("flaky-clients")
	if !ok {
		t.Fatal("flaky-clients scenario missing")
	}
	rep, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	if rep.FaultDrops == 0 || rep.FaultDuplicates == 0 || rep.FaultMalformed == 0 {
		t.Fatalf("fault windows did not fire: %s", rep.Text())
	}
	if rep.Retries == 0 {
		t.Fatalf("drops caused no retries: %s", rep.Text())
	}
	if rep.Goodput < 0.99 {
		t.Errorf("flaky clients broke goodput %.4f despite retries:\n%s", rep.Goodput, rep.Text())
	}
}

// TestMispredictRecovery: a predictor reporting 60% of true latency admits
// too much; the divergence tracker catches it from completions.
func TestMispredictRecovery(t *testing.T) {
	sc, ok := Lookup("mispredict")
	if !ok {
		t.Fatal("mispredict scenario missing")
	}
	rep, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	if rep.DegradeTransitions == 0 {
		t.Errorf("predictor bias never tripped degraded mode: %s", rep.Text())
	}
	if rep.Goodput < 0.99 {
		t.Errorf("mispredict goodput %.4f < 0.99:\n%s", rep.Goodput, rep.Text())
	}
}

func TestScriptParsing(t *testing.T) {
	jsonScript := []byte(`{"windows": [
		{"kind": "gpu_throttle", "start_ms": 100, "end_ms": 200, "magnitude": 0.5, "mem": 0.8},
		{"kind": "drop", "start_ms": 0, "end_ms": 50, "magnitude": 0.1}
	]}`)
	csvScript := []byte("kind,start_ms,end_ms,magnitude,mem\n" +
		"# thermal event\n" +
		"gpu_throttle,100,200,0.5,0.8\n" +
		"drop,0,50,0.1\n")
	bareArray := []byte(`[{"kind": "drop", "start_ms": 0, "end_ms": 50, "magnitude": 0.1}]`)

	js, err := ParseScript(jsonScript)
	if err != nil {
		t.Fatal(err)
	}
	cs, err := ParseScript(csvScript)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(js, cs) {
		t.Errorf("JSON and CSV scripts parse differently:\n%+v\n%+v", js, cs)
	}
	if _, err := ParseScript(bareArray); err != nil {
		t.Errorf("bare-array JSON rejected: %v", err)
	}

	for name, bad := range map[string]string{
		"unknown kind":     "warp_drive,0,10,0.5",
		"backward window":  "drop,10,5,0.5",
		"probability > 1":  "drop,0,10,1.5",
		"zero throttle":    "gpu_throttle,0,10,0",
		"noise >= 1":       "predictor_noise,0,10,1",
		"overlapping kind": "drop,0,10,0.5\ndrop,5,15,0.5",
		"empty":            "   ",
	} {
		if _, err := ParseScript([]byte(bad)); err == nil {
			t.Errorf("%s: ParseScript accepted %q", name, bad)
		}
	}
}

// TestScenarioScriptValidation: Run rejects invalid scripts up front.
func TestScenarioScriptValidation(t *testing.T) {
	_, err := Run(Scenario{
		Name:   "bad",
		Script: Script{Windows: []Window{{Kind: "nope", Start: 0, End: 1, Magnitude: 1}}},
	})
	if err == nil {
		t.Fatal("Run accepted an invalid script")
	}
}

// TestDegradeDisabledByScenario: the undegraded baseline really runs with
// margin pinned at 1 (no shed, no transitions) even under divergence.
func TestDegradeDisabledByScenario(t *testing.T) {
	rep, err := Run(Scenario{
		Name:    "throttle-nodegrade",
		Seed:    11,
		Script:  Script{Windows: []Window{{Kind: KindGPUThrottle, Start: 1000, End: 5000, Magnitude: 0.5}}},
		Degrade: admit.DegradeConfig{Disabled: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.RejectedDegraded != 0 || rep.DegradeTransitions != 0 || rep.DegradeShed != 0 {
		t.Errorf("disabled degrade acted: %s", rep.Text())
	}
}
