package chaos

import (
	"strings"
	"testing"

	"abacus/internal/scaler"
	"abacus/internal/trace"
	"abacus/internal/workload"
)

// TestAutoscaleDiurnalAcceptance is the elasticity pin: under the built-in
// diurnal-autoscale scenario (fig22 MAF-like diurnal trace against a live
// controller) the fleet must breathe with the day — scaling out through the
// peak without losing goodput and scaling back in through the trough to save
// node-time against a statically peak-provisioned fleet.
func TestAutoscaleDiurnalAcceptance(t *testing.T) {
	rep := mustRun(t, "diurnal-autoscale")
	as := rep.Autoscale
	if as == nil {
		t.Fatal("elastic run produced no autoscale block")
	}

	// The two floors `make chaos` asserts via the CLI, held here too so
	// `go test` alone catches a regression.
	if rep.Goodput < 0.98 {
		t.Errorf("goodput %.4f through the diurnal peak, want >= 0.98:\n%s", rep.Goodput, rep.Text())
	}
	if as.SavedFrac < 0.25 {
		t.Errorf("node-time saved %.4f vs static peak fleet, want >= 0.25:\n%s", as.SavedFrac, rep.Text())
	}

	// The controller actually acted: the peak forced scale-out past the
	// floor and the trough brought the fleet back down.
	if as.ScaleOuts == 0 || as.ScaleIns == 0 {
		t.Errorf("scale_outs %d scale_ins %d; a diurnal trace must drive both", as.ScaleOuts, as.ScaleIns)
	}
	if as.PeakNodes <= as.MinNodes {
		t.Errorf("peak %d never rose above the %d-node floor", as.PeakNodes, as.MinNodes)
	}
	if as.FinalNodes != as.MinNodes {
		t.Errorf("fleet ends at %d nodes, want back at the %d-node floor", as.FinalNodes, as.MinNodes)
	}
	if as.NodeMS <= 0 || as.NodeMS >= as.StaticPeakNodeMS {
		t.Errorf("node_ms %.0f vs static %.0f; elastic must cost less than peak-static",
			as.NodeMS, as.StaticPeakNodeMS)
	}

	// Lifetime windows are sane: founders open at t=0, added nodes open
	// mid-run, every window is ordered and closed by the terminal instant,
	// and node-time totals match the sum of windows.
	if len(rep.Nodes) < as.PeakNodes {
		t.Fatalf("%d node rows for a fleet that peaked at %d", len(rep.Nodes), as.PeakNodes)
	}
	var windowMS float64
	for _, n := range rep.Nodes {
		w := n.Window
		if w == nil {
			t.Fatalf("node %d has no lifetime window", n.Node)
		}
		if n.Node < as.MinNodes && w.FirstMS != 0 {
			t.Errorf("founder %d window opens at %v, want 0", n.Node, w.FirstMS)
		}
		if n.Node >= as.MinNodes && w.FirstMS <= 0 {
			t.Errorf("added node %d window opens at %v, want mid-run", n.Node, w.FirstMS)
		}
		if w.LastMS < w.FirstMS || w.LastMS > as.EndMS {
			t.Errorf("node %d window [%v, %v] outside [first, %v]", n.Node, w.FirstMS, w.LastMS, as.EndMS)
		}
		windowMS += w.LastMS - w.FirstMS
	}
	if diff := windowMS - as.NodeMS; diff > 1e-6 || diff < -1e-6 {
		t.Errorf("window sum %.0f != controller node_ms %.0f", windowMS, as.NodeMS)
	}

	// Per-node rows stay conserved against cluster totals — retirement must
	// not leak or double-count queries.
	var adm, comp, routed int64
	for _, n := range rep.Nodes {
		adm += n.Admitted
		comp += n.Completed
		routed += n.Routed
		if n.Admitted != n.Completed+n.Dropped {
			t.Errorf("node %d: admitted %d != completed %d + dropped %d",
				n.Node, n.Admitted, n.Completed, n.Dropped)
		}
		if n.Completed != n.Good+n.Violated {
			t.Errorf("node %d: completed %d != good %d + violated %d",
				n.Node, n.Completed, n.Good, n.Violated)
		}
	}
	if adm != rep.Admitted || comp != rep.Completed || routed != rep.Admitted {
		t.Errorf("node sums admitted %d completed %d routed %d vs cluster %d/%d",
			adm, comp, routed, rep.Admitted, rep.Completed)
	}

	// The rendered report carries the autoscale lines and per-node windows.
	txt := rep.Text()
	for _, want := range []string{"autoscale: nodes", "scale_outs", "node_ms", "window ["} {
		if !strings.Contains(txt, want) {
			t.Errorf("report text missing %q:\n%s", want, txt)
		}
	}
}

// TestAutoscaleScenarioValidation covers the elastic-run input rules.
func TestAutoscaleScenarioValidation(t *testing.T) {
	maf := &trace.MAFConfig{BaseQPS: 10, DurationMS: 1000, Seed: 1}
	as := &scaler.Config{MinNodes: 2, CapacityQPS: 30}

	// Workload and MAF cannot both drive arrivals.
	if _, err := Run(Scenario{
		Name: "both", Seed: 1, MAF: maf,
		Workload: &workload.Spec{},
	}); err == nil {
		t.Error("Workload+MAF scenario accepted")
	}

	// An elastic scenario's Nodes must be unset or equal MinNodes — the run
	// starts at the floor, not at an arbitrary fixed fleet.
	if _, err := Run(Scenario{
		Name: "mismatch", Seed: 1, DurationMS: 1000, Nodes: 3, Autoscale: as,
	}); err == nil {
		t.Error("autoscale scenario with Nodes != MinNodes accepted")
	}

	// A bad controller config surfaces as a Run error, not a panic.
	if _, err := Run(Scenario{
		Name: "badcfg", Seed: 1, DurationMS: 1000,
		Autoscale: &scaler.Config{MinNodes: 1, CapacityQPS: -1},
	}); err == nil {
		t.Error("autoscale scenario with negative capacity accepted")
	}
}
