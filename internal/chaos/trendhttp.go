// HTTP ingest benchmark artifact (BENCH_http.json) and its trend rules: the
// saturation driver (cmd/abacus-httpbench) ramps closed-loop load against an
// in-process gateway and records peak sustained QPS at a goodput floor,
// latency at peak, allocations per request, and the component benchmarks of
// the wire codec. Allocation counts are deterministic and gated tightly;
// QPS and ns/op are wall-clock figures on shared CI runners and get
// generous tolerances — allocs/request is the reliable tripwire, peak QPS
// the catastrophic-regression backstop.
package chaos

import (
	"encoding/json"
	"fmt"
)

// HTTPStep is one rung of the saturation ramp: offered concurrency, the
// throughput it sustained, and the goodput delivered there.
type HTTPStep struct {
	Concurrency int     `json:"concurrency"`
	QPS         float64 `json:"qps"`
	Goodput     float64 `json:"goodput"`
	P50MS       float64 `json:"p50_ms"`
	P99MS       float64 `json:"p99_ms"`
}

// HTTPBench is one component benchmark of the ingest path (decode, encode,
// full hot path), in testing.Benchmark units.
type HTTPBench struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
}

// HTTPArtifact is the BENCH_http.json shape: the saturation result plus the
// codec component benchmarks, uploaded by the bench lane next to
// BENCH_gateway.json and BENCH_predict.json.
type HTTPArtifact struct {
	// WallSeconds is wall-clock and ignored by trend comparison.
	WallSeconds float64 `json:"wall_seconds,omitempty"`
	// GoodputFloor is the goodput a step must deliver for its QPS to count
	// as sustained.
	GoodputFloor float64 `json:"goodput_floor"`
	// PeakQPS is the highest sustained throughput across the ramp.
	PeakQPS float64 `json:"peak_qps"`
	// PeakConcurrency is the ramp step that delivered PeakQPS.
	PeakConcurrency int `json:"peak_concurrency"`
	// P50MS/P99MS are the latency percentiles at the peak step (virtual ms).
	P50MS float64 `json:"p50_ms"`
	P99MS float64 `json:"p99_ms"`
	// AllocsPerRequest is the end-to-end allocation cost of one /v1/infer
	// request at the peak step (runtime.MemStats mallocs delta per request).
	AllocsPerRequest float64     `json:"allocs_per_request"`
	Steps            []HTTPStep  `json:"steps"`
	Benchmarks       []HTTPBench `json:"benchmarks"`
}

// ParseHTTPArtifact decodes an HTTP ingest benchmark artifact.
func ParseHTTPArtifact(data []byte) (HTTPArtifact, error) {
	var a HTTPArtifact
	if err := json.Unmarshal(data, &a); err != nil {
		return HTTPArtifact{}, fmt.Errorf("chaos: parsing http artifact: %w", err)
	}
	if a.PeakQPS <= 0 {
		return HTTPArtifact{}, fmt.Errorf("chaos: http artifact has no peak QPS")
	}
	return a, nil
}

// HTTPTrendOptions sets the ingest regression tolerances. The zero value
// takes the defaults.
type HTTPTrendOptions struct {
	// MaxQPSDrop is the largest tolerated relative peak-QPS decrease
	// (default 0.50 = 50%, generous because throughput on shared CI runners
	// swings widely — this gate catches collapses, not noise).
	MaxQPSDrop float64
	// MaxAllocsGrowth is the largest tolerated relative allocs-per-request
	// increase (default 0.10).
	MaxAllocsGrowth float64
	// AllocSlack is the absolute allocs-per-request allowance on top of
	// MaxAllocsGrowth, so near-zero baselines do not flag on +1 (default 2).
	AllocSlack float64
	// MaxNsGrowth is the largest tolerated relative ns/op increase on the
	// component benchmarks (default 0.50).
	MaxNsGrowth float64
	// MaxAllocsPerRequest, when positive, is an absolute ceiling on
	// allocs-per-request regardless of the base: once a PR collapses the
	// allocation cost (PR 10 took it from ~2.5k to a few dozen), the ceiling
	// keeps later PRs from quietly ratcheting it back up under the relative
	// tolerance. Zero disables the check.
	MaxAllocsPerRequest float64
}

func (o HTTPTrendOptions) withDefaults() HTTPTrendOptions {
	if o.MaxQPSDrop <= 0 {
		o.MaxQPSDrop = 0.50
	}
	if o.MaxAllocsGrowth <= 0 {
		o.MaxAllocsGrowth = 0.10
	}
	if o.AllocSlack <= 0 {
		o.AllocSlack = 2
	}
	if o.MaxNsGrowth <= 0 {
		o.MaxNsGrowth = 0.50
	}
	return o
}

// CompareHTTPTrend diffs two ingest artifacts: a peak-QPS collapse beyond
// MaxQPSDrop, allocs-per-request growth beyond the (tight) tolerance, and
// per-benchmark allocs/op and ns/op growth on the codec components. Issues
// come back in a deterministic order (headline metrics, then base benchmark
// order).
func CompareHTTPTrend(base, head HTTPArtifact, opts HTTPTrendOptions) []TrendIssue {
	opts = opts.withDefaults()
	var issues []TrendIssue
	if base.PeakQPS > 0 && (base.PeakQPS-head.PeakQPS)/base.PeakQPS > opts.MaxQPSDrop {
		issues = append(issues, TrendIssue{
			Scenario: "http", Metric: "peak_qps", Base: base.PeakQPS, Head: head.PeakQPS,
		})
	}
	if head.AllocsPerRequest > base.AllocsPerRequest*(1+opts.MaxAllocsGrowth)+opts.AllocSlack {
		issues = append(issues, TrendIssue{
			Scenario: "http", Metric: "allocs_per_request",
			Base: base.AllocsPerRequest, Head: head.AllocsPerRequest,
		})
	}
	if opts.MaxAllocsPerRequest > 0 && head.AllocsPerRequest > opts.MaxAllocsPerRequest {
		issues = append(issues, TrendIssue{
			Scenario: "http", Metric: "allocs_per_request_ceiling",
			Base: opts.MaxAllocsPerRequest, Head: head.AllocsPerRequest,
		})
	}
	byName := make(map[string]HTTPBench, len(head.Benchmarks))
	for _, b := range head.Benchmarks {
		byName[b.Name] = b
	}
	for _, b := range base.Benchmarks {
		h, ok := byName[b.Name]
		if !ok {
			issues = append(issues, TrendIssue{Scenario: b.Name, Metric: "missing"})
			continue
		}
		if h.AllocsPerOp > b.AllocsPerOp*(1+opts.MaxAllocsGrowth)+opts.AllocSlack {
			issues = append(issues, TrendIssue{
				Scenario: b.Name, Metric: "allocs_per_op", Base: b.AllocsPerOp, Head: h.AllocsPerOp,
			})
		}
		if b.NsPerOp > 0 && (h.NsPerOp-b.NsPerOp)/b.NsPerOp > opts.MaxNsGrowth {
			issues = append(issues, TrendIssue{
				Scenario: b.Name, Metric: "ns_per_op", Base: b.NsPerOp, Head: h.NsPerOp,
			})
		}
	}
	return issues
}
