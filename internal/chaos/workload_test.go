package chaos

import "testing"

// TestWorkloadScenarioFloors pins the QoS floors of the three spec-driven
// scenarios — the same floors `make chaos` asserts via the CLI, held here so
// `go test` alone catches a regression. The floors leave a little headroom
// under the measured goodputs (1.0 / 1.0 / 0.9963) so legitimate scheduler
// tuning doesn't trip them, while a broken workload compiler (wrong rates,
// lost burstiness, perturbed streams) will.
func TestWorkloadScenarioFloors(t *testing.T) {
	cases := []struct {
		name  string
		floor float64
	}{
		{"flash-crowd", 0.99},
		{"heavy-tail", 0.99},
		{"diurnal-ramp", 0.98},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			sc, ok := Lookup(tc.name)
			if !ok {
				t.Fatalf("%s scenario missing", tc.name)
			}
			if sc.Workload == nil {
				t.Fatalf("%s is not workload-driven", tc.name)
			}
			rep, err := Run(sc)
			if err != nil {
				t.Fatal(err)
			}
			if rep.Goodput < tc.floor {
				t.Errorf("goodput %.4f < floor %.2f:\n%s", rep.Goodput, tc.floor, rep.Text())
			}
			if rep.Sent == 0 {
				t.Error("workload scenario sent nothing")
			}
			if rep.QPS <= 0 {
				t.Errorf("report QPS %.4f not the realized rate", rep.QPS)
			}
		})
	}
}

// TestFlashCrowdShapeSurvivesHarness checks the flash actually reaches the
// gateway: the realized rate of the flash-crowd scenario must clearly exceed
// its off-peak baseline (15+15 qps), which only happens if the compiled
// spike survives Bind → Materialize → harness replay.
func TestFlashCrowdShapeSurvivesHarness(t *testing.T) {
	sc, ok := Lookup("flash-crowd")
	if !ok {
		t.Fatal("flash-crowd scenario missing")
	}
	rep, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	if rep.QPS < 1.3*30 {
		t.Errorf("realized %.1f qps barely above the 30 qps baseline — flash lost in compilation", rep.QPS)
	}
}
