// Package chaos is the deterministic fault-injection harness: it replays a
// seeded arrival trace through the full Abacus runtime — admission control,
// degraded-mode recovery, and a virtual retrying client included — while a
// fault script opens and closes fault windows on the virtual clock. Because
// everything (arrivals, faults, retries, recovery) lives in simulated time,
// a scenario's report is byte-identical for a given seed and script at any
// parallelism, which is what lets CI assert QoS floors under faults instead
// of eyeballing flaky wall-clock runs.
package chaos

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"abacus/internal/dnn"
)

// Fault kinds a script may open windows for.
const (
	// KindGPUThrottle cuts the simulated GPU clock: Magnitude is the
	// remaining speed fraction in (0, 1] (0.5 = half speed), Mem optionally
	// the remaining memory-bandwidth fraction (default: same as Magnitude).
	KindGPUThrottle = "gpu_throttle"
	// KindLaunchStall delays every kernel launch by Magnitude virtual ms.
	KindLaunchStall = "launch_stall"
	// KindPredictorBias multiplies every latency prediction by Magnitude
	// (0.5 = the predictor reports half the true latency).
	KindPredictorBias = "predictor_bias"
	// KindPredictorNoise adds seeded multiplicative noise of half-width
	// Magnitude in [0, 1) to every prediction.
	KindPredictorNoise = "predictor_noise"
	// KindDrop loses each client request in transit with probability
	// Magnitude (the response never arrives; the client may retry).
	KindDrop = "drop"
	// KindDuplicate re-sends each client request with probability Magnitude
	// (same idempotency key — the gateway must suppress the double).
	KindDuplicate = "duplicate"
	// KindMalformed corrupts each request body with probability Magnitude
	// (the gateway rejects it without admission; clients do not retry 400s).
	KindMalformed = "malformed"
)

var kinds = map[string]bool{
	KindGPUThrottle:    true,
	KindLaunchStall:    true,
	KindPredictorBias:  true,
	KindPredictorNoise: true,
	KindDrop:           true,
	KindDuplicate:      true,
	KindMalformed:      true,
}

// Window is one fault active over [Start, End) virtual ms.
type Window struct {
	Kind      string  `json:"kind"`
	Start     float64 `json:"start_ms"`
	End       float64 `json:"end_ms"`
	Magnitude float64 `json:"magnitude"`
	// Mem is KindGPUThrottle's optional separate memory-bandwidth fraction;
	// 0 means "same as Magnitude".
	Mem float64 `json:"mem,omitempty"`
	// Model, for KindPredictorBias only, scopes the bias to one model's
	// predictions (short name as printed by dnn.ModelID.String, e.g.
	// "Res152") — the shape of a predictor mistrained for a single service.
	// Empty biases every prediction. JSON scripts only.
	Model string `json:"model,omitempty"`
	// Node scopes a device fault (gpu_throttle, launch_stall) or predictor
	// fault (predictor_bias, predictor_noise) to one node of a cluster
	// scenario, mirroring Model scoping: a throttled GPU is a per-node
	// event, and the healthy replicas must not see it. Default 0 targets
	// the first node, which is also the only node of single-node runs.
	// Request faults (drop, duplicate, malformed) happen before routing, so
	// they cannot be node-scoped. JSON scripts only.
	Node int `json:"node,omitempty"`
}

func (w Window) validate() error {
	if !kinds[w.Kind] {
		return fmt.Errorf("chaos: unknown fault kind %q", w.Kind)
	}
	if !(w.Start >= 0) || !(w.End > w.Start) {
		return fmt.Errorf("chaos: %s window [%v, %v) is not a forward interval", w.Kind, w.Start, w.End)
	}
	if w.Model != "" {
		if w.Kind != KindPredictorBias {
			return fmt.Errorf("chaos: %s window scoped to model %q, only %s supports model scoping", w.Kind, w.Model, KindPredictorBias)
		}
		if _, err := dnn.ModelIDByName(w.Model); err != nil {
			return fmt.Errorf("chaos: %s window: %w", w.Kind, err)
		}
	}
	if w.Node < 0 {
		return fmt.Errorf("chaos: %s window targets negative node %d", w.Kind, w.Node)
	}
	if w.Node != 0 {
		switch w.Kind {
		case KindDrop, KindDuplicate, KindMalformed:
			return fmt.Errorf("chaos: %s faults act before routing and cannot be node-scoped", w.Kind)
		}
	}
	m := w.Magnitude
	switch w.Kind {
	case KindGPUThrottle:
		if !(m > 0) || m > 1 {
			return fmt.Errorf("chaos: gpu_throttle magnitude %v outside (0, 1]", m)
		}
		if w.Mem != 0 && (!(w.Mem > 0) || w.Mem > 1) {
			return fmt.Errorf("chaos: gpu_throttle mem fraction %v outside (0, 1]", w.Mem)
		}
	case KindLaunchStall:
		if !(m >= 0) {
			return fmt.Errorf("chaos: launch_stall magnitude %v must be >= 0 ms", m)
		}
	case KindPredictorBias:
		if !(m > 0) {
			return fmt.Errorf("chaos: predictor_bias magnitude %v must be positive", m)
		}
	case KindPredictorNoise:
		if !(m >= 0) || m >= 1 {
			return fmt.Errorf("chaos: predictor_noise magnitude %v outside [0, 1)", m)
		}
	case KindDrop, KindDuplicate, KindMalformed:
		if !(m >= 0) || m > 1 {
			return fmt.Errorf("chaos: %s probability %v outside [0, 1]", w.Kind, m)
		}
	}
	return nil
}

// Script is an ordered set of fault windows.
type Script struct {
	Windows []Window `json:"windows"`
}

// Validate checks every window and rejects overlapping windows of the same
// kind and model scope (their reverts would race; sequential windows
// express the same scenarios unambiguously). A model-scoped predictor_bias
// window may overlap a global one only if they target different state,
// which they never do — the global window rewrites the same bias the scoped
// one composes with — so kind+model is the overlap key. Node scoping widens
// the key the same way: windows on different nodes touch different devices
// and may overlap freely.
func (s Script) Validate() error {
	for _, w := range s.Windows {
		if err := w.validate(); err != nil {
			return err
		}
	}
	byKind := map[string][]Window{}
	for _, w := range s.Windows {
		key := w.Kind
		if w.Model != "" {
			key += ":" + w.Model
		}
		if w.Node != 0 {
			key += fmt.Sprintf("@%d", w.Node)
		}
		byKind[key] = append(byKind[key], w)
	}
	for kind, ws := range byKind {
		sort.Slice(ws, func(i, j int) bool { return ws[i].Start < ws[j].Start })
		for i := 1; i < len(ws); i++ {
			if ws[i].Start < ws[i-1].End {
				return fmt.Errorf("chaos: %s windows [%v, %v) and [%v, %v) overlap",
					kind, ws[i-1].Start, ws[i-1].End, ws[i].Start, ws[i].End)
			}
		}
	}
	return nil
}

// active reports whether a window of the given kind covers time t and, if
// so, returns it.
func (s Script) active(kind string, t float64) (Window, bool) {
	for _, w := range s.Windows {
		if w.Kind == kind && t >= w.Start && t < w.End {
			return w, true
		}
	}
	return Window{}, false
}

// ParseScript reads a fault script from JSON (an object with a "windows"
// array, or a bare array of windows) or CSV
// ("kind,start_ms,end_ms,magnitude[,mem]" rows, # comments allowed),
// sniffing the format from the first non-space byte.
func ParseScript(data []byte) (Script, error) {
	trimmed := strings.TrimSpace(string(data))
	if trimmed == "" {
		return Script{}, fmt.Errorf("chaos: empty fault script")
	}
	var s Script
	switch trimmed[0] {
	case '{':
		if err := json.Unmarshal([]byte(trimmed), &s); err != nil {
			return Script{}, fmt.Errorf("chaos: parsing JSON script: %w", err)
		}
	case '[':
		if err := json.Unmarshal([]byte(trimmed), &s.Windows); err != nil {
			return Script{}, fmt.Errorf("chaos: parsing JSON script: %w", err)
		}
	default:
		ws, err := parseCSVScript(trimmed)
		if err != nil {
			return Script{}, err
		}
		s.Windows = ws
	}
	if err := s.Validate(); err != nil {
		return Script{}, err
	}
	return s, nil
}

func parseCSVScript(text string) ([]Window, error) {
	r := csv.NewReader(strings.NewReader(text))
	r.Comment = '#'
	r.FieldsPerRecord = -1
	r.TrimLeadingSpace = true
	var out []Window
	line := 0
	for {
		rec, err := r.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("chaos: parsing CSV script: %w", err)
		}
		line++
		if line == 1 && strings.EqualFold(rec[0], "kind") {
			continue // header row
		}
		if len(rec) < 4 || len(rec) > 5 {
			return nil, fmt.Errorf("chaos: CSV row %d has %d fields, want kind,start_ms,end_ms,magnitude[,mem]", line, len(rec))
		}
		w := Window{Kind: strings.TrimSpace(rec[0])}
		fields := []*float64{&w.Start, &w.End, &w.Magnitude, &w.Mem}
		for i, dst := range fields[:len(rec)-1] {
			v, err := strconv.ParseFloat(strings.TrimSpace(rec[i+1]), 64)
			if err != nil {
				return nil, fmt.Errorf("chaos: CSV row %d field %d: %w", line, i+2, err)
			}
			*dst = v
		}
		out = append(out, w)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("chaos: CSV script has no fault windows")
	}
	return out, nil
}
