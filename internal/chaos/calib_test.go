package chaos

import (
	"testing"

	"abacus/internal/admit"
)

// TestModelScopedWindowValidation: predictor_bias windows may name a model;
// other kinds and unknown names are rejected, and overlap detection keys on
// kind+model so scoped windows for different models may coexist.
func TestModelScopedWindowValidation(t *testing.T) {
	if _, err := ParseScript([]byte(`[{"kind": "predictor_bias", "start_ms": 0, "end_ms": 10, "magnitude": 0.5, "model": "Res152"}]`)); err != nil {
		t.Errorf("model-scoped predictor_bias rejected: %v", err)
	}
	ok := Script{Windows: []Window{
		{Kind: KindPredictorBias, Start: 0, End: 10, Magnitude: 0.5, Model: "Res152"},
		{Kind: KindPredictorBias, Start: 5, End: 15, Magnitude: 0.5, Model: "IncepV3"},
	}}
	if err := ok.Validate(); err != nil {
		t.Errorf("scoped windows for different models rejected: %v", err)
	}
	for name, bad := range map[string]Script{
		"unknown model": {Windows: []Window{
			{Kind: KindPredictorBias, Start: 0, End: 10, Magnitude: 0.5, Model: "GPT5"},
		}},
		"model on non-bias kind": {Windows: []Window{
			{Kind: KindDrop, Start: 0, End: 10, Magnitude: 0.5, Model: "Res152"},
		}},
		"same model overlap": {Windows: []Window{
			{Kind: KindPredictorBias, Start: 0, End: 10, Magnitude: 0.5, Model: "Res152"},
			{Kind: KindPredictorBias, Start: 5, End: 15, Magnitude: 0.5, Model: "Res152"},
		}},
	} {
		if err := bad.Validate(); err == nil {
			t.Errorf("%s: Validate accepted %+v", name, bad)
		}
	}
}

// TestBiasOneCalibrationAcceptance is the calibration PR's headline claim,
// asserted with fixed seeds across four runs of the same arrival trace:
//
//   - uncontrolled (no degrade, no calibration): a predictor reporting 20%
//     of Res152's true latency overadmits and goodput drops;
//   - degrade-only: per-service drift detection restores goodput but only
//     by shedding the drifting service — and the healthy neighbour still
//     pays, because the overadmitted backlog inflates its completions too;
//   - calibrated: the tracker learns the inverse bias, admission predicts
//     accurately again, goodput recovers above both baselines with a
//     fraction of the shedding;
//   - fault-free: the reference for the healthy service's admission and
//     shed rates, which calibration must not disturb.
func TestBiasOneCalibrationAcceptance(t *testing.T) {
	degradeOnly, ok := Lookup("bias-one")
	if !ok {
		t.Fatal("bias-one scenario missing")
	}
	calibrated, ok := Lookup("bias-one-calibrated")
	if !ok {
		t.Fatal("bias-one-calibrated scenario missing")
	}
	uncontrolled := degradeOnly
	uncontrolled.Name = "bias-one-uncontrolled"
	uncontrolled.Degrade = admit.DegradeConfig{Disabled: true}
	faultFree := calibrated
	faultFree.Name = "bias-one-fault-free"
	faultFree.Script = Script{}

	reports := make(map[string]*Report, 4)
	for _, sc := range []Scenario{uncontrolled, degradeOnly, calibrated, faultFree} {
		rep, err := Run(sc)
		if err != nil {
			t.Fatalf("%s: %v", sc.Name, err)
		}
		reports[sc.Name] = rep
	}
	unc := reports["bias-one-uncontrolled"]
	deg := reports["bias-one"]
	cal := reports["bias-one-calibrated"]
	ref := reports["bias-one-fault-free"]

	// The fault must actually hurt when nothing reacts.
	if unc.Goodput >= 0.96 {
		t.Fatalf("uncontrolled goodput %.4f too healthy — bias fault too weak:\n%s", unc.Goodput, unc.Text())
	}

	// Calibration restores goodput above the uncalibrated baseline and back
	// to the healthy floor.
	if cal.Goodput <= unc.Goodput {
		t.Errorf("calibrated goodput %.4f did not beat uncalibrated %.4f", cal.Goodput, unc.Goodput)
	}
	if cal.Goodput < 0.99 {
		t.Errorf("calibrated goodput %.4f < 0.99:\n%s", cal.Goodput, cal.Text())
	}
	// It also delivers more good completions than shedding alone: correcting
	// the predictions keeps traffic flowing that degrade-only throws away.
	if cal.Good < deg.Good {
		t.Errorf("calibrated good %d < degrade-only good %d — calibration should shed less", cal.Good, deg.Good)
	}
	if calSvc0, degSvc0 := cal.Services[0].RejectedDegraded, deg.Services[0].RejectedDegraded; calSvc0 >= degSvc0 {
		t.Errorf("calibrated sheds %d from the biased service, degrade-only %d — calibration should shed less", calSvc0, degSvc0)
	}

	// The tracker learned an inverse correction for the biased service
	// (truth/predicted = 1/0.2 = 5; damping plus the fault window ending at
	// 9000 ms leaves it partway there) and left the healthy one alone.
	if s := cal.Services[0].CalibSlope; s < 1.5 {
		t.Errorf("biased service slope %.3f, want > 1.5 (learning 1/bias)", s)
	}
	if s, r := cal.Services[1].CalibSlope, ref.Services[1].CalibSlope; s < r-0.05 || s > r+0.05 {
		t.Errorf("healthy service slope %.3f strayed from fault-free %.3f", s, r)
	}

	// The co-located unbiased service's shed and admission rates stay within
	// noise of its fault-free run.
	calSvc1, refSvc1 := cal.Services[1], ref.Services[1]
	if d := calSvc1.RejectedDegraded - refSvc1.RejectedDegraded; d < -3 || d > 3 {
		t.Errorf("healthy service shed %d under neighbour's fault vs %d fault-free",
			calSvc1.RejectedDegraded, refSvc1.RejectedDegraded)
	}
	if lo, hi := refSvc1.Admitted*95/100, refSvc1.Admitted*105/100; calSvc1.Admitted < lo || calSvc1.Admitted > hi {
		t.Errorf("healthy service admitted %d under neighbour's fault vs %d fault-free (>5%% apart)",
			calSvc1.Admitted, refSvc1.Admitted)
	}

	// Degrade-only cannot isolate the neighbour as well: the overadmitted
	// backlog inflates the healthy service's completions and it sheds too.
	if deg.Services[1].RejectedDegraded <= calSvc1.RejectedDegraded {
		t.Logf("note: degrade-only healthy-service shed %d not above calibrated %d",
			deg.Services[1].RejectedDegraded, calSvc1.RejectedDegraded)
	}
}
