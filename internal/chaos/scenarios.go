// Named chaos scenarios and deterministic report rendering. The built-ins
// are the CI suite: a healthy baseline, the 50% GPU throttle with and
// without degraded-mode recovery (the acceptance pair), a launch-stall
// storm, a mistrained predictor, and flaky clients exercising the retry and
// idempotency paths.
package chaos

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sort"

	"abacus/internal/admit"
	"abacus/internal/calib"
	"abacus/internal/runner"
	"abacus/internal/scaler"
	"abacus/internal/trace"
	"abacus/internal/workload"
)

// Scenarios returns the named built-in suite, sorted by name.
func Scenarios() []Scenario {
	noDegrade := admit.DegradeConfig{Disabled: true}
	throttle := Script{Windows: []Window{
		{Kind: KindGPUThrottle, Start: 2000, End: 6000, Magnitude: 0.5},
	}}
	// Fast detection for the recovery scenarios: react within two
	// completions and shed with half again the observed divergence, the
	// setting that holds the ≥99% goodput floor under the 50% throttle.
	fastDegrade := admit.DegradeConfig{Alpha: 0.7, MinSamples: 2, MarginHeadroom: 1.5}
	// A sustained single-service misprediction: the window names the model so
	// only Res152's predictions are biased — it reports a fifth of the true
	// latency. The load is high enough that trusting those predictions
	// visibly overadmits.
	biasOne := Script{Windows: []Window{
		{Kind: KindPredictorBias, Start: 1000, End: 9000, Magnitude: 0.2, Model: "Res152"},
	}}
	// Cluster detection trades speed for selectivity: migration (not
	// shedding) is the recovery mechanism, so the enter threshold sits above
	// the co-location startup transient (~1.5×) but well below a halved
	// GPU's sustained ~2× divergence, and quarantine probes let a replica
	// that tripped on noise rejoin within a few probe rounds.
	clusterDegrade := admit.DegradeConfig{Alpha: 0.5, MinSamples: 4, EnterRatio: 1.6, ExitRatio: 1.2, MarginHeadroom: 1.3}
	out := []Scenario{
		{
			Name: "baseline", Seed: 11,
			Degrade: noDegrade,
		},
		{
			// The healthy baseline with the oracle memo cache on: every
			// counter must match "baseline" exactly — the cache is an
			// optimization, never a behavior change (see
			// TestPredictCacheTransparency).
			Name: "baseline-cached", Seed: 11,
			Degrade:      noDegrade,
			PredictCache: 4096,
		},
		{
			Name: "throttle50", Seed: 11,
			Script:  throttle,
			Degrade: noDegrade,
		},
		{
			Name: "throttle50-degraded", Seed: 11,
			Script:  throttle,
			Degrade: fastDegrade,
		},
		{
			Name: "stall", Seed: 13,
			Script: Script{Windows: []Window{
				{Kind: KindLaunchStall, Start: 1000, End: 4000, Magnitude: 2},
			}},
			Degrade: fastDegrade,
		},
		{
			Name: "mispredict", Seed: 17,
			Script: Script{Windows: []Window{
				{Kind: KindPredictorBias, Start: 1000, End: 5000, Magnitude: 0.6},
				{Kind: KindPredictorNoise, Start: 1000, End: 5000, Magnitude: 0.2},
			}},
			Degrade: fastDegrade,
		},
		{
			// One mistrained service: the predictor reports 60% of the true
			// latency for Res152 only; Inception-v3's predictions stay exact.
			// Per-service drift detection sheds the drifting service without
			// touching its neighbour.
			Name: "bias-one", Seed: 23, QPS: 60,
			Script:  biasOne,
			Degrade: fastDegrade,
		},
		{
			// Same fault, with online calibration closing the loop: the
			// tracker learns the inverse bias and admission goodput recovers
			// instead of merely shedding.
			Name: "bias-one-calibrated", Seed: 23, QPS: 60,
			Script:  biasOne,
			Degrade: fastDegrade,
			Calib:   &calib.Config{Seed: 23},
		},
		{
			// Four healthy replicated nodes under the same per-node load as
			// "baseline": the fault-free control the node-throttle scenario's
			// healthy replicas are compared against.
			Name: "cluster-baseline", Seed: 31, QPS: 120,
			Nodes:   4,
			Degrade: clusterDegrade,
		},
		{
			// The cluster acceptance scenario: one of four nodes drops to
			// half speed mid-run. Its drift detectors trip, the affinity
			// router migrates traffic to the three healthy replicas, and the
			// cluster holds its goodput floor while the siblings stay within
			// noise of cluster-baseline (see TestClusterMigration).
			Name: "cluster-node-throttle", Seed: 31, QPS: 120,
			Nodes: 4,
			Script: Script{Windows: []Window{
				{Kind: KindGPUThrottle, Start: 2000, End: 6000, Magnitude: 0.5, Node: 2},
			}},
			Degrade: clusterDegrade,
		},
		{
			// The elastic acceptance scenario: a four-minute fig22 MAF-like
			// day (diurnal sinusoid, no burst minutes) against the live
			// autoscaler. Offered load swings ~3→57 qps; the forecaster adds
			// nodes ahead of the peak (spikes act immediately) and drains
			// them in the trough after warm-up, hysteresis, and cooldown.
			// CI asserts goodput ≥ 0.98 through the peak AND ≥ 25%
			// node-hours saved vs static peak provisioning (see
			// TestDiurnalAutoscale and the trend gate).
			Name: "diurnal-autoscale", Seed: 53,
			Degrade: clusterDegrade,
			MAF: &trace.MAFConfig{
				BaseQPS:          30,
				DurationMS:       240_000,
				DiurnalAmplitude: 0.9,
				Seed:             53,
			},
			Autoscale: &scaler.Config{
				MinNodes: 1,
				MaxNodes: 4,
				// Anti-flap tuning is threshold placement, not slack width.
				// Offered QPS measured over T seconds has Poisson noise
				// σ = sqrt(rate/T); since spikes scale out immediately (by
				// design), every node-count boundary must sit several σ
				// from every plateau of the trace. At 33 QPS/node the
				// boundaries (23.1, 46.2, 69.3 usable QPS) are ≥ 2.8σ from
				// the 30 QPS shoulders and the 57 QPS peak once T = 5 s;
				// at T = 1 s the peak's σ of 7.5 puts the 3↔4 boundary
				// inside the noise and the fleet churns.
				CapacityQPS: 33,
				WarmupMS:    1500,
				IntervalMS:  5000,
			},
		},
		{
			Name: "flaky-clients", Seed: 19,
			Script: Script{Windows: []Window{
				{Kind: KindDrop, Start: 1000, End: 6000, Magnitude: 0.2},
				{Kind: KindDuplicate, Start: 1000, End: 6000, Magnitude: 0.2},
				{Kind: KindMalformed, Start: 3000, End: 5000, Magnitude: 0.1},
			}},
			Retry: &RetryConfig{},
		},
		{
			// A flash crowd hits one service: steady 15 qps each, then service
			// 0 surges to ~6× for a second with sharp 250 ms edges. The
			// admission controller must shed the unservable excess without
			// letting the surge starve service 1.
			Name: "flash-crowd", Seed: 41,
			Degrade: fastDegrade,
			Workload: &workload.Spec{
				Name: "flash-crowd", DurationMS: 10_000,
				Services: []workload.ServiceSpec{
					{Service: 0, Phases: []workload.PhaseSpec{{
						Kind: workload.PhaseFlash, QPS: 15, PeakQPS: 90,
						PeakStartMS: 4000, PeakEndMS: 5000, RampMS: 250,
					}}},
					{Service: 1, Phases: []workload.PhaseSpec{{
						Kind: workload.PhaseConstant, QPS: 15,
					}}},
				},
			},
		},
		{
			// Heavy-tailed gaps at the baseline's mean rate: Gamma shape 0.3
			// gives CV² ≈ 3.3, so arrivals clump into bursts with long
			// silences — the regime where mean-rate admission headroom lies.
			Name: "heavy-tail", Seed: 43,
			Degrade: fastDegrade,
			Workload: &workload.Spec{
				Name: "heavy-tail", DurationMS: 10_000,
				Services: []workload.ServiceSpec{
					{Service: 0, Process: workload.ProcessSpec{Kind: workload.ProcGamma, Shape: 0.3},
						Phases: []workload.PhaseSpec{{Kind: workload.PhaseConstant, QPS: 15}}},
					{Service: 1, Process: workload.ProcessSpec{Kind: workload.ProcGamma, Shape: 0.3},
						Phases: []workload.PhaseSpec{{Kind: workload.PhaseConstant, QPS: 15}}},
				},
			},
		},
		{
			// Compressed diurnal drift: service 0 swings ±60% around its mean
			// over a 5 s "day" while service 1 ramps 5→35 qps, crossing load
			// shares mid-run — the slow-drift regime the MAF experiment
			// approximates, now as a first-class gated scenario.
			Name: "diurnal-ramp", Seed: 47,
			Degrade: fastDegrade,
			Workload: &workload.Spec{
				Name: "diurnal-ramp", DurationMS: 10_000,
				Services: []workload.ServiceSpec{
					{Service: 0, Phases: []workload.PhaseSpec{{
						Kind: workload.PhaseSine, QPS: 12, Amplitude: 0.6, PeriodMS: 5000,
					}}},
					{Service: 1, Phases: []workload.PhaseSpec{{
						Kind: workload.PhaseRamp, QPS: 5, ToQPS: 35,
					}}},
				},
			},
		},
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Lookup returns the named built-in scenario.
func Lookup(name string) (Scenario, bool) {
	for _, sc := range Scenarios() {
		if sc.Name == name {
			return sc, true
		}
	}
	return Scenario{}, false
}

// RunAll executes scenarios on a deterministic worker pool; reports come
// back in input order regardless of the parallelism width.
func RunAll(scs []Scenario, parallel int) ([]*Report, error) {
	return runner.MapErr(len(scs), parallel, func(i int) (*Report, error) {
		return Run(scs[i])
	})
}

// Text renders the report as a fixed-order human-readable block. Every
// value derives from virtual time and seeded randomness, so the bytes are
// identical across runs and -parallel widths.
func (r *Report) Text() string {
	var b bytes.Buffer
	fmt.Fprintf(&b, "scenario %s (seed %d, qps %s)\n", r.Name, r.Seed, f(r.QPS))
	fmt.Fprintf(&b, "  sent %d  attempts %d  retries %d\n", r.Sent, r.Attempts, r.Retries)
	fmt.Fprintf(&b, "  admitted %d  completed %d  good %d  violated %d  dropped %d\n",
		r.Admitted, r.Completed, r.Good, r.Violated, r.Dropped)
	fmt.Fprintf(&b, "  rejected: deadline %d  queue %d  degraded %d  gave_up %d\n",
		r.RejectedDeadline, r.RejectedQueue, r.RejectedDegraded, r.GaveUp)
	fmt.Fprintf(&b, "  faults: drops %d  duplicates %d  malformed %d\n",
		r.FaultDrops, r.FaultDuplicates, r.FaultMalformed)
	fmt.Fprintf(&b, "  degrade: transitions %d  shed %d  divergence %s\n",
		r.DegradeTransitions, r.DegradeShed, f(r.FinalDivergence))
	fmt.Fprintf(&b, "  latency: p50 %s ms  p99 %s ms  goodput %s\n",
		f(r.P50MS), f(r.P99MS), f(r.Goodput))
	if a := r.Autoscale; a != nil {
		fmt.Fprintf(&b, "  autoscale: nodes %d..%d  interval %s ms  warmup %s ms  ticks %d\n",
			a.MinNodes, a.MaxNodes, f(a.IntervalMS), f(a.WarmupMS), a.Ticks)
		fmt.Fprintf(&b, "  autoscale: scale_outs %d  scale_ins %d  held: hysteresis %d  cooldown %d  max %d\n",
			a.ScaleOuts, a.ScaleIns, a.HeldHysteresis, a.HeldCooldown, a.HeldMaxNodes)
		fmt.Fprintf(&b, "  autoscale: peak %d  final %d  node_ms %s  static %s  saved %s\n",
			a.PeakNodes, a.FinalNodes, f(a.NodeMS), f(a.StaticPeakNodeMS), f(a.SavedFrac))
	}
	if len(r.Nodes) > 0 {
		fmt.Fprintf(&b, "  migrations %d\n", r.Migrations)
		for _, n := range r.Nodes {
			fmt.Fprintf(&b, "  node %d: routed %d  migrated_in %d  good %d  violated %d  shed %d  transitions %d  divergence %s",
				n.Node, n.Routed, n.MigratedIn, n.Good, n.Violated, n.DegradeShed, n.DegradeTransitions, f(n.FinalDivergence))
			if n.Window != nil {
				fmt.Fprintf(&b, "  window [%s, %s]", f(n.Window.FirstMS), f(n.Window.LastMS))
			}
			fmt.Fprintf(&b, "\n")
		}
	}
	for _, s := range r.Services {
		fmt.Fprintf(&b, "  svc %d %s: admitted %d  good %d  violated %d  shed %d  margin %s  divergence %s",
			s.Service, s.Model, s.Admitted, s.Good, s.Violated, s.RejectedDegraded, f(s.Margin), f(s.Divergence))
		if r.Calibrated {
			fmt.Fprintf(&b, "  calib slope %s  intercept %s ms  samples %d",
				f(s.CalibSlope), f(s.CalibInterceptMS), s.CalibSamples)
		}
		fmt.Fprintf(&b, "\n")
	}
	return b.String()
}

// JSON renders the report as deterministic indented JSON.
func (r *Report) JSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}

func f(v float64) string { return fmt.Sprintf("%.4g", v) }
