package chaos

import (
	"encoding/json"
	"testing"
)

func art(reports ...*Report) Artifact { return Artifact{Reports: reports} }

func rep(name string, goodput, p99 float64) *Report {
	return &Report{Name: name, Goodput: goodput, P99MS: p99}
}

func TestCompareTrendCleanWhenIdentical(t *testing.T) {
	a := art(rep("baseline", 1.0, 20), rep("throttle50", 0.95, 35))
	if issues := CompareTrend(a, a, TrendOptions{}); len(issues) != 0 {
		t.Fatalf("identical artifacts flagged: %v", issues)
	}
}

func TestCompareTrendFlagsGoodputDrop(t *testing.T) {
	base := art(rep("baseline", 1.0, 20))
	head := art(rep("baseline", 0.98, 20))
	issues := CompareTrend(base, head, TrendOptions{})
	if len(issues) != 1 || issues[0].Metric != "goodput" {
		t.Fatalf("want one goodput issue, got %v", issues)
	}
	// Within tolerance: no issue.
	head = art(rep("baseline", 0.997, 20))
	if issues := CompareTrend(base, head, TrendOptions{}); len(issues) != 0 {
		t.Fatalf("tolerated drop flagged: %v", issues)
	}
}

func TestCompareTrendFlagsP99Growth(t *testing.T) {
	base := art(rep("baseline", 1.0, 20))
	head := art(rep("baseline", 1.0, 23))
	issues := CompareTrend(base, head, TrendOptions{})
	if len(issues) != 1 || issues[0].Metric != "p99_ms" {
		t.Fatalf("want one p99 issue, got %v", issues)
	}
	head = art(rep("baseline", 1.0, 21.5))
	if issues := CompareTrend(base, head, TrendOptions{}); len(issues) != 0 {
		t.Fatalf("tolerated growth flagged: %v", issues)
	}
	// A zero-p99 baseline (nothing completed) cannot assert relative growth.
	base = art(rep("baseline", 1.0, 0))
	head = art(rep("baseline", 1.0, 50))
	if issues := CompareTrend(base, head, TrendOptions{}); len(issues) != 0 {
		t.Fatalf("zero-p99 baseline flagged: %v", issues)
	}
}

func TestCompareTrendMissingAndNewScenarios(t *testing.T) {
	base := art(rep("baseline", 1.0, 20), rep("throttle50", 0.95, 35))
	head := art(rep("baseline", 1.0, 20), rep("brand-new", 0.5, 99))
	issues := CompareTrend(base, head, TrendOptions{})
	if len(issues) != 1 || issues[0].Metric != "missing" || issues[0].Scenario != "throttle50" {
		t.Fatalf("want one missing-scenario issue for throttle50, got %v", issues)
	}
}

func TestCompareTrendCustomTolerances(t *testing.T) {
	base := art(rep("baseline", 1.0, 20))
	head := art(rep("baseline", 0.90, 20))
	if issues := CompareTrend(base, head, TrendOptions{MaxGoodputDrop: 0.2}); len(issues) != 0 {
		t.Fatalf("drop within custom tolerance flagged: %v", issues)
	}
}

func TestParseArtifactRoundTrip(t *testing.T) {
	a := Artifact{WallSeconds: 1.5, Reports: []*Report{rep("baseline", 1.0, 20)}}
	data, err := json.Marshal(a)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ParseArtifact(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.Reports[0].Name != "baseline" || got.WallSeconds != 1.5 {
		t.Fatalf("round trip mangled artifact: %+v", got)
	}
	if _, err := ParseArtifact([]byte(`{"reports": []}`)); err == nil {
		t.Fatal("empty artifact accepted")
	}
	if _, err := ParseArtifact([]byte(`not json`)); err == nil {
		t.Fatal("garbage accepted")
	}
}

// TestTrendOnLiveSuite runs two real scenario reports through the comparator
// — the same artifact must always be trend-clean against itself, which is
// what makes the CI check byte-deterministic rather than noise-tolerant.
func TestTrendOnLiveSuite(t *testing.T) {
	scs := []Scenario{}
	for _, name := range []string{"baseline", "bias-one-calibrated"} {
		sc, ok := Lookup(name)
		if !ok {
			t.Fatalf("scenario %s missing", name)
		}
		scs = append(scs, sc)
	}
	reports, err := RunAll(scs, 2)
	if err != nil {
		t.Fatal(err)
	}
	a := Artifact{Reports: reports}
	data, err := json.Marshal(a)
	if err != nil {
		t.Fatal(err)
	}
	parsed, err := ParseArtifact(data)
	if err != nil {
		t.Fatal(err)
	}
	if issues := CompareTrend(a, parsed, TrendOptions{}); len(issues) != 0 {
		t.Fatalf("artifact not trend-clean against itself: %v", issues)
	}
}
