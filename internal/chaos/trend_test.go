package chaos

import (
	"encoding/json"
	"testing"
)

func art(reports ...*Report) Artifact { return Artifact{Reports: reports} }

func rep(name string, goodput, p99 float64) *Report {
	return &Report{Name: name, Goodput: goodput, P99MS: p99}
}

func TestCompareTrendCleanWhenIdentical(t *testing.T) {
	a := art(rep("baseline", 1.0, 20), rep("throttle50", 0.95, 35))
	if issues := CompareTrend(a, a, TrendOptions{}); len(issues) != 0 {
		t.Fatalf("identical artifacts flagged: %v", issues)
	}
}

func TestCompareTrendFlagsGoodputDrop(t *testing.T) {
	base := art(rep("baseline", 1.0, 20))
	head := art(rep("baseline", 0.98, 20))
	issues := CompareTrend(base, head, TrendOptions{})
	if len(issues) != 1 || issues[0].Metric != "goodput" {
		t.Fatalf("want one goodput issue, got %v", issues)
	}
	// Within tolerance: no issue.
	head = art(rep("baseline", 0.997, 20))
	if issues := CompareTrend(base, head, TrendOptions{}); len(issues) != 0 {
		t.Fatalf("tolerated drop flagged: %v", issues)
	}
}

func TestCompareTrendFlagsP99Growth(t *testing.T) {
	base := art(rep("baseline", 1.0, 20))
	head := art(rep("baseline", 1.0, 23))
	issues := CompareTrend(base, head, TrendOptions{})
	if len(issues) != 1 || issues[0].Metric != "p99_ms" {
		t.Fatalf("want one p99 issue, got %v", issues)
	}
	head = art(rep("baseline", 1.0, 21.5))
	if issues := CompareTrend(base, head, TrendOptions{}); len(issues) != 0 {
		t.Fatalf("tolerated growth flagged: %v", issues)
	}
	// A zero-p99 baseline (nothing completed) cannot assert relative growth.
	base = art(rep("baseline", 1.0, 0))
	head = art(rep("baseline", 1.0, 50))
	if issues := CompareTrend(base, head, TrendOptions{}); len(issues) != 0 {
		t.Fatalf("zero-p99 baseline flagged: %v", issues)
	}
}

func TestCompareTrendMissingAndNewScenarios(t *testing.T) {
	base := art(rep("baseline", 1.0, 20), rep("throttle50", 0.95, 35))
	head := art(rep("baseline", 1.0, 20), rep("brand-new", 0.5, 99))
	issues := CompareTrend(base, head, TrendOptions{})
	if len(issues) != 1 || issues[0].Metric != "missing" || issues[0].Scenario != "throttle50" {
		t.Fatalf("want one missing-scenario issue for throttle50, got %v", issues)
	}
}

func TestCompareTrendCustomTolerances(t *testing.T) {
	base := art(rep("baseline", 1.0, 20))
	head := art(rep("baseline", 0.90, 20))
	if issues := CompareTrend(base, head, TrendOptions{MaxGoodputDrop: 0.2}); len(issues) != 0 {
		t.Fatalf("drop within custom tolerance flagged: %v", issues)
	}
}

// svcRep attaches per-service counters to a report.
func svcRep(name string, goodput, p99 float64, services ...ServiceReport) *Report {
	r := rep(name, goodput, p99)
	r.Services = services
	return r
}

func TestCompareTrendFlagsPerServiceShed(t *testing.T) {
	base := art(svcRep("bias-one", 0.99, 30,
		ServiceReport{Service: 0, Model: "Res152", Admitted: 400, RejectedDegraded: 50},
		ServiceReport{Service: 1, Model: "IncepV3", Admitted: 300, RejectedDegraded: 0}))
	// One service sheds far more while the aggregate stays healthy: the
	// isolation regression the per-service rules exist to catch.
	head := art(svcRep("bias-one", 0.99, 30,
		ServiceReport{Service: 0, Model: "Res152", Admitted: 400, RejectedDegraded: 50},
		ServiceReport{Service: 1, Model: "IncepV3", Admitted: 300, RejectedDegraded: 40}))
	issues := CompareTrend(base, head, TrendOptions{})
	if len(issues) != 1 || issues[0].Metric != "rejected_degraded" ||
		issues[0].Scenario != "bias-one[1:IncepV3]" {
		t.Fatalf("want one per-service shed issue, got %v", issues)
	}
	// Growth within tolerance+slack passes.
	head = art(svcRep("bias-one", 0.99, 30,
		ServiceReport{Service: 0, Model: "Res152", Admitted: 400, RejectedDegraded: 55},
		ServiceReport{Service: 1, Model: "IncepV3", Admitted: 300, RejectedDegraded: 2}))
	if issues := CompareTrend(base, head, TrendOptions{}); len(issues) != 0 {
		t.Fatalf("tolerated shed growth flagged: %v", issues)
	}
}

func TestCompareTrendFlagsPerServiceAdmittedDrop(t *testing.T) {
	base := art(svcRep("baseline", 1.0, 20,
		ServiceReport{Service: 0, Model: "Res152", Admitted: 400},
		ServiceReport{Service: 1, Model: "IncepV3", Admitted: 300}))
	head := art(svcRep("baseline", 1.0, 20,
		ServiceReport{Service: 0, Model: "Res152", Admitted: 400},
		ServiceReport{Service: 1, Model: "IncepV3", Admitted: 250}))
	issues := CompareTrend(base, head, TrendOptions{})
	if len(issues) != 1 || issues[0].Metric != "admitted" ||
		issues[0].Scenario != "baseline[1:IncepV3]" {
		t.Fatalf("want one per-service admitted issue, got %v", issues)
	}
	// A service missing from head is flagged even when the aggregate holds.
	head = art(svcRep("baseline", 1.0, 20,
		ServiceReport{Service: 0, Model: "Res152", Admitted: 400}))
	issues = CompareTrend(base, head, TrendOptions{})
	if len(issues) != 1 || issues[0].Metric != "missing" ||
		issues[0].Scenario != "baseline[1:IncepV3]" {
		t.Fatalf("want one missing-service issue, got %v", issues)
	}
	if issues := CompareTrend(base, base, TrendOptions{}); len(issues) != 0 {
		t.Fatalf("identical per-service artifacts flagged: %v", issues)
	}
}

// nodeRep attaches per-node counters to a report.
func nodeRep(name string, goodput, p99 float64, nodes ...NodeReport) *Report {
	r := rep(name, goodput, p99)
	r.Nodes = nodes
	return r
}

func TestCompareTrendFlagsPerNodeGoodputDrop(t *testing.T) {
	base := art(nodeRep("cluster-node-throttle", 0.995, 30,
		NodeReport{Node: 0, Admitted: 400, Good: 399},
		NodeReport{Node: 1, Admitted: 300, Good: 300}))
	// One replica's own admissions start missing deadlines while migration
	// keeps the cluster aggregate flat: the regression the per-node rule
	// exists to catch.
	head := art(nodeRep("cluster-node-throttle", 0.995, 30,
		NodeReport{Node: 0, Admitted: 400, Good: 399},
		NodeReport{Node: 1, Admitted: 300, Good: 285}))
	issues := CompareTrend(base, head, TrendOptions{})
	if len(issues) != 1 || issues[0].Metric != "goodput" ||
		issues[0].Scenario != "cluster-node-throttle[node 1]" {
		t.Fatalf("want one per-node goodput issue, got %v", issues)
	}
	// Within tolerance: no issue.
	head = art(nodeRep("cluster-node-throttle", 0.995, 30,
		NodeReport{Node: 0, Admitted: 400, Good: 399},
		NodeReport{Node: 1, Admitted: 300, Good: 298}))
	if issues := CompareTrend(base, head, TrendOptions{}); len(issues) != 0 {
		t.Fatalf("tolerated per-node drop flagged: %v", issues)
	}
	// A node missing from head is flagged; an idle node counts as perfect.
	head = art(nodeRep("cluster-node-throttle", 0.995, 30,
		NodeReport{Node: 0, Admitted: 400, Good: 399},
		NodeReport{Node: 1, Admitted: 0, Good: 0}))
	if issues := CompareTrend(base, head, TrendOptions{}); len(issues) != 0 {
		t.Fatalf("idle node flagged: %v", issues)
	}
	head = art(nodeRep("cluster-node-throttle", 0.995, 30,
		NodeReport{Node: 0, Admitted: 400, Good: 399}))
	issues = CompareTrend(base, head, TrendOptions{})
	if len(issues) != 1 || issues[0].Metric != "missing" ||
		issues[0].Scenario != "cluster-node-throttle[node 1]" {
		t.Fatalf("want one missing-node issue, got %v", issues)
	}
	// Custom tolerance widens the gate.
	head = art(nodeRep("cluster-node-throttle", 0.995, 30,
		NodeReport{Node: 0, Admitted: 400, Good: 399},
		NodeReport{Node: 1, Admitted: 300, Good: 285}))
	if issues := CompareTrend(base, head, TrendOptions{MaxNodeGoodputDrop: 0.1}); len(issues) != 0 {
		t.Fatalf("drop within custom per-node tolerance flagged: %v", issues)
	}
}

func predictArt(benches ...PredictBench) PredictArtifact {
	return PredictArtifact{Benchmarks: benches}
}

func TestComparePredictTrend(t *testing.T) {
	base := predictArt(
		PredictBench{Name: "BenchmarkMLPPredictBatch/B=64", NsPerOp: 84000, AllocsPerOp: 1, BytesPerOp: 512},
		PredictBench{Name: "BenchmarkMaxFeasibleSpan", NsPerOp: 21000, AllocsPerOp: 8, BytesPerOp: 1272})
	if issues := ComparePredictTrend(base, base, PredictTrendOptions{}); len(issues) != 0 {
		t.Fatalf("identical predict artifacts flagged: %v", issues)
	}
	// Alloc regression beyond relative tolerance + slack.
	head := predictArt(
		PredictBench{Name: "BenchmarkMLPPredictBatch/B=64", NsPerOp: 84000, AllocsPerOp: 1, BytesPerOp: 512},
		PredictBench{Name: "BenchmarkMaxFeasibleSpan", NsPerOp: 21000, AllocsPerOp: 40, BytesPerOp: 9000})
	issues := ComparePredictTrend(base, head, PredictTrendOptions{})
	if len(issues) != 1 || issues[0].Metric != "allocs_per_op" {
		t.Fatalf("want one allocs issue, got %v", issues)
	}
	// +2 allocs on a tiny baseline stays within slack.
	head = predictArt(
		PredictBench{Name: "BenchmarkMLPPredictBatch/B=64", NsPerOp: 84000, AllocsPerOp: 3, BytesPerOp: 512},
		PredictBench{Name: "BenchmarkMaxFeasibleSpan", NsPerOp: 21000, AllocsPerOp: 8, BytesPerOp: 1272})
	if issues := ComparePredictTrend(base, head, PredictTrendOptions{}); len(issues) != 0 {
		t.Fatalf("slack-covered alloc growth flagged: %v", issues)
	}
	// Large ns/op growth trips the generous gate; moderate growth does not.
	head = predictArt(
		PredictBench{Name: "BenchmarkMLPPredictBatch/B=64", NsPerOp: 200000, AllocsPerOp: 1, BytesPerOp: 512},
		PredictBench{Name: "BenchmarkMaxFeasibleSpan", NsPerOp: 25000, AllocsPerOp: 8, BytesPerOp: 1272})
	issues = ComparePredictTrend(base, head, PredictTrendOptions{})
	if len(issues) != 1 || issues[0].Metric != "ns_per_op" {
		t.Fatalf("want one ns/op issue, got %v", issues)
	}
	// Dropped benchmark.
	head = predictArt(base.Benchmarks[0])
	issues = ComparePredictTrend(base, head, PredictTrendOptions{})
	if len(issues) != 1 || issues[0].Metric != "missing" ||
		issues[0].Scenario != "BenchmarkMaxFeasibleSpan" {
		t.Fatalf("want one missing-benchmark issue, got %v", issues)
	}
}

func TestParsePredictArtifact(t *testing.T) {
	a := PredictArtifact{WallSeconds: 2, Benchmarks: []PredictBench{
		{Name: "BenchmarkMaxFeasibleSpan", NsPerOp: 21000, AllocsPerOp: 8},
	}}
	data, err := json.Marshal(a)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ParsePredictArtifact(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.Benchmarks[0].Name != "BenchmarkMaxFeasibleSpan" || got.WallSeconds != 2 {
		t.Fatalf("round trip mangled artifact: %+v", got)
	}
	if _, err := ParsePredictArtifact([]byte(`{"benchmarks": []}`)); err == nil {
		t.Fatal("empty predict artifact accepted")
	}
	if _, err := ParsePredictArtifact([]byte(`nope`)); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestParseArtifactRoundTrip(t *testing.T) {
	a := Artifact{WallSeconds: 1.5, Reports: []*Report{rep("baseline", 1.0, 20)}}
	data, err := json.Marshal(a)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ParseArtifact(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.Reports[0].Name != "baseline" || got.WallSeconds != 1.5 {
		t.Fatalf("round trip mangled artifact: %+v", got)
	}
	if _, err := ParseArtifact([]byte(`{"reports": []}`)); err == nil {
		t.Fatal("empty artifact accepted")
	}
	if _, err := ParseArtifact([]byte(`not json`)); err == nil {
		t.Fatal("garbage accepted")
	}
}

// TestTrendOnLiveSuite runs two real scenario reports through the comparator
// — the same artifact must always be trend-clean against itself, which is
// what makes the CI check byte-deterministic rather than noise-tolerant.
func TestTrendOnLiveSuite(t *testing.T) {
	scs := []Scenario{}
	for _, name := range []string{"baseline", "bias-one-calibrated", "cluster-node-throttle"} {
		sc, ok := Lookup(name)
		if !ok {
			t.Fatalf("scenario %s missing", name)
		}
		scs = append(scs, sc)
	}
	reports, err := RunAll(scs, 2)
	if err != nil {
		t.Fatal(err)
	}
	a := Artifact{Reports: reports}
	data, err := json.Marshal(a)
	if err != nil {
		t.Fatal(err)
	}
	parsed, err := ParseArtifact(data)
	if err != nil {
		t.Fatal(err)
	}
	if issues := CompareTrend(a, parsed, TrendOptions{}); len(issues) != 0 {
		t.Fatalf("artifact not trend-clean against itself: %v", issues)
	}
}

func asArt(rows ...AutoscaleSummary) AutoscaleArtifact { return AutoscaleArtifact{Scenarios: rows} }

func asRow(name string, goodput, nodeMS float64) AutoscaleSummary {
	return AutoscaleSummary{Name: name, Goodput: goodput, NodeMS: nodeMS, StaticPeakNodeMS: nodeMS * 1.5, SavedFrac: 1.0 / 3}
}

func TestCompareAutoscaleTrend(t *testing.T) {
	base := asArt(asRow("diurnal-autoscale", 0.999, 480_000))

	// Identical artifacts are clean.
	if issues := CompareAutoscaleTrend(base, base, AutoscaleTrendOptions{}); len(issues) != 0 {
		t.Fatalf("identical artifacts flagged: %v", issues)
	}

	// The goodput gate is an absolute floor, not base-relative: head under
	// 0.98 flags even though the drop from base is small.
	head := asArt(asRow("diurnal-autoscale", 0.975, 480_000))
	issues := CompareAutoscaleTrend(base, head, AutoscaleTrendOptions{})
	if len(issues) != 1 || issues[0].Metric != "goodput_floor" {
		t.Fatalf("want one goodput_floor issue, got %v", issues)
	}

	// Node-time growth beyond 10% flags; within it does not.
	head = asArt(asRow("diurnal-autoscale", 0.999, 540_000))
	issues = CompareAutoscaleTrend(base, head, AutoscaleTrendOptions{})
	if len(issues) != 1 || issues[0].Metric != "node_ms" {
		t.Fatalf("want one node_ms issue at 12.5%% growth, got %v", issues)
	}
	head = asArt(asRow("diurnal-autoscale", 0.999, 520_000))
	if issues := CompareAutoscaleTrend(base, head, AutoscaleTrendOptions{}); len(issues) != 0 {
		t.Fatalf("8%% node-time growth flagged: %v", issues)
	}

	// Custom tolerances override the defaults.
	head = asArt(asRow("diurnal-autoscale", 0.97, 500_000))
	issues = CompareAutoscaleTrend(base, head, AutoscaleTrendOptions{GoodputFloor: 0.96, MaxNodeMSGrowth: 0.03})
	if len(issues) != 1 || issues[0].Metric != "node_ms" {
		t.Fatalf("want one node_ms issue under custom tolerances, got %v", issues)
	}

	// A scenario dropped from the suite is a regression.
	issues = CompareAutoscaleTrend(base, asArt(asRow("other", 1, 1)), AutoscaleTrendOptions{})
	if len(issues) != 1 || issues[0].Metric != "missing" {
		t.Fatalf("want one missing issue, got %v", issues)
	}
}

func TestParseAutoscaleArtifactRoundTrip(t *testing.T) {
	a := AutoscaleArtifact{WallSeconds: 8.5, Scenarios: []AutoscaleSummary{asRow("diurnal-autoscale", 0.999, 480_000)}}
	data, err := json.Marshal(a)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ParseAutoscaleArtifact(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.Scenarios[0] != a.Scenarios[0] {
		t.Fatalf("round trip mangled the row: %+v vs %+v", got.Scenarios[0], a.Scenarios[0])
	}
	if _, err := ParseAutoscaleArtifact([]byte(`{"scenarios":[]}`)); err == nil {
		t.Error("empty artifact accepted")
	}
	if _, err := ParseAutoscaleArtifact([]byte(`not json`)); err == nil {
		t.Error("malformed artifact accepted")
	}
}

func TestAutoscaleSummaryOfLiveReport(t *testing.T) {
	rep := mustRun(t, "diurnal-autoscale")
	row, ok := AutoscaleSummaryOf(rep)
	if !ok {
		t.Fatal("elastic report yielded no summary")
	}
	if row.Name != "diurnal-autoscale" || row.Goodput != rep.Goodput || row.NodeMS != rep.Autoscale.NodeMS {
		t.Fatalf("summary does not mirror the report: %+v", row)
	}
	if _, ok := AutoscaleSummaryOf(&Report{Name: "fixed"}); ok {
		t.Error("fixed-fleet report yielded a summary")
	}
}
