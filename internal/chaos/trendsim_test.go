package chaos

import (
	"encoding/json"
	"testing"
)

func simBase() SimArtifact {
	return SimArtifact{
		Benchmarks: []SimBench{
			{Name: "BenchmarkEngineSchedule", NsPerOp: 25, AllocsPerOp: 0},
			{Name: "BenchmarkDeviceOverlap", NsPerOp: 1000, AllocsPerOp: 0},
		},
	}
}

func TestCompareSimTrendClean(t *testing.T) {
	base := simBase()
	head := simBase()
	// Noise-sized wobble must pass: ns/op up 80%, +2 allocs of runtime jitter.
	head.Benchmarks[0].NsPerOp = 45
	head.Benchmarks[1].AllocsPerOp = 2
	if issues := CompareSimTrend(base, head, SimTrendOptions{}); len(issues) != 0 {
		t.Fatalf("unexpected issues: %v", issues)
	}
}

func TestCompareSimTrendRegressions(t *testing.T) {
	base := simBase()
	head := simBase()
	head.Benchmarks[0].AllocsPerOp = 5    // hot path allocates again
	head.Benchmarks[0].NsPerOp = 80       // > 2×: collapse
	head.Benchmarks = head.Benchmarks[:1] // device benchmark dropped
	issues := CompareSimTrend(base, head, SimTrendOptions{})
	want := map[string]bool{
		"BenchmarkEngineSchedule/allocs_per_op": false,
		"BenchmarkEngineSchedule/ns_per_op":     false,
		"BenchmarkDeviceOverlap/missing":        false,
	}
	for _, i := range issues {
		key := i.Scenario + "/" + i.Metric
		if _, ok := want[key]; !ok {
			t.Errorf("unexpected issue %v", i)
			continue
		}
		want[key] = true
	}
	for key, seen := range want {
		if !seen {
			t.Errorf("missing expected issue %s", key)
		}
	}
}

func TestCompareHTTPTrendAbsoluteCeiling(t *testing.T) {
	base := httpBase()
	head := httpBase()
	// A slow ratchet under the relative gate: base was already bloated, head
	// grows within 10%+2 — only the absolute ceiling catches it.
	base.AllocsPerRequest = 280
	head.AllocsPerRequest = 305
	if issues := CompareHTTPTrend(base, head, HTTPTrendOptions{}); len(issues) != 0 {
		t.Fatalf("relative gate should tolerate 280 -> 305: %v", issues)
	}
	issues := CompareHTTPTrend(base, head, HTTPTrendOptions{MaxAllocsPerRequest: 300})
	if len(issues) != 1 || issues[0].Metric != "allocs_per_request_ceiling" {
		t.Fatalf("want one allocs_per_request_ceiling issue, got %v", issues)
	}
	head.AllocsPerRequest = 299
	if issues := CompareHTTPTrend(base, head, HTTPTrendOptions{MaxAllocsPerRequest: 300}); len(issues) != 0 {
		t.Fatalf("head under the ceiling should pass: %v", issues)
	}
}

func TestParseSimArtifactRoundTrip(t *testing.T) {
	data, err := json.Marshal(simBase())
	if err != nil {
		t.Fatal(err)
	}
	a, err := ParseSimArtifact(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Benchmarks) != 2 {
		t.Fatalf("round trip mangled artifact: %+v", a)
	}
	if _, err := ParseSimArtifact([]byte(`{}`)); err == nil {
		t.Fatal("empty artifact should be rejected")
	}
	if _, err := ParseSimArtifact([]byte(`not json`)); err == nil {
		t.Fatal("garbage should be rejected")
	}
}
