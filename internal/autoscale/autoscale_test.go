package autoscale

import (
	"math"
	"testing"

	"abacus/internal/dnn"
	"abacus/internal/gpusim"
)

func testPlan() Plan {
	return Plan{
		Groups:      [][]dnn.ModelID{{dnn.ResNet152, dnn.InceptionV3}},
		CapacityQPS: 100,
	}
}

func TestNewPlannerValidation(t *testing.T) {
	cases := []struct {
		name string
		cfg  PlannerConfig
		ok   bool
	}{
		{"defaults", PlannerConfig{Plan: testPlan()}, true},
		{"no-capacity", PlannerConfig{}, false},
		{"bad-headroom", PlannerConfig{Plan: testPlan(), Headroom: 1.5}, false},
		{"bad-alpha", PlannerConfig{Plan: testPlan(), Alpha: -0.1}, false},
		{"bad-slack", PlannerConfig{Plan: testPlan(), ScaleInSlack: 0.5}, false},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := NewPlanner(c.cfg)
			if (err == nil) != c.ok {
				t.Errorf("err = %v, want ok=%v", err, c.ok)
			}
		})
	}
}

func TestPlannerScalesOutOnSpike(t *testing.T) {
	p, err := NewPlanner(PlannerConfig{Plan: testPlan()}) // usable 70 QPS/node
	if err != nil {
		t.Fatal(err)
	}
	d, n := p.Observe(50)
	if d != Hold || n != 1 {
		t.Errorf("at 50 QPS: %v, %d nodes; want hold at 1", d, n)
	}
	d, n = p.Observe(300)
	if d != ScaleOut || n != 5 {
		t.Errorf("spike to 300 QPS: %v, %d nodes; want scale-out to 5 (ceil(300/70))", d, n)
	}
}

func TestPlannerScalesInWithHysteresis(t *testing.T) {
	p, err := NewPlanner(PlannerConfig{Plan: testPlan(), Alpha: 1}) // no smoothing
	if err != nil {
		t.Fatal(err)
	}
	p.Observe(300) // 5 nodes
	// 260 QPS needs 4 nodes, but 5 <= 4×1.3 ⇒ hold.
	if d, n := p.Observe(260); d != Hold || n != 5 {
		t.Errorf("mild dip: %v, %d; want hold at 5", d, n)
	}
	// 130 QPS needs 2 nodes and 5 > 2×1.3 ⇒ shrink.
	if d, n := p.Observe(130); d != ScaleIn || n != 2 {
		t.Errorf("deep dip: %v, %d; want scale-in to 2", d, n)
	}
}

func TestPlannerRespectsMinNodes(t *testing.T) {
	p, err := NewPlanner(PlannerConfig{Plan: testPlan(), MinNodes: 3, Alpha: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, n := p.Observe(0); n != 3 {
		t.Errorf("fleet %d at zero load, want floor 3", n)
	}
}

func TestPlannerEWMASmoothsDecline(t *testing.T) {
	p, err := NewPlanner(PlannerConfig{Plan: testPlan(), Alpha: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	p.Observe(200)
	p.Observe(10)
	// Forecast should still remember the 200: 0.3·10 + 0.7·200 = 143.
	if math.Abs(p.Forecast()-143) > 1e-9 {
		t.Errorf("forecast %v, want 143", p.Forecast())
	}
}

func TestPlanTimeline(t *testing.T) {
	p, err := NewPlanner(PlannerConfig{Plan: testPlan(), Alpha: 1})
	if err != nil {
		t.Fatal(err)
	}
	offered := []float64{50, 150, 150, 40, 40}
	pts := PlanTimeline(p, offered)
	if len(pts) != len(offered) {
		t.Fatalf("timeline has %d points", len(pts))
	}
	for i, pt := range pts {
		if pt.OfferedQPS != offered[i] {
			t.Errorf("point %d offered %v", i, pt.OfferedQPS)
		}
		if pt.Nodes < 1 {
			t.Errorf("point %d nodes %d", i, pt.Nodes)
		}
		if pt.Utilization < 0 || pt.Utilization > 1.01 {
			t.Errorf("point %d utilization %v out of range", i, pt.Utilization)
		}
	}
	// The spike must have grown the fleet; the decline must have shrunk it.
	if pts[1].Decision != ScaleOut {
		t.Errorf("expected scale-out at the spike, got %v", pts[1].Decision)
	}
	if pts[len(pts)-1].Nodes >= pts[1].Nodes {
		t.Errorf("fleet did not shrink after the decline: %d >= %d",
			pts[len(pts)-1].Nodes, pts[1].Nodes)
	}
}

func TestDecisionString(t *testing.T) {
	if Hold.String() != "hold" || ScaleOut.String() != "scale-out" || ScaleIn.String() != "scale-in" {
		t.Error("decision names wrong")
	}
}

func TestBuildPlanEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("saturating simulation is slow")
	}
	p := gpusim.A100Profile()
	models := []dnn.ModelID{dnn.ResNet101, dnn.ResNet152, dnn.VGG19, dnn.Bert}
	plan := BuildPlan(models, 2, p, 1)
	if len(plan.Groups) != 2 {
		t.Fatalf("got %d groups, want 2", len(plan.Groups))
	}
	if plan.CapacityQPS <= 0 {
		t.Fatalf("capacity %v", plan.CapacityQPS)
	}
	// All four models placed exactly once.
	seen := map[dnn.ModelID]int{}
	for _, g := range plan.Groups {
		for _, m := range g {
			seen[m]++
		}
	}
	for _, m := range models {
		if seen[m] != 1 {
			t.Errorf("model %v placed %d times", m, seen[m])
		}
	}
}

func TestPlannerMaxNodesClamp(t *testing.T) {
	p, err := NewPlanner(PlannerConfig{Plan: testPlan(), MaxNodes: 3, Alpha: 1})
	if err != nil {
		t.Fatal(err)
	}
	d, n := p.Observe(1000) // need ceil(1000/70)=15, clamped to 3
	if d != ScaleOut || n != 3 {
		t.Fatalf("clamped spike: %v, %d nodes; want scale-out to 3", d, n)
	}
	d, n = p.Observe(1000) // still starved, already at cap
	if d != Hold || n != 3 {
		t.Fatalf("at cap: %v, %d nodes; want hold at 3", d, n)
	}
	if last := p.Last(); last.Reason != ReasonMaxNodes {
		t.Errorf("reason %q, want %q", last.Reason, ReasonMaxNodes)
	}
	if c := p.Counters(); c.HeldMaxNodes != 1 {
		t.Errorf("held-max-nodes = %d, want 1", c.HeldMaxNodes)
	}

	if _, err := NewPlanner(PlannerConfig{Plan: testPlan(), MinNodes: 4, MaxNodes: 2}); err == nil {
		t.Error("max < min accepted")
	}
}

func TestPlannerScaleInCooldown(t *testing.T) {
	p, err := NewPlanner(PlannerConfig{Plan: testPlan(), Alpha: 1, ScaleInCooldown: 2})
	if err != nil {
		t.Fatal(err)
	}
	p.Observe(300) // scale-out to 5, arms cooldown
	d, _ := p.Observe(0)
	if d != Hold || p.Last().Reason != ReasonCooldown {
		t.Fatalf("first post-action drop: %v/%q, want hold/cooldown", d, p.Last().Reason)
	}
	d, _ = p.Observe(0)
	if d != Hold || p.Last().Reason != ReasonCooldown {
		t.Fatalf("second post-action drop: %v/%q, want hold/cooldown", d, p.Last().Reason)
	}
	d, n := p.Observe(0)
	if d != ScaleIn || n != 1 || p.Last().Reason != ReasonScaleIn {
		t.Fatalf("after cooldown: %v, %d nodes, %q; want scale-in to 1", d, n, p.Last().Reason)
	}
	if c := p.Counters(); c.HeldCooldown != 2 || c.ScaleIns != 1 || c.ScaleOuts != 1 || c.Observations != 4 {
		t.Errorf("counters %+v", c)
	}
}

func TestPlannerLastDecisionInputs(t *testing.T) {
	p, err := NewPlanner(PlannerConfig{Plan: testPlan(), Alpha: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	p.Observe(300) // primes forecast at 300 → 5 nodes
	p.Observe(250) // forecast 275, demand 275 → need 4: within slack, hold
	last := p.Last()
	if last.OfferedQPS != 250 || last.Forecast != 275 || last.DemandQPS != 275 {
		t.Errorf("last inputs %+v, want offered=250 forecast=275 demand=275", last)
	}
	if last.Need != 4 || last.Nodes != 5 || last.Reason != ReasonHysteresis {
		t.Errorf("last outputs %+v, want need=4 nodes=5 reason=hysteresis", last)
	}
	if c := p.Counters(); c.HeldHysteresis != 1 {
		t.Errorf("held-hysteresis = %d, want 1", c.HeldHysteresis)
	}
}
