// Package autoscale implements the paper's §7.9 future-work direction: an
// Abacus-aware capacity planner for a DNN serving cluster. It combines
//
//   - an affinity-driven co-location plan (which services share a GPU,
//     built on the §7.8 overlap-gain analysis in internal/predictor),
//   - a per-node capacity estimate obtained by saturating one simulated
//     node under that plan, and
//   - a load forecaster (exponentially weighted moving average with a
//     configurable safety headroom) that converts offered load into a node
//     count, recommending scale-out/in decisions with hysteresis.
package autoscale

import (
	"fmt"
	"math"

	"abacus/internal/dnn"
	"abacus/internal/gpusim"
	"abacus/internal/predictor"
	"abacus/internal/serving"
	"abacus/internal/trace"
)

// Plan is the co-location and capacity plan for one node class.
type Plan struct {
	// Groups assigns services to GPUs within a node; only same-group
	// services are co-deployed (the §7.8 profiling-scalability scheme).
	Groups [][]dnn.ModelID
	// CapacityQPS is the estimated per-node goodput at the QoS target.
	CapacityQPS float64
}

// GroupServices returns the §7.8 overlap-gain co-location grouping without
// the capacity simulation — the affinity seed for the online gateway's
// default node placement, where sizing is the router's problem and only the
// grouping matters.
func GroupServices(models []dnn.ModelID, groupSize int, p gpusim.Profile) [][]dnn.ModelID {
	return predictor.PartitionServices(models, groupSize, 16, p)
}

// BuildPlan partitions the services into co-location groups of size
// groupSize and estimates the node's aggregate goodput capacity (one GPU
// per group) by saturating each group's GPU in simulation.
func BuildPlan(models []dnn.ModelID, groupSize int, p gpusim.Profile, seed int64) Plan {
	groups := GroupServices(models, groupSize, p)
	var capacity float64
	for _, group := range groups {
		capacity += estimateGroupCapacity(group, p, seed)
	}
	return Plan{Groups: groups, CapacityQPS: capacity}
}

// estimateGroupCapacity saturates one GPU running the group under Abacus
// and returns its sustainable goodput.
func estimateGroupCapacity(models []dnn.ModelID, p gpusim.Profile, seed int64) float64 {
	gen := trace.NewGenerator(models, seed)
	// Offer far more than a single GPU can serve; goodput saturates at
	// capacity.
	res := serving.Run(serving.RunConfig{
		Policy:   serving.PolicyAbacus,
		Models:   models,
		Arrivals: gen.Poisson(300, 3000),
		Profile:  p,
	})
	return res.Goodput()
}

// Decision is one autoscaling recommendation.
type Decision int

// The planner's possible recommendations.
const (
	Hold Decision = iota
	ScaleOut
	ScaleIn
)

// String names the decision.
func (d Decision) String() string {
	switch d {
	case Hold:
		return "hold"
	case ScaleOut:
		return "scale-out"
	case ScaleIn:
		return "scale-in"
	default:
		return fmt.Sprintf("Decision(%d)", int(d))
	}
}

// PlannerConfig tunes the controller.
type PlannerConfig struct {
	// Plan is the node plan whose capacity bounds each node.
	Plan Plan
	// Headroom is the target utilization ceiling (default 0.7: keep 30%
	// slack for bursts, since QoS targets are tight).
	Headroom float64
	// Alpha is the EWMA smoothing factor for the load forecast
	// (default 0.3).
	Alpha float64
	// MinNodes floors the fleet (default 1).
	MinNodes int
	// ScaleInSlack requires the fleet to be this much oversized before
	// shrinking (default 1.3), providing hysteresis against burst-driven
	// oscillation.
	ScaleInSlack float64
	// MaxNodes caps the fleet (0 = unbounded). Scale-out beyond the cap is
	// clamped and recorded as a held decision so operators can see the
	// planner wanted more capacity than it was allowed.
	MaxNodes int
	// ScaleInCooldown suppresses scale-in for this many observations after
	// any scale action (0 = none). It layers on top of ScaleInSlack:
	// slack guards against shrinking a fleet that is barely oversized,
	// cooldown guards against shrinking one that only just changed size.
	// Scale-out is never delayed — under-provisioning costs goodput.
	ScaleInCooldown int
}

// Reasons attached to LastDecision, explaining why the planner acted or
// declined to act on its most recent observation.
const (
	ReasonScaleOut   = "scale-out"
	ReasonScaleIn    = "scale-in"
	ReasonSteady     = "steady"
	ReasonHysteresis = "hysteresis" // scale-in wanted, fleet within slack
	ReasonCooldown   = "cooldown"   // scale-in wanted, cooldown active
	ReasonMaxNodes   = "max-nodes"  // scale-out wanted, fleet at cap
)

// LastDecision is a snapshot of the planner's most recent observation, for
// /statz and /metrics: what it saw, what it wanted, and why it did (or did
// not) act.
type LastDecision struct {
	Decision   Decision
	Reason     string
	OfferedQPS float64
	Forecast   float64
	DemandQPS  float64 // max(forecast, offered): what sizing used
	Need       int     // nodes demanded before hysteresis/cooldown
	Nodes      int     // fleet size after the decision
}

// Counters accumulate planner activity over the run: how often it scaled and
// how often hysteresis, cooldown, or the fleet cap suppressed an action.
type Counters struct {
	Observations   int64
	ScaleOuts      int64
	ScaleIns       int64
	HeldHysteresis int64
	HeldCooldown   int64
	HeldMaxNodes   int64
}

// Planner tracks load and recommends fleet sizes.
type Planner struct {
	cfg      PlannerConfig
	forecast float64
	nodes    int
	primed   bool
	cooldown int // observations until scale-in is allowed again
	last     LastDecision
	counters Counters
}

// NewPlanner builds a planner starting at the configured minimum fleet.
func NewPlanner(cfg PlannerConfig) (*Planner, error) {
	if cfg.Plan.CapacityQPS <= 0 {
		return nil, fmt.Errorf("autoscale: plan capacity %v must be positive", cfg.Plan.CapacityQPS)
	}
	if cfg.Headroom == 0 {
		cfg.Headroom = 0.7
	}
	if cfg.Headroom <= 0 || cfg.Headroom > 1 {
		return nil, fmt.Errorf("autoscale: headroom %v out of (0,1]", cfg.Headroom)
	}
	if cfg.Alpha == 0 {
		cfg.Alpha = 0.3
	}
	if cfg.Alpha <= 0 || cfg.Alpha > 1 {
		return nil, fmt.Errorf("autoscale: alpha %v out of (0,1]", cfg.Alpha)
	}
	if cfg.MinNodes <= 0 {
		cfg.MinNodes = 1
	}
	if cfg.ScaleInSlack == 0 {
		cfg.ScaleInSlack = 1.3
	}
	if cfg.ScaleInSlack < 1 {
		return nil, fmt.Errorf("autoscale: scale-in slack %v must be >= 1", cfg.ScaleInSlack)
	}
	if cfg.MaxNodes < 0 {
		return nil, fmt.Errorf("autoscale: max nodes %d must be >= 0", cfg.MaxNodes)
	}
	if cfg.MaxNodes > 0 && cfg.MaxNodes < cfg.MinNodes {
		return nil, fmt.Errorf("autoscale: max nodes %d below min nodes %d", cfg.MaxNodes, cfg.MinNodes)
	}
	if cfg.ScaleInCooldown < 0 {
		return nil, fmt.Errorf("autoscale: scale-in cooldown %d must be >= 0", cfg.ScaleInCooldown)
	}
	return &Planner{cfg: cfg, nodes: cfg.MinNodes}, nil
}

// Nodes returns the current fleet size.
func (p *Planner) Nodes() int { return p.nodes }

// Forecast returns the smoothed load estimate in QPS.
func (p *Planner) Forecast() float64 { return p.forecast }

// Last returns a snapshot of the most recent observation: the decision, the
// reason it fired or was suppressed, and the inputs that drove it. The zero
// value is returned before the first Observe.
func (p *Planner) Last() LastDecision { return p.last }

// Counters returns the accumulated decision counters.
func (p *Planner) Counters() Counters { return p.counters }

// Observe feeds one interval's offered load (QPS) and returns the
// recommendation together with the new fleet size. The fleet is resized
// immediately (the caller models provisioning delay if desired).
func (p *Planner) Observe(offeredQPS float64) (Decision, int) {
	if offeredQPS < 0 {
		offeredQPS = 0
	}
	if !p.primed {
		p.forecast = offeredQPS
		p.primed = true
	} else {
		p.forecast = p.cfg.Alpha*offeredQPS + (1-p.cfg.Alpha)*p.forecast
	}
	// A cooldown of N set at observation T suppresses scale-in through
	// observation T+N.
	inCooldown := p.cooldown > 0
	if inCooldown {
		p.cooldown--
	}
	// Spikes act immediately; the EWMA only smooths the way down.
	demand := math.Max(p.forecast, offeredQPS)
	usable := p.cfg.Plan.CapacityQPS * p.cfg.Headroom
	need := int(math.Ceil(demand / usable))
	if need < p.cfg.MinNodes {
		need = p.cfg.MinNodes
	}
	atCap := p.cfg.MaxNodes > 0 && need > p.cfg.MaxNodes
	if atCap {
		need = p.cfg.MaxNodes
	}
	p.counters.Observations++
	p.last = LastDecision{
		Decision:   Hold,
		Reason:     ReasonSteady,
		OfferedQPS: offeredQPS,
		Forecast:   p.forecast,
		DemandQPS:  demand,
		Need:       need,
	}
	switch {
	case need > p.nodes:
		p.nodes = need
		p.cooldown = p.cfg.ScaleInCooldown
		p.counters.ScaleOuts++
		p.last.Decision, p.last.Reason = ScaleOut, ReasonScaleOut
	case need < p.nodes:
		switch {
		case float64(p.nodes) <= float64(need)*p.cfg.ScaleInSlack:
			p.counters.HeldHysteresis++
			p.last.Reason = ReasonHysteresis
		case inCooldown:
			p.counters.HeldCooldown++
			p.last.Reason = ReasonCooldown
		default:
			p.nodes = need
			p.cooldown = p.cfg.ScaleInCooldown
			p.counters.ScaleIns++
			p.last.Decision, p.last.Reason = ScaleIn, ReasonScaleIn
		}
	default:
		if atCap {
			// Steady only because the cap clamped the demand.
			p.counters.HeldMaxNodes++
			p.last.Reason = ReasonMaxNodes
		}
	}
	p.last.Nodes = p.nodes
	return p.last.Decision, p.nodes
}

// TimelinePoint records one planning interval for reporting.
type TimelinePoint struct {
	OfferedQPS  float64
	Forecast    float64
	Nodes       int
	Decision    Decision
	Utilization float64 // offered / provisioned capacity
}

// PlanTimeline replays per-interval offered loads through the planner.
func PlanTimeline(p *Planner, offered []float64) []TimelinePoint {
	out := make([]TimelinePoint, 0, len(offered))
	for _, qps := range offered {
		d, n := p.Observe(qps)
		util := 0.0
		if cap := float64(n) * p.cfg.Plan.CapacityQPS; cap > 0 {
			util = qps / cap
		}
		out = append(out, TimelinePoint{
			OfferedQPS:  qps,
			Forecast:    p.Forecast(),
			Nodes:       n,
			Decision:    d,
			Utilization: util,
		})
	}
	return out
}
