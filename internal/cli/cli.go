// Package cli collects the helpers the abacus command-line binaries share:
// uniform error exit, model-list and policy-name parsing, and build-version
// reporting. Keeping them here stops each cmd/ main from growing its own
// slightly different copy.
package cli

import (
	"fmt"
	"os"
	"runtime"
	"runtime/debug"
	"strings"

	"abacus/internal/dnn"
	"abacus/internal/serving"
)

// Failer returns the standard error exit for a binary: print "tool: err" to
// stderr and exit 1.
func Failer(tool string) func(error) {
	return func(err error) {
		fmt.Fprintf(os.Stderr, "%s: %v\n", tool, err)
		os.Exit(1)
	}
}

// ParseModels parses a comma-separated model-name list ("Res152, IncepV3")
// into model IDs. Names are trimmed; an empty list is an error.
func ParseModels(list string) ([]dnn.ModelID, error) {
	var models []dnn.ModelID
	for _, name := range strings.Split(list, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		m, err := dnn.ModelIDByName(name)
		if err != nil {
			return nil, err
		}
		models = append(models, m)
	}
	if len(models) == 0 {
		return nil, fmt.Errorf("empty model list %q", list)
	}
	return models, nil
}

// ParsePlacement parses a node placement: semicolon-separated nodes, each a
// comma-separated model list ("Res152,IncepV3;Res50,VGG16" pins two nodes).
// An empty string yields nil (no pinned placement).
func ParsePlacement(spec string) ([][]dnn.ModelID, error) {
	if strings.TrimSpace(spec) == "" {
		return nil, nil
	}
	var place [][]dnn.ModelID
	for i, group := range strings.Split(spec, ";") {
		models, err := ParseModels(group)
		if err != nil {
			return nil, fmt.Errorf("placement node %d: %w", i, err)
		}
		place = append(place, models)
	}
	return place, nil
}

// ParsePolicy resolves a scheduler name (case-insensitive) to its policy.
func ParsePolicy(name string) (serving.PolicyKind, error) {
	switch strings.ToUpper(strings.TrimSpace(name)) {
	case "FCFS":
		return serving.PolicyFCFS, nil
	case "SJF":
		return serving.PolicySJF, nil
	case "EDF":
		return serving.PolicyEDF, nil
	case "ABACUS":
		return serving.PolicyAbacus, nil
	case "MPS":
		return serving.PolicyMPS, nil
	case "KERNELLEVEL", "KERNEL-LEVEL":
		return serving.PolicyKernelLevel, nil
	default:
		return 0, fmt.Errorf("unknown policy %q (FCFS, SJF, EDF, Abacus, MPS, KernelLevel)", name)
	}
}

// Version reports the binary's module version and toolchain, read from the
// build info stamped into the executable.
func Version() string {
	version := "(devel)"
	if bi, ok := debug.ReadBuildInfo(); ok && bi.Main.Version != "" {
		version = bi.Main.Version
	}
	return fmt.Sprintf("abacus %s %s", version, runtime.Version())
}
