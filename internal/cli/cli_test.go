package cli

import (
	"strings"
	"testing"

	"abacus/internal/dnn"
	"abacus/internal/serving"
)

func TestParseModels(t *testing.T) {
	models, err := ParseModels(" Res152, IncepV3 ")
	if err != nil {
		t.Fatal(err)
	}
	if len(models) != 2 || models[0] != dnn.ResNet152 || models[1] != dnn.InceptionV3 {
		t.Errorf("parsed %v", models)
	}
	for _, bad := range []string{"", ",", "Res152,NoSuchNet"} {
		if _, err := ParseModels(bad); err == nil {
			t.Errorf("ParseModels(%q) accepted", bad)
		}
	}
}

func TestParsePolicy(t *testing.T) {
	cases := map[string]serving.PolicyKind{
		"FCFS":   serving.PolicyFCFS,
		"sjf":    serving.PolicySJF,
		"Edf":    serving.PolicyEDF,
		"Abacus": serving.PolicyAbacus,
		"ABACUS": serving.PolicyAbacus,
		"mps":    serving.PolicyMPS,
	}
	for name, want := range cases {
		got, err := ParsePolicy(name)
		if err != nil || got != want {
			t.Errorf("ParsePolicy(%q) = %v, %v; want %v", name, got, err, want)
		}
	}
	if _, err := ParsePolicy("RoundRobin"); err == nil {
		t.Error("unknown policy accepted")
	}
}

func TestVersion(t *testing.T) {
	v := Version()
	if !strings.HasPrefix(v, "abacus ") || !strings.Contains(v, "go") {
		t.Errorf("Version() = %q", v)
	}
}
