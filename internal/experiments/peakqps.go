package experiments

import (
	"fmt"

	"abacus/internal/dnn"
	"abacus/internal/sched"
	"abacus/internal/serving"
	"abacus/internal/sim"
	"abacus/internal/trace"

	"abacus/internal/executor"
	"abacus/internal/gpusim"
	"abacus/internal/predictor"
	"abacus/internal/runner"
	"abacus/internal/stats"
)

func init() {
	register("peakqps", PeakQPS)
	register("segments", Segments)
}

// PeakQPS measures each policy's true QoS-constrained capacity by bisection
// (the quantity Figure 17 approximates with one fixed offered load): the
// highest Poisson load whose violation ratio stays under 5%.
func PeakQPS(opts Options) []Table {
	pairs := [][]dnn.ModelID{
		{dnn.ResNet50, dnn.ResNet152},
		{dnn.ResNet152, dnn.InceptionV3},
		{dnn.ResNet101, dnn.Bert},
		{dnn.VGG16, dnn.VGG19},
	}
	t := Table{
		ID:     "peakqps",
		Title:  "QoS-constrained capacity by bisection (max QPS with <5% violations)",
		Header: []string{"pair", "FCFS", "SJF", "EDF", "Abacus", "Abacus/FCFS"},
	}
	duration := opts.DurationMS / 2
	if duration < 3000 {
		duration = 3000
	}
	// Every (pair, policy) bisection is independent: the probe sequence is
	// fixed by the seed and bracket, so the whole grid fans out at once.
	// Only the Abacus cells train a predictor; the per-key once in
	// unifiedPredictor keeps concurrent cells from duplicating that work.
	policies := serving.AllPolicies()
	caps := runner.Map(len(pairs)*len(policies), opts.Parallel, func(j int) float64 {
		i, pi := j/len(policies), j%len(policies)
		cfg := serving.CapacityConfig{
			Policy:     policies[pi],
			Models:     pairs[i],
			DurationMS: duration,
			Seed:       opts.Seed + int64(i),
		}
		if policies[pi] == serving.PolicyAbacus {
			cfg.Model = unifiedPredictor(opts, pairs[i], 2)
		}
		qps, _ := serving.PeakQPS(cfg)
		return qps
	})
	for i, pair := range pairs {
		row := []string{pairName(pair)}
		var fcfs, abacus float64
		for pi, policy := range policies {
			qps := caps[i*len(policies)+pi]
			row = append(row, f1(qps))
			switch policy {
			case serving.PolicyFCFS:
				fcfs = qps
			case serving.PolicyAbacus:
				abacus = qps
			}
		}
		ratio := 0.0
		if fcfs > 0 {
			ratio = abacus / fcfs
		}
		row = append(row, f2(ratio))
		t.AddRow(row...)
	}
	t.Notes = append(t.Notes,
		"bisection over offered load; complements Figure 17's fixed-load goodput",
		"expected: Abacus capacity highest on ResNet/Inception pairs, parity on (VGG16,VGG19)")
	return []Table{t}
}

// Segments reports the controller's packing behaviour: queries per group,
// operators per group, and segments per completed query (§6.1's segmental
// execution made visible).
func Segments(opts Options) []Table {
	t := Table{
		ID:     "segments",
		Title:  "Abacus packing statistics (50 QPS)",
		Header: []string{"deployment", "groups", "queries/group", "ops/group", "segments/query p50", "p99"},
	}
	sets := [][]dnn.ModelID{
		{dnn.ResNet152, dnn.InceptionV3},
		{dnn.VGG16, dnn.VGG19},
		{dnn.ResNet101, dnn.ResNet152, dnn.VGG19, dnn.Bert},
	}
	rows := runner.Map(len(sets), opts.Parallel, func(i int) []string {
		models := sets[i]
		p := profile()
		eng := sim.NewEngine()
		dev := gpusim.New(eng, p)
		exec := executor.New(dev, 0.02)
		services := sched.Services(models, 2, p)
		var segs []float64
		ctrl := sched.NewAbacus(eng, exec, predictor.Oracle{Profile: p}, sched.DefaultConfig(), func(q *sched.Query) {
			if !q.Dropped {
				segs = append(segs, float64(q.Segments()))
			}
		})
		gen := trace.NewGenerator(models, opts.Seed+int64(i))
		var id int64
		var last float64
		for _, a := range gen.Poisson(50, opts.DurationMS) {
			a := a
			svc := services[a.Service]
			id++
			q := &sched.Query{ID: id, Service: svc, Input: a.Input, Arrival: a.Time}
			eng.ScheduleAt(a.Time+dnn.TransferTime(dnn.Get(svc.Model), a.Input, p), func() { ctrl.Enqueue(q) })
			if a.Time > last {
				last = a.Time
			}
		}
		eng.RunUntil(last + 1000)

		members, ops := ctrl.GroupStats()
		p50, p99 := 0.0, 0.0
		if len(segs) > 0 {
			qs := stats.Percentiles(segs, 50, 99)
			p50, p99 = qs[0], qs[1]
		}
		return []string{pairName(models), fmt.Sprintf("%d", ctrl.Rounds()),
			f2(members), f1(ops), f1(p50), f1(p99)}
	})
	for _, row := range rows {
		t.AddRow(row...)
	}
	t.Notes = append(t.Notes,
		"overlap-friendly deployments pack more queries and operators per group;",
		"a query split across k groups was checkpointed k-1 times by the executor (§6.1)")
	return []Table{t}
}
