package experiments

import (
	"fmt"

	"abacus/internal/dnn"
	"abacus/internal/executor"
	"abacus/internal/gpusim"
	"abacus/internal/predictor"
	"abacus/internal/runner"
	"abacus/internal/sched"
	"abacus/internal/serving"
	"abacus/internal/sim"
	"abacus/internal/trace"
)

func init() {
	register("fig20", Fig20)
	register("fig21", Fig21)
}

// migCase is one row of Figures 20/21: a partitioning of the A100 into MIG
// instances and an assignment of the four models to instances.
type migCase struct {
	name   string
	groups [][]dnn.ModelID // one entry per instance
	smFrac float64         // per-instance SM fraction (Table 3)
	mFrac  float64         // per-instance memory fraction
}

// migCases returns the paper's three isolation levels over
// {Res101, Res152, VGG19, Bert} (Table 3: 1g.5gb = 1/7 SMs + 1/8 mem,
// 2g.10gb = 2/7 + 1/4, 4g.20gb = 4/7 + 1/2).
func migCases() []migCase {
	r101, r152, v19, b := dnn.ResNet101, dnn.ResNet152, dnn.VGG19, dnn.Bert
	return []migCase{
		{"Res101+Res152+VGG19+Bert (4x MIG 1g.5gb)",
			[][]dnn.ModelID{{r101}, {r152}, {v19}, {b}}, 1.0 / 7, 1.0 / 8},
		{"(Res101,Bert)+(Res152,VGG19) (2x MIG 2g.10gb)",
			[][]dnn.ModelID{{r101, b}, {r152, v19}}, 2.0 / 7, 1.0 / 4},
		{"(Res101,Res152)+(VGG19,Bert) (2x MIG 2g.10gb)",
			[][]dnn.ModelID{{r101, r152}, {v19, b}}, 2.0 / 7, 1.0 / 4},
		{"(Res101,VGG19)+(Res152,Bert) (2x MIG 2g.10gb)",
			[][]dnn.ModelID{{r101, v19}, {r152, b}}, 2.0 / 7, 1.0 / 4},
		{"(Res101,Res152,VGG19,Bert) (1x MIG 4g.20gb)",
			[][]dnn.ModelID{{r101, r152, v19, b}}, 4.0 / 7, 1.0 / 2},
	}
}

// Fig20 reproduces Figure 20: worst-service 99%-ile latency normalized to
// QoS under each MIG configuration and policy. QoS targets are derived on
// the full GPU, so full isolation starves the heavy models. Because
// Abacus's drop mechanism keeps its completed-query p99 near the target
// even when an instance is hopeless, a violation-ratio companion table
// (drops counted, as in Figure 15) accompanies the latency table.
func Fig20(opts Options) []Table {
	return []Table{
		migTable(opts, "fig20",
			"MIG configurations: worst 99%-ile latency / QoS (50 QPS, completed queries)",
			50,
			func(r serving.Result) float64 { return r.NormalizedTail() },
			f2,
			"paper: 1g.5gb full isolation blows past QoS for the heavy models; Abacus on 4g matches pairwise isolation"),
		migTable(opts, "fig20-violations",
			"MIG configurations: QoS violation ratio (drops counted, 50 QPS)",
			50,
			func(r serving.Result) float64 { return r.ViolationRatio() },
			pct,
			"under-provisioned instances force Abacus to drop what it cannot serve in time"),
	}
}

// Fig21 reproduces Figure 21: peak goodput under each MIG configuration.
func Fig21(opts Options) []Table {
	return []Table{migTable(opts, "fig21",
		"MIG configurations: peak goodput at 100 QPS offered (queries/s within QoS)",
		100,
		func(r serving.Result) float64 { return r.Goodput() },
		f1,
		"paper: quad-wise Abacus on 4g.20gb ≈ pairwise deployments on 2x 2g.10gb; both beat full isolation")}
}

func migTable(opts Options, id, title string, qps float64,
	metric func(serving.Result) float64, format func(float64) string, paperNote string) Table {

	t := Table{
		ID:     id,
		Title:  title,
		Header: []string{"configuration", "FCFS", "SJF", "EDF", "Abacus"},
	}
	// Every (configuration, policy) cell is an independent simulation with
	// a per-case seed; the fan-out covers the whole grid and the rows are
	// reassembled in case × policy order.
	cases := migCases()
	policies := serving.AllPolicies()
	cells := runner.Map(len(cases)*len(policies), opts.Parallel, func(i int) serving.Result {
		ci, pi := i/len(policies), i%len(policies)
		return runMIG(opts, cases[ci], policies[pi], qps, opts.Seed+200+int64(ci))
	})
	for ci, c := range cases {
		row := []string{c.name}
		for pi := range policies {
			row = append(row, format(metric(cells[ci*len(policies)+pi])))
		}
		t.AddRow(row...)
	}
	t.Notes = append(t.Notes, paperNote,
		"Abacus rows use the capacity-matched exact latency model: the duration model",
		"must be profiled on the MIG instance it serves (paper §7.5)")
	return t
}

// runMIG executes one MIG configuration: each instance gets its own
// partitioned device and scheduler; arrivals route statically by service.
// Abacus instances use a latency model matched to their instance capacity
// (a full-device model would systematically under-predict and overpack).
func runMIG(opts Options, c migCase, policy serving.PolicyKind, qps float64, seed int64) serving.Result {

	p := profile()
	eng := sim.NewEngine()
	full := gpusim.New(eng, p)

	// Flatten services and build the service→instance map. QoS derives
	// from the full device (fixed service targets, regardless of slicing).
	var models []dnn.ModelID
	instanceOf := map[int]int{}
	for gi, group := range c.groups {
		for _, id := range group {
			instanceOf[len(models)] = gi
			models = append(models, id)
		}
	}
	services := sched.Services(models, 2, p)

	var records []serving.Record
	sink := func(q *sched.Query) {
		rec := serving.Record{
			Service: q.Service.ID,
			Model:   q.Service.Model,
			Input:   q.Input,
			Arrival: q.Arrival,
			Finish:  q.Finish,
			Dropped: q.Dropped,
			QoS:     q.Service.QoS,
		}
		if !q.Dropped {
			rec.Latency = q.Latency()
		}
		rec.Violated = q.Violated()
		records = append(records, rec)
	}

	schedulers := make([]sched.Scheduler, len(c.groups))
	for gi := range c.groups {
		dev := full.Partition(c.smFrac, c.mFrac)
		exec := executor.New(dev, 0.02)
		switch policy {
		case serving.PolicyAbacus:
			schedulers[gi] = sched.NewAbacus(eng, exec, predictor.ForDevice(dev), sched.DefaultConfig(), sink)
		case serving.PolicyFCFS:
			schedulers[gi] = sched.NewSequential(sched.FCFS, eng, exec, sched.DefaultConfig(), sink)
		case serving.PolicySJF:
			schedulers[gi] = sched.NewSequential(sched.SJF, eng, exec, sched.DefaultConfig(), sink)
		case serving.PolicyEDF:
			schedulers[gi] = sched.NewSequential(sched.EDF, eng, exec, sched.DefaultConfig(), sink)
		default:
			panic(fmt.Sprintf("experiments: policy %v", policy))
		}
	}

	gen := trace.NewGenerator(models, seed)
	arrivals := gen.Poisson(qps, opts.DurationMS)
	var id int64
	var last float64
	for _, a := range arrivals {
		a := a
		svc := services[a.Service]
		id++
		q := &sched.Query{ID: id, Service: svc, Input: a.Input, Arrival: a.Time}
		transfer := dnn.TransferTime(dnn.Get(svc.Model), a.Input, p)
		target := schedulers[instanceOf[a.Service]]
		eng.ScheduleAt(a.Time+transfer, func() { target.Enqueue(q) })
		if a.Time > last {
			last = a.Time
		}
	}
	var maxQoS float64
	for _, s := range services {
		if s.QoS > maxQoS {
			maxQoS = s.QoS
		}
	}
	eng.RunUntil(last + 10*maxQoS)

	var lastEmit sim.Time
	for _, r := range records {
		if r.Finish > lastEmit {
			lastEmit = r.Finish
		}
	}
	return serving.Result{
		Policy:     policy,
		Services:   services,
		Records:    records,
		DurationMS: lastEmit,
	}
}
