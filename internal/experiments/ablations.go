package experiments

import (
	"fmt"

	"abacus/internal/dnn"
	"abacus/internal/predictor"
	"abacus/internal/runner"
	"abacus/internal/sched"
	"abacus/internal/serving"
	"abacus/internal/trace"
)

func init() { register("ablations", Ablations) }

// Ablations quantifies the contribution of each Abacus design choice that
// DESIGN.md calls out: pipelined scheduling (§6.3), the drop mechanism
// (§6.2), the multi-way search width, the duration-model quality (trained
// MLP vs exact oracle), and the per-group synchronization cost. Each row
// reruns the hot (Res152, IncepV3) pair at 50 QPS with one knob changed.
func Ablations(opts Options) []Table {
	models := []dnn.ModelID{dnn.ResNet152, dnn.InceptionV3}
	gen := trace.NewGenerator(models, opts.Seed)
	arrivals := gen.Poisson(50, opts.DurationMS)

	type variant struct {
		name  string
		cfg   sched.Config
		model predictor.LatencyModel
		sync  float64
	}
	baseCfg := sched.DefaultConfig()
	noPipe := baseCfg
	noPipe.Pipelined = false
	noDrop := baseCfg
	noDrop.Drop = false
	oneWay := baseCfg
	oneWay.Ways = 1
	eightWay := baseCfg
	eightWay.Ways = 8
	costlyPred := baseCfg
	costlyPred.PredictCost = 0.5

	oracle := predictor.Oracle{Profile: profile()}
	trained := unifiedPredictor(opts, models, 2)

	variants := []variant{
		{"baseline (pipelined, drop, 4-way)", baseCfg, trained, 0.02},
		{"no pipelining", noPipe, trained, 0.02},
		{"no drop mechanism", noDrop, trained, 0.02},
		{"1-way search", oneWay, trained, 0.02},
		{"8-way search", eightWay, trained, 0.02},
		{"5x prediction cost", costlyPred, trained, 0.02},
		{"oracle predictor", baseCfg, oracle, 0.02},
		{"5x sync cost", baseCfg, trained, 0.1},
	}

	t := Table{
		ID:     "ablations",
		Title:  "Abacus design-choice ablations on (Res152,IncepV3) at 50 QPS",
		Header: []string{"variant", "p99/QoS", "violations", "goodput(r/s)", "groups"},
	}
	// Every variant replays the same (read-only) arrival trace on its own
	// device; named jobs attribute a panicking variant directly.
	var plan runner.Plan[serving.Result]
	for _, v := range variants {
		v := v
		plan.Add("ablations/"+v.name, func() serving.Result {
			return serving.Run(serving.RunConfig{
				Policy:   serving.PolicyAbacus,
				Models:   models,
				Arrivals: arrivals,
				Model:    v.model,
				Sched:    v.cfg,
				SyncCost: v.sync,
			})
		})
	}
	// The unmanaged extreme: MPS-style free overlap with no scheduling at
	// all — maximum concurrency, zero predictability.
	plan.Add("ablations/mps", func() serving.Result {
		return serving.Run(serving.RunConfig{
			Policy:   serving.PolicyMPS,
			Models:   models,
			Arrivals: arrivals,
		})
	})
	// The other extreme the paper rejects (§5.1): kernel-granularity
	// scheduling with a fence and a prediction per operator.
	plan.Add("ablations/kernel-level", func() serving.Result {
		return serving.Run(serving.RunConfig{
			Policy:   serving.PolicyKernelLevel,
			Models:   models,
			Arrivals: arrivals,
		})
	})
	results := plan.Run(opts.Parallel)
	for i, v := range variants {
		res := results[i]
		t.AddRow(v.name, f2(res.NormalizedTail()), pct(res.ViolationRatio()),
			f1(res.Goodput()), fmt.Sprintf("%d", res.Groups))
	}
	mps := results[len(variants)]
	t.AddRow("MPS free overlap (no scheduling)", f2(mps.NormalizedTail()),
		pct(mps.ViolationRatio()), f1(mps.Goodput()), fmt.Sprintf("%d", mps.Groups))
	kl := results[len(variants)+1]
	t.AddRow("kernel-level scheduling (Prema-style)", f2(kl.NormalizedTail()),
		pct(kl.ViolationRatio()), f1(kl.Goodput()), fmt.Sprintf("%d", kl.Groups))
	t.Notes = append(t.Notes,
		"expected: removing pipelining or widening prediction cost hurts tail latency;",
		"disabling drop lets stale queries poison later ones; oracle bounds the trained MLP;",
		"free overlap can look fine at moderate load on an overlap-friendly pair, but it",
		"carries no guarantee — Figure 3 shows its tail exploding under VGG co-runners;",
		"kernel-level fencing pays a prediction per operator and forfeits overlap (§5.1)")
	return []Table{t}
}
