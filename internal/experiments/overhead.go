package experiments

import (
	"fmt"
	"time"

	"abacus/internal/dnn"
	"abacus/internal/executor"
	"abacus/internal/gpusim"
	"abacus/internal/ml"
	"abacus/internal/predictor"
	"abacus/internal/sched"
	"abacus/internal/sim"
	"abacus/internal/trace"
)

func init() { register("overhead", Overhead) }

// Overhead reproduces the §7.8 accounting: the predictor's memory
// footprint (paper: ≈14 kB), its per-invocation latency (paper: 0.06 ms),
// the offline profiling cost, and the GPU memory the segmental executor
// holds for intermediate results (paper: ≈20 MB).
func Overhead(opts Options) []Table {
	t := Table{
		ID:     "overhead",
		Title:  "Abacus runtime overheads (§7.8)",
		Header: []string{"quantity", "measured", "paper"},
	}

	// Predictor footprint: the paper's 3×32 MLP at float32.
	mlp := &ml.MLP{Epochs: 1, Seed: 1}
	var ds ml.Dataset
	codec := predictor.NewCodec()
	sampler := predictor.NewSampler(predictor.SamplerConfig{
		Profile: profile(), Runs: 1, Seed: opts.Seed,
	})
	for i := 0; i < 64; i++ {
		g := sampler.SampleGroup([]dnn.ModelID{dnn.ResNet50, dnn.VGG16})
		ds.Append(codec.Encode(g), 1)
	}
	if err := mlp.Fit(ds); err != nil {
		panic(err)
	}
	t.AddRow("predictor parameters",
		fmt.Sprintf("%d (%.1f kB fp32)", mlp.ParamCount(), float64(mlp.ParamCount())*4/1024),
		"≈14 kB")

	// Per-prediction wall time.
	x := codec.Encode(sampler.SampleGroup([]dnn.ModelID{dnn.ResNet50, dnn.VGG16}))
	const iters = 20000
	start := time.Now()
	for i := 0; i < iters; i++ {
		mlp.Predict(x)
	}
	per := time.Since(start).Seconds() * 1000 / iters
	t.AddRow("single prediction", f3(per)+" ms", "0.06 ms")

	// Offline profiling cost: wall time to measure one operator-group
	// sample, extrapolated to the paper's 2000 × 21 pairs × 100 runs.
	gStart := time.Now()
	const groupIters = 200
	for i := 0; i < groupIters; i++ {
		g := sampler.SampleGroup([]dnn.ModelID{dnn.ResNet152, dnn.VGG19})
		predictor.Measure(g, profile(), 0, 0)
	}
	perGroup := time.Since(gStart).Seconds() / groupIters
	t.AddRow("one group measurement (simulated)",
		f3(perGroup*1000)+" ms wall",
		"42 h wall for 42k samples x 100 runs on hardware")

	// Checkpoint memory from a real Abacus serving run.
	peak := checkpointPeak(opts)
	t.AddRow("peak intermediate-result memory", f1(peak/(1<<20))+" MB", "≈20 MB")

	t.Notes = append(t.Notes,
		"the predictor runs on one CPU core; no GPU resources are consumed by scheduling")
	return []Table{t}
}

// checkpointPeak runs a short Abacus serving session and returns the
// executor's peak checkpointed bytes.
func checkpointPeak(opts Options) float64 {
	p := profile()
	eng := sim.NewEngine()
	dev := gpusim.New(eng, p)
	exec := executor.New(dev, 0.02)
	models := []dnn.ModelID{dnn.ResNet152, dnn.InceptionV3}
	services := sched.Services(models, 2, p)
	a := sched.NewAbacus(eng, exec, predictor.Oracle{Profile: p}, sched.DefaultConfig(), func(*sched.Query) {})
	gen := trace.NewGenerator(models, opts.Seed)
	var id int64
	for _, arr := range gen.Poisson(60, 3000) {
		arr := arr
		svc := services[arr.Service]
		id++
		q := &sched.Query{ID: id, Service: svc, Input: arr.Input, Arrival: arr.Time}
		eng.ScheduleAt(arr.Time, func() { a.Enqueue(q) })
	}
	eng.RunUntil(4000)
	return exec.PeakCheckpointedBytes()
}
