package experiments

import (
	"abacus/internal/dnn"
	"abacus/internal/predictor"
	"abacus/internal/runner"
	"abacus/internal/sched"
	"abacus/internal/serving"
	"abacus/internal/trace"
)

func init() {
	register("fig14", Fig14)
	register("fig15", Fig15)
	register("fig16", Fig16)
	register("fig17", Fig17)
}

// pairRun holds the four policies' results for one co-location set.
type pairRun struct {
	name    string
	results map[serving.PolicyKind]serving.Result
}

// runCoLocation executes all four policies over the same arrival trace for
// one co-located model set. model supplies Abacus's duration model; nil
// selects the per-set unified predictor (or the oracle in quick mode).
func runCoLocation(opts Options, models []dnn.ModelID, qps float64, services []*sched.Service, seed int64, model predictor.LatencyModel) pairRun {
	gen := trace.NewGenerator(models, seed)
	var arrivals []trace.Arrival
	if services != nil {
		// Small-DNN experiment: pin the minimum input.
		arrivals = gen.FixedInput(qps, opts.DurationMS, func(svc int) dnn.Input {
			return dnn.Get(models[svc]).MinInput()
		})
	} else {
		arrivals = gen.Poisson(qps, opts.DurationMS)
	}

	out := pairRun{name: pairName(models), results: map[serving.PolicyKind]serving.Result{}}
	for _, policy := range serving.AllPolicies() {
		cfg := serving.RunConfig{
			Policy:   policy,
			Models:   models,
			Arrivals: arrivals,
			Services: services,
		}
		if policy == serving.PolicyAbacus {
			if model == nil {
				model = unifiedPredictor(opts, models, len(models))
			}
			cfg.Model = model
		}
		out.results[policy] = serving.Run(cfg)
	}
	return out
}

// Fig14 reproduces Figure 14: 99%-ile latency of every pairwise
// co-location, normalized to the QoS target, for FCFS/SJF/EDF/Abacus at
// 50 QPS.
func Fig14(opts Options) []Table {
	return []Table{pairwiseTable(opts, "fig14",
		"Pairwise 99%-ile latency normalized to QoS (50 QPS)",
		50, nil,
		func(r serving.Result) float64 { return r.NormalizedTail() },
		f2,
		"paper: Abacus cuts p99 by 23.1%/34.1%/23.8% vs FCFS/SJF/EDF",
		true)}
}

// Fig15 reproduces Figure 15: the QoS violation ratio (drops included) per
// pairwise co-location at 50 QPS.
func Fig15(opts Options) []Table {
	return []Table{pairwiseTable(opts, "fig15",
		"Pairwise QoS violation ratio (50 QPS, drops counted)",
		50, nil,
		func(r serving.Result) float64 { return r.ViolationRatio() },
		pct,
		"paper: Abacus reduces violations by 38.8%/71.0%/44.0% vs FCFS/SJF/EDF",
		true)}
}

// Fig17 reproduces Figure 17: peak throughput (queries completed within
// QoS per second) per pairwise co-location at a saturating 100 QPS offered
// load.
func Fig17(opts Options) []Table {
	return []Table{pairwiseTable(opts, "fig17",
		"Pairwise peak goodput at 100 QPS offered (queries/s within QoS)",
		100, nil,
		func(r serving.Result) float64 { return r.Goodput() },
		f1,
		"paper: Abacus improves peak throughput by 25.7%/38.1%/25.7% vs FCFS/SJF/EDF",
		false)}
}

// Fig16 reproduces Figure 16: with the minimum inputs and QoS pinned to 2×
// the minimum-input solo latency, Abacus still holds the (much tighter)
// targets.
func Fig16(opts Options) []Table {
	p := profile()
	t := Table{
		ID:     "fig16",
		Title:  "Small-DNN 99%-ile latency normalized to tight QoS (min inputs, 50 QPS)",
		Header: []string{"pair", "FCFS", "SJF", "EDF", "Abacus"},
	}
	// One unified model across all pairs (the paper's deployment: a single
	// duration model for the whole zoo). Trained before the fan-out so the
	// workers share one read-only model.
	shared := unifiedAcrossPairs(opts)
	pairs := evalPairs(opts)
	runs := runner.Map(len(pairs), opts.Parallel, func(i int) pairRun {
		services := sched.SmallServices(pairs[i], 2, p)
		return runCoLocation(opts, pairs[i], 50, services, opts.Seed+int64(i), shared)
	})
	var worst float64
	for _, run := range runs {
		row := []string{run.name}
		for _, policy := range serving.AllPolicies() {
			res := run.results[policy]
			v := res.NormalizedTail()
			row = append(row, f2(v))
			if policy == serving.PolicyAbacus && v > worst {
				worst = v
			}
		}
		t.AddRow(row...)
	}
	t.Notes = append(t.Notes,
		"Abacus worst normalized p99 = "+f2(worst)+
			" (paper: closer to 1.0 than Figure 14 — tighter targets leave less room for grouping)")
	return []Table{t}
}

// unifiedAcrossPairs returns the single duration model shared by every
// pairwise experiment: trained once over all 7 models' singleton and pair
// groups (the paper's unified-model deployment, §4).
func unifiedAcrossPairs(opts Options) predictor.LatencyModel {
	return unifiedPredictor(opts, ZooIDs(), 2)
}

// pairwiseTable renders one metric across all pairs × policies.
func pairwiseTable(opts Options, id, title string, qps float64, services []*sched.Service,
	metric func(serving.Result) float64, format func(float64) string, paperNote string,
	lowerIsBetter bool) Table {

	t := Table{
		ID:     id,
		Title:  title,
		Header: []string{"pair", "FCFS", "SJF", "EDF", "Abacus"},
	}
	perPolicy := map[serving.PolicyKind][]float64{}
	shared := unifiedAcrossPairs(opts)
	pairs := evalPairs(opts)
	// Every pair is an independent deterministic simulation seeded by its
	// index; the fan-out preserves row order, so the table is identical at
	// any parallelism.
	runs := runner.Map(len(pairs), opts.Parallel, func(i int) pairRun {
		return runCoLocation(opts, pairs[i], qps, services, opts.Seed+int64(i), shared)
	})
	for _, run := range runs {
		row := []string{run.name}
		for _, policy := range serving.AllPolicies() {
			v := metric(run.results[policy])
			perPolicy[policy] = append(perPolicy[policy], v)
			row = append(row, format(v))
		}
		t.AddRow(row...)
	}
	ab := perPolicy[serving.PolicyAbacus]
	for _, base := range []serving.PolicyKind{serving.PolicyFCFS, serving.PolicySJF, serving.PolicyEDF} {
		var v float64
		if lowerIsBetter {
			v = meanImprovement(ab, perPolicy[base])
			t.Notes = append(t.Notes, "Abacus vs "+base.String()+": mean reduction "+pct(v))
		} else {
			v = meanGain(ab, perPolicy[base])
			t.Notes = append(t.Notes, "Abacus vs "+base.String()+": mean gain "+pct(v))
		}
	}
	t.Notes = append(t.Notes, paperNote)
	return t
}
