package experiments

import (
	"abacus/internal/dnn"
	"abacus/internal/gpusim"
	"abacus/internal/sim"
	"abacus/internal/stats"
	"abacus/internal/trace"
)

func init() { register("fig3", Fig03) }

// Fig03 reproduces Figure 3 (the motivation): the latency distribution of
// ResNet-152 (batch 32, fixed input, closed loop) when another DNN service
// runs simultaneously on the same device under MPS-style free overlap — no
// scheduler, kernels overlap however arrivals land. The spread and its
// dependence on the co-runner are what motivate deterministic overlap.
func Fig03(opts Options) []Table {
	p := profile()
	corunners := []dnn.ModelID{dnn.ResNet50, dnn.ResNet101, dnn.InceptionV3, dnn.VGG16, dnn.VGG19, dnn.Bert}
	coQPS := 60.0
	dur := opts.DurationMS

	t := Table{
		ID:     "fig3",
		Title:  "Resnet152 latency under MPS-style free overlap (closed loop, bs=32)",
		Header: []string{"co-runner", "n", "min", "p25", "p50", "p75", "p99", "max"},
	}

	solo := freeOverlapLatencies(p, -1, coQPS, dur, opts.Seed) // no co-runner
	t.AddRow(append([]string{"solo", f1(float64(len(solo)))}, quantileCells(solo)...)...)

	var soloP50 = stats.Percentile(solo, 50)
	var worst float64
	var worstName string
	for _, co := range corunners {
		lats := freeOverlapLatencies(p, co, coQPS, dur, opts.Seed)
		t.AddRow(append([]string{co.String(), f1(float64(len(lats)))}, quantileCells(lats)...)...)
		if m := stats.Max(lats); m > worst {
			worst, worstName = m, co.String()
		}
	}
	t.Notes = append(t.Notes,
		"free overlap makes latency depend on the co-runner and its random arrivals;",
		"worst observed tail "+f1(worst)+" ms (vs solo median "+f1(soloP50)+" ms) under "+worstName)
	return []Table{t}
}

// freeOverlapLatencies runs the closed-loop ResNet-152 client against an
// open-loop co-runner with Poisson arrivals and unbounded concurrency (what
// MPS permits) and returns the client's per-query latencies. co < 0 runs
// the client alone.
func freeOverlapLatencies(p gpusim.Profile, co dnn.ModelID, coQPS, durationMS float64, seed int64) []float64 {
	eng := sim.NewEngine()
	dev := gpusim.New(eng, p)

	target := dnn.Get(dnn.ResNet152)
	in := dnn.Input{Batch: 32}
	specs := dnn.Kernels(target, in, p, 0, target.NumOps())

	var lats []float64
	var submit func()
	submit = func() {
		start := eng.Now()
		dev.RunChain(specs, func() {
			lats = append(lats, eng.Now()-start)
			if eng.Now() < durationMS {
				submit()
			}
		})
	}
	submit()

	if co >= 0 {
		gen := trace.NewGenerator([]dnn.ModelID{co}, seed)
		for _, a := range gen.Poisson(coQPS, durationMS) {
			a := a
			m := dnn.Get(co)
			ks := dnn.Kernels(m, a.Input, p, 0, m.NumOps())
			eng.ScheduleAt(a.Time, func() { dev.RunChain(ks, nil) })
		}
	}
	eng.RunUntil(durationMS + 500)
	return lats
}

func quantileCells(lats []float64) []string {
	qs := stats.Percentiles(lats, 0, 25, 50, 75, 99, 100)
	out := make([]string, len(qs))
	for i, q := range qs {
		out[i] = f1(q)
	}
	return out
}
