// Package experiments regenerates every figure of the paper's motivation
// and evaluation sections on the simulated substrate. Each Fig* function
// returns a Table that prints the same rows/series the paper plots; the
// per-experiment index in DESIGN.md maps figure ids to these functions.
//
// Absolute numbers come from the simulator, not the authors' testbed; the
// shapes (who wins, by roughly what factor, where the crossovers fall) are
// the reproduction targets recorded in EXPERIMENTS.md.
package experiments

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"text/tabwriter"

	"abacus/internal/dnn"
	"abacus/internal/gpusim"
	"abacus/internal/predictor"
	"abacus/internal/runner"
)

// Table is a printable experiment result.
type Table struct {
	ID     string
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// Render writes the table in a fixed-width layout.
func (t *Table) Render(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s\n", t.ID, t.Title)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, strings.Join(t.Header, "\t"))
	for _, row := range t.Rows {
		fmt.Fprintln(tw, strings.Join(row, "\t"))
	}
	tw.Flush()
	for _, n := range t.Notes {
		fmt.Fprintf(w, "note: %s\n", n)
	}
	fmt.Fprintln(w)
}

// Options scales the experiments. Full() reproduces the paper's setup;
// Quick() shrinks workloads for CI and benchmarks while preserving shapes.
type Options struct {
	// Quick selects the reduced configuration.
	Quick bool
	// Seed drives every random choice.
	Seed int64
	// SamplesPerPair is the profiling density for predictor training
	// (paper: 2000).
	SamplesPerPair int
	// DurationMS is the serving-trace length per (pair, policy) run.
	DurationMS float64
	// UseOracle replaces the trained MLP with the exact oracle model in
	// Abacus runs (fast path; also the perfect-predictor ablation).
	UseOracle bool
	// Parallel bounds the worker count for an experiment's independent
	// runs (<= 0 uses the runner default). Results are identical at any
	// setting: every run owns its engine and RNG, and rows keep their
	// sweep order.
	Parallel int
}

// Full returns the reference configuration used to populate EXPERIMENTS.md.
// The paper profiles 2000 samples per pair and serves multi-minute loads;
// this configuration uses 1000 samples per combination and 12-second traces
// per (deployment, policy) point, which reaches the same accuracy regime
// (the MLP's MAPE converges by ~1000 samples — see the Figure 10 table)
// while staying tractable on one CPU core.
func Full() Options {
	return Options{Seed: 1, SamplesPerPair: 1000, DurationMS: 12_000}
}

// Quick returns the reduced configuration used by benchmarks and smoke
// runs.
func Quick() Options {
	return Options{Quick: true, Seed: 1, SamplesPerPair: 200, DurationMS: 4_000, UseOracle: true}
}

// profile returns the device profile shared by every experiment.
func profile() gpusim.Profile { return gpusim.A100Profile() }

// ZooIDs returns all seven model ids.
func ZooIDs() []dnn.ModelID {
	ids := make([]dnn.ModelID, dnn.NumModels)
	for i := range ids {
		ids[i] = dnn.ModelID(i)
	}
	return ids
}

// pairName formats a pair the way the paper labels its x axes.
func pairName(ms []dnn.ModelID) string {
	names := make([]string, len(ms))
	for i, m := range ms {
		names[i] = m.String()
	}
	return "(" + strings.Join(names, ",") + ")"
}

// predictorCache shares trained unified predictors across experiments in
// one process (training is the expensive part of a full run). Entries are
// created with LoadOrStore and trained under a per-key sync.Once, so
// concurrent workers asking for the same key block on one training run
// instead of duplicating it.
var predictorCache sync.Map // key string → *predictorEntry

type predictorEntry struct {
	once sync.Once
	p    *predictor.Predictor
	err  error
}

// unifiedPredictor returns a latency model for Abacus runs: the exact
// oracle in quick mode, otherwise an MLP trained on instance-based samples
// over every k-wise combination of the given models for k = 1..maxK
// (scheduling also predicts singleton groups, so k = 1 is required).
func unifiedPredictor(opts Options, models []dnn.ModelID, maxK int) predictor.LatencyModel {
	return unifiedPredictorOn(opts, models, maxK, profile())
}

// v100Predictor trains the duration model against the V100 profile used by
// the cluster experiment.
func v100Predictor(opts Options, models []dnn.ModelID) predictor.LatencyModel {
	return unifiedPredictorOn(opts, models, 4, gpusim.V100Profile())
}

func unifiedPredictorOn(opts Options, models []dnn.ModelID, maxK int, prof gpusim.Profile) predictor.LatencyModel {
	if opts.UseOracle {
		return predictor.Oracle{Profile: prof}
	}
	if maxK > len(models) {
		maxK = len(models)
	}
	if maxK > predictor.MaxCoLocated {
		maxK = predictor.MaxCoLocated
	}
	key := fmt.Sprintf("%v/%d/%d/%d/%s", models, maxK, opts.SamplesPerPair, opts.Seed, prof.Name)
	v, _ := predictorCache.LoadOrStore(key, &predictorEntry{})
	entry := v.(*predictorEntry)
	entry.once.Do(func() {
		cfg := predictor.DefaultSamplerConfig()
		cfg.Profile = prof
		cfg.Seed = opts.Seed
		cfg.Runs = 3
		// Each co-location degree is profiled by its own sampler, so the
		// degrees collect concurrently and concatenate in k order — the
		// same sample sequence the serial loop produced.
		perK := runner.Map(maxK, opts.Parallel, func(i int) []predictor.Sample {
			return predictor.Collect(models, i+1, opts.SamplesPerPair, cfg)
		})
		var samples []predictor.Sample
		for _, ks := range perK {
			samples = append(samples, ks...)
		}
		trainCfg := predictor.DefaultTrainConfig()
		trainCfg.Seed = opts.Seed
		entry.p, entry.err = predictor.Train(samples, predictor.NewCodec(), trainCfg)
	})
	if entry.err != nil {
		panic(fmt.Sprintf("experiments: training unified predictor: %v", entry.err))
	}
	return entry.p
}

// f1 formats a float with one decimal; f2/f3 with two/three.
func f1(v float64) string { return fmt.Sprintf("%.1f", v) }
func f2(v float64) string { return fmt.Sprintf("%.2f", v) }
func f3(v float64) string { return fmt.Sprintf("%.3f", v) }

// pct formats a fraction as a percentage.
func pct(v float64) string { return fmt.Sprintf("%.1f%%", 100*v) }

// geoPairs returns the paper's C(7,2) = 21 pairs in figure order, or a
// 6-pair subset in quick mode.
func evalPairs(opts Options) [][]dnn.ModelID {
	all := predictor.Combinations(ZooIDs(), 2)
	if !opts.Quick {
		return all
	}
	quick := [][]dnn.ModelID{
		{dnn.ResNet50, dnn.ResNet152},
		{dnn.ResNet152, dnn.InceptionV3},
		{dnn.ResNet101, dnn.Bert},
		{dnn.InceptionV3, dnn.VGG16},
		{dnn.VGG16, dnn.VGG19},
		{dnn.VGG19, dnn.Bert},
	}
	return quick
}

// meanImprovement returns mean(1 - a/b) over rows, guarding zero b.
func meanImprovement(abacus, baseline []float64) float64 {
	var s float64
	var n int
	for i := range abacus {
		if baseline[i] > 0 {
			s += 1 - abacus[i]/baseline[i]
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return s / float64(n)
}

// meanGain returns mean(a/b - 1) over rows, guarding zero b.
func meanGain(abacus, baseline []float64) float64 {
	var s float64
	var n int
	for i := range abacus {
		if baseline[i] > 0 {
			s += abacus[i]/baseline[i] - 1
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return s / float64(n)
}

// Registry maps experiment ids to their runners.
type Runner func(opts Options) []Table

var registry = map[string]Runner{}
var registryOrder []string

func register(id string, r Runner) {
	if _, dup := registry[id]; dup {
		panic("experiments: duplicate id " + id)
	}
	registry[id] = r
	registryOrder = append(registryOrder, id)
}

// IDs lists registered experiment ids in registration order.
func IDs() []string {
	out := append([]string(nil), registryOrder...)
	sort.Strings(out)
	return out
}

// Run executes one experiment by id.
func Run(id string, opts Options) ([]Table, error) {
	r, ok := registry[id]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown id %q (have %v)", id, IDs())
	}
	return r(opts), nil
}
