package experiments

import (
	"fmt"
	"runtime"
	"time"

	"abacus/internal/dnn"
	"abacus/internal/predictor"
	"abacus/internal/sched"
)

func init() { register("fig23", Fig23) }

// Fig23 reproduces Figure 23 (§7.7): the wall-clock time of identifying an
// operator group with multi-way search as the number of search ways grows,
// on a single OS thread. The paper measures 0.066 ms at 1 way rising to
// ~0.088 ms at 2+ ways and flat beyond; the shape to reproduce is
// "sub-0.1 ms per decision, flat once ways ≥ 2". Unlike every other
// experiment this one measures real CPU time of this implementation's
// search + MLP inference, not simulated time.
func Fig23(opts Options) []Table {
	// Train a small but real MLP so inference cost is representative.
	cfg := predictor.DefaultSamplerConfig()
	cfg.Seed = opts.Seed
	cfg.Runs = 1
	samples := predictor.Collect(
		[]dnn.ModelID{dnn.ResNet152, dnn.InceptionV3}, 2, 200, cfg)
	trainCfg := predictor.DefaultTrainConfig()
	trainCfg.Epochs = 100
	model, err := predictor.Train(samples, predictor.NewCodec(), trainCfg)
	if err != nil {
		panic(err)
	}

	m152 := dnn.Get(dnn.ResNet152)
	mInc := dnn.Get(dnn.InceptionV3)
	base := predictor.Group{{
		Model: dnn.ResNet152, OpStart: 0, OpEnd: m152.NumOps(), Batch: 16,
	}}
	entry := predictor.Entry{Model: dnn.InceptionV3, OpStart: 0, Batch: 16}
	// A budget midway between "base alone" and "base plus all of the
	// candidate's operators" forces the search to actually narrow the
	// feasible boundary.
	full := entry
	full.OpEnd = mInc.NumOps()
	budget := (model.Predict(base) + model.Predict(append(predictor.Group{base[0]}, full))) / 2

	prev := runtime.GOMAXPROCS(1) // the paper affiliates the scheduler to one core
	defer runtime.GOMAXPROCS(prev)

	t := Table{
		ID:     "fig23",
		Title:  "Multi-way search: wall-clock per scheduling decision (single core)",
		Header: []string{"ways", "per-decision(ms)", "prediction rounds"},
	}
	const iters = 2000
	for _, ways := range []int{1, 2, 4, 8, 12, 16} {
		// Warm up.
		sched.MaxFeasibleSpan(model, base, entry, mInc.NumOps(), budget, ways)
		var rounds int
		start := time.Now()
		for i := 0; i < iters; i++ {
			_, _, r := sched.MaxFeasibleSpan(model, base, entry, mInc.NumOps(), budget, ways)
			rounds = r
		}
		per := time.Since(start).Seconds() * 1000 / iters
		t.AddRow(fmt.Sprintf("%d", ways), f3(per), fmt.Sprintf("%d", rounds))
	}
	t.Notes = append(t.Notes,
		"paper: 0.066 ms at 1 way, ~0.088 ms at 2+ and flat; shape target is sub-0.1 ms per decision",
		"this MLP evaluates probes serially, so wider searches trade fewer rounds for more",
		"per-round inference; wall-clock values depend on the host CPU")
	return []Table{t}
}
