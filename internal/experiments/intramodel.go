package experiments

import (
	"fmt"

	"abacus/internal/dnn"
)

func init() { register("intramodel", IntraModel) }

// IntraModel quantifies the intra-model parallelism the zoo leaves on the
// table: each model executed as its data-flow graph (independent branches
// overlap, what Rammer/TensorRT-style compilers exploit — §2) versus the
// topological operator chain Abacus schedules. The expected shape:
// Inception's wide blocks gain noticeably, ResNets gain a little (the
// residual shortcut is the only branch), VGG and BERT are pure chains and
// gain nothing. This bounds how much of Abacus's utilization win could
// instead be captured by a compiler — and shows the two are complementary,
// as the paper argues.
func IntraModel(opts Options) []Table {
	p := profile()
	t := Table{
		ID:     "intramodel",
		Title:  "Intra-model branch parallelism: DFG execution vs operator chain",
		Header: []string{"model", "batch", "chain(ms)", "dfg(ms)", "speedup"},
	}
	var incepGain, vggGain float64
	for _, m := range dnn.All() {
		in := dnn.Input{Batch: 16}
		if m.IsSequence() {
			in.SeqLen = 32
		}
		chain := dnn.SoloLatency(m, in, p)
		dfg := dnn.DFGLatency(m, in, p)
		speedup := chain / dfg
		switch dnn.ModelID(m.ID) {
		case dnn.InceptionV3:
			incepGain = speedup
		case dnn.VGG16:
			vggGain = speedup
		}
		t.AddRow(m.Name, fmt.Sprintf("%d", in.Batch), f2(chain), f2(dfg), f2(speedup))
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("Inception gains %.2fx from its branches; VGG (a pure chain) gains %.2fx", incepGain, vggGain),
		"intra-model parallelism is bounded by graph width; Abacus's inter-model overlap composes with it (§2)")
	return []Table{t}
}
