package experiments

import (
	"reflect"
	"testing"
)

// TestFig14ParallelDeterminism is the harness's regression gate: the same
// experiment run serially and with 8 workers must produce byte-identical
// tables. Every sweep job owns its engine, sampler, and RNG (seeded by job
// index), and runner.Map returns results in submission order, so goroutine
// interleaving must not be observable in the output.
func TestFig14ParallelDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("runs fig14 twice; skipped in -short")
	}
	opts := Quick()
	opts.Parallel = 1
	serial := Fig14(opts)
	opts.Parallel = 8
	parallel := Fig14(opts)
	if !reflect.DeepEqual(serial, parallel) {
		t.Fatalf("fig14 differs between parallel=1 and parallel=8:\nserial:   %+v\nparallel: %+v",
			serial, parallel)
	}
}

// TestSegmentsParallelDeterminism covers a second, structurally different
// sweep (per-deployment packing statistics with per-job generators).
func TestSegmentsParallelDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("runs segments twice; skipped in -short")
	}
	opts := Quick()
	opts.Parallel = 1
	serial := Segments(opts)
	opts.Parallel = 8
	parallel := Segments(opts)
	if !reflect.DeepEqual(serial, parallel) {
		t.Fatalf("segments differs between parallel=1 and parallel=8:\nserial:   %+v\nparallel: %+v",
			serial, parallel)
	}
}
