package experiments

import (
	"fmt"

	"abacus/internal/dnn"
	"abacus/internal/predictor"
	"abacus/internal/stats"
)

func init() {
	register("fig10", Fig10)
	register("fig10-nwise", Fig10NWise)
}

// Fig10 reproduces Figure 10 (§5.5): prediction error of the three duration
// modeling techniques — linear regression, SVM, and the MLP — trained per
// co-location pair and as one unified model over all pairs, plus the MLP's
// k-fold cross-validation error. The reproduction targets: MLP in the
// single-digit percent range, LR/SVM several times worse, and the unified
// MLP as good as per-pair models.
func Fig10(opts Options) []Table {
	cfg := predictor.DefaultSamplerConfig()
	cfg.Seed = opts.Seed
	cfg.Runs = 3
	codec := predictor.NewCodec()

	pairs := evalPairs(opts)
	techniques := []predictor.Technique{
		predictor.TechLinearRegression, predictor.TechSVR, predictor.TechMLP,
	}

	t := Table{
		ID:     "fig10",
		Title:  "Duration-model prediction error (MAPE, 80/20 split)",
		Header: []string{"pair", "LinearRegression", "SVM", "MLP"},
	}

	epochs := 0 // model defaults
	if opts.Quick {
		epochs = 200
	}

	var all []predictor.Sample
	errSums := make([]float64, len(techniques))
	for _, pair := range pairs {
		s := predictor.NewSampler(cfg)
		var samples []predictor.Sample
		for i := 0; i < opts.SamplesPerPair; i++ {
			g := s.SampleGroup(pair)
			samples = append(samples, s.MeasureSample(g))
		}
		all = append(all, samples...)

		row := []string{pairName(pair)}
		for ti, tech := range techniques {
			tc := predictor.TrainConfig{Technique: tech, Epochs: epochs, Seed: opts.Seed}
			if tech == predictor.TechMLP {
				tc.LogTarget = true
			}
			_, mape, err := predictor.TrainEval(samples, codec, tc)
			if err != nil {
				panic(err)
			}
			errSums[ti] += mape
			row = append(row, pct(mape))
		}
		t.AddRow(row...)
	}

	// Unified model over every pair's samples ("all" column of the paper).
	allRow := []string{"all (unified)"}
	var unifiedMLP float64
	for _, tech := range techniques {
		tc := predictor.TrainConfig{Technique: tech, Epochs: epochs, Seed: opts.Seed}
		if tech == predictor.TechMLP {
			tc.LogTarget = true
		}
		_, mape, err := predictor.TrainEval(all, codec, tc)
		if err != nil {
			panic(err)
		}
		if tech == predictor.TechMLP {
			unifiedMLP = mape
		}
		allRow = append(allRow, pct(mape))
	}
	t.AddRow(allRow...)

	// MLP cross validation (the paper's rightmost bars).
	cvCfg := predictor.TrainConfig{Technique: predictor.TechMLP, Epochs: epochs, LogTarget: true, Seed: opts.Seed}
	cvErrs, err := predictor.CrossValidate(all, codec, cvCfg, 5)
	if err != nil {
		panic(err)
	}

	n := float64(len(pairs))
	t.Notes = append(t.Notes,
		"per-pair averages: LR="+pct(errSums[0]/n)+" SVM="+pct(errSums[1]/n)+" MLP="+pct(errSums[2]/n)+
			" (paper: 23.5% / 21.5% / 5.5%)",
		"unified MLP over all pairs: "+pct(unifiedMLP)+" (paper: 5.7%)",
		"MLP 5-fold cross-validation: "+pct(stats.Mean(cvErrs))+" ± "+pct(stats.StdDev(cvErrs)))
	return []Table{t}
}

// Fig10NWise measures the unified MLP's error on triplet- and
// quadruplet-wise operator groups (§5.5 reports 4.9% and 6.4%).
func Fig10NWise(opts Options) []Table {
	cfg := predictor.DefaultSamplerConfig()
	cfg.Seed = opts.Seed
	cfg.Runs = 3
	epochs := 0
	if opts.Quick {
		epochs = 200
	}
	return []Table{nwiseAccuracy(opts, cfg, predictor.NewCodec(), epochs)}
}

// nwiseAccuracy builds the beyond-pairwise accuracy table.
func nwiseAccuracy(opts Options, cfg predictor.SamplerConfig, codec predictor.Codec, epochs int) Table {
	quad := []dnn.ModelID{dnn.ResNet101, dnn.ResNet152, dnn.VGG19, dnn.Bert}
	t := Table{
		ID:     "fig10-nwise",
		Title:  "Unified MLP error beyond pairwise co-location",
		Header: []string{"co-location degree", "samples", "MAPE"},
	}
	perCombo := opts.SamplesPerPair
	for _, k := range []int{3, 4} {
		// Train on degrees 1..k so the model sees the full group-size range
		// it must serve; evaluate on fresh degree-k groups only.
		var train []predictor.Sample
		for kk := 1; kk <= k; kk++ {
			train = append(train, predictor.Collect(quad, kk, perCombo, cfg)...)
		}
		tc := predictor.TrainConfig{Technique: predictor.TechMLP, Epochs: epochs, LogTarget: true, Seed: opts.Seed}
		p, err := predictor.Train(train, codec, tc)
		if err != nil {
			panic(err)
		}
		evalCfg := cfg
		evalCfg.Seed = cfg.Seed + 10_000
		eval := predictor.Collect(quad, k, perCombo/4+1, evalCfg)
		t.AddRow(fmt.Sprintf("%d-wise", k), fmt.Sprintf("%d", len(train)), pct(p.Evaluate(eval)))
	}
	t.Notes = append(t.Notes, "paper: 4.9% (triplets), 6.4% (quadruplets) with the unified model")
	return t
}
