package experiments

import (
	"fmt"

	"abacus/internal/dnn"
	"abacus/internal/predictor"
	"abacus/internal/runner"
	"abacus/internal/stats"
)

func init() {
	register("fig10", Fig10)
	register("fig10-nwise", Fig10NWise)
}

// Fig10 reproduces Figure 10 (§5.5): prediction error of the three duration
// modeling techniques — linear regression, SVM, and the MLP — trained per
// co-location pair and as one unified model over all pairs, plus the MLP's
// k-fold cross-validation error. The reproduction targets: MLP in the
// single-digit percent range, LR/SVM several times worse, and the unified
// MLP as good as per-pair models.
func Fig10(opts Options) []Table {
	cfg := predictor.DefaultSamplerConfig()
	cfg.Seed = opts.Seed
	cfg.Runs = 3
	codec := predictor.NewCodec()

	pairs := evalPairs(opts)
	techniques := []predictor.Technique{
		predictor.TechLinearRegression, predictor.TechSVR, predictor.TechMLP,
	}

	t := Table{
		ID:     "fig10",
		Title:  "Duration-model prediction error (MAPE, 80/20 split)",
		Header: []string{"pair", "LinearRegression", "SVM", "MLP"},
	}

	epochs := 0 // model defaults
	if opts.Quick {
		epochs = 200
	}

	techniqueConfig := func(tech predictor.Technique) predictor.TrainConfig {
		tc := predictor.TrainConfig{Technique: tech, Epochs: epochs, Seed: opts.Seed}
		if tech == predictor.TechMLP {
			tc.LogTarget = true
		}
		return tc
	}

	// Stage 1: profile every pair concurrently. Each pair owns a fresh
	// sampler seeded from cfg, so per-pair sample streams are the same at
	// any parallelism, and the unified set concatenates in pair order.
	perPair := runner.Map(len(pairs), opts.Parallel, func(i int) []predictor.Sample {
		s := predictor.NewSampler(cfg)
		var samples []predictor.Sample
		for j := 0; j < opts.SamplesPerPair; j++ {
			g := s.SampleGroup(pairs[i])
			samples = append(samples, s.MeasureSample(g))
		}
		return samples
	})
	var all []predictor.Sample
	for _, samples := range perPair {
		all = append(all, samples...)
	}

	// Stage 2: per technique, train/evaluate one model per pair
	// concurrently.
	errSums := make([]float64, len(techniques))
	mapes := make([][]float64, len(techniques)) // [technique][pair]
	for ti, tech := range techniques {
		_, ms, err := predictor.TrainEvalEach(perPair, codec, techniqueConfig(tech), opts.Parallel)
		if err != nil {
			panic(err)
		}
		mapes[ti] = ms
		for _, m := range ms {
			errSums[ti] += m
		}
	}
	for i, pair := range pairs {
		row := []string{pairName(pair)}
		for ti := range techniques {
			row = append(row, pct(mapes[ti][i]))
		}
		t.AddRow(row...)
	}

	// Unified model over every pair's samples ("all" column of the paper);
	// the three techniques train concurrently on the shared read-only set.
	allMapes := runner.Map(len(techniques), opts.Parallel, func(ti int) float64 {
		_, mape, err := predictor.TrainEval(all, codec, techniqueConfig(techniques[ti]))
		if err != nil {
			panic(err)
		}
		return mape
	})
	allRow := []string{"all (unified)"}
	var unifiedMLP float64
	for ti, tech := range techniques {
		if tech == predictor.TechMLP {
			unifiedMLP = allMapes[ti]
		}
		allRow = append(allRow, pct(allMapes[ti]))
	}
	t.AddRow(allRow...)

	// MLP cross validation (the paper's rightmost bars).
	cvCfg := predictor.TrainConfig{Technique: predictor.TechMLP, Epochs: epochs, LogTarget: true, Seed: opts.Seed}
	cvErrs, err := predictor.CrossValidate(all, codec, cvCfg, 5)
	if err != nil {
		panic(err)
	}

	n := float64(len(pairs))
	t.Notes = append(t.Notes,
		"per-pair averages: LR="+pct(errSums[0]/n)+" SVM="+pct(errSums[1]/n)+" MLP="+pct(errSums[2]/n)+
			" (paper: 23.5% / 21.5% / 5.5%)",
		"unified MLP over all pairs: "+pct(unifiedMLP)+" (paper: 5.7%)",
		"MLP 5-fold cross-validation: "+pct(stats.Mean(cvErrs))+" ± "+pct(stats.StdDev(cvErrs)))
	return []Table{t}
}

// Fig10NWise measures the unified MLP's error on triplet- and
// quadruplet-wise operator groups (§5.5 reports 4.9% and 6.4%).
func Fig10NWise(opts Options) []Table {
	cfg := predictor.DefaultSamplerConfig()
	cfg.Seed = opts.Seed
	cfg.Runs = 3
	epochs := 0
	if opts.Quick {
		epochs = 200
	}
	return []Table{nwiseAccuracy(opts, cfg, predictor.NewCodec(), epochs)}
}

// nwiseAccuracy builds the beyond-pairwise accuracy table.
func nwiseAccuracy(opts Options, cfg predictor.SamplerConfig, codec predictor.Codec, epochs int) Table {
	quad := []dnn.ModelID{dnn.ResNet101, dnn.ResNet152, dnn.VGG19, dnn.Bert}
	t := Table{
		ID:     "fig10-nwise",
		Title:  "Unified MLP error beyond pairwise co-location",
		Header: []string{"co-location degree", "samples", "MAPE"},
	}
	perCombo := opts.SamplesPerPair
	degrees := []int{3, 4}
	rows := runner.Map(len(degrees), opts.Parallel, func(di int) []string {
		k := degrees[di]
		// Train on degrees 1..k so the model sees the full group-size range
		// it must serve; evaluate on fresh degree-k groups only. Each
		// degree profiles with its own sampler, so the sub-collections run
		// concurrently and concatenate in degree order.
		perK := runner.Map(k, opts.Parallel, func(i int) []predictor.Sample {
			return predictor.Collect(quad, i+1, perCombo, cfg)
		})
		var train []predictor.Sample
		for _, ks := range perK {
			train = append(train, ks...)
		}
		tc := predictor.TrainConfig{Technique: predictor.TechMLP, Epochs: epochs, LogTarget: true, Seed: opts.Seed}
		p, err := predictor.Train(train, codec, tc)
		if err != nil {
			panic(err)
		}
		evalCfg := cfg
		evalCfg.Seed = cfg.Seed + 10_000
		eval := predictor.Collect(quad, k, perCombo/4+1, evalCfg)
		return []string{fmt.Sprintf("%d-wise", k), fmt.Sprintf("%d", len(train)), pct(p.Evaluate(eval))}
	})
	for _, row := range rows {
		t.AddRow(row...)
	}
	t.Notes = append(t.Notes, "paper: 4.9% (triplets), 6.4% (quadruplets) with the unified model")
	return t
}
