package experiments

import (
	"fmt"

	"abacus/internal/cluster"
	"abacus/internal/dnn"
	"abacus/internal/gpusim"
	"abacus/internal/runner"
	"abacus/internal/trace"
)

func init() { register("fig22", Fig22) }

// Fig22 reproduces Figure 22 (§7.6): a multi-node cluster replaying a
// MAF-like trace with quad-wise deployment, comparing Kubernetes routing +
// node-level Abacus against a Clockwork-style central EDF scheduler. The
// reproduction targets: Abacus sustains higher throughput (paper: +17.8%)
// by dropping far fewer queries, both keep p99 under the 100 ms QoS, and
// Abacus's average latency sits slightly above Clockwork's (it trades
// short-query headroom for throughput).
//
// Scaling note: the paper replays 2 hours of the proprietary Microsoft
// Azure Functions trace on 16 V100s at ~10k queries/s. This reproduction
// replays a synthetic MAF-like trace (internal/trace) on a smaller
// simulated cluster at a rate that produces the same pressure ratio; see
// DESIGN.md.
func Fig22(opts Options) []Table {
	models := []dnn.ModelID{dnn.ResNet101, dnn.ResNet152, dnn.VGG19, dnn.Bert}
	// The paper's cluster nodes carry V100s (§7.6); loads are scaled to the
	// weaker device accordingly.
	profile := gpusim.V100Profile()
	nodes, gpusPerNode := 4, 1
	durationMS := 10 * 60_000.0 // 10 minutes
	baseQPS := 95.0             // pressures the sequential baseline, mostly via bursts
	bucketMS := 60_000.0
	if opts.Quick {
		nodes = 2
		durationMS = 60_000
		baseQPS = 42
		bucketMS = 10_000
	}

	// Diurnal drift keeps the trough easy; bursts overrun the sequential
	// capacity so drops concentrate there (the MAF trace's character).
	mafCfg := trace.MAFConfig{
		BaseQPS:          baseQPS,
		DurationMS:       durationMS,
		DiurnalAmplitude: 0.2,
		BurstProb:        0.3,
		BurstFactor:      2.0,
		Seed:             opts.Seed,
	}
	gen := trace.NewGenerator(models, opts.Seed)
	arrivals := gen.MAF(mafCfg)

	// The two policies replay the same (read-only) trace on separate
	// simulated fleets, side by side. Abacus's predictor trains inside its
	// job, overlapping Clockwork's run.
	var plan runner.Plan[cluster.Result]
	for _, policy := range []cluster.Policy{cluster.KubeAbacus, cluster.Clockwork} {
		policy := policy
		plan.Add("fig22/"+policy.String(), func() cluster.Result {
			cfg := cluster.Config{
				Policy:      policy,
				Nodes:       nodes,
				GPUsPerNode: gpusPerNode,
				Models:      models,
				QoS:         100,
				Arrivals:    arrivals,
				Profile:     profile,
				BucketMS:    bucketMS,
			}
			if policy == cluster.KubeAbacus {
				cfg.Model = v100Predictor(opts, models)
			}
			return cluster.Run(cfg)
		})
	}
	results := plan.Run(opts.Parallel)
	abacus, clock := results[0], results[1]

	timeline := Table{
		ID:    "fig22",
		Title: fmt.Sprintf("Cluster timeline: %d GPUs, MAF-like trace, QoS 100 ms", nodes*gpusPerNode),
		Header: []string{"t(min)", "offered(r/s)",
			"Abacus tput", "Clock tput", "Abacus p99", "Clock p99", "Abacus avg", "Clock avg"},
	}
	for i := range abacus.Timeline {
		a := abacus.Timeline[i]
		var c cluster.TimelinePoint
		if i < len(clock.Timeline) {
			c = clock.Timeline[i]
		}
		timeline.AddRow(
			f1(a.StartMS/60_000), f1(a.OfferedQPS),
			f1(a.Throughput), f1(c.Throughput),
			f1(a.P99), f1(c.P99),
			f1(a.AvgLat), f1(c.AvgLat))
	}

	summary := Table{
		ID:     "fig22-summary",
		Title:  "Cluster totals",
		Header: []string{"policy", "completed", "dropped", "throughput(r/s)", "p99(ms)", "avg(ms)", "J/query"},
	}
	for _, r := range []cluster.Result{abacus, clock} {
		summary.AddRow(r.Policy.String(),
			fmt.Sprintf("%d", r.Completed), fmt.Sprintf("%d", r.Dropped),
			f1(r.Throughput(durationMS)), f1(r.P99Latency), f1(r.AvgLatency),
			f2(r.JoulesPerQuery()))
	}
	if clock.Completed > 0 {
		gain := float64(abacus.Completed)/float64(clock.Completed) - 1
		summary.Notes = append(summary.Notes,
			"Abacus throughput gain over Clockwork: "+pct(gain)+" (paper: +17.8%)")
	}
	summary.Notes = append(summary.Notes,
		"Abacus avg latency minus Clockwork avg: "+f1(abacus.AvgLatency-clock.AvgLatency)+
			" ms (paper: slightly positive — headroom traded for throughput)")
	return []Table{timeline, summary}
}
