package experiments

import (
	"abacus/internal/dnn"
	"abacus/internal/runner"
	"abacus/internal/serving"
)

func init() {
	register("fig18", Fig18)
	register("fig19", Fig19)
}

// nwiseSets returns the paper's §7.4 deployments: the quadruplet of
// {Res101, Res152, VGG19, Bert} and its four triplets.
func nwiseSets() [][]dnn.ModelID {
	return [][]dnn.ModelID{
		{dnn.ResNet101, dnn.ResNet152, dnn.VGG19, dnn.Bert},
		{dnn.ResNet101, dnn.ResNet152, dnn.VGG19},
		{dnn.ResNet101, dnn.ResNet152, dnn.Bert},
		{dnn.ResNet101, dnn.VGG19, dnn.Bert},
		{dnn.ResNet152, dnn.VGG19, dnn.Bert},
	}
}

// Fig18 reproduces Figure 18: 99%-ile latency normalized to QoS for
// triplet- and quadruplet-wise deployments at 50 QPS.
func Fig18(opts Options) []Table {
	return []Table{nwiseTable(opts, "fig18",
		"Triplet/quadruplet 99%-ile latency normalized to QoS (50 QPS)",
		50,
		func(r serving.Result) float64 { return r.NormalizedTail() },
		f2, true,
		"paper: Abacus cuts p99 by ~21%/35%/21% (triplets) and ~16%/34%/21% (quads) vs FCFS/SJF/EDF")}
}

// Fig19 reproduces Figure 19: peak goodput for triplet- and
// quadruplet-wise deployments at 100 QPS offered.
func Fig19(opts Options) []Table {
	return []Table{nwiseTable(opts, "fig19",
		"Triplet/quadruplet peak goodput at 100 QPS offered (queries/s within QoS)",
		100,
		func(r serving.Result) float64 { return r.Goodput() },
		f1, false,
		"paper: Abacus improves peak throughput by ~51-72% (triplets), ~38-63% (quads); no loss as N grows")}
}

func nwiseTable(opts Options, id, title string, qps float64,
	metric func(serving.Result) float64, format func(float64) string,
	lowerIsBetter bool, paperNote string) Table {

	t := Table{
		ID:     id,
		Title:  title,
		Header: []string{"deployment", "FCFS", "SJF", "EDF", "Abacus"},
	}
	perPolicy := map[serving.PolicyKind][]float64{}
	// One model covering singleton through quadruplet groups of the §7.4
	// deployment set.
	shared := unifiedPredictor(opts, []dnn.ModelID{dnn.ResNet101, dnn.ResNet152, dnn.VGG19, dnn.Bert}, 4)
	sets := nwiseSets()
	runs := runner.Map(len(sets), opts.Parallel, func(i int) pairRun {
		return runCoLocation(opts, sets[i], qps, nil, opts.Seed+100+int64(i), shared)
	})
	for _, run := range runs {
		row := []string{run.name}
		for _, policy := range serving.AllPolicies() {
			v := metric(run.results[policy])
			perPolicy[policy] = append(perPolicy[policy], v)
			row = append(row, format(v))
		}
		t.AddRow(row...)
	}
	ab := perPolicy[serving.PolicyAbacus]
	for _, base := range []serving.PolicyKind{serving.PolicyFCFS, serving.PolicySJF, serving.PolicyEDF} {
		if lowerIsBetter {
			t.Notes = append(t.Notes, "Abacus vs "+base.String()+": mean reduction "+pct(meanImprovement(ab, perPolicy[base])))
		} else {
			t.Notes = append(t.Notes, "Abacus vs "+base.String()+": mean gain "+pct(meanGain(ab, perPolicy[base])))
		}
	}
	t.Notes = append(t.Notes, paperNote)
	return t
}
