package experiments

import (
	"fmt"

	"abacus/internal/autoscale"
	"abacus/internal/dnn"
	"abacus/internal/predictor"
	"abacus/internal/trace"
)

func init() {
	register("affinity", Affinity)
	register("autoscale", Autoscale)
}

// Affinity reproduces the §7.8 profiling-scalability analysis: the pairwise
// overlap-gain matrix over the full zoo and the service groups Abacus would
// form so that only same-group models need pairwise profiling (O(N) instead
// of O(N²)). Pairs like (VGG16, VGG19), whose co-located latency equals
// sequential execution, must not be co-grouped.
func Affinity(opts Options) []Table {
	p := profile()
	models := ZooIDs()
	batch := 16
	m := predictor.AffinityMatrix(models, batch, p)

	matrix := Table{
		ID:     "affinity",
		Title:  "Pairwise overlap gain (sequential time / co-run makespan, bs=16)",
		Header: append([]string{"model"}, modelNames(models)...),
	}
	for i, id := range models {
		row := []string{id.String()}
		for j := range models {
			row = append(row, f2(m[i][j]))
		}
		matrix.AddRow(row...)
	}

	groups := Table{
		ID:     "affinity-groups",
		Title:  "Service groups for O(N) profiling (group size 2)",
		Header: []string{"group", "members", "intra-group gain"},
	}
	for gi, g := range predictor.PartitionServices(models, 2, batch, p) {
		gain := 1.0
		if len(g) == 2 {
			gain = predictor.OverlapGain(g[0], g[1], batch, p)
		}
		groups.AddRow(fmt.Sprintf("%d", gi+1), pairName(g), f2(gain))
	}
	groups.Notes = append(groups.Notes,
		"VGG16 and VGG19 must not share a group: their gain ≈ 1 (paper §7.8)")
	return []Table{matrix, groups}
}

func modelNames(ids []dnn.ModelID) []string {
	out := make([]string, len(ids))
	for i, id := range ids {
		out[i] = id.String()
	}
	return out
}

// Autoscale exercises the §7.9 future-work extension: an Abacus-aware
// capacity planner sizing a fleet against a diurnal MAF-like load. The
// table reports the per-interval fleet decisions and the aggregate
// provisioning efficiency versus static peak provisioning.
func Autoscale(opts Options) []Table {
	p := profile()
	models := []dnn.ModelID{dnn.ResNet101, dnn.ResNet152, dnn.VGG19, dnn.Bert}
	plan := autoscale.BuildPlan(models, 2, p, opts.Seed)

	// Per-minute offered load from a MAF-like trace.
	durationMS := 20 * 60_000.0
	baseQPS := 250.0
	if opts.Quick {
		durationMS = 8 * 60_000
		baseQPS = 150
	}
	gen := trace.NewGenerator(models, opts.Seed)
	arrivals := gen.MAF(trace.DefaultMAFConfig(baseQPS, durationMS, opts.Seed))
	buckets := int(durationMS / 60_000)
	offered := make([]float64, buckets)
	for _, a := range arrivals {
		b := int(a.Time / 60_000)
		if b < buckets {
			offered[b] += 1.0 / 60 // per-minute count → QPS
		}
	}

	planner, err := autoscale.NewPlanner(autoscale.PlannerConfig{Plan: plan})
	if err != nil {
		panic(err)
	}
	timeline := autoscale.PlanTimeline(planner, offered)

	t := Table{
		ID:    "autoscale",
		Title: fmt.Sprintf("Abacus-aware autoscaling (node capacity %.0f r/s, groups %v)", plan.CapacityQPS, len(plan.Groups)),
		Header: []string{
			"minute", "offered(r/s)", "forecast", "nodes", "decision", "utilization"},
	}
	var peakNodes int
	var nodeMinutes float64
	var overloadMinutes int
	for i, pt := range timeline {
		t.AddRow(fmt.Sprintf("%d", i), f1(pt.OfferedQPS), f1(pt.Forecast),
			fmt.Sprintf("%d", pt.Nodes), pt.Decision.String(), pct(pt.Utilization))
		if pt.Nodes > peakNodes {
			peakNodes = pt.Nodes
		}
		nodeMinutes += float64(pt.Nodes)
		if pt.Utilization > 1 {
			overloadMinutes++
		}
	}
	staticNodeMinutes := float64(peakNodes * len(timeline))
	saved := 0.0
	if staticNodeMinutes > 0 {
		saved = 1 - nodeMinutes/staticNodeMinutes
	}
	t.Notes = append(t.Notes,
		"node-minutes saved vs static peak provisioning: "+pct(saved),
		fmt.Sprintf("minutes above provisioned capacity: %d of %d", overloadMinutes, len(timeline)),
		"extension of §7.9: scale-out decisions from Abacus-aware capacity estimates")
	return []Table{t}
}
