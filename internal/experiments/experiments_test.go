package experiments

import (
	"bytes"
	"strconv"
	"strings"
	"testing"
)

// TestAllExperimentsQuick smoke-runs every registered experiment in quick
// mode: tables must render, have the declared width, and be non-empty.
func TestAllExperimentsQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("experiments take tens of seconds; skipped in -short")
	}
	opts := Quick()
	for _, id := range IDs() {
		id := id
		t.Run(id, func(t *testing.T) {
			tables, err := Run(id, opts)
			if err != nil {
				t.Fatal(err)
			}
			if len(tables) == 0 {
				t.Fatal("no tables")
			}
			for _, tb := range tables {
				if len(tb.Rows) == 0 {
					t.Errorf("table %s has no rows", tb.ID)
				}
				for _, row := range tb.Rows {
					if len(row) != len(tb.Header) {
						t.Errorf("table %s row width %d != header %d", tb.ID, len(row), len(tb.Header))
					}
				}
				var buf bytes.Buffer
				tb.Render(&buf)
				if buf.Len() == 0 {
					t.Errorf("table %s rendered empty", tb.ID)
				}
				t.Logf("\n%s", buf.String())
			}
		})
	}
}

func TestRunUnknownID(t *testing.T) {
	if _, err := Run("no-such-fig", Quick()); err == nil {
		t.Error("unknown id accepted")
	}
}

func TestIDsRegistered(t *testing.T) {
	want := []string{"ablations", "affinity", "autoscale", "fig10", "fig10-nwise", "fig14", "fig15", "fig16", "fig17",
		"fig18", "fig19", "fig20", "fig21", "fig22", "fig23", "fig3", "fig7", "intramodel", "overhead", "peakqps", "segments"}
	got := IDs()
	if len(got) != len(want) {
		t.Fatalf("IDs() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("IDs()[%d] = %q, want %q", i, got[i], want[i])
		}
	}
}

// TestFig15ShapeAbacusWins asserts the reproduction target on the rendered
// numbers: Abacus's mean violation ratio across pairs is at most each
// baseline's.
func TestFig15ShapeAbacusWins(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	tables := Fig15(Quick())
	tb := tables[0]
	sums := make([]float64, 4) // FCFS SJF EDF Abacus
	for _, row := range tb.Rows {
		for c := 1; c <= 4; c++ {
			v, err := strconv.ParseFloat(strings.TrimSuffix(row[c], "%"), 64)
			if err != nil {
				t.Fatalf("cell %q: %v", row[c], err)
			}
			sums[c-1] += v
		}
	}
	abacus := sums[3]
	for i, name := range []string{"FCFS", "SJF", "EDF"} {
		if abacus > sums[i]+1e-9 {
			t.Errorf("Abacus total violations %.1f exceed %s %.1f", abacus, name, sums[i])
		}
	}
}

// TestFig17ShapeThroughputGain asserts Abacus's mean goodput beats FCFS at
// saturation.
func TestFig17ShapeThroughputGain(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	tables := Fig17(Quick())
	tb := tables[0]
	var fcfs, abacus float64
	for _, row := range tb.Rows {
		f, err1 := strconv.ParseFloat(row[1], 64)
		a, err2 := strconv.ParseFloat(row[4], 64)
		if err1 != nil || err2 != nil {
			t.Fatalf("bad cells %q %q", row[1], row[4])
		}
		fcfs += f
		abacus += a
	}
	if abacus <= fcfs {
		t.Errorf("Abacus total goodput %.1f <= FCFS %.1f at saturation", abacus, fcfs)
	}
}

func TestTableRender(t *testing.T) {
	tb := Table{
		ID:     "t1",
		Title:  "demo",
		Header: []string{"a", "b"},
		Notes:  []string{"hello"},
	}
	tb.AddRow("1", "2")
	var buf bytes.Buffer
	tb.Render(&buf)
	out := buf.String()
	for _, want := range []string{"== t1: demo", "a", "b", "1", "2", "note: hello"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered table missing %q:\n%s", want, out)
		}
	}
}

func TestMeanImprovementAndGain(t *testing.T) {
	ab := []float64{1, 2}
	base := []float64{2, 4}
	if got := meanImprovement(ab, base); got != 0.5 {
		t.Errorf("meanImprovement = %v, want 0.5", got)
	}
	if got := meanGain(base, ab); got != 1.0 {
		t.Errorf("meanGain = %v, want 1.0", got)
	}
	if got := meanImprovement([]float64{1}, []float64{0}); got != 0 {
		t.Errorf("zero baseline should be skipped, got %v", got)
	}
}

func TestEvalPairsCounts(t *testing.T) {
	if got := len(evalPairs(Full())); got != 21 {
		t.Errorf("full mode has %d pairs, want 21", got)
	}
	if got := len(evalPairs(Quick())); got != 6 {
		t.Errorf("quick mode has %d pairs, want 6", got)
	}
}

func TestZooIDs(t *testing.T) {
	ids := ZooIDs()
	if len(ids) != 7 || ids[0].String() != "Res50" || ids[6].String() != "Bert" {
		t.Errorf("ZooIDs = %v", ids)
	}
}

func TestDuplicateRegistrationPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("did not panic")
		}
	}()
	register("fig3", Fig03)
}

// TestAffinityShape asserts the §7.8 criterion on the rendered grouping:
// VGG16 and VGG19 never share a service group.
func TestAffinityShape(t *testing.T) {
	tables := Affinity(Quick())
	if len(tables) != 2 {
		t.Fatalf("got %d tables", len(tables))
	}
	groups := tables[1]
	for _, row := range groups.Rows {
		members := row[1]
		if strings.Contains(members, "VGG16") && strings.Contains(members, "VGG19") {
			t.Errorf("VGG16 and VGG19 co-grouped: %v", row)
		}
	}
}

// TestAutoscaleShape asserts the extension's reproduction target: positive
// savings versus static peak provisioning.
func TestAutoscaleShape(t *testing.T) {
	if testing.Short() {
		t.Skip("capacity probe is slow")
	}
	tables := Autoscale(Quick())
	found := false
	for _, n := range tables[0].Notes {
		if strings.Contains(n, "node-minutes saved") {
			found = true
			if strings.Contains(n, "saved: 0.0%") || strings.Contains(n, "saved: -") {
				t.Errorf("no savings reported: %s", n)
			}
		}
	}
	if !found {
		t.Error("savings note missing")
	}
}
