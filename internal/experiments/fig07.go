package experiments

import (
	"abacus/internal/predictor"
	"abacus/internal/stats"
)

func init() { register("fig7", Fig07) }

// Fig07 reproduces Figure 7 (§5.2): sample operator groups from pairwise
// co-location, measure each repeatedly under measurement noise, and report
// the distribution of latencies against the distribution of run-to-run
// standard deviations. The paper's finding — stddevs below 1 ms against
// latencies in the tens of milliseconds (4.53% on average) — is the
// determinism argument that justifies predicting operator-group latency.
func Fig07(opts Options) []Table {
	cfg := predictor.DefaultSamplerConfig()
	cfg.Seed = opts.Seed
	cfg.Runs = 20
	perPair := opts.SamplesPerPair / 10
	if perPair < 10 {
		perPair = 10
	}

	samples := predictor.Collect(ZooIDs(), 2, perPair, cfg)
	var lats, stds, ratios []float64
	for _, s := range samples {
		lats = append(lats, s.Latency)
		stds = append(stds, s.StdDev)
		if s.Latency > 0 {
			ratios = append(ratios, s.StdDev/s.Latency)
		}
	}

	t := Table{
		ID:     "fig7",
		Title:  "Operator-group latency determinism (pairwise groups, 20 runs each)",
		Header: []string{"statistic", "latency(ms)", "stddev(ms)"},
	}
	t.AddRow("mean", f2(stats.Mean(lats)), f3(stats.Mean(stds)))
	t.AddRow("p50", f2(stats.Percentile(lats, 50)), f3(stats.Percentile(stds, 50)))
	t.AddRow("p90", f2(stats.Percentile(lats, 90)), f3(stats.Percentile(stds, 90)))
	t.AddRow("p99", f2(stats.Percentile(lats, 99)), f3(stats.Percentile(stds, 99)))
	t.AddRow("max", f2(stats.Max(lats)), f3(stats.Max(stds)))
	t.Notes = append(t.Notes,
		"groups sampled: "+f1(float64(len(samples)))+" across "+f1(float64(len(predictor.Combinations(ZooIDs(), 2))))+" pairs",
		"mean stddev/latency = "+pct(stats.Mean(ratios))+" (paper: 4.53%)",
		"fraction of groups with stddev < 1 ms: "+pct(fracBelow(stds, 1)))
	return []Table{t}
}

func fracBelow(xs []float64, bound float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	n := 0
	for _, x := range xs {
		if x < bound {
			n++
		}
	}
	return float64(n) / float64(len(xs))
}
