package dnn

import (
	"testing"

	"abacus/internal/gpusim"
	"abacus/internal/sim"
)

// coRunMakespan executes one query of each (model, input) concurrently on a
// fresh device and returns the makespan.
func coRunMakespan(t *testing.T, pairs []ModelID, in Input, p gpusim.Profile) float64 {
	t.Helper()
	eng := sim.NewEngine()
	dev := gpusim.New(eng, p)
	var finish sim.Time
	remaining := len(pairs)
	for _, id := range pairs {
		m := Get(id)
		q := in
		if !m.IsSequence() {
			q.SeqLen = 0
		} else if q.SeqLen == 0 {
			q.SeqLen = m.SeqLens[len(m.SeqLens)-1]
		}
		dev.RunChain(Kernels(m, q, p, 0, m.NumOps()), func() {
			remaining--
			if remaining == 0 {
				finish = eng.Now()
			}
		})
	}
	eng.Run()
	if remaining != 0 {
		t.Fatalf("co-run did not complete: %d chains left", remaining)
	}
	return finish
}

// overlapGain returns sequential-time / co-run-makespan for a pair at the
// given batch: > 1 means overlap helps.
func overlapGain(t *testing.T, a, b ModelID, batch int, p gpusim.Profile) float64 {
	t.Helper()
	in := Input{Batch: batch}
	seq := func(id ModelID) float64 {
		m := Get(id)
		q := in
		if m.IsSequence() {
			q.SeqLen = m.SeqLens[len(m.SeqLens)-1]
		}
		return SoloLatency(m, q, p)
	}
	sequential := seq(a) + seq(b)
	co := coRunMakespan(t, []ModelID{a, b}, in, p)
	return sequential / co
}

// TestOverlapCrossover pins the contention regime the paper's evaluation
// depends on (§7.3): ResNet/Inception pairs gain substantially from operator
// overlap, while (VGG16, VGG19) — whose kernels saturate the device — gain
// almost nothing.
func TestOverlapCrossover(t *testing.T) {
	p := gpusim.A100Profile()
	cases := []struct {
		a, b       ModelID
		batch      int
		minG, maxG float64
	}{
		{ResNet50, ResNet152, 16, 1.2, 2.0},
		{ResNet152, InceptionV3, 16, 1.25, 2.0},
		{ResNet101, Bert, 16, 1.2, 2.0},
		{VGG16, VGG19, 32, 0.95, 1.2},
	}
	for _, c := range cases {
		g := overlapGain(t, c.a, c.b, c.batch, p)
		t.Logf("(%s,%s) bs=%d overlap gain %.3fx", c.a, c.b, c.batch, g)
		if g < c.minG || g > c.maxG {
			t.Errorf("(%s,%s) bs=%d: overlap gain %.3f outside [%.2f, %.2f]", c.a, c.b, c.batch, g, c.minG, c.maxG)
		}
	}
}

// TestOverlapDeterminism verifies the paper's §5.2 premise in the substrate:
// the same overlap set yields the same latency, run after run.
func TestOverlapDeterminism(t *testing.T) {
	p := gpusim.A100Profile()
	first := coRunMakespan(t, []ModelID{ResNet50, VGG16, Bert}, Input{Batch: 8, SeqLen: 32}, p)
	for i := 0; i < 5; i++ {
		if got := coRunMakespan(t, []ModelID{ResNet50, VGG16, Bert}, Input{Batch: 8, SeqLen: 32}, p); got != first {
			t.Fatalf("run %d: makespan %v != %v", i, got, first)
		}
	}
}
