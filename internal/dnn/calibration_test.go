package dnn

import (
	"testing"

	"abacus/internal/gpusim"
)

// TestCalibrationReport prints the zoo's key figures: operator counts, FLOPs
// and solo latencies at min/max inputs, model sizes. Run with -v to inspect.
// The assertions pin the paper's regime: solo latencies of tens of
// milliseconds at batch 32 and a ResNet-152 around the paper's 24 ms.
func TestCalibrationReport(t *testing.T) {
	p := gpusim.A100Profile()
	for _, m := range All() {
		maxIn, minIn := m.MaxInput(), m.MinInput()
		maxLat := SoloLatency(m, maxIn, p)
		minLat := SoloLatency(m, minIn, p)
		t.Logf("%-8s ops=%4d params=%6.1fMB flops(max)=%7.1fG solo(min)=%7.3fms solo(max)=%7.3fms",
			m.Name, m.NumOps(), m.ParamBytes()/(1<<20), m.FLOPs(maxIn)/1e9, minLat, maxLat)
		if maxLat < 5 || maxLat > 120 {
			t.Errorf("%s: max-input solo latency %.2fms outside the paper's regime [5,120]", m.Name, maxLat)
		}
		if minLat >= maxLat {
			t.Errorf("%s: min-input latency %.2f >= max-input latency %.2f", m.Name, minLat, maxLat)
		}
	}
	res152 := SoloLatency(Get(ResNet152), Input{Batch: 32}, p)
	if res152 < 12 || res152 > 48 {
		t.Errorf("ResNet152 bs32 solo latency %.2fms; paper reports ~24ms", res152)
	}
}
