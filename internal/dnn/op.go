// Package dnn defines the DNN substrate of the Abacus reproduction: operator
// data-flow graphs for the paper's seven serving models (Table 1), and an
// analytic cost model that maps every operator, for a given runtime input
// (batch size, sequence length), to a gpusim kernel spec.
//
// A query is processed by executing the model's operators in topological
// order (paper Figure 1); Abacus schedules contiguous spans of this order.
package dnn

import "fmt"

// OpKind classifies operators by their kernel shape, which determines tile
// granularity and achievable efficiency in the cost model.
type OpKind int

// Operator kinds found in the model zoo.
const (
	Conv2D OpKind = iota
	Dense
	MatMul // activation×activation matmul (attention)
	BatchNorm
	LayerNorm
	ReLU
	GELU
	Softmax
	Add
	Concat
	MaxPool
	AvgPool
	GlobalAvgPool
	Embedding
	numOpKinds
)

var opKindNames = [...]string{
	Conv2D:        "conv2d",
	Dense:         "dense",
	MatMul:        "matmul",
	BatchNorm:     "batchnorm",
	LayerNorm:     "layernorm",
	ReLU:          "relu",
	GELU:          "gelu",
	Softmax:       "softmax",
	Add:           "add",
	Concat:        "concat",
	MaxPool:       "maxpool",
	AvgPool:       "avgpool",
	GlobalAvgPool: "globalavgpool",
	Embedding:     "embedding",
}

// String returns the lowercase operator kind name.
func (k OpKind) String() string {
	if k < 0 || int(k) >= len(opKindNames) {
		return fmt.Sprintf("OpKind(%d)", int(k))
	}
	return opKindNames[k]
}

// MatMulLike reports whether the kind executes as a GEMM-style kernel
// (tiled, compute-bound) rather than an elementwise/reduction kernel.
func (k OpKind) MatMulLike() bool {
	return k == Conv2D || k == Dense || k == MatMul
}

// Cost is a per-sample cost polynomial in the sequence length:
//
//	cost(batch, seq) = batch · (C0 + C1·seq + C2·seq²)
//
// CV operators use only C0. BERT dense/elementwise operators scale linearly
// with tokens (C1); attention score/context operators scale quadratically
// (C2).
type Cost struct {
	C0, C1, C2 float64
}

// constCost is a sequence-independent per-sample cost.
func constCost(v float64) Cost { return Cost{C0: v} }

// Eval evaluates the polynomial for one query input.
func (c Cost) Eval(in Input) float64 {
	s := float64(in.SeqLen)
	return float64(in.Batch) * (c.C0 + c.C1*s + c.C2*s*s)
}

// Zero reports whether the cost is identically zero.
func (c Cost) Zero() bool { return c == Cost{} }

// Input is the runtime-varying part of a query (paper §3.3: both drive the
// latency). SeqLen is meaningful only for sequence models; CV models carry
// SeqLen 0.
type Input struct {
	Batch  int
	SeqLen int
}

// Op is one operator of a model's data-flow graph with its analytic costs.
type Op struct {
	Kind OpKind
	Name string

	FLOPs    Cost // floating-point operations per sample
	Bytes    Cost // DRAM traffic per sample (activations + amortized weights)
	OutElems Cost // output elements per sample, drives occupancy

	ParamBytes float64 // resident weight bytes (not per sample)
}

// Model is a DNN expressed as a topologically ordered operator list plus the
// DFG edges it was built from. Ops[i]'s inputs are all at indices < i.
type Model struct {
	Name string
	ID   int // zoo index; set by the zoo builder

	Ops   []Op
	Preds [][]int // Preds[i] lists the operator indices feeding Ops[i]

	InputBytesPerSample Cost // host→device transfer bytes per sample

	MinBatch, MaxBatch int
	SeqLens            []int // allowed sequence lengths; nil for CV models
}

// NumOps returns the number of operators in the model.
func (m *Model) NumOps() int { return len(m.Ops) }

// ParamBytes returns the total resident weight bytes of the model.
func (m *Model) ParamBytes() float64 {
	var s float64
	for i := range m.Ops {
		s += m.Ops[i].ParamBytes
	}
	return s
}

// FLOPs returns the total per-query floating-point operations for an input.
func (m *Model) FLOPs(in Input) float64 {
	var s float64
	for i := range m.Ops {
		s += m.Ops[i].FLOPs.Eval(in)
	}
	return s
}

// InputBytes returns the host→device transfer volume of one query.
func (m *Model) InputBytes(in Input) float64 {
	return m.InputBytesPerSample.Eval(in)
}

// IsSequence reports whether the model consumes a sequence length (BERT).
func (m *Model) IsSequence() bool { return len(m.SeqLens) > 0 }

// MaxInput returns the largest input the model serves (paper: QoS targets
// are 2× the solo latency of the maximum input).
func (m *Model) MaxInput() Input {
	in := Input{Batch: m.MaxBatch}
	if m.IsSequence() {
		in.SeqLen = m.SeqLens[len(m.SeqLens)-1]
	}
	return in
}

// MinInput returns the smallest served input (used by the small-DNN
// experiment, Figure 16).
func (m *Model) MinInput() Input {
	in := Input{Batch: m.MinBatch}
	if m.IsSequence() {
		in.SeqLen = m.SeqLens[0]
	}
	return in
}

// ValidateTopology checks that Preds edges respect the topological order and
// index range. The model builders guarantee this; tests call it as an
// invariant.
func (m *Model) ValidateTopology() error {
	if len(m.Preds) != len(m.Ops) {
		return fmt.Errorf("dnn: %s: Preds length %d != Ops length %d", m.Name, len(m.Preds), len(m.Ops))
	}
	for i, ps := range m.Preds {
		for _, p := range ps {
			if p < 0 || p >= i {
				return fmt.Errorf("dnn: %s: op %d (%s) has non-topological pred %d", m.Name, i, m.Ops[i].Name, p)
			}
		}
	}
	return nil
}

// graph is the incremental DFG builder used by the model constructors.
// Operators are appended in topological order by construction.
type graph struct {
	ops   []Op
	preds [][]int
}

// add appends op depending on the given earlier operator indices and returns
// its index.
func (g *graph) add(op Op, deps ...int) int {
	idx := len(g.ops)
	for _, d := range deps {
		if d < 0 || d >= idx {
			panic(fmt.Sprintf("dnn: op %q: dependency %d out of range [0,%d)", op.Name, d, idx))
		}
	}
	g.ops = append(g.ops, op)
	g.preds = append(g.preds, append([]int(nil), deps...))
	return idx
}

// build finalizes the graph into a Model.
func (g *graph) build(name string) *Model {
	return &Model{
		Name:  name,
		Ops:   g.ops,
		Preds: g.preds,
	}
}
