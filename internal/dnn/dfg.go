package dnn

import (
	"abacus/internal/gpusim"
	"abacus/internal/sim"
)

// This file executes a model as its data-flow graph rather than as the
// topologically ordered chain Abacus schedules. Independent branches
// (Inception blocks, residual shortcuts) overlap on the device. The paper's
// related work (§2) points at compiler systems (Rammer, TensorRT) that
// exploit exactly this intra-model parallelism and notes they are
// complementary to Abacus's inter-model overlap; RunDFG lets the
// reproduction quantify how much intra-model headroom the zoo leaves.

// RunDFG launches the model's operators respecting only true DFG
// dependencies: an operator is issued (after the launch gap) once all of
// its predecessors completed. done, if non-nil, fires when every operator
// has finished. Returns immediately; execution proceeds on the virtual
// clock.
func RunDFG(dev *gpusim.Device, m *Model, in Input, done func()) {
	n := m.NumOps()
	if n == 0 {
		if done != nil {
			done()
		}
		return
	}
	p := dev.Profile()
	eng := dev.Engine()

	// Successor lists and predecessor counts from the recorded graph.
	succs := make([][]int, n)
	pending := make([]int, n)
	for i, preds := range m.Preds {
		pending[i] = len(preds)
		for _, pr := range preds {
			succs[pr] = append(succs[pr], i)
		}
	}

	remaining := n
	var launch func(i int)
	complete := func(i int) {
		remaining--
		if remaining == 0 {
			if done != nil {
				done()
			}
			return
		}
		for _, s := range succs[i] {
			pending[s]--
			if pending[s] == 0 {
				launch(s)
			}
		}
	}
	launch = func(i int) {
		spec := KernelFor(&m.Ops[i], in, p)
		eng.Schedule(p.LaunchGap, func() {
			dev.Launch(spec, func() { complete(i) })
		})
	}
	for i := 0; i < n; i++ {
		if pending[i] == 0 {
			launch(i)
		}
	}
}

// DFGLatency measures the exclusive-device latency of one query executed
// with intra-model branch parallelism (compare SoloLatency, which runs the
// topological chain).
func DFGLatency(m *Model, in Input, p gpusim.Profile) float64 {
	eng := sim.NewEngine()
	dev := gpusim.New(eng, p)
	var finish sim.Time
	RunDFG(dev, m, in, func() { finish = eng.Now() })
	eng.Run()
	return finish
}
